package merkle

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
)

func leaves(n int) []fr.Element {
	out := make([]fr.Element, n)
	for i := range out {
		out[i] = fr.NewElement(uint64(i*i + 17))
	}
	return out
}

func TestTreeRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 20} {
		tree, err := New(leaves(n))
		if err != nil {
			t.Fatal(err)
		}
		root := tree.Root()
		for i := 0; i < n; i++ {
			p, err := tree.Prove(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if err := Verify(root, leaves(n)[i], p); err != nil {
				t.Fatalf("n=%d i=%d: valid proof rejected: %v", n, i, err)
			}
		}
	}
}

func TestEmptyTree(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty tree built")
	}
}

func TestProveOutOfRange(t *testing.T) {
	tree, err := New(leaves(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Prove(5); err == nil {
		t.Fatal("out-of-range proof produced (padding leaf)")
	}
	if _, err := tree.Prove(-1); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	ls := leaves(8)
	tree, err := New(ls)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	p, err := tree.Prove(3)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong leaf.
	if err := Verify(root, fr.NewElement(9999), p); !errors.Is(err, ErrProofInvalid) {
		t.Fatal("wrong leaf accepted")
	}
	// Wrong index.
	bad := p
	bad.Index = 4
	if err := Verify(root, ls[3], bad); err == nil {
		t.Fatal("wrong index accepted")
	}
	// Corrupted sibling.
	bad = p
	bad.Siblings = append([]fr.Element{}, p.Siblings...)
	bad.Siblings[1] = fr.NewElement(1)
	if err := Verify(root, ls[3], bad); err == nil {
		t.Fatal("corrupted sibling accepted")
	}
	// Wrong root.
	if err := Verify(fr.NewElement(1), ls[3], p); err == nil {
		t.Fatal("wrong root accepted")
	}
}

func TestRootChangesWithLeaf(t *testing.T) {
	ls := leaves(8)
	t1, err := New(ls)
	if err != nil {
		t.Fatal(err)
	}
	ls[5] = fr.NewElement(424242)
	t2, err := New(ls)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := t1.Root(), t2.Root()
	if r1.Equal(&r2) {
		t.Fatal("root unchanged after leaf mutation")
	}
}

func TestGadgetVerifyMatchesNative(t *testing.T) {
	ls := leaves(8)
	tree, err := New(ls)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	for _, idx := range []int{0, 3, 7} {
		p, err := tree.Prove(idx)
		if err != nil {
			t.Fatal(err)
		}
		b := circuit.NewBuilder()
		leaf := b.Secret(ls[idx])
		bits := make([]circuit.Variable, len(p.Siblings))
		sibs := make([]circuit.Variable, len(p.Siblings))
		for i := range p.Siblings {
			bits[i] = b.Secret(fr.NewElement(uint64(p.Index >> i & 1)))
			sibs[i] = b.Secret(p.Siblings[i])
		}
		got := GadgetVerify(b, leaf, bits, sibs)
		rootPub := b.Public(root)
		b.AssertEqual(got, rootPub)
		cs, w, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		if err := cs.IsSatisfied(w); err != nil {
			t.Fatalf("idx=%d: gadget path unsatisfied: %v", idx, err)
		}
	}
}

func TestGadgetVerifyRejectsWrongPath(t *testing.T) {
	ls := leaves(4)
	tree, err := New(ls)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tree.Prove(1)
	if err != nil {
		t.Fatal(err)
	}
	b := circuit.NewBuilder()
	leaf := b.Secret(fr.NewElement(31337)) // not the real leaf
	bits := make([]circuit.Variable, len(p.Siblings))
	sibs := make([]circuit.Variable, len(p.Siblings))
	for i := range p.Siblings {
		bits[i] = b.Secret(fr.NewElement(uint64(p.Index >> i & 1)))
		sibs[i] = b.Secret(p.Siblings[i])
	}
	got := GadgetVerify(b, leaf, bits, sibs)
	rootPub := b.Public(tree.Root())
	b.AssertEqual(got, rootPub)
	cs, w, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(w); err == nil {
		t.Fatal("wrong leaf satisfied the circuit")
	}
}

func TestQuickMembership(t *testing.T) {
	ls := leaves(16)
	tree, err := New(ls)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	prop := func(i uint8) bool {
		idx := int(i) % 16
		p, err := tree.Prove(idx)
		if err != nil {
			return false
		}
		return Verify(root, ls[idx], p) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
