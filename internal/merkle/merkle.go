// Package merkle implements Poseidon-based Merkle trees with membership
// proofs, both natively and as a circuit gadget — one of the cryptographic
// gadgets of §IV-D used to anchor datasets and storage integrity checks.
package merkle

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/poseidon"
)

// ErrProofInvalid reports a failed membership verification.
var ErrProofInvalid = errors.New("merkle: proof verification failed")

// Tree is a complete binary Merkle tree over field-element leaves, padded
// with zeros to a power of two.
type Tree struct {
	// levels[0] is the (padded) leaf layer; the last level is the root.
	levels [][]fr.Element
	nLeaf  int // original (unpadded) leaf count
}

// New builds a tree over the given leaves.
func New(leaves []fr.Element) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, errors.New("merkle: empty leaf set")
	}
	size := 1
	for size < len(leaves) {
		size <<= 1
	}
	layer := make([]fr.Element, size)
	copy(layer, leaves)
	t := &Tree{nLeaf: len(leaves)}
	t.levels = append(t.levels, layer)
	for len(layer) > 1 {
		next := make([]fr.Element, len(layer)/2)
		for i := range next {
			next[i] = poseidon.Compress(layer[2*i], layer[2*i+1])
		}
		t.levels = append(t.levels, next)
		layer = next
	}
	return t, nil
}

// Root returns the tree root.
func (t *Tree) Root() fr.Element { return t.levels[len(t.levels)-1][0] }

// Depth returns the tree depth (number of siblings in a proof).
func (t *Tree) Depth() int { return len(t.levels) - 1 }

// NumLeaves returns the unpadded leaf count.
func (t *Tree) NumLeaves() int { return t.nLeaf }

// Proof is a Merkle membership proof: the leaf index and the sibling path
// from leaf to root.
type Proof struct {
	Index    int
	Siblings []fr.Element
}

// Prove returns the membership proof for leaf i.
func (t *Tree) Prove(i int) (Proof, error) {
	if i < 0 || i >= t.nLeaf {
		return Proof{}, fmt.Errorf("merkle: leaf index %d out of range [0, %d)", i, t.nLeaf)
	}
	p := Proof{Index: i, Siblings: make([]fr.Element, t.Depth())}
	idx := i
	for lvl := 0; lvl < t.Depth(); lvl++ {
		p.Siblings[lvl] = t.levels[lvl][idx^1]
		idx >>= 1
	}
	return p, nil
}

// Verify checks that leaf sits at p.Index under root.
func Verify(root, leaf fr.Element, p Proof) error {
	cur := leaf
	idx := p.Index
	for _, sib := range p.Siblings {
		if idx&1 == 0 {
			cur = poseidon.Compress(cur, sib)
		} else {
			cur = poseidon.Compress(sib, cur)
		}
		idx >>= 1
	}
	if !cur.Equal(&root) {
		return ErrProofInvalid
	}
	return nil
}

// GadgetVerify emits constraints checking a Merkle path inside a circuit:
// given the leaf wire, boolean path-direction wires (1 = leaf on the right)
// and sibling wires, it returns the computed root wire, which callers
// constrain against a public root.
// A path/sibling length mismatch is recorded on the builder (a malformed
// proof shape is user input, not a programmer invariant) and the leaf wire
// is returned unconstrained; Compile will fail.
func GadgetVerify(b *circuit.Builder, leaf circuit.Variable, pathBits, siblings []circuit.Variable) circuit.Variable {
	if len(pathBits) != len(siblings) {
		b.Fail("merkle: path length mismatch (%d bits, %d siblings)", len(pathBits), len(siblings))
		return leaf
	}
	cur := leaf
	for i := range siblings {
		b.AssertBoolean(pathBits[i])
		left := b.Select(pathBits[i], siblings[i], cur)
		right := b.Select(pathBits[i], cur, siblings[i])
		cur = poseidon.GadgetCompress(b, left, right)
	}
	return cur
}
