package poly

import (
	"testing"
	"testing/quick"

	"github.com/zkdet/zkdet/internal/fr"
)

func randPoly(n int) Polynomial {
	p := make(Polynomial, n)
	for i := range p {
		p[i] = fr.MustRandom()
	}
	return p
}

// mustMul multiplies polynomials whose product degree is known to fit the
// field's two-adicity, failing the test otherwise.
func mustMul(t *testing.T, p, q Polynomial) Polynomial {
	t.Helper()
	out, err := Mul(p, q)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDegreeAndZero(t *testing.T) {
	var zero Polynomial
	if zero.Degree() != -1 || !zero.IsZero() {
		t.Fatal("nil polynomial should be zero of degree -1")
	}
	p := Polynomial{fr.NewElement(1), fr.Zero(), fr.Zero()}
	if p.Degree() != 0 {
		t.Fatalf("degree = %d, want 0", p.Degree())
	}
	p = Polynomial{fr.Zero(), fr.NewElement(2)}
	if p.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", p.Degree())
	}
}

func TestEvalHorner(t *testing.T) {
	// p(X) = 3 + 2X + X², p(5) = 3 + 10 + 25 = 38.
	p := Polynomial{fr.NewElement(3), fr.NewElement(2), fr.NewElement(1)}
	x := fr.NewElement(5)
	got := p.Eval(&x)
	want := fr.NewElement(38)
	if !got.Equal(&want) {
		t.Fatalf("eval = %s, want 38", got.String())
	}
}

func TestAddSubEval(t *testing.T) {
	p, q := randPoly(7), randPoly(12)
	x := fr.MustRandom()
	sum := Add(p, q)
	diff := Sub(p, q)
	pe, qe := p.Eval(&x), q.Eval(&x)
	var wantSum, wantDiff fr.Element
	wantSum.Add(&pe, &qe)
	wantDiff.Sub(&pe, &qe)
	if got := sum.Eval(&x); !got.Equal(&wantSum) {
		t.Fatal("add eval mismatch")
	}
	if got := diff.Eval(&x); !got.Equal(&wantDiff) {
		t.Fatal("sub eval mismatch")
	}
}

func TestMulSchoolbookAndFFTAgree(t *testing.T) {
	// Large enough to trigger the FFT path; compare evaluations.
	p, q := randPoly(60), randPoly(70)
	prod := mustMul(t, p, q)
	if prod.Degree() != p.Degree()+q.Degree() {
		t.Fatalf("product degree %d, want %d", prod.Degree(), p.Degree()+q.Degree())
	}
	for i := 0; i < 5; i++ {
		x := fr.MustRandom()
		pe, qe := p.Eval(&x), q.Eval(&x)
		var want fr.Element
		want.Mul(&pe, &qe)
		if got := prod.Eval(&x); !got.Equal(&want) {
			t.Fatal("mul eval mismatch")
		}
	}
	// Zero cases.
	if got := mustMul(t, p, Polynomial{}); !got.IsZero() {
		t.Fatal("p * 0 != 0")
	}
}

func TestDivideByLinear(t *testing.T) {
	p := randPoly(20)
	z := fr.MustRandom()
	q, rem := DivideByLinear(p, &z)
	if want := p.Eval(&z); !rem.Equal(&want) {
		t.Fatal("remainder != p(z)")
	}
	// p(X) == q(X)(X - z) + rem at a random point.
	x := fr.MustRandom()
	var negZ fr.Element
	negZ.Neg(&z)
	lin := Polynomial{negZ, fr.One()}
	recon := Add(mustMul(t, q, lin), Polynomial{rem})
	if got, want := recon.Eval(&x), p.Eval(&x); !got.Equal(&want) {
		t.Fatal("q(X)(X-z)+r != p(X)")
	}
}

func TestDiv(t *testing.T) {
	p, q := randPoly(15), randPoly(4)
	quot, rem, err := Div(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if rem.Degree() >= q.Degree() {
		t.Fatal("remainder degree too high")
	}
	x := fr.MustRandom()
	recon := Add(mustMul(t, quot, q), rem)
	if got, want := recon.Eval(&x), p.Eval(&x); !got.Equal(&want) {
		t.Fatal("quot*q + rem != p")
	}
	// Exact division.
	prod := mustMul(t, p, q)
	quot2, rem2, err := Div(prod, q)
	if err != nil {
		t.Fatal(err)
	}
	if !rem2.IsZero() {
		t.Fatal("exact division has nonzero remainder")
	}
	if !quot2.Equal(p) {
		t.Fatal("exact division quotient mismatch")
	}
	if _, _, err := Div(p, Polynomial{}); err == nil {
		t.Fatal("division by zero polynomial should error")
	}
}

func TestInterpolate(t *testing.T) {
	n := 8
	xs := make([]fr.Element, n)
	ys := make([]fr.Element, n)
	for i := range xs {
		xs[i] = fr.NewElement(uint64(i + 1))
		ys[i] = fr.MustRandom()
	}
	p, err := Interpolate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := p.Eval(&xs[i]); !got.Equal(&ys[i]) {
			t.Fatalf("interpolation fails at point %d", i)
		}
	}
	if _, err := Interpolate(xs, ys[:len(ys)-1]); err == nil {
		t.Fatal("mismatched point counts should error")
	}
}

func TestDomainRoundTrip(t *testing.T) {
	for _, n := range []uint64{1, 2, 4, 8, 64, 256} {
		d, err := NewDomain(n)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]fr.Element, d.N)
		for i := range a {
			a[i] = fr.MustRandom()
		}
		orig := make([]fr.Element, len(a))
		copy(orig, a)
		if err := d.FFT(a); err != nil {
			t.Fatal(err)
		}
		if err := d.IFFT(a); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !a[i].Equal(&orig[i]) {
				t.Fatalf("n=%d: FFT/IFFT round trip mismatch at %d", n, i)
			}
		}
	}
}

func TestFFTMatchesEval(t *testing.T) {
	d, err := NewDomain(16)
	if err != nil {
		t.Fatal(err)
	}
	p := randPoly(int(d.N))
	evals := make([]fr.Element, d.N)
	copy(evals, p)
	if err := d.FFT(evals); err != nil {
		t.Fatal(err)
	}
	els := d.Elements()
	for i := range els {
		if want := p.Eval(&els[i]); !evals[i].Equal(&want) {
			t.Fatalf("FFT eval mismatch at %d", i)
		}
	}
}

func TestCosetFFT(t *testing.T) {
	d, err := NewDomain(32)
	if err != nil {
		t.Fatal(err)
	}
	p := randPoly(int(d.N))
	evals := make([]fr.Element, d.N)
	copy(evals, p)
	if err := d.FFTCoset(evals); err != nil {
		t.Fatal(err)
	}
	// Check a few points: evaluation at g·ω^i.
	g := fr.NewElement(fr.MultiplicativeGenerator)
	for _, i := range []uint64{0, 1, 7, 31} {
		wi := d.Element(i)
		var x fr.Element
		x.Mul(&g, &wi)
		if want := p.Eval(&x); !evals[i].Equal(&want) {
			t.Fatalf("coset FFT mismatch at %d", i)
		}
	}
	// Round trip.
	if err := d.IFFTCoset(evals); err != nil {
		t.Fatal(err)
	}
	for i := range evals {
		if !evals[i].Equal(&p[i]) {
			t.Fatal("coset round trip mismatch")
		}
	}
}

func TestDomainVanishingAndLagrange(t *testing.T) {
	d, err := NewDomain(8)
	if err != nil {
		t.Fatal(err)
	}
	// Z_H vanishes on H.
	for i := uint64(0); i < d.N; i++ {
		w := d.Element(i)
		if z := d.VanishingEval(&w); !z.IsZero() {
			t.Fatalf("Z_H(ω^%d) != 0", i)
		}
	}
	// L_i(x) interpolates the indicator at a random x: check against the
	// definition via Lagrange interpolation through (ω^j, δ_ij).
	x := fr.MustRandom()
	els := d.Elements()
	for i := uint64(0); i < d.N; i++ {
		ys := make([]fr.Element, d.N)
		ys[i] = fr.One()
		li, err := Interpolate(els, ys)
		if err != nil {
			t.Fatal(err)
		}
		want := li.Eval(&x)
		got := d.LagrangeEval(i, &x)
		if !got.Equal(&want) {
			t.Fatalf("L_%d mismatch", i)
		}
	}
}

func TestDomainErrors(t *testing.T) {
	if _, err := NewDomain(0); err == nil {
		t.Fatal("NewDomain(0) should fail")
	}
	if _, err := NewDomain(1 << 29); err == nil {
		t.Fatal("NewDomain beyond two-adicity should fail")
	}
}

func TestQuickMulCommutes(t *testing.T) {
	prop := func(a, b, c, d uint64) bool {
		p := Polynomial{fr.NewElement(a), fr.NewElement(b)}
		q := Polynomial{fr.NewElement(c), fr.NewElement(d)}
		pq, err1 := Mul(p, q)
		qp, err2 := Mul(q, p)
		return err1 == nil && err2 == nil && pq.Equal(qp)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDivideByLinearConsistent(t *testing.T) {
	prop := func(a, b, c, z uint64) bool {
		p := Polynomial{fr.NewElement(a), fr.NewElement(b), fr.NewElement(c)}
		ze := fr.NewElement(z)
		q, rem := DivideByLinear(p, &ze)
		want := p.Eval(&ze)
		if !rem.Equal(&want) {
			return false
		}
		// Reconstruct at a second point.
		x := fr.NewElement(z + 13)
		var negZ fr.Element
		negZ.Neg(&ze)
		lin := Polynomial{negZ, fr.One()}
		qlin, err := Mul(q, lin)
		if err != nil {
			return false
		}
		recon := Add(qlin, Polynomial{rem})
		got, wantAt := recon.Eval(&x), p.Eval(&x)
		return got.Equal(&wantAt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInterpolateEval(t *testing.T) {
	prop := func(y0, y1, y2 uint64) bool {
		xs := []fr.Element{fr.NewElement(1), fr.NewElement(2), fr.NewElement(3)}
		ys := []fr.Element{fr.NewElement(y0), fr.NewElement(y1), fr.NewElement(y2)}
		p, err := Interpolate(xs, ys)
		if err != nil {
			return false
		}
		for i := range xs {
			if got := p.Eval(&xs[i]); !got.Equal(&ys[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
