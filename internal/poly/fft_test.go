package poly

import (
	"math/rand"
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
)

// randVec returns a deterministic pseudo-random vector of length n.
func randVec(rng *rand.Rand, n uint64) []fr.Element {
	out := make([]fr.Element, n)
	for i := range out {
		out[i] = fr.NewElement(rng.Uint64())
		if rng.Intn(4) == 0 {
			// Mix in values above 64 bits.
			var sq fr.Element
			sq.Square(&out[i])
			out[i] = sq
		}
	}
	return out
}

func equalVec(a, b []fr.Element) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(&b[i]) {
			return false
		}
	}
	return true
}

// fftSizes covers every power of two from 1 to 2^14, straddling the
// parallel threshold and exercising both block-split and butterfly-split
// stages.
func fftSizes() []uint64 {
	sizes := []uint64{}
	for n := uint64(1); n <= 1<<14; n <<= 1 {
		sizes = append(sizes, n)
	}
	return sizes
}

// TestFFTMatchesSerialReference asserts the table-driven (and, when forced,
// parallel) transform is bit-identical to the retained chained-multiply
// serial reference, for both directions.
func TestFFTMatchesSerialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range fftSizes() {
		d, err := NewDomain(n)
		if err != nil {
			t.Fatalf("NewDomain(%d): %v", n, err)
		}
		in := randVec(rng, n)

		ref := append([]fr.Element(nil), in...)
		if err := d.fftSerialReference(ref, &d.Gen); err != nil {
			t.Fatal(err)
		}

		got := append([]fr.Element(nil), in...)
		if err := d.FFT(got); err != nil {
			t.Fatal(err)
		}
		if !equalVec(got, ref) {
			t.Fatalf("n=%d: FFT differs from serial reference", n)
		}

		// Force a multi-worker split even on single-core machines.
		fwd, inv := d.twiddles()
		for _, workers := range []int{2, 3, 8} {
			got = append([]fr.Element(nil), in...)
			d.fft(got, fwd, workers)
			if !equalVec(got, ref) {
				t.Fatalf("n=%d workers=%d: parallel FFT differs from serial reference", n, workers)
			}
		}

		// Inverse direction against the reference with ω⁻¹.
		refInv := append([]fr.Element(nil), in...)
		if err := d.fftSerialReference(refInv, &d.GenInv); err != nil {
			t.Fatal(err)
		}
		for i := range refInv {
			refInv[i].Mul(&refInv[i], &d.NInv)
		}
		gotInv := append([]fr.Element(nil), in...)
		d.fft(gotInv, inv, 4)
		for i := range gotInv {
			gotInv[i].Mul(&gotInv[i], &d.NInv)
		}
		if !equalVec(gotInv, refInv) {
			t.Fatalf("n=%d: parallel IFFT core differs from serial reference", n)
		}
	}
}

// TestFFTRoundTrip asserts IFFT∘FFT and the coset variants are the
// identity across all sizes.
func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range fftSizes() {
		d, err := NewDomain(n)
		if err != nil {
			t.Fatalf("NewDomain(%d): %v", n, err)
		}
		in := randVec(rng, n)

		a := append([]fr.Element(nil), in...)
		if err := d.FFT(a); err != nil {
			t.Fatal(err)
		}
		if err := d.IFFT(a); err != nil {
			t.Fatal(err)
		}
		if !equalVec(a, in) {
			t.Fatalf("n=%d: IFFT(FFT(x)) != x", n)
		}

		a = append([]fr.Element(nil), in...)
		if err := d.FFTCoset(a); err != nil {
			t.Fatal(err)
		}
		if err := d.IFFTCoset(a); err != nil {
			t.Fatal(err)
		}
		if !equalVec(a, in) {
			t.Fatalf("n=%d: IFFTCoset(FFTCoset(x)) != x", n)
		}
	}
}

// TestFFTCosetMatchesShiftedEval asserts coset evaluations equal direct
// polynomial evaluation at g·ω^i.
func TestFFTCosetMatchesShiftedEval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []uint64{1, 2, 8, 64, 256} {
		d, err := NewDomain(n)
		if err != nil {
			t.Fatalf("NewDomain(%d): %v", n, err)
		}
		p := Polynomial(randVec(rng, n))
		evals := append([]fr.Element(nil), p...)
		if err := d.FFTCoset(evals); err != nil {
			t.Fatal(err)
		}
		for _, i := range []uint64{0, 1, n / 2, n - 1} {
			i %= n
			var x fr.Element
			w := d.Element(i)
			x.Mul(&w, &d.CosetShift)
			want := p.Eval(&x)
			if !evals[i].Equal(&want) {
				t.Fatalf("n=%d i=%d: coset eval mismatch", n, i)
			}
		}
	}
}

// TestDomainCachedTables asserts the lazily-built tables match the naive
// definitions and that repeated calls return the same cached slice.
func TestDomainCachedTables(t *testing.T) {
	d, err := NewDomain(256)
	if err != nil {
		t.Fatal(err)
	}
	elems := d.Elements()
	if &elems[0] != &d.Elements()[0] {
		t.Fatal("Elements() is not cached")
	}
	elemsInv := d.ElementsInv()
	one := fr.One()
	for i := uint64(0); i < d.N; i++ {
		want := d.Element(i)
		if !elems[i].Equal(&want) {
			t.Fatalf("Elements()[%d] != ω^%d", i, i)
		}
		var prod fr.Element
		prod.Mul(&elems[i], &elemsInv[i])
		if !prod.Equal(&one) {
			t.Fatalf("ElementsInv()[%d] is not the inverse of ω^%d", i, i)
		}
	}
	fwd, inv := d.twiddles()
	if uint64(len(fwd)) != d.N/2 || uint64(len(inv)) != d.N/2 {
		t.Fatalf("twiddle tables have length %d/%d, want %d", len(fwd), len(inv), d.N/2)
	}
	for j := range fwd {
		if !fwd[j].Equal(&elems[j]) {
			t.Fatalf("twiddle[%d] != ω^%d", j, j)
		}
	}
	cfwd, cinv := d.cosetPowers()
	g := fr.One()
	for i := range cfwd {
		if !cfwd[i].Equal(&g) {
			t.Fatalf("cosetPow[%d] != g^%d", i, i)
		}
		var prod fr.Element
		prod.Mul(&cfwd[i], &cinv[i])
		if !prod.Equal(&one) {
			t.Fatalf("cosetPowInv[%d] is not the inverse of g^%d", i, i)
		}
		g.Mul(&g, &d.CosetShift)
	}
}

// TestDomainConcurrentFirstUse hammers the lazy caches from many
// goroutines; under -race this catches unsynchronised table builds.
func TestDomainConcurrentFirstUse(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d, err := NewDomain(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	in := randVec(rng, d.N)
	ref := append([]fr.Element(nil), in...)
	if err := d.fftSerialReference(ref, &d.Gen); err != nil {
		t.Fatal(err)
	}

	done := make(chan []fr.Element, 8)
	for g := 0; g < 8; g++ {
		go func() {
			a := append([]fr.Element(nil), in...)
			if err := d.FFT(a); err != nil {
				a = nil
			}
			done <- a
		}()
	}
	for g := 0; g < 8; g++ {
		if got := <-done; !equalVec(got, ref) {
			t.Fatal("concurrent FFT differs from serial reference")
		}
	}
}
