package poly

import (
	"fmt"
	"math/bits"

	"github.com/zkdet/zkdet/internal/fr"
)

// Domain is a multiplicative subgroup of Fr* of power-of-two order, used as
// an FFT evaluation domain. All Plonk polynomials live on such a domain.
type Domain struct {
	// N is the domain size, a power of two.
	N uint64
	// Log is log2(N).
	Log int
	// Gen is a primitive N-th root of unity ω.
	Gen fr.Element
	// GenInv is ω⁻¹.
	GenInv fr.Element
	// NInv is N⁻¹ in the field, used by the inverse FFT.
	NInv fr.Element
	// CosetShift is the multiplicative generator g used for coset FFTs
	// (evaluations over g·H instead of H).
	CosetShift fr.Element
	// CosetShiftInv is g⁻¹.
	CosetShiftInv fr.Element
}

// NewDomain returns the smallest domain of size ≥ n. It errors when n
// exceeds 2^28 (the two-adicity of the scalar field).
func NewDomain(n uint64) (*Domain, error) {
	if n == 0 {
		return nil, fmt.Errorf("poly: domain size must be positive")
	}
	logN := 0
	size := uint64(1)
	for size < n {
		size <<= 1
		logN++
	}
	gen, err := fr.RootOfUnity(logN)
	if err != nil {
		return nil, fmt.Errorf("poly: domain of size %d: %w", n, err)
	}
	d := &Domain{N: size, Log: logN, Gen: gen}
	d.GenInv.Inverse(&gen)
	nEl := fr.NewElement(size)
	d.NInv.Inverse(&nEl)
	d.CosetShift = fr.NewElement(fr.MultiplicativeGenerator)
	d.CosetShiftInv.Inverse(&d.CosetShift)
	return d, nil
}

// Element returns ω^i.
func (d *Domain) Element(i uint64) fr.Element {
	var out fr.Element
	out.SetOne()
	w := d.Gen
	i %= d.N
	for ; i > 0; i >>= 1 {
		if i&1 == 1 {
			out.Mul(&out, &w)
		}
		w.Square(&w)
	}
	return out
}

// Elements returns all N domain elements ω^0 … ω^(N-1) in order.
func (d *Domain) Elements() []fr.Element {
	out := make([]fr.Element, d.N)
	out[0] = fr.One()
	for i := uint64(1); i < d.N; i++ {
		out[i].Mul(&out[i-1], &d.Gen)
	}
	return out
}

// VanishingEval returns Z_H(x) = x^N - 1.
func (d *Domain) VanishingEval(x *fr.Element) fr.Element {
	var xn fr.Element
	xn.ExpUint64(x, d.N)
	one := fr.One()
	xn.Sub(&xn, &one)
	return xn
}

// LagrangeEval returns L_i(x) = ω^i (x^N - 1) / (N (x - ω^i)), the i-th
// Lagrange basis polynomial of the domain evaluated at a point x ∉ H.
func (d *Domain) LagrangeEval(i uint64, x *fr.Element) fr.Element {
	zh := d.VanishingEval(x)
	wi := d.Element(i)
	var denom fr.Element
	denom.Sub(x, &wi)
	nEl := fr.NewElement(d.N)
	denom.Mul(&denom, &nEl)
	denom.Inverse(&denom)
	var out fr.Element
	out.Mul(&zh, &wi)
	out.Mul(&out, &denom)
	return out
}

// FFT transforms coefficients to evaluations over the domain, in place.
// a must have length N.
func (d *Domain) FFT(a []fr.Element) {
	d.fft(a, &d.Gen)
}

// IFFT transforms evaluations over the domain back to coefficients,
// in place. a must have length N.
func (d *Domain) IFFT(a []fr.Element) {
	d.fft(a, &d.GenInv)
	for i := range a {
		a[i].Mul(&a[i], &d.NInv)
	}
}

// FFTCoset evaluates the polynomial over the coset g·H, in place.
func (d *Domain) FFTCoset(a []fr.Element) {
	shift := fr.One()
	for i := range a {
		a[i].Mul(&a[i], &shift)
		shift.Mul(&shift, &d.CosetShift)
	}
	d.FFT(a)
}

// IFFTCoset interpolates evaluations over the coset g·H back to
// coefficients, in place.
func (d *Domain) IFFTCoset(a []fr.Element) {
	d.IFFT(a)
	shift := fr.One()
	for i := range a {
		a[i].Mul(&a[i], &shift)
		shift.Mul(&shift, &d.CosetShiftInv)
	}
}

// fft is an in-place iterative radix-2 Cooley–Tukey transform with
// bit-reversal reordering, using root w as the primitive N-th root.
func (d *Domain) fft(a []fr.Element, w *fr.Element) {
	n := uint64(len(a))
	if n != d.N {
		panic(fmt.Sprintf("poly: fft input length %d != domain size %d", n, d.N))
	}
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(d.Log)
	for i := uint64(0); i < n; i++ {
		j := bits.Reverse64(i) >> shift
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	// Precompute stage roots: w^(N/2), w^(N/4), ... by repeated squaring
	// from w: rootOfStage(s) = w^(N / 2^s) for stage size 2^s.
	stageRoot := make([]fr.Element, d.Log+1)
	stageRoot[d.Log] = *w
	for s := d.Log - 1; s >= 1; s-- {
		stageRoot[s].Square(&stageRoot[s+1])
	}
	for s := 1; s <= d.Log; s++ {
		m := uint64(1) << s
		half := m >> 1
		wm := stageRoot[s]
		for k := uint64(0); k < n; k += m {
			wj := fr.One()
			for j := uint64(0); j < half; j++ {
				var t fr.Element
				t.Mul(&a[k+j+half], &wj)
				var u fr.Element
				u.Set(&a[k+j])
				a[k+j].Add(&u, &t)
				a[k+j+half].Sub(&u, &t)
				wj.Mul(&wj, &wm)
			}
		}
	}
}
