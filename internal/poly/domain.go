package poly

import (
	"fmt"
	"math/bits"
	"sync"

	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/parallel"
)

// parallelFFTThreshold is the domain size below which transforms run fully
// serially: goroutine startup and per-stage synchronisation cost more than
// the butterflies they would save on small domains.
const parallelFFTThreshold = 1 << 11

// Domain is a multiplicative subgroup of Fr* of power-of-two order, used as
// an FFT evaluation domain. All Plonk polynomials live on such a domain.
//
// Twiddle, element and coset-power tables are built lazily on first use and
// cached for the lifetime of the domain, so repeated transforms (the Plonk
// prover runs 20+ FFTs per proof over the same two domains) stop paying the
// O(N) chained multiplications per call.
type Domain struct {
	// N is the domain size, a power of two.
	N uint64
	// Log is log2(N).
	Log int
	// Gen is a primitive N-th root of unity ω.
	Gen fr.Element
	// GenInv is ω⁻¹.
	GenInv fr.Element
	// NInv is N⁻¹ in the field, used by the inverse FFT.
	NInv fr.Element
	// CosetShift is the multiplicative generator g used for coset FFTs
	// (evaluations over g·H instead of H).
	CosetShift fr.Element
	// CosetShiftInv is g⁻¹.
	CosetShiftInv fr.Element

	// Lazily-built caches. The slices are shared across calls; callers
	// must treat them as read-only.
	twiddleOnce sync.Once
	twiddleFwd  []fr.Element // ω^j for j < N/2
	twiddleInv  []fr.Element // ω⁻ʲ for j < N/2

	elemsOnce sync.Once
	elems     []fr.Element // ω^i for i < N
	elemsInv  []fr.Element // ω⁻ⁱ for i < N

	cosetOnce   sync.Once
	cosetPow    []fr.Element // g^i for i < N
	cosetPowInv []fr.Element // g⁻ⁱ for i < N
}

// NewDomain returns the smallest domain of size ≥ n. It errors when n
// exceeds 2^28 (the two-adicity of the scalar field).
func NewDomain(n uint64) (*Domain, error) {
	if n == 0 {
		return nil, fmt.Errorf("poly: domain size must be positive")
	}
	logN := 0
	size := uint64(1)
	for size < n {
		size <<= 1
		logN++
	}
	gen, err := fr.RootOfUnity(logN)
	if err != nil {
		return nil, fmt.Errorf("poly: domain of size %d: %w", n, err)
	}
	d := &Domain{N: size, Log: logN, Gen: gen}
	d.GenInv.Inverse(&gen)
	nEl := fr.NewElement(size)
	d.NInv.Inverse(&nEl)
	d.CosetShift = fr.NewElement(fr.MultiplicativeGenerator)
	d.CosetShiftInv.Inverse(&d.CosetShift)
	return d, nil
}

// Element returns ω^i.
func (d *Domain) Element(i uint64) fr.Element {
	var out fr.Element
	out.SetOne()
	w := d.Gen
	i %= d.N
	for ; i > 0; i >>= 1 {
		if i&1 == 1 {
			out.Mul(&out, &w)
		}
		w.Square(&w)
	}
	return out
}

// buildElements populates the cached ω-power tables.
func (d *Domain) buildElements() {
	d.elemsOnce.Do(func() {
		d.elems = fr.Powers(&d.Gen, int(d.N))
		d.elemsInv = fr.Powers(&d.GenInv, int(d.N))
	})
}

// Elements returns all N domain elements ω^0 … ω^(N-1) in order. The slice
// is cached on the domain and shared across calls: callers must not modify
// it.
func (d *Domain) Elements() []fr.Element {
	d.buildElements()
	return d.elems
}

// ElementsInv returns ω^0, ω⁻¹, …, ω^-(N-1) in order. Like Elements, the
// returned slice is cached and must be treated as read-only.
func (d *Domain) ElementsInv() []fr.Element {
	d.buildElements()
	return d.elemsInv
}

// twiddles returns the cached half-size twiddle tables (ω^j and ω⁻ʲ for
// j < N/2); the butterfly at stage s, index j reads entry j·(N>>s).
func (d *Domain) twiddles() (fwd, inv []fr.Element) {
	d.twiddleOnce.Do(func() {
		d.twiddleFwd = fr.Powers(&d.Gen, int(d.N/2))
		d.twiddleInv = fr.Powers(&d.GenInv, int(d.N/2))
	})
	return d.twiddleFwd, d.twiddleInv
}

// cosetPowers returns the cached tables of coset-shift powers g^i and g⁻ⁱ
// for i < N.
func (d *Domain) cosetPowers() (fwd, inv []fr.Element) {
	d.cosetOnce.Do(func() {
		d.cosetPow = fr.Powers(&d.CosetShift, int(d.N))
		d.cosetPowInv = fr.Powers(&d.CosetShiftInv, int(d.N))
	})
	return d.cosetPow, d.cosetPowInv
}

// VanishingEval returns Z_H(x) = x^N - 1.
func (d *Domain) VanishingEval(x *fr.Element) fr.Element {
	var xn fr.Element
	xn.ExpUint64(x, d.N)
	one := fr.One()
	xn.Sub(&xn, &one)
	return xn
}

// LagrangeEval returns L_i(x) = ω^i (x^N - 1) / (N (x - ω^i)), the i-th
// Lagrange basis polynomial of the domain evaluated at a point x ∉ H.
func (d *Domain) LagrangeEval(i uint64, x *fr.Element) fr.Element {
	zh := d.VanishingEval(x)
	wi := d.Element(i)
	var denom fr.Element
	denom.Sub(x, &wi)
	nEl := fr.NewElement(d.N)
	denom.Mul(&denom, &nEl)
	denom.Inverse(&denom)
	var out fr.Element
	out.Mul(&zh, &wi)
	out.Mul(&out, &denom)
	return out
}

// checkLen validates that a transform input matches the domain size. The
// length is caller-controlled (it reaches the prover from circuit sizes),
// so a mismatch is reported as an error rather than a panic.
func (d *Domain) checkLen(a []fr.Element) error {
	if uint64(len(a)) != d.N {
		return fmt.Errorf("poly: fft input length %d != domain size %d", len(a), d.N)
	}
	return nil
}

// FFT transforms coefficients to evaluations over the domain, in place.
// a must have length N.
func (d *Domain) FFT(a []fr.Element) error {
	if err := d.checkLen(a); err != nil {
		return err
	}
	fwd, _ := d.twiddles()
	d.fft(a, fwd, parallel.Workers())
	return nil
}

// IFFT transforms evaluations over the domain back to coefficients,
// in place. a must have length N.
func (d *Domain) IFFT(a []fr.Element) error {
	if err := d.checkLen(a); err != nil {
		return err
	}
	_, inv := d.twiddles()
	d.fft(a, inv, parallel.Workers())
	mulScalarInPlace(a, &d.NInv)
	return nil
}

// FFTCoset evaluates the polynomial over the coset g·H, in place.
func (d *Domain) FFTCoset(a []fr.Element) error {
	if err := d.checkLen(a); err != nil {
		return err
	}
	fwd, _ := d.cosetPowers()
	mulVecInPlace(a, fwd)
	return d.FFT(a)
}

// IFFTCoset interpolates evaluations over the coset g·H back to
// coefficients, in place.
func (d *Domain) IFFTCoset(a []fr.Element) error {
	if err := d.IFFT(a); err != nil {
		return err
	}
	_, inv := d.cosetPowers()
	mulVecInPlace(a, inv)
	return nil
}

// mulScalarInPlace sets a[i] *= c for all i, splitting large inputs across
// workers.
func mulScalarInPlace(a []fr.Element, c *fr.Element) {
	if len(a) < parallelFFTThreshold {
		for i := range a {
			a[i].Mul(&a[i], c)
		}
		return
	}
	parallel.Execute(len(a), func(start, end int) {
		for i := start; i < end; i++ {
			a[i].Mul(&a[i], c)
		}
	})
}

// mulVecInPlace sets a[i] *= b[i] for all i, splitting large inputs across
// workers.
func mulVecInPlace(a, b []fr.Element) {
	if len(a) < parallelFFTThreshold {
		for i := range a {
			a[i].Mul(&a[i], &b[i])
		}
		return
	}
	parallel.Execute(len(a), func(start, end int) {
		for i := start; i < end; i++ {
			a[i].Mul(&a[i], &b[i])
		}
	})
}

// fft is an in-place iterative radix-2 Cooley–Tukey transform with
// bit-reversal reordering. tw is the half-size twiddle table for the
// transform direction (tw[j] = root^j, j < N/2).
//
// Parallelisation: in early stages the row is made of many independent
// blocks, which are split across workers block-wise; in the final stages
// (few blocks, long butterfly runs) the butterfly index range inside each
// block is split instead. Every butterfly writes the same two slots it
// reads and each output element is produced by the same multiply/add
// sequence as the serial transform, so the result is bit-identical for any
// worker count.
//
// The public entry points (FFT, IFFT, …) have already validated
// len(a) == d.N; fft assumes it.
func (d *Domain) fft(a []fr.Element, tw []fr.Element, workers int) {
	n := uint64(len(a))
	if n == 1 {
		return
	}
	serial := workers <= 1 || n < parallelFFTThreshold
	bitReversePermute(a, d.Log, serial)
	for s := 1; s <= d.Log; s++ {
		m := uint64(1) << s
		half := m >> 1
		stride := n >> s
		if serial {
			for k := uint64(0); k < n; k += m {
				butterflyRange(a, tw, k, half, stride, 0, half)
			}
			continue
		}
		if blocks := n / m; blocks >= uint64(workers) {
			parallel.ExecuteWorkers(int(blocks), workers, func(bs, be int) {
				for b := bs; b < be; b++ {
					k := uint64(b) * m
					butterflyRange(a, tw, k, half, stride, 0, half)
				}
			})
		} else {
			for k := uint64(0); k < n; k += m {
				parallel.ExecuteWorkers(int(half), workers, func(js, je int) {
					butterflyRange(a, tw, k, half, stride, uint64(js), uint64(je))
				})
			}
		}
	}
}

// butterflyRange applies the stage butterflies for indices j ∈ [j0, j1)
// of the block starting at k: (a[k+j], a[k+j+half]) ←
// (a[k+j] + ω^(j·stride)·a[k+j+half], a[k+j] - ω^(j·stride)·a[k+j+half]).
func butterflyRange(a, tw []fr.Element, k, half, stride, j0, j1 uint64) {
	for j := j0; j < j1; j++ {
		idx := k + j
		a[idx+half].Mul(&a[idx+half], &tw[j*stride])
		fr.Butterfly(&a[idx], &a[idx+half])
	}
}

// bitReversePermute applies the bit-reversal reordering. Each swap pair
// (i, rev(i)) is executed exactly once, by the smaller index, so the
// parallel split over i is race-free.
func bitReversePermute(a []fr.Element, log int, serial bool) {
	n := uint64(len(a))
	shift := 64 - uint(log)
	if serial {
		for i := uint64(0); i < n; i++ {
			j := bits.Reverse64(i) >> shift
			if i < j {
				a[i], a[j] = a[j], a[i]
			}
		}
		return
	}
	parallel.Execute(int(n), func(start, end int) {
		for i := uint64(start); i < uint64(end); i++ {
			j := bits.Reverse64(i) >> shift
			if i < j {
				a[i], a[j] = a[j], a[i]
			}
		}
	})
}

// fftSerialReference is the original fully-serial transform with twiddles
// recomputed by chained multiplication, retained as the bit-exact reference
// the property tests compare the table-driven parallel transform against.
func (d *Domain) fftSerialReference(a []fr.Element, w *fr.Element) error {
	n := uint64(len(a))
	if err := d.checkLen(a); err != nil {
		return err
	}
	if n == 1 {
		return nil
	}
	shift := 64 - uint(d.Log)
	for i := uint64(0); i < n; i++ {
		j := bits.Reverse64(i) >> shift
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	stageRoot := make([]fr.Element, d.Log+1)
	stageRoot[d.Log] = *w
	for s := d.Log - 1; s >= 1; s-- {
		stageRoot[s].Square(&stageRoot[s+1])
	}
	for s := 1; s <= d.Log; s++ {
		m := uint64(1) << s
		half := m >> 1
		wm := stageRoot[s]
		for k := uint64(0); k < n; k += m {
			wj := fr.One()
			for j := uint64(0); j < half; j++ {
				var t fr.Element
				t.Mul(&a[k+j+half], &wj)
				var u fr.Element
				u.Set(&a[k+j])
				a[k+j].Add(&u, &t)
				a[k+j+half].Sub(&u, &t)
				wj.Mul(&wj, &wm)
			}
		}
	}
	return nil
}
