// Package poly implements dense univariate polynomials over the BN254
// scalar field together with radix-2 FFT evaluation domains, the two pieces
// of algebra the Plonk prover is made of.
package poly

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/fr"
)

// Polynomial is a polynomial in coefficient form; index i holds the
// coefficient of X^i. A nil or empty slice is the zero polynomial.
type Polynomial []fr.Element

// NewZero returns the zero polynomial with capacity for degree n-1.
func NewZero(n int) Polynomial { return make(Polynomial, n) }

// Clone returns a deep copy of p.
func (p Polynomial) Clone() Polynomial {
	q := make(Polynomial, len(p))
	copy(q, p)
	return q
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Polynomial) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if !p[i].IsZero() {
			return i
		}
	}
	return -1
}

// IsZero reports whether p is the zero polynomial.
func (p Polynomial) IsZero() bool { return p.Degree() == -1 }

// Trim returns p without trailing zero coefficients.
func (p Polynomial) Trim() Polynomial {
	return p[:p.Degree()+1]
}

// Equal reports whether p and q represent the same polynomial.
func (p Polynomial) Equal(q Polynomial) bool {
	pt, qt := p.Trim(), q.Trim()
	if len(pt) != len(qt) {
		return false
	}
	for i := range pt {
		if !pt[i].Equal(&qt[i]) {
			return false
		}
	}
	return true
}

// Eval evaluates p at x using Horner's rule.
func (p Polynomial) Eval(x *fr.Element) fr.Element {
	var acc fr.Element
	for i := len(p) - 1; i >= 0; i-- {
		acc.Mul(&acc, x)
		acc.Add(&acc, &p[i])
	}
	return acc
}

// Add returns p + q.
func Add(p, q Polynomial) Polynomial {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Polynomial, n)
	copy(out, p)
	for i := range q {
		out[i].Add(&out[i], &q[i])
	}
	return out
}

// Sub returns p - q.
func Sub(p, q Polynomial) Polynomial {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Polynomial, n)
	copy(out, p)
	for i := range q {
		out[i].Sub(&out[i], &q[i])
	}
	return out
}

// MulScalar returns c·p.
func MulScalar(p Polynomial, c *fr.Element) Polynomial {
	out := make(Polynomial, len(p))
	for i := range p {
		out[i].Mul(&p[i], c)
	}
	return out
}

// Mul returns p · q. It uses schoolbook multiplication below a small
// threshold and FFT multiplication above it. It errors when the product
// degree exceeds the two-adicity of the scalar field (no FFT domain is
// large enough), which is reachable from attacker-sized inputs.
func Mul(p, q Polynomial) (Polynomial, error) {
	p, q = p.Trim(), q.Trim()
	if len(p) == 0 || len(q) == 0 {
		return Polynomial{}, nil
	}
	if len(p)*len(q) <= 1024 {
		out := make(Polynomial, len(p)+len(q)-1)
		for i := range p {
			if p[i].IsZero() {
				continue
			}
			for j := range q {
				var t fr.Element
				t.Mul(&p[i], &q[j])
				out[i+j].Add(&out[i+j], &t)
			}
		}
		return out, nil
	}
	n := len(p) + len(q) - 1
	d, err := NewDomain(uint64(n))
	if err != nil {
		return nil, fmt.Errorf("poly: product of degrees %d and %d: %w", len(p)-1, len(q)-1, err)
	}
	pe := make([]fr.Element, d.N)
	qe := make([]fr.Element, d.N)
	copy(pe, p)
	copy(qe, q)
	if err := d.FFT(pe); err != nil {
		return nil, err
	}
	if err := d.FFT(qe); err != nil {
		return nil, err
	}
	for i := range pe {
		pe[i].Mul(&pe[i], &qe[i])
	}
	if err := d.IFFT(pe); err != nil {
		return nil, err
	}
	return Polynomial(pe[:n]), nil
}

// DivideByLinear divides p by (X - z), returning the quotient q and the
// remainder r = p(z), so that p(X) = q(X)(X-z) + r. This is the opening
// quotient of a KZG proof.
func DivideByLinear(p Polynomial, z *fr.Element) (Polynomial, fr.Element) {
	if len(p) == 0 {
		return Polynomial{}, fr.Zero()
	}
	q := make(Polynomial, len(p)-1)
	var acc fr.Element
	for i := len(p) - 1; i >= 1; i-- {
		acc.Mul(&acc, z)
		acc.Add(&acc, &p[i])
		q[i-1] = acc
	}
	var rem fr.Element
	rem.Mul(&acc, z)
	rem.Add(&rem, &p[0])
	return q, rem
}

// Div returns the quotient and remainder of p / q by long division.
// It errors on division by the zero polynomial.
func Div(p, q Polynomial) (quot, rem Polynomial, err error) {
	q = q.Trim()
	if len(q) == 0 {
		return nil, nil, fmt.Errorf("poly: division by zero polynomial")
	}
	rem = p.Clone().Trim()
	if len(rem) < len(q) {
		return Polynomial{}, rem, nil
	}
	quot = make(Polynomial, len(rem)-len(q)+1)
	var leadInv fr.Element
	leadInv.Inverse(&q[len(q)-1])
	for len(rem) >= len(q) {
		d := len(rem) - len(q)
		var c fr.Element
		c.Mul(&rem[len(rem)-1], &leadInv)
		quot[d] = c
		for i := range q {
			var t fr.Element
			t.Mul(&c, &q[i])
			rem[d+i].Sub(&rem[d+i], &t)
		}
		rem = rem[:len(rem)-1].Trim()
	}
	return quot, rem, nil
}

// Interpolate returns the unique polynomial of degree < len(xs) passing
// through all (xs[i], ys[i]) via Lagrange interpolation. The xs must be
// distinct; this is O(n²) and intended for small n (tests, gadget setup).
// It errors when the point and value counts differ.
func Interpolate(xs, ys []fr.Element) (Polynomial, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("poly: interpolation point count mismatch (%d points, %d values)", len(xs), len(ys))
	}
	n := len(xs)
	out := make(Polynomial, n)
	for i := 0; i < n; i++ {
		// basis_i(X) = ∏_{j≠i} (X - x_j)/(x_i - x_j)
		basis := Polynomial{fr.One()}
		denom := fr.One()
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			var negXj fr.Element
			negXj.Neg(&xs[j])
			var err error
			basis, err = Mul(basis, Polynomial{negXj, fr.One()})
			if err != nil {
				return nil, err
			}
			var d fr.Element
			d.Sub(&xs[i], &xs[j])
			denom.Mul(&denom, &d)
		}
		denom.Inverse(&denom)
		denom.Mul(&denom, &ys[i])
		for k := range basis {
			var t fr.Element
			t.Mul(&basis[k], &denom)
			out[k].Add(&out[k], &t)
		}
	}
	return out, nil
}
