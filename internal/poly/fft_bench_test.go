package poly

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
)

// benchFFTSizes are the domain sizes the BENCH trajectories track.
var benchFFTSizes = []int{10, 12, 14, 16}

func BenchmarkFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, logN := range benchFFTSizes {
		n := uint64(1) << logN
		d, err := NewDomain(n)
		if err != nil {
			b.Fatal(err)
		}
		in := randVec(rng, n)
		d.FFT(append([]fr.Element(nil), in...)) // warm the twiddle cache
		b.Run(fmt.Sprintf("2^%d", logN), func(b *testing.B) {
			a := make([]fr.Element, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(a, in)
				d.FFT(a)
			}
		})
	}
}

func BenchmarkIFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, logN := range benchFFTSizes {
		n := uint64(1) << logN
		d, err := NewDomain(n)
		if err != nil {
			b.Fatal(err)
		}
		in := randVec(rng, n)
		d.IFFT(append([]fr.Element(nil), in...))
		b.Run(fmt.Sprintf("2^%d", logN), func(b *testing.B) {
			a := make([]fr.Element, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(a, in)
				d.IFFT(a)
			}
		})
	}
}

func BenchmarkFFTCoset(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, logN := range benchFFTSizes {
		n := uint64(1) << logN
		d, err := NewDomain(n)
		if err != nil {
			b.Fatal(err)
		}
		in := randVec(rng, n)
		d.FFTCoset(append([]fr.Element(nil), in...))
		b.Run(fmt.Sprintf("2^%d", logN), func(b *testing.B) {
			a := make([]fr.Element, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(a, in)
				d.FFTCoset(a)
			}
		})
	}
}
