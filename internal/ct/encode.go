package ct

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
)

// Wire format, following the plonk ZKPF convention: a 4-byte magic, a
// 1-byte version, then fixed-width fields. Every point is the 64-byte
// uncompressed G1 encoding (decoding rejects off-curve points), every
// scalar the canonical 32-byte big-endian fr encoding.
const (
	proofMagic   = "ZKCT"
	proofVersion = 1

	outputWire = 64 + 160       // commitment ‖ audit cipher
	outProofFixed = 3*64 + 4*32 // TOpen TEnc1 TEnc2 ‖ PT ZV ZR ZRho
)

// ErrBadProofEncoding is returned when decoding rejects proof bytes.
var ErrBadProofEncoding = errors.New("ct: malformed transfer proof encoding")

// maxRangeProofLen caps one embedded π_ct blob; real proofs are ~1-2 KiB,
// the cap just keeps a hostile length prefix from driving allocation.
const maxRangeProofLen = 1 << 20

// Bytes encodes an output as commitment ‖ audit cipher (224 bytes).
func (o *Output) Bytes() [outputWire]byte {
	var out [outputWire]byte
	c := o.C.Bytes()
	a := o.Audit.Bytes()
	copy(out[:64], c[:])
	copy(out[64:], a[:])
	return out
}

// OutputFromBytes decodes a 224-byte output encoding.
func OutputFromBytes(b []byte) (Output, error) {
	var o Output
	if len(b) != outputWire {
		return o, fmt.Errorf("%w: output is %d bytes", ErrBadCommitment, len(b))
	}
	var err error
	if o.C, err = CommitmentFromBytes(b[:64]); err != nil {
		return o, err
	}
	if o.Audit, err = AuditCipherFromBytes(b[64:]); err != nil {
		return o, err
	}
	return o, nil
}

// Bytes serializes the proof: magic, version, flags, output count, the
// balance pair, then each output proof with a length-prefixed π_ct.
func (p *Proof) Bytes() []byte {
	size := 4 + 1 + 1 + 2 + 64 + 32
	blobs := make([][]byte, len(p.Outputs))
	for i := range p.Outputs {
		if p.Outputs[i].Range != nil {
			blobs[i] = p.Outputs[i].Range.Bytes()
		}
		size += outProofFixed + 4 + len(blobs[i])
	}
	out := make([]byte, 0, size)
	out = append(out, proofMagic...)
	out = append(out, proofVersion, 0)
	var n2 [2]byte
	binary.BigEndian.PutUint16(n2[:], uint16(len(p.Outputs)))
	out = append(out, n2[:]...)
	tb := p.TBal.Bytes()
	zb := p.ZBal.Bytes()
	out = append(out, tb[:]...)
	out = append(out, zb[:]...)
	for i := range p.Outputs {
		op := &p.Outputs[i]
		to := op.TOpen.Bytes()
		t1 := op.TEnc1.Bytes()
		t2 := op.TEnc2.Bytes()
		out = append(out, to[:]...)
		out = append(out, t1[:]...)
		out = append(out, t2[:]...)
		pt := op.PT.Bytes()
		zv := op.ZV.Bytes()
		zr := op.ZR.Bytes()
		zrho := op.ZRho.Bytes()
		out = append(out, pt[:]...)
		out = append(out, zv[:]...)
		out = append(out, zr[:]...)
		out = append(out, zrho[:]...)
		var l4 [4]byte
		binary.BigEndian.PutUint32(l4[:], uint32(len(blobs[i])))
		out = append(out, l4[:]...)
		out = append(out, blobs[i]...)
	}
	return out
}

// ProofFromBytes decodes a transfer proof, rejecting bad magic, unknown
// versions, arity over MaxParties, off-curve points, non-canonical
// scalars, and truncated or trailing bytes.
func ProofFromBytes(b []byte) (*Proof, error) {
	if len(b) < 4+1+1+2+64+32 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadProofEncoding, len(b))
	}
	if string(b[:4]) != proofMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadProofEncoding)
	}
	if b[4] != proofVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrBadProofEncoding, b[4])
	}
	if b[5] != 0 {
		return nil, fmt.Errorf("%w: reserved flags set", ErrBadProofEncoding)
	}
	n := int(binary.BigEndian.Uint16(b[6:8]))
	if n == 0 || n > MaxParties {
		return nil, fmt.Errorf("%w: %d outputs", ErrBadProofEncoding, n)
	}
	rest := b[8:]
	p := &Proof{Outputs: make([]OutputProof, n)}
	var err error
	if p.TBal, err = bn254.G1FromBytes(rest[:64]); err != nil {
		return nil, fmt.Errorf("%w: TBal: %w", ErrBadProofEncoding, err)
	}
	if p.ZBal, err = fr.FromBytesCanonical(rest[64:96]); err != nil {
		return nil, fmt.Errorf("%w: ZBal: %w", ErrBadProofEncoding, err)
	}
	rest = rest[96:]
	for i := 0; i < n; i++ {
		if len(rest) < outProofFixed+4 {
			return nil, fmt.Errorf("%w: truncated output %d", ErrBadProofEncoding, i)
		}
		op := &p.Outputs[i]
		if op.TOpen, err = bn254.G1FromBytes(rest[:64]); err != nil {
			return nil, fmt.Errorf("%w: output %d TOpen: %w", ErrBadProofEncoding, i, err)
		}
		if op.TEnc1, err = bn254.G1FromBytes(rest[64:128]); err != nil {
			return nil, fmt.Errorf("%w: output %d TEnc1: %w", ErrBadProofEncoding, i, err)
		}
		if op.TEnc2, err = bn254.G1FromBytes(rest[128:192]); err != nil {
			return nil, fmt.Errorf("%w: output %d TEnc2: %w", ErrBadProofEncoding, i, err)
		}
		if op.PT, err = fr.FromBytesCanonical(rest[192:224]); err != nil {
			return nil, fmt.Errorf("%w: output %d PT: %w", ErrBadProofEncoding, i, err)
		}
		if op.ZV, err = fr.FromBytesCanonical(rest[224:256]); err != nil {
			return nil, fmt.Errorf("%w: output %d ZV: %w", ErrBadProofEncoding, i, err)
		}
		if op.ZR, err = fr.FromBytesCanonical(rest[256:288]); err != nil {
			return nil, fmt.Errorf("%w: output %d ZR: %w", ErrBadProofEncoding, i, err)
		}
		if op.ZRho, err = fr.FromBytesCanonical(rest[288:320]); err != nil {
			return nil, fmt.Errorf("%w: output %d ZRho: %w", ErrBadProofEncoding, i, err)
		}
		l := binary.BigEndian.Uint32(rest[320:324])
		if l > maxRangeProofLen {
			return nil, fmt.Errorf("%w: output %d range proof length %d", ErrBadProofEncoding, i, l)
		}
		rest = rest[324:]
		if uint32(len(rest)) < l {
			return nil, fmt.Errorf("%w: truncated range proof %d", ErrBadProofEncoding, i)
		}
		if l > 0 {
			rp, err := plonk.ProofFromBytes(rest[:l])
			if err != nil {
				return nil, fmt.Errorf("%w: output %d range proof: %w", ErrBadProofEncoding, i, err)
			}
			op.Range = rp
		}
		rest = rest[l:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadProofEncoding, len(rest))
	}
	return p, nil
}
