package ct

import (
	"fmt"
	"sync"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/plonk"
	"github.com/zkdet/zkdet/internal/poseidon"
)

// RangeBits bounds every confidential amount: v < 2^24. Two limbs of the
// k=12 lookup range table cover it exactly, and sums of up to MaxParties
// amounts stay far below the field modulus, so the sigma protocol's
// balance equation cannot wrap.
const RangeBits = 24

// MaxParties caps the inputs and outputs of one transfer; with 24-bit
// amounts and ≤16 outputs the total value stays below 2^28.
const MaxParties = 16

// BuildRangeCircuit constructs π_ct, the per-output circuit gluing the
// transfer's sigma protocol to an in-circuit range check. Public inputs
// (in order): the Fiat–Shamir challenge e, the sigma response z_v, and a
// Poseidon commitment P_t to the sigma nonce t_v. Secrets: the amount v,
// the nonce t_v, and the Poseidon blinder s_t. Constraints:
//
//	v < 2^RangeBits            (lookup range gadget, k=12 limbs)
//	z_v = t_v + e·v            (the sigma response equation)
//	P_t = PoseidonCommit(t_v; s_t)
//
// Soundness of the glue: P_t enters the transcript before e is squeezed,
// so t_v is fixed first; given (e, z_v, P_t) the circuit's v is then
// uniquely determined as (z_v − t_v)/e, the same value the sigma
// extractor obtains from the commitment-opening equations. A prover
// committing an out-of-range amount would need t_v' ≠ t_v with
// z_v − t_v' ∈ [0, 2^RangeBits) AND PoseidonCommit(t_v'; s') = P_t — a
// Poseidon binding break — or must predict e, so cheating succeeds with
// probability ≈ 2^RangeBits/|Fr| per transcript.
func BuildRangeCircuit(e, zv, pt, v, tv, st fr.Element) *circuit.Builder {
	b := circuit.NewBuilder()
	b.EnableLookups(circuit.DefaultRangeTableBits)
	eV := b.Public(e)
	zvV := b.Public(zv)
	ptV := b.Public(pt)
	vV := b.Secret(v)
	tvV := b.Secret(tv)
	stV := b.Secret(st)
	b.AssertRange(vV, RangeBits)
	b.AssertEqual(b.Add(tvV, b.Mul(eV, vV)), zvV)
	b.AssertEqual(poseidon.GadgetCommit(b, []circuit.Variable{tvV}, stV), ptV)
	return b
}

// AuditRangeCircuit instantiates π_ct with a small consistent witness for
// the soundness auditor registry.
func AuditRangeCircuit() *circuit.Builder {
	v := fr.NewElement(123456)
	tv := fr.NewElement(7777)
	st := fr.NewElement(99)
	e := fr.NewElement(31337)
	var ev fr.Element
	ev.Mul(&e, &v)
	var zv fr.Element
	zv.Add(&tv, &ev)
	pt := poseidon.CommitWith([]fr.Element{tv}, st)
	return BuildRangeCircuit(e, zv, pt, v, tv, st)
}

// RangeProver holds the one-time Plonk preprocessing for π_ct over a
// deployment's SRS. The circuit shape is witness-independent, so the keys
// are built once and reused for every output.
type RangeProver struct {
	srs *kzg.SRS

	mu sync.Mutex
	pk *plonk.ProvingKey   // guarded by mu
	vk *plonk.VerifyingKey // guarded by mu
}

// NewRangeProver wraps an SRS. The SRS must cover the k=12 range table's
// 2^12-row domain (NewTestSystem(1<<12) or larger); Setup reports an
// undersized SRS on first use.
func NewRangeProver(srs *kzg.SRS) *RangeProver { return &RangeProver{srs: srs} }

// keys compiles a zero-witness instance and runs Setup once.
func (rp *RangeProver) keys() (*plonk.ProvingKey, *plonk.VerifyingKey, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if rp.pk != nil {
		return rp.pk, rp.vk, nil
	}
	var z fr.Element
	cs, _, err := BuildRangeCircuit(z, z, z, z, z, z).Compile()
	if err != nil {
		return nil, nil, fmt.Errorf("ct: compiling pi_ct: %w", err)
	}
	pk, vk, err := plonk.Setup(cs, rp.srs)
	if err != nil {
		return nil, nil, fmt.Errorf("ct: pi_ct setup: %w", err)
	}
	rp.pk, rp.vk = pk, vk
	return pk, vk, nil
}

// VK returns the π_ct verifying key — what the on-chain range verifier
// contract is deployed with.
func (rp *RangeProver) VK() (*plonk.VerifyingKey, error) {
	_, vk, err := rp.keys()
	return vk, err
}

// Prove generates one output's π_ct for the given instance.
func (rp *RangeProver) Prove(e, zv, pt, v, tv, st fr.Element) (*plonk.Proof, error) {
	pk, _, err := rp.keys()
	if err != nil {
		return nil, err
	}
	cs, witness, err := BuildRangeCircuit(e, zv, pt, v, tv, st).Compile()
	if err != nil {
		return nil, fmt.Errorf("ct: compiling pi_ct witness: %w", err)
	}
	if err := cs.IsSatisfied(witness); err != nil {
		return nil, fmt.Errorf("ct: pi_ct witness: %w", err)
	}
	proof, err := plonk.Prove(pk, witness)
	if err != nil {
		return nil, fmt.Errorf("ct: proving pi_ct: %w", err)
	}
	return proof, nil
}

// VerifyRange checks one output's π_ct against the public inputs
// (e, z_v, P_t).
func VerifyRange(vk *plonk.VerifyingKey, proof *plonk.Proof, e, zv, pt fr.Element) error {
	return plonk.Verify(vk, proof, []fr.Element{e, zv, pt})
}

// RangePublics returns the π_ct public-input vector of one output, in the
// order the circuit declares them.
func RangePublics(e, zv, pt fr.Element) []fr.Element { return []fr.Element{e, zv, pt} }
