package ct

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
)

// AuditCipher is the designated-auditor encryption of one output's
// opening. The amount travels as exponent ElGamal under the auditor key A:
//
//	E1 = ρ·G,  E2 = v·G + ρ·A
//
// so the auditor recovers v·G = E2 − sk·E1 and solves the RangeBits-bounded
// discrete log. The blinder travels as hashed ElGamal sharing the same
// ephemeral ρ: CR = r + H(ρ·A). The sigma proof of a transfer proves E1/E2
// consistent with the commitment (same v, same ρ); CR is NOT proven in
// zero knowledge — the auditor verifies it after the fact by recomputing
// Commit(v, r) and comparing against the on-chain commitment, so a sender
// who garbles CR is detected (and flagged) at audit time.
type AuditCipher struct {
	E1 bn254.G1Affine
	E2 bn254.G1Affine
	CR fr.Element
}

// Audit errors.
var (
	ErrAuditOpen     = errors.New("ct: audit ciphertext does not open the commitment")
	ErrValueOverflow = errors.New("ct: decrypted value exceeds the range bound")
	ErrBadCipher     = errors.New("ct: malformed audit ciphertext")
)

// keystream derives the hashed-ElGamal pad for the blinder from the shared
// point ρ·A = sk·E1.
func keystream(shared *bn254.G1Affine) fr.Element {
	h := sha256.New()
	h.Write([]byte("zkdet/ct/keystream/v1"))
	b := shared.Bytes()
	h.Write(b[:])
	return fr.FromBytes(h.Sum(nil))
}

// EncryptOpening encrypts (v, r) to the auditor public key with the
// ephemeral scalar rho. The caller proves E1/E2 consistency inside the
// transfer's sigma proof, which is why rho is an input rather than drawn
// here.
func (p *Params) EncryptOpening(auditor *bn254.G1Affine, v uint64, r, rho *fr.Element) AuditCipher {
	vEl := fr.NewElement(v)
	vG := bn254.G1ScalarMul(&p.G, &vEl)
	rhoA := bn254.G1ScalarMul(auditor, rho)
	var c AuditCipher
	c.E1 = bn254.G1ScalarMul(&p.G, rho)
	c.E2 = bn254.G1Add(&vG, &rhoA)
	pad := keystream(&rhoA)
	c.CR.Add(r, &pad)
	return c
}

// Bytes returns the 160-byte encoding E1 ‖ E2 ‖ CR.
func (c *AuditCipher) Bytes() [160]byte {
	var out [160]byte
	e1 := c.E1.Bytes()
	e2 := c.E2.Bytes()
	cr := c.CR.Bytes()
	copy(out[0:64], e1[:])
	copy(out[64:128], e2[:])
	copy(out[128:160], cr[:])
	return out
}

// AuditCipherFromBytes decodes a 160-byte encoding, rejecting off-curve
// points and non-canonical scalars.
func AuditCipherFromBytes(b []byte) (AuditCipher, error) {
	var c AuditCipher
	if len(b) != 160 {
		return c, fmt.Errorf("%w: %d bytes", ErrBadCipher, len(b))
	}
	var err error
	if c.E1, err = bn254.G1FromBytes(b[0:64]); err != nil {
		return c, fmt.Errorf("%w: E1: %w", ErrBadCipher, err)
	}
	if c.E2, err = bn254.G1FromBytes(b[64:128]); err != nil {
		return c, fmt.Errorf("%w: E2: %w", ErrBadCipher, err)
	}
	if c.CR, err = fr.FromBytesCanonical(b[128:160]); err != nil {
		return c, fmt.Errorf("%w: CR: %w", ErrBadCipher, err)
	}
	return c, nil
}

// babyBits splits the RangeBits-bounded discrete log for baby-step
// giant-step: 2^babyBits baby steps and 2^(RangeBits-babyBits) giant
// steps.
const babyBits = RangeBits / 2

// AuditorKey is the designated auditor's ElGamal keypair plus a lazily
// built baby-step table for bounded discrete logs.
type AuditorKey struct {
	sk  fr.Element // the auditor's long-term decryption secret
	pub bn254.G1Affine

	babyOnce sync.Once
	baby     map[[64]byte]uint64 // i·G → i, written once inside babyOnce
	negStep  bn254.G1Affine      // -(2^babyBits)·G
}

// GenerateAuditorKey draws a fresh auditor keypair from the reader (or
// crypto/rand when nil).
func GenerateAuditorKey(r io.Reader) (*AuditorKey, error) {
	if r == nil {
		r = rand.Reader
	}
	sk, err := fr.Random(r)
	if err != nil {
		return nil, fmt.Errorf("ct: auditor key: %w", err)
	}
	return AuditorKeyFromSecret(sk), nil
}

// AuditorKeyFromSecret builds the keypair from an existing secret — the
// deterministic constructor cluster genesis and tests use.
func AuditorKeyFromSecret(sk fr.Element) *AuditorKey {
	g := bn254.G1Generator()
	return &AuditorKey{sk: sk, pub: bn254.G1ScalarMul(&g, &sk)}
}

// PublicKey returns A = sk·G, the genesis parameter every replica shares.
func (ak *AuditorKey) PublicKey() bn254.G1Affine { return ak.pub }

// buildBabyTable fills the baby-step table i·G for i < 2^babyBits, keyed
// by the full 64-byte point encoding (no x-coordinate sign ambiguity).
func (ak *AuditorKey) buildBabyTable() {
	g := bn254.G1Generator()
	ak.baby = make(map[[64]byte]uint64, 1<<babyBits)
	var cur bn254.G1Affine // infinity = 0·G
	for i := uint64(0); i < 1<<babyBits; i++ {
		ak.baby[cur.Bytes()] = i
		cur = bn254.G1Add(&cur, &g)
	}
	step := fr.NewElement(1 << babyBits)
	stepP := bn254.G1ScalarMul(&g, &step)
	ak.negStep.Neg(&stepP)
}

// boundedDLog solves target = v·G for v < 2^RangeBits by baby-step
// giant-step.
func (ak *AuditorKey) boundedDLog(target *bn254.G1Affine) (uint64, error) {
	ak.babyOnce.Do(ak.buildBabyTable)
	cur := *target
	for j := uint64(0); j < 1<<(RangeBits-babyBits); j++ {
		if i, ok := ak.baby[cur.Bytes()]; ok {
			return j<<babyBits + i, nil
		}
		cur = bn254.G1Add(&cur, &ak.negStep)
	}
	return 0, ErrValueOverflow
}

// Open decrypts an output's opening and checks it against the on-chain
// commitment. The returned opening always satisfies
// params.Commit(V, R) == c; a ciphertext whose CR component was garbled by
// the sender fails the check and surfaces as ErrAuditOpen — the sigma
// proof guarantees the amount v is the committed one, so an ErrAuditOpen
// with a successfully decrypted v indicates a corrupted blinder channel,
// not a forged amount.
func (ak *AuditorKey) Open(params *Params, c Commitment, cipher *AuditCipher) (Opening, error) {
	shared := bn254.G1ScalarMul(&cipher.E1, &ak.sk)
	var negShared bn254.G1Affine
	negShared.Neg(&shared)
	vG := bn254.G1Add(&cipher.E2, &negShared)
	v, err := ak.boundedDLog(&vG)
	if err != nil {
		return Opening{}, err
	}
	pad := keystream(&shared)
	var r fr.Element
	r.Sub(&cipher.CR, &pad)
	if !params.Commit(v, &r).Equal(c) {
		return Opening{}, fmt.Errorf("%w: v=%d", ErrAuditOpen, v)
	}
	return Opening{V: v, R: r}, nil
}
