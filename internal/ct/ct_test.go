package ct

import (
	"errors"
	"sync"
	"testing"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/poseidon"
)

// testSRS is shared across tests: π_ct needs the 2^12-row range-table
// domain, so the SRS covers 4·4096+16 points.
var (
	srsOnce sync.Once
	srsInst *kzg.SRS
	srsErr  error
)

func testSRS(t *testing.T) *kzg.SRS {
	t.Helper()
	srsOnce.Do(func() {
		tau := fr.NewElement(0x5eed2025)
		srsInst, srsErr = kzg.NewSRSFromSecret(4*4096+16, &tau)
	})
	if srsErr != nil {
		t.Fatalf("building SRS: %v", srsErr)
	}
	return srsInst
}

var proverOnce sync.Once
var proverInst *RangeProver

func testProver(t *testing.T) *RangeProver {
	t.Helper()
	srs := testSRS(t)
	proverOnce.Do(func() { proverInst = NewRangeProver(srs) })
	return proverInst
}

func TestPedersenHomomorphic(t *testing.T) {
	p := DefaultParams()
	if p.H.Equal(&p.G) || p.H.IsInfinity() || !p.H.IsOnCurve() {
		t.Fatalf("bad H")
	}
	r1 := fr.NewElement(111)
	r2 := fr.NewElement(222)
	c1 := p.Commit(30, &r1)
	c2 := p.Commit(12, &r2)
	var rsum fr.Element
	rsum.Add(&r1, &r2)
	if !c1.Add(c2).Equal(p.Commit(42, &rsum)) {
		t.Fatalf("homomorphic add broken")
	}
	var rdiff fr.Element
	rdiff.Sub(&r1, &r2)
	if !c1.Sub(c2).Equal(p.Commit(18, &rdiff)) {
		t.Fatalf("homomorphic sub broken")
	}
	b := c1.Bytes()
	back, err := CommitmentFromBytes(b[:])
	if err != nil || !back.Equal(c1) {
		t.Fatalf("round trip: %v", err)
	}
	bad := b
	bad[0] ^= 0xff
	if _, err := CommitmentFromBytes(bad[:]); err == nil {
		t.Fatalf("off-curve point accepted")
	}
}

func TestHashToG1Deterministic(t *testing.T) {
	a := hashToG1([]byte("seed-a"))
	b := hashToG1([]byte("seed-a"))
	c := hashToG1([]byte("seed-b"))
	if !a.Equal(&b) {
		t.Fatalf("hashToG1 not deterministic")
	}
	if a.Equal(&c) {
		t.Fatalf("distinct seeds collided")
	}
	if !a.IsOnCurve() || a.IsInfinity() {
		t.Fatalf("hashToG1 left the curve")
	}
}

func TestAuditorRoundTrip(t *testing.T) {
	p := DefaultParams()
	ak := AuditorKeyFromSecret(fr.NewElement(0xa0d17))
	pub := ak.PublicKey()
	for _, v := range []uint64{0, 1, 4095, 4096, 1<<24 - 1} {
		r := fr.NewElement(7*v + 13)
		rho := fr.NewElement(3*v + 1)
		out := p.NewOutput(&pub, v, &r, &rho)
		op, err := ak.Open(p, out.C, &out.Audit)
		if err != nil {
			t.Fatalf("open v=%d: %v", v, err)
		}
		if op.V != v || !op.R.Equal(&r) {
			t.Fatalf("open v=%d returned v=%d", v, op.V)
		}
	}
}

func TestAuditorDetectsGarbledBlinder(t *testing.T) {
	p := DefaultParams()
	ak := AuditorKeyFromSecret(fr.NewElement(5))
	pub := ak.PublicKey()
	r := fr.NewElement(42)
	rho := fr.NewElement(43)
	out := p.NewOutput(&pub, 100, &r, &rho)
	out.Audit.CR.Add(&out.Audit.CR, &r) // sender garbles the blinder channel
	if _, err := ak.Open(p, out.C, &out.Audit); !errors.Is(err, ErrAuditOpen) {
		t.Fatalf("want ErrAuditOpen, got %v", err)
	}
}

// buildTransfer makes a balanced 2-in/2-out statement with consistent
// secrets.
func buildTransfer(t *testing.T, p *Params, pub *bn254.G1Affine, ctx []byte) (*Statement, []Opening, []OutputSecret) {
	t.Helper()
	ins := []Opening{
		{V: 60, R: fr.NewElement(1001)},
		{V: 40, R: fr.NewElement(1002)},
	}
	outs := []OutputSecret{
		{V: 75, R: fr.NewElement(2001), Rho: fr.NewElement(3001)},
		{V: 25, R: fr.NewElement(2002), Rho: fr.NewElement(3002)},
	}
	st := &Statement{Context: ctx}
	for i := range ins {
		st.Inputs = append(st.Inputs, p.Commit(ins[i].V, &ins[i].R))
	}
	for i := range outs {
		st.Outputs = append(st.Outputs, p.NewOutput(pub, outs[i].V, &outs[i].R, &outs[i].Rho))
	}
	return st, ins, outs
}

func TestTransferProveVerify(t *testing.T) {
	p := DefaultParams()
	rp := testProver(t)
	ak := AuditorKeyFromSecret(fr.NewElement(77))
	pub := ak.PublicKey()
	st, ins, outs := buildTransfer(t, p, &pub, []byte("ctx-1"))
	proof, err := Prove(p, rp, &pub, st, ins, outs, nil)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	vk, err := rp.VK()
	if err != nil {
		t.Fatalf("vk: %v", err)
	}
	if err := Verify(p, vk, &pub, st, proof); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// The auditor can open every output of the proven statement.
	for i := range st.Outputs {
		op, err := ak.Open(p, st.Outputs[i].C, &st.Outputs[i].Audit)
		if err != nil || op.V != outs[i].V {
			t.Fatalf("auditor open output %d: v=%d err=%v", i, op.V, err)
		}
	}

	// Context binding: the same proof under a different context fails.
	st2 := *st
	st2.Context = []byte("ctx-2")
	if err := VerifySigma(p, &pub, &st2, proof); err == nil {
		t.Fatalf("context rebind accepted")
	}
	// Tampered response fails.
	bad := *proof
	bad.Outputs = append([]OutputProof(nil), proof.Outputs...)
	bad.Outputs[0].ZV.Add(&bad.Outputs[0].ZV, &bad.ZBal)
	var one fr.Element
	one.SetOne()
	bad.Outputs[0].ZV.Add(&bad.Outputs[0].ZV, &one)
	if err := VerifySigma(p, &pub, st, &bad); err == nil {
		t.Fatalf("tampered response accepted")
	}
}

func TestTransferRejectsUnbalanced(t *testing.T) {
	p := DefaultParams()
	rp := testProver(t)
	ak := AuditorKeyFromSecret(fr.NewElement(78))
	pub := ak.PublicKey()
	st, ins, outs := buildTransfer(t, p, &pub, nil)
	// Forge: inflate output 0 by 10 (keeping its commitment consistent
	// with the forged secrets) — the honest prover API refuses...
	outs[0].V += 10
	st.Outputs[0] = p.NewOutput(&pub, outs[0].V, &outs[0].R, &outs[0].Rho)
	if _, err := Prove(p, rp, &pub, st, ins, outs, nil); !errors.Is(err, ErrUnbalanced) {
		t.Fatalf("want ErrUnbalanced, got %v", err)
	}
	// ...and a proof built for the balanced statement cannot be replayed
	// against the inflated one.
	st2, ins2, outs2 := buildTransfer(t, p, &pub, nil)
	proof, err := Prove(p, rp, &pub, st2, ins2, outs2, nil)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if err := VerifySigma(p, &pub, st, proof); err == nil {
		t.Fatalf("unbalanced statement accepted")
	}
}

func TestMintProveVerify(t *testing.T) {
	p := DefaultParams()
	rp := testProver(t)
	ak := AuditorKeyFromSecret(fr.NewElement(79))
	pub := ak.PublicKey()
	outs := []OutputSecret{{V: 1000, R: fr.NewElement(1), Rho: fr.NewElement(2)}}
	st := &Statement{Mint: true, Context: []byte("mint")}
	st.Outputs = append(st.Outputs, p.NewOutput(&pub, outs[0].V, &outs[0].R, &outs[0].Rho))
	proof, err := Prove(p, rp, &pub, st, nil, outs, nil)
	if err != nil {
		t.Fatalf("prove mint: %v", err)
	}
	vk, err := rp.VK()
	if err != nil {
		t.Fatalf("vk: %v", err)
	}
	if err := Verify(p, vk, &pub, st, proof); err != nil {
		t.Fatalf("verify mint: %v", err)
	}
}

func TestRangeProofRejectsOutOfRange(t *testing.T) {
	p := DefaultParams()
	rp := testProver(t)
	ak := AuditorKeyFromSecret(fr.NewElement(80))
	pub := ak.PublicKey()
	// The prover refuses out-of-range outputs outright.
	outs := []OutputSecret{{V: 1 << RangeBits, R: fr.NewElement(1), Rho: fr.NewElement(2)}}
	st := &Statement{Mint: true}
	st.Outputs = append(st.Outputs, p.NewOutput(&pub, outs[0].V, &outs[0].R, &outs[0].Rho))
	if _, err := Prove(p, rp, &pub, st, nil, outs, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	// A directly forged witness fails inside the circuit.
	v := fr.NewElement(1 << RangeBits)
	tv := fr.NewElement(5)
	stt := fr.NewElement(6)
	e := fr.NewElement(7)
	var ev, zv fr.Element
	ev.Mul(&e, &v)
	zv.Add(&tv, &ev)
	pt := poseidon.CommitWith([]fr.Element{tv}, stt)
	if _, err := rp.Prove(e, zv, pt, v, tv, stt); err == nil {
		t.Fatalf("out-of-range witness proved")
	}
}

func TestProofEncodingRoundTrip(t *testing.T) {
	p := DefaultParams()
	rp := testProver(t)
	ak := AuditorKeyFromSecret(fr.NewElement(81))
	pub := ak.PublicKey()
	st, ins, outs := buildTransfer(t, p, &pub, []byte("enc"))
	proof, err := Prove(p, rp, &pub, st, ins, outs, nil)
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	b := proof.Bytes()
	back, err := ProofFromBytes(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back.Outputs) != len(proof.Outputs) || !back.ZBal.Equal(&proof.ZBal) {
		t.Fatalf("round trip mismatch")
	}
	vk, err := rp.VK()
	if err != nil {
		t.Fatalf("vk: %v", err)
	}
	if err := Verify(p, vk, &pub, st, back); err != nil {
		t.Fatalf("decoded proof rejected: %v", err)
	}
	// Truncation and trailing bytes are rejected.
	if _, err := ProofFromBytes(b[:len(b)-1]); err == nil {
		t.Fatalf("truncated proof accepted")
	}
	if _, err := ProofFromBytes(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatalf("trailing bytes accepted")
	}
	// Output wire round trip.
	ob := st.Outputs[0].Bytes()
	oback, err := OutputFromBytes(ob[:])
	if err != nil || !oback.C.Equal(st.Outputs[0].C) {
		t.Fatalf("output round trip: %v", err)
	}
}
