package ct

import (
	"bytes"
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
)

// FuzzCommitmentDecode drives arbitrary bytes through the commitment and
// audit-cipher decoders: no panics, and anything accepted must re-encode
// to the identical bytes (the decoders are strict — one canonical
// encoding per value).
func FuzzCommitmentDecode(f *testing.F) {
	p := DefaultParams()
	r := fr.NewElement(1234)
	c := p.Commit(42, &r)
	cb := c.Bytes()
	f.Add(cb[:])
	pub := p.H
	rho := fr.NewElement(5)
	out := p.NewOutput(&pub, 7, &r, &rho)
	ob := out.Bytes()
	f.Add(ob[:])
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Add(bytes.Repeat([]byte{0xff}, 224))
	f.Fuzz(func(t *testing.T, data []byte) {
		if c, err := CommitmentFromBytes(data); err == nil {
			round := c.Bytes()
			if !bytes.Equal(round[:], data) {
				t.Fatalf("commitment decode/encode not canonical")
			}
		}
		if ac, err := AuditCipherFromBytes(data); err == nil {
			round := ac.Bytes()
			if !bytes.Equal(round[:], data) {
				t.Fatalf("audit cipher decode/encode not canonical")
			}
		}
		if o, err := OutputFromBytes(data); err == nil {
			round := o.Bytes()
			if !bytes.Equal(round[:], data) {
				t.Fatalf("output decode/encode not canonical")
			}
		}
	})
}

// FuzzCTProofDecode drives arbitrary bytes through the ZKCT transfer-proof
// decoder: no panics, and an accepted proof must round-trip bit-exactly
// through re-encode → re-decode.
func FuzzCTProofDecode(f *testing.F) {
	// Seed with a structurally valid sigma-only proof (nil range proofs
	// keep the seed cheap; the decoder handles both).
	p := &Proof{Outputs: make([]OutputProof, 2)}
	f.Add(p.Bytes())
	f.Add([]byte("ZKCT"))
	f.Fuzz(func(t *testing.T, data []byte) {
		proof, err := ProofFromBytes(data)
		if err != nil {
			return
		}
		enc := proof.Bytes()
		back, err := ProofFromBytes(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted proof failed: %v", err)
		}
		if !bytes.Equal(enc, back.Bytes()) {
			t.Fatalf("proof encoding not canonical")
		}
	})
}
