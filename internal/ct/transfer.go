package ct

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
	"github.com/zkdet/zkdet/internal/poseidon"
	"github.com/zkdet/zkdet/internal/transcript"
)

// Transfer errors.
var (
	ErrProofInvalid = errors.New("ct: transfer proof rejected")
	ErrBadStatement = errors.New("ct: malformed transfer statement")
	ErrUnbalanced   = errors.New("ct: inputs and outputs do not balance")
	ErrOutOfRange   = errors.New("ct: amount exceeds the range bound")
)

// Output is one confidential note being created: its commitment and the
// auditor ciphertext of its opening.
type Output struct {
	C     Commitment
	Audit AuditCipher
}

// NewOutput builds a consistent output from its secrets: the commitment
// to (v, r) and the auditor encryption of the opening under the ephemeral
// scalar rho.
func (p *Params) NewOutput(auditor *bn254.G1Affine, v uint64, r, rho *fr.Element) Output {
	return Output{
		C:     p.Commit(v, r),
		Audit: p.EncryptOpening(auditor, v, r, rho),
	}
}

// OutputSecret is the prover's side of one output.
type OutputSecret struct {
	V   uint64
	R   fr.Element // commitment blinder
	Rho fr.Element // audit-encryption ephemeral
}

// Statement is the public side of a confidential transfer: the spent
// input commitments, the created outputs, whether this is an issuer mint
// (no inputs, no balance relation — supply enters by issuer fiat), and a
// context string binding the proof to its chain position (sender, spent
// note ids, recipients) so it cannot be replayed elsewhere.
type Statement struct {
	Mint    bool
	Inputs  []Commitment
	Outputs []Output
	Context []byte
}

// OutputProof is the per-output part of a transfer proof: the sigma nonce
// commitments, the Poseidon nonce binding P_t, the responses, and the
// π_ct range proof.
type OutputProof struct {
	TOpen bn254.G1Affine // t_v·G + t_r·H
	TEnc1 bn254.G1Affine // t_ρ·G
	TEnc2 bn254.G1Affine // t_v·G + t_ρ·A
	PT    fr.Element     // PoseidonCommit(t_v; s_t)
	ZV    fr.Element     // t_v + e·v
	ZR    fr.Element     // t_r + e·r
	ZRho  fr.Element     // t_ρ + e·ρ
	Range *plonk.Proof   // π_ct over (e, ZV, PT)
}

// Proof is a complete confidential-transfer proof: one AND-composed sigma
// protocol over all outputs plus the balance relation, with a single
// Fiat–Shamir challenge, and one π_ct per output.
type Proof struct {
	TBal    bn254.G1Affine // t_δ·H (zero for mints)
	ZBal    fr.Element     // t_δ + e·δ, δ = Σr_in − Σr_out
	Outputs []OutputProof
}

// appendLen absorbs a length prefix so adjacent variable-length lists
// cannot be reinterpreted across boundaries.
func appendLen(tr *transcript.Transcript, label string, n int) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(n))
	tr.AppendBytes(label, b[:])
}

// Challenge replays the Fiat–Shamir transcript of a transfer proof and
// returns its challenge e. The transcript binds the Pedersen bases, the
// auditor key, the full statement (kind, context, inputs, outputs with
// their audit ciphertexts) and every sigma nonce commitment — including
// each output's Poseidon nonce binding P_t, which is what makes the π_ct
// glue sound (t_v is fixed before e exists).
func Challenge(params *Params, auditor *bn254.G1Affine, st *Statement, p *Proof) fr.Element {
	tr := transcript.New("zkdet/ct/transfer/v1")
	tr.AppendPoint("G", &params.G)
	tr.AppendPoint("H", &params.H)
	tr.AppendPoint("A", auditor)
	kind := byte(0)
	if st.Mint {
		kind = 1
	}
	tr.AppendBytes("kind", []byte{kind})
	appendLen(tr, "ctx-len", len(st.Context))
	tr.AppendBytes("ctx", st.Context)
	appendLen(tr, "inputs", len(st.Inputs))
	for i := range st.Inputs {
		tr.AppendPoint("in", &st.Inputs[i].P)
	}
	appendLen(tr, "outputs", len(st.Outputs))
	for i := range st.Outputs {
		o := &st.Outputs[i]
		tr.AppendPoint("out", &o.C.P)
		tr.AppendPoint("e1", &o.Audit.E1)
		tr.AppendPoint("e2", &o.Audit.E2)
		tr.AppendScalar("cr", &o.Audit.CR)
	}
	tr.AppendPoint("t-bal", &p.TBal)
	for i := range p.Outputs {
		op := &p.Outputs[i]
		tr.AppendPoint("t-open", &op.TOpen)
		tr.AppendPoint("t-enc1", &op.TEnc1)
		tr.AppendPoint("t-enc2", &op.TEnc2)
		tr.AppendScalar("p-t", &op.PT)
	}
	return tr.ChallengeScalar("e")
}

// checkShape validates the statement/proof arity invariants shared by
// proving and verifying.
func checkShape(st *Statement, nOutProofs int) error {
	if len(st.Outputs) == 0 {
		return fmt.Errorf("%w: no outputs", ErrBadStatement)
	}
	if len(st.Outputs) > MaxParties || len(st.Inputs) > MaxParties {
		return fmt.Errorf("%w: more than %d parties", ErrBadStatement, MaxParties)
	}
	if st.Mint && len(st.Inputs) != 0 {
		return fmt.Errorf("%w: mint with inputs", ErrBadStatement)
	}
	if !st.Mint && len(st.Inputs) == 0 {
		return fmt.Errorf("%w: transfer without inputs", ErrBadStatement)
	}
	if nOutProofs != len(st.Outputs) {
		return fmt.Errorf("%w: %d outputs, %d output proofs", ErrBadStatement, len(st.Outputs), nOutProofs)
	}
	return nil
}

// Prove builds a transfer proof. ins are the openings of st.Inputs (same
// order); outs the secrets of st.Outputs. The range prover supplies the
// π_ct per output. rng defaults to crypto/rand when nil.
func Prove(params *Params, rp *RangeProver, auditor *bn254.G1Affine, st *Statement, ins []Opening, outs []OutputSecret, rng io.Reader) (*Proof, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if err := checkShape(st, len(st.Outputs)); err != nil {
		return nil, err
	}
	if len(ins) != len(st.Inputs) || len(outs) != len(st.Outputs) {
		return nil, fmt.Errorf("%w: secrets do not match statement arity", ErrBadStatement)
	}
	// Prover-side sanity: the secrets must reproduce the public statement
	// and balance. Catching misuse here beats minting an unprovable or
	// unauditable note on-chain.
	var sumIn, sumOut uint64
	for i := range ins {
		if ins[i].V >= 1<<RangeBits {
			return nil, fmt.Errorf("%w: input %d", ErrOutOfRange, i)
		}
		sumIn += ins[i].V
		if !params.Commit(ins[i].V, &ins[i].R).Equal(st.Inputs[i]) {
			return nil, fmt.Errorf("%w: input %d opening mismatch", ErrBadStatement, i)
		}
	}
	for i := range outs {
		if outs[i].V >= 1<<RangeBits {
			return nil, fmt.Errorf("%w: output %d", ErrOutOfRange, i)
		}
		sumOut += outs[i].V
		want := params.NewOutput(auditor, outs[i].V, &outs[i].R, &outs[i].Rho)
		if !want.C.Equal(st.Outputs[i].C) || want.Audit != st.Outputs[i].Audit {
			return nil, fmt.Errorf("%w: output %d secrets mismatch", ErrBadStatement, i)
		}
	}
	if !st.Mint && sumIn != sumOut {
		return nil, fmt.Errorf("%w: in=%d out=%d", ErrUnbalanced, sumIn, sumOut)
	}

	n := len(st.Outputs)
	proof := &Proof{Outputs: make([]OutputProof, n)}
	// Sigma nonces; destroyed before returning — leaking t_v with (e, z_v)
	// public reveals the amount.
	tvs := make([]fr.Element, n)
	trs := make([]fr.Element, n)
	trhos := make([]fr.Element, n)
	sts := make([]fr.Element, n)
	defer zeroizeScalars(tvs, trs, trhos, sts)
	for i := 0; i < n; i++ {
		var err error
		if tvs[i], err = fr.Random(rng); err != nil {
			return nil, fmt.Errorf("ct: sampling nonce: %w", err)
		}
		if trs[i], err = fr.Random(rng); err != nil {
			return nil, fmt.Errorf("ct: sampling nonce: %w", err)
		}
		if trhos[i], err = fr.Random(rng); err != nil {
			return nil, fmt.Errorf("ct: sampling nonce: %w", err)
		}
		if sts[i], err = fr.Random(rng); err != nil {
			return nil, fmt.Errorf("ct: sampling nonce: %w", err)
		}
		op := &proof.Outputs[i]
		tvG := bn254.G1ScalarMul(&params.G, &tvs[i])
		trH := bn254.G1ScalarMul(&params.H, &trs[i])
		op.TOpen = bn254.G1Add(&tvG, &trH)
		op.TEnc1 = bn254.G1ScalarMul(&params.G, &trhos[i])
		trhoA := bn254.G1ScalarMul(auditor, &trhos[i])
		op.TEnc2 = bn254.G1Add(&tvG, &trhoA)
		op.PT = poseidon.CommitWith([]fr.Element{tvs[i]}, sts[i])
	}
	var tdelta fr.Element
	if !st.Mint {
		var err error
		if tdelta, err = fr.Random(rng); err != nil {
			return nil, fmt.Errorf("ct: sampling nonce: %w", err)
		}
		proof.TBal = bn254.G1ScalarMul(&params.H, &tdelta)
	}
	defer tdelta.SetZero()

	e := Challenge(params, auditor, st, proof)

	for i := 0; i < n; i++ {
		op := &proof.Outputs[i]
		v := fr.NewElement(outs[i].V)
		var ev, er, erho fr.Element
		ev.Mul(&e, &v)
		op.ZV.Add(&tvs[i], &ev)
		er.Mul(&e, &outs[i].R)
		op.ZR.Add(&trs[i], &er)
		erho.Mul(&e, &outs[i].Rho)
		op.ZRho.Add(&trhos[i], &erho)
		rangeProof, err := rp.Prove(e, op.ZV, op.PT, v, tvs[i], sts[i])
		if err != nil {
			return nil, err
		}
		op.Range = rangeProof
	}
	if !st.Mint {
		var delta fr.Element
		for i := range ins {
			delta.Add(&delta, &ins[i].R)
		}
		for i := range outs {
			delta.Sub(&delta, &outs[i].R)
		}
		var ed fr.Element
		ed.Mul(&e, &delta)
		proof.ZBal.Add(&tdelta, &ed)
		delta.SetZero()
	}
	return proof, nil
}

// zeroizeScalars destroys sigma nonces in place.
func zeroizeScalars(lists ...[]fr.Element) {
	for _, l := range lists {
		for i := range l {
			l[i].SetZero()
		}
	}
}

// VerifySigma checks the sigma-protocol part of a transfer proof: every
// output's commitment-opening and audit-consistency equations, and (for
// non-mints) the balance relation. It is stateless and pairing-free —
// cheap enough for the gossip screen — but does NOT check ranges; Verify
// adds the π_ct checks, and the seal path batches them via
// plonk.Batch.AddFor.
//
// Checked equations, with e the replayed Fiat–Shamir challenge:
//
//	z_v·G + z_r·H        == T_open + e·C        (opening knowledge)
//	z_ρ·G                == T_enc1 + e·E1       (ephemeral knowledge)
//	z_v·G + z_ρ·A        == T_enc2 + e·E2       (same v, same ρ ⇒ cipher matches commitment)
//	z_δ·H                == T_bal + e·(ΣC_in − ΣC_out)
//
// The balance equation is sound because a non-zero amount difference
// would make ΣC_in − ΣC_out carry a G component, and responding would
// require knowing log_G(H).
func VerifySigma(params *Params, auditor *bn254.G1Affine, st *Statement, p *Proof) error {
	if err := checkShape(st, len(p.Outputs)); err != nil {
		return err
	}
	e := Challenge(params, auditor, st, p)
	for i := range p.Outputs {
		op := &p.Outputs[i]
		o := &st.Outputs[i]
		zvG := bn254.G1ScalarMul(&params.G, &op.ZV)
		zrH := bn254.G1ScalarMul(&params.H, &op.ZR)
		lhs := bn254.G1Add(&zvG, &zrH)
		eC := bn254.G1ScalarMul(&o.C.P, &e)
		rhs := bn254.G1Add(&op.TOpen, &eC)
		if !lhs.Equal(&rhs) {
			return fmt.Errorf("%w: output %d opening equation", ErrProofInvalid, i)
		}
		lhs = bn254.G1ScalarMul(&params.G, &op.ZRho)
		eE1 := bn254.G1ScalarMul(&o.Audit.E1, &e)
		rhs = bn254.G1Add(&op.TEnc1, &eE1)
		if !lhs.Equal(&rhs) {
			return fmt.Errorf("%w: output %d audit ephemeral equation", ErrProofInvalid, i)
		}
		zrhoA := bn254.G1ScalarMul(auditor, &op.ZRho)
		lhs = bn254.G1Add(&zvG, &zrhoA)
		eE2 := bn254.G1ScalarMul(&o.Audit.E2, &e)
		rhs = bn254.G1Add(&op.TEnc2, &eE2)
		if !lhs.Equal(&rhs) {
			return fmt.Errorf("%w: output %d audit consistency equation", ErrProofInvalid, i)
		}
	}
	if !st.Mint {
		d := st.Inputs[0]
		for i := 1; i < len(st.Inputs); i++ {
			d = d.Add(st.Inputs[i])
		}
		for i := range st.Outputs {
			d = d.Sub(st.Outputs[i].C)
		}
		lhs := bn254.G1ScalarMul(&params.H, &p.ZBal)
		eD := bn254.G1ScalarMul(&d.P, &e)
		rhs := bn254.G1Add(&p.TBal, &eD)
		if !lhs.Equal(&rhs) {
			return fmt.Errorf("%w: balance equation", ErrProofInvalid)
		}
	}
	return nil
}

// Verify checks a transfer proof completely: the sigma equations plus
// every output's π_ct range proof against the shared challenge.
func Verify(params *Params, vk *plonk.VerifyingKey, auditor *bn254.G1Affine, st *Statement, p *Proof) error {
	if err := VerifySigma(params, auditor, st, p); err != nil {
		return err
	}
	e := Challenge(params, auditor, st, p)
	for i := range p.Outputs {
		op := &p.Outputs[i]
		if op.Range == nil {
			return fmt.Errorf("%w: output %d missing range proof", ErrProofInvalid, i)
		}
		if err := VerifyRange(vk, op.Range, e, op.ZV, op.PT); err != nil {
			return fmt.Errorf("%w: output %d range: %w", ErrProofInvalid, i, err)
		}
	}
	return nil
}
