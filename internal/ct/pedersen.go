// Package ct implements confidential tokens for the ZKDET marketplace:
// amounts hidden inside Pedersen commitments over BN254 G1, sigma-protocol
// proofs that a transfer balances, Plonk range proofs (π_ct) that every
// output amount fits in RangeBits bits, and an ElGamal-style encryption of
// each output's opening to a designated auditor who can re-open every
// hidden amount along a token's lineage.
//
// The design follows the zkat-dlog token driver: what stays public is the
// transaction topology (which notes were spent, which were created, who
// the issuer and auditor are); the amounts and blinders stay private to
// the transacting parties and the auditor.
package ct

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
)

// Params holds the two Pedersen bases: G is the curve generator and H is
// derived by hashing to the curve, so no one knows log_G(H). A commitment
// is Commit(v, r) = v·G + r·H; the scheme is perfectly hiding and binding
// under the discrete log assumption.
type Params struct {
	G bn254.G1Affine
	H bn254.G1Affine
}

// pedersenHSeed is the domain-separation tag H is hashed from. Fixing it
// as a protocol constant makes every deployment share the same bases, so
// commitments are portable across chains and replicas need no extra
// genesis coordination.
const pedersenHSeed = "zkdet/ct/pedersen-h/v1"

var (
	paramsOnce sync.Once
	paramsInst *Params
)

// DefaultParams returns the protocol's Pedersen bases (cached after the
// first call).
func DefaultParams() *Params {
	paramsOnce.Do(func() {
		paramsInst = &Params{G: bn254.G1Generator(), H: hashToG1([]byte(pedersenHSeed))}
	})
	return paramsInst
}

// hashToG1 maps a seed to a curve point by try-and-increment: hash the
// seed with a counter to an x-coordinate, solve y² = x³ + 3, and take the
// first counter that yields a quadratic residue (the y with the smaller
// canonical value, so the map is deterministic). BN254's G1 has prime
// order, so every curve point is in the right subgroup. The expected
// number of iterations is 2; the point's discrete log w.r.t. G is unknown
// because the x-coordinate comes out of SHA-256.
func hashToG1(seed []byte) bn254.G1Affine {
	// p ≡ 3 (mod 4), so y = t^((p+1)/4) is a square root of t whenever
	// one exists.
	sqrtExp := new(big.Int).Add(bn254.FpModulus(), big.NewInt(1))
	sqrtExp.Rsh(sqrtExp, 2)
	three := bn254.NewFp(3)
	for ctr := uint32(0); ; ctr++ {
		h := sha256.New()
		h.Write(seed)
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		x := bn254.FpFromBig(new(big.Int).SetBytes(h.Sum(nil)))

		var y2, y, check bn254.Fp
		y2.Square(&x)
		y2.Mul(&y2, &x)
		y2.Add(&y2, &three)
		y.Exp(&y2, sqrtExp)
		check.Square(&y)
		if !check.Equal(&y2) {
			continue // x³+3 is not a square; try the next counter
		}
		var negY bn254.Fp
		negY.Neg(&y)
		if negY.BigInt().Cmp(y.BigInt()) < 0 {
			y = negY
		}
		return bn254.G1Affine{X: x, Y: y}
	}
}

// Commitment is a Pedersen commitment to a token amount.
type Commitment struct {
	P bn254.G1Affine
}

// Commit computes v·G + r·H.
func (p *Params) Commit(v uint64, r *fr.Element) Commitment {
	vEl := fr.NewElement(v)
	vG := bn254.G1ScalarMul(&p.G, &vEl)
	rH := bn254.G1ScalarMul(&p.H, r)
	return Commitment{P: bn254.G1Add(&vG, &rH)}
}

// Add returns the homomorphic sum: Commit(v₁+v₂, r₁+r₂).
func (c Commitment) Add(d Commitment) Commitment {
	return Commitment{P: bn254.G1Add(&c.P, &d.P)}
}

// Sub returns the homomorphic difference: Commit(v₁-v₂, r₁-r₂).
func (c Commitment) Sub(d Commitment) Commitment {
	var neg bn254.G1Affine
	neg.Neg(&d.P)
	return Commitment{P: bn254.G1Add(&c.P, &neg)}
}

// Equal reports whether two commitments are the same point.
func (c Commitment) Equal(d Commitment) bool { return c.P.Equal(&d.P) }

// Bytes returns the 64-byte uncompressed encoding (X ‖ Y).
func (c Commitment) Bytes() [64]byte { return c.P.Bytes() }

// Digest returns the SHA-256 of the commitment's encoding — what lineage
// events index instead of amounts.
func (c Commitment) Digest() [32]byte {
	b := c.Bytes()
	return sha256.Sum256(b[:])
}

// ErrBadCommitment is returned when decoding rejects a byte string.
var ErrBadCommitment = errors.New("ct: malformed commitment")

// CommitmentFromBytes decodes a 64-byte encoding, rejecting points not on
// the curve (BN254 G1 is prime-order, so on-curve implies in-subgroup).
func CommitmentFromBytes(b []byte) (Commitment, error) {
	p, err := bn254.G1FromBytes(b)
	if err != nil {
		return Commitment{}, fmt.Errorf("%w: %w", ErrBadCommitment, err)
	}
	return Commitment{P: p}, nil
}

// Opening is the secret side of a commitment: the amount and its blinder.
type Opening struct {
	V uint64
	R fr.Element
}
