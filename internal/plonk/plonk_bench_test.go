package plonk

import (
	"fmt"
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
)

// benchSquareChain builds a circuit with exactly 2^logN gates computing the
// repeated-squaring chain x_{i+1} = x_i², plus its witness.
func benchSquareChain(logN int) (*ConstraintSystem, []fr.Element) {
	cs := NewConstraintSystem(1)
	x := 0
	witness := []fr.Element{fr.NewElement(3)}
	var negOne fr.Element
	one := fr.One()
	negOne.Neg(&one)
	for cs.NbGates() < 1<<logN {
		y := cs.NewVariable()
		cs.MustAddGate(Gate{QM: one, QO: negOne, A: x, B: x, C: y})
		var sq fr.Element
		sq.Square(&witness[x])
		witness = append(witness, sq)
		x = y
	}
	return cs, witness
}

func BenchmarkProve(b *testing.B) {
	for _, logN := range []int{10, 12, 14} {
		cs, witness := benchSquareChain(logN)
		tau := fr.NewElement(0xbeef)
		srs, err := kzg.NewSRSFromSecret((1<<logN)+9, &tau)
		if err != nil {
			b.Fatal(err)
		}
		pk, _, err := Setup(cs, srs)
		if err != nil {
			b.Fatal(err)
		}
		// Warm the proving key's lazy domain caches so the benchmark
		// measures steady-state proving.
		if _, err := Prove(pk, witness); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("2^%d", logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Prove(pk, witness); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSetup(b *testing.B) {
	for _, logN := range []int{10, 12} {
		cs, _ := benchSquareChain(logN)
		tau := fr.NewElement(0xbeef)
		srs, err := kzg.NewSRSFromSecret((1<<logN)+9, &tau)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("2^%d", logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Setup(cs, srs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
