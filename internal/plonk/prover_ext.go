package plonk

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/parallel"
	"github.com/zkdet/zkdet/internal/poly"
	"github.com/zkdet/zkdet/internal/transcript"
)

// proveExtended is the prover for circuits with lookups and/or custom
// gates. It follows the classic five-round flow with three insertions:
// the multiplicity commitment [M] before β/γ (so the lookup challenge β_L
// can respond to it), the LogUp columns [H], [S] alongside [z], and — for
// custom-gate circuits — a quotient evaluated on an 8n coset split into 6
// pieces instead of 3. Everything else (blinding shape, single-MSM
// batched opening, transcript labels for the classic prefix) is shared.
func proveExtended(pk *ProvingKey, witness []fr.Element) (*Proof, error) {
	if len(witness) != pk.nbVars {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrWitnessLength, len(witness), pk.nbVars)
	}
	n := pk.Domain.N
	nInt := int(n)
	public := make([]fr.Element, pk.nbPublic)
	copy(public, witness[:pk.nbPublic])

	// Wire value vectors over the domain rows.
	aV := make([]fr.Element, n)
	bV := make([]fr.Element, n)
	cV := make([]fr.Element, n)
	parallel.Execute(nInt, func(start, end int) {
		for i := start; i < end; i++ {
			var g Gate // padding rows wire to variable 0 with all selectors zero
			if i < len(pk.gates) {
				g = pk.gates[i]
			}
			aV[i] = witness[g.A]
			bV[i] = witness[g.B]
			cV[i] = witness[g.C]
		}
	})

	// Public-input polynomial: PI(ω^i) = -x_i.
	piPoly := make(poly.Polynomial, n)
	for i := range public {
		piPoly[i].Neg(&public[i])
	}
	if err := pk.Domain.IFFT(piPoly); err != nil {
		return nil, err
	}

	// blind adds nbBlinds random coefficients times (X^n − 1) to the
	// interpolation of evals, hiding as many evaluations of the
	// polynomial outside the domain.
	blind := func(evals []fr.Element, nbBlinds int) (poly.Polynomial, error) {
		p := make(poly.Polynomial, int(n)+nbBlinds)
		copy(p, evals)
		if err := pk.Domain.IFFT(p[:n]); err != nil {
			return nil, err
		}
		for j := 0; j < nbBlinds; j++ {
			bj := randScalar()
			p[j].Sub(&p[j], &bj)
			p[int(n)+j].Add(&p[int(n)+j], &bj)
		}
		return p, nil
	}

	// Round 1: blinded wire polynomials, their commitments, and the
	// lookup multiplicity polynomial [M] (committed before β_L exists).
	aPoly, err := blind(aV, 2)
	if err != nil {
		return nil, err
	}
	bPoly, err := blind(bV, 2)
	if err != nil {
		return nil, err
	}
	cPoly, err := blind(cV, 2)
	if err != nil {
		return nil, err
	}
	mV, err := buildMultiplicities(pk.gates, witness, pk.tableBits, n)
	if err != nil {
		return nil, err
	}
	mPoly, err := blind(mV, 2)
	if err != nil {
		return nil, err
	}

	proof := &Proof{Evals: ProofEvals{Ext: &ExtEvals{}}}
	if err = commitParallel(pk.SRS,
		[]poly.Polynomial{aPoly, bPoly, cPoly, mPoly},
		[]*kzg.Commitment{&proof.A, &proof.B, &proof.C, &proof.M}); err != nil {
		return nil, err
	}

	tr := transcript.New("zkdet/plonk")
	bindTranscript(tr, pk.VK, public)
	tr.AppendPoint("a", &proof.A)
	tr.AppendPoint("b", &proof.B)
	tr.AppendPoint("c", &proof.C)
	tr.AppendPoint("m", &proof.M)
	beta := tr.ChallengeScalar("beta")
	gamma := tr.ChallengeScalar("gamma")
	betaL := tr.ChallengeScalar("beta_l")

	// Round 2: permutation grand product z, and the LogUp helper and
	// running-sum columns H, S (which need β_L).
	omega := pk.Domain.Elements()
	k1 := fr.NewElement(permK1)
	k2 := fr.NewElement(permK2)
	nums := make([]fr.Element, n)
	dens := make([]fr.Element, n)
	parallel.Execute(nInt, func(start, end int) {
		for i := start; i < end; i++ {
			var f1, f2, f3, t fr.Element
			f1.Mul(&beta, &omega[i])
			f1.Add(&f1, &aV[i])
			f1.Add(&f1, &gamma)
			t.Mul(&beta, &omega[i])
			t.Mul(&t, &k1)
			f2.Add(&bV[i], &t)
			f2.Add(&f2, &gamma)
			t.Mul(&beta, &omega[i])
			t.Mul(&t, &k2)
			f3.Add(&cV[i], &t)
			f3.Add(&f3, &gamma)
			nums[i].Mul(&f1, &f2)
			nums[i].Mul(&nums[i], &f3)

			lbl := pk.sigmaLabel[i]
			t.Mul(&beta, &lbl[0])
			f1.Add(&aV[i], &t)
			f1.Add(&f1, &gamma)
			t.Mul(&beta, &lbl[1])
			f2.Add(&bV[i], &t)
			f2.Add(&f2, &gamma)
			t.Mul(&beta, &lbl[2])
			f3.Add(&cV[i], &t)
			f3.Add(&f3, &gamma)
			dens[i].Mul(&f1, &f2)
			dens[i].Mul(&dens[i], &f3)
		}
	})
	fr.BatchInvert(dens)
	zV := make([]fr.Element, n)
	zV[0] = fr.One()
	for i := 0; i < nInt-1; i++ {
		var step fr.Element
		step.Mul(&nums[i], &dens[i])
		zV[i+1].Mul(&zV[i], &step)
	}
	zPoly, err := blind(zV, 3)
	if err != nil {
		return nil, err
	}

	tblV := rangeTableValues(pk.tableBits, n)
	hV, sV := buildLogUpColumns(pk.gates, aV, mV, tblV, betaL)
	// The LogUp telescoping sum must close: S_{n-1} + H_{n-1} wraps to
	// S_0 = 0. If it doesn't, some lookup left the table.
	var total fr.Element
	total.Add(&sV[n-1], &hV[n-1])
	if !total.IsZero() {
		return nil, ErrUnsatisfied
	}
	hPoly, err := blind(hV, 2)
	if err != nil {
		return nil, err
	}
	sPoly, err := blind(sV, 3)
	if err != nil {
		return nil, err
	}

	if err = commitParallel(pk.SRS,
		[]poly.Polynomial{zPoly, hPoly, sPoly},
		[]*kzg.Commitment{&proof.Z, &proof.H, &proof.S}); err != nil {
		return nil, err
	}
	tr.AppendPoint("z", &proof.Z)
	tr.AppendPoint("h", &proof.H)
	tr.AppendPoint("s", &proof.S)
	alpha := tr.ChallengeScalar("alpha")

	// Round 3: quotient. Custom gates carry degree-5 S-boxes, pushing the
	// numerator past the 4n coset; they evaluate on 8n and split t into 6
	// pieces. Lookup-only circuits stay on the classic 4n/3-piece shape.
	domainE := pk.Domain4
	nbPieces := 3
	if pk.custom {
		domainE = pk.Domain8
		nbPieces = 6
	}
	if domainE == nil {
		return nil, fmt.Errorf("plonk: proving key missing coset domain")
	}
	big := domainE.N
	factor := big / n // coset index step corresponding to one ω step

	cosetInputs := []poly.Polynomial{
		aPoly, bPoly, cPoly, zPoly,
		pk.QL, pk.QR, pk.QO, pk.QM, pk.QC,
		pk.S1, pk.S2, pk.S3, piPoly,
		mPoly, hPoly, sPoly,
		pk.QLk, pk.Tbl, pk.QMimc, pk.QPosF, pk.QPosP,
		pk.KC0, pk.KC1, pk.KC2,
	}
	cosetOutputs := make([][]fr.Element, len(cosetInputs))
	cosetErrs := make([]error, len(cosetInputs))
	parallel.Execute(len(cosetInputs), func(start, end int) {
		for i := start; i < end; i++ {
			e := make([]fr.Element, big)
			copy(e, cosetInputs[i])
			cosetErrs[i] = domainE.FFTCoset(e)
			cosetOutputs[i] = e
		}
	})
	for _, cerr := range cosetErrs {
		if cerr != nil {
			return nil, cerr
		}
	}

	elemsE := domainE.Elements()
	xs := make([]fr.Element, big)
	shift := fr.NewElement(fr.MultiplicativeGenerator)
	parallel.Execute(int(big), func(start, end int) {
		for i := start; i < end; i++ {
			xs[i].Mul(&elemsE[i], &shift)
		}
	})
	var gN fr.Element
	gN.ExpUint64(&shift, n)
	wEn := domainE.Element(n) // primitive (big/n)-th root of unity
	one := fr.One()
	zh := make([]fr.Element, factor)
	cur := gN
	for i := uint64(0); i < factor; i++ {
		zh[i].Sub(&cur, &one)
		cur.Mul(&cur, &wEn)
	}
	zhInv := make([]fr.Element, factor)
	copy(zhInv, zh)
	fr.BatchInvert(zhInv)
	l1Den := make([]fr.Element, big)
	nEl := fr.NewElement(n)
	parallel.Execute(int(big), func(start, end int) {
		for i := start; i < end; i++ {
			l1Den[i].Sub(&xs[i], &one)
			l1Den[i].Mul(&l1Den[i], &nEl)
		}
	})
	fr.BatchInvert(l1Den)

	ch := &extChallenges{
		beta: beta, gamma: gamma, betaL: betaL,
		alphaPow: fr.Powers(&alpha, nbAlphaPowers),
		k1:       k1, k2: k2,
		mds: pk.mds,
	}
	tEvals := make([]fr.Element, big)
	parallel.Execute(int(big), func(start, end int) {
		var pv extPointVals
		for ii := start; ii < end; ii++ {
			i := uint64(ii)
			j := (i + factor) % big
			pv = extPointVals{
				x: xs[i],
				a: cosetOutputs[0][i], b: cosetOutputs[1][i], c: cosetOutputs[2][i],
				aw: cosetOutputs[0][j], bw: cosetOutputs[1][j], cw: cosetOutputs[2][j],
				z: cosetOutputs[3][i], zw: cosetOutputs[3][j],
				ql: cosetOutputs[4][i], qr: cosetOutputs[5][i], qo: cosetOutputs[6][i],
				qm: cosetOutputs[7][i], qc: cosetOutputs[8][i],
				s1: cosetOutputs[9][i], s2: cosetOutputs[10][i], s3: cosetOutputs[11][i],
				pi: cosetOutputs[12][i],
				m:  cosetOutputs[13][i], h: cosetOutputs[14][i],
				s: cosetOutputs[15][i], sw: cosetOutputs[15][j],
				qlk: cosetOutputs[16][i], tbl: cosetOutputs[17][i],
				qmimc: cosetOutputs[18][i], qposf: cosetOutputs[19][i], qposp: cosetOutputs[20][i],
				k0: cosetOutputs[21][i], k1c: cosetOutputs[22][i], k2c: cosetOutputs[23][i],
			}
			pv.l1.Mul(&zh[i%factor], &l1Den[i])
			num := extNumerator(&pv, ch)
			tEvals[i].Mul(&num, &zhInv[i%factor])
		}
	})
	tPoly := make(poly.Polynomial, big)
	copy(tPoly, tEvals)
	if err := domainE.IFFTCoset(tPoly); err != nil {
		return nil, err
	}

	// Degree bound: quotient degree is ≤ 3n+5 for lookup-only circuits
	// and ≤ 5n+5 with custom gates; any higher coefficient means the
	// witness failed some constraint.
	maxLen := uint64(nbPieces-1)*n + n + 6
	for i := maxLen; i < big; i++ {
		if !tPoly[i].IsZero() {
			return nil, ErrUnsatisfied
		}
	}
	pieces := make([]poly.Polynomial, nbPieces)
	for p := 0; p < nbPieces-1; p++ {
		pieces[p] = poly.Polynomial(tPoly[uint64(p)*n : uint64(p+1)*n])
	}
	pieces[nbPieces-1] = poly.Polynomial(tPoly[uint64(nbPieces-1)*n : maxLen])

	pieceCms := make([]kzg.Commitment, nbPieces)
	pieceOuts := make([]*kzg.Commitment, nbPieces)
	for p := range pieceCms {
		pieceOuts[p] = &pieceCms[p]
	}
	if err = commitParallel(pk.SRS, pieces, pieceOuts); err != nil {
		return nil, err
	}
	proof.TLo, proof.TMid, proof.THi = pieceCms[0], pieceCms[1], pieceCms[2]
	proof.TExtra = pieceCms[3:]
	tr.AppendPoint("t_lo", &proof.TLo)
	tr.AppendPoint("t_mid", &proof.TMid)
	tr.AppendPoint("t_hi", &proof.THi)
	for p := 3; p < nbPieces; p++ {
		tr.AppendPoint(fmt.Sprintf("t_%d", p), &pieceCms[p])
	}
	zeta := tr.ChallengeScalar("zeta")

	// Round 4: evaluations at ζ, plus the ω-shifted openings at ζω the
	// extension constraints read (S for the running sum, a/b/c for the
	// next-row custom gates).
	var zetaOmega fr.Element
	zetaOmega.Mul(&zeta, &pk.Domain.Gen)
	ev := &proof.Evals
	ex := ev.Ext
	ex.TExtra = make([]fr.Element, nbPieces-3)
	evalTasks := []struct {
		p   poly.Polynomial
		at  *fr.Element
		out *fr.Element
	}{
		{aPoly, &zeta, &ev.A}, {bPoly, &zeta, &ev.B}, {cPoly, &zeta, &ev.C},
		{zPoly, &zeta, &ev.Z}, {zPoly, &zetaOmega, &ev.ZOmega},
		{pk.QL, &zeta, &ev.QL}, {pk.QR, &zeta, &ev.QR}, {pk.QO, &zeta, &ev.QO},
		{pk.QM, &zeta, &ev.QM}, {pk.QC, &zeta, &ev.QC},
		{pk.S1, &zeta, &ev.S1}, {pk.S2, &zeta, &ev.S2}, {pk.S3, &zeta, &ev.S3},
		{pieces[0], &zeta, &ev.TLo}, {pieces[1], &zeta, &ev.TMid}, {pieces[2], &zeta, &ev.THi},
		{mPoly, &zeta, &ex.M}, {hPoly, &zeta, &ex.H}, {sPoly, &zeta, &ex.S},
		{sPoly, &zetaOmega, &ex.SOmega},
		{aPoly, &zetaOmega, &ex.AOmega}, {bPoly, &zetaOmega, &ex.BOmega}, {cPoly, &zetaOmega, &ex.COmega},
		{pk.QLk, &zeta, &ex.QLk}, {pk.Tbl, &zeta, &ex.Tbl},
		{pk.QMimc, &zeta, &ex.QMimc}, {pk.QPosF, &zeta, &ex.QPosF}, {pk.QPosP, &zeta, &ex.QPosP},
		{pk.KC0, &zeta, &ex.K0}, {pk.KC1, &zeta, &ex.K1}, {pk.KC2, &zeta, &ex.K2},
	}
	for p := 3; p < nbPieces; p++ {
		evalTasks = append(evalTasks, struct {
			p   poly.Polynomial
			at  *fr.Element
			out *fr.Element
		}{pieces[p], &zeta, &ex.TExtra[p-3]})
	}
	parallel.Execute(len(evalTasks), func(start, end int) {
		for i := start; i < end; i++ {
			*evalTasks[i].out = evalTasks[i].p.Eval(evalTasks[i].at)
		}
	})

	tr.AppendScalars("evals", append(ev.evalList(), ex.zetaList()...))
	tr.AppendScalar("z_omega", &ev.ZOmega)
	tr.AppendScalars("evals-omega-ext", ex.omegaList())
	v := tr.ChallengeScalar("v")

	// Round 5: batched opening at ζ, and a v-folded opening of
	// (z, S, a, b, c) at ζω.
	foldZeta := []poly.Polynomial{
		aPoly, bPoly, cPoly, zPoly,
		pk.QL, pk.QR, pk.QO, pk.QM, pk.QC,
		pk.S1, pk.S2, pk.S3,
		pieces[0], pieces[1], pieces[2],
		mPoly, hPoly, sPoly,
		pk.QLk, pk.Tbl, pk.QMimc, pk.QPosF, pk.QPosP,
		pk.KC0, pk.KC1, pk.KC2,
	}
	foldZeta = append(foldZeta, pieces[3:]...)
	folded := foldPolys(foldZeta, fr.Powers(&v, len(foldZeta)))
	wZeta, _ := poly.DivideByLinear(folded, &zeta)

	foldOmega := []poly.Polynomial{zPoly, sPoly, aPoly, bPoly, cPoly}
	foldedOmega := foldPolys(foldOmega, fr.Powers(&v, len(foldOmega)))
	wZetaOmega, _ := poly.DivideByLinear(foldedOmega, &zetaOmega)

	if err = commitParallel(pk.SRS,
		[]poly.Polynomial{wZeta, wZetaOmega},
		[]*kzg.Commitment{&proof.WZeta, &proof.WZetaOmega}); err != nil {
		return nil, err
	}
	return proof, nil
}
