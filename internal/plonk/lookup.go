package plonk

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/fr"
)

// This file holds the machinery shared by the extended prover and verifier:
// the point-wise evaluation of the aggregated constraint numerator (the
// same formula runs on every coset point in the prover and once at ζ in
// the verifier), and the LogUp witness builder.
//
// The lookup argument is the log-derivative ("LogUp") formulation: for the
// range table T and the a-wire column a, with qLk the lookup selector and
// M the multiplicity column, soundness follows from
//
//	Σ_i qLk_i/(β_L + a_i)  ==  Σ_i M_i/(β_L + T_i)
//
// which the proof establishes via a helper column H and a running sum S:
//
//	C3: H·(β_L+a)·(β_L+T) − qLk·(β_L+T) + M·(β_L+a) = 0
//	C4: S(ωx) − S(x) − H(x) = 0
//	C5: L_1(x)·S(x) = 0
//
// β_L is derived by the transcript after [M] is committed. Custom gates
// (Poseidon/MiMC rounds) add constraints C6–C13 reading the next row's
// wires through the ω-shift; their round constants live in the
// preprocessed K columns and the Poseidon MDS matrix in the verifying key.

// nbAlphaPowers is the number of α powers folding the constraint stack:
// C0 gate, C1 perm, C2 L1 boundary, C3–C5 LogUp, C6–C8 Poseidon full
// lanes, C9–C11 Poseidon partial lanes, C12–C13 MiMC.
const nbAlphaPowers = 14

// extPointVals carries every polynomial's value at one evaluation point.
type extPointVals struct {
	x                      fr.Element // the point itself
	a, b, c                fr.Element
	aw, bw, cw             fr.Element // wires at ω·x (next row)
	z, zw                  fr.Element
	ql, qr, qo, qm, qc, pi fr.Element
	s1, s2, s3             fr.Element
	m, h, s, sw            fr.Element // LogUp columns; sw = S(ω·x)
	qlk, tbl               fr.Element
	qmimc, qposf, qposp    fr.Element
	k0, k1c, k2c           fr.Element // per-row round constants
	l1                     fr.Element // L_1(x)
}

// extChallenges bundles the transcript challenges and fixed key data the
// constraint evaluation needs.
type extChallenges struct {
	beta, gamma, betaL fr.Element
	alphaPow           []fr.Element // α^0 … α^13
	k1, k2             fr.Element   // permutation coset multipliers
	mds                [3][3]fr.Element
}

// pow5 sets out = t^5.
func pow5(out, t *fr.Element) {
	var t2 fr.Element
	t2.Square(t)
	t2.Square(&t2)
	out.Mul(&t2, t)
}

// extNumerator evaluates the aggregated constraint numerator
// Σ_k α^k·C_k at one point. The prover divides this by Z_H on the coset;
// the verifier compares it against t(ζ)·Z_H(ζ).
func extNumerator(p *extPointVals, ch *extChallenges) fr.Element {
	var acc, t, t2 fr.Element

	// C0: gate + public input.
	t.Mul(&p.qm, &p.a)
	t.Mul(&t, &p.b)
	acc.Add(&acc, &t)
	t.Mul(&p.ql, &p.a)
	acc.Add(&acc, &t)
	t.Mul(&p.qr, &p.b)
	acc.Add(&acc, &t)
	t.Mul(&p.qo, &p.c)
	acc.Add(&acc, &t)
	acc.Add(&acc, &p.qc)
	acc.Add(&acc, &p.pi)

	// C1: permutation.
	var p1, p2, f fr.Element
	t.Mul(&ch.beta, &p.x)
	f.Add(&p.a, &t)
	f.Add(&f, &ch.gamma)
	p1 = f
	t.Mul(&ch.beta, &p.x)
	t.Mul(&t, &ch.k1)
	f.Add(&p.b, &t)
	f.Add(&f, &ch.gamma)
	p1.Mul(&p1, &f)
	t.Mul(&ch.beta, &p.x)
	t.Mul(&t, &ch.k2)
	f.Add(&p.c, &t)
	f.Add(&f, &ch.gamma)
	p1.Mul(&p1, &f)
	p1.Mul(&p1, &p.z)

	t.Mul(&ch.beta, &p.s1)
	f.Add(&p.a, &t)
	f.Add(&f, &ch.gamma)
	p2 = f
	t.Mul(&ch.beta, &p.s2)
	f.Add(&p.b, &t)
	f.Add(&f, &ch.gamma)
	p2.Mul(&p2, &f)
	t.Mul(&ch.beta, &p.s3)
	f.Add(&p.c, &t)
	f.Add(&f, &ch.gamma)
	p2.Mul(&p2, &f)
	p2.Mul(&p2, &p.zw)

	t.Sub(&p1, &p2)
	t.Mul(&t, &ch.alphaPow[1])
	acc.Add(&acc, &t)

	// C2: L1·(z − 1).
	one := fr.One()
	t.Sub(&p.z, &one)
	t.Mul(&t, &p.l1)
	t.Mul(&t, &ch.alphaPow[2])
	acc.Add(&acc, &t)

	// C3: H·(βL+a)·(βL+T) − qLk·(βL+T) + M·(βL+a).
	var la, lt fr.Element
	la.Add(&ch.betaL, &p.a)
	lt.Add(&ch.betaL, &p.tbl)
	t.Mul(&p.h, &la)
	t.Mul(&t, &lt)
	t2.Mul(&p.qlk, &lt)
	t.Sub(&t, &t2)
	t2.Mul(&p.m, &la)
	t.Add(&t, &t2)
	t.Mul(&t, &ch.alphaPow[3])
	acc.Add(&acc, &t)

	// C4: S(ωx) − S(x) − H(x).
	t.Sub(&p.sw, &p.s)
	t.Sub(&t, &p.h)
	t.Mul(&t, &ch.alphaPow[4])
	acc.Add(&acc, &t)

	// C5: L1·S.
	t.Mul(&p.l1, &p.s)
	t.Mul(&t, &ch.alphaPow[5])
	acc.Add(&acc, &t)

	// Custom gates. Wires and next-row wires as lanes.
	w := [3]*fr.Element{&p.a, &p.b, &p.c}
	nw := [3]*fr.Element{&p.aw, &p.bw, &p.cw}
	k := [3]*fr.Element{&p.k0, &p.k1c, &p.k2c}

	// C6–C8: Poseidon full round, lane l:
	// qPosF·(Σ_j mds[l][j]·(w_j+K_j)^5 − w_l(ωx)).
	var sb [3]fr.Element
	for j := 0; j < 3; j++ {
		t.Add(w[j], k[j])
		pow5(&sb[j], &t)
	}
	for l := 0; l < 3; l++ {
		var lane fr.Element
		for j := 0; j < 3; j++ {
			t.Mul(&ch.mds[l][j], &sb[j])
			lane.Add(&lane, &t)
		}
		lane.Sub(&lane, nw[l])
		lane.Mul(&lane, &p.qposf)
		lane.Mul(&lane, &ch.alphaPow[6+l])
		acc.Add(&acc, &lane)
	}

	// C9–C11: Poseidon partial round — only lane 0 is S-boxed.
	var pb [3]fr.Element
	t.Add(&p.a, &p.k0)
	pow5(&pb[0], &t)
	pb[1].Add(&p.b, &p.k1c)
	pb[2].Add(&p.c, &p.k2c)
	for l := 0; l < 3; l++ {
		var lane fr.Element
		for j := 0; j < 3; j++ {
			t.Mul(&ch.mds[l][j], &pb[j])
			lane.Add(&lane, &t)
		}
		lane.Sub(&lane, nw[l])
		lane.Mul(&lane, &p.qposp)
		lane.Mul(&lane, &ch.alphaPow[9+l])
		acc.Add(&acc, &lane)
	}

	// C12: qMimc·(c − (a+b+K0)²);  C13: qMimc·(a(ωx) − c³·(a+b+K0)).
	var u fr.Element
	u.Add(&p.a, &p.b)
	u.Add(&u, &p.k0)
	t.Square(&u)
	t.Sub(&p.c, &t)
	t.Mul(&t, &p.qmimc)
	t.Mul(&t, &ch.alphaPow[12])
	acc.Add(&acc, &t)
	t.Square(&p.c)
	t.Mul(&t, &p.c)
	t.Mul(&t, &u)
	t.Sub(&p.aw, &t)
	t.Mul(&t, &p.qmimc)
	t.Mul(&t, &ch.alphaPow[13])
	acc.Add(&acc, &t)

	return acc
}

// buildMultiplicities counts, for each range-table value, how many lookup
// rows carry it, returning the multiplicity column over the domain (table
// value v lives on row v). Witness values outside the table are rejected —
// this is the prover-side half of lookup soundness (the verifier-side half
// is the C3/C4/C5 identity, which an out-of-table value cannot satisfy for
// a random β_L).
func buildMultiplicities(gates []Gate, witness []fr.Element, tableBits int, n uint64) ([]fr.Element, error) {
	mV := make([]fr.Element, n)
	if tableBits == 0 {
		return mV, nil
	}
	size := uint64(1) << tableBits
	if size > n {
		return nil, fmt.Errorf("%w: 2^%d table exceeds domain size %d", ErrTableTooLarge, tableBits, n)
	}
	counts := make([]uint64, size)
	for i, g := range gates {
		if g.Kind != KindLookup {
			continue
		}
		v, ok := witness[g.A].Uint64()
		if !ok || v >= size {
			return nil, fmt.Errorf("%w: gate %d", ErrLookupRange, i)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c != 0 {
			mV[v] = fr.NewElement(c)
		}
	}
	return mV, nil
}

// buildLogUpColumns computes the H and S evaluation vectors from the wire
// column, multiplicities, table and lookup-selector rows, given β_L:
//
//	H_i = qLk_i/(β_L+a_i) − M_i/(β_L+T_i),  S_0 = 0, S_{i+1} = S_i + H_i.
//
// The two inversion batches dominate; everything else is linear.
func buildLogUpColumns(gates []Gate, aV, mV, tblV []fr.Element, betaL fr.Element) (hV, sV []fr.Element) {
	n := len(aV)
	la := make([]fr.Element, n)
	lt := make([]fr.Element, n)
	for i := 0; i < n; i++ {
		la[i].Add(&betaL, &aV[i])
		lt[i].Add(&betaL, &tblV[i])
	}
	fr.BatchInvert(la)
	fr.BatchInvert(lt)
	hV = make([]fr.Element, n)
	for i := 0; i < n; i++ {
		var t fr.Element
		if i < len(gates) && gates[i].Kind == KindLookup {
			hV[i] = la[i]
		}
		t.Mul(&mV[i], &lt[i])
		hV[i].Sub(&hV[i], &t)
	}
	sV = make([]fr.Element, n)
	for i := 0; i < n-1; i++ {
		sV[i+1].Add(&sV[i], &hV[i])
	}
	return hV, sV
}
