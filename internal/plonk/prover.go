package plonk

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/parallel"
	"github.com/zkdet/zkdet/internal/poly"
	"github.com/zkdet/zkdet/internal/transcript"
)

// randScalar produces the prover's blinding scalars. It is a variable so
// the bit-identity property tests can pin proofs by injecting a seeded
// source; production code never reassigns it.
var randScalar = fr.MustRandom

// commitParallel runs independent KZG commitments concurrently, writing
// each result through its output pointer. The fan-out is bounded by the
// repo-wide worker pool (GOMAXPROCS) like every other prover hot loop, so
// a large batch of polynomials can't spawn an unbounded goroutine herd.
func commitParallel(srs *kzg.SRS, ps []poly.Polynomial, outs []*kzg.Commitment) error {
	errs := make([]error, len(ps))
	parallel.Execute(len(ps), func(start, end int) {
		for i := start; i < end; i++ {
			c, err := kzg.Commit(srs, ps[i])
			if err != nil {
				errs[i] = err
				continue
			}
			*outs[i] = c
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Proof is a Plonk proof: 9 G1 points and the openings of every committed
// polynomial at the challenge ζ (plus z at ζω). Its size is independent of
// the circuit. Proofs for lookup/custom-gate circuits additionally carry
// the three LogUp polynomials M (multiplicities), H (per-row log-derivative
// helper) and S (running sum), plus up to three extra quotient pieces.
type Proof struct {
	A, B, C           kzg.Commitment
	Z                 kzg.Commitment
	TLo, TMid, THi    kzg.Commitment
	WZeta, WZetaOmega kzg.Commitment
	// Extension commitments; zero (infinity) for classic proofs.
	M, H, S kzg.Commitment
	// TExtra holds quotient pieces 4–6 when custom gates push the
	// quotient degree past 3n.
	TExtra []kzg.Commitment
	Evals  ProofEvals
}

// ProofEvals carries the claimed polynomial evaluations at ζ (and z at ζω).
type ProofEvals struct {
	A, B, C, Z, ZOmega fr.Element
	QL, QR, QO, QM, QC fr.Element
	S1, S2, S3         fr.Element
	TLo, TMid, THi     fr.Element
	// Ext carries the extension's evaluations; nil for classic proofs.
	Ext *ExtEvals
}

// ExtEvals are the extra openings a lookup/custom-gate proof carries: the
// LogUp polynomials at ζ, the shifted openings at ζω (custom gates read
// the next row, the running sum is checked via S(ωx)), the extension
// selectors and round-constant columns at ζ, and the extra quotient
// pieces at ζ.
type ExtEvals struct {
	M, H, S                        fr.Element
	SOmega, AOmega, BOmega, COmega fr.Element
	QLk, Tbl, QMimc, QPosF, QPosP  fr.Element
	K0, K1, K2                     fr.Element
	TExtra                         []fr.Element
}

// zetaList returns the extension evaluations at ζ in the canonical folding
// order, appended after the classic evalList.
func (e *ExtEvals) zetaList() []fr.Element {
	out := []fr.Element{
		e.M, e.H, e.S,
		e.QLk, e.Tbl, e.QMimc, e.QPosF, e.QPosP,
		e.K0, e.K1, e.K2,
	}
	return append(out, e.TExtra...)
}

// omegaList returns the evaluations opened at ζω beyond the classic
// z(ζω), in the canonical folding order.
func (e *ExtEvals) omegaList() []fr.Element {
	return []fr.Element{e.SOmega, e.AOmega, e.BOmega, e.COmega}
}

// evalList returns the evaluations at ζ in the canonical folding order used
// by both prover and verifier for the batched KZG opening.
func (e *ProofEvals) evalList() []fr.Element {
	return []fr.Element{
		e.A, e.B, e.C, e.Z,
		e.QL, e.QR, e.QO, e.QM, e.QC,
		e.S1, e.S2, e.S3,
		e.TLo, e.TMid, e.THi,
	}
}

// bindTranscript absorbs the verifying key and public inputs so challenges
// are bound to the exact statement being proved. Extended keys absorb the
// extension data after the classic fields, so classic transcripts are
// byte-identical to the pre-lookup prover.
func bindTranscript(t *transcript.Transcript, vk *VerifyingKey, public []fr.Element) {
	n := fr.NewElement(vk.N)
	t.AppendScalar("domain-size", &n)
	np := fr.NewElement(uint64(vk.NbPublic))
	t.AppendScalar("nb-public", &np)
	for _, c := range []kzg.Commitment{vk.QL, vk.QR, vk.QO, vk.QM, vk.QC, vk.S1, vk.S2, vk.S3} {
		cc := c
		t.AppendPoint("vk", &cc)
	}
	t.AppendScalars("public-inputs", public)
	if vk.Extended {
		flags := uint64(1)
		if vk.Custom {
			flags |= 2
		}
		fl := fr.NewElement(flags)
		t.AppendScalar("ext-flags", &fl)
		tb := fr.NewElement(uint64(vk.TableBits))
		t.AppendScalar("table-bits", &tb)
		for _, c := range []kzg.Commitment{vk.QLk, vk.Tbl, vk.QMimc, vk.QPosF, vk.QPosP, vk.KC0, vk.KC1, vk.KC2} {
			cc := c
			t.AppendPoint("vk-ext", &cc)
		}
		for l := 0; l < 3; l++ {
			t.AppendScalars("mds", vk.MDS[l][:])
		}
	}
}

// coset4 returns the preprocessed 4n coset domain, building it only for
// proving keys that predate the Domain4 field (hand-constructed in tests).
func coset4(pk *ProvingKey) (*poly.Domain, error) {
	if pk.Domain4 != nil {
		return pk.Domain4, nil
	}
	d, err := poly.NewDomain(4 * pk.Domain.N)
	if err != nil {
		return nil, fmt.Errorf("plonk: %w", err)
	}
	pk.Domain4 = d
	return d, nil
}

// foldPolys returns ∑ coeffs[k]·ps[k] in a single pass, range-splitting the
// coefficient index across workers.
func foldPolys(ps []poly.Polynomial, coeffs []fr.Element) poly.Polynomial {
	maxLen := 0
	for _, p := range ps {
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	out := make(poly.Polynomial, maxLen)
	parallel.Execute(maxLen, func(start, end int) {
		for i := start; i < end; i++ {
			var acc, t fr.Element
			for k, p := range ps {
				if i >= len(p) {
					continue
				}
				t.Mul(&p[i], &coeffs[k])
				acc.Add(&acc, &t)
			}
			out[i] = acc
		}
	})
	return out
}

// Prove produces a proof that the witness satisfies the preprocessed
// circuit. The witness assigns every variable; its first NbPublic entries
// must equal the public inputs passed to Verify.
//
// Circuits using lookups or custom gates take the extended path; all
// others run the classic prover, byte-for-byte identical to the
// pre-lookup implementation (pinned by TestClassicProverBitIdentity).
func Prove(pk *ProvingKey, witness []fr.Element) (*Proof, error) {
	if pk.extended {
		return proveExtended(pk, witness)
	}
	return proveClassic(pk, witness)
}

// proveClassic is the original evaluate-everything Plonk prover.
//
// Every O(n) and O(4n) loop below is range-split across the bounded worker
// pool; the only serial remainders are the grand-product prefix scan and
// the transcript, which are inherently sequential.
func proveClassic(pk *ProvingKey, witness []fr.Element) (*Proof, error) {
	if len(witness) != pk.nbVars {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrWitnessLength, len(witness), pk.nbVars)
	}
	n := pk.Domain.N
	nInt := int(n)
	public := make([]fr.Element, pk.nbPublic)
	copy(public, witness[:pk.nbPublic])

	// Wire value vectors over the domain rows.
	aV := make([]fr.Element, n)
	bV := make([]fr.Element, n)
	cV := make([]fr.Element, n)
	parallel.Execute(nInt, func(start, end int) {
		for i := start; i < end; i++ {
			var g Gate // padding rows wire to variable 0 with all selectors zero
			if i < len(pk.gates) {
				g = pk.gates[i]
			}
			aV[i] = witness[g.A]
			bV[i] = witness[g.B]
			cV[i] = witness[g.C]
		}
	})

	// Public-input polynomial: PI(ω^i) = -x_i.
	piEvals := make([]fr.Element, n)
	for i := range public {
		piEvals[i].Neg(&public[i])
	}
	piPoly := make(poly.Polynomial, n)
	copy(piPoly, piEvals)
	if err := pk.Domain.IFFT(piPoly); err != nil {
		return nil, err
	}

	// Round 1: blinded wire polynomials and their commitments.
	blindWire := func(evals []fr.Element) (poly.Polynomial, error) {
		p := make(poly.Polynomial, n+2)
		copy(p, evals)
		if err := pk.Domain.IFFT(p[:n]); err != nil {
			return nil, err
		}
		b1, b2 := randScalar(), randScalar()
		// + (b1 + b2·X)·(X^n - 1)
		p[0].Sub(&p[0], &b1)
		p[1].Sub(&p[1], &b2)
		p[n].Add(&p[n], &b1)
		p[n+1].Add(&p[n+1], &b2)
		return p, nil
	}
	aPoly, err := blindWire(aV)
	if err != nil {
		return nil, err
	}
	bPoly, err := blindWire(bV)
	if err != nil {
		return nil, err
	}
	cPoly, err := blindWire(cV)
	if err != nil {
		return nil, err
	}

	commit := func(p poly.Polynomial) (kzg.Commitment, error) { return kzg.Commit(pk.SRS, p) }
	proof := &Proof{}
	// The three wire commitments are independent MSMs; run them in
	// parallel (the prover's dominant cost).
	if err = commitParallel(pk.SRS,
		[]poly.Polynomial{aPoly, bPoly, cPoly},
		[]*kzg.Commitment{&proof.A, &proof.B, &proof.C}); err != nil {
		return nil, err
	}

	tr := transcript.New("zkdet/plonk")
	bindTranscript(tr, pk.VK, public)
	tr.AppendPoint("a", &proof.A)
	tr.AppendPoint("b", &proof.B)
	tr.AppendPoint("c", &proof.C)
	beta := tr.ChallengeScalar("beta")
	gamma := tr.ChallengeScalar("gamma")

	// Round 2: grand-product polynomial z. The per-row numerator and
	// denominator products are independent; only the prefix scan that
	// turns them into z is serial.
	omega := pk.Domain.Elements()
	k1 := fr.NewElement(permK1)
	k2 := fr.NewElement(permK2)
	nums := make([]fr.Element, n)
	dens := make([]fr.Element, n)
	parallel.Execute(nInt, func(start, end int) {
		for i := start; i < end; i++ {
			var f1, f2, f3, t fr.Element
			// (a + β·ω^i + γ)(b + β·k1·ω^i + γ)(c + β·k2·ω^i + γ)
			f1.Mul(&beta, &omega[i])
			f1.Add(&f1, &aV[i])
			f1.Add(&f1, &gamma)
			t.Mul(&beta, &omega[i])
			t.Mul(&t, &k1)
			f2.Add(&bV[i], &t)
			f2.Add(&f2, &gamma)
			t.Mul(&beta, &omega[i])
			t.Mul(&t, &k2)
			f3.Add(&cV[i], &t)
			f3.Add(&f3, &gamma)
			nums[i].Mul(&f1, &f2)
			nums[i].Mul(&nums[i], &f3)

			// (a + β·sσ1 + γ)(b + β·sσ2 + γ)(c + β·sσ3 + γ)
			lbl := pk.sigmaLabel[i]
			t.Mul(&beta, &lbl[0])
			f1.Add(&aV[i], &t)
			f1.Add(&f1, &gamma)
			t.Mul(&beta, &lbl[1])
			f2.Add(&bV[i], &t)
			f2.Add(&f2, &gamma)
			t.Mul(&beta, &lbl[2])
			f3.Add(&cV[i], &t)
			f3.Add(&f3, &gamma)
			dens[i].Mul(&f1, &f2)
			dens[i].Mul(&dens[i], &f3)
		}
	})
	fr.BatchInvert(dens)
	zV := make([]fr.Element, n)
	zV[0] = fr.One()
	for i := 0; i < nInt-1; i++ {
		var step fr.Element
		step.Mul(&nums[i], &dens[i])
		zV[i+1].Mul(&zV[i], &step)
	}

	zPoly := make(poly.Polynomial, n+3)
	copy(zPoly, zV)
	if err := pk.Domain.IFFT(zPoly[:n]); err != nil {
		return nil, err
	}
	zb1, zb2, zb3 := randScalar(), randScalar(), randScalar()
	zPoly[0].Sub(&zPoly[0], &zb1)
	zPoly[1].Sub(&zPoly[1], &zb2)
	zPoly[2].Sub(&zPoly[2], &zb3)
	zPoly[n].Add(&zPoly[n], &zb1)
	zPoly[n+1].Add(&zPoly[n+1], &zb2)
	zPoly[n+2].Add(&zPoly[n+2], &zb3)

	if proof.Z, err = commit(zPoly); err != nil {
		return nil, err
	}
	tr.AppendPoint("z", &proof.Z)
	alpha := tr.ChallengeScalar("alpha")

	// Round 3: quotient polynomial t over the 4n coset (preprocessed on
	// the proving key, so its twiddle and coset tables are shared across
	// proofs).
	big := 4 * n
	domain4, err := coset4(pk)
	if err != nil {
		return nil, err
	}
	// The 13 coset evaluations are independent FFTs; run them with a
	// bounded worker pool.
	cosetInputs := []poly.Polynomial{
		aPoly, bPoly, cPoly, zPoly,
		pk.QL, pk.QR, pk.QO, pk.QM, pk.QC,
		pk.S1, pk.S2, pk.S3, piPoly,
	}
	cosetOutputs := make([][]fr.Element, len(cosetInputs))
	cosetErrs := make([]error, len(cosetInputs))
	parallel.Execute(len(cosetInputs), func(start, end int) {
		for i := start; i < end; i++ {
			e := make([]fr.Element, big)
			copy(e, cosetInputs[i])
			cosetErrs[i] = domain4.FFTCoset(e)
			cosetOutputs[i] = e
		}
	})
	for _, cerr := range cosetErrs {
		if cerr != nil {
			return nil, cerr
		}
	}
	aE, bE, cE, zE := cosetOutputs[0], cosetOutputs[1], cosetOutputs[2], cosetOutputs[3]
	qlE, qrE, qoE, qmE, qcE := cosetOutputs[4], cosetOutputs[5], cosetOutputs[6], cosetOutputs[7], cosetOutputs[8]
	s1E, s2E, s3E, piE := cosetOutputs[9], cosetOutputs[10], cosetOutputs[11], cosetOutputs[12]

	// Coset points x_i = g·ω₄ⁱ, their Z_H values (period 4) and L1 values.
	elems4 := domain4.Elements()
	xs := make([]fr.Element, big)
	shift := fr.NewElement(fr.MultiplicativeGenerator)
	parallel.Execute(int(big), func(start, end int) {
		for i := start; i < end; i++ {
			xs[i].Mul(&elems4[i], &shift)
		}
	})
	var gN fr.Element
	gN.ExpUint64(&shift, n)
	w4n := domain4.Element(n) // primitive 4th root of unity
	one := fr.One()
	zh := make([]fr.Element, 4)
	cur := gN
	for i := 0; i < 4; i++ {
		zh[i].Sub(&cur, &one)
		cur.Mul(&cur, &w4n)
	}
	zhInv := make([]fr.Element, 4)
	copy(zhInv, zh)
	fr.BatchInvert(zhInv)
	// L1(x) = Z_H(x) / (n·(x-1)).
	l1Den := make([]fr.Element, big)
	nEl := fr.NewElement(n)
	parallel.Execute(int(big), func(start, end int) {
		for i := start; i < end; i++ {
			l1Den[i].Sub(&xs[i], &one)
			l1Den[i].Mul(&l1Den[i], &nEl)
		}
	})
	fr.BatchInvert(l1Den)

	// The 4n quotient evaluations are independent; range-split them.
	tEvals := make([]fr.Element, big)
	parallel.Execute(int(big), func(start, end int) {
		for ii := start; ii < end; ii++ {
			i := uint64(ii)
			var gate, t1, t2 fr.Element
			// Gate constraint.
			t1.Mul(&qmE[i], &aE[i])
			t1.Mul(&t1, &bE[i])
			gate.Add(&gate, &t1)
			t1.Mul(&qlE[i], &aE[i])
			gate.Add(&gate, &t1)
			t1.Mul(&qrE[i], &bE[i])
			gate.Add(&gate, &t1)
			t1.Mul(&qoE[i], &cE[i])
			gate.Add(&gate, &t1)
			gate.Add(&gate, &qcE[i])
			gate.Add(&gate, &piE[i])

			// Permutation constraint.
			var p1, p2, f fr.Element
			t1.Mul(&beta, &xs[i])
			f.Add(&aE[i], &t1)
			f.Add(&f, &gamma)
			p1 = f
			t1.Mul(&beta, &xs[i])
			t1.Mul(&t1, &k1)
			f.Add(&bE[i], &t1)
			f.Add(&f, &gamma)
			p1.Mul(&p1, &f)
			t1.Mul(&beta, &xs[i])
			t1.Mul(&t1, &k2)
			f.Add(&cE[i], &t1)
			f.Add(&f, &gamma)
			p1.Mul(&p1, &f)
			p1.Mul(&p1, &zE[i])

			t1.Mul(&beta, &s1E[i])
			f.Add(&aE[i], &t1)
			f.Add(&f, &gamma)
			p2 = f
			t1.Mul(&beta, &s2E[i])
			f.Add(&bE[i], &t1)
			f.Add(&f, &gamma)
			p2.Mul(&p2, &f)
			t1.Mul(&beta, &s3E[i])
			f.Add(&cE[i], &t1)
			f.Add(&f, &gamma)
			p2.Mul(&p2, &f)
			zOmegaI := zE[(i+4)%big]
			p2.Mul(&p2, &zOmegaI)

			var perm fr.Element
			perm.Sub(&p1, &p2)
			perm.Mul(&perm, &alpha)

			// L1 boundary constraint: α²·L1(x)·(z(x) - 1).
			var l1v fr.Element
			l1v.Mul(&zh[i%4], &l1Den[i])
			t2.Sub(&zE[i], &one)
			l1v.Mul(&l1v, &t2)
			l1v.Mul(&l1v, &alpha)
			l1v.Mul(&l1v, &alpha)

			var num fr.Element
			num.Add(&gate, &perm)
			num.Add(&num, &l1v)
			tEvals[i].Mul(&num, &zhInv[i%4])
		}
	})
	tPoly := make(poly.Polynomial, big)
	copy(tPoly, tEvals)
	if err := domain4.IFFTCoset(tPoly); err != nil {
		return nil, err
	}

	// A satisfied circuit yields deg(t) ≤ 3n+5; anything above signals an
	// unsatisfied witness (the division by Z_H was not exact).
	for i := 3*n + 6; i < big; i++ {
		if !tPoly[i].IsZero() {
			return nil, ErrUnsatisfied
		}
	}
	tLo := poly.Polynomial(tPoly[:n])
	tMid := poly.Polynomial(tPoly[n : 2*n])
	tHi := poly.Polynomial(tPoly[2*n : 3*n+6])
	if err = commitParallel(pk.SRS,
		[]poly.Polynomial{tLo, tMid, tHi},
		[]*kzg.Commitment{&proof.TLo, &proof.TMid, &proof.THi}); err != nil {
		return nil, err
	}
	tr.AppendPoint("t_lo", &proof.TLo)
	tr.AppendPoint("t_mid", &proof.TMid)
	tr.AppendPoint("t_hi", &proof.THi)
	zeta := tr.ChallengeScalar("zeta")

	// Round 4: evaluations at ζ (and ζω for z) — 16 independent Horner
	// walks, run on the worker pool.
	var zetaOmega fr.Element
	zetaOmega.Mul(&zeta, &pk.Domain.Gen)
	ev := &proof.Evals
	evalTasks := []struct {
		p   poly.Polynomial
		at  *fr.Element
		out *fr.Element
	}{
		{aPoly, &zeta, &ev.A}, {bPoly, &zeta, &ev.B}, {cPoly, &zeta, &ev.C},
		{zPoly, &zeta, &ev.Z}, {zPoly, &zetaOmega, &ev.ZOmega},
		{pk.QL, &zeta, &ev.QL}, {pk.QR, &zeta, &ev.QR}, {pk.QO, &zeta, &ev.QO},
		{pk.QM, &zeta, &ev.QM}, {pk.QC, &zeta, &ev.QC},
		{pk.S1, &zeta, &ev.S1}, {pk.S2, &zeta, &ev.S2}, {pk.S3, &zeta, &ev.S3},
		{tLo, &zeta, &ev.TLo}, {tMid, &zeta, &ev.TMid}, {tHi, &zeta, &ev.THi},
	}
	parallel.Execute(len(evalTasks), func(start, end int) {
		for i := start; i < end; i++ {
			*evalTasks[i].out = evalTasks[i].p.Eval(evalTasks[i].at)
		}
	})

	tr.AppendScalars("evals", ev.evalList())
	tr.AppendScalar("z_omega", &ev.ZOmega)
	v := tr.ChallengeScalar("v")

	// Round 5: batched opening at ζ, single opening of z at ζω.
	foldInputs := []poly.Polynomial{
		aPoly, bPoly, cPoly, zPoly,
		pk.QL, pk.QR, pk.QO, pk.QM, pk.QC,
		pk.S1, pk.S2, pk.S3,
		tLo, tMid, tHi,
	}
	folded := foldPolys(foldInputs, fr.Powers(&v, len(foldInputs)))
	wZeta, _ := poly.DivideByLinear(folded, &zeta)
	if proof.WZeta, err = commit(wZeta); err != nil {
		return nil, err
	}
	wZetaOmega, _ := poly.DivideByLinear(zPoly, &zetaOmega)
	if proof.WZetaOmega, err = commit(wZetaOmega); err != nil {
		return nil, err
	}
	return proof, nil
}
