package plonk

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
)

// ProofSize is the byte length of a serialized proof: 9 uncompressed G1
// points plus 16 field elements — constant, whatever the circuit size.
const ProofSize = 9*64 + 16*32

// Bytes serializes the proof into its canonical fixed-size encoding.
func (p *Proof) Bytes() []byte {
	out := make([]byte, 0, ProofSize)
	for _, pt := range []bn254.G1Affine{
		p.A, p.B, p.C, p.Z, p.TLo, p.TMid, p.THi, p.WZeta, p.WZetaOmega,
	} {
		b := pt.Bytes()
		out = append(out, b[:]...)
	}
	evals := p.Evals.evalList()
	evals = append(evals, p.Evals.ZOmega)
	for i := range evals {
		b := evals[i].Bytes()
		out = append(out, b[:]...)
	}
	return out
}

// ProofFromBytes deserializes a proof, validating that every group element
// lies on the curve and every scalar is canonical.
func ProofFromBytes(data []byte) (*Proof, error) {
	if len(data) != ProofSize {
		return nil, fmt.Errorf("plonk: proof must be %d bytes, got %d", ProofSize, len(data))
	}
	p := &Proof{}
	pts := []*bn254.G1Affine{
		&p.A, &p.B, &p.C, &p.Z, &p.TLo, &p.TMid, &p.THi, &p.WZeta, &p.WZetaOmega,
	}
	off := 0
	for _, pt := range pts {
		decoded, err := bn254.G1FromBytes(data[off : off+64])
		if err != nil {
			return nil, fmt.Errorf("plonk: proof point: %w", err)
		}
		*pt = decoded
		off += 64
	}
	scalars := []*fr.Element{
		&p.Evals.A, &p.Evals.B, &p.Evals.C, &p.Evals.Z,
		&p.Evals.QL, &p.Evals.QR, &p.Evals.QO, &p.Evals.QM, &p.Evals.QC,
		&p.Evals.S1, &p.Evals.S2, &p.Evals.S3,
		&p.Evals.TLo, &p.Evals.TMid, &p.Evals.THi,
		&p.Evals.ZOmega,
	}
	for _, s := range scalars {
		decoded, err := fr.FromBytesCanonical(data[off : off+32])
		if err != nil {
			return nil, fmt.Errorf("plonk: proof scalar: %w", err)
		}
		*s = decoded
		off += 32
	}
	return p, nil
}
