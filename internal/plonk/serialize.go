package plonk

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
)

// Proof wire format. Encodings are version-stamped so the format can
// evolve with the proof system: a 4-byte magic, a format version and a
// flags byte describing the proof shape, followed by the fixed classic
// payload and (for lookup/custom-gate proofs) the extension payload.
//
//	"ZKPF" | version=1 | flags | classic payload | [extension payload]
//
// flags bit 0 marks an extended (lookup/custom) proof, bit 1 a custom-gate
// proof carrying three extra quotient pieces. The pre-versioning format —
// the bare 1088-byte classic payload with no header — is recognised and
// rejected with ErrLegacyEncoding so callers can migrate stored proofs
// explicitly via ProofFromLegacyBytes.
const (
	proofVersion = 1

	flagExtended byte = 1 << 0
	flagCustom   byte = 1 << 1

	headerSize = 6

	// classicPayloadSize is 9 uncompressed G1 points + 16 field elements.
	classicPayloadSize = 9*64 + 16*32
	// extPointsSize is the LogUp commitments [M], [H], [S].
	extPointsSize = 3 * 64
	// extEvalsSize is the 15 extension evaluations (M, H, S, the four ζω
	// openings, five extension selectors, three round-constant columns).
	extEvalsSize = 15 * 32
	// customExtraSize adds the three extra quotient pieces and their ζ
	// evaluations.
	customExtraSize = 3*64 + 3*32
)

// proofMagic stamps every versioned proof encoding.
var proofMagic = [4]byte{'Z', 'K', 'P', 'F'}

// ProofSize is the byte length of a serialized classic proof (header plus
// the constant classic payload). Lookup proofs add extPointsSize +
// extEvalsSize bytes, custom-gate proofs customExtraSize more — still
// constant, whatever the circuit size.
const ProofSize = headerSize + classicPayloadSize

// LegacyProofSize is the byte length of the pre-versioning encoding: the
// bare classic payload with no header.
const LegacyProofSize = classicPayloadSize

// ErrLegacyEncoding reports a proof blob in the pre-versioning format.
var ErrLegacyEncoding = errors.New("plonk: legacy (unversioned) proof encoding")

// appendG1 appends the 64-byte uncompressed encoding of pt. The point at
// infinity — a legitimate commitment to the zero polynomial, e.g. [M] in a
// custom-gate proof with no lookups — encodes as 64 zero bytes.
func appendG1(out []byte, pt *bn254.G1Affine) []byte {
	b := pt.Bytes()
	return append(out, b[:]...)
}

// readG1 decodes a 64-byte G1 encoding at data[off:], accepting the
// all-zero encoding as the point at infinity.
func readG1(data []byte, off int) (bn254.G1Affine, error) {
	chunk := data[off : off+64]
	var zero [64]byte
	if bytes.Equal(chunk, zero[:]) {
		return bn254.G1Affine{}, nil
	}
	return bn254.G1FromBytes(chunk)
}

// flags derives the shape byte from the proof's contents.
func (p *Proof) flags() byte {
	var f byte
	if p.Evals.Ext != nil {
		f |= flagExtended
		if len(p.TExtra) > 0 {
			f |= flagCustom
		}
	}
	return f
}

// Bytes serializes the proof into its canonical versioned encoding.
func (p *Proof) Bytes() []byte {
	f := p.flags()
	size := ProofSize
	if f&flagExtended != 0 {
		size += extPointsSize + extEvalsSize
	}
	if f&flagCustom != 0 {
		size += customExtraSize
	}
	out := make([]byte, 0, size)
	out = append(out, proofMagic[:]...)
	out = append(out, proofVersion, f)

	for _, pt := range []bn254.G1Affine{
		p.A, p.B, p.C, p.Z, p.TLo, p.TMid, p.THi, p.WZeta, p.WZetaOmega,
	} {
		out = appendG1(out, &pt)
	}
	evals := p.Evals.evalList()
	evals = append(evals, p.Evals.ZOmega)
	for i := range evals {
		b := evals[i].Bytes()
		out = append(out, b[:]...)
	}
	if f&flagExtended == 0 {
		return out
	}

	for _, pt := range []bn254.G1Affine{p.M, p.H, p.S} {
		out = appendG1(out, &pt)
	}
	for i := range p.TExtra {
		out = appendG1(out, &p.TExtra[i])
	}
	e := p.Evals.Ext
	extScalars := []fr.Element{
		e.M, e.H, e.S,
		e.SOmega, e.AOmega, e.BOmega, e.COmega,
		e.QLk, e.Tbl, e.QMimc, e.QPosF, e.QPosP,
		e.K0, e.K1, e.K2,
	}
	extScalars = append(extScalars, e.TExtra...)
	for i := range extScalars {
		b := extScalars[i].Bytes()
		out = append(out, b[:]...)
	}
	return out
}

// ProofFromBytes deserializes a versioned proof, validating that every
// group element lies on the curve and every scalar is canonical. Blobs in
// the pre-versioning format are rejected with ErrLegacyEncoding.
func ProofFromBytes(data []byte) (*Proof, error) {
	if len(data) < headerSize || !bytes.Equal(data[:4], proofMagic[:]) {
		if len(data) == LegacyProofSize {
			return nil, fmt.Errorf("%w: decode with ProofFromLegacyBytes", ErrLegacyEncoding)
		}
		return nil, fmt.Errorf("plonk: proof encoding lacks %q header", proofMagic)
	}
	if v := data[4]; v != proofVersion {
		return nil, fmt.Errorf("plonk: unsupported proof format version %d (have %d)", v, proofVersion)
	}
	f := data[5]
	if f&^(flagExtended|flagCustom) != 0 {
		return nil, fmt.Errorf("plonk: unknown proof flags %#02x", f)
	}
	if f&flagCustom != 0 && f&flagExtended == 0 {
		return nil, fmt.Errorf("plonk: custom flag without extended flag")
	}
	want := ProofSize
	if f&flagExtended != 0 {
		want += extPointsSize + extEvalsSize
	}
	if f&flagCustom != 0 {
		want += customExtraSize
	}
	if len(data) != want {
		return nil, fmt.Errorf("plonk: proof with flags %#02x must be %d bytes, got %d", f, want, len(data))
	}

	p := &Proof{}
	off := headerSize
	var err error
	if off, err = decodeClassicPayload(p, data, off); err != nil {
		return nil, err
	}
	if f&flagExtended == 0 {
		return p, nil
	}

	for _, pt := range []*bn254.G1Affine{&p.M, &p.H, &p.S} {
		*pt, err = readG1(data, off)
		if err != nil {
			return nil, fmt.Errorf("plonk: proof point: %w", err)
		}
		off += 64
	}
	nbExtra := 0
	if f&flagCustom != 0 {
		nbExtra = 3
		p.TExtra = make([]bn254.G1Affine, 0, nbExtra)
		for i := 0; i < nbExtra; i++ {
			pt, err := readG1(data, off)
			if err != nil {
				return nil, fmt.Errorf("plonk: proof point: %w", err)
			}
			p.TExtra = append(p.TExtra, pt)
			off += 64
		}
	}
	e := &ExtEvals{}
	extScalars := []*fr.Element{
		&e.M, &e.H, &e.S,
		&e.SOmega, &e.AOmega, &e.BOmega, &e.COmega,
		&e.QLk, &e.Tbl, &e.QMimc, &e.QPosF, &e.QPosP,
		&e.K0, &e.K1, &e.K2,
	}
	for _, s := range extScalars {
		decoded, err := fr.FromBytesCanonical(data[off : off+32])
		if err != nil {
			return nil, fmt.Errorf("plonk: proof scalar: %w", err)
		}
		*s = decoded
		off += 32
	}
	if nbExtra > 0 {
		e.TExtra = make([]fr.Element, nbExtra)
		for i := 0; i < nbExtra; i++ {
			e.TExtra[i], err = fr.FromBytesCanonical(data[off : off+32])
			if err != nil {
				return nil, fmt.Errorf("plonk: proof scalar: %w", err)
			}
			off += 32
		}
	}
	p.Evals.Ext = e
	return p, nil
}

// ProofFromLegacyBytes deserializes the pre-versioning encoding: the bare
// classic payload with no header. It exists so proofs stored before the
// format was version-stamped remain readable.
func ProofFromLegacyBytes(data []byte) (*Proof, error) {
	if len(data) != LegacyProofSize {
		return nil, fmt.Errorf("plonk: legacy proof must be %d bytes, got %d", LegacyProofSize, len(data))
	}
	p := &Proof{}
	if _, err := decodeClassicPayload(p, data, 0); err != nil {
		return nil, err
	}
	return p, nil
}

// decodeClassicPayload reads the 9 points and 16 scalars every proof
// carries, returning the new offset.
func decodeClassicPayload(p *Proof, data []byte, off int) (int, error) {
	pts := []*bn254.G1Affine{
		&p.A, &p.B, &p.C, &p.Z, &p.TLo, &p.TMid, &p.THi, &p.WZeta, &p.WZetaOmega,
	}
	for _, pt := range pts {
		decoded, err := readG1(data, off)
		if err != nil {
			return 0, fmt.Errorf("plonk: proof point: %w", err)
		}
		*pt = decoded
		off += 64
	}
	scalars := []*fr.Element{
		&p.Evals.A, &p.Evals.B, &p.Evals.C, &p.Evals.Z,
		&p.Evals.QL, &p.Evals.QR, &p.Evals.QO, &p.Evals.QM, &p.Evals.QC,
		&p.Evals.S1, &p.Evals.S2, &p.Evals.S3,
		&p.Evals.TLo, &p.Evals.TMid, &p.Evals.THi,
		&p.Evals.ZOmega,
	}
	for _, s := range scalars {
		decoded, err := fr.FromBytesCanonical(data[off : off+32])
		if err != nil {
			return 0, fmt.Errorf("plonk: proof scalar: %w", err)
		}
		*s = decoded
		off += 32
	}
	return off, nil
}
