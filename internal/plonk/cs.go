// Package plonk implements the Plonk zkSNARK (Gabizon–Williamson–Ciobotaru,
// "PLONK: Permutations over Lagrange-bases for Oecumenical Noninteractive
// arguments of Knowledge") over BN254 with KZG commitments — the proof
// system ZKDET uses for every π_e, π_t, π_p and π_k.
//
// The implementation follows the paper's five-round protocol with one
// deliberate simplification: instead of the linearization polynomial, the
// prover opens every committed polynomial at the evaluation challenge ζ and
// the verifier checks the quotient identity directly in the field
// ("evaluate-everything" Plonk). The proof still contains exactly 9 G1
// points — [a], [b], [c], [z], [t_lo], [t_mid], [t_hi], [W_ζ], [W_ζω] —
// and verification still costs 2 pairings, matching the paper's §VI-B3
// accounting; only the count of (cheap) field evaluations in the proof
// grows.
package plonk

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/fr"
)

// Common errors returned by this package.
var (
	ErrUnsatisfied   = errors.New("plonk: constraint system not satisfied")
	ErrProofInvalid  = errors.New("plonk: proof verification failed")
	ErrWrongPublic   = errors.New("plonk: wrong number of public inputs")
	ErrSRSTooSmall   = errors.New("plonk: SRS too small for circuit")
	ErrEmptyCircuit  = errors.New("plonk: circuit has no variables")
	ErrWitnessLength = errors.New("plonk: witness length mismatch")
)

// Gate is one Plonk gate: the constraint
//
//	qL·a + qR·b + qO·c + qM·a·b + qC + PI = 0
//
// where a, b, c are the values of the three wired variables and PI is the
// public-input polynomial (non-zero only on the first NbPublic rows).
type Gate struct {
	QL, QR, QO, QM, QC fr.Element
	// A, B, C are variable indices wired into this gate's three slots.
	A, B, C int
}

// ConstraintSystem is a gate list plus wiring. Variables are dense integer
// indices; the first NbPublic variables are the public inputs, and the
// system's first NbPublic gates expose them (a-wire = input, qL = 1).
type ConstraintSystem struct {
	nbPublic    int
	nbVariables int
	gates       []Gate
}

// NewConstraintSystem creates a system with nbPublic public-input
// variables (variables 0 … nbPublic-1) and their exposure gates.
func NewConstraintSystem(nbPublic int) *ConstraintSystem {
	cs := &ConstraintSystem{nbPublic: nbPublic, nbVariables: nbPublic}
	for i := 0; i < nbPublic; i++ {
		cs.gates = append(cs.gates, Gate{QL: fr.One(), A: i, B: i, C: i})
	}
	return cs
}

// NbPublic returns the number of public-input variables.
func (cs *ConstraintSystem) NbPublic() int { return cs.nbPublic }

// NbVariables returns the total number of variables.
func (cs *ConstraintSystem) NbVariables() int { return cs.nbVariables }

// NbGates returns the number of gates (including public-input gates).
func (cs *ConstraintSystem) NbGates() int { return len(cs.gates) }

// NbConstraints is an alias for NbGates, the paper's "number of
// constraints" metric.
func (cs *ConstraintSystem) NbConstraints() int { return len(cs.gates) }

// NewVariable allocates a fresh variable index.
func (cs *ConstraintSystem) NewVariable() int {
	v := cs.nbVariables
	cs.nbVariables++
	return v
}

// AddGate appends a gate. Wire indices must reference existing variables.
func (cs *ConstraintSystem) AddGate(g Gate) error {
	for _, w := range []int{g.A, g.B, g.C} {
		if w < 0 || w >= cs.nbVariables {
			return fmt.Errorf("plonk: gate references unknown variable %d (have %d)", w, cs.nbVariables)
		}
	}
	cs.gates = append(cs.gates, g)
	return nil
}

// MustAddGate is AddGate for programmatically-generated gates; it panics on
// wiring errors, which are always construction bugs.
func (cs *ConstraintSystem) MustAddGate(g Gate) {
	if err := cs.AddGate(g); err != nil {
		panic(err)
	}
}

// IsSatisfied checks every gate against the witness directly (no crypto).
// The witness must assign all variables; its first NbPublic entries are the
// public inputs. This is the reference semantics the SNARK must agree with,
// and the first thing to reach for when a proof unexpectedly fails.
func (cs *ConstraintSystem) IsSatisfied(witness []fr.Element) error {
	if len(witness) != cs.nbVariables {
		return fmt.Errorf("%w: got %d, want %d", ErrWitnessLength, len(witness), cs.nbVariables)
	}
	for i, g := range cs.gates {
		a, b, c := witness[g.A], witness[g.B], witness[g.C]
		var acc, t fr.Element
		t.Mul(&g.QL, &a)
		acc.Add(&acc, &t)
		t.Mul(&g.QR, &b)
		acc.Add(&acc, &t)
		t.Mul(&g.QO, &c)
		acc.Add(&acc, &t)
		t.Mul(&a, &b)
		t.Mul(&t, &g.QM)
		acc.Add(&acc, &t)
		acc.Add(&acc, &g.QC)
		if i < cs.nbPublic {
			// PI(ω^i) = -x_i.
			acc.Sub(&acc, &witness[i])
		}
		if !acc.IsZero() {
			return fmt.Errorf("%w: gate %d", ErrUnsatisfied, i)
		}
	}
	return nil
}
