// Package plonk implements the Plonk zkSNARK (Gabizon–Williamson–Ciobotaru,
// "PLONK: Permutations over Lagrange-bases for Oecumenical Noninteractive
// arguments of Knowledge") over BN254 with KZG commitments — the proof
// system ZKDET uses for every π_e, π_t, π_p and π_k.
//
// The implementation follows the paper's five-round protocol with one
// deliberate simplification: instead of the linearization polynomial, the
// prover opens every committed polynomial at the evaluation challenge ζ and
// the verifier checks the quotient identity directly in the field
// ("evaluate-everything" Plonk). The proof still contains exactly 9 G1
// points — [a], [b], [c], [z], [t_lo], [t_mid], [t_hi], [W_ζ], [W_ζω] —
// and verification still costs 2 pairings, matching the paper's §VI-B3
// accounting; only the count of (cheap) field evaluations in the proof
// grows.
package plonk

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/fr"
)

// Common errors returned by this package.
var (
	ErrUnsatisfied   = errors.New("plonk: constraint system not satisfied")
	ErrProofInvalid  = errors.New("plonk: proof verification failed")
	ErrWrongPublic   = errors.New("plonk: wrong number of public inputs")
	ErrSRSTooSmall   = errors.New("plonk: SRS too small for circuit")
	ErrEmptyCircuit  = errors.New("plonk: circuit has no variables")
	ErrWitnessLength = errors.New("plonk: witness length mismatch")
	ErrLookupRange   = errors.New("plonk: lookup value outside range table")
	ErrNoRangeTable  = errors.New("plonk: lookup gate without a range table")
	ErrNoMDS         = errors.New("plonk: poseidon gate without an MDS matrix")
	ErrProofShape    = errors.New("plonk: proof shape does not match verifying key")
	ErrTableTooLarge = errors.New("plonk: range table bits out of range")
)

// GateKind selects the constraint family a gate row enforces. The zero
// value is the classic arithmetic gate; the other kinds are the custom
// gates and lookup rows of the plookup extension (DESIGN.md §15). Rows of
// any kind still carry the arithmetic selectors (zero for the generated
// gadgets) and participate in the copy-constraint permutation.
type GateKind uint8

const (
	// KindArith is the classic qL·a + qR·b + qO·c + qM·a·b + qC gate.
	KindArith GateKind = iota
	// KindLookup asserts that the a-wire's value appears in the range
	// table (i.e. 0 ≤ a < 2^TableBits), via the log-derivative lookup
	// argument instead of a bit decomposition.
	KindLookup
	// KindMiMC packs one MiMC round t' = (t+k+rc)^7 into a single row:
	// wires (a,b,c) = (t, k, u²) with u = a+b+K0, constraining c = u² and
	// nextrow.a = c³·u. The round constant rides in K[0].
	KindMiMC
	// KindPoseidonFull packs one full Poseidon round: wires carry the
	// state, K the round constants, and the next row's wires must equal
	// MDS·(w+K)^5 lane-wise.
	KindPoseidonFull
	// KindPoseidonPartial is the partial round: only lane a is S-boxed.
	KindPoseidonPartial
)

// isCustom reports whether the kind reads the next row's wires.
func (k GateKind) isCustom() bool {
	return k == KindMiMC || k == KindPoseidonFull || k == KindPoseidonPartial
}

// Gate is one Plonk gate row: for KindArith the constraint
//
//	qL·a + qR·b + qO·c + qM·a·b + qC + PI = 0
//
// where a, b, c are the values of the three wired variables and PI is the
// public-input polynomial (non-zero only on the first NbPublic rows).
// Other kinds add their family's constraint on top (the arithmetic
// selectors are still enforced and are normally zero on such rows).
type Gate struct {
	QL, QR, QO, QM, QC fr.Element
	// Kind selects the constraint family (zero value: arithmetic).
	Kind GateKind
	// K carries per-row custom-gate constants (round constants); unused
	// for arithmetic and lookup rows.
	K [3]fr.Element
	// A, B, C are variable indices wired into this gate's three slots.
	A, B, C int
}

// ConstraintSystem is a gate list plus wiring. Variables are dense integer
// indices; the first NbPublic variables are the public inputs, and the
// system's first NbPublic gates expose them (a-wire = input, qL = 1).
type ConstraintSystem struct {
	nbPublic    int
	nbVariables int
	gates       []Gate

	tableBits int              // range table covers [0, 2^tableBits)
	mds       [3][3]fr.Element // Poseidon MDS matrix for the custom rounds
	mdsSet    bool
	hasLookup bool
	hasCustom bool
}

// NewConstraintSystem creates a system with nbPublic public-input
// variables (variables 0 … nbPublic-1) and their exposure gates.
func NewConstraintSystem(nbPublic int) *ConstraintSystem {
	cs := &ConstraintSystem{nbPublic: nbPublic, nbVariables: nbPublic}
	for i := 0; i < nbPublic; i++ {
		cs.gates = append(cs.gates, Gate{QL: fr.One(), A: i, B: i, C: i})
	}
	return cs
}

// NbPublic returns the number of public-input variables.
func (cs *ConstraintSystem) NbPublic() int { return cs.nbPublic }

// NbVariables returns the total number of variables.
func (cs *ConstraintSystem) NbVariables() int { return cs.nbVariables }

// NbGates returns the number of gates (including public-input gates).
func (cs *ConstraintSystem) NbGates() int { return len(cs.gates) }

// Gates returns a copy of the gate list (including the public-input
// exposure gates at the front). The soundness auditor walks this to run
// its structural checks against the compiled system rather than the
// builder's pre-compilation view.
func (cs *ConstraintSystem) Gates() []Gate { return append([]Gate(nil), cs.gates...) }

// NbConstraints is an alias for NbGates, the paper's "number of
// constraints" metric.
func (cs *ConstraintSystem) NbConstraints() int { return len(cs.gates) }

// NewVariable allocates a fresh variable index.
func (cs *ConstraintSystem) NewVariable() int {
	v := cs.nbVariables
	cs.nbVariables++
	return v
}

// MaxTableBits caps the range table: 2^20 rows already dominates any
// circuit here, and the SRS must cover the table.
const MaxTableBits = 20

// UseRangeTable declares that this system's lookup rows check membership
// in the table {0, 1, …, 2^bits − 1}. Must be called before adding the
// first KindLookup gate.
func (cs *ConstraintSystem) UseRangeTable(bits int) error {
	if bits < 1 || bits > MaxTableBits {
		return fmt.Errorf("%w: %d bits", ErrTableTooLarge, bits)
	}
	cs.tableBits = bits
	return nil
}

// RangeTableBits returns the declared range-table width, 0 if none.
func (cs *ConstraintSystem) RangeTableBits() int { return cs.tableBits }

// SetPoseidonMDS installs the MDS matrix the Poseidon custom gates
// multiply by. It becomes part of the verifying key.
func (cs *ConstraintSystem) SetPoseidonMDS(m [3][3]fr.Element) {
	cs.mds = m
	cs.mdsSet = true
}

// HasLookup reports whether any gate row is a lookup.
func (cs *ConstraintSystem) HasLookup() bool { return cs.hasLookup }

// HasCustomGates reports whether any gate row uses a custom (next-row)
// constraint family.
func (cs *ConstraintSystem) HasCustomGates() bool { return cs.hasCustom }

// AddGate appends a gate. Wire indices must reference existing variables.
func (cs *ConstraintSystem) AddGate(g Gate) error {
	for _, w := range []int{g.A, g.B, g.C} {
		if w < 0 || w >= cs.nbVariables {
			return fmt.Errorf("plonk: gate references unknown variable %d (have %d)", w, cs.nbVariables)
		}
	}
	switch {
	case g.Kind == KindLookup:
		if cs.tableBits == 0 {
			return ErrNoRangeTable
		}
		cs.hasLookup = true
	case g.Kind == KindPoseidonFull || g.Kind == KindPoseidonPartial:
		if !cs.mdsSet {
			return ErrNoMDS
		}
		cs.hasCustom = true
	case g.Kind == KindMiMC:
		cs.hasCustom = true
	}
	cs.gates = append(cs.gates, g)
	return nil
}

// MustAddGate is AddGate for programmatically-generated gates; it panics on
// wiring errors, which are always construction bugs.
func (cs *ConstraintSystem) MustAddGate(g Gate) {
	if err := cs.AddGate(g); err != nil {
		panic(err)
	}
}

// IsSatisfied checks every gate against the witness directly (no crypto).
// The witness must assign all variables; its first NbPublic entries are the
// public inputs. This is the reference semantics the SNARK must agree with,
// and the first thing to reach for when a proof unexpectedly fails.
func (cs *ConstraintSystem) IsSatisfied(witness []fr.Element) error {
	if len(witness) != cs.nbVariables {
		return fmt.Errorf("%w: got %d, want %d", ErrWitnessLength, len(witness), cs.nbVariables)
	}
	for i, g := range cs.gates {
		a, b, c := witness[g.A], witness[g.B], witness[g.C]
		var acc, t fr.Element
		t.Mul(&g.QL, &a)
		acc.Add(&acc, &t)
		t.Mul(&g.QR, &b)
		acc.Add(&acc, &t)
		t.Mul(&g.QO, &c)
		acc.Add(&acc, &t)
		t.Mul(&a, &b)
		t.Mul(&t, &g.QM)
		acc.Add(&acc, &t)
		acc.Add(&acc, &g.QC)
		if i < cs.nbPublic {
			// PI(ω^i) = -x_i.
			acc.Sub(&acc, &witness[i])
		}
		if !acc.IsZero() {
			return fmt.Errorf("%w: gate %d", ErrUnsatisfied, i)
		}
		switch g.Kind {
		case KindLookup:
			if v, ok := a.Uint64(); !ok || v >= uint64(1)<<cs.tableBits {
				return fmt.Errorf("%w: gate %d", ErrLookupRange, i)
			}
		case KindMiMC, KindPoseidonFull, KindPoseidonPartial:
			// Custom gates read the following row's wires; past the last
			// gate the prover pads with rows wired to variable 0, matching
			// the polynomial identity on the padded domain.
			na, nb, nc := witness[0], witness[0], witness[0]
			if i+1 < len(cs.gates) {
				ng := cs.gates[i+1]
				na, nb, nc = witness[ng.A], witness[ng.B], witness[ng.C]
			}
			if err := checkCustomGate(g, cs.mds, a, b, c, na, nb, nc); err != nil {
				return fmt.Errorf("%w: gate %d", err, i)
			}
		}
	}
	return nil
}

// checkCustomGate evaluates one custom-gate family on concrete wire values;
// it is the reference semantics mirrored by the prover's quotient and the
// verifier's evaluation at ζ.
func checkCustomGate(g Gate, mds [3][3]fr.Element, a, b, c, na, nb, nc fr.Element) error {
	switch g.Kind {
	case KindMiMC:
		// u = a + b + K0; constraints c = u² and na = c³·u  (⇒ na = u⁷).
		var u, u2, t fr.Element
		u.Add(&a, &b)
		u.Add(&u, &g.K[0])
		u2.Square(&u)
		if !u2.Equal(&c) {
			return ErrUnsatisfied
		}
		t.Square(&c)
		t.Mul(&t, &c)
		t.Mul(&t, &u)
		if !t.Equal(&na) {
			return ErrUnsatisfied
		}
	case KindPoseidonFull, KindPoseidonPartial:
		w := [3]fr.Element{a, b, c}
		next := [3]fr.Element{na, nb, nc}
		var sb [3]fr.Element
		for j := 0; j < 3; j++ {
			var t fr.Element
			t.Add(&w[j], &g.K[j])
			if g.Kind == KindPoseidonFull || j == 0 {
				var t2 fr.Element
				t2.Square(&t)
				t2.Square(&t2)
				t.Mul(&t2, &t)
			}
			sb[j] = t
		}
		for l := 0; l < 3; l++ {
			var acc, t fr.Element
			for j := 0; j < 3; j++ {
				t.Mul(&mds[l][j], &sb[j])
				acc.Add(&acc, &t)
			}
			if !acc.Equal(&next[l]) {
				return ErrUnsatisfied
			}
		}
	}
	return nil
}
