package plonk

import (
	"errors"
	"testing"
)

// TestExtendedProofSerializationRoundTrip round-trips lookup-only and
// custom-gate proofs through the versioned encoding, verifying the
// decoded proofs and pinning the per-shape sizes.
func TestExtendedProofSerializationRoundTrip(t *testing.T) {
	// Lookup-only proof: [M],[H],[S] are live but there are no extra
	// quotient pieces; [QMimc] etc. commit to zero polynomials, so the
	// encoding must survive points at infinity.
	csL, wL := buildLookupCircuit(8, []uint64{0, 42, 255})
	pkL, vkL, err := Setup(csL, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	pL, err := Prove(pkL, wL)
	if err != nil {
		t.Fatal(err)
	}
	dataL := pL.Bytes()
	wantL := ProofSize + extPointsSize + extEvalsSize
	if len(dataL) != wantL {
		t.Fatalf("lookup proof encodes to %d bytes, want %d", len(dataL), wantL)
	}
	backL, err := ProofFromBytes(dataL)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vkL, backL, wL[:1]); err != nil {
		t.Fatalf("decoded lookup proof rejected: %v", err)
	}

	// Custom-gate proof: three extra quotient pieces ride along.
	csM, wM := buildMiMCCustomCircuit(5)
	pkM, vkM, err := Setup(csM, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	pM, err := Prove(pkM, wM)
	if err != nil {
		t.Fatal(err)
	}
	dataM := pM.Bytes()
	wantM := wantL + customExtraSize
	if len(dataM) != wantM {
		t.Fatalf("custom proof encodes to %d bytes, want %d", len(dataM), wantM)
	}
	backM, err := ProofFromBytes(dataM)
	if err != nil {
		t.Fatal(err)
	}
	if len(backM.TExtra) != 3 || backM.Evals.Ext == nil || len(backM.Evals.Ext.TExtra) != 3 {
		t.Fatalf("decoded custom proof lost extension data")
	}
	if err := Verify(vkM, backM, wM[:1]); err != nil {
		t.Fatalf("decoded custom proof rejected: %v", err)
	}
}

// TestProofHeaderValidation exercises the header checks: bad magic, bad
// version, unknown flags, inconsistent flag/length combinations.
func TestProofHeaderValidation(t *testing.T) {
	cs, witness := buildMulAddCircuit()
	pk, _, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	good := proof.Bytes()

	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := ProofFromBytes(bad); err == nil {
		t.Fatal("bad magic accepted")
	}

	bad = append([]byte{}, good...)
	bad[4] = 99
	if _, err := ProofFromBytes(bad); err == nil {
		t.Fatal("future version accepted")
	}

	bad = append([]byte{}, good...)
	bad[5] = 0x80
	if _, err := ProofFromBytes(bad); err == nil {
		t.Fatal("unknown flags accepted")
	}

	// Custom flag without extended flag is malformed.
	bad = append([]byte{}, good...)
	bad[5] = flagCustom
	if _, err := ProofFromBytes(bad); err == nil {
		t.Fatal("custom-without-extended accepted")
	}

	// Extended flag on a classic-length blob must fail the length check.
	bad = append([]byte{}, good...)
	bad[5] = flagExtended
	if _, err := ProofFromBytes(bad); err == nil {
		t.Fatal("extended flag with classic length accepted")
	}
}

// TestLegacyProofDecoding is the regression test for the pre-versioning
// format: a headerless classic payload is rejected by ProofFromBytes with
// ErrLegacyEncoding, and ProofFromLegacyBytes still decodes it into a
// verifying proof.
func TestLegacyProofDecoding(t *testing.T) {
	cs, witness := buildMulAddCircuit()
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the legacy encoding: the versioned classic payload minus
	// its header is byte-identical to the old format.
	legacy := proof.Bytes()[headerSize:]
	if len(legacy) != LegacyProofSize {
		t.Fatalf("legacy payload is %d bytes, want %d", len(legacy), LegacyProofSize)
	}

	if _, err := ProofFromBytes(legacy); !errors.Is(err, ErrLegacyEncoding) {
		t.Fatalf("legacy blob: got %v, want ErrLegacyEncoding", err)
	}

	back, err := ProofFromLegacyBytes(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk, back, witness[:2]); err != nil {
		t.Fatalf("legacy-decoded proof rejected: %v", err)
	}

	if _, err := ProofFromLegacyBytes(legacy[:100]); err == nil {
		t.Fatal("short legacy blob accepted")
	}

	// An extended proof has no legacy encoding; its payload length alone
	// must keep it out of the legacy path.
	csL, wL := buildLookupCircuit(8, []uint64{1, 2})
	pkL, _, err := Setup(csL, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	pL, err := Prove(pkL, wL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProofFromLegacyBytes(pL.Bytes()[headerSize:]); err == nil {
		t.Fatal("extended payload decoded as legacy")
	}
}

// TestExtendedSerializationTamperRejected flips one byte in every section
// of an extended encoding and checks decode or verify rejects it.
func TestExtendedSerializationTamperRejected(t *testing.T) {
	cs, witness := buildMiMCCustomCircuit(4)
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	good := proof.Bytes()
	// One offset inside each section: classic points, classic evals,
	// extension points, extra pieces, extension evals.
	offsets := []int{
		headerSize + 10,
		headerSize + 9*64 + 5,
		headerSize + classicPayloadSize + 7,
		headerSize + classicPayloadSize + extPointsSize + 3,
		headerSize + classicPayloadSize + extPointsSize + 3*64 + 9,
	}
	for _, off := range offsets {
		bad := append([]byte{}, good...)
		bad[off] ^= 0x5a
		back, err := ProofFromBytes(bad)
		if err != nil {
			continue // caught at decode
		}
		if err := Verify(vk, back, witness[:1]); err == nil {
			t.Fatalf("tampered byte at offset %d accepted", off)
		}
	}
}
