package plonk

import (
	"errors"
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
)

// buildLookupCircuit returns a circuit asserting each of vals lies in
// [0, 2^bits) via one lookup row per value, with one public input.
func buildLookupCircuit(bits int, vals []uint64) (*ConstraintSystem, []fr.Element) {
	cs := NewConstraintSystem(1)
	if err := cs.UseRangeTable(bits); err != nil {
		panic(err)
	}
	witness := []fr.Element{fr.NewElement(7)}
	for _, v := range vals {
		idx := cs.NewVariable()
		witness = append(witness, fr.NewElement(v))
		cs.MustAddGate(Gate{Kind: KindLookup, A: idx, B: idx, C: idx})
	}
	return cs, witness
}

func TestLookupProveVerify(t *testing.T) {
	cs, witness := buildLookupCircuit(8, []uint64{0, 1, 42, 42, 255, 128, 42})
	if err := cs.IsSatisfied(witness); err != nil {
		t.Fatal(err)
	}
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	if !vk.Extended || vk.Custom {
		t.Fatalf("want lookup-only key, got extended=%v custom=%v", vk.Extended, vk.Custom)
	}
	if vk.N != 256 {
		t.Fatalf("domain must cover the table: n=%d", vk.N)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.TExtra) != 0 {
		t.Fatalf("lookup-only proof must keep 3 quotient pieces, got %d extra", len(proof.TExtra))
	}
	if err := Verify(vk, proof, witness[:1]); err != nil {
		t.Fatal(err)
	}
	// Wrong public input must fail.
	if err := Verify(vk, proof, []fr.Element{fr.NewElement(8)}); err == nil {
		t.Fatal("wrong public input accepted")
	}
}

func TestLookupOutOfTable(t *testing.T) {
	cs, witness := buildLookupCircuit(8, []uint64{3, 256})
	if err := cs.IsSatisfied(witness); !errors.Is(err, ErrLookupRange) {
		t.Fatalf("IsSatisfied: got %v, want ErrLookupRange", err)
	}
	pk, _, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Prove(pk, witness); !errors.Is(err, ErrLookupRange) {
		t.Fatalf("Prove: got %v, want ErrLookupRange", err)
	}
}

// mimcPow7 computes (t+k+rc)^7 like the MiMC round function.
func mimcPow7(t, k, rc fr.Element) fr.Element {
	var u, u2, u4, out fr.Element
	u.Add(&t, &k)
	u.Add(&u, &rc)
	u2.Square(&u)
	u4.Square(&u2)
	out.Mul(&u4, &u2)
	out.Mul(&out, &u)
	return out
}

// buildMiMCCustomCircuit chains `rounds` MiMC rounds t ← (t+k+rc)^7 as one
// custom gate per round, closing with an arithmetic gate pinning the final
// state to the public input.
func buildMiMCCustomCircuit(rounds int) (*ConstraintSystem, []fr.Element) {
	var tv, k fr.Element
	tv = fr.NewElement(13)
	k = fr.NewElement(77)

	// First compute the expected chain to expose the result publicly.
	state := tv
	rcs := make([]fr.Element, rounds)
	for r := 0; r < rounds; r++ {
		rcs[r] = fr.NewElement(uint64(1000 + r))
		state = mimcPow7(state, k, rcs[r])
	}

	cs := NewConstraintSystem(1)
	witness := []fr.Element{state} // public: final state
	newVar := func(v fr.Element) int {
		idx := cs.NewVariable()
		witness = append(witness, v)
		return idx
	}
	tIdx := newVar(tv)
	kIdx := newVar(k)
	cur := tv
	for r := 0; r < rounds; r++ {
		var u, sq fr.Element
		u.Add(&cur, &k)
		u.Add(&u, &rcs[r])
		sq.Square(&u)
		sqIdx := newVar(sq)
		cs.MustAddGate(Gate{Kind: KindMiMC, K: [3]fr.Element{rcs[r]}, A: tIdx, B: kIdx, C: sqIdx})
		cur = mimcPow7(cur, k, rcs[r])
		tIdx = newVar(cur)
	}
	// Closing row: the last round's next-row read lands here (only the
	// a-wire matters to MiMC), and the arithmetic constraint pins the
	// chain output to the public input.
	one := fr.One()
	var negOne fr.Element
	negOne.Neg(&one)
	cs.MustAddGate(Gate{QL: one, QR: negOne, A: tIdx, B: 0, C: tIdx})
	return cs, witness
}

func TestMiMCCustomGateProveVerify(t *testing.T) {
	cs, witness := buildMiMCCustomCircuit(5)
	if err := cs.IsSatisfied(witness); err != nil {
		t.Fatal(err)
	}
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	if !vk.Custom {
		t.Fatal("want custom-gate key")
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.TExtra) != 3 {
		t.Fatalf("custom-gate proof must carry 6 quotient pieces, got %d extra", len(proof.TExtra))
	}
	if err := Verify(vk, proof, witness[:1]); err != nil {
		t.Fatal(err)
	}

	// A corrupted chain value must be caught by both the reference
	// semantics and the prover.
	bad := append([]fr.Element(nil), witness...)
	bad[4].Add(&bad[4], &bad[0]) // an intermediate u² value
	if err := cs.IsSatisfied(bad); err == nil {
		t.Fatal("corrupted witness satisfied reference semantics")
	}
	if _, err := Prove(pk, bad); !errors.Is(err, ErrUnsatisfied) {
		t.Fatalf("Prove on corrupted witness: got %v, want ErrUnsatisfied", err)
	}
}

// testMDS is an arbitrary invertible matrix: gate semantics don't care
// which MDS is used as long as prover, verifier and reference agree.
func testMDS() [3][3]fr.Element {
	var m [3][3]fr.Element
	for l := 0; l < 3; l++ {
		for j := 0; j < 3; j++ {
			m[l][j] = fr.NewElement(uint64(l*3 + j + 2))
		}
	}
	m[0][0] = fr.NewElement(17)
	return m
}

func poseidonRoundRef(mds [3][3]fr.Element, w, k [3]fr.Element, full bool) [3]fr.Element {
	var sb [3]fr.Element
	for j := 0; j < 3; j++ {
		var t fr.Element
		t.Add(&w[j], &k[j])
		if full || j == 0 {
			var t2 fr.Element
			t2.Square(&t)
			t2.Square(&t2)
			t.Mul(&t2, &t)
		}
		sb[j] = t
	}
	var out [3]fr.Element
	for l := 0; l < 3; l++ {
		for j := 0; j < 3; j++ {
			var t fr.Element
			t.Mul(&mds[l][j], &sb[j])
			out[l].Add(&out[l], &t)
		}
	}
	return out
}

// buildPoseidonCustomCircuit alternates full and partial rounds, one row
// each, and pins the first output lane to the public input.
func buildPoseidonCustomCircuit(rounds int) (*ConstraintSystem, []fr.Element) {
	mds := testMDS()
	state := [3]fr.Element{fr.NewElement(3), fr.NewElement(4), fr.NewElement(5)}
	keys := make([][3]fr.Element, rounds)
	kinds := make([]GateKind, rounds)
	states := make([][3]fr.Element, rounds+1)
	states[0] = state
	for r := 0; r < rounds; r++ {
		for j := 0; j < 3; j++ {
			keys[r][j] = fr.NewElement(uint64(100*r + 10*j + 1))
		}
		kinds[r] = KindPoseidonFull
		if r%2 == 1 {
			kinds[r] = KindPoseidonPartial
		}
		states[r+1] = poseidonRoundRef(mds, states[r], keys[r], kinds[r] == KindPoseidonFull)
	}

	cs := NewConstraintSystem(1)
	cs.SetPoseidonMDS(mds)
	witness := []fr.Element{states[rounds][0]}
	newVar := func(v fr.Element) int {
		idx := cs.NewVariable()
		witness = append(witness, v)
		return idx
	}
	var rowVars [3]int
	for j := 0; j < 3; j++ {
		rowVars[j] = newVar(states[0][j])
	}
	for r := 0; r < rounds; r++ {
		cs.MustAddGate(Gate{Kind: kinds[r], K: keys[r], A: rowVars[0], B: rowVars[1], C: rowVars[2]})
		for j := 0; j < 3; j++ {
			rowVars[j] = newVar(states[r+1][j])
		}
	}
	// Closing no-op row: the last round's next-row read needs all three
	// lanes of the final state here. Then pin lane 0 to the public input.
	cs.MustAddGate(Gate{A: rowVars[0], B: rowVars[1], C: rowVars[2]})
	one := fr.One()
	var negOne fr.Element
	negOne.Neg(&one)
	cs.MustAddGate(Gate{QL: one, QR: negOne, A: rowVars[0], B: 0, C: rowVars[0]})
	return cs, witness
}

func TestPoseidonCustomGateProveVerify(t *testing.T) {
	cs, witness := buildPoseidonCustomCircuit(6)
	if err := cs.IsSatisfied(witness); err != nil {
		t.Fatal(err)
	}
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk, proof, witness[:1]); err != nil {
		t.Fatal(err)
	}
}

// buildMixedCircuit combines arithmetic, lookup and custom-gate rows in
// one circuit — the shape the ML apps compile to.
func buildMixedCircuit() (*ConstraintSystem, []fr.Element) {
	cs, witness := buildMiMCCustomCircuit(3)
	if err := cs.UseRangeTable(6); err != nil {
		panic(err)
	}
	for _, v := range []uint64{0, 63, 17, 17} {
		idx := cs.NewVariable()
		witness = append(witness, fr.NewElement(v))
		cs.MustAddGate(Gate{Kind: KindLookup, A: idx, B: idx, C: idx})
	}
	return cs, witness
}

func TestMixedLookupCustomProveVerify(t *testing.T) {
	cs, witness := buildMixedCircuit()
	if err := cs.IsSatisfied(witness); err != nil {
		t.Fatal(err)
	}
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk, proof, witness[:1]); err != nil {
		t.Fatal(err)
	}
}

// TestExtendedProofTamperRejected flips each extension component of a
// valid lookup proof and checks the verifier notices: forged
// multiplicities, helper columns, running sums and their evaluations must
// all be rejected (the BatchVerify side is covered in batch tests).
func TestExtendedProofTamperRejected(t *testing.T) {
	cs, witness := buildLookupCircuit(8, []uint64{9, 200, 9})
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	public := witness[:1]
	if err := Verify(vk, proof, public); err != nil {
		t.Fatal(err)
	}

	g := proof.A // any valid curve point ≠ the originals
	tamper := []struct {
		name string
		do   func(p *Proof)
	}{
		{"M commitment", func(p *Proof) { p.M = g }},
		{"H commitment", func(p *Proof) { p.H = g }},
		{"S commitment", func(p *Proof) { p.S = g }},
		{"M eval", func(p *Proof) { p.Evals.Ext.M.Add(&p.Evals.Ext.M, &p.Evals.A) }},
		{"H eval", func(p *Proof) { p.Evals.Ext.H.Add(&p.Evals.Ext.H, &p.Evals.A) }},
		{"S eval", func(p *Proof) { p.Evals.Ext.S.Add(&p.Evals.Ext.S, &p.Evals.A) }},
		{"SOmega eval", func(p *Proof) { p.Evals.Ext.SOmega.Add(&p.Evals.Ext.SOmega, &p.Evals.A) }},
		{"table eval", func(p *Proof) { p.Evals.Ext.Tbl.Add(&p.Evals.Ext.Tbl, &p.Evals.A) }},
		{"lookup selector eval", func(p *Proof) { p.Evals.Ext.QLk.Add(&p.Evals.Ext.QLk, &p.Evals.A) }},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			bad := *proof
			ext := *proof.Evals.Ext
			bad.Evals.Ext = &ext
			tc.do(&bad)
			if err := Verify(vk, &bad, public); err == nil {
				t.Fatalf("tampered proof (%s) accepted", tc.name)
			}
		})
	}
}

// TestProofShapeMismatch: classic proofs must not verify against extended
// keys and vice versa.
func TestProofShapeMismatch(t *testing.T) {
	csC, wC := buildMulAddCircuit()
	pkC, vkC, err := Setup(csC, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	classic, err := Prove(pkC, wC)
	if err != nil {
		t.Fatal(err)
	}
	csL, wL := buildLookupCircuit(8, []uint64{1, 2})
	pkL, vkL, err := Setup(csL, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Prove(pkL, wL)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vkL, classic, wL[:1]); !errors.Is(err, ErrProofShape) {
		t.Fatalf("classic proof vs extended key: got %v, want ErrProofShape", err)
	}
	if err := Verify(vkC, ext, wC[:2]); !errors.Is(err, ErrProofShape) {
		t.Fatalf("extended proof vs classic key: got %v, want ErrProofShape", err)
	}
}
