package plonk

import (
	"errors"
	"strings"
	"testing"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
)

// proveN makes N distinct proofs of the same circuit (Prove is randomised
// by blinding, so each proof is unique) along with their public inputs.
func proveN(t testing.TB, n int) (*VerifyingKey, []*Proof, [][]fr.Element) {
	t.Helper()
	cs, witness := buildMulAddCircuit()
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proofs := make([]*Proof, n)
	publics := make([][]fr.Element, n)
	for i := range proofs {
		proofs[i], err = Prove(pk, witness)
		if err != nil {
			t.Fatal(err)
		}
		publics[i] = witness[:2]
	}
	return vk, proofs, publics
}

// corruptOpening swaps the proof's ζ-opening commitment for an unrelated
// point. The transcript replay and quotient identity still pass — the
// corruption is only caught by the pairing — which is exactly the case
// batch folding must not let slip through.
func corruptOpening(p *Proof) {
	s := fr.NewElement(0xbad)
	g := bn254.G1Generator()
	p.WZeta = bn254.G1ScalarMul(&g, &s)
}

func TestBatchVerifyAllValid(t *testing.T) {
	vk, proofs, publics := proveN(t, 5)
	if err := BatchVerify(vk, proofs, publics); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
}

func TestBatchVerifyEmptyAndMismatch(t *testing.T) {
	vk, proofs, publics := proveN(t, 1)
	if err := BatchVerify(vk, nil, nil); err != nil {
		t.Fatalf("empty batch must pass vacuously: %v", err)
	}
	if err := BatchVerify(vk, proofs, publics[:0]); err == nil {
		t.Fatal("length mismatch must be rejected")
	}
	if err := NewBatch(vk).Check(); err != nil {
		t.Fatalf("empty Batch.Check must pass: %v", err)
	}
}

// TestBatchVerifyRejectsCorrupted is the acceptance property: one corrupted
// proof in a batch of N is rejected, bisection names exactly that proof,
// and the other N-1 still verify individually.
func TestBatchVerifyRejectsCorrupted(t *testing.T) {
	const n, bad = 6, 2
	vk, proofs, publics := proveN(t, n)
	corruptOpening(proofs[bad])

	err := BatchVerify(vk, proofs, publics)
	if !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("corrupted batch accepted or wrong error: %v", err)
	}
	if !strings.Contains(err.Error(), "[2]") {
		t.Fatalf("error does not name the offending index: %v", err)
	}

	// The same through the incremental API.
	b := NewBatch(vk)
	for i := range proofs {
		if err := b.Add(proofs[i], publics[i]); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	if b.Len() != n {
		t.Fatalf("Len = %d, want %d", b.Len(), n)
	}
	if err := b.Check(); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("Check on corrupted batch: %v", err)
	}
	offenders, err := b.Bisect()
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 1 || offenders[0] != bad {
		t.Fatalf("Bisect = %v, want [%d]", offenders, bad)
	}

	// Every other proof still passes on its own.
	for i := range proofs {
		if i == bad {
			continue
		}
		if err := Verify(vk, proofs[i], publics[i]); err != nil {
			t.Fatalf("survivor %d rejected: %v", i, err)
		}
	}
}

// TestBatchBisectAllCorrupt is the bisection worst case: every proof in
// the batch is corrupt, so every split fails all the way down and the
// offender list must name each index exactly once, in order.
func TestBatchBisectAllCorrupt(t *testing.T) {
	const n = 5
	vk, proofs, publics := proveN(t, n)
	for i := range proofs {
		corruptOpening(proofs[i])
	}

	if err := BatchVerify(vk, proofs, publics); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("all-corrupt batch accepted or wrong error: %v", err)
	}

	b := NewBatch(vk)
	for i := range proofs {
		if err := b.Add(proofs[i], publics[i]); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	offenders, err := b.Bisect()
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != n {
		t.Fatalf("Bisect found %d offenders, want all %d: %v", len(offenders), n, offenders)
	}
	for i, off := range offenders {
		if off != i {
			t.Fatalf("Bisect = %v, want [0..%d] in order", offenders, n-1)
		}
	}
}

func TestBatchBisectMultipleOffenders(t *testing.T) {
	const n = 8
	vk, proofs, publics := proveN(t, n)
	corruptOpening(proofs[1])
	corruptOpening(proofs[6])

	b := NewBatch(vk)
	for i := range proofs {
		if err := b.Add(proofs[i], publics[i]); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	offenders, err := b.Bisect()
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 2 || offenders[0] != 1 || offenders[1] != 6 {
		t.Fatalf("Bisect = %v, want [1 6]", offenders)
	}
}

// TestBatchAddRejectsEarly pins that a proof failing the cheap checks
// (here: wrong public inputs breaking the quotient identity) is rejected
// at Add time and never pollutes the batch.
func TestBatchAddRejectsEarly(t *testing.T) {
	vk, proofs, publics := proveN(t, 1)
	b := NewBatch(vk)
	wrong := []fr.Element{fr.NewElement(36), fr.NewElement(12)}
	if err := b.Add(proofs[0], wrong); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("Add with wrong publics: %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("rejected proof entered the batch, Len = %d", b.Len())
	}
	if err := b.Add(proofs[0], publics[0]); err != nil {
		t.Fatal(err)
	}
	if err := b.Check(); err != nil {
		t.Fatalf("valid single-proof batch rejected: %v", err)
	}
}

// BenchmarkBatchVerify measures amortised per-proof verification cost at
// several batch sizes; ns/proof should flatten as N grows (near-O(1)
// marginal pairing cost).
func BenchmarkBatchVerify(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		vk, proofs, publics := proveN(b, n)
		b.Run("n="+itoa(n), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := BatchVerify(vk, proofs, publics); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/proof")
		})
	}
}
