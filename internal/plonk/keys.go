package plonk

import (
	"fmt"
	"sync"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/poly"
)

// Coset multipliers for the permutation argument. k1 and k2 must place
// k1·H and k2·H in cosets disjoint from H and from each other; 5 (the
// field's multiplicative generator, whose order has large odd factors) and
// 5² satisfy this for every power-of-two H.
const (
	permK1 = 5
	permK2 = 25
)

// ProvingKey holds everything the prover needs: the preprocessed selector
// and permutation polynomials (coefficient form), the evaluation domain,
// and the SRS.
type ProvingKey struct {
	Domain *poly.Domain
	// Domain4 is the 4n coset evaluation domain used by the round-3
	// quotient build. It is preprocessed here so repeated proofs (the
	// marketplace/exchange flows in internal/core prove against one key
	// many times) don't pay domain construction — and, via the domain's
	// lazy caches, re-derive twiddle/coset tables — per proof.
	Domain4 *poly.Domain
	SRS     *kzg.SRS

	// Selector polynomials qL, qR, qO, qM, qC in coefficient form.
	QL, QR, QO, QM, QC poly.Polynomial
	// Permutation polynomials sσ1, sσ2, sσ3 in coefficient form.
	S1, S2, S3 poly.Polynomial

	// Lookup/custom-gate preprocessing (nil/zero for classic circuits).
	// Domain8 is the 8n coset domain custom-gate quotients need (degree-5
	// S-box constraints exceed the classic 4n coset); QLk is the lookup
	// selector, Tbl the range-table polynomial, QMimc/QPosF/QPosP the
	// custom-gate selectors and KC0..KC2 the per-row round-constant
	// columns.
	Domain8                       *poly.Domain
	QLk, Tbl, QMimc, QPosF, QPosP poly.Polynomial
	KC0, KC1, KC2                 poly.Polynomial
	extended, custom              bool
	tableBits                     int
	mds                           [3][3]fr.Element

	// sigma maps each of the 3n wire slots to its permuted slot's field
	// label; used when building the grand-product polynomial z.
	sigmaLabel [][3]fr.Element // per-row labels for the three wires

	// Gate wiring and counts, retained to evaluate witnesses.
	gates    []Gate
	nbPublic int
	nbVars   int

	VK *VerifyingKey
}

// VerifyingKey is the succinct public key: one commitment per preprocessed
// polynomial plus the domain description.
type VerifyingKey struct {
	N        uint64
	NbPublic int

	QL, QR, QO, QM, QC kzg.Commitment
	S1, S2, S3         kzg.Commitment

	// Extended is set when the circuit uses lookups or custom gates: the
	// proof then carries the M/H/S lookup polynomials and extra
	// evaluations. Custom is set when next-row custom gates are present
	// (the quotient is split into 6 pieces instead of 3).
	Extended  bool
	Custom    bool
	TableBits int
	// MDS is the Poseidon matrix the custom rounds multiply by; the
	// verifier evaluates the round constraint at ζ and needs it.
	MDS [3][3]fr.Element
	// Commitments to the extension's preprocessed polynomials (the point
	// at infinity when the corresponding feature is unused).
	QLk, Tbl, QMimc, QPosF, QPosP kzg.Commitment
	KC0, KC1, KC2                 kzg.Commitment

	// G2 points of the SRS needed for pairing checks.
	G2 [2]bn254.G2Affine

	// K1, K2 are the permutation coset multipliers.
	K1, K2 fr.Element

	// Verifier caches, built once on first verification: the evaluation
	// domain (so repeated Verify calls stop paying domain construction),
	// the ω-power prefix feeding the public-input Lagrange terms, and the
	// Miller-loop line tables for the two fixed G2 points.
	cacheOnce sync.Once
	domain    *poly.Domain
	domainErr error
	lagOmega  []fr.Element
	g2Lines   [2]*bn254.G2LinePrecomp
}

// verifierCache builds (once) and returns the cached evaluation domain,
// the ω-power prefix ω⁰ … ω^(max(1,NbPublic)-1), and the precomputed G2
// line tables for the pairing check.
func (vk *VerifyingKey) verifierCache() (*poly.Domain, []fr.Element, [2]*bn254.G2LinePrecomp, error) {
	vk.cacheOnce.Do(func() {
		vk.domain, vk.domainErr = poly.NewDomain(vk.N)
		if vk.domainErr != nil {
			return
		}
		n := vk.NbPublic
		if n < 1 {
			n = 1 // L_1 is always needed for the grand-product boundary term
		}
		vk.lagOmega = make([]fr.Element, n)
		for i := range vk.lagOmega {
			vk.lagOmega[i] = vk.domain.Element(uint64(i))
		}
		vk.g2Lines[0] = bn254.NewG2LinePrecomp(&vk.G2[0])
		vk.g2Lines[1] = bn254.NewG2LinePrecomp(&vk.G2[1])
	})
	return vk.domain, vk.lagOmega, vk.g2Lines, vk.domainErr
}

// Setup preprocesses a constraint system against an SRS, producing the
// proving and verifying keys. This is circuit-specific but one-time; the
// universal SRS is reused across circuits (Plonk's "universal setup").
func Setup(cs *ConstraintSystem, srs *kzg.SRS) (*ProvingKey, *VerifyingKey, error) {
	if cs.nbVariables == 0 {
		return nil, nil, ErrEmptyCircuit
	}
	n := uint64(8)
	for n < uint64(len(cs.gates)) {
		n <<= 1
	}
	extended := cs.hasLookup || cs.hasCustom
	if cs.hasLookup {
		// The range table lives on the domain itself: one row per value.
		for n < uint64(1)<<cs.tableBits {
			n <<= 1
		}
	}
	if cs.hasCustom && uint64(len(cs.gates)) == n {
		// A custom gate on the last domain row would read row 0 through
		// the ω-shift; grow the domain so the next-row read always lands
		// on a padding row instead.
		n <<= 1
	}
	domain, err := poly.NewDomain(n)
	if err != nil {
		return nil, nil, fmt.Errorf("plonk: %w", err)
	}
	domain4, err := poly.NewDomain(4 * n)
	if err != nil {
		return nil, nil, fmt.Errorf("plonk: %w", err)
	}
	var domain8 *poly.Domain
	if cs.hasCustom {
		// Degree-5 S-box constraints push the quotient numerator past the
		// 4n coset; custom-gate circuits evaluate on an 8n coset.
		if domain8, err = poly.NewDomain(8 * n); err != nil {
			return nil, nil, fmt.Errorf("plonk: %w", err)
		}
	}
	if srs.MaxDegree() < int(n)+8 {
		return nil, nil, fmt.Errorf("%w: srs supports degree %d, circuit needs %d",
			ErrSRSTooSmall, srs.MaxDegree(), n+8)
	}

	// Selector evaluation vectors over the domain (zero-padded rows are
	// no-op gates).
	qL := make([]fr.Element, n)
	qR := make([]fr.Element, n)
	qO := make([]fr.Element, n)
	qM := make([]fr.Element, n)
	qC := make([]fr.Element, n)
	for i, g := range cs.gates {
		qL[i], qR[i], qO[i], qM[i], qC[i] = g.QL, g.QR, g.QO, g.QM, g.QC
	}

	// Extension selectors: lookup selector, range table t_i = min(i, max),
	// custom-gate selectors and the round-constant columns.
	var qLk, tbl, qMimc, qPosF, qPosP, kc0, kc1, kc2 []fr.Element
	if extended {
		qLk = make([]fr.Element, n)
		tbl = make([]fr.Element, n)
		qMimc = make([]fr.Element, n)
		qPosF = make([]fr.Element, n)
		qPosP = make([]fr.Element, n)
		kc0 = make([]fr.Element, n)
		kc1 = make([]fr.Element, n)
		kc2 = make([]fr.Element, n)
		if cs.hasLookup {
			copy(tbl, rangeTableValues(cs.tableBits, n))
		}
		one := fr.One()
		for i, g := range cs.gates {
			switch g.Kind {
			case KindLookup:
				qLk[i] = one
			case KindMiMC:
				qMimc[i] = one
			case KindPoseidonFull:
				qPosF[i] = one
			case KindPoseidonPartial:
				qPosP[i] = one
			}
			if g.Kind.isCustom() {
				kc0[i], kc1[i], kc2[i] = g.K[0], g.K[1], g.K[2]
			}
		}
	}

	// Copy-constraint permutation over 3n slots. Slots sharing a variable
	// form one cycle; σ advances each slot to the next in its cycle.
	slotsPerVar := make([][]int, cs.nbVariables)
	varAt := func(slot int) int {
		wire, row := slot/int(n), slot%int(n)
		var g Gate
		if row < len(cs.gates) {
			g = cs.gates[row]
		} // padding rows wire all slots to variable 0
		switch wire {
		case 0:
			return g.A
		case 1:
			return g.B
		default:
			return g.C
		}
	}
	totalSlots := 3 * int(n)
	for s := 0; s < totalSlots; s++ {
		v := varAt(s)
		slotsPerVar[v] = append(slotsPerVar[v], s)
	}
	sigma := make([]int, totalSlots)
	for _, slots := range slotsPerVar {
		for i, s := range slots {
			sigma[s] = slots[(i+1)%len(slots)]
		}
	}

	// Field labels: slot s in wire column w, row r ↦ k_w · ω^r with
	// k_0 = 1, k_1 = permK1, k_2 = permK2.
	omega := domain.Elements()
	k1 := fr.NewElement(permK1)
	k2 := fr.NewElement(permK2)
	label := func(slot int) fr.Element {
		wire, row := slot/int(n), slot%int(n)
		l := omega[row]
		switch wire {
		case 1:
			l.Mul(&l, &k1)
		case 2:
			l.Mul(&l, &k2)
		}
		return l
	}
	s1 := make([]fr.Element, n)
	s2 := make([]fr.Element, n)
	s3 := make([]fr.Element, n)
	sigmaLabel := make([][3]fr.Element, n)
	for r := 0; r < int(n); r++ {
		s1[r] = label(sigma[r])
		s2[r] = label(sigma[int(n)+r])
		s3[r] = label(sigma[2*int(n)+r])
		sigmaLabel[r] = [3]fr.Element{s1[r], s2[r], s3[r]}
	}

	// Interpolate everything to coefficient form. Every input has length n
	// by construction; the first IFFT error (impossible unless that
	// invariant breaks) is surfaced after the key is assembled.
	var ifftErr error
	toPoly := func(evals []fr.Element) poly.Polynomial {
		c := make([]fr.Element, n)
		copy(c, evals)
		if err := domain.IFFT(c); err != nil && ifftErr == nil {
			ifftErr = err
		}
		return c
	}
	pk := &ProvingKey{
		Domain:     domain,
		Domain4:    domain4,
		SRS:        srs,
		QL:         toPoly(qL),
		QR:         toPoly(qR),
		QO:         toPoly(qO),
		QM:         toPoly(qM),
		QC:         toPoly(qC),
		S1:         toPoly(s1),
		S2:         toPoly(s2),
		S3:         toPoly(s3),
		sigmaLabel: sigmaLabel,
		gates:      append([]Gate(nil), cs.gates...),
		nbPublic:   cs.nbPublic,
		nbVars:     cs.nbVariables,
	}
	if extended {
		pk.Domain8 = domain8
		pk.extended = true
		pk.custom = cs.hasCustom
		pk.tableBits = cs.tableBits
		pk.mds = cs.mds
		pk.QLk = toPoly(qLk)
		pk.Tbl = toPoly(tbl)
		pk.QMimc = toPoly(qMimc)
		pk.QPosF = toPoly(qPosF)
		pk.QPosP = toPoly(qPosP)
		pk.KC0 = toPoly(kc0)
		pk.KC1 = toPoly(kc1)
		pk.KC2 = toPoly(kc2)
	}
	if ifftErr != nil {
		return nil, nil, ifftErr
	}

	vk := &VerifyingKey{
		N:         n,
		NbPublic:  cs.nbPublic,
		G2:        srs.G2,
		K1:        k1,
		K2:        k2,
		Extended:  extended,
		Custom:    cs.hasCustom,
		TableBits: cs.tableBits,
		MDS:       cs.mds,
	}
	// The preprocessed commitments are independent MSMs.
	polys := []poly.Polynomial{pk.QL, pk.QR, pk.QO, pk.QM, pk.QC, pk.S1, pk.S2, pk.S3}
	cms := []*kzg.Commitment{&vk.QL, &vk.QR, &vk.QO, &vk.QM, &vk.QC, &vk.S1, &vk.S2, &vk.S3}
	if extended {
		polys = append(polys, pk.QLk, pk.Tbl, pk.QMimc, pk.QPosF, pk.QPosP, pk.KC0, pk.KC1, pk.KC2)
		cms = append(cms, &vk.QLk, &vk.Tbl, &vk.QMimc, &vk.QPosF, &vk.QPosP, &vk.KC0, &vk.KC1, &vk.KC2)
	}
	if err := commitParallel(srs, polys, cms); err != nil {
		return nil, nil, err
	}
	pk.VK = vk
	return pk, vk, nil
}

// rangeTableValues returns the domain-evaluation vector of the range
// table: t_i = i for i < 2^bits, then the last value repeated so padding
// rows stay inside the table (their multiplicity simply stays 0).
func rangeTableValues(bits int, n uint64) []fr.Element {
	t := make([]fr.Element, n)
	size := uint64(1) << bits
	for i := uint64(0); i < n; i++ {
		v := i
		if v >= size {
			v = size - 1
		}
		t[i] = fr.NewElement(v)
	}
	return t
}
