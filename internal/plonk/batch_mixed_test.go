package plonk

import (
	"errors"
	"strings"
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
)

// mixedBatchFixtures sets up one classic, one lookup-enabled and one
// custom-gate circuit over the shared test SRS, returning per-kind
// (vk, proof, public) triples.
type batchFixture struct {
	vk     *VerifyingKey
	proof  *Proof
	public []fr.Element
}

func mixedBatchFixtures(t testing.TB) []batchFixture {
	t.Helper()
	var out []batchFixture

	csC, wC := buildMulAddCircuit()
	pkC, vkC, err := Setup(csC, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	pC, err := Prove(pkC, wC)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, batchFixture{vkC, pC, wC[:2]})

	csL, wL := buildLookupCircuit(8, []uint64{0, 42, 255, 17})
	pkL, vkL, err := Setup(csL, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	pL, err := Prove(pkL, wL)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, batchFixture{vkL, pL, wL[:1]})

	csM, wM := buildMiMCCustomCircuit(5)
	pkM, vkM, err := Setup(csM, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	pM, err := Prove(pkM, wM)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, batchFixture{vkM, pM, wM[:1]})
	return out
}

// TestBatchMixedKinds folds classic, lookup and custom-gate proofs —
// three different verifying keys over one SRS — into a single pairing
// check via AddFor.
func TestBatchMixedKinds(t *testing.T) {
	fx := mixedBatchFixtures(t)
	b := NewBatch(fx[0].vk)
	if err := b.Add(fx[0].proof, fx[0].public); err != nil {
		t.Fatal(err)
	}
	for _, f := range fx[1:] {
		if err := b.AddFor(f.vk, f.proof, f.public); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 3 {
		t.Fatalf("batch has %d statements, want 3", b.Len())
	}
	if err := b.Check(); err != nil {
		t.Fatalf("mixed batch rejected: %v", err)
	}
}

// TestBatchMixedBisectsCorruptedLookup corrupts the lookup proof's opening
// commitment inside a mixed batch: AddFor still accepts it (the corruption
// is pairing-only), Check fails, and Bisect isolates exactly the lookup
// statement.
func TestBatchMixedBisectsCorruptedLookup(t *testing.T) {
	fx := mixedBatchFixtures(t)
	corruptOpening(fx[1].proof) // the lookup proof

	b := NewBatch(fx[0].vk)
	if err := b.Add(fx[0].proof, fx[0].public); err != nil {
		t.Fatal(err)
	}
	for _, f := range fx[1:] {
		if err := b.AddFor(f.vk, f.proof, f.public); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Check(); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("corrupted mixed batch accepted or wrong error: %v", err)
	}
	bad, err := b.Bisect()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != 1 {
		t.Fatalf("Bisect = %v, want [1]", bad)
	}
}

// TestBatchMixedRejectsTamperedLookupEvals checks AddFor runs the full
// per-proof verification: a lookup proof with a forged multiplicity
// evaluation must be rejected before entering the batch.
func TestBatchMixedRejectsTamperedLookupEvals(t *testing.T) {
	fx := mixedBatchFixtures(t)
	lk := fx[1]
	one := fr.One()
	lk.proof.Evals.Ext.M.Add(&lk.proof.Evals.Ext.M, &one)

	b := NewBatch(fx[0].vk)
	if err := b.AddFor(lk.vk, lk.proof, lk.public); err == nil {
		t.Fatal("tampered lookup proof entered the batch")
	}
	if b.Len() != 0 {
		t.Fatalf("rejected proof left %d statements in the batch", b.Len())
	}
}

// TestBatchAddForRejectsForeignSRS pins the safety check: a key from a
// different SRS must not contribute statements, since the batch pairing
// uses the batch key's G2 lines.
func TestBatchAddForRejectsForeignSRS(t *testing.T) {
	fx := mixedBatchFixtures(t)

	tau := fr.NewElement(0xd1ff)
	srs2, err := kzg.NewSRSFromSecret(1<<10, &tau)
	if err != nil {
		t.Fatal(err)
	}
	csC, wC := buildMulAddCircuit()
	pk2, vk2, err := Setup(csC, srs2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Prove(pk2, wC)
	if err != nil {
		t.Fatal(err)
	}

	b := NewBatch(fx[0].vk)
	err = b.AddFor(vk2, p2, wC[:2])
	if err == nil || !strings.Contains(err.Error(), "different SRS") {
		t.Fatalf("foreign-SRS key accepted: %v", err)
	}
}
