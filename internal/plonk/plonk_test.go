package plonk

import (
	"errors"
	"sync"
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
)

// Shared SRS for all tests: big enough for every test circuit.
var testSRSOnce = sync.OnceValue(func() *kzg.SRS {
	tau := fr.NewElement(0x5eed)
	srs, err := kzg.NewSRSFromSecret(1<<11, &tau)
	if err != nil {
		panic(err)
	}
	return srs
})

func neg(v uint64) fr.Element {
	e := fr.NewElement(v)
	var out fr.Element
	out.Neg(&e)
	return out
}

// buildMulAddCircuit proves knowledge of x, y with x·y = pub0, x+y = pub1.
func buildMulAddCircuit() (*ConstraintSystem, []fr.Element) {
	cs := NewConstraintSystem(2)
	x := cs.NewVariable()
	y := cs.NewVariable()
	minusOne := neg(1)
	// x·y - pub0 = 0
	cs.MustAddGate(Gate{QM: fr.One(), QO: minusOne, A: x, B: y, C: 0})
	// x + y - pub1 = 0
	cs.MustAddGate(Gate{QL: fr.One(), QR: fr.One(), QO: minusOne, A: x, B: y, C: 1})
	witness := []fr.Element{fr.NewElement(35), fr.NewElement(12), fr.NewElement(5), fr.NewElement(7)}
	return cs, witness
}

// buildPowerCircuit proves pub0 = x^(2^k) for secret x, chaining squarings.
func buildPowerCircuit(k int) (*ConstraintSystem, []fr.Element) {
	cs := NewConstraintSystem(1)
	x := cs.NewVariable()
	val := fr.NewElement(3)
	witness := []fr.Element{fr.Zero(), val}
	cur := x
	curVal := val
	minusOne := neg(1)
	for i := 0; i < k; i++ {
		sq := cs.NewVariable()
		var sqVal fr.Element
		sqVal.Square(&curVal)
		witness = append(witness, sqVal)
		cs.MustAddGate(Gate{QM: fr.One(), QO: minusOne, A: cur, B: cur, C: sq})
		cur, curVal = sq, sqVal
	}
	// Final value equals the public input.
	cs.MustAddGate(Gate{QL: fr.One(), QO: minusOne, A: cur, B: cur, C: 0})
	witness[0] = curVal
	return cs, witness
}

func TestIsSatisfied(t *testing.T) {
	cs, witness := buildMulAddCircuit()
	if err := cs.IsSatisfied(witness); err != nil {
		t.Fatalf("honest witness rejected: %v", err)
	}
	bad := append([]fr.Element{}, witness...)
	bad[2] = fr.NewElement(4) // x=4, y=7: 28 != 35
	if err := cs.IsSatisfied(bad); err == nil {
		t.Fatal("bad witness accepted")
	}
	if err := cs.IsSatisfied(witness[:2]); !errors.Is(err, ErrWitnessLength) {
		t.Fatalf("want ErrWitnessLength, got %v", err)
	}
}

func TestAddGateValidation(t *testing.T) {
	cs := NewConstraintSystem(0)
	if err := cs.AddGate(Gate{A: 5}); err == nil {
		t.Fatal("gate with unknown variable accepted")
	}
	v := cs.NewVariable()
	if err := cs.AddGate(Gate{A: v, B: v, C: v}); err != nil {
		t.Fatalf("valid gate rejected: %v", err)
	}
}

func TestProveVerifyRoundTrip(t *testing.T) {
	cs, witness := buildMulAddCircuit()
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk, proof, witness[:2]); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
}

func TestVerifyRejectsWrongPublicInputs(t *testing.T) {
	cs, witness := buildMulAddCircuit()
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	wrong := []fr.Element{fr.NewElement(36), fr.NewElement(12)}
	if err := Verify(vk, proof, wrong); err == nil {
		t.Fatal("proof accepted with wrong public inputs")
	}
	if err := Verify(vk, proof, witness[:1]); !errors.Is(err, ErrWrongPublic) {
		t.Fatalf("want ErrWrongPublic, got %v", err)
	}
}

func TestProveRejectsUnsatisfiedWitness(t *testing.T) {
	cs, witness := buildMulAddCircuit()
	pk, _, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]fr.Element{}, witness...)
	bad[3] = fr.NewElement(8) // x+y = 13 != 12
	if _, err := Prove(pk, bad); !errors.Is(err, ErrUnsatisfied) {
		t.Fatalf("want ErrUnsatisfied, got %v", err)
	}
}

// TestVerifyRejectsEveryCorruption mutates each component of the proof in
// turn; the verifier must reject all of them.
func TestVerifyRejectsEveryCorruption(t *testing.T) {
	cs, witness := buildMulAddCircuit()
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	public := witness[:2]

	corruptions := map[string]func(p *Proof){
		"A":      func(p *Proof) { p.A = p.B },
		"B":      func(p *Proof) { p.B = p.C },
		"C":      func(p *Proof) { p.C = p.Z },
		"Z":      func(p *Proof) { p.Z = p.A },
		"TLo":    func(p *Proof) { p.TLo = p.THi },
		"TMid":   func(p *Proof) { p.TMid = p.TLo },
		"THi":    func(p *Proof) { p.THi = p.TMid },
		"WZeta":  func(p *Proof) { p.WZeta = p.WZetaOmega },
		"WOmega": func(p *Proof) { p.WZetaOmega = p.WZeta },
		"evalA":  func(p *Proof) { p.Evals.A.Add(&p.Evals.A, &[]fr.Element{fr.One()}[0]) },
		"evalZ":  func(p *Proof) { p.Evals.Z.Add(&p.Evals.Z, &[]fr.Element{fr.One()}[0]) },
		"evalS1": func(p *Proof) { p.Evals.S1.Add(&p.Evals.S1, &[]fr.Element{fr.One()}[0]) },
		"evalQM": func(p *Proof) { p.Evals.QM.Add(&p.Evals.QM, &[]fr.Element{fr.One()}[0]) },
		"evalT":  func(p *Proof) { p.Evals.TLo.Add(&p.Evals.TLo, &[]fr.Element{fr.One()}[0]) },
		"zomega": func(p *Proof) { p.Evals.ZOmega.Add(&p.Evals.ZOmega, &[]fr.Element{fr.One()}[0]) },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			bad := *proof
			corrupt(&bad)
			if err := Verify(vk, &bad, public); err == nil {
				t.Fatalf("corrupted %s accepted", name)
			}
		})
	}
}

func TestLargerCircuit(t *testing.T) {
	cs, witness := buildPowerCircuit(200)
	if err := cs.IsSatisfied(witness); err != nil {
		t.Fatalf("power circuit witness: %v", err)
	}
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk, proof, witness[:1]); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
}

// TestCopyConstraints checks that the permutation argument actually binds
// shared variables: a witness satisfying each gate locally but breaking the
// wiring must not produce a valid proof.
func TestCopyConstraints(t *testing.T) {
	// Gates: v2 = v1², v3 = v2² with v2 shared. A prover using different
	// values for v2's two occurrences would need to break the permutation.
	cs := NewConstraintSystem(1)
	v1 := cs.NewVariable()
	v2 := cs.NewVariable()
	v3 := cs.NewVariable()
	minusOne := neg(1)
	cs.MustAddGate(Gate{QM: fr.One(), QO: minusOne, A: v1, B: v1, C: v2})
	cs.MustAddGate(Gate{QM: fr.One(), QO: minusOne, A: v2, B: v2, C: v3})
	cs.MustAddGate(Gate{QL: fr.One(), QO: minusOne, A: v3, B: v3, C: 0})

	// Honest: v1=2, v2=4, v3=16, public=16.
	honest := []fr.Element{fr.NewElement(16), fr.NewElement(2), fr.NewElement(4), fr.NewElement(16)}
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(pk, honest)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk, proof, honest[:1]); err != nil {
		t.Fatal(err)
	}
	// Any witness claiming public=17 must fail at proving time (there is
	// no consistent assignment).
	bad := []fr.Element{fr.NewElement(17), fr.NewElement(2), fr.NewElement(4), fr.NewElement(16)}
	if _, err := Prove(pk, bad); !errors.Is(err, ErrUnsatisfied) {
		t.Fatalf("want ErrUnsatisfied, got %v", err)
	}
}

func TestProofSizeConstant(t *testing.T) {
	// Paper §VI-B3: proof length is independent of the relation.
	sizes := map[string]int{}
	for _, k := range []int{4, 64, 400} {
		cs, witness := buildPowerCircuit(k)
		pk, vk, err := Setup(cs, testSRSOnce())
		if err != nil {
			t.Fatal(err)
		}
		proof, err := Prove(pk, witness)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(vk, proof, witness[:1]); err != nil {
			t.Fatal(err)
		}
		sizes[itoa(k)] = len(proof.Bytes())
	}
	want := ProofSize
	for k, s := range sizes {
		if s != want {
			t.Fatalf("k=%s: proof size %d != %d", k, s, want)
		}
	}
}

func TestProofSerializationRoundTrip(t *testing.T) {
	cs, witness := buildMulAddCircuit()
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	data := proof.Bytes()
	back, err := ProofFromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk, back, witness[:2]); err != nil {
		t.Fatalf("deserialized proof rejected: %v", err)
	}
	// Corruptions must be caught at decode or verify time.
	data[3] ^= 0x5a
	if back, err := ProofFromBytes(data); err == nil {
		if err := Verify(vk, back, witness[:2]); err == nil {
			t.Fatal("corrupted serialized proof accepted")
		}
	}
	if _, err := ProofFromBytes(data[:100]); err == nil {
		t.Fatal("short proof accepted")
	}
}

// TestZeroKnowledgeBlinding: two proofs of the same statement must differ
// (blinding randomness), yet both verify.
func TestZeroKnowledgeBlinding(t *testing.T) {
	cs, witness := buildMulAddCircuit()
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	if p1.A.Equal(&p2.A) {
		t.Fatal("wire commitments identical across proofs: no blinding")
	}
	if err := Verify(vk, p1, witness[:2]); err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk, p2, witness[:2]); err != nil {
		t.Fatal(err)
	}
}

func TestSetupErrors(t *testing.T) {
	empty := &ConstraintSystem{}
	if _, _, err := Setup(empty, testSRSOnce()); !errors.Is(err, ErrEmptyCircuit) {
		t.Fatalf("want ErrEmptyCircuit, got %v", err)
	}
	// SRS too small.
	tau := fr.NewElement(3)
	small, err := kzg.NewSRSFromSecret(4, &tau)
	if err != nil {
		t.Fatal(err)
	}
	cs, _ := buildMulAddCircuit()
	if _, _, err := Setup(cs, small); !errors.Is(err, ErrSRSTooSmall) {
		t.Fatalf("want ErrSRSTooSmall, got %v", err)
	}
}

func TestProveWitnessLength(t *testing.T) {
	cs, witness := buildMulAddCircuit()
	pk, _, err := Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Prove(pk, witness[:3]); !errors.Is(err, ErrWitnessLength) {
		t.Fatalf("want ErrWitnessLength, got %v", err)
	}
}

func BenchmarkVerify(b *testing.B) {
	cs, witness := buildPowerCircuit(1000)
	pk, vk, err := Setup(cs, testSRSOnce())
	if err != nil {
		b.Fatal(err)
	}
	proof, err := Prove(pk, witness)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(vk, proof, witness[:1]); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
