package plonk

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/transcript"
)

// pairingTerms is the deferred pairing statement of one verified proof:
// the proof is valid iff e(L, G2[0]) · e(-W, [τ]G2) == 1. prepare derives
// the terms; Verify checks one statement, Batch folds many into a single
// multi-pairing.
type pairingTerms struct {
	L bn254.G1Affine
	W bn254.G1Affine
}

// lagrangePrefix evaluates L_0(ζ) … L_{len(omega)-1}(ζ) with one batched
// inversion: L_i(ζ) = ω^i · Z_H(ζ) / (N · (ζ - ω^i)).
func lagrangePrefix(omega []fr.Element, n uint64, zeta, zh *fr.Element) []fr.Element {
	dens := make([]fr.Element, len(omega))
	nEl := fr.NewElement(n)
	for i := range omega {
		dens[i].Sub(zeta, &omega[i])
		dens[i].Mul(&dens[i], &nEl)
	}
	fr.BatchInvert(dens)
	out := make([]fr.Element, len(omega))
	for i := range omega {
		out[i].Mul(zh, &omega[i])
		out[i].Mul(&out[i], &dens[i])
	}
	return out
}

// prepare replays the transcript, checks the quotient identity at ζ, and
// reduces the two KZG opening checks to a single pairing statement. It is
// everything Verify does except the pairing itself, so batch verification
// can run it per proof and fold the statements.
func prepare(vk *VerifyingKey, proof *Proof, public []fr.Element) (pairingTerms, error) {
	if len(public) != vk.NbPublic {
		return pairingTerms{}, fmt.Errorf("%w: got %d, want %d", ErrWrongPublic, len(public), vk.NbPublic)
	}
	if vk.Extended != (proof.Evals.Ext != nil) {
		return pairingTerms{}, fmt.Errorf("%w: extended=%v proof, extended=%v key",
			ErrProofShape, proof.Evals.Ext != nil, vk.Extended)
	}
	if vk.Extended {
		return prepareExtended(vk, proof, public)
	}

	// Reconstruct the challenges.
	tr := transcript.New("zkdet/plonk")
	bindTranscript(tr, vk, public)
	tr.AppendPoint("a", &proof.A)
	tr.AppendPoint("b", &proof.B)
	tr.AppendPoint("c", &proof.C)
	beta := tr.ChallengeScalar("beta")
	gamma := tr.ChallengeScalar("gamma")
	tr.AppendPoint("z", &proof.Z)
	alpha := tr.ChallengeScalar("alpha")
	tr.AppendPoint("t_lo", &proof.TLo)
	tr.AppendPoint("t_mid", &proof.TMid)
	tr.AppendPoint("t_hi", &proof.THi)
	zeta := tr.ChallengeScalar("zeta")
	ev := &proof.Evals
	tr.AppendScalars("evals", ev.evalList())
	tr.AppendScalar("z_omega", &ev.ZOmega)
	v := tr.ChallengeScalar("v")
	tr.AppendPoint("w_zeta", &proof.WZeta)
	tr.AppendPoint("w_zeta_omega", &proof.WZetaOmega)
	u := tr.ChallengeScalar("u")

	domain, lagOmega, _, err := vk.verifierCache()
	if err != nil {
		return pairingTerms{}, fmt.Errorf("plonk: %w", err)
	}

	// Z_H(ζ), then L_0(ζ) … L_{ℓ-1}(ζ) in one batched inversion.
	one := fr.One()
	var zetaN fr.Element
	zetaN.ExpUint64(&zeta, vk.N)
	var zh fr.Element
	zh.Sub(&zetaN, &one)
	if zh.IsZero() {
		// ζ landed inside the domain (probability ~ N/r): reject rather
		// than divide by zero.
		return pairingTerms{}, ErrProofInvalid
	}
	lag := lagrangePrefix(lagOmega, vk.N, &zeta, &zh)
	var pi fr.Element
	for i := range public {
		var t fr.Element
		t.Mul(&lag[i], &public[i])
		pi.Sub(&pi, &t)
	}
	l1 := lag[0]

	// Gate constraint value at ζ.
	var gate, t fr.Element
	t.Mul(&ev.QM, &ev.A)
	t.Mul(&t, &ev.B)
	gate.Add(&gate, &t)
	t.Mul(&ev.QL, &ev.A)
	gate.Add(&gate, &t)
	t.Mul(&ev.QR, &ev.B)
	gate.Add(&gate, &t)
	t.Mul(&ev.QO, &ev.C)
	gate.Add(&gate, &t)
	gate.Add(&gate, &ev.QC)
	gate.Add(&gate, &pi)

	// Permutation constraint value at ζ.
	var p1, p2, f fr.Element
	t.Mul(&beta, &zeta)
	f.Add(&ev.A, &t)
	f.Add(&f, &gamma)
	p1 = f
	t.Mul(&beta, &zeta)
	t.Mul(&t, &vk.K1)
	f.Add(&ev.B, &t)
	f.Add(&f, &gamma)
	p1.Mul(&p1, &f)
	t.Mul(&beta, &zeta)
	t.Mul(&t, &vk.K2)
	f.Add(&ev.C, &t)
	f.Add(&f, &gamma)
	p1.Mul(&p1, &f)
	p1.Mul(&p1, &ev.Z)

	t.Mul(&beta, &ev.S1)
	f.Add(&ev.A, &t)
	f.Add(&f, &gamma)
	p2 = f
	t.Mul(&beta, &ev.S2)
	f.Add(&ev.B, &t)
	f.Add(&f, &gamma)
	p2.Mul(&p2, &f)
	t.Mul(&beta, &ev.S3)
	f.Add(&ev.C, &t)
	f.Add(&f, &gamma)
	p2.Mul(&p2, &f)
	p2.Mul(&p2, &ev.ZOmega)

	var perm fr.Element
	perm.Sub(&p1, &p2)
	perm.Mul(&perm, &alpha)

	var l1v fr.Element
	l1v.Sub(&ev.Z, &one)
	l1v.Mul(&l1v, &l1)
	l1v.Mul(&l1v, &alpha)
	l1v.Mul(&l1v, &alpha)

	var rhs fr.Element
	rhs.Add(&gate, &perm)
	rhs.Add(&rhs, &l1v)

	// t(ζ) = t_lo(ζ) + ζ^n·t_mid(ζ) + ζ^{2n}·t_hi(ζ).
	var tEval, zeta2N fr.Element
	zeta2N.Square(&zetaN)
	tEval.Mul(&zetaN, &ev.TMid)
	tEval.Add(&tEval, &ev.TLo)
	t.Mul(&zeta2N, &ev.THi)
	tEval.Add(&tEval, &t)

	var lhs fr.Element
	lhs.Mul(&tEval, &zh)
	if !lhs.Equal(&rhs) {
		return pairingTerms{}, fmt.Errorf("%w: quotient identity", ErrProofInvalid)
	}

	// Batched KZG check. Fold the ζ-opened commitments and values with v.
	cms := []kzg.Commitment{
		proof.A, proof.B, proof.C, proof.Z,
		vk.QL, vk.QR, vk.QO, vk.QM, vk.QC,
		vk.S1, vk.S2, vk.S3,
		proof.TLo, proof.TMid, proof.THi,
	}
	evals := ev.evalList()
	foldVal := fr.Zero()
	vPowers := fr.Powers(&v, len(cms))
	for i := range evals {
		var tv fr.Element
		tv.Mul(&evals[i], &vPowers[i])
		foldVal.Add(&foldVal, &tv)
	}

	// Combine the two opening checks with u:
	// e(Fζ + ζ·Wζ + u·(Fζω + ζω·Wζω) - E, G2) · e(-(Wζ + u·Wζω), τG2) == 1
	// where E = (valζ + u·z̄ω)·G1 and Fζω = [z]. The whole left-hand G1
	// point — the v-fold of the 15 commitments plus the four correction
	// terms — is one MSM instead of twenty serial scalar multiplications.
	g1 := bn254.G1Generator()
	var zetaOmega fr.Element
	zetaOmega.Mul(&zeta, &domain.Gen)
	var uZOmega fr.Element
	uZOmega.Mul(&u, &zetaOmega)
	var eScalar fr.Element
	eScalar.Mul(&u, &ev.ZOmega)
	eScalar.Add(&eScalar, &foldVal)
	eScalar.Neg(&eScalar)

	pts := make([]bn254.G1Affine, 0, len(cms)+4)
	scs := make([]fr.Element, 0, len(cms)+4)
	pts = append(pts, cms...)
	scs = append(scs, vPowers...)
	pts = append(pts, proof.WZeta, proof.Z, proof.WZetaOmega, g1)
	scs = append(scs, zeta, u, uZOmega, eScalar)

	var terms pairingTerms
	L, err := bn254.G1MSM(pts, scs)
	if err != nil {
		return pairingTerms{}, fmt.Errorf("plonk: %w", err)
	}
	terms.L = L

	var wJ bn254.G1Jac
	var tj bn254.G1Jac
	wJ.FromAffine(&proof.WZeta)
	tj.ScalarMul(&proof.WZetaOmega, &u)
	wJ.AddAssign(&tj)
	terms.W.FromJacobian(&wJ)
	return terms, nil
}

// Verify checks a proof against the verifying key and public inputs. Its
// cost is one two-pair pairing check (against precomputed G2 line tables
// cached on the verifying key) plus a handful of scalar multiplications —
// independent of the circuit size except for the O(ℓ) public-input
// Lagrange terms, which share a single batched inversion.
func Verify(vk *VerifyingKey, proof *Proof, public []fr.Element) error {
	terms, err := prepare(vk, proof, public)
	if err != nil {
		return err
	}
	_, _, lines, err := vk.verifierCache()
	if err != nil {
		return fmt.Errorf("plonk: %w", err)
	}
	var negW bn254.G1Affine
	negW.Neg(&terms.W)
	ok, err := bn254.PairingCheckPrecomp(
		[]bn254.G1Affine{terms.L, negW},
		lines[:],
	)
	if err != nil {
		return fmt.Errorf("plonk: %w", err)
	}
	if !ok {
		return fmt.Errorf("%w: pairing check", ErrProofInvalid)
	}
	return nil
}
