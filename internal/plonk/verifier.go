package plonk

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/poly"
	"github.com/zkdet/zkdet/internal/transcript"
)

// Verify checks a proof against the verifying key and public inputs. Its
// cost is 2 pairings plus a handful of scalar multiplications — independent
// of the circuit size except for the O(ℓ) public-input Lagrange terms.
func Verify(vk *VerifyingKey, proof *Proof, public []fr.Element) error {
	if len(public) != vk.NbPublic {
		return fmt.Errorf("%w: got %d, want %d", ErrWrongPublic, len(public), vk.NbPublic)
	}

	// Reconstruct the challenges.
	tr := transcript.New("zkdet/plonk")
	bindTranscript(tr, vk, public)
	tr.AppendPoint("a", &proof.A)
	tr.AppendPoint("b", &proof.B)
	tr.AppendPoint("c", &proof.C)
	beta := tr.ChallengeScalar("beta")
	gamma := tr.ChallengeScalar("gamma")
	tr.AppendPoint("z", &proof.Z)
	alpha := tr.ChallengeScalar("alpha")
	tr.AppendPoint("t_lo", &proof.TLo)
	tr.AppendPoint("t_mid", &proof.TMid)
	tr.AppendPoint("t_hi", &proof.THi)
	zeta := tr.ChallengeScalar("zeta")
	ev := &proof.Evals
	tr.AppendScalars("evals", ev.evalList())
	tr.AppendScalar("z_omega", &ev.ZOmega)
	v := tr.ChallengeScalar("v")
	tr.AppendPoint("w_zeta", &proof.WZeta)
	tr.AppendPoint("w_zeta_omega", &proof.WZetaOmega)
	u := tr.ChallengeScalar("u")

	domain, err := poly.NewDomain(vk.N)
	if err != nil {
		return fmt.Errorf("plonk: %w", err)
	}

	// Z_H(ζ), L1(ζ) and PI(ζ).
	one := fr.One()
	var zetaN fr.Element
	zetaN.ExpUint64(&zeta, vk.N)
	var zh fr.Element
	zh.Sub(&zetaN, &one)
	if zh.IsZero() {
		// ζ landed inside the domain (probability ~ N/r): reject rather
		// than divide by zero.
		return ErrProofInvalid
	}
	var pi fr.Element
	for i := range public {
		li := domain.LagrangeEval(uint64(i), &zeta)
		var t fr.Element
		t.Mul(&li, &public[i])
		pi.Sub(&pi, &t)
	}
	l1 := domain.LagrangeEval(0, &zeta)

	// Gate constraint value at ζ.
	var gate, t fr.Element
	t.Mul(&ev.QM, &ev.A)
	t.Mul(&t, &ev.B)
	gate.Add(&gate, &t)
	t.Mul(&ev.QL, &ev.A)
	gate.Add(&gate, &t)
	t.Mul(&ev.QR, &ev.B)
	gate.Add(&gate, &t)
	t.Mul(&ev.QO, &ev.C)
	gate.Add(&gate, &t)
	gate.Add(&gate, &ev.QC)
	gate.Add(&gate, &pi)

	// Permutation constraint value at ζ.
	var p1, p2, f fr.Element
	t.Mul(&beta, &zeta)
	f.Add(&ev.A, &t)
	f.Add(&f, &gamma)
	p1 = f
	t.Mul(&beta, &zeta)
	t.Mul(&t, &vk.K1)
	f.Add(&ev.B, &t)
	f.Add(&f, &gamma)
	p1.Mul(&p1, &f)
	t.Mul(&beta, &zeta)
	t.Mul(&t, &vk.K2)
	f.Add(&ev.C, &t)
	f.Add(&f, &gamma)
	p1.Mul(&p1, &f)
	p1.Mul(&p1, &ev.Z)

	t.Mul(&beta, &ev.S1)
	f.Add(&ev.A, &t)
	f.Add(&f, &gamma)
	p2 = f
	t.Mul(&beta, &ev.S2)
	f.Add(&ev.B, &t)
	f.Add(&f, &gamma)
	p2.Mul(&p2, &f)
	t.Mul(&beta, &ev.S3)
	f.Add(&ev.C, &t)
	f.Add(&f, &gamma)
	p2.Mul(&p2, &f)
	p2.Mul(&p2, &ev.ZOmega)

	var perm fr.Element
	perm.Sub(&p1, &p2)
	perm.Mul(&perm, &alpha)

	var l1v fr.Element
	l1v.Sub(&ev.Z, &one)
	l1v.Mul(&l1v, &l1)
	l1v.Mul(&l1v, &alpha)
	l1v.Mul(&l1v, &alpha)

	var rhs fr.Element
	rhs.Add(&gate, &perm)
	rhs.Add(&rhs, &l1v)

	// t(ζ) = t_lo(ζ) + ζ^n·t_mid(ζ) + ζ^{2n}·t_hi(ζ).
	var tEval, zeta2N fr.Element
	zeta2N.Square(&zetaN)
	tEval.Mul(&zetaN, &ev.TMid)
	tEval.Add(&tEval, &ev.TLo)
	t.Mul(&zeta2N, &ev.THi)
	tEval.Add(&tEval, &t)

	var lhs fr.Element
	lhs.Mul(&tEval, &zh)
	if !lhs.Equal(&rhs) {
		return fmt.Errorf("%w: quotient identity", ErrProofInvalid)
	}

	// Batched KZG check. Fold the ζ-opened commitments and values with v.
	cms := []kzg.Commitment{
		proof.A, proof.B, proof.C, proof.Z,
		vk.QL, vk.QR, vk.QO, vk.QM, vk.QC,
		vk.S1, vk.S2, vk.S3,
		proof.TLo, proof.TMid, proof.THi,
	}
	evals := ev.evalList()
	var foldCm bn254.G1Jac
	foldCm.SetInfinity()
	foldVal := fr.Zero()
	coeff := fr.One()
	for i := range cms {
		var tj bn254.G1Jac
		tj.ScalarMul(&cms[i], &coeff)
		foldCm.AddAssign(&tj)
		var tv fr.Element
		tv.Mul(&evals[i], &coeff)
		foldVal.Add(&foldVal, &tv)
		coeff.Mul(&coeff, &v)
	}
	var fCm bn254.G1Affine
	fCm.FromJacobian(&foldCm)

	// Combine the two opening checks with u:
	// e(Fζ + ζ·Wζ + u·(Fζω + ζω·Wζω) - E, G2) · e(-(Wζ + u·Wζω), τG2) == 1
	// where E = (valζ + u·z̄ω)·G1 and Fζω = [z].
	g1 := bn254.G1Generator()
	var zetaOmega fr.Element
	zetaOmega.Mul(&zeta, &domain.Gen)

	var accJ bn254.G1Jac
	accJ.SetInfinity()
	var tj bn254.G1Jac
	tj.FromAffine(&fCm)
	accJ.AddAssign(&tj)
	tj.ScalarMul(&proof.WZeta, &zeta)
	accJ.AddAssign(&tj)
	var uZ fr.Element
	tj.ScalarMul(&proof.Z, &u)
	accJ.AddAssign(&tj)
	uZ.Mul(&u, &zetaOmega)
	tj.ScalarMul(&proof.WZetaOmega, &uZ)
	accJ.AddAssign(&tj)
	var eScalar fr.Element
	eScalar.Mul(&u, &ev.ZOmega)
	eScalar.Add(&eScalar, &foldVal)
	eScalar.Neg(&eScalar)
	tj.ScalarMul(&g1, &eScalar)
	accJ.AddAssign(&tj)
	var lhsPoint bn254.G1Affine
	lhsPoint.FromJacobian(&accJ)

	var wJ bn254.G1Jac
	wJ.FromAffine(&proof.WZeta)
	tj.ScalarMul(&proof.WZetaOmega, &u)
	wJ.AddAssign(&tj)
	var wSum bn254.G1Affine
	wSum.FromJacobian(&wJ)
	var negW bn254.G1Affine
	negW.Neg(&wSum)

	ok, err := bn254.PairingCheck(
		[]bn254.G1Affine{lhsPoint, negW},
		[]bn254.G2Affine{vk.G2[0], vk.G2[1]},
	)
	if err != nil {
		return fmt.Errorf("plonk: %w", err)
	}
	if !ok {
		return fmt.Errorf("%w: pairing check", ErrProofInvalid)
	}
	return nil
}
