package plonk

import (
	"fmt"
	"sort"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/parallel"
	"github.com/zkdet/zkdet/internal/transcript"
)

// Batch accumulates the pairing statements of many proofs against one
// verifying key and checks them all with a single two-pair pairing. Each
// proof's transcript replay and quotient-identity check still run
// individually (in Add), but the expensive pairing work is shared: the N
// deferred statements e(Lᵢ, G2)·e(-Wᵢ, τG2) == 1 are folded with powers of
// a transcript-derived challenge ρ into one statement, so the marginal
// pairing cost of an extra proof is two G1 scalar multiplications instead
// of a Miller loop and final exponentiation.
//
// Soundness: if any single statement is false, the folded statement holds
// for at most N-1 choices of ρ out of |Fr|, so a cheating batch passes with
// probability ≤ (N-1)/r. ρ is bound to every Lᵢ and Wᵢ, so it cannot be
// chosen before the proofs are fixed.
type Batch struct {
	vk    *VerifyingKey
	terms []pairingTerms
}

// NewBatch returns an empty batch for the given verifying key.
func NewBatch(vk *VerifyingKey) *Batch {
	return &Batch{vk: vk}
}

// Add runs the cheap per-proof verification work (transcript replay,
// quotient identity, commitment folding) and defers the pairing statement
// into the batch. A proof rejected here never enters the batch; the
// returned error is the same one Verify would produce.
func (b *Batch) Add(proof *Proof, public []fr.Element) error {
	terms, err := prepare(b.vk, proof, public)
	if err != nil {
		return err
	}
	b.terms = append(b.terms, terms)
	return nil
}

// AddFor runs Add's per-proof verification against a DIFFERENT verifying
// key, deferring the pairing statement into this batch. This folds proofs
// of different circuits — classic, lookup-enabled, custom-gate — into one
// pairing check: the deferred statement e(L, G2)·e(−W, τG2) == 1 only
// depends on the SRS, so any key sharing the batch key's G2 points can
// contribute. Keys from a different SRS are rejected.
func (b *Batch) AddFor(vk *VerifyingKey, proof *Proof, public []fr.Element) error {
	if !vk.G2[0].Equal(&b.vk.G2[0]) || !vk.G2[1].Equal(&b.vk.G2[1]) {
		return fmt.Errorf("plonk: batch AddFor: verifying key from a different SRS")
	}
	terms, err := prepare(vk, proof, public)
	if err != nil {
		return err
	}
	b.terms = append(b.terms, terms)
	return nil
}

// addTerms appends an already-prepared statement; BatchVerify uses it to
// parallelise preparation across proofs.
func (b *Batch) addTerms(t pairingTerms) {
	b.terms = append(b.terms, t)
}

// Len returns the number of statements accumulated so far.
func (b *Batch) Len() int { return len(b.terms) }

// Check verifies every accumulated statement with one pairing check. An
// empty batch passes vacuously. On failure at least one statement in the
// batch is invalid; use Bisect to isolate which.
func (b *Batch) Check() error {
	idxs := make([]int, len(b.terms))
	for i := range idxs {
		idxs[i] = i
	}
	ok, err := b.checkSubset(idxs)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: batch pairing check (%d proofs)", ErrProofInvalid, len(b.terms))
	}
	return nil
}

// checkSubset folds the statements at the given indices and runs one
// pairing check. The folding challenge is derived from a fresh transcript
// binding the subset size, each statement's index, and its L/W points, so
// every subset gets an independent challenge.
func (b *Batch) checkSubset(idxs []int) (bool, error) {
	n := len(idxs)
	if n == 0 {
		return true, nil
	}
	tr := transcript.New("zkdet/plonk/batch")
	count := fr.NewElement(uint64(n))
	tr.AppendScalar("count", &count)
	for _, i := range idxs {
		iv := fr.NewElement(uint64(i))
		tr.AppendScalar("index", &iv)
		tr.AppendPoint("L", &b.terms[i].L)
		tr.AppendPoint("W", &b.terms[i].W)
	}
	rho := tr.ChallengeScalar("rho")
	rhoPowers := fr.Powers(&rho, n)

	ls := make([]bn254.G1Affine, n)
	ws := make([]bn254.G1Affine, n)
	for j, i := range idxs {
		ls[j] = b.terms[i].L
		ws[j] = b.terms[i].W
	}
	foldL, err := bn254.G1MSM(ls, rhoPowers)
	if err != nil {
		return false, fmt.Errorf("plonk: %w", err)
	}
	foldW, err := bn254.G1MSM(ws, rhoPowers)
	if err != nil {
		return false, fmt.Errorf("plonk: %w", err)
	}

	_, _, lines, err := b.vk.verifierCache()
	if err != nil {
		return false, fmt.Errorf("plonk: %w", err)
	}
	var negW bn254.G1Affine
	negW.Neg(&foldW)
	return bn254.PairingCheckPrecomp(
		[]bn254.G1Affine{foldL, negW},
		lines[:],
	)
}

// Bisect isolates the invalid statements after a failed Check by recursive
// subset splitting: a subset that passes its folded check is cleared as a
// whole, a failing subset is split in half until single statements remain.
// For k invalid proofs among n it costs O(k·log n) pairing checks instead
// of n. The returned indices (positions in Add order, ascending) are the
// statements whose individual pairing checks fail; an empty result means
// the whole batch passes.
func (b *Batch) Bisect() ([]int, error) {
	idxs := make([]int, len(b.terms))
	for i := range idxs {
		idxs[i] = i
	}
	bad, err := b.bisect(idxs)
	if err != nil {
		return nil, err
	}
	sort.Ints(bad)
	return bad, nil
}

func (b *Batch) bisect(idxs []int) ([]int, error) {
	if len(idxs) == 0 {
		return nil, nil
	}
	ok, err := b.checkSubset(idxs)
	if err != nil {
		return nil, err
	}
	if ok {
		return nil, nil
	}
	if len(idxs) == 1 {
		return idxs, nil
	}
	mid := len(idxs) / 2
	left, err := b.bisect(idxs[:mid])
	if err != nil {
		return nil, err
	}
	right, err := b.bisect(idxs[mid:])
	if err != nil {
		return nil, err
	}
	return append(left, right...), nil
}

// BatchVerify checks N proofs against one verifying key with a single
// pairing check. Per-proof preparation (transcript replay and quotient
// identity) runs across all cores; the deferred pairing statements are
// then folded and checked at once. On a batch failure the offending
// proofs are isolated by bisection and reported by index.
//
// It is semantically equivalent to calling Verify on each proof — any
// error that Verify would return surfaces here, attributed to the proof's
// index — but the pairing cost is amortised to near-O(1) per proof.
func BatchVerify(vk *VerifyingKey, proofs []*Proof, publics [][]fr.Element) error {
	if len(proofs) != len(publics) {
		return fmt.Errorf("plonk: batch verify: %d proofs, %d public input sets", len(proofs), len(publics))
	}
	n := len(proofs)
	if n == 0 {
		return nil
	}
	// Build the verifier caches once before fanning out, so the workers
	// don't all stall on the same sync.Once.
	if _, _, _, err := vk.verifierCache(); err != nil {
		return fmt.Errorf("plonk: %w", err)
	}

	terms := make([]pairingTerms, n)
	errs := make([]error, n)
	parallel.Execute(n, func(start, end int) {
		for i := start; i < end; i++ {
			terms[i], errs[i] = prepare(vk, proofs[i], publics[i])
		}
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("plonk: batch proof %d: %w", i, err)
		}
	}

	b := NewBatch(vk)
	for i := range terms {
		b.addTerms(terms[i])
	}
	if err := b.Check(); err == nil {
		return nil
	}
	bad, err := b.Bisect()
	if err != nil {
		return err
	}
	if len(bad) == 0 {
		// The folded check failed but every individual statement passes:
		// astronomically unlikely (a ρ collision), but report honestly.
		return fmt.Errorf("%w: batch fold rejected but no single proof failed", ErrProofInvalid)
	}
	return fmt.Errorf("%w: batch proofs %v failed pairing check", ErrProofInvalid, bad)
}
