package plonk

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/transcript"
)

// prepareExtended mirrors proveExtended: it replays the extended
// transcript, evaluates the full constraint stack (gate, permutation,
// LogUp, custom gates) at ζ via the same extNumerator the prover ran on
// the coset, and reduces both opening checks to one pairing statement.
// The ζ-opened commitments still fold into a single MSM.
func prepareExtended(vk *VerifyingKey, proof *Proof, public []fr.Element) (pairingTerms, error) {
	ex := proof.Evals.Ext
	nbPieces := 3
	if vk.Custom {
		nbPieces = 6
	}
	if len(proof.TExtra) != nbPieces-3 || len(ex.TExtra) != nbPieces-3 {
		return pairingTerms{}, fmt.Errorf("%w: %d extra quotient pieces, want %d",
			ErrProofShape, len(proof.TExtra), nbPieces-3)
	}

	// Reconstruct the challenges.
	tr := transcript.New("zkdet/plonk")
	bindTranscript(tr, vk, public)
	tr.AppendPoint("a", &proof.A)
	tr.AppendPoint("b", &proof.B)
	tr.AppendPoint("c", &proof.C)
	tr.AppendPoint("m", &proof.M)
	beta := tr.ChallengeScalar("beta")
	gamma := tr.ChallengeScalar("gamma")
	betaL := tr.ChallengeScalar("beta_l")
	tr.AppendPoint("z", &proof.Z)
	tr.AppendPoint("h", &proof.H)
	tr.AppendPoint("s", &proof.S)
	alpha := tr.ChallengeScalar("alpha")
	tr.AppendPoint("t_lo", &proof.TLo)
	tr.AppendPoint("t_mid", &proof.TMid)
	tr.AppendPoint("t_hi", &proof.THi)
	for p := 3; p < nbPieces; p++ {
		tr.AppendPoint(fmt.Sprintf("t_%d", p), &proof.TExtra[p-3])
	}
	zeta := tr.ChallengeScalar("zeta")
	ev := &proof.Evals
	tr.AppendScalars("evals", append(ev.evalList(), ex.zetaList()...))
	tr.AppendScalar("z_omega", &ev.ZOmega)
	tr.AppendScalars("evals-omega-ext", ex.omegaList())
	v := tr.ChallengeScalar("v")
	tr.AppendPoint("w_zeta", &proof.WZeta)
	tr.AppendPoint("w_zeta_omega", &proof.WZetaOmega)
	u := tr.ChallengeScalar("u")

	domain, lagOmega, _, err := vk.verifierCache()
	if err != nil {
		return pairingTerms{}, fmt.Errorf("plonk: %w", err)
	}

	one := fr.One()
	var zetaN fr.Element
	zetaN.ExpUint64(&zeta, vk.N)
	var zh fr.Element
	zh.Sub(&zetaN, &one)
	if zh.IsZero() {
		return pairingTerms{}, ErrProofInvalid
	}
	lag := lagrangePrefix(lagOmega, vk.N, &zeta, &zh)
	var pi fr.Element
	for i := range public {
		var t fr.Element
		t.Mul(&lag[i], &public[i])
		pi.Sub(&pi, &t)
	}

	// Full constraint stack at ζ — same formula the prover divided by
	// Z_H on the coset.
	pv := &extPointVals{
		x: zeta,
		a: ev.A, b: ev.B, c: ev.C,
		aw: ex.AOmega, bw: ex.BOmega, cw: ex.COmega,
		z: ev.Z, zw: ev.ZOmega,
		ql: ev.QL, qr: ev.QR, qo: ev.QO, qm: ev.QM, qc: ev.QC, pi: pi,
		s1: ev.S1, s2: ev.S2, s3: ev.S3,
		m: ex.M, h: ex.H, s: ex.S, sw: ex.SOmega,
		qlk: ex.QLk, tbl: ex.Tbl,
		qmimc: ex.QMimc, qposf: ex.QPosF, qposp: ex.QPosP,
		k0: ex.K0, k1c: ex.K1, k2c: ex.K2,
		l1: lag[0],
	}
	ch := &extChallenges{
		beta: beta, gamma: gamma, betaL: betaL,
		alphaPow: fr.Powers(&alpha, nbAlphaPowers),
		k1:       vk.K1, k2: vk.K2,
		mds: vk.MDS,
	}
	rhs := extNumerator(pv, ch)

	// t(ζ) = Σ_p ζ^{p·n}·t_p(ζ).
	pieceEvals := append([]fr.Element{ev.TLo, ev.TMid, ev.THi}, ex.TExtra...)
	var tEval, zetaPow fr.Element
	zetaPow = one
	for p := range pieceEvals {
		var t fr.Element
		t.Mul(&zetaPow, &pieceEvals[p])
		tEval.Add(&tEval, &t)
		zetaPow.Mul(&zetaPow, &zetaN)
	}
	var lhs fr.Element
	lhs.Mul(&tEval, &zh)
	if !lhs.Equal(&rhs) {
		return pairingTerms{}, fmt.Errorf("%w: quotient identity", ErrProofInvalid)
	}

	// Batched KZG check: fold the ζ-opened commitments/values with v, the
	// ζω-opened ones (z, S, a, b, c) with v inside the u-weighted term.
	cms := []kzg.Commitment{
		proof.A, proof.B, proof.C, proof.Z,
		vk.QL, vk.QR, vk.QO, vk.QM, vk.QC,
		vk.S1, vk.S2, vk.S3,
		proof.TLo, proof.TMid, proof.THi,
		proof.M, proof.H, proof.S,
		vk.QLk, vk.Tbl, vk.QMimc, vk.QPosF, vk.QPosP,
		vk.KC0, vk.KC1, vk.KC2,
	}
	cms = append(cms, proof.TExtra...)
	evals := append(ev.evalList(), ex.zetaList()...)
	if len(evals) != len(cms) {
		return pairingTerms{}, fmt.Errorf("%w: %d evals for %d commitments", ErrProofShape, len(evals), len(cms))
	}
	vPowers := fr.Powers(&v, len(cms))
	foldVal := fr.Zero()
	for i := range evals {
		var tv fr.Element
		tv.Mul(&evals[i], &vPowers[i])
		foldVal.Add(&foldVal, &tv)
	}

	omegaEvals := append([]fr.Element{ev.ZOmega}, ex.omegaList()...)
	vOmega := fr.Powers(&v, len(omegaEvals))
	foldValOmega := fr.Zero()
	for i := range omegaEvals {
		var tv fr.Element
		tv.Mul(&omegaEvals[i], &vOmega[i])
		foldValOmega.Add(&foldValOmega, &tv)
	}

	g1 := bn254.G1Generator()
	var zetaOmega fr.Element
	zetaOmega.Mul(&zeta, &domain.Gen)
	var uZOmega fr.Element
	uZOmega.Mul(&u, &zetaOmega)
	var eScalar fr.Element
	eScalar.Mul(&u, &foldValOmega)
	eScalar.Add(&eScalar, &foldVal)
	eScalar.Neg(&eScalar)

	// F_ζω = [z] + v[S] + v²[A] + v³[B] + v⁴[C], weighted by u.
	omegaCms := []kzg.Commitment{proof.Z, proof.S, proof.A, proof.B, proof.C}
	pts := make([]bn254.G1Affine, 0, len(cms)+len(omegaCms)+3)
	scs := make([]fr.Element, 0, cap(pts))
	pts = append(pts, cms...)
	scs = append(scs, vPowers...)
	pts = append(pts, proof.WZeta)
	scs = append(scs, zeta)
	for i := range omegaCms {
		var s fr.Element
		s.Mul(&u, &vOmega[i])
		pts = append(pts, omegaCms[i])
		scs = append(scs, s)
	}
	pts = append(pts, proof.WZetaOmega, g1)
	scs = append(scs, uZOmega, eScalar)

	var terms pairingTerms
	L, err := bn254.G1MSM(pts, scs)
	if err != nil {
		return pairingTerms{}, fmt.Errorf("plonk: %w", err)
	}
	terms.L = L

	var wJ bn254.G1Jac
	var tj bn254.G1Jac
	wJ.FromAffine(&proof.WZeta)
	tj.ScalarMul(&proof.WZetaOmega, &u)
	wJ.AddAssign(&tj)
	terms.W.FromJacobian(&wJ)
	return terms, nil
}
