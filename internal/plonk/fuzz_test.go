package plonk

import (
	"bytes"
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
)

// FuzzProofFromBytes drives the versioned proof decoder with arbitrary
// blobs. The decoder must never panic, and any blob it accepts must
// re-encode to the same bytes (the encoding is canonical).
func FuzzProofFromBytes(f *testing.F) {
	// Seed with real encodings of each proof shape so the fuzzer starts
	// from deep inside the accepting region.
	csC, wC := buildMulAddCircuit()
	pkC, _, err := Setup(csC, testSRSOnce())
	if err != nil {
		f.Fatal(err)
	}
	pC, err := Prove(pkC, wC)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pC.Bytes())

	csL, wL := buildLookupCircuit(8, []uint64{3, 200})
	pkL, _, err := Setup(csL, testSRSOnce())
	if err != nil {
		f.Fatal(err)
	}
	pL, err := Prove(pkL, wL)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pL.Bytes())

	csM, wM := buildMiMCCustomCircuit(4)
	pkM, _, err := Setup(csM, testSRSOnce())
	if err != nil {
		f.Fatal(err)
	}
	pM, err := Prove(pkM, wM)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pM.Bytes())

	f.Add([]byte("ZKPF"))
	f.Add(make([]byte, LegacyProofSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ProofFromBytes(data)
		if err != nil {
			return
		}
		back := p.Bytes()
		if !bytes.Equal(back, data) {
			t.Fatalf("accepted blob does not re-encode canonically:\n in  %x\n out %x", data, back)
		}
		// A re-decode of the re-encoding must also succeed.
		if _, err := ProofFromBytes(back); err != nil {
			t.Fatalf("re-encoded proof rejected: %v", err)
		}
	})
}

// FuzzLogUpWitness drives the LogUp witness builder with arbitrary wire
// values and lookup-row placements. Whenever buildMultiplicities accepts
// the witness, the running sum built from its output must telescope to
// zero — the algebraic heart of the lookup argument (DESIGN.md §15).
func FuzzLogUpWitness(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint8(4))
	f.Add([]byte{255, 255, 0, 17, 42}, uint8(8))
	f.Add([]byte{}, uint8(1))

	f.Fuzz(func(t *testing.T, raw []byte, bitsRaw uint8) {
		tableBits := int(bitsRaw%8) + 1 // 1..8 keeps the table small
		const n = 64
		if len(raw) > n {
			raw = raw[:n]
		}
		// One gate per input byte; odd bytes become lookup rows carrying
		// the byte value (possibly out of table for tableBits < 8).
		gates := make([]Gate, n)
		witness := make([]fr.Element, 1, n+1) // witness[0] = 0
		for i := range gates {
			gates[i].A = 0
			gates[i].B = 0
			gates[i].C = 0
			if i < len(raw) && raw[i]%2 == 1 {
				gates[i].Kind = KindLookup
				witness = append(witness, fr.NewElement(uint64(raw[i])))
				gates[i].A = len(witness) - 1
				gates[i].B = gates[i].A
				gates[i].C = gates[i].A
			}
		}

		mV, err := buildMultiplicities(gates, witness, tableBits, n)
		if err != nil {
			// Out-of-table witness: the prover must refuse to build the
			// columns at all.
			return
		}

		// Wire column a and table column over the domain.
		aV := make([]fr.Element, n)
		tblV := make([]fr.Element, n)
		size := uint64(1) << tableBits
		for i := 0; i < n; i++ {
			aV[i] = witness[gates[i].A]
			if uint64(i) < size {
				tblV[i] = fr.NewElement(uint64(i))
			}
		}

		betaL := fr.NewElement(0xbe7a_1234)
		hV, sV := buildLogUpColumns(gates, aV, mV, tblV, betaL)

		// The telescoping invariant: S_{n-1} + H_{n-1} = Σ H_i = 0.
		var sum fr.Element
		sum.Add(&sV[n-1], &hV[n-1])
		if !sum.IsZero() {
			t.Fatalf("LogUp sum does not telescope to zero (tableBits=%d, %d lookups)",
				tableBits, len(witness)-1)
		}
		// And S must actually be the prefix sum of H.
		var acc fr.Element
		for i := 0; i < n; i++ {
			if !acc.Equal(&sV[i]) {
				t.Fatalf("S[%d] is not the prefix sum of H", i)
			}
			acc.Add(&acc, &hV[i])
		}
	})
}
