package plonk

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
)

// The lookup/custom-gate extension must leave circuits that use neither
// feature byte-for-byte unchanged: same preprocessed commitments, same
// proof points and evaluations, and hence the same verifier transcript.
// These digests were captured from the pre-lookup prover (commit 396cf92)
// with blinding pinned to the seeded stream below; any drift in the classic
// path fails here. CI runs this as the lookup-identity job.
var classicGoldens = map[string]struct{ vk, proof string }{
	"muladd":  {"d2f0d33c2c329fee79d96db83a69d0896fcc2aa10f2eed1781ade3ff482cacbd", "6b3aa6919443a1125991c5c756a758aa7216c840258ef4b49318e7b465161a33"},
	"power5":  {"fcc7edf635b09124458e96b2ec89160226e288e0c51aea3f6f78fcf2ffe5d670", "f1b9590cb1908e48d70d81bf933c2c381002852f2d7b452a577211f7d70aa304"},
	"power50": {"a21bae105b9940e8c5417c9a6c22e654140f15f17a626afa44bdf2c0e807a402", "287aba7720ffaba9320b179774ab00840bd7f60e0783e35a87c38277b14a4eb2"},
}

func TestClassicProverBitIdentity(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() (*ConstraintSystem, []fr.Element)
	}{
		{"muladd", buildMulAddCircuit},
		{"power5", func() (*ConstraintSystem, []fr.Element) { return buildPowerCircuit(5) }},
		{"power50", func() (*ConstraintSystem, []fr.Element) { return buildPowerCircuit(50) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cs, witness := tc.build()
			pk, vk, err := Setup(cs, testSRSOnce())
			if err != nil {
				t.Fatal(err)
			}
			want := classicGoldens[tc.name]
			if got := hex.EncodeToString(digestVKForTest(vk)); got != want.vk {
				t.Errorf("verifying key drifted from pre-lookup prover:\n got %s\nwant %s", got, want.vk)
			}
			restore := randScalar
			randScalar = seededScalarsForTest(0x90_1d)
			proof, err := Prove(pk, witness)
			randScalar = restore
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(vk, proof, witness[:cs.NbPublic()]); err != nil {
				t.Fatalf("pinned proof rejected: %v", err)
			}
			if got := hex.EncodeToString(digestProofForTest(proof)); got != want.proof {
				t.Errorf("proof drifted from pre-lookup prover:\n got %s\nwant %s", got, want.proof)
			}
		})
	}
}

// seededScalarsForTest returns a deterministic scalar stream for pinning
// proofs: call i yields SHA-256("zkdet/golden-blind" ‖ seed ‖ i) reduced
// into Fr.
func seededScalarsForTest(seed uint64) func() fr.Element {
	var ctr uint64
	return func() fr.Element {
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[:8], seed)
		binary.BigEndian.PutUint64(buf[8:], ctr)
		ctr++
		h := sha256.Sum256(append([]byte("zkdet/golden-blind"), buf[:]...))
		return fr.FromBytes(h[:])
	}
}

// digestVKForTest hashes every verifying-key field that determines the
// verifier's behavior, independent of any serialization format.
func digestVKForTest(vk *VerifyingKey) []byte {
	h := sha256.New()
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], vk.N)
	h.Write(u[:])
	binary.BigEndian.PutUint64(u[:], uint64(vk.NbPublic))
	h.Write(u[:])
	for _, p := range []interface{ Bytes() [64]byte }{
		&vk.QL, &vk.QR, &vk.QO, &vk.QM, &vk.QC, &vk.S1, &vk.S2, &vk.S3,
	} {
		b := p.Bytes()
		h.Write(b[:])
	}
	k1 := vk.K1.Bytes()
	k2 := vk.K2.Bytes()
	h.Write(k1[:])
	h.Write(k2[:])
	return h.Sum(nil)
}

// digestProofForTest hashes the proof's points, evaluations and (hence)
// everything the verifier transcript absorbs, independent of the wire
// encoding in serialize.go.
func digestProofForTest(p *Proof) []byte {
	h := sha256.New()
	for _, pt := range []interface{ Bytes() [64]byte }{
		&p.A, &p.B, &p.C, &p.Z, &p.TLo, &p.TMid, &p.THi, &p.WZeta, &p.WZetaOmega,
	} {
		b := pt.Bytes()
		h.Write(b[:])
	}
	evals := p.Evals.evalList()
	evals = append(evals, p.Evals.ZOmega)
	for i := range evals {
		b := evals[i].Bytes()
		h.Write(b[:])
	}
	return h.Sum(nil)
}
