// Package parallel provides the repo-wide worker-pool conventions used by
// the prover hot paths (poly, bn254, plonk, kzg): every fan-out is bounded
// by GOMAXPROCS, splits its index space into contiguous ranges so workers
// write disjoint slices, and falls back to running inline when there is
// only one worker or too little work to amortise goroutine startup.
//
// All helpers are deterministic with respect to the computed values: they
// only partition loops whose iterations are independent, so results are
// bit-identical to the serial execution regardless of worker count.
package parallel

import (
	"runtime"
	"sync"
)

// Workers returns the number of workers a fan-out should use: GOMAXPROCS.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// Execute partitions [0, n) into at most Workers() contiguous ranges and
// runs work on each concurrently, returning once every range is done.
// When n is small or a single worker is available it runs inline on the
// calling goroutine.
func Execute(n int, work func(start, end int)) {
	ExecuteWorkers(n, Workers(), work)
}

// ExecuteWorkers is Execute with an explicit worker-count bound. It is the
// building block tests use to force a parallel split on single-core
// machines (and the serial fallback on many-core ones).
func ExecuteWorkers(n, workers int, work func(start, end int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		work(0, n)
		return
	}
	chunk := n / workers
	rem := n % workers
	var wg sync.WaitGroup
	start := 0
	for w := 0; w < workers; w++ {
		end := start + chunk
		if w < rem {
			end++
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			work(start, end)
		}(start, end)
		start = end
	}
	wg.Wait()
}
