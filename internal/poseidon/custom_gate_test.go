package poseidon

import (
	"testing"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/plonk"
)

// TestCustomGadgetMatchesNative checks the one-row-per-round lowering
// computes exactly Permute, end to end through Plonk prove/verify.
func TestCustomGadgetMatchesNative(t *testing.T) {
	in := [Width]fr.Element{fr.NewElement(1), fr.NewElement(2), fr.NewElement(3)}
	want := Permute(in)

	b := circuit.NewBuilder()
	b.EnableCustomGates()
	state := [Width]circuit.Variable{b.Secret(in[0]), b.Secret(in[1]), b.Secret(in[2])}
	out := GadgetPermute(b, state)
	for i := 0; i < Width; i++ {
		if got := b.Value(out[i]); !got.Equal(&want[i]) {
			t.Fatalf("lane %d: custom gadget %s, native %s", i, got.String(), want[i].String())
		}
	}
	pub := b.Public(want[0])
	b.AssertEqual(pub, out[0])

	cs, witness, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !cs.HasCustomGates() {
		t.Fatal("no custom rows emitted")
	}
	if err := cs.IsSatisfied(witness); err != nil {
		t.Fatal(err)
	}

	tau := fr.NewElement(0x905e)
	srs, err := kzg.NewSRSFromSecret(1<<10, &tau)
	if err != nil {
		t.Fatal(err)
	}
	pk, vk, err := plonk.Setup(cs, srs)
	if err != nil {
		t.Fatal(err)
	}
	if !vk.Custom {
		t.Fatal("custom circuit compiled to a non-custom key")
	}
	proof, err := plonk.Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	if err := plonk.Verify(vk, proof, b.PublicValues()); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	one := fr.One()
	var wrong fr.Element
	wrong.Add(&want[0], &one)
	if err := plonk.Verify(vk, proof, []fr.Element{wrong}); err == nil {
		t.Fatal("wrong permutation output accepted")
	}
}

// TestCustomGadgetConstraintCount pins the saving: one permutation must
// cost about totalRounds+1 gates instead of ~12·totalRounds.
func TestCustomGadgetConstraintCount(t *testing.T) {
	classic := ConstraintsPerPermutation()

	b := circuit.NewBuilder()
	b.EnableCustomGates()
	s := [Width]circuit.Variable{
		b.Secret(fr.NewElement(1)), b.Secret(fr.NewElement(2)), b.Secret(fr.NewElement(3)),
	}
	before := b.NbGates()
	GadgetPermute(b, s)
	custom := b.NbGates() - before

	if custom > totalRounds+1 {
		t.Fatalf("custom permutation costs %d gates, want ≤ %d", custom, totalRounds+1)
	}
	if custom*3 > classic {
		t.Fatalf("custom lowering not ≥3x cheaper: %d vs %d", custom, classic)
	}
}

// TestCustomGadgetHashAndCommit runs the sponge and commitment modes on
// the custom lowering (chained permutations with absorb rows in between).
func TestCustomGadgetHashAndCommit(t *testing.T) {
	msg := []fr.Element{fr.NewElement(11), fr.NewElement(22), fr.NewElement(33), fr.NewElement(44)}
	want := Hash(msg)

	b := circuit.NewBuilder()
	b.EnableCustomGates()
	vars := make([]circuit.Variable, len(msg))
	for i, m := range msg {
		vars[i] = b.Secret(m)
	}
	h := GadgetHash(b, vars)
	if got := b.Value(h); !got.Equal(&want) {
		t.Fatalf("custom gadget hash %s, native %s", got.String(), want.String())
	}
	cs, witness, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(witness); err != nil {
		t.Fatal(err)
	}

	o := fr.NewElement(0xb11d)
	wantC := CommitWith(msg, o)
	b2 := circuit.NewBuilder()
	b2.EnableCustomGates()
	ov := b2.Secret(o)
	vars2 := make([]circuit.Variable, len(msg))
	for i, m := range msg {
		vars2[i] = b2.Secret(m)
	}
	c := GadgetCommit(b2, vars2, ov)
	if got := b2.Value(c); !got.Equal(&wantC) {
		t.Fatalf("custom gadget commit %s, native %s", got.String(), wantC.String())
	}
	cs2, w2, err := b2.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs2.IsSatisfied(w2); err != nil {
		t.Fatal(err)
	}
}
