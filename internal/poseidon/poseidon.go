// Package poseidon implements the Poseidon hash (Grassi et al., USENIX
// Security 2021) over the BN254 scalar field with the paper's §VI-A
// parameters: x⁵ S-box, width t = 3, R_F = 8 full rounds and R_P = 60
// partial rounds ("x⁵-Poseidon-128").
//
// Poseidon is ZKDET's commitment primitive: a Poseidon hash over
// (blinder ‖ message) is binding by collision resistance and hiding by the
// uniformly random blinder, at roughly one-eighth the constraint count of a
// Pedersen commitment (§IV-C2).
//
// Round constants and the MDS matrix are generated deterministically
// (nothing-up-my-sleeve): constants from SHA-256 counters, the matrix as a
// Cauchy matrix — these are not the audited production constants, but have
// the same algebraic structure and cost.
package poseidon

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
)

// Parameters of the x⁵-Poseidon-128 instantiation (paper §VI-A).
const (
	// Width is the state size t.
	Width = 3
	// FullRounds is R_F (split half before, half after the partial rounds).
	FullRounds = 8
	// PartialRounds is R_P.
	PartialRounds = 60
	// Rate is the number of absorbed elements per permutation.
	Rate = Width - 1
)

const totalRounds = FullRounds + PartialRounds

// roundConstants[r][i] is the constant added to state[i] in round r.
var roundConstants = func() [totalRounds][Width]fr.Element {
	var cs [totalRounds][Width]fr.Element
	for r := 0; r < totalRounds; r++ {
		for i := 0; i < Width; i++ {
			var buf [16]byte
			binary.BigEndian.PutUint64(buf[:8], uint64(r))
			binary.BigEndian.PutUint64(buf[8:], uint64(i))
			h := sha256.Sum256(append([]byte("zkdet/poseidon"), buf[:]...))
			cs[r][i] = fr.FromBytes(h[:])
		}
	}
	return cs
}()

// mdsMatrix is the Cauchy matrix m[i][j] = 1/(x_i + y_j) with x_i = i,
// y_j = Width + j; Cauchy matrices over a prime field are MDS.
var mdsMatrix = func() [Width][Width]fr.Element {
	var m [Width][Width]fr.Element
	for i := 0; i < Width; i++ {
		for j := 0; j < Width; j++ {
			sum := fr.NewElement(uint64(i + Width + j))
			m[i][j].Inverse(&sum)
		}
	}
	return m
}()

func sbox(x fr.Element) fr.Element {
	var x2, x4, x5 fr.Element
	x2.Square(&x)
	x4.Square(&x2)
	x5.Mul(&x4, &x)
	return x5
}

// Permute applies the Poseidon permutation to a state of Width elements.
func Permute(state [Width]fr.Element) [Width]fr.Element {
	half := FullRounds / 2
	for r := 0; r < totalRounds; r++ {
		for i := 0; i < Width; i++ {
			state[i].Add(&state[i], &roundConstants[r][i])
		}
		if r < half || r >= half+PartialRounds {
			for i := 0; i < Width; i++ {
				state[i] = sbox(state[i])
			}
		} else {
			state[0] = sbox(state[0])
		}
		state = mdsMul(state)
	}
	return state
}

func mdsMul(state [Width]fr.Element) [Width]fr.Element {
	var out [Width]fr.Element
	for i := 0; i < Width; i++ {
		for j := 0; j < Width; j++ {
			var t fr.Element
			t.Mul(&mdsMatrix[i][j], &state[j])
			out[i].Add(&out[i], &t)
		}
	}
	return out
}

// Hash absorbs an arbitrary-length message with a sponge (rate 2,
// capacity 1) and squeezes one element. The capacity lane is initialized
// with the message length for domain separation.
func Hash(msg []fr.Element) fr.Element {
	var state [Width]fr.Element
	state[Width-1] = fr.NewElement(uint64(len(msg)))
	for off := 0; off < len(msg); off += Rate {
		for i := 0; i < Rate && off+i < len(msg); i++ {
			state[i].Add(&state[i], &msg[off+i])
		}
		state = Permute(state)
	}
	if len(msg) == 0 {
		state = Permute(state)
	}
	return state[0]
}

// Compress is the 2-to-1 compression used by Merkle trees.
func Compress(l, r fr.Element) fr.Element {
	state := Permute([Width]fr.Element{l, r, fr.NewElement(2)})
	return state[0]
}

// Commitment scheme (Definition 2.1 of the paper): c = H(o ‖ m) with a
// uniformly random opening o. Binding follows from collision resistance,
// hiding from the blinder.

// ErrOpenFailed reports a commitment that does not open to the claimed
// message.
var ErrOpenFailed = errors.New("poseidon: commitment opening failed")

// Commit commits to msg with a fresh random blinder, returning (c, o).
func Commit(msg []fr.Element) (c, o fr.Element) {
	o = fr.MustRandom()
	return CommitWith(msg, o), o
}

// CommitWith commits with a caller-chosen blinder (deterministic; used by
// circuits that must recompute the commitment).
func CommitWith(msg []fr.Element, o fr.Element) fr.Element {
	buf := make([]fr.Element, 0, len(msg)+1)
	buf = append(buf, o)
	buf = append(buf, msg...)
	return Hash(buf)
}

// Open verifies that c is a commitment to msg under blinder o.
func Open(msg []fr.Element, c, o fr.Element) bool {
	want := CommitWith(msg, o)
	return want.Equal(&c)
}

// GadgetPermute emits the Poseidon permutation as circuit constraints.
// With custom gates enabled each round is a single KindPoseidonFull or
// KindPoseidonPartial row (plus one closing row for the whole
// permutation); classically a round costs ~12 gates.
func GadgetPermute(b *circuit.Builder, state [Width]circuit.Variable) [Width]circuit.Variable {
	if b.CustomGatesEnabled() {
		return gadgetPermuteCustom(b, state)
	}
	half := FullRounds / 2
	for r := 0; r < totalRounds; r++ {
		for i := 0; i < Width; i++ {
			state[i] = b.AddConst(state[i], roundConstants[r][i])
		}
		if r < half || r >= half+PartialRounds {
			for i := 0; i < Width; i++ {
				state[i] = gadgetSbox(b, state[i])
			}
		} else {
			state[0] = gadgetSbox(b, state[0])
		}
		state = gadgetMDS(b, state)
	}
	return state
}

// gadgetPermuteCustom lowers the permutation to one custom row per round:
// the row wires the current state, carries the round constants in K, and
// the gate constrains the NEXT row's wires to MDS·sbox(state + K) (all
// lanes S-boxed in full rounds, lane 0 only in partial rounds). The next
// state is allocated as witness variables wired into the following row,
// and a no-op row closes the sequence with the final state.
func gadgetPermuteCustom(b *circuit.Builder, state [Width]circuit.Variable) [Width]circuit.Variable {
	b.SetPoseidonMDS(mdsMatrix)
	half := FullRounds / 2
	vals := [Width]fr.Element{b.Value(state[0]), b.Value(state[1]), b.Value(state[2])}
	for r := 0; r < totalRounds; r++ {
		kind := circuit.KindPoseidonPartial
		full := r < half || r >= half+PartialRounds
		if full {
			kind = circuit.KindPoseidonFull
		}
		b.CustomGate(kind, state[0], state[1], state[2], roundConstants[r])
		for i := 0; i < Width; i++ {
			vals[i].Add(&vals[i], &roundConstants[r][i])
		}
		if full {
			for i := 0; i < Width; i++ {
				vals[i] = sbox(vals[i])
			}
		} else {
			vals[0] = sbox(vals[0])
		}
		vals = mdsMul(vals)
		for i := 0; i < Width; i++ {
			state[i] = b.Secret(vals[i])
		}
	}
	b.NoOpRow(state[0], state[1], state[2])
	return state
}

func gadgetSbox(b *circuit.Builder, x circuit.Variable) circuit.Variable {
	x2 := b.Square(x)
	x4 := b.Square(x2)
	return b.Mul(x4, x)
}

func gadgetMDS(b *circuit.Builder, state [Width]circuit.Variable) [Width]circuit.Variable {
	var out [Width]circuit.Variable
	for i := 0; i < Width; i++ {
		acc := b.Lc2(state[0], mdsMatrix[i][0], state[1], mdsMatrix[i][1])
		out[i] = b.Lc2(acc, fr.One(), state[2], mdsMatrix[i][2])
	}
	return out
}

// GadgetHash emits the sponge hash as constraints, mirroring Hash.
func GadgetHash(b *circuit.Builder, msg []circuit.Variable) circuit.Variable {
	state := [Width]circuit.Variable{
		b.Zero(), b.Zero(), b.Constant(fr.NewElement(uint64(len(msg)))),
	}
	for off := 0; off < len(msg); off += Rate {
		for i := 0; i < Rate && off+i < len(msg); i++ {
			state[i] = b.Add(state[i], msg[off+i])
		}
		state = GadgetPermute(b, state)
	}
	if len(msg) == 0 {
		state = GadgetPermute(b, state)
	}
	// The squeeze reads only lane 0; the capacity lanes of the final
	// permutation are discarded by design (tell the soundness auditor so
	// it does not report them as forgotten outputs).
	b.MarkDiscard(state[1])
	b.MarkDiscard(state[2])
	return state[0]
}

// GadgetCompress emits the 2-to-1 compression as constraints.
func GadgetCompress(b *circuit.Builder, l, r circuit.Variable) circuit.Variable {
	state := [Width]circuit.Variable{l, r, b.Constant(fr.NewElement(2))}
	out := GadgetPermute(b, state)
	b.MarkDiscard(out[1])
	b.MarkDiscard(out[2])
	return out[0]
}

// GadgetCommit emits the commitment computation as constraints: the
// returned wire carries CommitWith(msg, o).
func GadgetCommit(b *circuit.Builder, msg []circuit.Variable, o circuit.Variable) circuit.Variable {
	buf := make([]circuit.Variable, 0, len(msg)+1)
	buf = append(buf, o)
	buf = append(buf, msg...)
	return GadgetHash(b, buf)
}

// ConstraintsPerPermutation reports the gate cost of one permutation,
// quantifying the §IV-C2 comparison against Pedersen commitments.
func ConstraintsPerPermutation() int {
	b := circuit.NewBuilder()
	s := [Width]circuit.Variable{
		b.Secret(fr.NewElement(1)), b.Secret(fr.NewElement(2)), b.Secret(fr.NewElement(3)),
	}
	before := b.NbGates()
	GadgetPermute(b, s)
	return b.NbGates() - before
}

// String describes the instantiation.
func String() string {
	return fmt.Sprintf("x^5-Poseidon-128 over BN254 Fr, t=%d, R_F=%d, R_P=%d", Width, FullRounds, PartialRounds)
}
