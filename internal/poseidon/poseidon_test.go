package poseidon

import (
	"testing"
	"testing/quick"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
)

func TestPermuteBijectiveish(t *testing.T) {
	// Distinct states map to distinct outputs.
	seen := map[string]bool{}
	for i := uint64(0); i < 30; i++ {
		out := Permute([Width]fr.Element{fr.NewElement(i), fr.Zero(), fr.Zero()})
		s := out[0].String()
		if seen[s] {
			t.Fatalf("permutation collision at %d", i)
		}
		seen[s] = true
	}
}

func TestHashBasics(t *testing.T) {
	m1 := []fr.Element{fr.NewElement(1), fr.NewElement(2), fr.NewElement(3)}
	h1 := Hash(m1)
	h1b := Hash(m1)
	if !h1.Equal(&h1b) {
		t.Fatal("hash not deterministic")
	}
	m2 := []fr.Element{fr.NewElement(1), fr.NewElement(2), fr.NewElement(4)}
	h2 := Hash(m2)
	if h1.Equal(&h2) {
		t.Fatal("trivial collision")
	}
	// Length domain separation: (1,2) vs (1,2,0).
	h3 := Hash([]fr.Element{fr.NewElement(1), fr.NewElement(2)})
	h4 := Hash([]fr.Element{fr.NewElement(1), fr.NewElement(2), fr.Zero()})
	if h3.Equal(&h4) {
		t.Fatal("length extension collision")
	}
	// Empty message hashes without panicking and is distinct.
	h5 := Hash(nil)
	if h5.Equal(&h1) {
		t.Fatal("empty hash collides")
	}
}

func TestCompress(t *testing.T) {
	a, b := fr.NewElement(11), fr.NewElement(22)
	c1 := Compress(a, b)
	c2 := Compress(b, a)
	if c1.Equal(&c2) {
		t.Fatal("compression is symmetric; it must not be")
	}
	c3 := Compress(a, b)
	if !c1.Equal(&c3) {
		t.Fatal("compression not deterministic")
	}
}

func TestCommitOpen(t *testing.T) {
	msg := []fr.Element{fr.NewElement(5), fr.NewElement(6)}
	c, o := Commit(msg)
	if !Open(msg, c, o) {
		t.Fatal("honest opening rejected")
	}
	// Binding: different message must not open.
	other := []fr.Element{fr.NewElement(5), fr.NewElement(7)}
	if Open(other, c, o) {
		t.Fatal("opened to a different message")
	}
	// Wrong blinder must not open.
	var o2 fr.Element
	one := fr.One()
	o2.Add(&o, &one)
	if Open(msg, c, o2) {
		t.Fatal("opened with wrong blinder")
	}
}

func TestCommitHiding(t *testing.T) {
	// Two commitments to the same message use fresh blinders and differ —
	// the computational hiding property (Definition 2.3) in its testable
	// form.
	msg := []fr.Element{fr.NewElement(1)}
	c1, o1 := Commit(msg)
	c2, o2 := Commit(msg)
	if o1.Equal(&o2) {
		t.Fatal("blinders repeat")
	}
	if c1.Equal(&c2) {
		t.Fatal("commitments to same message identical: not hiding")
	}
}

func TestGadgetPermuteMatchesNative(t *testing.T) {
	vals := [Width]fr.Element{fr.NewElement(3), fr.NewElement(4), fr.NewElement(5)}
	b := circuit.NewBuilder()
	state := [Width]circuit.Variable{b.Secret(vals[0]), b.Secret(vals[1]), b.Secret(vals[2])}
	out := GadgetPermute(b, state)
	want := Permute(vals)
	for i := 0; i < Width; i++ {
		if got := b.Value(out[i]); !got.Equal(&want[i]) {
			t.Fatalf("gadget permute lane %d mismatch", i)
		}
	}
	checkCompiles(t, b)
}

func TestGadgetHashMatchesNative(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5} {
		vals := make([]fr.Element, n)
		for i := range vals {
			vals[i] = fr.NewElement(uint64(i * 7))
		}
		b := circuit.NewBuilder()
		msg := make([]circuit.Variable, n)
		for i := range vals {
			msg[i] = b.Secret(vals[i])
		}
		h := GadgetHash(b, msg)
		want := Hash(vals)
		if got := b.Value(h); !got.Equal(&want) {
			t.Fatalf("n=%d: gadget hash mismatch", n)
		}
		checkCompiles(t, b)
	}
}

func TestGadgetCommitMatchesNative(t *testing.T) {
	msgVals := []fr.Element{fr.NewElement(9), fr.NewElement(8)}
	oVal := fr.NewElement(77)
	want := CommitWith(msgVals, oVal)

	b := circuit.NewBuilder()
	msg := []circuit.Variable{b.Secret(msgVals[0]), b.Secret(msgVals[1])}
	o := b.Secret(oVal)
	c := GadgetCommit(b, msg, o)
	if got := b.Value(c); !got.Equal(&want) {
		t.Fatal("gadget commit mismatch")
	}
	checkCompiles(t, b)
}

func TestGadgetCompressMatchesNative(t *testing.T) {
	b := circuit.NewBuilder()
	lv, rv := fr.NewElement(1), fr.NewElement(2)
	c := GadgetCompress(b, b.Secret(lv), b.Secret(rv))
	want := Compress(lv, rv)
	if got := b.Value(c); !got.Equal(&want) {
		t.Fatal("gadget compress mismatch")
	}
	checkCompiles(t, b)
}

func checkCompiles(t *testing.T, b *circuit.Builder) {
	t.Helper()
	cs, w, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(w); err != nil {
		t.Fatal(err)
	}
}

func TestConstraintsPerPermutation(t *testing.T) {
	n := ConstraintsPerPermutation()
	// Expect several hundred gates — the §IV-C2 point versus Pedersen.
	if n < 200 || n > 2000 {
		t.Fatalf("Poseidon permutation costs %d constraints", n)
	}
}

func TestQuickCommitBinding(t *testing.T) {
	prop := func(a, b, o uint64) bool {
		if a == b {
			return true
		}
		m1 := []fr.Element{fr.NewElement(a)}
		m2 := []fr.Element{fr.NewElement(b)}
		blinder := fr.NewElement(o)
		c := CommitWith(m1, blinder)
		return !Open(m2, c, blinder)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if String() == "" {
		t.Fatal("empty description")
	}
}

func BenchmarkPermute(b *testing.B) {
	s := [Width]fr.Element{fr.NewElement(1), fr.NewElement(2), fr.NewElement(3)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Permute(s)
	}
}

func BenchmarkHash(b *testing.B) {
	msg := make([]fr.Element, 16)
	for i := range msg {
		msg[i] = fr.NewElement(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hash(msg)
	}
}
