package transformer

import (
	"sync"
	"testing"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/core"
)

var testSys = sync.OnceValue(func() *core.System {
	s, err := core.NewTestSystem(1 << 14)
	if err != nil {
		panic(err)
	}
	return s
})

func tinyConfig() Config {
	return Config{SeqLen: 2, DModel: 3, DK: 2, DFF: 3, DOut: 2}
}

func tinySequence() [][]float64 {
	return [][]float64{
		{0.5, -0.3, 0.2},
		{-0.1, 0.4, 0.6},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := tinyConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Config{SeqLen: 0, DModel: 1, DK: 1, DFF: 1, DOut: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero seqlen accepted")
	}
	if _, err := NewBlock(bad, 1); err == nil {
		t.Fatal("NewBlock accepted bad config")
	}
}

func TestParamCount(t *testing.T) {
	c := tinyConfig()
	want := 3*3*2 + 2*3 + 3 + 3*2 + 2 // 18+6+3+6+2 = 35
	if got := c.ParamCount(); got != want {
		t.Fatalf("param count %d, want %d", got, want)
	}
}

func TestEncodeDecode(t *testing.T) {
	cfg := tinyConfig()
	d, err := cfg.EncodeSequence(tinySequence())
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != cfg.SeqLen*cfg.DModel {
		t.Fatalf("encoded length %d", len(d))
	}
	if _, err := cfg.EncodeSequence(tinySequence()[:1]); err == nil {
		t.Fatal("short sequence encoded")
	}
	if _, err := cfg.DecodeOutput(d); err == nil {
		t.Fatal("wrong-size output decoded")
	}
}

func TestApplyMatchesGadget(t *testing.T) {
	cfg := tinyConfig()
	bl, err := NewBlock(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	data, err := cfg.EncodeSequence(tinySequence())
	if err != nil {
		t.Fatal(err)
	}
	out, err := bl.Apply(data)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the gadget directly and compare wire values.
	b := circuit.NewBuilder()
	wires := make([]circuit.Variable, len(data))
	for i := range data {
		wires[i] = b.Secret(data[i])
	}
	gadgetOut := bl.Gadget(b, wires)
	if len(gadgetOut) != len(out) {
		t.Fatalf("gadget output %d wires, Apply %d", len(gadgetOut), len(out))
	}
	for i := range out {
		got := b.Value(gadgetOut[i])
		if !got.Equal(&out[i]) {
			t.Fatalf("output %d: gadget and Apply disagree", i)
		}
	}
	// The constraints are satisfiable.
	cs, w, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(w); err != nil {
		t.Fatalf("forward-pass constraints unsatisfied: %v", err)
	}
}

func TestApproximationClosesToReference(t *testing.T) {
	cfg := tinyConfig()
	bl, err := NewBlock(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	seq := tinySequence()
	data, err := cfg.EncodeSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := bl.Apply(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cfg.DecodeOutput(enc)
	if err != nil {
		t.Fatal(err)
	}
	want := bl.ReferenceForward(seq)
	for i := range want {
		for j := range want[i] {
			diff := got[i][j] - want[i][j]
			if diff < 0 {
				diff = -diff
			}
			// Cubic-Taylor softmax + fixed point: within 5% absolute on
			// these bounded activations.
			if diff > 0.05 {
				t.Fatalf("output[%d][%d]: circuit %v vs reference %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestApplyRejectsWrongSize(t *testing.T) {
	cfg := tinyConfig()
	bl, err := NewBlock(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.Apply(make(core.Dataset, 5)); err == nil {
		t.Fatal("wrong-size input accepted")
	}
}

func TestForwardProofEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("SNARK proof skipped in -short mode")
	}
	sys := testSys()
	cfg := tinyConfig()
	bl, err := NewBlock(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	data, err := cfg.EncodeSequence(tinySequence())
	if err != nil {
		t.Fatal(err)
	}
	cs, os := data.Commit()
	tp, out, _, err := sys.ProveProcessing(bl, data, cs, os)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.VerifyTransform(tp, bl); err != nil {
		t.Fatalf("inference proof rejected: %v", err)
	}
	if len(out) != cfg.SeqLen*cfg.DOut {
		t.Fatalf("derived output has %d elements", len(out))
	}
	// A different block (other weights) must not verify the same proof.
	other, err := NewBlock(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.VerifyTransform(tp, other); err == nil {
		t.Fatal("proof verified under different weights")
	}
}

func TestDeterministicWeights(t *testing.T) {
	a, err := NewBlock(tinyConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBlock(tinyConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Wq[0][0] != b.Wq[0][0] || a.B2[0] != b.B2[0] {
		t.Fatal("same seed, different weights")
	}
	c, err := NewBlock(tinyConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Wq[0][0] == c.Wq[0][0] {
		t.Fatal("different seeds, same weights")
	}
}
