package transformer

import (
	"testing"
)

// TestForwardProofLookupEndToEnd runs the inference proof with the lookup
// lowering enabled on the block and checks it verifies only under the
// lookup-enabled relation.
func TestForwardProofLookupEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("SNARK proof skipped in -short mode")
	}
	sys := testSys()
	cfg := tinyConfig()
	bl, err := NewBlock(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	bl.UseLookups = true
	data, err := cfg.EncodeSequence(tinySequence())
	if err != nil {
		t.Fatal(err)
	}
	cs, os := data.Commit()
	tp, out, _, err := sys.ProveProcessing(bl, data, cs, os)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.VerifyTransform(tp, bl); err != nil {
		t.Fatalf("lookup inference proof rejected: %v", err)
	}
	if len(out) != cfg.SeqLen*cfg.DOut {
		t.Fatalf("derived output has %d elements", len(out))
	}
	// The same weights without lookups are a different relation.
	classic, err := NewBlock(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.VerifyTransform(tp, classic); err == nil {
		t.Fatal("lookup proof verified under classic block key")
	}
}
