// Package transformer implements the §IV-E2 application: proving the
// forward computation of a transformer block — scaled dot-product attention
// followed by a two-layer feed-forward network with ReLU — over a committed
// input sequence, so that model inference can be delegated and sold as a
// verifiable data asset.
//
// One documented substitution keeps softmax in SNARK-friendly algebra: the
// row-wise exponential is replaced by its cubic Taylor approximation
// exp(z) ≈ 1 + z + z²/2 + z³/6 (accurate for the bounded scores the block
// produces), normalized with an exact fixed-point division gadget. The
// native Apply runs the gadget itself on a scratch circuit, so native and
// in-circuit results agree bit-for-bit.
package transformer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/core"
)

// Config fixes a block's dimensions (and hence the circuit shape).
type Config struct {
	// SeqLen is the number of input tokens m.
	SeqLen int
	// DModel is the input embedding width.
	DModel int
	// DK is the attention head width (queries/keys/values).
	DK int
	// DFF is the feed-forward hidden width.
	DFF int
	// DOut is the output width.
	DOut int
}

// Validate checks the dimensions.
func (c Config) Validate() error {
	if c.SeqLen <= 0 || c.DModel <= 0 || c.DK <= 0 || c.DFF <= 0 || c.DOut <= 0 {
		return errors.New("transformer: all dimensions must be positive")
	}
	return nil
}

// ParamCount returns the number of weight parameters — the "Parameters"
// column of Table I.
func (c Config) ParamCount() int {
	return 3*c.DModel*c.DK + // Wq, Wk, Wv
		c.DK*c.DFF + c.DFF + // W1, b1
		c.DFF*c.DOut + c.DOut // W2, b2
}

// Block is a transformer block with concrete weights. Weights are public
// (the model being exercised); the committed input sequence is the witness.
type Block struct {
	Cfg        Config
	Wq, Wk, Wv [][]float64 // DModel × DK
	W1         [][]float64 // DK × DFF
	B1         []float64   // DFF
	W2         [][]float64 // DFF × DOut
	B2         []float64   // DOut
	// UseLookups compiles the π_t circuit with the range-table lookup
	// lowering and custom hash gates (DESIGN.md §15); the attention
	// normalizations and ReLUs are range-check-dominated.
	UseLookups bool
}

// NewBlock builds a block with small deterministic pseudo-random weights
// (seeded), keeping activations inside the approximation's sweet spot.
func NewBlock(cfg Config, seed int64) (*Block, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		state = state*2862933555777941757 + 3037000493
		// Uniform in [-0.2, 0.2].
		return (float64(state>>11)/float64(1<<53) - 0.5) * 0.4
	}
	mat := func(r, c int) [][]float64 {
		m := make([][]float64, r)
		for i := range m {
			m[i] = make([]float64, c)
			for j := range m[i] {
				m[i][j] = next()
			}
		}
		return m
	}
	vec := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = next()
		}
		return v
	}
	return &Block{
		Cfg: cfg,
		Wq:  mat(cfg.DModel, cfg.DK),
		Wk:  mat(cfg.DModel, cfg.DK),
		Wv:  mat(cfg.DModel, cfg.DK),
		W1:  mat(cfg.DK, cfg.DFF),
		B1:  vec(cfg.DFF),
		W2:  mat(cfg.DFF, cfg.DOut),
		B2:  vec(cfg.DOut),
	}, nil
}

// EncodeSequence packs a SeqLen × DModel input into a core.Dataset.
func (c Config) EncodeSequence(seq [][]float64) (core.Dataset, error) {
	if len(seq) != c.SeqLen {
		return nil, fmt.Errorf("transformer: sequence length %d, want %d", len(seq), c.SeqLen)
	}
	out := make(core.Dataset, 0, c.SeqLen*c.DModel)
	for _, row := range seq {
		if len(row) != c.DModel {
			return nil, fmt.Errorf("transformer: row width %d, want %d", len(row), c.DModel)
		}
		for _, v := range row {
			out = append(out, circuit.FixedFromFloat(v))
		}
	}
	return out, nil
}

// DecodeOutput unpacks a SeqLen × DOut output dataset.
func (c Config) DecodeOutput(d core.Dataset) ([][]float64, error) {
	if len(d) != c.SeqLen*c.DOut {
		return nil, fmt.Errorf("transformer: output has %d elements, want %d", len(d), c.SeqLen*c.DOut)
	}
	out := make([][]float64, c.SeqLen)
	for i := range out {
		out[i] = make([]float64, c.DOut)
		for j := range out[i] {
			out[i][j] = circuit.FixedToFloat(d[i*c.DOut+j])
		}
	}
	return out, nil
}

var (
	_ core.Processor       = (*Block)(nil)
	_ core.LookupProcessor = (*Block)(nil)
)

// WantsLookupCircuit implements core.LookupProcessor.
func (bl *Block) WantsLookupCircuit() bool { return bl.UseLookups }

// Name implements core.Processor. It includes a digest of the weights:
// two blocks with equal dimensions but different parameters are different
// relations and must not share a verifying key.
func (bl *Block) Name() string {
	c := bl.Cfg
	h := fnv.New64a()
	writeMat := func(m [][]float64) {
		for _, row := range m {
			for _, v := range row {
				_ = binary.Write(h, binary.BigEndian, v)
			}
		}
	}
	writeMat(bl.Wq)
	writeMat(bl.Wk)
	writeMat(bl.Wv)
	writeMat(bl.W1)
	writeMat(bl.W2)
	_ = binary.Write(h, binary.BigEndian, bl.B1)
	_ = binary.Write(h, binary.BigEndian, bl.B2)
	suffix := ""
	if bl.UseLookups {
		suffix = "/lk"
	}
	return fmt.Sprintf("transformer/m%d/d%d/k%d/f%d/o%d/w%x%s",
		c.SeqLen, c.DModel, c.DK, c.DFF, c.DOut, h.Sum64(), suffix)
}

// Apply implements core.Processor by running the gadget on a scratch
// circuit, guaranteeing exact agreement with the proved computation.
func (bl *Block) Apply(src core.Dataset) (core.Dataset, error) {
	if len(src) != bl.Cfg.SeqLen*bl.Cfg.DModel {
		return nil, fmt.Errorf("transformer: input has %d elements, want %d",
			len(src), bl.Cfg.SeqLen*bl.Cfg.DModel)
	}
	b := circuit.NewBuilder()
	wires := make([]circuit.Variable, len(src))
	for i := range src {
		wires[i] = b.Secret(src[i])
	}
	outWires := bl.Gadget(b, wires)
	out := make(core.Dataset, len(outWires))
	for i := range outWires {
		out[i] = b.Value(outWires[i])
	}
	return out, nil
}

// Gadget implements core.Processor: the full block forward pass.
func (bl *Block) Gadget(b *circuit.Builder, src []circuit.Variable) []circuit.Variable {
	cfg := bl.Cfg
	m := cfg.SeqLen

	constMat := func(w [][]float64) [][]circuit.Variable {
		out := make([][]circuit.Variable, len(w))
		for i := range w {
			out[i] = make([]circuit.Variable, len(w[i]))
			for j := range w[i] {
				out[i][j] = b.Constant(circuit.FixedFromFloat(w[i][j]))
			}
		}
		return out
	}
	wq := constMat(bl.Wq)
	wk := constMat(bl.Wk)
	wv := constMat(bl.Wv)
	w1 := constMat(bl.W1)
	w2 := constMat(bl.W2)

	// Token rows.
	rows := make([][]circuit.Variable, m)
	for i := 0; i < m; i++ {
		rows[i] = src[i*cfg.DModel : (i+1)*cfg.DModel]
	}

	// q_i = x_i·Wq etc. (fixed-point mat-vec).
	fixedVecMat := func(x []circuit.Variable, w [][]circuit.Variable, cols int) []circuit.Variable {
		out := make([]circuit.Variable, cols)
		for j := 0; j < cols; j++ {
			acc := b.Zero()
			for i := range x {
				acc = b.Add(acc, b.FixedMul(x[i], w[i][j]))
			}
			out[j] = acc
		}
		return out
	}
	qs := make([][]circuit.Variable, m)
	ks := make([][]circuit.Variable, m)
	vs := make([][]circuit.Variable, m)
	for i := 0; i < m; i++ {
		qs[i] = fixedVecMat(rows[i], wq, cfg.DK)
		ks[i] = fixedVecMat(rows[i], wk, cfg.DK)
		vs[i] = fixedVecMat(rows[i], wv, cfg.DK)
	}

	// Attention: scores, cubic-Taylor softmax, weighted values.
	invSqrtDK := b.Constant(circuit.FixedFromFloat(1.0 / math.Sqrt(float64(cfg.DK))))
	zs := make([][]circuit.Variable, m)
	for i := 0; i < m; i++ {
		es := make([]circuit.Variable, m)
		for j := 0; j < m; j++ {
			dot := b.Zero()
			for t := 0; t < cfg.DK; t++ {
				dot = b.Add(dot, b.FixedMul(qs[i][t], ks[j][t]))
			}
			score := b.FixedMul(dot, invSqrtDK)
			es[j] = gadgetExpApprox(b, score)
		}
		sum := b.Sum(es)
		z := make([]circuit.Variable, cfg.DK)
		for t := range z {
			z[t] = b.Zero()
		}
		for j := 0; j < m; j++ {
			a := b.FixedDivPos(es[j], sum, 50)
			for t := 0; t < cfg.DK; t++ {
				z[t] = b.Add(z[t], b.FixedMul(a, vs[j][t]))
			}
		}
		zs[i] = z
	}

	// FFN: d_i = ReLU(z_i·W1 + b1)·W2 + b2.
	out := make([]circuit.Variable, 0, m*cfg.DOut)
	for i := 0; i < m; i++ {
		h := fixedVecMat(zs[i], w1, cfg.DFF)
		for j := 0; j < cfg.DFF; j++ {
			h[j] = b.Add(h[j], b.Constant(circuit.FixedFromFloat(bl.B1[j])))
			h[j] = b.ReLU(h[j], 60)
		}
		d := fixedVecMat(h, w2, cfg.DOut)
		for j := 0; j < cfg.DOut; j++ {
			d[j] = b.Add(d[j], b.Constant(circuit.FixedFromFloat(bl.B2[j])))
		}
		out = append(out, d...)
	}
	return out
}

// gadgetExpApprox emits exp(z) ≈ 1 + z + z²/2 + z³/6 in fixed point.
func gadgetExpApprox(b *circuit.Builder, z circuit.Variable) circuit.Variable {
	one := b.Constant(circuit.FixedFromFloat(1.0))
	halfC := b.Constant(circuit.FixedFromFloat(0.5))
	sixthC := b.Constant(circuit.FixedFromFloat(1.0 / 6.0))
	z2 := b.FixedMul(z, z)
	z3 := b.FixedMul(z2, z)
	acc := b.Add(one, z)
	acc = b.Add(acc, b.FixedMul(z2, halfC))
	return b.Add(acc, b.FixedMul(z3, sixthC))
}

// ReferenceForward computes the float forward pass with real softmax — used
// by tests to bound the approximation error.
func (bl *Block) ReferenceForward(seq [][]float64) [][]float64 {
	cfg := bl.Cfg
	m := cfg.SeqLen
	vecMat := func(x []float64, w [][]float64, cols int) []float64 {
		out := make([]float64, cols)
		for j := 0; j < cols; j++ {
			for i := range x {
				out[j] += x[i] * w[i][j]
			}
		}
		return out
	}
	qs := make([][]float64, m)
	ks := make([][]float64, m)
	vs := make([][]float64, m)
	for i := 0; i < m; i++ {
		qs[i] = vecMat(seq[i], bl.Wq, cfg.DK)
		ks[i] = vecMat(seq[i], bl.Wk, cfg.DK)
		vs[i] = vecMat(seq[i], bl.Wv, cfg.DK)
	}
	out := make([][]float64, m)
	for i := 0; i < m; i++ {
		es := make([]float64, m)
		sum := 0.0
		for j := 0; j < m; j++ {
			dot := 0.0
			for t := 0; t < cfg.DK; t++ {
				dot += qs[i][t] * ks[j][t]
			}
			es[j] = math.Exp(dot / math.Sqrt(float64(cfg.DK)))
			sum += es[j]
		}
		z := make([]float64, cfg.DK)
		for j := 0; j < m; j++ {
			a := es[j] / sum
			for t := 0; t < cfg.DK; t++ {
				z[t] += a * vs[j][t]
			}
		}
		h := vecMat(z, bl.W1, cfg.DFF)
		for j := range h {
			h[j] += bl.B1[j]
			if h[j] < 0 {
				h[j] = 0
			}
		}
		d := vecMat(h, bl.W2, cfg.DOut)
		for j := range d {
			d[j] += bl.B2[j]
		}
		out[i] = d
	}
	return out
}
