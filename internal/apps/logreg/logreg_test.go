package logreg

import (
	"errors"
	"sync"
	"testing"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/core"
)

var testSys = sync.OnceValue(func() *core.System {
	s, err := core.NewTestSystem(1 << 13)
	if err != nil {
		panic(err)
	}
	return s
})

// tinySamples is a small linearly separable set: y = 1 iff x0 + x1 > 1.
func tinySamples() []Sample {
	return []Sample{
		{X: []float64{0.1, 0.2}, Y: 0},
		{X: []float64{0.2, 0.1}, Y: 0},
		{X: []float64{0.3, 0.3}, Y: 0},
		{X: []float64{0.9, 0.8}, Y: 1},
		{X: []float64{0.8, 0.9}, Y: 1},
		{X: []float64{1.0, 0.7}, Y: 1},
	}
}

func TestEncodeDecodeSamples(t *testing.T) {
	samples := tinySamples()
	d, err := EncodeSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSamples(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(samples) {
		t.Fatalf("decoded %d samples", len(back))
	}
	for i := range samples {
		if back[i].Y != samples[i].Y {
			t.Fatalf("label %d mismatch", i)
		}
		for j := range samples[i].X {
			diff := back[i].X[j] - samples[i].X[j]
			if diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("feature %d/%d mismatch: %v", i, j, diff)
			}
		}
	}
	if _, err := EncodeSamples(nil); !errors.Is(err, ErrNoSamples) {
		t.Fatal("empty sample set encoded")
	}
	if _, err := DecodeSamples(d[:3]); err == nil {
		t.Fatal("truncated dataset decoded")
	}
	if _, err := EncodeSamples([]Sample{{X: []float64{1}}, {X: []float64{1, 2}}}); err == nil {
		t.Fatal("ragged samples encoded")
	}
}

func TestTrainConverges(t *testing.T) {
	model, err := Train(tinySamples(), 0.5, 0.05, 5000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The model must separate the classes.
	if p := model.Predict([]float64{0.1, 0.1}); p >= 0.5 {
		t.Fatalf("negative sample predicted %v", p)
	}
	if p := model.Predict([]float64{0.9, 0.9}); p <= 0.5 {
		t.Fatalf("positive sample predicted %v", p)
	}
	// Gradient is small at the returned parameters.
	beta := append([]float64{model.Bias}, model.Weights...)
	for _, g := range gradient(tinySamples(), beta, 0.05) {
		if g > 0.01 || g < -0.01 {
			t.Fatalf("gradient %v after convergence", g)
		}
	}
}

func TestModelEncodeDecode(t *testing.T) {
	m := Model{Bias: -1.5, Weights: []float64{0.25, 2.0}}
	d := EncodeModel(m)
	back, err := DecodeModel(d)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bias != m.Bias || back.Weights[0] != m.Weights[0] || back.Weights[1] != m.Weights[1] {
		t.Fatalf("model round trip: %+v", back)
	}
	if _, err := DecodeModel(d[:1]); err == nil {
		t.Fatal("truncated model decoded")
	}
}

func TestTrainerGadgetSatisfiable(t *testing.T) {
	samples := tinySamples()
	data, err := EncodeSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	trainer := &Trainer{N: len(samples), K: 2, Step: 0.5, Lambda: 0.05, MaxIters: 5000, Epsilon: 0.02}

	b := circuit.NewBuilder()
	wires := make([]circuit.Variable, len(data))
	for i := range data {
		wires[i] = b.Secret(data[i])
	}
	out := trainer.Gadget(b, wires)
	if len(out) != 4 { // [k, bias, w1, w2]
		t.Fatalf("gadget returned %d wires", len(out))
	}
	cs, w, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(w); err != nil {
		t.Fatalf("convergence constraints unsatisfied: %v", err)
	}
}

func TestTrainerRejectsUnconvergedModel(t *testing.T) {
	samples := tinySamples()
	data, err := EncodeSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	// A trainer that barely iterates produces a model whose gradient is
	// far from zero; the convergence predicate must fail.
	trainer := &Trainer{N: len(samples), K: 2, Step: 0.5, Lambda: 0.05, MaxIters: 1, Epsilon: 0.0005}
	b := circuit.NewBuilder()
	wires := make([]circuit.Variable, len(data))
	for i := range data {
		wires[i] = b.Secret(data[i])
	}
	trainer.Gadget(b, wires)
	cs, w, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(w); err == nil {
		t.Fatal("unconverged model satisfied the convergence predicate")
	}
}

func TestTrainerEndToEndProof(t *testing.T) {
	if testing.Short() {
		t.Skip("SNARK proof skipped in -short mode")
	}
	sys := testSys()
	samples := tinySamples()
	data, err := EncodeSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	trainer := &Trainer{N: len(samples), K: 2, Step: 0.5, Lambda: 0.05, MaxIters: 5000, Epsilon: 0.02}
	cs, os := data.Commit()
	tp, modelEnc, _, err := sys.ProveProcessing(trainer, data, cs, os)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.VerifyTransform(tp, trainer); err != nil {
		t.Fatalf("model-training proof rejected: %v", err)
	}
	model, err := DecodeModel(modelEnc)
	if err != nil {
		t.Fatal(err)
	}
	if p := model.Predict([]float64{0.9, 0.9}); p <= 0.5 {
		t.Fatalf("proved model misclassifies: %v", p)
	}
}

func TestTrainerShapeMismatch(t *testing.T) {
	trainer := &Trainer{N: 3, K: 2, Step: 0.5, Lambda: 0.05, MaxIters: 100, Epsilon: 0.05}
	data, err := EncodeSamples(tinySamples()) // 6 samples, not 3
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Apply(data); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
