package logreg

import (
	"testing"

	"github.com/zkdet/zkdet/internal/circuit"
)

// TestTrainerLookupGadgetSatisfiable compiles the convergence predicate
// under the lookup lowering and checks the witness still satisfies it —
// with several times fewer constraints than the classic compilation.
func TestTrainerLookupGadgetSatisfiable(t *testing.T) {
	samples := tinySamples()
	data, err := EncodeSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	trainer := &Trainer{N: len(samples), K: 2, Step: 0.5, Lambda: 0.05, MaxIters: 5000, Epsilon: 0.02, UseLookups: true}

	build := func(lookups bool) (int, error) {
		b := circuit.NewBuilder()
		if lookups {
			b.EnableLookups(circuit.DefaultRangeTableBits)
			b.EnableCustomGates()
		}
		wires := make([]circuit.Variable, len(data))
		for i := range data {
			wires[i] = b.Secret(data[i])
		}
		trainer.Gadget(b, wires)
		cs, w, err := b.Compile()
		if err != nil {
			return 0, err
		}
		return cs.NbConstraints(), cs.IsSatisfied(w)
	}

	classic, err := build(false)
	if err != nil {
		t.Fatalf("classic: %v", err)
	}
	lookup, err := build(true)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if lookup*3 > classic {
		t.Fatalf("lookup circuit not ≥3x smaller: %d vs %d constraints", lookup, classic)
	}
	t.Logf("convergence predicate: %d classic vs %d lookup constraints", classic, lookup)
}

// TestTrainerLookupEndToEndProof runs the full π_t pipeline with
// UseLookups set: prove, verify, and cross-check that the lookup trainer
// does not verify under the classic trainer's key (different relation).
func TestTrainerLookupEndToEndProof(t *testing.T) {
	if testing.Short() {
		t.Skip("SNARK proof skipped in -short mode")
	}
	sys := testSys()
	samples := tinySamples()
	data, err := EncodeSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	trainer := &Trainer{N: len(samples), K: 2, Step: 0.5, Lambda: 0.05, MaxIters: 5000, Epsilon: 0.02, UseLookups: true}
	cs, os := data.Commit()
	tp, modelEnc, _, err := sys.ProveProcessing(trainer, data, cs, os)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.VerifyTransform(tp, trainer); err != nil {
		t.Fatalf("lookup model-training proof rejected: %v", err)
	}
	model, err := DecodeModel(modelEnc)
	if err != nil {
		t.Fatal(err)
	}
	if p := model.Predict([]float64{0.9, 0.9}); p <= 0.5 {
		t.Fatalf("proved model misclassifies: %v", p)
	}

	classicTrainer := &Trainer{N: trainer.N, K: trainer.K, Step: trainer.Step, Lambda: trainer.Lambda, MaxIters: trainer.MaxIters, Epsilon: trainer.Epsilon}
	if err := sys.VerifyTransform(tp, classicTrainer); err == nil {
		t.Fatal("lookup proof verified under classic trainer key")
	}
}
