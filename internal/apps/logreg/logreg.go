// Package logreg implements the §IV-E1 application: training a logistic
// regression model on a dataset and proving, in zero knowledge, that the
// resulting parameters have converged — so a model can be sold as a derived
// data asset whose validity is verifiable without revealing the training
// data.
//
// Two documented substitutions keep the circuit in SNARK-friendly algebra
// (the paper's "gadget library can be of help" for exp/log):
//
//   - The sigmoid is replaced by its odd cubic approximation
//     σ(z) ≈ 1/2 + z/4 − z³/48, accurate to ~1% on |z| ≤ 2.
//   - Convergence is asserted as ‖∇J(β)‖∞ ≤ ε instead of
//     |J(β^{k+1})−J(β^k)| ≤ ε. Along a gradient step the loss change is
//     Θ(α‖∇J‖²), so the two predicates bound the same quantity while the
//     gradient form avoids an in-circuit logarithm.
package logreg

import (
	"errors"
	"fmt"
	"math"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/fr"
)

// Sample is one labelled training point.
type Sample struct {
	X []float64
	Y float64 // 0 or 1
}

// Model is a trained parameter vector (bias first).
type Model struct {
	Bias    float64
	Weights []float64
}

// Errors returned by the package.
var (
	ErrBadDataset = errors.New("logreg: malformed dataset encoding")
	ErrNoSamples  = errors.New("logreg: empty training set")
)

// EncodeSamples packs samples into a core.Dataset:
// [n, k, x_11…x_1k, y_1, …, x_n1…x_nk, y_n] in fixed point.
func EncodeSamples(samples []Sample) (core.Dataset, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	k := len(samples[0].X)
	out := core.Dataset{fr.NewElement(uint64(len(samples))), fr.NewElement(uint64(k))}
	for _, s := range samples {
		if len(s.X) != k {
			return nil, fmt.Errorf("logreg: ragged sample (want %d features)", k)
		}
		for _, x := range s.X {
			out = append(out, circuit.FixedFromFloat(x))
		}
		out = append(out, circuit.FixedFromFloat(s.Y))
	}
	return out, nil
}

// DecodeSamples reverses EncodeSamples.
func DecodeSamples(d core.Dataset) ([]Sample, error) {
	if len(d) < 2 {
		return nil, ErrBadDataset
	}
	n64, ok1 := d[0].Uint64()
	k64, ok2 := d[1].Uint64()
	if !ok1 || !ok2 {
		return nil, ErrBadDataset
	}
	n, k := int(n64), int(k64)
	if len(d) != 2+n*(k+1) {
		return nil, fmt.Errorf("%w: %d elements for n=%d k=%d", ErrBadDataset, len(d), n, k)
	}
	samples := make([]Sample, n)
	off := 2
	for i := 0; i < n; i++ {
		xs := make([]float64, k)
		for j := 0; j < k; j++ {
			xs[j] = circuit.FixedToFloat(d[off])
			off++
		}
		samples[i] = Sample{X: xs, Y: circuit.FixedToFloat(d[off])}
		off++
	}
	return samples, nil
}

// sigmoidApprox is the circuit's cubic sigmoid, mirrored natively so the
// trained model satisfies the in-circuit gradient bound.
func sigmoidApprox(z float64) float64 {
	if z > 2 {
		z = 2
	}
	if z < -2 {
		z = -2
	}
	return 0.5 + z/4 - z*z*z/48
}

// Train runs gradient descent on the L2-regularized loss (J + λ‖β‖²/2)
// with the approximated sigmoid, until the gradient's max-norm drops below
// tol (or maxIters passes). The regularizer keeps the minimizer finite —
// on separable data the unregularized loss has no minimum and β diverges
// out of the sigmoid approximation's range.
func Train(samples []Sample, step, lambda float64, maxIters int, tol float64) (Model, error) {
	if len(samples) == 0 {
		return Model{}, ErrNoSamples
	}
	k := len(samples[0].X)
	beta := make([]float64, k+1) // beta[0] is the bias
	for iter := 0; iter < maxIters; iter++ {
		grad := gradient(samples, beta, lambda)
		maxg := 0.0
		for _, g := range grad {
			if a := math.Abs(g); a > maxg {
				maxg = a
			}
		}
		if maxg <= tol {
			break
		}
		for j := range beta {
			beta[j] -= step * grad[j]
		}
	}
	return Model{Bias: beta[0], Weights: append([]float64{}, beta[1:]...)}, nil
}

func gradient(samples []Sample, beta []float64, lambda float64) []float64 {
	k := len(samples[0].X)
	grad := make([]float64, k+1)
	n := float64(len(samples))
	for _, s := range samples {
		z := beta[0]
		for j, x := range s.X {
			z += beta[j+1] * x
		}
		p := sigmoidApprox(z)
		diff := p - s.Y
		grad[0] += diff / n
		for j, x := range s.X {
			grad[j+1] += diff * x / n
		}
	}
	for j := range grad {
		grad[j] += lambda * beta[j]
	}
	return grad
}

// Predict applies the model with the approximated sigmoid.
func (m Model) Predict(x []float64) float64 {
	z := m.Bias
	for j := range x {
		z += m.Weights[j] * x[j]
	}
	return sigmoidApprox(z)
}

// EncodeModel packs a model as a core.Dataset [k, bias, w_1…w_k].
func EncodeModel(m Model) core.Dataset {
	out := core.Dataset{fr.NewElement(uint64(len(m.Weights))), circuit.FixedFromFloat(m.Bias)}
	for _, w := range m.Weights {
		out = append(out, circuit.FixedFromFloat(w))
	}
	return out
}

// DecodeModel reverses EncodeModel.
func DecodeModel(d core.Dataset) (Model, error) {
	if len(d) < 2 {
		return Model{}, ErrBadDataset
	}
	k64, ok := d[0].Uint64()
	if !ok || len(d) != int(k64)+2 {
		return Model{}, ErrBadDataset
	}
	m := Model{Bias: circuit.FixedToFloat(d[1])}
	for j := 0; j < int(k64); j++ {
		m.Weights = append(m.Weights, circuit.FixedToFloat(d[2+j]))
	}
	return m, nil
}

// Trainer is the core.Processor proving the convergence predicate: it maps
// an encoded sample set to the encoded trained model, with constraints
// binding the model to a small gradient over exactly that training data.
type Trainer struct {
	// N and K fix the circuit shape (samples × features).
	N, K int
	// Step, Lambda and MaxIters drive the native training (Lambda is the
	// L2 regularization strength, also part of the proved predicate).
	Step     float64
	Lambda   float64
	MaxIters int
	// Epsilon is the ε of the convergence predicate.
	Epsilon float64
	// UseLookups compiles the π_t circuit with the range-table lookup
	// lowering and custom hash gates, cutting the constraint count of the
	// range-check-dominated gradient bound by multiples (DESIGN.md §15).
	UseLookups bool
}

var (
	_ core.Processor       = (*Trainer)(nil)
	_ core.LookupProcessor = (*Trainer)(nil)
)

// Name implements core.Processor. The lookup flag changes the circuit
// shape, so it is part of the key.
func (t *Trainer) Name() string {
	suffix := ""
	if t.UseLookups {
		suffix = "/lk"
	}
	return fmt.Sprintf("logreg/n%d/k%d/l%g/eps%g%s", t.N, t.K, t.Lambda, t.Epsilon, suffix)
}

// WantsLookupCircuit implements core.LookupProcessor.
func (t *Trainer) WantsLookupCircuit() bool { return t.UseLookups }

// Apply implements core.Processor: native training.
func (t *Trainer) Apply(src core.Dataset) (core.Dataset, error) {
	samples, err := DecodeSamples(src)
	if err != nil {
		return nil, err
	}
	if len(samples) != t.N || len(samples[0].X) != t.K {
		return nil, fmt.Errorf("logreg: dataset is %dx%d, trainer wants %dx%d",
			len(samples), len(samples[0].X), t.N, t.K)
	}
	model, err := Train(samples, t.Step, t.Lambda, t.MaxIters, t.Epsilon/2)
	if err != nil {
		return nil, err
	}
	return EncodeModel(model), nil
}

// Gadget implements core.Processor: it allocates the trained parameters as
// witness wires and constrains ‖∇J(β)‖∞ ≤ ε over the source wires.
func (t *Trainer) Gadget(b *circuit.Builder, src []circuit.Variable) []circuit.Variable {
	if len(src) != 2+t.N*(t.K+1) {
		// Processor fixes the signature, so shape errors are deferred to
		// the builder and surface at Compile.
		b.Fail("logreg: %d source wires do not match trainer shape %dx%d (want %d)",
			len(src), t.N, t.K, 2+t.N*(t.K+1))
		out := make([]circuit.Variable, t.K+2)
		for i := range out {
			out[i] = b.Zero()
		}
		return out
	}
	// Recover the model values by training on the wires' current values.
	data := make(core.Dataset, len(src))
	for i := range src {
		data[i] = b.Value(src[i])
	}
	modelEnc, err := t.Apply(data)
	if err != nil {
		// Setup-time builds run on zero data; train on zeros yields the
		// zero model, which is fine structurally.
		modelEnc = make(core.Dataset, t.K+2)
		modelEnc[0] = fr.NewElement(uint64(t.K))
	}

	// Output wires: [k, bias, w_1..w_k].
	out := make([]circuit.Variable, t.K+2)
	out[0] = b.Constant(fr.NewElement(uint64(t.K)))
	beta := make([]circuit.Variable, t.K+1)
	for j := 0; j <= t.K; j++ {
		beta[j] = b.Secret(modelEnc[1+j])
		out[1+j] = beta[j]
	}

	// Shape header must match the declared trainer shape.
	b.AssertConst(src[0], fr.NewElement(uint64(t.N)))
	b.AssertConst(src[1], fr.NewElement(uint64(t.K)))

	// Gradient accumulators (fixed point).
	grad := make([]circuit.Variable, t.K+1)
	for j := range grad {
		grad[j] = b.Zero()
	}
	invN := circuit.FixedFromFloat(1.0 / float64(t.N))
	off := 2
	for i := 0; i < t.N; i++ {
		xs := src[off : off+t.K]
		y := src[off+t.K]
		off += t.K + 1
		// z = bias + Σ w_j x_j
		z := beta[0]
		for j := 0; j < t.K; j++ {
			z = b.Add(z, b.FixedMul(beta[j+1], xs[j]))
		}
		p := gadgetSigmoid(b, z)
		diff := b.Sub(p, y)
		scaled := b.FixedMul(diff, b.Constant(invN))
		grad[0] = b.Add(grad[0], scaled)
		for j := 0; j < t.K; j++ {
			grad[j+1] = b.Add(grad[j+1], b.FixedMul(scaled, xs[j]))
		}
	}
	lambdaC := b.Constant(circuit.FixedFromFloat(t.Lambda))
	eps := circuit.FixedFromFloat(t.Epsilon)
	for j := range grad {
		reg := b.FixedMul(lambdaC, beta[j])
		grad[j] = b.Add(grad[j], reg)
		b.AbsDiffLessOrEqual(grad[j], b.Zero(), eps, 60)
	}
	return out
}

// gadgetSigmoid emits σ(z) ≈ 1/2 + z/4 − z³/48 in fixed point.
func gadgetSigmoid(b *circuit.Builder, z circuit.Variable) circuit.Variable {
	half := b.Constant(circuit.FixedFromFloat(0.5))
	quarter := b.Constant(circuit.FixedFromFloat(0.25))
	c48 := b.Constant(circuit.FixedFromFloat(1.0 / 48.0))
	lin := b.FixedMul(z, quarter)
	z2 := b.FixedMul(z, z)
	z3 := b.FixedMul(z2, z)
	cub := b.FixedMul(z3, c48)
	s := b.Add(half, lin)
	return b.Sub(s, cub)
}
