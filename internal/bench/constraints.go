package bench

import (
	"fmt"
	"time"

	"github.com/zkdet/zkdet/internal/apps/logreg"
	"github.com/zkdet/zkdet/internal/apps/transformer"
	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/mimc"
	"github.com/zkdet/zkdet/internal/poseidon"
)

// ConstraintRow compares one gadget's constraint count under the classic
// compilation and under the plookup/custom-gate lowering (DESIGN.md §15).
type ConstraintRow struct {
	Gadget  string
	Classic int
	Lookup  int
	// Note highlights what the lowering replaces.
	Note string
}

// Ratio is the constraint reduction factor.
func (r ConstraintRow) Ratio() float64 {
	if r.Lookup == 0 {
		return 0
	}
	return float64(r.Classic) / float64(r.Lookup)
}

// countGates runs build against a fresh builder and returns the number of
// gates it appended. With lookups true the builder has the range table and
// custom gates enabled.
func countGates(lookups bool, build func(b *circuit.Builder)) int {
	b := circuit.NewBuilder()
	if lookups {
		b.EnableLookups(circuit.DefaultRangeTableBits)
		b.EnableCustomGates()
	}
	before := b.NbGates()
	build(b)
	return b.NbGates() - before
}

// compareGadget measures one gadget both ways.
func compareGadget(name, note string, build func(b *circuit.Builder)) ConstraintRow {
	return ConstraintRow{
		Gadget:  name,
		Classic: countGates(false, build),
		Lookup:  countGates(true, build),
		Note:    note,
	}
}

// ConstraintReport measures the per-gadget constraint counts behind the
// lookup-argument evaluation: range checks and comparisons (lookup rows vs
// bit decomposition), hash rounds (custom gates vs arithmetic lowering),
// and the ML predicates that compose them.
func ConstraintReport() []ConstraintRow {
	rows := []ConstraintRow{
		compareGadget("AssertRange 16-bit", "2 lookups vs 16 booleans", func(b *circuit.Builder) {
			b.AssertRange(b.Secret(fr.NewElement(1234)), 16)
		}),
		compareGadget("AssertRange 85-bit", "fixed-point rescale bound", func(b *circuit.Builder) {
			b.AssertRange(b.Secret(fr.NewElement(1234)), 85)
		}),
		compareGadget("IsLess 32-bit", "top-bit probe vs full decomposition", func(b *circuit.Builder) {
			x := b.Secret(fr.NewElement(5))
			y := b.Secret(fr.NewElement(9))
			b.IsLess(x, y, 32)
		}),
		compareGadget("FixedMul (rescale)", "two range checks per product", func(b *circuit.Builder) {
			x := b.Secret(circuit.FixedFromFloat(1.5))
			y := b.Secret(circuit.FixedFromFloat(2.5))
			b.FixedMul(x, y)
		}),
		compareGadget("ReLU 20-bit", "sign probe + select", func(b *circuit.Builder) {
			b.ReLU(b.Secret(circuit.FixedFromFloat(-1.0)), 20)
		}),
		compareGadget("MiMC block (91 rounds)", "1 custom row per round", func(b *circuit.Builder) {
			k := b.Secret(fr.NewElement(1))
			x := b.Secret(fr.NewElement(2))
			mimc.GadgetEncrypt(b, k, x)
		}),
		compareGadget("Poseidon permutation", "1 custom row per round", func(b *circuit.Builder) {
			s := [3]circuit.Variable{
				b.Secret(fr.NewElement(1)), b.Secret(fr.NewElement(2)), b.Secret(fr.NewElement(3)),
			}
			poseidon.GadgetPermute(b, s)
		}),
	}

	// Application predicates: the logreg convergence bound and a tiny
	// transformer block, both range-check-dominated.
	trainer := &logreg.Trainer{N: 6, K: 2, Step: 0.5, Lambda: 0.05, MaxIters: 50, Epsilon: 0.05}
	rows = append(rows, compareGadget(
		fmt.Sprintf("LogReg convergence (%dx%d)", trainer.N, trainer.K),
		"gradient bound per feature",
		func(b *circuit.Builder) {
			wires := make([]circuit.Variable, 2+trainer.N*(trainer.K+1))
			for i := range wires {
				wires[i] = b.Secret(fr.Element{})
			}
			wires[0] = b.Secret(fr.NewElement(uint64(trainer.N)))
			wires[1] = b.Secret(fr.NewElement(uint64(trainer.K)))
			trainer.Gadget(b, wires)
		}))

	cfgT := transformer.Config{SeqLen: 2, DModel: 2, DK: 2, DFF: 2, DOut: 2}
	if bl, err := transformer.NewBlock(cfgT, 7); err == nil {
		rows = append(rows, compareGadget(
			fmt.Sprintf("Transformer block (m=%d,d=%d)", cfgT.SeqLen, cfgT.DModel),
			"attention normalizations + ReLUs",
			func(b *circuit.Builder) {
				wires := make([]circuit.Variable, cfgT.SeqLen*cfgT.DModel)
				for i := range wires {
					wires[i] = b.Secret(fr.Element{})
				}
				bl.Gadget(b, wires)
			}))
	}
	return rows
}

// LookupProveRow is one timed π_t proving run of a logreg training proof,
// classic vs lookup-lowered.
type LookupProveRow struct {
	Task         string
	Variant      string // "classic" or "lookup"
	Constraints  int
	ProveSeconds float64
}

// LookupProveCompare times the full π_t pipeline (commit, prove) for the
// logreg convergence predicate with and without the lookup lowering: fewer
// constraints mean a smaller domain, hence fewer FFTs and smaller MSMs.
// The circuit setup is warmed before timing.
func LookupProveCompare(sys *core.System, samples int) ([]LookupProveRow, error) {
	data, trainer, err := logregWorkload(samples)
	if err != nil {
		return nil, err
	}
	cs, os := data.Commit()

	var rows []LookupProveRow
	for _, useLookups := range []bool{false, true} {
		tr := *trainer
		tr.UseLookups = useLookups
		variant := "classic"
		if useLookups {
			variant = "lookup"
		}
		// Constraint count via a direct build (mirrors the proved circuit).
		nb := countGates(useLookups, func(b *circuit.Builder) {
			wires := make([]circuit.Variable, len(data))
			for i := range data {
				wires[i] = b.Secret(data[i])
			}
			tr.Gadget(b, wires)
		})
		if _, _, _, err := sys.ProveProcessing(&tr, data, cs, os); err != nil {
			return nil, err
		}
		start := time.Now()
		if _, _, _, err := sys.ProveProcessing(&tr, data, cs, os); err != nil {
			return nil, err
		}
		rows = append(rows, LookupProveRow{
			Task:         fmt.Sprintf("LogReg π_t (%d samples)", samples),
			Variant:      variant,
			Constraints:  nb,
			ProveSeconds: time.Since(start).Seconds(),
		})
	}
	return rows, nil
}
