package bench

import (
	"sync"
	"testing"
	"time"

	"github.com/zkdet/zkdet/internal/apps/transformer"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/plonk"
)

func timeNow() time.Time                  { return time.Now() }
func timeSince(t time.Time) time.Duration { return time.Since(t) }

// One small system shared by the experiment smoke tests.
var benchSys = sync.OnceValue(func() *core.System {
	s, err := NewSystem(1 << 13)
	if err != nil {
		panic(err)
	}
	return s
})

// TestFig5SetupShape checks that setup time grows with the constraint
// count (the Figure 5 shape) at tiny scales.
func TestFig5SetupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	rows, err := Fig5Setup([]int{1 << 8, 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[1].TotalSeconds <= rows[0].TotalSeconds {
		t.Fatalf("setup time did not grow: %v then %v", rows[0].TotalSeconds, rows[1].TotalSeconds)
	}
}

func TestFig6ProofGenShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	sys := benchSys()
	rows, err := Fig6ProofGen(sys, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	// π_e grows with data size; π_k does not (it is a fixed circuit).
	if rows[1].PiESeconds <= rows[0].PiESeconds {
		t.Fatalf("π_e time did not grow: %v then %v", rows[0].PiESeconds, rows[1].PiESeconds)
	}
	ratio := rows[1].PiKSeconds / rows[0].PiKSeconds
	if ratio > 3 || ratio < 1.0/3 {
		t.Fatalf("π_k time should be flat; ratio %v", ratio)
	}
}

func TestFig7VerifyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	sys := benchSys()
	rows, err := Fig7Verify(sys, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	// ZKDET verification stays under the paper's 0.1s-scale bound.
	for _, r := range rows {
		if r.ZKDETSeconds > 0.5 {
			t.Fatalf("zkdet verification %vs at %d inputs", r.ZKDETSeconds, r.Inputs)
		}
	}
	// The ZKCP cost model's growth is easiest to see at a wider spread:
	// ℓ G1 exponentiations dominate once ℓ is large.
	start := timeNow()
	core.ZKCPVerifierCost(8)
	small := timeSince(start)
	start = timeNow()
	core.ZKCPVerifierCost(512)
	big := timeSince(start)
	if big <= small {
		t.Fatalf("zkcp cost did not grow: %v then %v", small, big)
	}
}

func TestTable2GasMagnitudes(t *testing.T) {
	sys := benchSys()
	rows, err := Table2Gas(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Table II has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Gas == 0 {
			t.Fatalf("%s: no gas measured", r.Operation)
		}
		// Within 2x of the paper in both directions.
		if r.Gas < r.PaperGas/2 || r.Gas > r.PaperGas*2 {
			t.Fatalf("%s: measured %d vs paper %d (beyond 2x)", r.Operation, r.Gas, r.PaperGas)
		}
	}
}

func TestTable1LogRegSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	sys := benchSys()
	rows, err := Table1LogReg(sys, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ProveSeconds <= 0 || rows[0].ProofBytes != plonk.ProofSize {
		t.Fatalf("row: %+v", rows[0])
	}
}

func TestTable1TransformerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	sys := benchSys()
	cfg := transformer.Config{SeqLen: 2, DModel: 2, DK: 2, DFF: 2, DOut: 2}
	rows, err := Table1Transformer(sys, []transformer.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Size != cfg.ParamCount() || rows[0].ProofBytes != plonk.ProofSize {
		t.Fatalf("row: %+v", rows[0])
	}
}

func TestProofSizeConstantAcrossScales(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	sys := benchSys()
	rows, err := ProofSizeConstant(sys, []int{2, 16})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ProofBytes != rows[1].ProofBytes {
		t.Fatalf("proof size varies: %d vs %d", rows[0].ProofBytes, rows[1].ProofBytes)
	}
}

func TestAblations(t *testing.T) {
	cipher := AblationCipher()
	if len(cipher) < 2 {
		t.Fatal("cipher ablation empty")
	}
	// MiMC per-element cost beats the boolean alternative per-element
	// (the ARX row covers only 8 bytes, ~1/4 of an element).
	if cipher[0].Constraints >= cipher[1].Constraints*4 {
		t.Fatalf("MiMC (%d) should beat boolean ARX (%d per 8 bytes)",
			cipher[0].Constraints, cipher[1].Constraints)
	}
	commit := AblationCommitment()
	if len(commit) < 2 || commit[0].Constraints == 0 {
		t.Fatal("commitment ablation empty")
	}
}

func TestAblationDecouple(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	sys := benchSys()
	rows, err := AblationDecouple(sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	// The claim is about marginal cost per additional transformation; at
	// chain length 2 the decoupled strategy should already not be slower
	// by much, and the monolithic circuits each re-prove two encryptions.
	if rows[0].TotalSeconds <= 0 || rows[1].TotalSeconds <= 0 {
		t.Fatal("no timing recorded")
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		0.12:  "120ms",
		3.11:  "3.11s",
		131.4: "2min11s",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Fatalf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}
