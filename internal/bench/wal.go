package bench

import (
	"fmt"
	"sync"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/snapshot"
	"github.com/zkdet/zkdet/internal/wal"
)

// --- Durability layer: WAL append throughput, durable vs in-memory sealing,
// --- and crash-recovery time.
//
// Three experiments characterize the durable state engine:
//
//  1. raw WAL appends — records/s and fsyncs per record across sync policies
//     and writer counts, showing what group commit buys: many concurrent
//     AppendSync callers amortize one disk flush;
//  2. sealed-transaction throughput with the durability hook attached,
//     against the in-memory chain on the identical workload — the engine's
//     acceptance criterion is staying within 2x at the default group-commit
//     window;
//  3. recovery time from a data directory: snapshot restore plus WAL-tail
//     replay, as a function of how many blocks the tail holds.

// WALAppendRow is one point of the raw append-throughput experiment.
type WALAppendRow struct {
	Mode      string // sync-each | group-commit | nosync
	Writers   int
	PayloadB  int
	Records   int
	Seconds   float64
	RecPerSec float64
	MBPerSec  float64
	Syncs     uint64 // fsyncs issued; group commit's whole point is Syncs << Records
}

// walOptions maps an experiment mode onto the log's sync policy.
func walOptions(dir, mode string) (wal.Options, error) {
	opts := wal.Options{Dir: dir}
	switch mode {
	case "sync-each":
		opts.GroupCommit = -1
	case "group-commit":
		// zero value: the default 2ms batching window
	case "nosync":
		opts.NoSync = true
	default:
		return opts, fmt.Errorf("bench: unknown WAL mode %q", mode)
	}
	return opts, nil
}

// WALAppend measures append throughput for the given sync mode: writers
// goroutines each AppendSync records/writers payloads of payloadB bytes.
func WALAppend(dir, mode string, writers, records, payloadB int) (WALAppendRow, error) {
	opts, err := walOptions(dir, mode)
	if err != nil {
		return WALAppendRow{}, err
	}
	l, err := wal.Open(opts)
	if err != nil {
		return WALAppendRow{}, err
	}
	defer l.Close()

	payload := make([]byte, payloadB)
	for i := range payload {
		payload[i] = byte(i)
	}
	per := records / writers
	errs := make(chan error, writers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.AppendSync(1, payload); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return WALAppendRow{}, err
	default:
	}
	st := l.Stats()
	total := per * writers
	return WALAppendRow{
		Mode:      mode,
		Writers:   writers,
		PayloadB:  payloadB,
		Records:   total,
		Seconds:   elapsed.Seconds(),
		RecPerSec: float64(total) / elapsed.Seconds(),
		MBPerSec:  float64(total*payloadB) / elapsed.Seconds() / (1 << 20),
		Syncs:     st.Syncs,
	}, nil
}

// WALAppendSweep runs WALAppend over modes × writer counts. dirFor must
// return a fresh directory per call (each cell gets its own log).
func WALAppendSweep(dirFor func() string, modes []string, writerCounts []int, records, payloadB int) ([]WALAppendRow, error) {
	var rows []WALAppendRow
	for _, mode := range modes {
		for _, writers := range writerCounts {
			row, err := WALAppend(dirFor(), mode, writers, records, payloadB)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// DurableRow is one point of the durable-vs-memory sealing experiment.
type DurableRow struct {
	Mode        string // memory | durable | durable-nosync
	Clients     int
	Workers     int
	Txs         int
	Seconds     float64
	TxPerSec    float64
	Slowdown    float64 // memory tx/s ÷ this mode's tx/s (1.0 for memory)
	Syncs       uint64
	Checkpoints uint64
}

// execWorkload is the same conflict-light DataNFT bounce ExecThroughput
// uses, factored out so the durable experiment can run it on a chain that
// already has the durability hook attached. It returns the transaction
// count and the timed duration.
// startRound carries the bounce parity across split runs: round r moves each
// token even→odd or odd→even depending on r's parity, so a caller resuming
// the workload must continue the round count, not restart it.
func execWorkload(c *chain.Chain, addrs []chain.Address, nonces []uint64, tokens []uint64, workers, startRound, rounds int) (int, time.Duration, error) {
	start := time.Now()
	total := 0
	for r := startRound; r < startRound+rounds; r++ {
		txs := make([]chain.Transaction, len(tokens))
		for j := range txs {
			from, to := 2*j, 2*j+1
			if r%2 == 1 {
				from, to = to, from
			}
			txs[j] = chain.Transaction{
				From: addrs[from], Contract: contracts.DataNFTName, Method: "transfer",
				Args:  contracts.EncodeArgs(contracts.U64(tokens[j]), addrs[to][:]),
				Nonce: nonces[from],
			}
			nonces[from]++
		}
		for i, out := range c.SubmitBatch(txs, workers) {
			if out.Err != nil {
				return 0, 0, fmt.Errorf("round %d tx %d: %w", r, i, out.Err)
			}
			if out.Receipt.Err != nil {
				return 0, 0, fmt.Errorf("round %d tx %d: %w", r, i, out.Receipt.Err)
			}
		}
		c.SealBlock()
		total += len(txs)
	}
	return total, time.Since(start), nil
}

// execClients derives the client addresses. Funding them is the caller's
// job: for the recovery experiment the faucet credits are part of the
// deterministic genesis a restarted engine re-creates before Recover, so
// they must not be buried inside the timed/logged workload.
func execClients(clients int) []chain.Address {
	addrs := make([]chain.Address, clients)
	for i := range addrs {
		addrs[i] = chain.AddressFromString(fmt.Sprintf("wal-client-%06d", i))
	}
	return addrs
}

func fund(c *chain.Chain, addrs []chain.Address) {
	for _, a := range addrs {
		c.Faucet(a, 1_000_000_000)
	}
}

// execSetup mints one token per client pair — the untimed prologue shared
// by every sealing mode. It seals the mint block.
func execSetup(c *chain.Chain, addrs []chain.Address, workers int) ([]uint64, []uint64, error) {
	clients := len(addrs)
	nonces := make([]uint64, clients)
	uri := []byte("bench-uri")
	commit := []byte("bench-commit")
	mints := make([]chain.Transaction, clients/2)
	for j := range mints {
		from := 2 * j
		mints[j] = chain.Transaction{
			From: addrs[from], Contract: contracts.DataNFTName, Method: "mint",
			Args:  contracts.EncodeArgs(uri, commit),
			Nonce: nonces[from],
		}
		nonces[from]++
	}
	tokens := make([]uint64, clients/2)
	for j, out := range c.SubmitBatch(mints, workers) {
		if out.Err != nil {
			return nil, nil, out.Err
		}
		if out.Receipt.Err != nil {
			return nil, nil, out.Receipt.Err
		}
		id, err := contracts.DecU64(out.Receipt.Return)
		if err != nil {
			return nil, nil, err
		}
		tokens[j] = id
	}
	c.SealBlock()
	return nonces, tokens, nil
}

// DurableExecCompare seals the identical transfer workload three ways —
// in-memory, durable at the default group commit, durable without fsync —
// and reports the slowdown each durability level costs. dirFor must return
// a fresh directory per call.
func DurableExecCompare(dirFor func() string, clients, workers, rounds int) ([]DurableRow, error) {
	if clients%2 != 0 {
		return nil, fmt.Errorf("bench: clients must be even, got %d", clients)
	}
	run := func(mode string) (DurableRow, error) {
		c := chain.New()
		if _, err := c.Deploy(contracts.DataNFTName, &contracts.DataNFT{}, contracts.DataNFTCodeSize); err != nil {
			return DurableRow{}, err
		}
		var d *snapshot.DurableStore
		if mode != "memory" {
			opts := snapshot.Options{Dir: dirFor(), CheckpointEvery: 64}
			if mode == "durable-nosync" {
				opts.WAL.NoSync = true
			}
			var err error
			if d, err = snapshot.Open(opts); err != nil {
				return DurableRow{}, err
			}
			defer d.Close()
			if _, err := d.Recover(c); err != nil {
				return DurableRow{}, err
			}
			if err := d.Attach(c); err != nil {
				return DurableRow{}, err
			}
		}
		addrs := execClients(clients)
		fund(c, addrs)
		nonces, tokens, err := execSetup(c, addrs, workers)
		if err != nil {
			return DurableRow{}, err
		}
		total, elapsed, err := execWorkload(c, addrs, nonces, tokens, workers, 0, rounds)
		if err != nil {
			return DurableRow{}, err
		}
		row := DurableRow{
			Mode:     mode,
			Clients:  clients,
			Workers:  workers,
			Txs:      total,
			Seconds:  elapsed.Seconds(),
			TxPerSec: float64(total) / elapsed.Seconds(),
		}
		if d != nil {
			if err := d.Err(); err != nil {
				return DurableRow{}, err
			}
			st := d.Stats()
			row.Syncs = st.WAL.Syncs
			row.Checkpoints = st.Checkpoints
		}
		return row, nil
	}

	var rows []DurableRow
	for _, mode := range []string{"memory", "durable", "durable-nosync"} {
		row, err := run(mode)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", mode, err)
		}
		rows = append(rows, row)
	}
	base := rows[0].TxPerSec
	for i := range rows {
		rows[i].Slowdown = base / rows[i].TxPerSec
	}
	return rows, nil
}

// RecoveryRow is one point of the crash-recovery-time experiment.
type RecoveryRow struct {
	Blocks         int // blocks sealed before the crash
	TxsPerBlock    int
	SnapshotHeight uint64 // 0 = WAL-only recovery
	WALBlocks      int    // blocks replayed from the WAL tail
	Seconds        float64
	BlocksPerSec   float64 // replayed blocks ÷ recovery time
}

// RecoveryTime seals blocks transfer-blocks into a durable data dir — with
// a mid-run checkpoint when checkpoint is true — crashes the engine, and
// times a fresh DurableStore recovering the directory.
func RecoveryTime(dir string, blocks, clients, workers int, checkpoint bool) (RecoveryRow, error) {
	addrs := execClients(clients)
	// boot re-creates the deterministic genesis a restarting node would:
	// contract deployed, clients funded, no blocks.
	boot := func() (*chain.Chain, *snapshot.DurableStore, error) {
		c := chain.New()
		if _, err := c.Deploy(contracts.DataNFTName, &contracts.DataNFT{}, contracts.DataNFTCodeSize); err != nil {
			return nil, nil, err
		}
		fund(c, addrs)
		d, err := snapshot.Open(snapshot.Options{Dir: dir, CheckpointEvery: 1 << 30})
		if err != nil {
			return nil, nil, err
		}
		return c, d, nil
	}

	c, d, err := boot()
	if err != nil {
		return RecoveryRow{}, err
	}
	if _, err := d.Recover(c); err != nil {
		return RecoveryRow{}, err
	}
	if err := d.Attach(c); err != nil {
		return RecoveryRow{}, err
	}
	nonces, tokens, err := execSetup(c, addrs, workers)
	if err != nil {
		return RecoveryRow{}, err
	}
	// execSetup sealed the mint block; fill the rest of the target height.
	rounds := blocks - 1
	if rounds < 0 {
		rounds = 0
	}
	half := rounds / 2
	if _, _, err := execWorkload(c, addrs, nonces, tokens, workers, 0, half); err != nil {
		return RecoveryRow{}, err
	}
	if checkpoint {
		if err := d.Checkpoint(); err != nil {
			return RecoveryRow{}, err
		}
	}
	if _, _, err := execWorkload(c, addrs, nonces, tokens, workers, half, rounds-half); err != nil {
		return RecoveryRow{}, err
	}
	if err := d.Err(); err != nil {
		return RecoveryRow{}, err
	}
	d.Crash()

	c2, d2, err := boot()
	if err != nil {
		return RecoveryRow{}, err
	}
	defer d2.Close()
	start := time.Now()
	rep, err := d2.Recover(c2)
	if err != nil {
		return RecoveryRow{}, err
	}
	elapsed := time.Since(start)
	if rep.Head != c.Height() {
		return RecoveryRow{}, fmt.Errorf("bench: recovered head %d, sealed %d", rep.Head, c.Height())
	}
	row := RecoveryRow{
		Blocks:         blocks,
		TxsPerBlock:    clients / 2,
		SnapshotHeight: rep.SnapshotHeight,
		WALBlocks:      rep.BlocksReplayed,
		Seconds:        elapsed.Seconds(),
	}
	if rep.BlocksReplayed > 0 {
		row.BlocksPerSec = float64(rep.BlocksReplayed) / elapsed.Seconds()
	}
	return row, nil
}

// RecoverySweep runs RecoveryTime over the block counts, WAL-only and with
// a mid-run checkpoint. dirFor must return a fresh directory per call.
func RecoverySweep(dirFor func() string, blockCounts []int, clients, workers int) ([]RecoveryRow, error) {
	var rows []RecoveryRow
	for _, checkpoint := range []bool{false, true} {
		for _, blocks := range blockCounts {
			row, err := RecoveryTime(dirFor(), blocks, clients, workers, checkpoint)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
