package bench

import (
	"fmt"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
)

// --- Execution layer: sealed tx/s, serial vs parallel batch execution ---
//
// This experiment characterizes the parallel transaction engine
// (chain.SubmitBatch): DataNFT transfers between disjoint client pairs — a
// conflict-light workload where every transaction's declared read/write set
// is private to its pair, so the scheduler puts each pair in its own group
// and the commit phase validates every speculation. Workers = 1 is the
// retained serial reference path; the engine's contract is that both
// produce bit-identical blocks, so the only thing varying here is the
// clock.

// ExecRow is one point of the execution-throughput experiment.
type ExecRow struct {
	Clients  int
	Workers  int
	Txs      int
	Seconds  float64
	TxPerSec float64
	// Engine counters over the timed batches: transactions executed
	// speculatively, speculations that committed, commit-time conflicts,
	// and serial re-executions (fallbacks + serial-only).
	Speculated, Committed, Conflicts, Serial uint64
}

// ExecThroughput measures sealed transactions per second for a population
// of clients exchanging DataNFTs in disjoint pairs, executed with the given
// worker count. Each round is one block: every pair moves its token to the
// other side, so round r+1's transfers depend on round r's committed state.
// Setup (deploy, funding, the initial mints) is excluded from the clock.
func ExecThroughput(clients, workers, rounds int) (ExecRow, error) {
	if clients%2 != 0 {
		return ExecRow{}, fmt.Errorf("bench: clients must be even, got %d", clients)
	}
	c := chain.New()
	if _, err := c.Deploy(contracts.DataNFTName, &contracts.DataNFT{}, contracts.DataNFTCodeSize); err != nil {
		return ExecRow{}, err
	}
	addrs := make([]chain.Address, clients)
	nonces := make([]uint64, clients)
	for i := range addrs {
		addrs[i] = chain.AddressFromString(fmt.Sprintf("exec-client-%06d", i))
		c.Faucet(addrs[i], 1_000_000_000)
	}

	// Setup: the even side of every pair mints the token the pair will
	// bounce. Run through the engine at the measured width (all mints
	// group on nextId, so this is also its serial-group warm-up).
	uri := []byte("bench-uri")
	commit := []byte("bench-commit")
	mints := make([]chain.Transaction, clients/2)
	for j := range mints {
		from := 2 * j
		mints[j] = chain.Transaction{
			From: addrs[from], Contract: contracts.DataNFTName, Method: "mint",
			Args:  contracts.EncodeArgs(uri, commit),
			Nonce: nonces[from],
		}
		nonces[from]++
	}
	tokens := make([]uint64, clients/2)
	for j, out := range c.SubmitBatch(mints, workers) {
		if out.Err != nil {
			return ExecRow{}, out.Err
		}
		if out.Receipt.Err != nil {
			return ExecRow{}, out.Receipt.Err
		}
		id, err := contracts.DecU64(out.Receipt.Return)
		if err != nil {
			return ExecRow{}, err
		}
		tokens[j] = id
	}
	c.SealBlock()
	specBase, commBase, confBase, serBase := c.ExecStats()

	start := time.Now()
	total := 0
	for r := 0; r < rounds; r++ {
		txs := make([]chain.Transaction, clients/2)
		for j := range txs {
			from, to := 2*j, 2*j+1
			if r%2 == 1 {
				from, to = to, from
			}
			txs[j] = chain.Transaction{
				From: addrs[from], Contract: contracts.DataNFTName, Method: "transfer",
				Args:  contracts.EncodeArgs(contracts.U64(tokens[j]), addrs[to][:]),
				Nonce: nonces[from],
			}
			nonces[from]++
		}
		for i, out := range c.SubmitBatch(txs, workers) {
			if out.Err != nil {
				return ExecRow{}, fmt.Errorf("round %d tx %d: %w", r, i, out.Err)
			}
			if out.Receipt.Err != nil {
				return ExecRow{}, fmt.Errorf("round %d tx %d: %w", r, i, out.Receipt.Err)
			}
		}
		c.SealBlock()
		total += len(txs)
	}
	elapsed := time.Since(start)

	spec, comm, conf, ser := c.ExecStats()
	return ExecRow{
		Clients:    clients,
		Workers:    workers,
		Txs:        total,
		Seconds:    elapsed.Seconds(),
		TxPerSec:   float64(total) / elapsed.Seconds(),
		Speculated: spec - specBase,
		Committed:  comm - commBase,
		Conflicts:  conf - confBase,
		Serial:     ser - serBase,
	}, nil
}

// ExecSweep runs ExecThroughput over the worker × client grid recorded in
// EXPERIMENTS.md. Rounds shrink as the population grows so every cell moves
// a comparable transaction volume.
func ExecSweep(clientSizes, workerCounts []int) ([]ExecRow, error) {
	rows := make([]ExecRow, 0, len(clientSizes)*len(workerCounts))
	for _, clients := range clientSizes {
		rounds := 4096 / clients
		if rounds < 2 {
			rounds = 2
		}
		for _, workers := range workerCounts {
			row, err := ExecThroughput(clients, workers, rounds)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
