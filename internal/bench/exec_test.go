package bench

import (
	"fmt"
	"testing"
)

// TestExecThroughputShape checks the experiment at sizes CI can afford: a
// conflict-light pair workload must speculate and commit (no conflicts, no
// serial fallbacks beyond the mint warm-up), and the parallel run must move
// the same transaction volume as the serial one. The Benchmark* variant is
// the `make bench-exec` entry point at full scale.
func TestExecThroughputShape(t *testing.T) {
	serial, err := ExecThroughput(20, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExecThroughput(20, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Txs != par.Txs || serial.Txs != 30 {
		t.Fatalf("tx volumes diverge: serial %d, parallel %d", serial.Txs, par.Txs)
	}
	if serial.Speculated != 0 {
		t.Fatalf("serial run speculated %d txs, want 0", serial.Speculated)
	}
	if par.Speculated == 0 || par.Committed == 0 {
		t.Fatalf("parallel run never speculated: %+v", par)
	}
	if par.Conflicts != 0 {
		t.Fatalf("conflict-light workload hit %d conflicts", par.Conflicts)
	}
	if par.TxPerSec <= 0 || serial.TxPerSec <= 0 {
		t.Fatalf("non-positive throughput: serial %f, parallel %f", serial.TxPerSec, par.TxPerSec)
	}
}

// BenchmarkExecThroughput reports sealed tx/s per (clients × workers) cell;
// see EXPERIMENTS.md §Execution layer for recorded numbers.
func BenchmarkExecThroughput(b *testing.B) {
	for _, clients := range []int{100, 1000, 10000} {
		rounds := 4096 / clients
		if rounds < 2 {
			rounds = 2
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("clients=%d/workers=%d", clients, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					row, err := ExecThroughput(clients, workers, rounds)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(row.TxPerSec, "tx/s")
				}
			})
		}
	}
}
