// Package bench implements the measurement harness behind every table and
// figure of the paper's evaluation (§VI). Each experiment is a function
// returning structured rows, consumed both by the root bench_test.go
// (testing.B integration) and by cmd/zkdet-bench (human-readable report).
//
// Sizes are scaled down from the paper's testbed (a from-scratch big-int
// Plonk prover on shared CI hardware versus Snarkjs on an i9-11900K); the
// quantities that must reproduce are the *shapes*: linear proving time,
// constant π_k cost, constant proof size, flat ZKDET verification versus
// growing ZKCP verification, and Table II's gas magnitudes.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/zkdet/zkdet/internal/apps/logreg"
	"github.com/zkdet/zkdet/internal/apps/transformer"
	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/mimc"
	"github.com/zkdet/zkdet/internal/plonk"
	"github.com/zkdet/zkdet/internal/poseidon"
)

// Environment describes the machine a report was measured on. The prover
// hot paths fan out across a GOMAXPROCS-bounded worker pool (see DESIGN.md
// "Parallelism model"), so recorded times are only comparable alongside
// the core count they were measured with.
func Environment() string {
	return fmt.Sprintf("%s %s/%s, %d CPU(s), GOMAXPROCS=%d",
		runtime.Version(), runtime.GOOS, runtime.GOARCH,
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
}

// newSRS builds a deterministic SRS able to carry circuits of n gates.
func newSRS(maxConstraints int) (*kzg.SRS, error) {
	n := 64
	for n < maxConstraints {
		n <<= 1
	}
	tau := fr.NewElement(0xbe_c4)
	return kzg.NewSRSFromSecret(4*n+16, &tau)
}

// NewSystem builds a deterministic core.System for the experiments.
func NewSystem(maxConstraints int) (*core.System, error) {
	return core.NewTestSystem(maxConstraints)
}

// --- Figure 5: circuit setup time vs number of constraints ---

// Fig5Row is one point of Figure 5.
type Fig5Row struct {
	Constraints       int
	SRSSeconds        float64
	PreprocessSeconds float64
	TotalSeconds      float64
}

// powerCircuit builds an n-gate squaring chain (a representative circuit
// whose size is exactly controllable).
func powerCircuit(n int) (*plonk.ConstraintSystem, []fr.Element) {
	cs := plonk.NewConstraintSystem(1)
	x := cs.NewVariable()
	val := fr.NewElement(3)
	witness := []fr.Element{fr.Zero(), val}
	cur := x
	curVal := val
	minusOne := fr.NewFromInt64(-1)
	for i := 0; i < n; i++ {
		sq := cs.NewVariable()
		var sqVal fr.Element
		sqVal.Square(&curVal)
		witness = append(witness, sqVal)
		cs.MustAddGate(plonk.Gate{QM: fr.One(), QO: minusOne, A: cur, B: cur, C: sq})
		cur, curVal = sq, sqVal
	}
	cs.MustAddGate(plonk.Gate{QL: fr.One(), QO: minusOne, A: cur, B: cur, C: 0})
	witness[0] = curVal
	return cs, witness
}

// Fig5Setup measures universal SRS generation plus circuit preprocessing
// for each constraint count.
func Fig5Setup(sizes []int) ([]Fig5Row, error) {
	rows := make([]Fig5Row, 0, len(sizes))
	for _, n := range sizes {
		start := time.Now()
		srs, err := newSRS(n)
		if err != nil {
			return nil, err
		}
		srsDur := time.Since(start)

		cs, _ := powerCircuit(n - cs0Overhead(n))
		start = time.Now()
		if _, _, err := plonk.Setup(cs, srs); err != nil {
			return nil, err
		}
		preDur := time.Since(start)
		rows = append(rows, Fig5Row{
			Constraints:       n,
			SRSSeconds:        srsDur.Seconds(),
			PreprocessSeconds: preDur.Seconds(),
			TotalSeconds:      (srsDur + preDur).Seconds(),
		})
	}
	return rows, nil
}

// cs0Overhead keeps the generated circuit at ~n constraints including the
// public-input and final equality gates.
func cs0Overhead(int) int { return 2 }

// --- Figure 6: proof generation time vs data size ---

// Fig6Row is one point of Figure 6: proving time for π_e (≈ π_p), π_t
// (duplication — a pure data comparison, like aggregation/partition) and
// π_k (constant, data-independent) at a dataset size.
type Fig6Row struct {
	Entries     int
	DataKB      float64
	PiESeconds  float64
	PiTSeconds  float64
	PiKSeconds  float64
	Constraints int
}

// Fig6ProofGen measures proof generation across dataset sizes.
func Fig6ProofGen(sys *core.System, sizes []int) ([]Fig6Row, error) {
	rows := make([]Fig6Row, 0, len(sizes))
	for _, n := range sizes {
		data := make(core.Dataset, n)
		for i := range data {
			data[i] = fr.NewElement(uint64(i + 1))
		}
		k := fr.NewElement(12345)

		// π_e: encryption + commitments (warm up setup first so the
		// measurement isolates proving, as the paper's does).
		if _, _, _, _, err := sys.EncryptAndProve(data, k); err != nil {
			return nil, err
		}
		start := time.Now()
		_, _, _, _, err := sys.EncryptAndProve(data, k)
		if err != nil {
			return nil, err
		}
		piE := time.Since(start)

		// π_t: duplication (data comparison under commitments).
		cs, os := data.Commit()
		if _, _, err := sys.ProveDuplication(data, cs, os); err != nil {
			return nil, err
		}
		start = time.Now()
		if _, _, err := sys.ProveDuplication(data, cs, os); err != nil {
			return nil, err
		}
		piT := time.Since(start)

		// π_k: key negotiation — constant size.
		seller, err := core.NewSeller(sys, data, k, core.TruePredicate{})
		if err != nil {
			return nil, err
		}
		kv := fr.NewElement(777)
		hv := core.HashChallenge(kv)
		if _, _, err := seller.NegotiateKey(kv, hv); err != nil {
			return nil, err
		}
		start = time.Now()
		if _, _, err := seller.NegotiateKey(kv, hv); err != nil {
			return nil, err
		}
		piK := time.Since(start)

		rows = append(rows, Fig6Row{
			Entries:    n,
			DataKB:     float64(n*32) / 1024,
			PiESeconds: piE.Seconds(),
			PiTSeconds: piT.Seconds(),
			PiKSeconds: piK.Seconds(),
		})
	}
	return rows, nil
}

// --- Figure 7: ZKDET vs ZKCP running time (verification) ---

// Fig7Row compares verification time at a public-input size.
type Fig7Row struct {
	Inputs       int
	ZKDETSeconds float64
	ZKCPSeconds  float64
}

// Fig7Verify measures ZKDET's Plonk verification (flat in the input size)
// against the ZKCP baseline's Groth16-style verifier (3 pairings + ℓ G1
// exponentiations, §VI-B3).
func Fig7Verify(sys *core.System, sizes []int) ([]Fig7Row, error) {
	rows := make([]Fig7Row, 0, len(sizes))
	for _, n := range sizes {
		data := make(core.Dataset, n)
		for i := range data {
			data[i] = fr.NewElement(uint64(i + 1))
		}
		k := fr.NewElement(999)
		st, _, _, proof, err := sys.EncryptAndProve(data, k)
		if err != nil {
			return nil, err
		}
		// Warm the verifying key cache.
		if err := sys.VerifyEncryption(st, proof); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := sys.VerifyEncryption(st, proof); err != nil {
			return nil, err
		}
		zkdet := time.Since(start)

		start = time.Now()
		core.ZKCPVerifierCost(n)
		zkcp := time.Since(start)

		rows = append(rows, Fig7Row{
			Inputs:       n,
			ZKDETSeconds: zkdet.Seconds(),
			ZKCPSeconds:  zkcp.Seconds(),
		})
	}
	return rows, nil
}

// --- Table I: proofs of transformation for data processing ---

// Table1Row is one row of Table I.
type Table1Row struct {
	Task         string
	Size         int // entries (logreg) or parameters (transformer)
	ProveSeconds float64
	ProofBytes   int
}

// Table2Row is one row of Table II.
type Table2Row struct {
	Operation string
	PaperGas  uint64
	Gas       uint64
}

// Table2Gas deploys the contract suite and measures every operation of
// Table II on the simulated chain.
func Table2Gas(sys *core.System) ([]Table2Row, error) {
	m, deployGas, err := core.NewMarketplace(sys, 4)
	if err != nil {
		return nil, err
	}
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")
	m.Chain.Faucet(alice, 1_000_000)
	m.Chain.Faucet(bob, 1_000_000)

	submit := func(from chain.Address, method string, args []byte) (*chain.Receipt, error) {
		r, err := m.Chain.Submit(chain.Transaction{
			From: from, Contract: contracts.DataNFTName, Method: method,
			Args: args, Nonce: m.Chain.NonceOf(from),
		})
		if err != nil {
			return nil, err
		}
		if r.Err != nil {
			return nil, r.Err
		}
		return r, nil
	}
	uri := make([]byte, 32)
	commit := make([]byte, 64)
	for i := range uri {
		uri[i] = byte(i)
	}

	mint1, err := submit(alice, "mint", contracts.EncodeArgs(uri, commit))
	if err != nil {
		return nil, err
	}
	id1, _ := contracts.DecU64(mint1.Return)
	mint2, err := submit(alice, "mint", contracts.EncodeArgs(uri, commit))
	if err != nil {
		return nil, err
	}
	id2, _ := contracts.DecU64(mint2.Return)
	// Warm bob's balance slot so transfer is measured steady-state.
	if _, err := submit(bob, "mint", contracts.EncodeArgs(uri, commit)); err != nil {
		return nil, err
	}

	transfer, err := submit(alice, "transfer", contracts.EncodeArgs(contracts.U64(id2), bob[:]))
	if err != nil {
		return nil, err
	}
	burn, err := submit(bob, "burn", contracts.EncodeArgs(contracts.U64(id2)))
	if err != nil {
		return nil, err
	}
	mint3, err := submit(alice, "mint", contracts.EncodeArgs(uri, commit))
	if err != nil {
		return nil, err
	}
	id3, _ := contracts.DecU64(mint3.Return)
	agg, err := submit(alice, "aggregate", contracts.EncodeArgs(
		contracts.U64List([]uint64{id1, id3}), uri, commit))
	if err != nil {
		return nil, err
	}
	aggID, _ := contracts.DecU64(agg.Return)
	part, err := submit(alice, "partition", contracts.EncodeArgs(
		contracts.U64(aggID), uri, commit, uri, commit))
	if err != nil {
		return nil, err
	}
	// Our partition mints every child token in one transaction; the paper
	// reports per-invocation gas on a contract that amortizes child
	// bookkeeping. Report per derived token for comparability (see
	// EXPERIMENTS.md).
	partPerChild := part.GasUsed / 2
	dup, err := submit(alice, "duplicate", contracts.EncodeArgs(contracts.U64(id1), uri, commit))
	if err != nil {
		return nil, err
	}

	return []Table2Row{
		{Operation: "ZKDET Contract Deployment", PaperGas: 1020954, Gas: deployGas.DataNFT},
		{Operation: "Verifier Contract Deployment", PaperGas: 1644969, Gas: deployGas.Verifier},
		{Operation: "Token Minting", PaperGas: 106048, Gas: mint1.GasUsed},
		{Operation: "Token Transferring", PaperGas: 36574, Gas: transfer.GasUsed},
		{Operation: "Token Burning", PaperGas: 50084, Gas: burn.GasUsed},
		{Operation: "Aggregation", PaperGas: 96780, Gas: agg.GasUsed},
		{Operation: "Partition (per derived token)", PaperGas: 83124, Gas: partPerChild},
		{Operation: "Duplication", PaperGas: 94012, Gas: dup.GasUsed},
	}, nil
}

// --- Ablations (§IV-C design choices) ---

// AblationRow compares constraint counts of design alternatives.
type AblationRow struct {
	Scheme      string
	Constraints int
	Note        string
}

// AblationCipher quantifies §IV-C1: MiMC's per-block circuit cost versus a
// boolean ARX cipher round function (the AES/SHA-style alternative),
// measured by actually building both circuits.
func AblationCipher() []AblationRow {
	mimcCost := mimc.ConstraintsPerBlock()

	// A single 16-round boolean ARX permutation on two 32-bit words: each
	// round costs two 32-bit decompositions, a modular add and xors — the
	// structure AES/SHA-class ciphers are made of.
	b := circuit.NewBuilder()
	x := b.Secret(fr.NewElement(0x12345678))
	y := b.Secret(fr.NewElement(0x9abcdef0))
	before := b.NbGates()
	for r := 0; r < 16; r++ {
		sum := b.Add(x, y)
		sumBits := b.ToBits(sum, 33) // mod 2^32 via bit truncation
		x = b.FromBits(sumBits[:32])
		yBits := b.ToBits(y, 32)
		xBits := b.ToBits(x, 32)
		z := make([]circuit.Variable, 32)
		for i := range z {
			z[i] = b.Xor(xBits[i], yBits[(i+7)%32])
		}
		y = b.FromBits(z)
	}
	arxCost := b.NbGates() - before

	return []AblationRow{
		{Scheme: "MiMC-p/p (91 rounds, x^7)", Constraints: mimcCost, Note: "per field element (~31 bytes)"},
		{Scheme: "boolean ARX (16 rounds, 64-bit state)", Constraints: arxCost, Note: "per 8 bytes — ~4x more state blocks needed per element"},
		{Scheme: "AES-128 (literature, [12])", Constraints: 160000, Note: "per 16-byte block, optimized boolean circuit"},
	}
}

// AblationCommitment quantifies §IV-C2: Poseidon versus hashing the same
// data through MiMC (Miyaguchi–Preneel) and through bit-level hashing.
func AblationCommitment() []AblationRow {
	poseidonCost := poseidon.ConstraintsPerPermutation()

	b := circuit.NewBuilder()
	k := b.Secret(fr.NewElement(1))
	x := b.Secret(fr.NewElement(2))
	before := b.NbGates()
	_ = mimc.GadgetEncrypt(b, k, x)
	mimcCost := b.NbGates() - before

	return []AblationRow{
		{Scheme: "Poseidon permutation (t=3, rate 2)", Constraints: poseidonCost, Note: "absorbs 2 elements"},
		{Scheme: "MiMC Miyaguchi–Preneel step", Constraints: mimcCost, Note: "absorbs 1 element"},
		{Scheme: "Pedersen commitment (literature, [8])", Constraints: poseidonCost * 8, Note: "~8x Poseidon per the paper"},
	}
}

// DecoupleRow compares the monolithic π_f strategy of §III-B against the
// decoupled π_e/π_t strategy of §IV-B over a two-step transformation chain.
type DecoupleRow struct {
	Strategy     string
	Proofs       int
	TotalSeconds float64
}

// AblationDecouple measures both strategies for S → D1 → D2 (duplications),
// demonstrating the "halves the cost of proof generation" claim: the
// monolithic strategy proves each ciphertext's encryption twice.
func AblationDecouple(sys *core.System, entries int) ([]DecoupleRow, error) {
	data := make(core.Dataset, entries)
	for i := range data {
		data[i] = fr.NewElement(uint64(i + 1))
	}

	// Warm up both circuit setups so the comparison isolates proving.
	if _, _, _, _, err := sys.EncryptAndProve(data, fr.NewElement(1)); err != nil {
		return nil, err
	}
	if _, err := sys.ProveMonolithicDuplication(data, fr.NewElement(2), fr.NewElement(3)); err != nil {
		return nil, err
	}
	{
		cs, os := data.Commit()
		if _, _, err := sys.ProveDuplication(data, cs, os); err != nil {
			return nil, err
		}
	}

	// Decoupled (§IV-B): 3 proofs of encryption (S, D1, D2 — each computed
	// once) + 2 proofs of transformation.
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, _, _, _, err := sys.EncryptAndProve(data, fr.NewElement(uint64(1001+i))); err != nil {
			return nil, err
		}
	}
	cS, oS := data.Commit()
	tp1, oD1, err := sys.ProveDuplication(data, cS, oS)
	if err != nil {
		return nil, err
	}
	if _, _, err := sys.ProveDuplication(data, tp1.Derived[0], oD1); err != nil {
		return nil, err
	}
	decoupled := time.Since(start)

	// Monolithic (§III-B strawman): each transformation proof embeds
	// proofs of encryption for both its source and derived ciphertexts, so
	// the chain S→D1→D2 proves 4 encryptions (D1's twice) plus the two
	// transformations inside 2 big circuits.
	start = time.Now()
	for i := 0; i < 2; i++ {
		if _, err := sys.ProveMonolithicDuplication(data,
			fr.NewElement(uint64(2000+i)), fr.NewElement(uint64(3000+i))); err != nil {
			return nil, err
		}
	}
	monolithic := time.Since(start)

	return []DecoupleRow{
		{Strategy: "decoupled π_e + π_t (§IV-B)", Proofs: 5, TotalSeconds: decoupled.Seconds()},
		{Strategy: "monolithic π_f (§III-B strawman)", Proofs: 2, TotalSeconds: monolithic.Seconds()},
	}, nil
}

// FormatSeconds renders a duration in the style of the paper's tables.
func FormatSeconds(s float64) string {
	switch {
	case s < 1:
		return fmt.Sprintf("%.0fms", s*1000)
	case s < 60:
		return fmt.Sprintf("%.2fs", s)
	default:
		return fmt.Sprintf("%dmin%02.0fs", int(s)/60, s-float64(int(s)/60*60))
	}
}

// Table1LogReg measures logistic-regression convergence proofs at several
// training-set sizes (the paper's 495/1,963/10,210-entry rows, scaled).
func Table1LogReg(sys *core.System, sampleCounts []int) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(sampleCounts))
	for _, n := range sampleCounts {
		data, trainer, err := logregWorkload(n)
		if err != nil {
			return nil, err
		}
		cs, os := data.Commit()
		// Warm the circuit setup, then time proving.
		if _, _, _, err := sys.ProveProcessing(trainer, data, cs, os); err != nil {
			return nil, err
		}
		start := time.Now()
		tp, _, _, err := sys.ProveProcessing(trainer, data, cs, os)
		if err != nil {
			return nil, err
		}
		dur := time.Since(start)
		rows = append(rows, Table1Row{
			Task:         "Logistic Regression",
			Size:         n,
			ProveSeconds: dur.Seconds(),
			ProofBytes:   len(tp.Proof.Bytes()),
		})
	}
	return rows, nil
}

// logregWorkload builds a synthetic separable training set of n samples and
// its Trainer.
func logregWorkload(n int) (core.Dataset, *logreg.Trainer, error) {
	samples := make([]logreg.Sample, n)
	for i := range samples {
		a := 0.1 + 0.5*float64(i%7)/7
		b := 0.1 + 0.5*float64(i%5)/5
		y := 0.0
		if i%2 == 1 {
			a += 0.6
			b += 0.6
			y = 1.0
		}
		samples[i] = logreg.Sample{X: []float64{a, b}, Y: y}
	}
	data, err := logreg.EncodeSamples(samples)
	if err != nil {
		return nil, nil, err
	}
	trainer := &logreg.Trainer{
		N: n, K: 2, Step: 0.5, Lambda: 0.05, MaxIters: 8000, Epsilon: 0.03,
	}
	return data, trainer, nil
}

// Table1Transformer measures transformer forward-pass proofs at two model
// sizes (the paper's 201k/1M-parameter rows, scaled).
func Table1Transformer(sys *core.System, cfgs []transformer.Config) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(cfgs))
	for i, cfg := range cfgs {
		bl, err := transformer.NewBlock(cfg, int64(40+i))
		if err != nil {
			return nil, err
		}
		seq := make([][]float64, cfg.SeqLen)
		for r := range seq {
			seq[r] = make([]float64, cfg.DModel)
			for c := range seq[r] {
				seq[r][c] = 0.3 * float64((r+c)%3-1)
			}
		}
		data, err := cfg.EncodeSequence(seq)
		if err != nil {
			return nil, err
		}
		cs, os := data.Commit()
		if _, _, _, err := sys.ProveProcessing(bl, data, cs, os); err != nil {
			return nil, err
		}
		start := time.Now()
		tp, _, _, err := sys.ProveProcessing(bl, data, cs, os)
		if err != nil {
			return nil, err
		}
		dur := time.Since(start)
		rows = append(rows, Table1Row{
			Task:         "Transformer",
			Size:         cfg.ParamCount(),
			ProveSeconds: dur.Seconds(),
			ProofBytes:   len(tp.Proof.Bytes()),
		})
	}
	return rows, nil
}

// ProofSizeConstant returns serialized proof sizes across circuit scales —
// the §VI-B3 claim that proofs are 9 G1 elements regardless of relation.
func ProofSizeConstant(sys *core.System, sizes []int) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(sizes))
	for _, n := range sizes {
		data := make(core.Dataset, n)
		for i := range data {
			data[i] = fr.NewElement(uint64(i + 1))
		}
		_, _, _, proof, err := sys.EncryptAndProve(data, fr.NewElement(7))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Task:       "π_e",
			Size:       n,
			ProofBytes: len(proof.Bytes()),
		})
	}
	return rows, nil
}
