package bench

import (
	"time"

	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/ct"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
)

// --- Confidential exchange: prove / verify / batch-verify cost ---

// CTRow is one point of the confidential-transfer benchmark: a transfer of
// the given shape, its full proof generation and verification time, the
// sigma-only (gossip pre-screen) time, and the amortized per-proof cost of
// folding BatchN range proofs into one pairing check — the seal-time path.
type CTRow struct {
	Inputs            int
	Outputs           int
	ProofBytes        int
	ProveSeconds      float64
	VerifySeconds     float64
	SigmaSeconds      float64
	BatchN            int
	BatchPerProofSecs float64
	SigmaGas          uint64
}

// ctStatement builds one deterministic transfer of the given shape with
// its secrets: inputs worth 1000·(i+1) units, outputs splitting the total.
func ctStatement(params *ct.Params, auditor *ct.AuditorKey, nIn, nOut int) (*ct.Statement, []ct.Opening, []ct.OutputSecret) {
	pub := auditor.PublicKey()
	total := uint64(0)
	ins := make([]ct.Opening, nIn)
	inComms := make([]ct.Commitment, nIn)
	for i := range ins {
		ins[i] = ct.Opening{V: 1000 * uint64(i+1), R: fr.NewElement(uint64(31 + i))}
		inComms[i] = params.Commit(ins[i].V, &ins[i].R)
		total += ins[i].V
	}
	outs := make([]ct.OutputSecret, nOut)
	outputs := make([]ct.Output, nOut)
	per := total / uint64(nOut)
	for i := range outs {
		v := per
		if i == nOut-1 {
			v = total - per*uint64(nOut-1)
		}
		outs[i] = ct.OutputSecret{
			V: v, R: fr.NewElement(uint64(71 + i)), Rho: fr.NewElement(uint64(113 + i)),
		}
		outputs[i] = params.NewOutput(&pub, v, &outs[i].R, &outs[i].Rho)
	}
	st := &ct.Statement{
		Mint:    nIn == 0,
		Inputs:  inComms,
		Outputs: outputs,
		Context: []byte("bench/ct"),
	}
	return st, ins, outs
}

// CTSweep measures the confidential-transfer pipeline over a set of
// (inputs, outputs) shapes. batchN is the fold width for the seal-time
// batch column: the per-output range proofs of batchN/outputs transfers
// folded into a single pairing check via plonk.Batch.
func CTSweep(sys *core.System, shapes [][2]int, batchN int) ([]CTRow, error) {
	params := ct.DefaultParams()
	auditor := ct.AuditorKeyFromSecret(fr.NewElement(0xbe_c7))
	pub := auditor.PublicKey()
	rp := ct.NewRangeProver(sys.SRS())
	vk, err := rp.VK()
	if err != nil {
		return nil, err
	}

	rows := make([]CTRow, 0, len(shapes))
	for _, shape := range shapes {
		nIn, nOut := shape[0], shape[1]
		st, ins, outs := ctStatement(params, auditor, nIn, nOut)

		start := time.Now()
		proof, err := ct.Prove(params, rp, &pub, st, ins, outs, nil)
		if err != nil {
			return nil, err
		}
		prove := time.Since(start).Seconds()

		start = time.Now()
		if err := ct.Verify(params, vk, &pub, st, proof); err != nil {
			return nil, err
		}
		verify := time.Since(start).Seconds()

		start = time.Now()
		if err := ct.VerifySigma(params, &pub, st, proof); err != nil {
			return nil, err
		}
		sigma := time.Since(start).Seconds()

		// Seal-time amortization: fold batchN copies of this transfer's
		// range proofs into one pairing check. The sigma part is re-checked
		// per proof (it is pairing-free), so the fold is the win.
		e := ct.Challenge(params, &pub, st, proof)
		batch := plonk.NewBatch(vk)
		added := 0
		for added < batchN {
			for i := range proof.Outputs {
				op := &proof.Outputs[i]
				if err := batch.Add(op.Range, ct.RangePublics(e, op.ZV, op.PT)); err != nil {
					return nil, err
				}
				added++
			}
		}
		start = time.Now()
		if err := batch.Check(); err != nil {
			return nil, err
		}
		perProof := time.Since(start).Seconds() / float64(added)

		rows = append(rows, CTRow{
			Inputs: nIn, Outputs: nOut,
			ProofBytes:        len(proof.Bytes()),
			ProveSeconds:      prove,
			VerifySeconds:     verify,
			SigmaSeconds:      sigma,
			BatchN:            added,
			BatchPerProofSecs: perProof,
			SigmaGas:          contracts.CTSigmaGas(nIn, nOut),
		})
	}
	return rows, nil
}
