package bench

import (
	"fmt"
	"testing"
)

// TestCTSweepShapes smoke-tests the confidential-transfer benchmark: every
// measured quantity must be positive and the proof must round-trip the
// expected wire size for its shape.
func TestCTSweepShapes(t *testing.T) {
	rows, err := CTSweep(benchSys(), [][2]int{{0, 1}, {1, 2}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ProveSeconds <= 0 || r.VerifySeconds <= 0 || r.SigmaSeconds <= 0 || r.BatchPerProofSecs <= 0 {
			t.Fatalf("non-positive timing in %+v", r)
		}
		if r.ProofBytes == 0 || r.SigmaGas == 0 || r.BatchN < 2 {
			t.Fatalf("bad row %+v", r)
		}
		// The sigma screen must be far cheaper than full verification: it
		// is what gossip runs per transaction.
		if r.SigmaSeconds > r.VerifySeconds {
			t.Fatalf("sigma screen slower than full verify: %+v", r)
		}
	}
}

// BenchmarkCTTransfer reports ms/proof for proving, verifying and
// batch-verifying confidential transfers of representative shapes.
func BenchmarkCTTransfer(b *testing.B) {
	for _, shape := range [][2]int{{0, 1}, {1, 2}, {2, 2}} {
		b.Run(fmt.Sprintf("in=%d/out=%d", shape[0], shape[1]), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := CTSweep(benchSys(), [][2]int{shape}, 4)
				if err != nil {
					b.Fatal(err)
				}
				r := rows[0]
				b.ReportMetric(r.ProveSeconds*1000, "prove-ms")
				b.ReportMetric(r.VerifySeconds*1000, "verify-ms")
				b.ReportMetric(r.SigmaSeconds*1000, "sigma-ms")
				b.ReportMetric(r.BatchPerProofSecs*1000, "batch-ms/proof")
			}
		})
	}
}
