package bench

import (
	"context"
	"fmt"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/node"
	"github.com/zkdet/zkdet/internal/p2p"
	"github.com/zkdet/zkdet/internal/storage"
)

// --- Network layer: propagation latency vs fanout, sync time vs length ---
//
// These experiments characterize the p2p subsystem rather than the paper's
// crypto: how fast a transaction floods a cluster as the gossip fanout
// grows, and how headers-first sync scales with the length of the chain a
// fresh node has to catch up on. Both run on the in-memory SimNet with a
// realistic link profile, so the numbers are deterministic shapes, not
// wire-clock claims.

// benchLink is the link profile both experiments run over: sub-millisecond
// LAN-ish latency with mild jitter and no loss (loss resilience is covered
// by the p2p package tests; here it would only add retry noise).
var benchLink = p2p.LinkProfile{
	Latency: 200 * time.Microsecond,
	Jitter:  100 * time.Microsecond,
}

// GossipRow is one point of the propagation experiment.
type GossipRow struct {
	Fanout      int
	Nodes       int
	Propagation time.Duration // mean time for one tx to reach every node
	Messages    float64       // transport sends per propagated tx
}

// gossipCluster builds a funded cluster whose members never seal, so a
// pushed transaction can only spread by gossip (first push plus pooled
// rebroadcast) and stays observable in every pool.
func gossipCluster(nodes, fanout int, sender chain.Address) (*p2p.Cluster, error) {
	return p2p.NewCluster(p2p.ClusterSpec{
		Size: nodes,
		Seed: int64(1000*nodes + fanout),
		Link: benchLink,
		Build: func(i int, id p2p.NodeID) (p2p.NodeSetup, error) {
			c := chain.New()
			c.Faucet(sender, 1_000_000)
			return p2p.NodeSetup{Inner: node.New(c, node.Config{})}, nil
		},
		Tune: func(i int, cfg *p2p.Config) {
			cfg.Fanout = fanout
			cfg.SealInterval = time.Hour // no sealing: isolate gossip
			cfg.RebroadcastInterval = 10 * time.Millisecond
		},
	})
}

// GossipPropagation measures how long one transaction takes to reach every
// node, for each fanout, averaged over txs sequential submissions.
func GossipPropagation(nodes int, fanouts []int, txs int) ([]GossipRow, error) {
	sender := chain.AddressFromString("bench-gossip")
	rows := make([]GossipRow, 0, len(fanouts))
	for _, fanout := range fanouts {
		cl, err := gossipCluster(nodes, fanout, sender)
		if err != nil {
			return nil, err
		}
		if err := cl.Start(); err != nil {
			return nil, err
		}
		var total time.Duration
		for i := 0; i < txs; i++ {
			tx := chain.Transaction{From: sender, Nonce: uint64(i)}
			start := time.Now()
			if _, err := cl.Nodes[0].Submit(tx, false); err != nil {
				cl.Stop()
				return nil, err
			}
			if err := waitAllAccepted(cl, uint64(i+1)); err != nil {
				cl.Stop()
				return nil, err
			}
			total += time.Since(start)
		}
		sent, _, _, _ := cl.Net.Stats()
		cl.Stop()
		rows = append(rows, GossipRow{
			Fanout:      fanout,
			Nodes:       nodes,
			Propagation: total / time.Duration(txs),
			Messages:    float64(sent) / float64(txs),
		})
	}
	return rows, nil
}

// waitAllAccepted blocks until every non-origin node has accepted `want`
// gossiped transactions.
func waitAllAccepted(cl *p2p.Cluster, want uint64) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, n := range cl.Nodes[1:] {
			if n.Stats().TxsAccepted < want {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		time.Sleep(200 * time.Microsecond)
	}
	return fmt.Errorf("gossip propagation stalled below %d txs", want)
}

// SyncRow is one point of the chain-sync experiment.
type SyncRow struct {
	Blocks      int
	TxsPerBlock int
	SyncTime    time.Duration
	BlocksPerS  float64
}

// ChainSync seals `length` blocks on an archive node, then starts a
// two-node cluster where the second member boots from genesis and has to
// fetch the whole chain headers-first. Reported time spans cluster start
// to head convergence.
func ChainSync(lengths []int, txsPerBlock int) ([]SyncRow, error) {
	sender := chain.AddressFromString("bench-sync")
	rows := make([]SyncRow, 0, len(lengths))
	for _, length := range lengths {
		archive, err := grownNode(sender, length, txsPerBlock)
		if err != nil {
			return nil, err
		}
		cl, err := p2p.NewCluster(p2p.ClusterSpec{
			Size: 2,
			Seed: int64(length),
			Link: benchLink,
			Build: func(i int, id p2p.NodeID) (p2p.NodeSetup, error) {
				if i == 0 {
					return p2p.NodeSetup{Inner: archive}, nil
				}
				c := chain.New()
				c.Faucet(sender, 10_000_000)
				return p2p.NodeSetup{Inner: node.New(c, node.Config{}), Store: storage.NewStore()}, nil
			},
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := cl.Start(); err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		_, err = cl.WaitConverged(ctx, uint64(length))
		cancel()
		elapsed := time.Since(start)
		cl.Stop()
		if err != nil {
			return nil, fmt.Errorf("sync of %d blocks: %w", length, err)
		}
		rows = append(rows, SyncRow{
			Blocks:      length,
			TxsPerBlock: txsPerBlock,
			SyncTime:    elapsed,
			BlocksPerS:  float64(length) / elapsed.Seconds(),
		})
	}
	return rows, nil
}

// grownNode seals `length` blocks of plain transfers on a fresh node.
func grownNode(sender chain.Address, length, txsPerBlock int) (*node.Node, error) {
	c := chain.New()
	c.Faucet(sender, 10_000_000)
	n := node.New(c, node.Config{})
	nonce := uint64(0)
	for b := 0; b < length; b++ {
		for t := 0; t < txsPerBlock; t++ {
			if _, err := n.Submit(chain.Transaction{From: sender, Nonce: nonce}); err != nil {
				return nil, err
			}
			nonce++
		}
		if _, ok := n.SealNow(); !ok {
			return nil, fmt.Errorf("seal %d produced no block", b)
		}
	}
	return n, nil
}
