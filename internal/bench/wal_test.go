package bench

import (
	"fmt"
	"testing"
)

// TestWALAppendModes checks the append experiment at CI-affordable sizes:
// every mode moves the full record count, and the durable modes actually
// fsync while nosync never does. The Benchmark* variants are the
// `make bench-wal` entry points at full scale.
func TestWALAppendModes(t *testing.T) {
	for _, mode := range []string{"sync-each", "group-commit", "nosync"} {
		row, err := WALAppend(t.TempDir(), mode, 4, 64, 256)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if row.Records != 64 {
			t.Fatalf("%s: moved %d records, want 64", mode, row.Records)
		}
		if row.RecPerSec <= 0 {
			t.Fatalf("%s: non-positive throughput: %+v", mode, row)
		}
		switch mode {
		case "nosync":
			if row.Syncs != 0 {
				t.Fatalf("nosync issued %d fsyncs", row.Syncs)
			}
		default:
			if row.Syncs == 0 {
				t.Fatalf("%s issued no fsyncs", mode)
			}
		}
	}
}

// TestWALAppendRejectsUnknownMode pins the mode validation.
func TestWALAppendRejectsUnknownMode(t *testing.T) {
	if _, err := WALAppend(t.TempDir(), "eventually", 1, 1, 1); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestDurableExecCompareShape runs the durable-vs-memory experiment small:
// three rows, memory as the 1.0x baseline, and the durable run must have
// gone through the log (appends acknowledged by fsync).
func TestDurableExecCompareShape(t *testing.T) {
	dirs := tempDirSeq(t)
	rows, err := DurableExecCompare(dirs, 10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	if rows[0].Mode != "memory" || rows[0].Slowdown != 1.0 {
		t.Fatalf("baseline row malformed: %+v", rows[0])
	}
	for _, r := range rows {
		if r.Txs != rows[0].Txs {
			t.Fatalf("tx volumes diverge: %+v vs %+v", r, rows[0])
		}
		if r.TxPerSec <= 0 {
			t.Fatalf("%s: non-positive throughput", r.Mode)
		}
	}
	if rows[1].Syncs == 0 {
		t.Fatalf("durable run never fsynced: %+v", rows[1])
	}
}

// TestRecoveryTimeShape checks both recovery shapes: WAL-only replay walks
// every sealed block, while a mid-run checkpoint shifts the prefix into a
// snapshot and leaves only the tail for replay.
func TestRecoveryTimeShape(t *testing.T) {
	walOnly, err := RecoveryTime(t.TempDir(), 6, 10, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if walOnly.SnapshotHeight != 0 {
		t.Fatalf("WAL-only run restored a snapshot: %+v", walOnly)
	}
	if walOnly.WALBlocks != walOnly.Blocks {
		t.Fatalf("WAL-only run replayed %d of %d blocks", walOnly.WALBlocks, walOnly.Blocks)
	}

	snap, err := RecoveryTime(t.TempDir(), 6, 10, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SnapshotHeight == 0 {
		t.Fatalf("checkpointed run ignored its snapshot: %+v", snap)
	}
	if snap.WALBlocks >= snap.Blocks {
		t.Fatalf("checkpointed run replayed the whole chain: %+v", snap)
	}
}

// tempDirSeq adapts testing's TempDir to the sweeps' fresh-dir-per-call
// contract.
func tempDirSeq(t *testing.T) func() string {
	return func() string { return t.TempDir() }
}

func benchDirSeq(b *testing.B) func() string {
	return func() string { return b.TempDir() }
}

// BenchmarkWALAppend reports raw WAL append throughput per (mode × writers)
// cell at 4 KiB payloads; see EXPERIMENTS.md §Durability layer for recorded
// numbers.
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []string{"sync-each", "group-commit", "nosync"} {
		for _, writers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("mode=%s/writers=%d", mode, writers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					row, err := WALAppend(b.TempDir(), mode, writers, 2048, 4096)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(row.RecPerSec, "rec/s")
					b.ReportMetric(row.MBPerSec, "MB/s")
					b.ReportMetric(float64(row.Syncs), "fsyncs")
				}
			})
		}
	}
}

// BenchmarkDurableExec reports the durable sealing slowdown against the
// in-memory chain on the identical conflict-light workload — the engine's
// within-2x acceptance criterion; see EXPERIMENTS.md §Durability layer.
func BenchmarkDurableExec(b *testing.B) {
	for _, clients := range []int{100, 1000} {
		rounds := 4096 / clients
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := DurableExecCompare(benchDirSeq(b), clients, 4, rounds)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					b.ReportMetric(r.TxPerSec, r.Mode+"-tx/s")
				}
				b.ReportMetric(rows[1].Slowdown, "durable-slowdown-x")
			}
		})
	}
}

// BenchmarkRecovery reports crash-recovery time vs chain length, WAL-only
// and snapshot-assisted; see EXPERIMENTS.md §Durability layer.
func BenchmarkRecovery(b *testing.B) {
	for _, checkpoint := range []bool{false, true} {
		for _, blocks := range []int{16, 64, 256} {
			name := fmt.Sprintf("checkpoint=%v/blocks=%d", checkpoint, blocks)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					row, err := RecoveryTime(b.TempDir(), blocks, 100, 4, checkpoint)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(row.Seconds*1000, "recovery-ms")
					b.ReportMetric(float64(row.WALBlocks), "wal-blocks")
				}
			})
		}
	}
}
