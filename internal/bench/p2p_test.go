package bench

import (
	"fmt"
	"testing"
)

// The experiment smoke tests keep the row functions honest at a scale CI
// can afford; the Benchmark* variants are the `make bench-p2p` entry
// points and report per-operation times at the full scale.

func TestGossipPropagationShape(t *testing.T) {
	rows, err := GossipPropagation(5, []int{1, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Propagation <= 0 {
			t.Fatalf("fanout %d reported non-positive propagation %v", r.Fanout, r.Propagation)
		}
	}
	// Wider fanout must not cost fewer messages: each accepting hop
	// forwards to more peers.
	if rows[1].Messages < rows[0].Messages {
		t.Fatalf("fanout 4 sent %.0f msgs/tx, fanout 1 sent %.0f", rows[1].Messages, rows[0].Messages)
	}
}

func TestChainSyncShape(t *testing.T) {
	rows, err := ChainSync([]int{4, 16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.SyncTime <= 0 || r.BlocksPerS <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	if rows[1].SyncTime < rows[0].SyncTime {
		t.Logf("16 blocks synced faster than 4 (%v < %v) — batch pipelining", rows[1].SyncTime, rows[0].SyncTime)
	}
}

// BenchmarkGossipPropagation reports the mean time for one transaction to
// reach every member of a 7-node cluster, per fanout.
func BenchmarkGossipPropagation(b *testing.B) {
	for _, fanout := range []int{1, 2, 3, 6} {
		b.Run(fmt.Sprintf("nodes=7/fanout=%d", fanout), func(b *testing.B) {
			rows, err := GossipPropagation(7, []int{fanout}, b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(rows[0].Propagation.Nanoseconds()), "ns/propagation")
			b.ReportMetric(rows[0].Messages, "msgs/tx")
		})
	}
}

// BenchmarkChainSync reports how long a fresh node takes to catch up on a
// chain of the given length (4 txs per block).
func BenchmarkChainSync(b *testing.B) {
	for _, length := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("blocks=%d", length), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := ChainSync([]int{length}, 4)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows[0].BlocksPerS, "blocks/s")
			}
		})
	}
}
