package chain

import (
	"errors"
	"fmt"
)

// Errors returned by the block import path.
var (
	ErrNotNextBlock  = errors.New("chain: block does not extend the head")
	ErrBadParent     = errors.New("chain: block parent hash mismatch")
	ErrBadBody       = errors.New("chain: block body does not match header")
	ErrPendingTxs    = errors.New("chain: cannot import with locally executed unsealed transactions")
	ErrImportFailed  = errors.New("chain: block transaction failed to replay")
	ErrStateMismatch = errors.New("chain: replayed block hash differs from imported header")
)

// Hash returns the block's header digest (number, parent, tx hashes, state
// root — the sealing time is deliberately excluded so honest replicas that
// replay the same transactions agree on the hash).
func (b *Block) Hash() Hash { return b.hash() }

// Head returns the current head block.
func (c *Chain) Head() Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blocks[len(c.blocks)-1]
}

// HeadHash returns the hash of the current head block.
func (c *Chain) HeadHash() Hash {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blocks[len(c.blocks)-1].hash()
}

// HeadersRange returns up to count sealed headers starting at block number
// from, in ascending order — the headers-first half of chain sync.
func (c *Chain) HeadersRange(from uint64, count int) []Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	if count <= 0 || from >= uint64(len(c.blocks)) {
		return nil
	}
	hi := from + uint64(count)
	if hi > uint64(len(c.blocks)) {
		hi = uint64(len(c.blocks))
	}
	out := make([]Block, hi-from)
	copy(out, c.blocks[from:hi])
	return out
}

// BlockBody returns the ordered transactions of a sealed block — the bodies
// half of chain sync. Bodies are returned in their normalized (gas-default
// applied) form, so replaying them reproduces the header's tx hashes.
func (c *Chain) BlockBody(n uint64) ([]Transaction, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n >= uint64(len(c.blocks)) {
		return nil, false
	}
	b := c.blocks[n]
	out := make([]Transaction, len(b.TxHashes))
	for i, h := range b.TxHashes {
		tx, ok := c.txs[h]
		if !ok {
			return nil, false
		}
		out[i] = tx
	}
	return out, true
}

// stateSnapshot captures everything ImportBlock mutates, so a block whose
// replay diverges from its header can be rolled back atomically. It is a
// deep copy of contract storage and accounts plus the index high-water
// marks; receipts added during the failed import are identified through
// c.pending.
type stateSnapshot struct {
	storages map[string]map[string][]byte
	accounts map[Address]account
	idxLens  map[string]int
}

// snapshotLocked deep-copies the mutable state; caller holds c.mu and the
// pending set must be empty (asserted by ImportBlock).
func (c *Chain) snapshotLocked() *stateSnapshot {
	snap := &stateSnapshot{
		storages: make(map[string]map[string][]byte, len(c.storages)),
		accounts: make(map[Address]account, len(c.accounts)),
		idxLens:  make(map[string]int, len(c.eventIdx)),
	}
	for name, st := range c.storages {
		cp := make(map[string][]byte, len(st.data))
		for k, v := range st.data {
			vc := make([]byte, len(v))
			copy(vc, v)
			cp[k] = vc
		}
		snap.storages[name] = cp
	}
	for a, acc := range c.accounts {
		snap.accounts[a] = *acc
	}
	for k, evs := range c.eventIdx {
		snap.idxLens[k] = len(evs)
	}
	return snap
}

// restoreLocked rolls state back to a snapshot, dropping the receipts and
// bodies of everything committed since (tracked via c.pending); caller
// holds c.mu.
func (c *Chain) restoreLocked(snap *stateSnapshot) {
	for name, st := range c.storages {
		if data, ok := snap.storages[name]; ok {
			st.data = data
		} else {
			st.data = make(map[string][]byte)
		}
		st.invalidate()
	}
	for a := range c.accounts {
		if _, ok := snap.accounts[a]; !ok {
			delete(c.accounts, a)
		}
	}
	for a, acc := range snap.accounts {
		cp := acc
		c.accounts[a] = &cp
	}
	for k, evs := range c.eventIdx {
		if n, ok := snap.idxLens[k]; ok {
			c.eventIdx[k] = evs[:n]
		} else {
			delete(c.eventIdx, k)
		}
	}
	for _, h := range c.pending {
		delete(c.receipts, h)
		delete(c.txs, h)
	}
	c.pending = nil
}

// ImportBlock validates a remotely sealed block against the local head,
// replays its transactions through the same execution path Submit uses, and
// appends it — the follower half of a replicated network: the sealer runs
// SealBlock, every other node runs ImportBlock and arrives at the identical
// state root and block hash.
//
// The header is checked structurally first (extends the head, parent hash
// links, body matches the header's tx hashes). Replay failures — a
// transaction that does not execute (bad nonce, unknown contract) or a
// final block hash that differs from the header — roll every mutation back
// and return an error; the caller can then treat the block (and the peer
// that served it) as invalid. Like SealBlock, the OnSeal hooks are
// dispatched in height order before returning.
//
// Importing is refused while locally executed unsealed transactions are
// pending: a node acting as block producer must seal its own work first.
func (c *Chain) ImportBlock(b Block, txs []Transaction) ([]*Receipt, error) {
	c.sealMu.Lock()
	defer c.sealMu.Unlock()

	c.mu.Lock()
	head := c.blocks[len(c.blocks)-1]
	if b.Number != head.Number+1 {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: block %d on head %d", ErrNotNextBlock, b.Number, head.Number)
	}
	if b.Parent != head.hash() {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: block %d", ErrBadParent, b.Number)
	}
	if len(txs) != len(b.TxHashes) {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %d transactions, header lists %d", ErrBadBody, len(txs), len(b.TxHashes))
	}
	for i := range txs {
		if txs[i].hash() != b.TxHashes[i] {
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: transaction %d hash mismatch", ErrBadBody, i)
		}
	}
	if n := len(c.pending); n != 0 {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %d pending", ErrPendingTxs, n)
	}

	snap := c.snapshotLocked()
	// Replay through the batch engine (serial when execWorkers is 1) —
	// identical outcomes to the Submit path by the engine's bit-identity
	// contract. A failed transaction aborts the import; transactions the
	// batch executed after it are rolled back with everything else.
	outcomes := c.submitBatchLocked(txs, c.execWorkers)
	receipts := make([]*Receipt, len(txs))
	for i := range outcomes {
		if err := outcomes[i].Err; err != nil {
			c.restoreLocked(snap)
			c.mu.Unlock()
			return nil, fmt.Errorf("%w: tx %d: %v", ErrImportFailed, i, err)
		}
		receipts[i] = outcomes[i].Receipt
	}
	sealed := Block{
		Number:    b.Number,
		Parent:    b.Parent,
		Time:      b.Time,
		TxHashes:  c.pending,
		StateRoot: c.stateRootLocked(),
	}
	if sealed.hash() != b.hash() {
		c.restoreLocked(snap)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: block %d", ErrStateMismatch, b.Number)
	}
	c.pending = nil
	c.blocks = append(c.blocks, sealed)
	hooks := c.sealHooks
	c.mu.Unlock()

	for _, fn := range hooks {
		fn(sealed, receipts)
	}
	return receipts, nil
}
