package chain

import (
	"testing"
	"time"
)

// fixedClock returns a clock that starts at base and advances by step on
// every call — deterministic but monotone, like a real node's clock.
func fixedClock(base time.Time, step time.Duration) func() time.Time {
	t := base
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

// TestReplayIdenticalUnderDifferentClocks is the determinism contract
// behind the injected chain clock (the detreplay analyzer's sanctioned
// escape hatch): two nodes replaying the same transactions under wildly
// different wall clocks must reach identical state roots and block
// hashes, because timestamps are excluded from both. Only the Time field
// itself — which is informational, never hashed — may differ.
func TestReplayIdenticalUnderDifferentClocks(t *testing.T) {
	run := func(clock func() time.Time) *Chain {
		c := NewWithClock(clock)
		alice := AddressFromString("alice")
		c.Faucet(alice, 1_000_000)
		if _, err := c.Deploy("counter", &counter{beneficiary: alice}, 1000); err != nil {
			t.Fatal(err)
		}
		for n := uint64(0); n < 3; n++ {
			if _, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: n}); err != nil {
				t.Fatal(err)
			}
			c.SealBlock()
		}
		return c
	}

	c1 := run(fixedClock(time.Unix(1_000_000, 0), time.Second))
	c2 := run(fixedClock(time.Unix(9_999_999, 0), time.Hour))

	if c1.Height() != c2.Height() {
		t.Fatalf("heights diverge: %d vs %d", c1.Height(), c2.Height())
	}
	for i := range c1.blocks {
		b1, b2 := c1.blocks[i], c2.blocks[i]
		if b1.StateRoot != b2.StateRoot {
			t.Errorf("block %d: state roots diverge under different clocks", i)
		}
		if b1.hash() != b2.hash() {
			t.Errorf("block %d: block hashes diverge under different clocks", i)
		}
		if b1.Time.Equal(b2.Time) {
			t.Errorf("block %d: timestamps coincide; the fixture clocks should differ", i)
		}
	}
}

// TestNewUsesWallClock pins New's production default: the genesis
// timestamp comes from the real clock, within a loose sanity window.
func TestNewUsesWallClock(t *testing.T) {
	before := time.Now().Add(-time.Minute)
	c := New()
	after := time.Now().Add(time.Minute)
	g := c.blocks[0].Time
	if g.Before(before) || g.After(after) {
		t.Fatalf("genesis time %v outside [%v, %v]", g, before, after)
	}
}
