package chain

import (
	"fmt"
	"sort"

	"github.com/zkdet/zkdet/internal/chain/exec"
)

// This file is the state-view half of the parallel batch executor (see
// batch.go for the engine): a txView is an execEnv that runs one
// transaction against committed chain state through a speculative overlay,
// capturing the exact read and write sets as it goes. Resources are the
// opaque strings the exec package schedules and validates on.

// Resource names. Storage slots, balances and nonces live in disjoint
// namespaces; the separators cannot occur in contract names (and key
// collisions across namespaces are prevented by the prefix byte).
func resStore(contract, key string) string { return "s\x00" + contract + "\x00" + key }
func resBal(a Address) string              { return "b\x00" + string(a[:]) }
func resNonce(a Address) string            { return "n\x00" + string(a[:]) }

// rwRecorder captures the reads of one speculative execution. Only the
// first observation of each resource is kept: within a single transaction
// the overlay is stable, so every later read of the same resource observes
// the same writers (or the transaction's own write, which needs no
// validation).
type rwRecorder struct {
	reads map[string][]int
}

func newRecorder() *rwRecorder { return &rwRecorder{reads: make(map[string][]int)} }

// read notes that the execution observed a resource whose value reflects
// the given batch-local writers (copied: group writer lists keep growing).
func (r *rwRecorder) read(res string, writers []int) {
	if _, ok := r.reads[res]; ok {
		return
	}
	r.reads[res] = append([]int(nil), writers...)
}

// accesses returns the captured read set, sorted by resource for
// deterministic validation and tests.
func (r *rwRecorder) accesses() []exec.Access {
	keys := make([]string, 0, len(r.reads))
	for k := range r.reads {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]exec.Access, len(keys))
	for i, k := range keys {
		out[i] = exec.Access{Res: k, Writers: r.reads[k]}
	}
	return out
}

// groupStore accumulates the storage writes of a group's earlier members
// so later members observe them, like serial execution would. writers[k]
// is the ordered list of batch indices that wrote slot k.
type groupStore struct {
	data    map[string][]byte
	dels    map[string]bool
	writers map[string][]int
}

// groupAcct is the account counterpart. Balance writes come in two kinds:
// absolute values (a transfer that read the balance first) and commutative
// deltas (pure credits); balAbs implies balDelta == 0.
type groupAcct struct {
	nonceSet     bool
	nonce        uint64
	nonceWriters []int
	balAbs       bool
	bal          uint64
	balDelta     uint64
	balWriters   []int
}

// groupState is the merged speculative state of one scheduled group. It is
// only ever touched by the single worker executing that group.
type groupState struct {
	stores map[string]*groupStore
	accts  map[Address]*groupAcct
}

func newGroupState() *groupState {
	return &groupState{stores: make(map[string]*groupStore), accts: make(map[Address]*groupAcct)}
}

func (g *groupState) store(name string) *groupStore {
	if s, ok := g.stores[name]; ok {
		return s
	}
	s := &groupStore{
		data:    make(map[string][]byte),
		dels:    make(map[string]bool),
		writers: make(map[string][]int),
	}
	g.stores[name] = s
	return s
}

func (g *groupState) acct(a Address) *groupAcct {
	if t, ok := g.accts[a]; ok {
		return t
	}
	t := &groupAcct{}
	g.accts[a] = t
	return t
}

// merge folds a finished member's effects into the group overlay so the
// next member observes them; idx is the member's batch index.
func (g *groupState) merge(idx int, eff *txEffects) {
	switch eff.keep {
	case keepNothing:
		return
	case keepNonce:
		ga := g.acct(eff.tx.From)
		ga.nonceSet = true
		ga.nonce = eff.tx.Nonce + 1
		ga.nonceWriters = append(ga.nonceWriters, idx)
		return
	}
	v := eff.view
	for a, t := range v.accts.m {
		if !t.nonceSet && !t.balAbs && t.balDelta == 0 {
			continue
		}
		ga := g.acct(a)
		if t.nonceSet {
			ga.nonceSet = true
			ga.nonce = t.nonce
			ga.nonceWriters = append(ga.nonceWriters, idx)
		}
		if t.balAbs {
			// t.bal was computed on top of this very group state, so it is
			// the correct new group-absolute value.
			ga.balAbs = true
			ga.bal = t.bal
			ga.balDelta = 0
			ga.balWriters = append(ga.balWriters, idx)
		} else if t.balDelta > 0 {
			if ga.balAbs {
				ga.bal += t.balDelta
			} else {
				ga.balDelta += t.balDelta
			}
			ga.balWriters = append(ga.balWriters, idx)
		}
	}
	for name, ov := range v.ovs {
		if len(ov.txd) == 0 && len(ov.txdel) == 0 {
			continue
		}
		gs := g.store(name)
		for k, val := range ov.txd {
			gs.data[k] = val
			delete(gs.dels, k)
			gs.writers[k] = append(gs.writers[k], idx)
		}
		for k := range ov.txdel {
			gs.dels[k] = true
			delete(gs.data, k)
			gs.writers[k] = append(gs.writers[k], idx)
		}
	}
}

// storeOverlay is the speculative view of one contract's storage. Reads
// fall through transaction-local writes, then the group overlay, then the
// committed base; writes stay transaction-local until the engine commits
// them. Every fall-through read is recorded together with the batch-local
// writers whose effects it observed.
type storeOverlay struct {
	name  string
	base  map[string][]byte // committed root data; never written during a batch
	grp   *groupStore       // earlier group members' writes; nil at commit time
	txd   map[string][]byte
	txdel map[string]bool
	rec   *rwRecorder
}

func (o *storeOverlay) get(key string) ([]byte, bool) {
	if o.txdel[key] {
		return nil, false
	}
	if v, ok := o.txd[key]; ok {
		return v, true
	}
	if o.grp != nil {
		if ws, touched := o.grp.writers[key]; touched {
			o.rec.read(resStore(o.name, key), ws)
			if o.grp.dels[key] {
				return nil, false
			}
			return o.grp.data[key], true
		}
	}
	o.rec.read(resStore(o.name, key), nil)
	v, ok := o.base[key]
	return v, ok
}

// exists is the existence probe Storage.Set uses for its gas charge; it
// records the same read a value fetch would (the charge is an observation
// a racing slot creator invalidates).
func (o *storeOverlay) exists(key string) bool {
	_, ok := o.get(key)
	return ok
}

func (o *storeOverlay) set(key string, value []byte) {
	cp := make([]byte, len(value))
	copy(cp, value)
	o.txd[key] = cp
	delete(o.txdel, key)
}

func (o *storeOverlay) del(key string) {
	o.txdel[key] = true
	delete(o.txd, key)
}

// txAcct is one account's transaction-local overlay entry. A balance is
// either an absolute value (balAbs, after the balance was read) or a pure
// credit delta; balAbs implies balDelta == 0.
type txAcct struct {
	nonceSet bool
	nonce    uint64
	balAbs   bool
	bal      uint64
	balDelta uint64
}

// txAccounts overlays account state the same way storeOverlay overlays
// storage. The speculative phase must not mutate chain maps, so base reads
// go through lookups that do not create account records (a missing record
// is observationally a zero balance and nonce, exactly what acct() would
// return after creating one).
type txAccounts struct {
	c   *Chain
	grp *groupState // nil at commit time
	m   map[Address]*txAcct
	rec *rwRecorder
}

func (x *txAccounts) acct(a Address) *txAcct {
	if t, ok := x.m[a]; ok {
		return t
	}
	t := &txAcct{}
	x.m[a] = t
	return t
}

// baseNonce reads the committed nonce; caller holds c.mu (the engine holds
// it for the whole batch).
func (x *txAccounts) baseNonce(a Address) uint64 {
	if acc, ok := x.c.accounts[a]; ok {
		return acc.nonce
	}
	return 0
}

// baseBalance reads the committed balance; caller holds c.mu (the engine
// holds it for the whole batch).
func (x *txAccounts) baseBalance(a Address) uint64 {
	if acc, ok := x.c.accounts[a]; ok {
		return acc.balance
	}
	return 0
}

func (x *txAccounts) nonce(a Address) uint64 {
	t := x.acct(a)
	if t.nonceSet {
		return t.nonce
	}
	if x.grp != nil {
		if g, ok := x.grp.accts[a]; ok && g.nonceSet {
			x.rec.read(resNonce(a), g.nonceWriters)
			return g.nonce
		}
	}
	x.rec.read(resNonce(a), nil)
	return x.baseNonce(a)
}

func (x *txAccounts) setNonce(a Address, n uint64) {
	t := x.acct(a)
	t.nonceSet = true
	t.nonce = n
}

// balance returns the spendable balance as observed through the overlays,
// materializing any pending local delta into an absolute value — once a
// balance has been read, later writes to it are order-sensitive, exactly
// as in serial execution.
func (x *txAccounts) balance(a Address) uint64 {
	t := x.acct(a)
	if t.balAbs {
		return t.bal
	}
	t.bal = x.observeBalance(a) + t.balDelta
	t.balAbs = true
	t.balDelta = 0
	return t.bal
}

func (x *txAccounts) observeBalance(a Address) uint64 {
	if x.grp != nil {
		if g, ok := x.grp.accts[a]; ok && len(g.balWriters) > 0 {
			x.rec.read(resBal(a), g.balWriters)
			if g.balAbs {
				return g.bal
			}
			return x.baseBalance(a) + g.balDelta
		}
	}
	x.rec.read(resBal(a), nil)
	return x.baseBalance(a)
}

// credit adds value without observing the balance — the commutative case.
func (x *txAccounts) credit(a Address, amount uint64) {
	t := x.acct(a)
	if t.balAbs {
		t.bal += amount
	} else {
		t.balDelta += amount
	}
}

// transferValue mirrors Chain.transferLocked (same error text: receipts
// embed it) against the overlay.
func (x *txAccounts) transferValue(from, to Address, amount uint64) error {
	b := x.balance(from)
	if b < amount {
		return fmt.Errorf("%w: %d < %d", ErrInsufficientFund, b, amount)
	}
	x.acct(from).bal = b - amount
	x.credit(to, amount)
	return nil
}

// txView is the execEnv one batched transaction executes against: account
// and storage overlays over committed chain state (plus the group overlay
// during speculation), with full read/write capture.
type txView struct {
	c        *Chain
	blockNum uint64
	accts    *txAccounts
	stores   map[string]*Storage
	ovs      map[string]*storeOverlay
	grp      *groupState // nil at commit time
	rec      *rwRecorder
}

// newTxView returns a view over the chain's committed state; caller holds
// c.mu (the engine holds it for the whole batch). grp is nil for
// commit-time execution.
func (c *Chain) newTxView(grp *groupState, blockNum uint64) *txView {
	rec := newRecorder()
	return &txView{
		c:        c,
		blockNum: blockNum,
		accts:    &txAccounts{c: c, grp: grp, m: make(map[Address]*txAcct), rec: rec},
		stores:   make(map[string]*Storage),
		ovs:      make(map[string]*storeOverlay),
		grp:      grp,
		rec:      rec,
	}
}

// blockNumber implements execEnv; the whole batch runs at one height.
func (v *txView) blockNumber() uint64 { return v.blockNum }

func (v *txView) transferValue(from, to Address, amount uint64) error {
	return v.accts.transferValue(from, to, amount)
}

// getContract implements execEnv; the contracts map is never mutated
// during a batch, so concurrent speculative reads are safe.
func (v *txView) getContract(name string) (Contract, bool) {
	ct, ok := v.c.contracts[name]
	return ct, ok
}

// storeFor implements execEnv, returning (and caching) the overlay view of
// a contract's storage.
func (v *txView) storeFor(name string) *Storage {
	if s, ok := v.stores[name]; ok {
		return s
	}
	var base map[string][]byte
	if root, ok := v.c.storages[name]; ok {
		base = root.data
	}
	ov := &storeOverlay{
		name:  name,
		base:  base,
		txd:   make(map[string][]byte),
		txdel: make(map[string]bool),
		rec:   v.rec,
	}
	if v.grp != nil {
		ov.grp = v.grp.stores[name] // nil when no group member wrote it yet
	}
	s := &Storage{ov: ov}
	v.stores[name] = s
	v.ovs[name] = ov
	return s
}

// keepLevel says which of a transaction's buffered effects survive, per
// submitLocked's outcome paths.
type keepLevel uint8

const (
	keepNothing keepLevel = iota // malformed transaction: state untouched
	keepNonce                    // revert (and the unknown-contract quirk): nonce advances
	keepAll                      // success: everything
)

// txEffects is the buffered outcome of one view execution: the receipt (or
// Go-level error), which effects to keep, and the captured read and write
// sets the commit phase validates and records.
type txEffects struct {
	tx      Transaction // normalized (gas default applied)
	hash    Hash
	receipt *Receipt
	goErr   error
	keep    keepLevel
	view    *txView
	reads   []exec.Access
	writes  []string
}

// runTx executes one transaction against the view, mirroring
// submitLocked's observable semantics path for path — same receipts, gas,
// error strings, and net state effects. The one behavioral quirk
// (submitLocked leaves the sender nonce advanced on the unknown-contract
// error) is replicated, not fixed: import replay must stay bit-identical.
func (v *txView) runTx(tx Transaction) *txEffects {
	eff := &txEffects{view: v, tx: tx, keep: keepNothing}
	senderNonce := v.accts.nonce(tx.From)
	if tx.Nonce != senderNonce {
		eff.goErr = fmt.Errorf("%w: got %d, want %d", ErrBadNonce, tx.Nonce, senderNonce)
		return eff
	}
	if tx.GasLimit == 0 {
		tx.GasLimit = DefaultGasLimit
	}
	eff.tx = tx
	eff.hash = tx.hash()
	receipt := &Receipt{TxHash: eff.hash}
	gas := NewGasMeter(tx.GasLimit)
	if err := gas.Charge(GasTxBase + uint64(len(tx.Args))*GasCalldataByte); err != nil {
		eff.goErr = err
		return eff
	}

	if tx.Contract == "" {
		if tx.Value > 0 && tx.To == (Address{}) {
			eff.goErr = ErrNoRecipient
			return eff
		}
		if err := v.transferValue(tx.From, tx.To, tx.Value); err != nil {
			eff.goErr = err
			return eff
		}
		v.accts.setNonce(tx.From, tx.Nonce+1)
		receipt.GasUsed = gas.Used()
		eff.receipt = receipt
		eff.keep = keepAll
		return eff
	}

	contract, ok := v.getContract(tx.Contract)
	if !ok {
		v.accts.setNonce(tx.From, tx.Nonce+1)
		eff.goErr = fmt.Errorf("%w: %s", ErrUnknownContract, tx.Contract)
		eff.keep = keepNonce
		return eff
	}
	if tx.Value > 0 {
		if err := v.transferValue(tx.From, contractAddress(tx.Contract), tx.Value); err != nil {
			eff.goErr = err
			return eff
		}
	}
	v.accts.setNonce(tx.From, tx.Nonce+1)
	ctx := &CallContext{
		Sender: tx.From,
		Value:  tx.Value,
		Gas:    gas,
		Store:  v.storeFor(tx.Contract).metered(gas, nil),
		env:    v,
		name:   tx.Contract,
	}
	ret, err := contract.Call(ctx, tx.Method, tx.Args)
	receipt.GasUsed = gas.Used()
	if err != nil {
		receipt.Err = fmt.Errorf("%w: %s.%s: %w", ErrReverted, tx.Contract, tx.Method, err)
		eff.keep = keepNonce // state rolled back, nonce still advances
	} else {
		receipt.Return = ret
		receipt.Logs = ctx.logs
		eff.keep = keepAll
	}
	eff.receipt = receipt
	return eff
}

// finalize freezes the captured read set and derives the written-resource
// list matching exactly what applyEffectsLocked will mutate.
func (eff *txEffects) finalize() {
	eff.reads = eff.view.rec.accesses()
	switch eff.keep {
	case keepNothing:
		return
	case keepNonce:
		eff.writes = []string{resNonce(eff.tx.From)}
		return
	}
	v := eff.view
	var ws []string
	for a, t := range v.accts.m {
		if t.nonceSet {
			ws = append(ws, resNonce(a))
		}
		if t.balAbs || t.balDelta > 0 {
			ws = append(ws, resBal(a))
		}
	}
	for name, ov := range v.ovs {
		for k := range ov.txd {
			ws = append(ws, resStore(name, k))
		}
		for k := range ov.txdel {
			ws = append(ws, resStore(name, k))
		}
	}
	sort.Strings(ws)
	eff.writes = ws
}

// applyEffectsLocked commits a finished execution's surviving effects to
// live chain state, in batch order; caller holds c.mu.
func (c *Chain) applyEffectsLocked(eff *txEffects) {
	switch eff.keep {
	case keepNothing:
	case keepNonce:
		c.acct(eff.tx.From).nonce = eff.tx.Nonce + 1
	case keepAll:
		v := eff.view
		for a, t := range v.accts.m {
			if !t.nonceSet && !t.balAbs && t.balDelta == 0 {
				continue
			}
			acc := c.acct(a)
			if t.nonceSet {
				acc.nonce = t.nonce
			}
			if t.balAbs {
				acc.balance = t.bal
			} else {
				acc.balance += t.balDelta
			}
		}
		for name, ov := range v.ovs {
			if len(ov.txd) == 0 && len(ov.txdel) == 0 {
				continue
			}
			root := c.storages[name]
			for k, val := range ov.txd {
				root.data[k] = val
			}
			for k := range ov.txdel {
				delete(root.data, k)
			}
			root.invalidate()
		}
	}
	if eff.goErr == nil {
		c.commitTx(eff.tx, eff.hash, eff.receipt)
	}
}
