// Package chain implements the blockchain substrate ZKDET runs on: an
// account model with native balances, gas-metered contract execution, event
// logs, and a single-sealer block producer with hash-linked blocks.
//
// The paper deploys on Ethereum's Rinkeby testnet; this package stands in
// for it with the same standard assumptions (§IV-A): tamper-resistance
// (hash-linked blocks, VerifyIntegrity), consistency (a single serialized
// state machine), and public visibility of all transactions. Contracts are
// native Go objects charged under the EVM gas schedule in gas.go, which is
// what lets the repo reproduce Table II.
package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/zkdet/zkdet/internal/chain/exec"
)

// Address identifies an account (20 bytes, Ethereum-style).
type Address [20]byte

// String returns the 0x-prefixed hex form of the address.
func (a Address) String() string { return "0x" + hex.EncodeToString(a[:]) }

// AddressFromHex parses a 0x-prefixed (or bare) hex address.
func AddressFromHex(s string) (Address, error) {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	var a Address
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(a) {
		return Address{}, fmt.Errorf("chain: bad address %q", s)
	}
	copy(a[:], raw)
	return a, nil
}

// Hash is a 32-byte digest.
type Hash [32]byte

// String returns the 0x-prefixed hex form of the hash.
func (h Hash) String() string { return "0x" + hex.EncodeToString(h[:]) }

// HashFromHex parses a 0x-prefixed (or bare) hex hash.
func HashFromHex(s string) (Hash, error) {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	var h Hash
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(h) {
		return Hash{}, fmt.Errorf("chain: bad hash %q", s)
	}
	copy(h[:], raw)
	return h, nil
}

// AddressFromString derives a deterministic address from a label; handy for
// tests and examples.
func AddressFromString(s string) Address {
	h := sha256.Sum256([]byte("zkdet/address/" + s))
	var a Address
	copy(a[:], h[:20])
	return a
}

// Event is a contract log entry. Topic is an optional indexed key (the
// EVM's topic1, e.g. a token or exchange id) that off-chain indexers use to
// build inverted indexes; Data stays opaque.
type Event struct {
	Contract string
	Name     string
	Topic    []byte
	Data     []byte
}

// Transaction is a contract call or value transfer recorded on chain.
type Transaction struct {
	From     Address
	To       Address // recipient of a plain value transfer; unused for contract calls
	Contract string  // registered contract name; empty for pure transfers
	Method   string
	Args     []byte
	Value    uint64
	Nonce    uint64
	GasLimit uint64
}

// Hash returns the transaction's content digest.
func (tx *Transaction) Hash() Hash { return tx.hash() }

func (tx *Transaction) hash() Hash {
	h := sha256.New()
	h.Write(tx.From[:])
	h.Write(tx.To[:])
	h.Write([]byte(tx.Contract))
	h.Write([]byte{0})
	h.Write([]byte(tx.Method))
	h.Write([]byte{0})
	h.Write(tx.Args)
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:], tx.Value)
	binary.BigEndian.PutUint64(buf[8:], tx.Nonce)
	binary.BigEndian.PutUint64(buf[16:], tx.GasLimit)
	h.Write(buf[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Receipt reports the outcome of an executed transaction. Failed calls are
// included in blocks (state changes rolled back), mirroring Ethereum.
type Receipt struct {
	TxHash  Hash
	GasUsed uint64
	Return  []byte
	Logs    []Event
	Err     error
}

// Block is a sealed batch of transactions.
type Block struct {
	Number    uint64
	Parent    Hash
	Time      time.Time
	TxHashes  []Hash
	StateRoot Hash
}

func (b *Block) hash() Hash {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], b.Number)
	h.Write(buf[:])
	h.Write(b.Parent[:])
	for _, t := range b.TxHashes {
		h.Write(t[:])
	}
	h.Write(b.StateRoot[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Errors returned by the chain.
var (
	ErrUnknownContract  = errors.New("chain: unknown contract")
	ErrInsufficientFund = errors.New("chain: insufficient balance")
	ErrBadNonce         = errors.New("chain: bad nonce")
	ErrDuplicateName    = errors.New("chain: contract name already deployed")
	ErrReverted         = errors.New("chain: execution reverted")
	ErrNoRecipient      = errors.New("chain: value transfer to zero address")
)

// Contract is the interface native-Go contracts implement.
type Contract interface {
	// Call executes a method. State mutations must go through ctx.Store so
	// they are gas-metered and rolled back on error.
	Call(ctx *CallContext, method string, args []byte) ([]byte, error)
}

// execEnv is the state backend a CallContext executes against: the live
// chain during serial execution (with c.mu held), or a speculative
// transaction view (txView) during parallel batch execution. Contracts are
// oblivious to which one they run on — that is what makes speculative
// execution bit-identical to serial execution when no conflict occurs.
type execEnv interface {
	blockNumber() uint64
	transferValue(from, to Address, amount uint64) error
	getContract(name string) (Contract, bool)
	storeFor(name string) *Storage
}

// blockNumber returns the current height; caller holds c.mu.
func (c *Chain) blockNumber() uint64 { return uint64(len(c.blocks)) }

// transferValue moves native value between accounts; caller holds c.mu.
func (c *Chain) transferValue(from, to Address, amount uint64) error {
	return c.transferLocked(from, to, amount)
}

// getContract looks up a deployed contract; caller holds c.mu.
func (c *Chain) getContract(name string) (Contract, bool) {
	ct, ok := c.contracts[name]
	return ct, ok
}

// storeFor returns a contract's root storage; caller holds c.mu.
func (c *Chain) storeFor(name string) *Storage { return c.storages[name] }

// CallContext is passed to contract methods.
type CallContext struct {
	Sender  Address
	Value   uint64
	Gas     *GasMeter
	Store   *Storage
	env     execEnv
	name    string
	logs    []Event
	journal *journal
}

// Emit records an event, charging log gas.
func (ctx *CallContext) Emit(name string, data []byte) error {
	return ctx.EmitIndexed(name, nil, data)
}

// EmitIndexed records an event with an indexed topic (the EVM's topic1,
// e.g. a token id), charging log gas; the event name is topic0 and is
// always charged, an explicit topic charges one more.
func (ctx *CallContext) EmitIndexed(name string, topic, data []byte) error {
	cost := GasLogBase + GasLogTopic + uint64(len(data))*GasLogDataByte
	if len(topic) > 0 {
		cost += GasLogTopic
	}
	if err := ctx.Gas.Charge(cost); err != nil {
		return err
	}
	ctx.logs = append(ctx.logs, Event{Contract: ctx.name, Name: name, Topic: topic, Data: data})
	return nil
}

// Transfer moves native value from the contract's escrow balance to an
// account (the arbiter uses this to settle payments).
func (ctx *CallContext) Transfer(to Address, amount uint64) error {
	if err := ctx.Gas.Charge(GasValueTransfer); err != nil {
		return err
	}
	return ctx.env.transferValue(contractAddress(ctx.name), to, amount)
}

// BlockNumber returns the current block height.
func (ctx *CallContext) BlockNumber() uint64 { return ctx.env.blockNumber() }

// CallContract performs a gas-metered cross-contract call. The callee sees
// this contract's escrow address as the sender; its storage shares the
// caller's gas meter, and its events are folded into the outer receipt.
// A failing sub-call propagates its error, and the chain rolls back every
// contract's state when the outer call reverts.
func (ctx *CallContext) CallContract(name, method string, args []byte) ([]byte, error) {
	callee, ok := ctx.env.getContract(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownContract, name)
	}
	sub := &CallContext{
		Sender:  contractAddress(ctx.name),
		Gas:     ctx.Gas,
		Store:   ctx.env.storeFor(name).metered(ctx.Gas, ctx.journal),
		env:     ctx.env,
		name:    name,
		journal: ctx.journal,
	}
	ret, err := callee.Call(sub, method, args)
	ctx.logs = append(ctx.logs, sub.logs...)
	return ret, err
}

func contractAddress(name string) Address { return AddressFromString("contract/" + name) }

// ContractAddress returns the escrow address of a deployed contract.
func ContractAddress(name string) Address { return contractAddress(name) }

// account holds balance and nonce.
type account struct {
	balance uint64
	nonce   uint64
}

// Chain is the simulated blockchain. All methods are safe for concurrent
// use; execution is serialized, which is the consistency assumption of the
// paper's threat model.
type Chain struct {
	mu        sync.Mutex
	blocks    []Block              // guarded by mu
	pending   []Hash               // guarded by mu
	receipts  map[Hash]*Receipt    // guarded by mu
	contracts map[string]Contract  // guarded by mu
	storages  map[string]*Storage  // guarded by mu
	accounts  map[Address]*account // guarded by mu
	codeSizes map[string]int       // guarded by mu
	now       func() time.Time     // immutable after construction

	// eventIdx is the incremental inverted log index: (contract, name) →
	// events in commit order. It is what EventsByName serves from, instead
	// of re-walking every receipt.
	eventIdx map[string][]Event // guarded by mu

	// txs retains the normalized body of every processed transaction so
	// sealed blocks can be served to peers (BlockBody) and replayed by
	// importing nodes.
	txs map[Hash]Transaction // guarded by mu

	// sealMu serializes SealBlock/ImportBlock and the synchronous seal-hook
	// dispatch. Hook dispatch deliberately happens under sealMu (not just
	// the block append): it is what gives hooks the strict height-order
	// guarantee even when producers and importers race. Hooks run with mu
	// RELEASED, so a slow hook delays the next seal/import but can never
	// deadlock them, and hooks may freely call back into chain reads and
	// Submit. The one re-entrancy hooks must avoid is SealBlock/ImportBlock
	// themselves (sealMu is not reentrant).
	sealHooks []func(Block, []*Receipt) // guarded by sealMu
	sealMu    sync.Mutex

	// execWorkers is the default worker count for batch execution
	// (SubmitBatch, ImportBlock replay); 1 means serial. guarded by mu
	execWorkers int
	// execStats aggregates parallel-engine counters; internally
	// synchronized, see exec.Counters.
	execStats exec.Counters
}

// New returns an empty chain with a genesis block, stamped by the wall
// clock. This is the ONE sanctioned wall-clock entry point on the replay
// path (the detreplay analyzer allows wiring `time.Now` as a value but
// flags calling it): every block timestamp flows through the injected
// clock, timestamps never enter block or transaction hashes, and
// importing nodes take Time from the sealed header — so two replays of
// the same blocks reach identical roots regardless of their clocks.
func New() *Chain {
	return NewWithClock(time.Now)
}

// NewWithClock returns an empty chain whose block timestamps come from
// the given clock. Deterministic tests and replay harnesses inject a
// fixed or stepped clock here; production uses New.
func NewWithClock(clock func() time.Time) *Chain {
	c := &Chain{
		receipts:  make(map[Hash]*Receipt),
		contracts: make(map[string]Contract),
		storages:  make(map[string]*Storage),
		accounts:  make(map[Address]*account),
		codeSizes: make(map[string]int),
		eventIdx:  make(map[string][]Event),
		txs:       make(map[Hash]Transaction),
		now:       clock,
	}
	c.execWorkers = 1
	genesis := Block{Number: 0, Time: c.now()}
	c.blocks = []Block{genesis}
	return c
}

// OnSeal registers a hook invoked synchronously after every SealBlock (and
// every successful ImportBlock) with the sealed block and its receipts.
//
// Ordering contract: hooks are dispatched while sealMu is still held, so a
// hook observes blocks strictly in height order with no interleaving — by
// the time it sees block N, every hook has finished with block N-1, and no
// other goroutine can seal or import block N+1 until it returns. The state
// lock (mu) is released during dispatch, so hooks may call back into chain
// reads and Submit; a slow hook therefore back-pressures sealing and
// importing (they wait on sealMu) but cannot deadlock them. Hooks must not
// call SealBlock or ImportBlock. Off-chain consumers (block buses,
// indexers) attach here.
func (c *Chain) OnSeal(fn func(Block, []*Receipt)) {
	c.sealMu.Lock()
	defer c.sealMu.Unlock()
	c.sealHooks = append(c.sealHooks, fn)
}

// Faucet credits an account (test/genesis funding).
func (c *Chain) Faucet(a Address, amount uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.acct(a).balance += amount
}

// BalanceOf returns an account's native balance.
func (c *Chain) BalanceOf(a Address) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acct(a).balance
}

// NonceOf returns the next expected nonce for an account.
func (c *Chain) NonceOf(a Address) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acct(a).nonce
}

// acct returns (creating if needed) the account record; caller holds c.mu.
func (c *Chain) acct(a Address) *account {
	if acc, ok := c.accounts[a]; ok {
		return acc
	}
	acc := &account{}
	c.accounts[a] = acc
	return acc
}

func (c *Chain) transferLocked(from, to Address, amount uint64) error {
	f := c.acct(from)
	if f.balance < amount {
		return fmt.Errorf("%w: %d < %d", ErrInsufficientFund, f.balance, amount)
	}
	f.balance -= amount
	c.acct(to).balance += amount
	return nil
}

// Deploy registers a contract under a unique name, charging deployment gas
// proportional to the (approximated Solidity byte-) code size.
func (c *Chain) Deploy(name string, contract Contract, codeSize int) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.contracts[name]; ok {
		return 0, fmt.Errorf("%w: %s", ErrDuplicateName, name)
	}
	gas := uint64(GasTxBase) + GasCreateBase + uint64(codeSize)*GasCodeDepositByte
	c.contracts[name] = contract
	c.storages[name] = NewStorage()
	c.codeSizes[name] = codeSize
	return gas, nil
}

// Submit executes a transaction against current state and queues it for the
// next block. It returns the receipt; execution errors are reported in the
// receipt (state rolled back), while malformed transactions return a Go
// error and touch nothing.
func (c *Chain) Submit(tx Transaction) (*Receipt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submitLocked(tx)
}

// submitLocked is Submit's body; caller holds c.mu. ImportBlock replays
// remote transactions through the same path so every node runs the
// identical state machine.
func (c *Chain) submitLocked(tx Transaction) (*Receipt, error) {
	sender := c.acct(tx.From)
	if tx.Nonce != sender.nonce {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadNonce, tx.Nonce, sender.nonce)
	}
	if tx.GasLimit == 0 {
		tx.GasLimit = DefaultGasLimit
	}
	txHash := tx.hash()
	receipt := &Receipt{TxHash: txHash}
	gas := NewGasMeter(tx.GasLimit)
	// Intrinsic gas.
	if err := gas.Charge(GasTxBase + uint64(len(tx.Args))*GasCalldataByte); err != nil {
		return nil, err
	}

	sender.nonce++

	if tx.Contract == "" {
		// Plain value transfer — tx.Method/Args ignored.
		if tx.Value > 0 && tx.To == (Address{}) {
			sender.nonce--
			return nil, ErrNoRecipient
		}
		if err := c.transferLocked(tx.From, tx.To, tx.Value); err != nil {
			sender.nonce--
			return nil, err
		}
		receipt.GasUsed = gas.Used()
		c.commitTx(tx, txHash, receipt)
		return receipt, nil
	}

	contract, ok := c.contracts[tx.Contract]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownContract, tx.Contract)
	}
	store := c.storages[tx.Contract]
	// A write journal captures the pre-image of every mutated slot across
	// all contracts reached by the call, and the balances it moves, so a
	// revert undoes exactly what the transaction touched.
	j := &journal{}
	balSnapshot := c.balancesSnapshot()

	// Move value into the contract escrow before the call.
	if tx.Value > 0 {
		if err := c.transferLocked(tx.From, contractAddress(tx.Contract), tx.Value); err != nil {
			sender.nonce--
			return nil, err
		}
	}

	ctx := &CallContext{
		Sender:  tx.From,
		Value:   tx.Value,
		Gas:     gas,
		Store:   store.metered(gas, j),
		env:     c,
		name:    tx.Contract,
		journal: j,
	}
	ret, err := contract.Call(ctx, tx.Method, tx.Args)
	receipt.GasUsed = gas.Used()
	if err != nil {
		j.revert()
		c.restoreBalances(balSnapshot)
		sender.nonce = tx.Nonce + 1 // nonce still advances on revert
		receipt.Err = fmt.Errorf("%w: %s.%s: %w", ErrReverted, tx.Contract, tx.Method, err)
	} else {
		receipt.Return = ret
		receipt.Logs = ctx.logs
	}
	c.commitTx(tx, txHash, receipt)
	return receipt, nil
}

// balancesSnapshot copies every account balance; caller holds c.mu.
func (c *Chain) balancesSnapshot() map[Address]uint64 {
	snap := make(map[Address]uint64, len(c.accounts))
	for a, acc := range c.accounts {
		snap[a] = acc.balance
	}
	return snap
}

// restoreBalances rolls balances back to a snapshot; caller holds c.mu.
func (c *Chain) restoreBalances(snap map[Address]uint64) {
	for a, bal := range snap {
		c.acct(a).balance = bal
	}
	for a := range c.accounts {
		if _, ok := snap[a]; !ok {
			c.accounts[a].balance = 0
		}
	}
}

// commitTx records a processed transaction's body and receipt, queues it
// for the next block and folds its logs into the event index; caller holds
// c.mu. The body is stored post-normalization (gas default applied) so
// replaying it on another node reproduces the same hash.
func (c *Chain) commitTx(tx Transaction, h Hash, r *Receipt) {
	c.txs[h] = tx
	c.receipts[h] = r
	c.pending = append(c.pending, h)
	for _, ev := range r.Logs {
		k := eventKey(ev.Contract, ev.Name)
		c.eventIdx[k] = append(c.eventIdx[k], ev)
	}
}

func eventKey(contract, name string) string { return contract + "\x00" + name }

// ReadStorage reads a contract storage slot without gas (an archive-node
// style view used by off-chain tooling and tests).
func (c *Chain) ReadStorage(contract, key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.storages[contract]
	if !ok {
		return nil
	}
	v, _ := st.Get(key)
	return v
}

// Receipt returns the receipt of a processed transaction.
func (c *Chain) Receipt(h Hash) (*Receipt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.receipts[h]
	return r, ok
}

// SealBlock commits pending transactions into a new hash-linked block and
// dispatches it (with its receipts) to every OnSeal hook before returning,
// so indexers are consistent with the chain by the time the sealer observes
// the new block. Dispatch happens under sealMu with mu released — see the
// OnSeal ordering contract.
func (c *Chain) SealBlock() Block {
	c.sealMu.Lock()
	defer c.sealMu.Unlock()

	c.mu.Lock()
	parent := c.blocks[len(c.blocks)-1]
	b := Block{
		Number:    parent.Number + 1,
		Parent:    parent.hash(),
		Time:      c.now(),
		TxHashes:  c.pending,
		StateRoot: c.stateRootLocked(),
	}
	receipts := make([]*Receipt, len(c.pending))
	for i, h := range c.pending {
		receipts[i] = c.receipts[h]
	}
	c.pending = nil
	c.blocks = append(c.blocks, b)
	hooks := c.sealHooks
	c.mu.Unlock()

	for _, fn := range hooks {
		fn(b, receipts)
	}
	return b
}

// stateRootLocked digests all contract storages (order-normalized).
func (c *Chain) stateRootLocked() Hash {
	h := sha256.New()
	names := make([]string, 0, len(c.storages))
	for n := range c.storages {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h.Write([]byte(n))
		d := c.storages[n].digest()
		h.Write(d[:])
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Height returns the number of sealed blocks (excluding genesis).
func (c *Chain) Height() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blocks[len(c.blocks)-1].Number
}

// BlockByNumber returns a sealed block.
func (c *Chain) BlockByNumber(n uint64) (Block, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n >= uint64(len(c.blocks)) {
		return Block{}, false
	}
	return c.blocks[n], true
}

// VerifyIntegrity walks the hash links, returning an error if any block has
// been tampered with — the tamper-resistance assumption made checkable.
func (c *Chain) VerifyIntegrity() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 1; i < len(c.blocks); i++ {
		want := c.blocks[i-1].hash()
		if c.blocks[i].Parent != want {
			return fmt.Errorf("chain: block %d parent hash mismatch", i)
		}
	}
	return nil
}

// EventsByName returns all events with the given name emitted by a
// contract, in transaction order across all processed transactions — the
// log-query API off-chain indexers build on. It is served from the chain's
// incremental inverted index (O(matches)), not a receipt walk.
func (c *Chain) EventsByName(contract, name string) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := c.eventIdx[eventKey(contract, name)]
	if len(idx) == 0 {
		return nil
	}
	out := make([]Event, len(idx))
	copy(out, idx)
	return out
}

// eventsByNameScan is the pre-index implementation — an O(total receipts)
// walk over every block — retained as the reference for correctness tests
// and the scan-vs-index benchmark.
func (c *Chain) eventsByNameScan(contract, name string) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	// Walk blocks then the pending set, preserving order.
	appendFrom := func(h Hash) {
		out = c.appendEventsFromLocked(out, h, contract, name)
	}
	for _, b := range c.blocks {
		for _, h := range b.TxHashes {
			appendFrom(h)
		}
	}
	for _, h := range c.pending {
		appendFrom(h)
	}
	return out
}

// appendEventsFromLocked appends tx h's events matching (contract, name) to
// out; caller holds c.mu.
func (c *Chain) appendEventsFromLocked(out []Event, h Hash, contract, name string) []Event {
	r, ok := c.receipts[h]
	if !ok {
		return out
	}
	for _, ev := range r.Logs {
		if ev.Contract == contract && ev.Name == name {
			out = append(out, ev)
		}
	}
	return out
}
