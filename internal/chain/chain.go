// Package chain implements the blockchain substrate ZKDET runs on: an
// account model with native balances, gas-metered contract execution, event
// logs, and a single-sealer block producer with hash-linked blocks.
//
// The paper deploys on Ethereum's Rinkeby testnet; this package stands in
// for it with the same standard assumptions (§IV-A): tamper-resistance
// (hash-linked blocks, VerifyIntegrity), consistency (a single serialized
// state machine), and public visibility of all transactions. Contracts are
// native Go objects charged under the EVM gas schedule in gas.go, which is
// what lets the repo reproduce Table II.
package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Address identifies an account (20 bytes, Ethereum-style).
type Address [20]byte

// Hash is a 32-byte digest.
type Hash [32]byte

// AddressFromString derives a deterministic address from a label; handy for
// tests and examples.
func AddressFromString(s string) Address {
	h := sha256.Sum256([]byte("zkdet/address/" + s))
	var a Address
	copy(a[:], h[:20])
	return a
}

// Event is a contract log entry.
type Event struct {
	Contract string
	Name     string
	Data     []byte
}

// Transaction is a contract call or value transfer recorded on chain.
type Transaction struct {
	From     Address
	Contract string // registered contract name; empty for pure transfers
	Method   string
	Args     []byte
	Value    uint64
	Nonce    uint64
	GasLimit uint64
}

func (tx *Transaction) hash() Hash {
	h := sha256.New()
	h.Write(tx.From[:])
	h.Write([]byte(tx.Contract))
	h.Write([]byte{0})
	h.Write([]byte(tx.Method))
	h.Write([]byte{0})
	h.Write(tx.Args)
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:], tx.Value)
	binary.BigEndian.PutUint64(buf[8:], tx.Nonce)
	binary.BigEndian.PutUint64(buf[16:], tx.GasLimit)
	h.Write(buf[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Receipt reports the outcome of an executed transaction. Failed calls are
// included in blocks (state changes rolled back), mirroring Ethereum.
type Receipt struct {
	TxHash  Hash
	GasUsed uint64
	Return  []byte
	Logs    []Event
	Err     error
}

// Block is a sealed batch of transactions.
type Block struct {
	Number    uint64
	Parent    Hash
	Time      time.Time
	TxHashes  []Hash
	StateRoot Hash
}

func (b *Block) hash() Hash {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], b.Number)
	h.Write(buf[:])
	h.Write(b.Parent[:])
	for _, t := range b.TxHashes {
		h.Write(t[:])
	}
	h.Write(b.StateRoot[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Errors returned by the chain.
var (
	ErrUnknownContract  = errors.New("chain: unknown contract")
	ErrInsufficientFund = errors.New("chain: insufficient balance")
	ErrBadNonce         = errors.New("chain: bad nonce")
	ErrDuplicateName    = errors.New("chain: contract name already deployed")
	ErrReverted         = errors.New("chain: execution reverted")
)

// Contract is the interface native-Go contracts implement.
type Contract interface {
	// Call executes a method. State mutations must go through ctx.Store so
	// they are gas-metered and rolled back on error.
	Call(ctx *CallContext, method string, args []byte) ([]byte, error)
}

// CallContext is passed to contract methods.
type CallContext struct {
	Sender  Address
	Value   uint64
	Gas     *GasMeter
	Store   *Storage
	chain   *Chain
	name    string
	logs    []Event
	journal *journal
}

// Emit records an event, charging log gas.
func (ctx *CallContext) Emit(name string, data []byte) error {
	if err := ctx.Gas.Charge(GasLogBase + GasLogTopic + uint64(len(data))*GasLogDataByte); err != nil {
		return err
	}
	ctx.logs = append(ctx.logs, Event{Contract: ctx.name, Name: name, Data: data})
	return nil
}

// Transfer moves native value from the contract's escrow balance to an
// account (the arbiter uses this to settle payments).
func (ctx *CallContext) Transfer(to Address, amount uint64) error {
	if err := ctx.Gas.Charge(GasValueTransfer); err != nil {
		return err
	}
	return ctx.chain.transferLocked(contractAddress(ctx.name), to, amount)
}

// BlockNumber returns the current block height.
func (ctx *CallContext) BlockNumber() uint64 { return uint64(len(ctx.chain.blocks)) }

// CallContract performs a gas-metered cross-contract call. The callee sees
// this contract's escrow address as the sender; its storage shares the
// caller's gas meter, and its events are folded into the outer receipt.
// A failing sub-call propagates its error, and the chain rolls back every
// contract's state when the outer call reverts.
func (ctx *CallContext) CallContract(name, method string, args []byte) ([]byte, error) {
	callee, ok := ctx.chain.contracts[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownContract, name)
	}
	sub := &CallContext{
		Sender:  contractAddress(ctx.name),
		Gas:     ctx.Gas,
		Store:   ctx.chain.storages[name].metered(ctx.Gas, ctx.journal),
		chain:   ctx.chain,
		name:    name,
		journal: ctx.journal,
	}
	ret, err := callee.Call(sub, method, args)
	ctx.logs = append(ctx.logs, sub.logs...)
	return ret, err
}

func contractAddress(name string) Address { return AddressFromString("contract/" + name) }

// ContractAddress returns the escrow address of a deployed contract.
func ContractAddress(name string) Address { return contractAddress(name) }

// account holds balance and nonce.
type account struct {
	balance uint64
	nonce   uint64
}

// Chain is the simulated blockchain. All methods are safe for concurrent
// use; execution is serialized, which is the consistency assumption of the
// paper's threat model.
type Chain struct {
	mu        sync.Mutex
	blocks    []Block
	pending   []Hash
	receipts  map[Hash]*Receipt
	contracts map[string]Contract
	storages  map[string]*Storage
	accounts  map[Address]*account
	codeSizes map[string]int
	now       func() time.Time
}

// New returns an empty chain with a genesis block.
func New() *Chain {
	c := &Chain{
		receipts:  make(map[Hash]*Receipt),
		contracts: make(map[string]Contract),
		storages:  make(map[string]*Storage),
		accounts:  make(map[Address]*account),
		codeSizes: make(map[string]int),
		now:       time.Now,
	}
	genesis := Block{Number: 0, Time: c.now()}
	c.blocks = []Block{genesis}
	return c
}

// Faucet credits an account (test/genesis funding).
func (c *Chain) Faucet(a Address, amount uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.acct(a).balance += amount
}

// BalanceOf returns an account's native balance.
func (c *Chain) BalanceOf(a Address) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acct(a).balance
}

// NonceOf returns the next expected nonce for an account.
func (c *Chain) NonceOf(a Address) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acct(a).nonce
}

func (c *Chain) acct(a Address) *account {
	if acc, ok := c.accounts[a]; ok {
		return acc
	}
	acc := &account{}
	c.accounts[a] = acc
	return acc
}

func (c *Chain) transferLocked(from, to Address, amount uint64) error {
	f := c.acct(from)
	if f.balance < amount {
		return fmt.Errorf("%w: %d < %d", ErrInsufficientFund, f.balance, amount)
	}
	f.balance -= amount
	c.acct(to).balance += amount
	return nil
}

// Deploy registers a contract under a unique name, charging deployment gas
// proportional to the (approximated Solidity byte-) code size.
func (c *Chain) Deploy(name string, contract Contract, codeSize int) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.contracts[name]; ok {
		return 0, fmt.Errorf("%w: %s", ErrDuplicateName, name)
	}
	gas := uint64(GasTxBase) + GasCreateBase + uint64(codeSize)*GasCodeDepositByte
	c.contracts[name] = contract
	c.storages[name] = NewStorage()
	c.codeSizes[name] = codeSize
	return gas, nil
}

// Submit executes a transaction against current state and queues it for the
// next block. It returns the receipt; execution errors are reported in the
// receipt (state rolled back), while malformed transactions return a Go
// error and touch nothing.
func (c *Chain) Submit(tx Transaction) (*Receipt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	sender := c.acct(tx.From)
	if tx.Nonce != sender.nonce {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadNonce, tx.Nonce, sender.nonce)
	}
	if tx.GasLimit == 0 {
		tx.GasLimit = DefaultGasLimit
	}
	txHash := tx.hash()
	receipt := &Receipt{TxHash: txHash}
	gas := NewGasMeter(tx.GasLimit)
	// Intrinsic gas.
	if err := gas.Charge(GasTxBase + uint64(len(tx.Args))*GasCalldataByte); err != nil {
		return nil, err
	}

	sender.nonce++

	if tx.Contract == "" {
		// Plain value transfer — tx.Method/Args ignored.
		if err := c.transferLocked(tx.From, AddressFromString("burn"), 0); err != nil {
			return nil, err
		}
		receipt.GasUsed = gas.Used()
		c.commitTx(txHash, receipt)
		return receipt, nil
	}

	contract, ok := c.contracts[tx.Contract]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownContract, tx.Contract)
	}
	store := c.storages[tx.Contract]
	// A write journal captures the pre-image of every mutated slot across
	// all contracts reached by the call, and the balances it moves, so a
	// revert undoes exactly what the transaction touched.
	j := &journal{}
	balSnapshot := c.balancesSnapshot()

	// Move value into the contract escrow before the call.
	if tx.Value > 0 {
		if err := c.transferLocked(tx.From, contractAddress(tx.Contract), tx.Value); err != nil {
			sender.nonce--
			return nil, err
		}
	}

	ctx := &CallContext{
		Sender:  tx.From,
		Value:   tx.Value,
		Gas:     gas,
		Store:   store.metered(gas, j),
		chain:   c,
		name:    tx.Contract,
		journal: j,
	}
	ret, err := contract.Call(ctx, tx.Method, tx.Args)
	receipt.GasUsed = gas.Used()
	if err != nil {
		j.revert()
		c.restoreBalances(balSnapshot)
		sender.nonce = tx.Nonce + 1 // nonce still advances on revert
		receipt.Err = fmt.Errorf("%w: %s.%s: %w", ErrReverted, tx.Contract, tx.Method, err)
	} else {
		receipt.Return = ret
		receipt.Logs = ctx.logs
	}
	c.commitTx(txHash, receipt)
	return receipt, nil
}

func (c *Chain) balancesSnapshot() map[Address]uint64 {
	snap := make(map[Address]uint64, len(c.accounts))
	for a, acc := range c.accounts {
		snap[a] = acc.balance
	}
	return snap
}

func (c *Chain) restoreBalances(snap map[Address]uint64) {
	for a, bal := range snap {
		c.acct(a).balance = bal
	}
	for a := range c.accounts {
		if _, ok := snap[a]; !ok {
			c.accounts[a].balance = 0
		}
	}
}

func (c *Chain) commitTx(h Hash, r *Receipt) {
	c.receipts[h] = r
	c.pending = append(c.pending, h)
}

// ReadStorage reads a contract storage slot without gas (an archive-node
// style view used by off-chain tooling and tests).
func (c *Chain) ReadStorage(contract, key string) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.storages[contract]
	if !ok {
		return nil
	}
	v, _ := st.Get(key)
	return v
}

// Receipt returns the receipt of a processed transaction.
func (c *Chain) Receipt(h Hash) (*Receipt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.receipts[h]
	return r, ok
}

// SealBlock commits pending transactions into a new hash-linked block.
func (c *Chain) SealBlock() Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	parent := c.blocks[len(c.blocks)-1]
	b := Block{
		Number:    parent.Number + 1,
		Parent:    parent.hash(),
		Time:      c.now(),
		TxHashes:  c.pending,
		StateRoot: c.stateRootLocked(),
	}
	c.pending = nil
	c.blocks = append(c.blocks, b)
	return b
}

// stateRootLocked digests all contract storages (order-normalized).
func (c *Chain) stateRootLocked() Hash {
	h := sha256.New()
	names := make([]string, 0, len(c.storages))
	for n := range c.storages {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		h.Write([]byte(n))
		d := c.storages[n].digest()
		h.Write(d[:])
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Height returns the number of sealed blocks (excluding genesis).
func (c *Chain) Height() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blocks[len(c.blocks)-1].Number
}

// BlockByNumber returns a sealed block.
func (c *Chain) BlockByNumber(n uint64) (Block, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n >= uint64(len(c.blocks)) {
		return Block{}, false
	}
	return c.blocks[n], true
}

// VerifyIntegrity walks the hash links, returning an error if any block has
// been tampered with — the tamper-resistance assumption made checkable.
func (c *Chain) VerifyIntegrity() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 1; i < len(c.blocks); i++ {
		want := c.blocks[i-1].hash()
		if c.blocks[i].Parent != want {
			return fmt.Errorf("chain: block %d parent hash mismatch", i)
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// EventsByName returns all events with the given name emitted by a
// contract, in transaction order across all processed transactions — the
// log-query API off-chain indexers build on.
func (c *Chain) EventsByName(contract, name string) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	// Walk blocks then the pending set, preserving order.
	appendFrom := func(h Hash) {
		r, ok := c.receipts[h]
		if !ok {
			return
		}
		for _, ev := range r.Logs {
			if ev.Contract == contract && ev.Name == name {
				out = append(out, ev)
			}
		}
	}
	for _, b := range c.blocks {
		for _, h := range b.TxHashes {
			appendFrom(h)
		}
	}
	for _, h := range c.pending {
		appendFrom(h)
	}
	return out
}
