package chain

import (
	"sync"
	"testing"
	"time"
)

// TestSlowSealHookCannotDeadlock is the regression test for the OnSeal
// ordering contract: hooks dispatch under sealMu but with the state lock
// released, so a slow hook that re-enters chain reads back-pressures
// concurrent SealBlock/ImportBlock callers without ever deadlocking them,
// and every hook invocation still observes strictly increasing heights.
func TestSlowSealHookCannotDeadlock(t *testing.T) {
	// Producer pre-seals blocks with real transactions for the follower to
	// import.
	producer := New()
	alice := AddressFromString("alice")
	bob := AddressFromString("bob")
	producer.Faucet(alice, 1_000_000)
	const nBlocks = 4
	blocks := make([]Block, nBlocks)
	bodies := make([][]Transaction, nBlocks)
	for i := 0; i < nBlocks; i++ {
		if _, err := producer.Submit(Transaction{From: alice, To: bob, Value: 1, Nonce: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		blocks[i] = producer.SealBlock()
		body, ok := producer.BlockBody(blocks[i].Number)
		if !ok {
			t.Fatalf("missing body for block %d", blocks[i].Number)
		}
		bodies[i] = body
	}

	f := New()
	f.Faucet(alice, 1_000_000)
	var hookMu sync.Mutex
	var heights []uint64
	f.OnSeal(func(b Block, rs []*Receipt) {
		// Re-enter chain reads: these take mu, which the dispatch path
		// must have released. A regression that dispatched hooks under
		// mu deadlocks right here and trips the watchdog.
		_ = f.HeadHash()
		_ = f.BalanceOf(bob)
		for _, r := range rs {
			_, _ = f.Receipt(r.TxHash)
		}
		time.Sleep(5 * time.Millisecond) // slow consumer
		hookMu.Lock()
		heights = append(heights, b.Number)
		hookMu.Unlock()
	})

	done := make(chan struct{})
	imported := 0
	go func() {
		defer close(done)

		// Phase 1: imports succeed while the slow hook drags on each one.
		for i := range blocks {
			if _, err := f.ImportBlock(blocks[i], bodies[i]); err != nil {
				t.Errorf("import block %d: %v", blocks[i].Number, err)
				return
			}
			imported++
		}

		// Phase 2: SealBlock and ImportBlock race on sealMu while the hook
		// sleeps. The re-imports are expected to fail structurally (the
		// head has moved past them) — the property under test is that
		// every call RETURNS; none may wedge on a lock the hook holds.
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				f.SealBlock() // empty blocks, hooks still fire
			}
		}()
		go func() {
			defer wg.Done()
			for i := range blocks {
				_, _ = f.ImportBlock(blocks[i], bodies[i])
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = f.HeadHash()
				_ = f.BalanceOf(alice)
			}
		}()
		wg.Wait()
	}()

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: seal/import did not complete with a slow OnSeal hook")
	}
	if imported != nBlocks {
		t.Fatalf("imported %d blocks, want %d", imported, nBlocks)
	}

	hookMu.Lock()
	defer hookMu.Unlock()
	if len(heights) < nBlocks {
		t.Fatalf("hook ran %d times, want at least %d", len(heights), nBlocks)
	}
	for i := 1; i < len(heights); i++ {
		if heights[i] != heights[i-1]+1 {
			t.Fatalf("hook heights not strictly sequential: %v", heights)
		}
	}
}
