package chain

import (
	"errors"
	"testing"
)

// buildPersistChain seals a few blocks of counter traffic (including a
// reverted tx) and returns the chain, the sender, and the sealed tx hashes.
func buildPersistChain(t *testing.T) (*Chain, Address, []Hash) {
	t.Helper()
	c, alice := newTestChain(t)
	deployCounter(t, c, AddressFromString("beneficiary"))
	var hashes []Hash
	nonce := uint64(0)
	submit := func(method string) {
		t.Helper()
		r, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: method, Nonce: nonce})
		if err != nil {
			t.Fatalf("submit %s: %v", method, err)
		}
		nonce++
		hashes = append(hashes, r.TxHash)
	}
	for blk := 0; blk < 3; blk++ {
		submit("inc")
		submit("inc")
		if blk == 1 {
			submit("fail") // revert-carrying receipt must survive restore
		}
		c.SealBlock()
	}
	return c, alice, hashes
}

// freshGenesis returns a chain with the identical genesis deployment.
func freshGenesis(t *testing.T) *Chain {
	t.Helper()
	c := New()
	alice := AddressFromString("alice")
	c.Faucet(alice, 1_000_000)
	deployCounter(t, c, AddressFromString("beneficiary"))
	return c
}

func TestExportRestoreRoundTrip(t *testing.T) {
	src, alice, hashes := buildPersistChain(t)
	exp, err := src.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}

	dst := freshGenesis(t)
	var hookBlocks []uint64
	dst.OnSeal(func(b Block, _ []*Receipt) { hookBlocks = append(hookBlocks, b.Number) })
	if err := dst.RestoreState(exp); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}

	if got, want := dst.HeadHash(), src.HeadHash(); got != want {
		t.Fatalf("head hash %s != %s", got, want)
	}
	if got, want := dst.Head().StateRoot, src.Head().StateRoot; got != want {
		t.Fatalf("state root %s != %s", got, want)
	}
	if err := dst.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after restore: %v", err)
	}
	if got, want := dst.BalanceOf(alice), src.BalanceOf(alice); got != want {
		t.Fatalf("balance %d != %d", got, want)
	}
	if got, want := dst.NonceOf(alice), src.NonceOf(alice); got != want {
		t.Fatalf("nonce %d != %d", got, want)
	}
	for i, h := range hashes {
		rs, ok1 := src.Receipt(h)
		rd, ok2 := dst.Receipt(h)
		if !ok1 || !ok2 {
			t.Fatalf("receipt %d missing: src=%v dst=%v", i, ok1, ok2)
		}
		if rs.GasUsed != rd.GasUsed || len(rs.Logs) != len(rd.Logs) || (rs.Err == nil) != (rd.Err == nil) {
			t.Fatalf("receipt %d differs after restore", i)
		}
	}
	if got, want := len(dst.EventsByName("counter", "Incremented")), len(src.EventsByName("counter", "Incremented")); got != want {
		t.Fatalf("event index rebuilt with %d events, want %d", got, want)
	}
	// Hooks saw every restored block in height order.
	if len(hookBlocks) != 3 {
		t.Fatalf("hooks dispatched for %d blocks, want 3", len(hookBlocks))
	}
	for i, n := range hookBlocks {
		if n != uint64(i+1) {
			t.Fatalf("hook order: %v", hookBlocks)
		}
	}
	// The restored chain keeps working: same next nonce, can seal.
	if _, err := dst.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: dst.NonceOf(alice)}); err != nil {
		t.Fatalf("submit after restore: %v", err)
	}
	b := dst.SealBlock()
	if b.Number != src.Height()+1 {
		t.Fatalf("sealed block %d, want %d", b.Number, src.Height()+1)
	}
}

func TestExportRefusesPending(t *testing.T) {
	c, alice := newTestChain(t)
	deployCounter(t, c, Address{})
	if _, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExportState(); !errors.Is(err, ErrStatePending) {
		t.Fatalf("ExportState with pending = %v, want ErrStatePending", err)
	}
	c.SealBlock()
	if _, err := c.ExportState(); err != nil {
		t.Fatalf("ExportState after seal: %v", err)
	}
}

func TestRestoreRefusesNonGenesisTarget(t *testing.T) {
	src, _, _ := buildPersistChain(t)
	exp, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	dst := freshGenesis(t)
	dst.SealBlock() // no longer fresh
	if err := dst.RestoreState(exp); !errors.Is(err, ErrRestoreTarget) {
		t.Fatalf("RestoreState onto sealed chain = %v, want ErrRestoreTarget", err)
	}
}

func TestRestoreRejectsTamperedStateAtomically(t *testing.T) {
	src, alice, _ := buildPersistChain(t)
	exp, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with a storage slot: the recomputed root cannot match the
	// checkpointed header.
	for _, slots := range exp.Storages {
		for k, v := range slots {
			if len(v) > 0 {
				v[0] ^= 0xff
				slots[k] = v
				break
			}
		}
		break
	}
	dst := freshGenesis(t)
	if err := dst.RestoreState(exp); !errors.Is(err, ErrStateRoot) {
		t.Fatalf("RestoreState on tampered storage = %v, want ErrStateRoot", err)
	}
	// Atomicity: the failed restore left a working genesis chain behind.
	if h := dst.Height(); h != 0 {
		t.Fatalf("height after failed restore = %d, want 0", h)
	}
	if _, err := dst.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: 0}); err != nil {
		t.Fatalf("submit after failed restore: %v", err)
	}
	b := dst.SealBlock()
	if b.Number != 1 {
		t.Fatalf("sealed block %d after failed restore", b.Number)
	}
}

func TestRestoreRejectsBrokenHeaderChain(t *testing.T) {
	src, _, _ := buildPersistChain(t)
	exp, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	exp.Blocks[2].Parent[0] ^= 0xff
	if err := freshGenesis(t).RestoreState(exp); !errors.Is(err, ErrBadExport) {
		t.Fatalf("RestoreState on broken links = %v, want ErrBadExport", err)
	}
}

func TestPruneBodiesDropsOnlyOldBodies(t *testing.T) {
	c, _, hashes := buildPersistChain(t)
	height := c.Height()
	dropped := c.PruneBodies(height) // keep only the head block's body
	if dropped == 0 {
		t.Fatal("nothing pruned")
	}
	// Old bodies and receipts are gone, headers and the head body remain.
	if _, ok := c.BlockBody(1); ok {
		t.Fatal("block 1 body survived pruning")
	}
	if _, ok := c.BlockBody(height); !ok {
		t.Fatal("head body pruned")
	}
	if _, ok := c.BlockByNumber(1); !ok {
		t.Fatal("header 1 pruned")
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Fatalf("integrity after pruning: %v", err)
	}
	if _, ok := c.Receipt(hashes[0]); ok {
		t.Fatal("old receipt survived pruning")
	}

	// A pruned chain still exports (partial bodies) and restores.
	exp, err := c.ExportState()
	if err != nil {
		t.Fatalf("export after prune: %v", err)
	}
	if _, ok := exp.Bodies[1]; ok {
		t.Fatal("export carries pruned body")
	}
	dst := freshGenesis(t)
	if err := dst.RestoreState(exp); err != nil {
		t.Fatalf("restore of pruned export: %v", err)
	}
	if got, want := dst.HeadHash(), c.HeadHash(); got != want {
		t.Fatalf("pruned restore head %s != %s", got, want)
	}
	if _, ok := dst.BlockBody(height); !ok {
		t.Fatal("retained body missing after pruned restore")
	}
}
