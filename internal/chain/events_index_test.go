package chain

import (
	"errors"
	"fmt"
	"testing"
)

func TestPlainValueTransfer(t *testing.T) {
	c, alice := newTestChain(t)
	bob := AddressFromString("bob")

	r, err := c.Submit(Transaction{From: alice, To: bob, Value: 250, Nonce: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if got := c.BalanceOf(bob); got != 250 {
		t.Fatalf("bob balance %d, want 250", got)
	}
	if got := c.BalanceOf(alice); got != 1_000_000-250 {
		t.Fatalf("alice balance %d", got)
	}
	if got := c.NonceOf(alice); got != 1 {
		t.Fatalf("alice nonce %d, want 1", got)
	}
}

func TestPlainValueTransferRejectsZeroRecipient(t *testing.T) {
	c, alice := newTestChain(t)
	_, err := c.Submit(Transaction{From: alice, Value: 10, Nonce: 0})
	if !errors.Is(err, ErrNoRecipient) {
		t.Fatalf("got %v, want ErrNoRecipient", err)
	}
	// A rejected transfer must not consume the nonce or move funds.
	if got := c.NonceOf(alice); got != 0 {
		t.Fatalf("nonce advanced to %d on rejected transfer", got)
	}
	if got := c.BalanceOf(alice); got != 1_000_000 {
		t.Fatalf("alice balance %d", got)
	}
}

func TestPlainValueTransferInsufficientFunds(t *testing.T) {
	c, alice := newTestChain(t)
	bob := AddressFromString("bob")
	_, err := c.Submit(Transaction{From: alice, To: bob, Value: 2_000_000, Nonce: 0})
	if !errors.Is(err, ErrInsufficientFund) {
		t.Fatalf("got %v, want ErrInsufficientFund", err)
	}
	if got := c.NonceOf(alice); got != 0 {
		t.Fatalf("nonce advanced to %d on failed transfer", got)
	}
}

func TestTransactionHashBindsRecipient(t *testing.T) {
	alice, bob := AddressFromString("alice"), AddressFromString("bob")
	a := Transaction{From: alice, To: bob, Value: 1, Nonce: 0}
	b := Transaction{From: alice, To: alice, Value: 1, Nonce: 0}
	if a.Hash() == b.Hash() {
		t.Fatal("transaction hash ignores the recipient")
	}
}

func TestSealHooksDeliverBlocksInOrder(t *testing.T) {
	c, alice := newTestChain(t)
	deployCounter(t, c, alice)

	var gotBlocks []uint64
	var gotReceipts int
	c.OnSeal(func(b Block, rs []*Receipt) {
		gotBlocks = append(gotBlocks, b.Number)
		gotReceipts += len(rs)
		for _, r := range rs {
			if r == nil {
				t.Error("nil receipt in seal hook")
			}
		}
	})

	for i := 0; i < 5; i++ {
		if _, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			c.SealBlock()
		}
	}
	c.SealBlock()

	if len(gotBlocks) != 3 {
		t.Fatalf("hook saw %d blocks, want 3", len(gotBlocks))
	}
	for i, n := range gotBlocks {
		if n != uint64(i+1) {
			t.Fatalf("hook block order %v", gotBlocks)
		}
	}
	if gotReceipts != 5 {
		t.Fatalf("hook saw %d receipts, want 5", gotReceipts)
	}
}

func TestEventsByNameIndexMatchesScan(t *testing.T) {
	c, alice := newTestChain(t)
	deployCounter(t, c, alice)
	for i := 0; i < 20; i++ {
		if _, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if i%7 == 6 {
			c.SealBlock()
		}
	}
	idx := c.EventsByName("counter", "Incremented")
	scan := c.eventsByNameScan("counter", "Incremented")
	if len(idx) != len(scan) {
		t.Fatalf("index has %d events, scan %d", len(idx), len(scan))
	}
	for i := range idx {
		if string(idx[i].Data) != string(scan[i].Data) || idx[i].Name != scan[i].Name {
			t.Fatalf("event %d differs between index and scan", i)
		}
	}
}

// emitter logs one indexed event per call, with the topic taken from args.
type emitter struct{}

func (emitter) Call(ctx *CallContext, method string, args []byte) ([]byte, error) {
	return nil, ctx.EmitIndexed("Ping", args, []byte("payload"))
}

func TestEmitIndexedTopicAndGas(t *testing.T) {
	c, alice := newTestChain(t)
	if _, err := c.Deploy("emitter", emitter{}, 100); err != nil {
		t.Fatal(err)
	}
	r, err := c.Submit(Transaction{From: alice, Contract: "emitter", Method: "e", Args: []byte{0xAB}, Nonce: 0})
	if err != nil || r.Err != nil {
		t.Fatal(err, r.Err)
	}
	evs := c.EventsByName("emitter", "Ping")
	if len(evs) != 1 || len(evs[0].Topic) != 1 || evs[0].Topic[0] != 0xAB {
		t.Fatalf("indexed topic not recorded: %+v", evs)
	}
	// An indexed emit charges one extra topic over a plain emit.
	r2, err := c.Submit(Transaction{From: alice, Contract: "emitter", Method: "e", Args: nil, Nonce: 1})
	if err != nil || r2.Err != nil {
		t.Fatal(err, r2.Err)
	}
	if diff := r.GasUsed - r2.GasUsed; diff != GasLogTopic+GasCalldataByte {
		t.Fatalf("indexed-topic gas delta %d, want %d", diff, GasLogTopic+GasCalldataByte)
	}
}

// benchChain builds a chain with n executed counter transactions (sealed in
// blocks of 100) so scan cost is proportional to total receipts.
func benchChain(b *testing.B, n int) *Chain {
	b.Helper()
	c := New()
	alice := AddressFromString("alice")
	c.Faucet(alice, 1<<40)
	if _, err := c.Deploy("counter", &counter{beneficiary: alice}, 1000); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Deploy("quiet", &counter{beneficiary: alice}, 1000); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// 1 in 100 transactions emits on the contract being queried; the
		// rest are noise the scan still has to walk.
		contract := "quiet"
		if i%100 == 0 {
			contract = "counter"
		}
		if _, err := c.Submit(Transaction{From: alice, Contract: contract, Method: "inc", Nonce: uint64(i)}); err != nil {
			b.Fatal(err)
		}
		if i%100 == 99 {
			c.SealBlock()
		}
	}
	c.SealBlock()
	return c
}

// BenchmarkEventsByName compares the legacy O(total-receipts) scan against
// the incremental inverted index at 10k+ transactions; see EXPERIMENTS.md.
func BenchmarkEventsByName(b *testing.B) {
	for _, n := range []int{10_000, 50_000} {
		c := benchChain(b, n)
		want := len(c.eventsByNameScan("counter", "Incremented"))
		b.Run(fmt.Sprintf("scan/txs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := c.eventsByNameScan("counter", "Incremented"); len(got) != want {
					b.Fatalf("scan found %d events, want %d", len(got), want)
				}
			}
		})
		b.Run(fmt.Sprintf("indexed/txs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := c.EventsByName("counter", "Incremented"); len(got) != want {
					b.Fatalf("index found %d events, want %d", len(got), want)
				}
			}
		})
	}
}
