// Package exec is the scheduling and conflict-detection core of the
// chain's parallel transaction executor. It is deliberately free of any
// chain types: transactions are indices into a batch, state is a set of
// opaque resource strings, and the package answers exactly two questions —
//
//  1. which transactions of a batch may execute speculatively side by
//     side (Schedule, driven by statically declared read/write sets), and
//  2. whether a speculative execution observed exactly the state the
//     serial order would have shown it (CommitLog, driven by the read and
//     write sets captured at run time).
//
// The split matters: declared sets are hints and may be incomplete (a
// mint cannot name the token keys it will allocate before reading the id
// counter), so scheduling alone can never be trusted. Captured sets are
// ground truth — every read a speculative execution performed is recorded
// together with the batch-local writers whose effects it observed, and
// the commit phase replays that observation against what actually
// committed. A mismatch means the speculation ran against stale state and
// the transaction is re-executed serially, which is always correct.
//
// Resources model three access kinds:
//
//   - reads: order-sensitive observations,
//   - writes: absolute (last-writer-wins) mutations, and
//   - deltas: commutative mutations (balance credits) that conflict with
//     reads and writes but not with each other.
package exec

import (
	"sort"
	"sync"
)

// RWSet is a transaction's statically declared resource footprint, used
// only for scheduling. Nil or incomplete sets are safe: the commit-time
// validation catches every undeclared access. Speculate gates phase-1
// execution — transactions with order-sensitive side effects outside
// chain state (e.g. consuming seal-time proof-verification marks) must
// set it false so they run exactly once, at commit time, in block order.
type RWSet struct {
	Reads     []string
	Writes    []string
	Deltas    []string
	Speculate bool
}

// touch is one transaction's access to one resource during scheduling.
type touchKind uint8

const (
	touchRead touchKind = iota
	touchWrite
	touchDelta
)

// Schedule partitions a batch into groups of transactions that may
// execute speculatively in parallel. Two transactions land in the same
// group when they touch a common resource in a conflicting way:
//
//   - a resource with at least one absolute writer groups every toucher,
//   - a resource with delta writers and at least one reader groups every
//     toucher (the reader's observation depends on how many deltas
//     preceded it),
//   - read-only and delta-only resources group nobody.
//
// Group members keep their batch order, so per-sender nonce chains (the
// sender's account is a read+write resource of every transaction) always
// execute in order on one worker. The groups themselves are returned
// ordered by their first member.
func Schedule(sets []*RWSet) [][]int {
	parent := make([]int, len(sets))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	type toucher struct {
		idx  int
		kind touchKind
	}
	touchers := make(map[string][]toucher)
	note := func(i int, res []string, kind touchKind) {
		for _, r := range res {
			touchers[r] = append(touchers[r], toucher{idx: i, kind: kind})
		}
	}
	for i, s := range sets {
		if s == nil {
			continue
		}
		note(i, s.Reads, touchRead)
		note(i, s.Writes, touchWrite)
		note(i, s.Deltas, touchDelta)
	}

	for _, ts := range touchers {
		var hasWrite, hasRead, hasDelta bool
		for _, t := range ts {
			switch t.kind {
			case touchWrite:
				hasWrite = true
			case touchRead:
				hasRead = true
			case touchDelta:
				hasDelta = true
			}
		}
		if hasWrite || (hasDelta && hasRead) {
			for i := 1; i < len(ts); i++ {
				//lint:ignore detreplay union-find with min-root union: the final partition (and group order, keyed by sorted roots below) is independent of the order unions are applied
				union(ts[0].idx, ts[i].idx)
			}
		}
	}

	members := make(map[int][]int)
	var roots []int
	for i := range sets {
		r := find(i)
		if _, ok := members[r]; !ok {
			roots = append(roots, r)
		}
		members[r] = append(members[r], i)
	}
	sort.Ints(roots)
	groups := make([][]int, 0, len(roots))
	for _, r := range roots {
		groups = append(groups, members[r])
	}
	return groups
}

// Access is one captured read: the resource and the ordered batch-local
// writers whose effects were folded into the value observed. An empty
// writer list means the read was served from pre-batch state.
type Access struct {
	Res     string
	Writers []int
}

// CommitLog tracks, during the serial commit phase, which transaction
// indices have written each resource, in commit (= batch) order. It is
// what turns captured read sets into a commit/re-execute decision.
//
// CommitLog is used from the single commit goroutine only and needs no
// locking; the phase-1 side of the engine reports through Counters.
type CommitLog struct {
	writers map[string][]int
	// dirty marks transactions that were re-executed at commit time instead
	// of committing their speculation. A re-execution keeps its batch index
	// but may write different values, so any speculation that observed a
	// dirty writer is invalid even when the writer indices line up.
	dirty map[int]bool
}

// NewCommitLog returns an empty log.
func NewCommitLog() *CommitLog {
	return &CommitLog{writers: make(map[string][]int), dirty: make(map[int]bool)}
}

// MarkReexecuted notes that transaction i did not commit its speculative
// effects (it was re-executed serially, or never speculated). Call before
// validating any later transaction.
func (l *CommitLog) MarkReexecuted(i int) {
	l.dirty[i] = true
}

// Record notes that transaction i wrote (absolutely or by delta) each of
// the given resources. Call in commit order.
func (l *CommitLog) Record(i int, res []string) {
	for _, r := range res {
		l.writers[r] = append(l.writers[r], i)
	}
}

// Valid reports whether every captured read observed exactly the writer
// sequence that has committed: for each access, the committed writers of
// the resource must equal the observed writers, and none of them may have
// been re-executed (MarkReexecuted). Any divergence — a committed writer
// the speculation did not see, or a speculated predecessor whose own
// commit diverged — fails validation and the transaction must re-execute
// serially.
func (l *CommitLog) Valid(reads []Access) bool {
	for _, a := range reads {
		committed := l.writers[a.Res]
		if len(committed) != len(a.Writers) {
			return false
		}
		for i := range committed {
			if committed[i] != a.Writers[i] {
				return false
			}
			if l.dirty[committed[i]] {
				return false
			}
		}
	}
	return true
}

// Counters aggregates engine statistics across the speculative workers
// and the commit phase. The speculation side runs on many goroutines, so
// every field is guarded.
type Counters struct {
	mu sync.Mutex
	// Speculated counts transactions executed in phase 1. guarded by mu
	speculated uint64
	// committed counts speculations applied as-is. guarded by mu
	committed uint64
	// conflicts counts speculations discarded at validation. guarded by mu
	conflicts uint64
	// serial counts commit-time (non-speculated or fallback) executions.
	// guarded by mu
	serial uint64
}

// AddSpeculated notes n phase-1 executions; safe for concurrent use.
func (c *Counters) AddSpeculated(n int) {
	c.mu.Lock()
	c.speculated += uint64(n)
	c.mu.Unlock()
}

// AddCommitted notes a speculation applied without re-execution.
func (c *Counters) AddCommitted() {
	c.mu.Lock()
	c.committed++
	c.mu.Unlock()
}

// AddConflict notes a speculation discarded by commit-time validation.
func (c *Counters) AddConflict() {
	c.mu.Lock()
	c.conflicts++
	c.mu.Unlock()
}

// AddSerial notes a commit-phase serial execution.
func (c *Counters) AddSerial() {
	c.mu.Lock()
	c.serial++
	c.mu.Unlock()
}

// Snapshot returns (speculated, committed, conflicts, serial).
func (c *Counters) Snapshot() (speculated, committed, conflicts, serial uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.speculated, c.committed, c.conflicts, c.serial
}
