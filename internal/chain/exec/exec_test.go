package exec

import (
	"reflect"
	"sync"
	"testing"
)

func set(reads, writes, deltas []string) *RWSet {
	return &RWSet{Reads: reads, Writes: writes, Deltas: deltas, Speculate: true}
}

func TestScheduleDisjointSets(t *testing.T) {
	groups := Schedule([]*RWSet{
		set([]string{"a"}, []string{"a"}, nil),
		set([]string{"b"}, []string{"b"}, nil),
		set([]string{"c"}, []string{"c"}, nil),
	})
	want := [][]int{{0}, {1}, {2}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("groups %v, want %v", groups, want)
	}
}

func TestScheduleWriteConflictMerges(t *testing.T) {
	groups := Schedule([]*RWSet{
		set(nil, []string{"k"}, nil),
		set([]string{"k"}, nil, nil),
		set(nil, []string{"x"}, nil),
	})
	want := [][]int{{0, 1}, {2}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("groups %v, want %v", groups, want)
	}
}

func TestScheduleReadOnlySharingStaysParallel(t *testing.T) {
	groups := Schedule([]*RWSet{
		set([]string{"shared"}, []string{"a"}, nil),
		set([]string{"shared"}, []string{"b"}, nil),
	})
	want := [][]int{{0}, {1}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("read-read sharing merged: %v, want %v", groups, want)
	}
}

func TestScheduleDeltaOnlySharingStaysParallel(t *testing.T) {
	// Commutative credits to the same account do not conflict…
	groups := Schedule([]*RWSet{
		set(nil, []string{"a"}, []string{"bal"}),
		set(nil, []string{"b"}, []string{"bal"}),
	})
	want := [][]int{{0}, {1}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("delta-delta sharing merged: %v, want %v", groups, want)
	}
	// …but a reader of the credited resource orders against the deltas.
	groups = Schedule([]*RWSet{
		set(nil, []string{"a"}, []string{"bal"}),
		set([]string{"bal"}, []string{"b"}, nil),
	})
	want = [][]int{{0, 1}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("delta-read sharing not merged: %v, want %v", groups, want)
	}
}

func TestScheduleTransitiveMergeAndOrder(t *testing.T) {
	// 0-2 conflict on "x", 2-1 conflict on "y": all three form one group
	// with members in batch order.
	groups := Schedule([]*RWSet{
		set(nil, []string{"x"}, nil),
		set(nil, []string{"y"}, nil),
		set([]string{"x"}, []string{"y"}, nil),
	})
	want := [][]int{{0, 1, 2}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("groups %v, want %v", groups, want)
	}
}

func TestScheduleNilSetIsIsolated(t *testing.T) {
	// A nil set declares nothing, so nothing groups with it.
	groups := Schedule([]*RWSet{
		nil,
		set([]string{"a"}, []string{"a"}, nil),
	})
	want := [][]int{{0}, {1}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("groups %v, want %v", groups, want)
	}
}

func TestCommitLogValid(t *testing.T) {
	l := NewCommitLog()
	l.Record(0, []string{"k"})
	l.Record(2, []string{"k", "m"})

	if !l.Valid([]Access{{Res: "k", Writers: []int{0, 2}}}) {
		t.Fatal("exact observation rejected")
	}
	if !l.Valid([]Access{{Res: "unwritten"}}) {
		t.Fatal("pre-state read of untouched resource rejected")
	}
	if l.Valid([]Access{{Res: "k", Writers: []int{0}}}) {
		t.Fatal("stale observation (missing writer 2) accepted")
	}
	if l.Valid([]Access{{Res: "k", Writers: []int{2, 0}}}) {
		t.Fatal("reordered observation accepted")
	}
	if l.Valid([]Access{{Res: "m"}}) {
		t.Fatal("pre-state read of written resource accepted")
	}
}

func TestCommitLogDirtyWriterInvalidates(t *testing.T) {
	l := NewCommitLog()
	l.MarkReexecuted(0)
	l.Record(0, []string{"k"})

	// The writer indices match the observation, but writer 0 re-executed
	// at commit time, so its speculative value may be stale.
	if l.Valid([]Access{{Res: "k", Writers: []int{0}}}) {
		t.Fatal("observation of a re-executed writer accepted")
	}
	if !l.Valid([]Access{{Res: "other"}}) {
		t.Fatal("unrelated read rejected")
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for range 8 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range 100 {
				c.AddSpeculated(1)
				c.AddCommitted()
			}
		}()
	}
	wg.Wait()
	spec, committed, conflicts, serial := c.Snapshot()
	if spec != 800 || committed != 800 || conflicts != 0 || serial != 0 {
		t.Fatalf("counters %d %d %d %d", spec, committed, conflicts, serial)
	}
}
