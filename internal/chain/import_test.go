package chain

import (
	"errors"
	"testing"
)

// twoChains returns a sealer and a follower with identical genesis funding.
func twoChains(t *testing.T) (*Chain, *Chain, Address, Address) {
	t.Helper()
	alice := AddressFromString("alice")
	bob := AddressFromString("bob")
	a, b := New(), New()
	for _, c := range []*Chain{a, b} {
		c.Faucet(alice, 1_000_000)
		c.Faucet(bob, 1_000_000)
	}
	return a, b, alice, bob
}

// sealTransfers executes n transfers on the sealer and seals them.
func sealTransfers(t *testing.T, c *Chain, from, to Address, n int) (Block, []Transaction) {
	t.Helper()
	base := c.NonceOf(from)
	for i := 0; i < n; i++ {
		if _, err := c.Submit(Transaction{From: from, To: to, Value: 1, Nonce: base + uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	blk := c.SealBlock()
	txs, ok := c.BlockBody(blk.Number)
	if !ok {
		t.Fatal("sealed block has no body")
	}
	return blk, txs
}

func TestImportBlockReplay(t *testing.T) {
	a, b, alice, bob := twoChains(t)
	blk, txs := sealTransfers(t, a, alice, bob, 3)

	receipts, err := b.ImportBlock(blk, txs)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if len(receipts) != 3 {
		t.Fatalf("receipts: %d, want 3", len(receipts))
	}
	if b.HeadHash() != a.HeadHash() {
		t.Fatal("head hash diverged after import")
	}
	if b.Head().StateRoot != a.Head().StateRoot {
		t.Fatal("state root diverged after import")
	}
	if got := b.BalanceOf(bob); got != a.BalanceOf(bob) {
		t.Fatalf("balance diverged: %d vs %d", got, a.BalanceOf(bob))
	}
	// The follower can serve the imported body onward (sync relay).
	relay, ok := b.BlockBody(blk.Number)
	if !ok || len(relay) != len(txs) {
		t.Fatal("imported body not retrievable")
	}
}

func TestImportBlockStructuralChecks(t *testing.T) {
	a, b, alice, bob := twoChains(t)
	blk, txs := sealTransfers(t, a, alice, bob, 2)

	skip := blk
	skip.Number += 5
	if _, err := b.ImportBlock(skip, txs); !errors.Is(err, ErrNotNextBlock) {
		t.Fatalf("gap: %v, want ErrNotNextBlock", err)
	}

	badParent := blk
	badParent.Parent[0] ^= 0xff
	if _, err := b.ImportBlock(badParent, txs); !errors.Is(err, ErrBadParent) {
		t.Fatalf("parent: %v, want ErrBadParent", err)
	}

	if _, err := b.ImportBlock(blk, txs[:1]); !errors.Is(err, ErrBadBody) {
		t.Fatalf("short body: %v, want ErrBadBody", err)
	}

	swapped := append([]Transaction(nil), txs...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := b.ImportBlock(blk, swapped); !errors.Is(err, ErrBadBody) {
		t.Fatalf("reordered body: %v, want ErrBadBody", err)
	}
}

func TestImportBlockRollsBackOnStateMismatch(t *testing.T) {
	a, b, alice, bob := twoChains(t)
	blk, txs := sealTransfers(t, a, alice, bob, 3)

	forged := blk
	forged.StateRoot[0] ^= 0xff
	balBefore := b.BalanceOf(bob)
	nonceBefore := b.NonceOf(alice)
	if _, err := b.ImportBlock(forged, txs); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("forged root: %v, want ErrStateMismatch", err)
	}
	if b.BalanceOf(bob) != balBefore || b.NonceOf(alice) != nonceBefore {
		t.Fatal("failed import leaked state")
	}
	if b.Height() != 0 {
		t.Fatalf("failed import appended a block: height %d", b.Height())
	}
	// The rollback left the follower able to import the honest block.
	if _, err := b.ImportBlock(blk, txs); err != nil {
		t.Fatalf("honest import after rollback: %v", err)
	}
	if b.HeadHash() != a.HeadHash() {
		t.Fatal("heads diverged after recovery")
	}
}

func TestImportBlockRefusedWithPending(t *testing.T) {
	a, b, alice, bob := twoChains(t)
	blk, txs := sealTransfers(t, a, alice, bob, 1)

	// The follower has its own executed-but-unsealed transaction.
	if _, err := b.Submit(Transaction{From: bob, To: alice, Value: 1, Nonce: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ImportBlock(blk, txs); !errors.Is(err, ErrPendingTxs) {
		t.Fatalf("pending guard: %v, want ErrPendingTxs", err)
	}
	b.SealBlock()
	// Now the follower's chain forked (it sealed its own block 1); the
	// remote block 1 no longer links.
	if _, err := b.ImportBlock(blk, txs); !errors.Is(err, ErrNotNextBlock) && !errors.Is(err, ErrBadParent) {
		t.Fatalf("fork import: %v", err)
	}
}

func TestImportBlockDispatchesSealHooks(t *testing.T) {
	a, b, alice, bob := twoChains(t)
	blk, txs := sealTransfers(t, a, alice, bob, 2)

	var hooked []Block
	b.OnSeal(func(blk Block, _ []*Receipt) { hooked = append(hooked, blk) })
	if _, err := b.ImportBlock(blk, txs); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 || hooked[0].Hash() != blk.Hash() {
		t.Fatalf("seal hooks saw %d blocks", len(hooked))
	}
}

func TestHeadersRangeAndBodies(t *testing.T) {
	a, _, alice, bob := twoChains(t)
	for i := 0; i < 4; i++ {
		sealTransfers(t, a, alice, bob, 1)
	}
	hs := a.HeadersRange(1, 10)
	if len(hs) != 4 {
		t.Fatalf("headers: %d, want 4", len(hs))
	}
	for i, h := range hs {
		if h.Number != uint64(i+1) {
			t.Fatalf("header %d has number %d", i, h.Number)
		}
		if i > 0 && h.Parent != hs[i-1].Hash() {
			t.Fatalf("header %d does not link", i)
		}
	}
	if hs := a.HeadersRange(99, 5); hs != nil {
		t.Fatal("out-of-range request returned headers")
	}
	if _, ok := a.BlockBody(99); ok {
		t.Fatal("out-of-range body request succeeded")
	}
}
