package chain

import (
	"github.com/zkdet/zkdet/internal/chain/exec"
	"github.com/zkdet/zkdet/internal/parallel"
)

// This file is the engine half of the parallel batch executor (see
// execview.go for the state views). Execution is two-phase:
//
//   - Phase 1 (speculation): transactions are partitioned into groups by
//     their statically declared read/write sets (exec.Schedule); each
//     group runs on one worker, its members in batch order against the
//     committed pre-batch state plus the group's own overlay. Phase 1
//     never mutates chain state.
//
//   - Phase 2 (commit): a single goroutine walks the batch in order. A
//     speculation whose captured reads match exactly what has committed
//     (exec.CommitLog) is applied as-is; anything else — an undeclared
//     cross-group conflict, a serial-only transaction, a dependent of a
//     re-executed transaction — is re-executed against live state, which
//     is always correct because it IS serial execution at that point.
//
// The commit order equals the batch order regardless of scheduling, so the
// resulting receipts, gas, event order, and state root are bit-identical
// to the retained serial path; the property tests in batch_test.go pin
// this over randomized workloads.

// TxOutcome is the result of one batch member: the receipt of a processed
// transaction, or the Go-level error of a malformed one (same contract as
// Submit — an Err outcome touched nothing except the unknown-contract
// nonce quirk).
type TxOutcome struct {
	Receipt *Receipt
	Err     error
}

// minParallelBatch is the batch size below which scheduling overhead
// cannot pay for itself and the serial path runs instead.
const minParallelBatch = 4

// SubmitBatch executes a batch of transactions as if submitted one by one
// through Submit, using up to workers goroutines for speculative
// execution. It returns one outcome per transaction, in order.
func (c *Chain) SubmitBatch(txs []Transaction, workers int) []TxOutcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.submitBatchLocked(txs, workers)
}

// submitBatchLocked is SubmitBatch's body; caller holds c.mu. With one
// worker (or a tiny batch) it is exactly the serial Submit loop — that
// path is the reference the property tests diff the parallel path against.
func (c *Chain) submitBatchLocked(txs []Transaction, workers int) []TxOutcome {
	out := make([]TxOutcome, len(txs))
	if workers <= 0 {
		workers = c.execWorkers
	}
	if workers <= 1 || len(txs) < minParallelBatch {
		for i := range txs {
			r, err := c.submitLocked(txs[i])
			out[i] = TxOutcome{Receipt: r, Err: err}
		}
		return out
	}

	sets := make([]*exec.RWSet, len(txs))
	for i := range txs {
		sets[i] = c.staticRWSetLocked(&txs[i])
	}
	groups := exec.Schedule(sets)
	blockNum := uint64(len(c.blocks))

	// Phase 1: speculate groups on the worker pool. effs is written at
	// disjoint indices and only read after the pool joins.
	effs := make([]*txEffects, len(txs))
	parallel.ExecuteWorkers(len(groups), workers, func(start, end int) {
		for g := start; g < end; g++ {
			c.speculateGroupLocked(groups[g], txs, sets, effs, blockNum)
		}
	})

	// Phase 2: validate and commit in batch order.
	clog := exec.NewCommitLog()
	for i := range txs {
		if eff := effs[i]; eff != nil && clog.Valid(eff.reads) {
			c.applyEffectsLocked(eff)
			clog.Record(i, eff.writes)
			out[i] = TxOutcome{Receipt: eff.receipt, Err: eff.goErr}
			c.execStats.AddCommitted()
			continue
		}
		if effs[i] != nil {
			c.execStats.AddConflict()
		}
		clog.MarkReexecuted(i)
		v := c.newTxView(nil, blockNum)
		eff := v.runTx(txs[i])
		eff.finalize()
		c.applyEffectsLocked(eff)
		clog.Record(i, eff.writes)
		out[i] = TxOutcome{Receipt: eff.receipt, Err: eff.goErr}
		c.execStats.AddSerial()
	}
	return out
}

// speculateGroupLocked executes one scheduled group's members in batch
// order against the group overlay. Speculation stops at the first
// serial-only member: everything after it in the group would observe a
// hole where its effects belong and fail validation anyway. caller holds
// c.mu (the engine holds it across both phases; phase 1 only reads
// committed state, so concurrent group workers are safe).
func (c *Chain) speculateGroupLocked(members []int, txs []Transaction, sets []*exec.RWSet, effs []*txEffects, blockNum uint64) {
	grp := newGroupState()
	for _, i := range members {
		if sets[i] == nil || !sets[i].Speculate {
			return
		}
		v := c.newTxView(grp, blockNum)
		eff := v.runTx(txs[i])
		eff.finalize()
		effs[i] = eff
		grp.merge(i, eff)
		c.execStats.AddSpeculated(1)
	}
}

// SetExecWorkers sets the worker count batch execution (SubmitBatch with
// workers <= 0, and block replay in ImportBlock) uses. The default of one
// keeps the serial path; the node wires its ExecWorkers config here.
func (c *Chain) SetExecWorkers(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 1 {
		n = 1
	}
	c.execWorkers = n
}

// ExecStats returns cumulative parallel-engine counters: transactions
// executed speculatively, speculations committed as-is, speculations
// discarded at validation, and commit-time serial executions.
func (c *Chain) ExecStats() (speculated, committed, conflicts, serial uint64) {
	return c.execStats.Snapshot()
}
