package chain

import "github.com/zkdet/zkdet/internal/chain/exec"

// RWDecl is a contract's statically declared storage footprint for one
// call: the slot keys (of this contract's own storage) it may read and
// write. Declarations are scheduling hints, not promises — the engine
// validates every actual access at commit time — but a declaration that
// covers the real footprint lets independent calls speculate in parallel,
// while an undeclared access merely costs a serial re-execution.
type RWDecl struct {
	Reads  []string
	Writes []string
}

// RWDeclarer is optionally implemented by contracts that can predict a
// call's storage footprint from the call data alone. Returning ok == false
// (or not implementing the interface) makes the call serial-only: it
// executes exactly once, at commit time, in block order. Methods with
// order-sensitive side effects outside chain state — consuming seal-time
// proof-verification marks, dynamic value transfers — must return
// ok == false, because a discarded speculation must not leave a trace.
type RWDeclarer interface {
	DeclareRW(sender Address, method string, args []byte, value uint64) (RWDecl, bool)
}

// staticRWSetLocked computes a transaction's scheduling footprint; caller
// holds c.mu. Every transaction touches its sender's nonce; value moves
// touch the payer's balance absolutely and the payee's as a commutative
// delta; contract calls add the contract's declared slots, or disable
// speculation entirely when no declaration is available.
func (c *Chain) staticRWSetLocked(tx *Transaction) *exec.RWSet {
	s := &exec.RWSet{Speculate: true}
	nres := resNonce(tx.From)
	s.Reads = append(s.Reads, nres)
	s.Writes = append(s.Writes, nres)

	if tx.Contract == "" {
		bres := resBal(tx.From)
		s.Reads = append(s.Reads, bres)
		s.Writes = append(s.Writes, bres)
		s.Deltas = append(s.Deltas, resBal(tx.To))
		return s
	}

	ct, ok := c.contracts[tx.Contract]
	if !ok {
		// Unknown contract: only the sender nonce is touched.
		return s
	}
	if tx.Value > 0 {
		bres := resBal(tx.From)
		s.Reads = append(s.Reads, bres)
		s.Writes = append(s.Writes, bres)
		s.Deltas = append(s.Deltas, resBal(contractAddress(tx.Contract)))
	}
	d, ok := ct.(RWDeclarer)
	if !ok {
		s.Speculate = false
		return s
	}
	decl, ok := d.DeclareRW(tx.From, tx.Method, tx.Args, tx.Value)
	if !ok {
		s.Speculate = false
		return s
	}
	for _, k := range decl.Reads {
		s.Reads = append(s.Reads, resStore(tx.Contract, k))
	}
	for _, k := range decl.Writes {
		s.Writes = append(s.Writes, resStore(tx.Contract, k))
	}
	return s
}
