package chain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// ptest is the property-test contract: a grab bag of access patterns that
// exercises every engine path.
//
//	set <slot>    declared read+write of one shared slot
//	bump          declared read+write of the sender's own counter slot
//	alloc         declared read+write of the "next" id counter, plus an
//	              UNDECLARED write of the allocated "item/<id>" slot
//	sneak         empty declaration but a real read+write of "shadow" —
//	              the pure dynamic-conflict case
//	call          empty declaration, cross-contract bump on another ptest
//	fail          declared write that then reverts
//	pay           value transfer out of escrow; serial-only (no declaration)
type ptest struct {
	beneficiary Address
	callee      string
}

func pslot(n uint64) string { return fmt.Sprintf("slot/%d", n) }

func (p *ptest) bump(ctx *CallContext, key string) ([]byte, error) {
	raw, err := ctx.Store.Get(key)
	if err != nil {
		return nil, err
	}
	var n uint64
	if len(raw) == 8 {
		n = binary.BigEndian.Uint64(raw)
	}
	n++
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, n)
	if err := ctx.Store.Set(key, buf); err != nil {
		return nil, err
	}
	if err := ctx.EmitIndexed("Bumped", []byte(key), buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (p *ptest) Call(ctx *CallContext, method string, args []byte) ([]byte, error) {
	switch method {
	case "set":
		if len(args) < 8 {
			return nil, errors.New("short args")
		}
		return p.bump(ctx, pslot(binary.BigEndian.Uint64(args)))
	case "bump":
		return p.bump(ctx, "cnt/"+ctx.Sender.String())
	case "alloc":
		raw, err := ctx.Store.Get("next")
		if err != nil {
			return nil, err
		}
		var id uint64
		if len(raw) == 8 {
			id = binary.BigEndian.Uint64(raw)
		}
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, id+1)
		if err := ctx.Store.Set("next", buf); err != nil {
			return nil, err
		}
		if err := ctx.Store.Set(fmt.Sprintf("item/%d", id), ctx.Sender[:]); err != nil {
			return nil, err
		}
		return buf, nil
	case "sneak":
		return p.bump(ctx, "shadow")
	case "call":
		return ctx.CallContract(p.callee, "bump", nil)
	case "fail":
		if err := ctx.Store.Set("junk", []byte("rolled back")); err != nil {
			return nil, err
		}
		return nil, errors.New("deliberate failure")
	case "pay":
		return nil, ctx.Transfer(p.beneficiary, ctx.Value)
	default:
		return nil, errors.New("unknown method")
	}
}

func (p *ptest) DeclareRW(sender Address, method string, args []byte, value uint64) (RWDecl, bool) {
	switch method {
	case "set":
		if len(args) < 8 {
			return RWDecl{}, true // call will revert without touching storage
		}
		k := pslot(binary.BigEndian.Uint64(args))
		return RWDecl{Reads: []string{k}, Writes: []string{k}}, true
	case "bump":
		k := "cnt/" + sender.String()
		return RWDecl{Reads: []string{k}, Writes: []string{k}}, true
	case "alloc":
		// The item/<id> write is deliberately left undeclared.
		return RWDecl{Reads: []string{"next"}, Writes: []string{"next"}}, true
	case "sneak", "call":
		return RWDecl{}, true
	case "fail":
		return RWDecl{Writes: []string{"junk"}}, true
	case "pay":
		return RWDecl{}, false // dynamic Transfer target: serial-only
	default:
		return RWDecl{}, true
	}
}

// batchFixture builds a chain with two ptest contracts and funded senders.
func batchFixture(t *testing.T, nSenders int) (*Chain, []Address) {
	t.Helper()
	c := New()
	beneficiary := AddressFromString("beneficiary")
	if _, err := c.Deploy("pb", &ptest{beneficiary: beneficiary}, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("pa", &ptest{beneficiary: beneficiary, callee: "pb"}, 500); err != nil {
		t.Fatal(err)
	}
	senders := make([]Address, nSenders)
	for i := range senders {
		senders[i] = AddressFromString(fmt.Sprintf("sender-%d", i))
		c.Faucet(senders[i], 1_000_000)
	}
	return c, senders
}

// randomBatch generates a batch mixing every transaction shape, with
// per-sender nonces tracked so most are valid and a sprinkle malformed.
func randomBatch(rng *rand.Rand, senders []Address, size int) []Transaction {
	nonces := make(map[Address]uint64)
	txs := make([]Transaction, 0, size)
	for len(txs) < size {
		from := senders[rng.Intn(len(senders))]
		tx := Transaction{From: from, Nonce: nonces[from]}
		bump := true
		switch rng.Intn(12) {
		case 0: // plain transfer, warm recipient
			tx.To = senders[rng.Intn(len(senders))]
			tx.Value = uint64(rng.Intn(500))
		case 1: // plain transfer, cold recipient
			tx.To = AddressFromString(fmt.Sprintf("cold-%d", rng.Intn(5)))
			tx.Value = uint64(rng.Intn(500))
		case 2: // shared-slot write: conflicts when slots collide
			tx.Contract = "pa"
			tx.Method = "set"
			buf := make([]byte, 8)
			binary.BigEndian.PutUint64(buf, uint64(rng.Intn(4)))
			tx.Args = buf
		case 3: // per-sender counter: conflict-free across senders
			tx.Contract = "pa"
			tx.Method = "bump"
		case 4: // id allocation with undeclared item write
			tx.Contract = "pa"
			tx.Method = "alloc"
		case 5: // undeclared shared write
			tx.Contract = "pa"
			tx.Method = "sneak"
		case 6: // cross-contract call
			tx.Contract = "pa"
			tx.Method = "call"
		case 7: // revert path
			tx.Contract = "pa"
			tx.Method = "fail"
		case 8: // serial-only, value-bearing
			tx.Contract = "pa"
			tx.Method = "pay"
			tx.Value = uint64(rng.Intn(200))
		case 9: // malformed: bad nonce
			tx.To = senders[rng.Intn(len(senders))]
			tx.Nonce += uint64(1 + rng.Intn(3))
			bump = false
		case 10: // malformed: unknown contract (nonce still advances!)
			tx.Contract = "nope"
			tx.Method = "x"
		case 11: // out of gas mid-call
			tx.Contract = "pa"
			tx.Method = "bump"
			tx.GasLimit = GasTxBase + GasSLoad/2
		}
		if bump {
			nonces[from]++
		}
		txs = append(txs, tx)
	}
	return txs
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// diffOutcome fails the test when the parallel outcome of tx i differs
// from the serial reference in any observable way.
func diffOutcome(t *testing.T, i int, serial, par TxOutcome) {
	t.Helper()
	if errText(serial.Err) != errText(par.Err) {
		t.Fatalf("tx %d: error %q, serial %q", i, errText(par.Err), errText(serial.Err))
	}
	sr, pr := serial.Receipt, par.Receipt
	if (sr == nil) != (pr == nil) {
		t.Fatalf("tx %d: receipt presence %v, serial %v", i, pr != nil, sr != nil)
	}
	if sr == nil {
		return
	}
	if pr.TxHash != sr.TxHash || pr.GasUsed != sr.GasUsed {
		t.Fatalf("tx %d: hash/gas (%x,%d), serial (%x,%d)", i, pr.TxHash[:4], pr.GasUsed, sr.TxHash[:4], sr.GasUsed)
	}
	if string(pr.Return) != string(sr.Return) {
		t.Fatalf("tx %d: return %x, serial %x", i, pr.Return, sr.Return)
	}
	if errText(pr.Err) != errText(sr.Err) {
		t.Fatalf("tx %d: receipt err %q, serial %q", i, errText(pr.Err), errText(sr.Err))
	}
	if len(pr.Logs) != len(sr.Logs) {
		t.Fatalf("tx %d: %d logs, serial %d", i, len(pr.Logs), len(sr.Logs))
	}
	for j := range pr.Logs {
		pl, sl := pr.Logs[j], sr.Logs[j]
		if pl.Contract != sl.Contract || pl.Name != sl.Name ||
			string(pl.Topic) != string(sl.Topic) || string(pl.Data) != string(sl.Data) {
			t.Fatalf("tx %d log %d: %+v, serial %+v", i, j, pl, sl)
		}
	}
}

// diffChains fails the test when the two chains diverge in sealed block
// hash (covers tx order and state root), account state, or event index.
func diffChains(t *testing.T, serial, par *Chain, addrs []Address) {
	t.Helper()
	sb, pb := serial.SealBlock(), par.SealBlock()
	if sb.Hash() != pb.Hash() {
		t.Fatalf("sealed block hash %s, serial %s (state root %s vs %s)",
			pb.Hash(), sb.Hash(), pb.StateRoot, sb.StateRoot)
	}
	for _, a := range addrs {
		if pg, sg := par.BalanceOf(a), serial.BalanceOf(a); pg != sg {
			t.Fatalf("balance of %s: %d, serial %d", a, pg, sg)
		}
		if pn, sn := par.NonceOf(a), serial.NonceOf(a); pn != sn {
			t.Fatalf("nonce of %s: %d, serial %d", a, pn, sn)
		}
	}
	for _, ev := range []struct{ contract, name string }{{"pa", "Bumped"}, {"pb", "Bumped"}} {
		se := serial.EventsByName(ev.contract, ev.name)
		pe := par.EventsByName(ev.contract, ev.name)
		if len(se) != len(pe) {
			t.Fatalf("%s.%s: %d events, serial %d", ev.contract, ev.name, len(pe), len(se))
		}
		for j := range se {
			if string(se[j].Topic) != string(pe[j].Topic) || string(se[j].Data) != string(pe[j].Data) {
				t.Fatalf("%s.%s event %d diverged", ev.contract, ev.name, j)
			}
		}
	}
}

// auditAddrs is every address a random batch can touch.
func auditAddrs(senders []Address) []Address {
	addrs := append([]Address(nil), senders...)
	for i := 0; i < 5; i++ {
		addrs = append(addrs, AddressFromString(fmt.Sprintf("cold-%d", i)))
	}
	addrs = append(addrs, AddressFromString("beneficiary"),
		ContractAddress("pa"), ContractAddress("pb"), Address{})
	return addrs
}

// TestSubmitBatchMatchesSerialRandomized is the bit-identity property
// test: randomized workloads over every transaction shape, executed
// serially on one chain and in parallel on another, must produce identical
// outcomes, blocks, and state.
func TestSubmitBatchMatchesSerialRandomized(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		for _, workers := range []int{2, 4, 8} {
			rng := rand.New(rand.NewSource(seed*100 + int64(workers)))
			serialChain, senders := batchFixture(t, 2+rng.Intn(6))
			parChain, _ := batchFixture(t, len(senders))

			for round := 0; round < 3; round++ {
				txs := randomBatch(rng, senders, 5+rng.Intn(40))
				serialOut := serialChain.SubmitBatch(txs, 1)
				parOut := parChain.SubmitBatch(txs, workers)
				for i := range txs {
					diffOutcome(t, i, serialOut[i], parOut[i])
				}
				diffChains(t, serialChain, parChain, auditAddrs(senders))
			}
		}
	}
}

// TestSubmitBatchConflictLightCommitsSpeculatively pins that the engine
// actually speculates: disjoint senders bumping their own counters must
// commit without any serial fallback.
func TestSubmitBatchConflictLightCommitsSpeculatively(t *testing.T) {
	c, senders := batchFixture(t, 8)
	txs := make([]Transaction, len(senders))
	for i, s := range senders {
		txs[i] = Transaction{From: s, Contract: "pa", Method: "bump", Nonce: 0}
	}
	out := c.SubmitBatch(txs, 4)
	for i, o := range out {
		if o.Err != nil || o.Receipt.Err != nil {
			t.Fatalf("tx %d failed: %v %v", i, o.Err, o.Receipt.Err)
		}
	}
	speculated, committed, conflicts, serial := c.ExecStats()
	if speculated != uint64(len(txs)) || committed != uint64(len(txs)) {
		t.Fatalf("speculated %d committed %d, want %d each", speculated, committed, len(txs))
	}
	if conflicts != 0 || serial != 0 {
		t.Fatalf("conflicts %d serial %d on a conflict-free batch", conflicts, serial)
	}
}

// TestSubmitBatchDynamicConflictFallsBack pins the other side: undeclared
// writes to a shared slot must be caught at validation and re-executed,
// still matching serial execution.
func TestSubmitBatchDynamicConflictFallsBack(t *testing.T) {
	serialChain, senders := batchFixture(t, 6)
	parChain, _ := batchFixture(t, 6)
	txs := make([]Transaction, len(senders))
	for i, s := range senders {
		txs[i] = Transaction{From: s, Contract: "pa", Method: "sneak", Nonce: 0}
	}
	serialOut := serialChain.SubmitBatch(txs, 1)
	parOut := parChain.SubmitBatch(txs, 4)
	for i := range txs {
		diffOutcome(t, i, serialOut[i], parOut[i])
	}
	diffChains(t, serialChain, parChain, auditAddrs(senders))

	_, _, conflicts, serial := parChain.ExecStats()
	if conflicts == 0 || serial == 0 {
		t.Fatalf("conflicts %d serial %d: undeclared shared writes were not detected", conflicts, serial)
	}
	// The final counter must reflect every bump exactly once.
	raw := parChain.ReadStorage("pa", "shadow")
	if n := binary.BigEndian.Uint64(raw); n != uint64(len(txs)) {
		t.Fatalf("shadow counter %d, want %d", n, len(txs))
	}
}

// TestSubmitBatchSerialOnlyOrdering pins that serial-only transactions
// (no rw declaration) execute at commit time in block order, interleaved
// correctly with speculated neighbors — including escrowed value moves.
func TestSubmitBatchSerialOnlyOrdering(t *testing.T) {
	serialChain, senders := batchFixture(t, 4)
	parChain, _ := batchFixture(t, 4)
	var txs []Transaction
	for i, s := range senders {
		txs = append(txs,
			Transaction{From: s, Contract: "pa", Method: "pay", Value: uint64(100 + i), Nonce: 0},
			Transaction{From: s, Contract: "pa", Method: "bump", Nonce: 1},
		)
	}
	serialOut := serialChain.SubmitBatch(txs, 1)
	parOut := parChain.SubmitBatch(txs, 4)
	for i := range txs {
		diffOutcome(t, i, serialOut[i], parOut[i])
	}
	diffChains(t, serialChain, parChain, auditAddrs(senders))
}

// TestImportBlockParallelReplay seals blocks serially on a producer and
// replays them with a parallel importer; heights, hashes and state must
// agree, and a corrupted block must still roll back cleanly.
func TestImportBlockParallelReplay(t *testing.T) {
	producer, senders := batchFixture(t, 5)
	importer, _ := batchFixture(t, 5)
	importer.SetExecWorkers(8)

	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 3; round++ {
		txs := randomBatch(rng, senders, 30)
		for i := range txs {
			// The unknown-contract quirk advances the producer's nonce
			// without the transaction entering the block, so the sealed
			// stream would not replay; swap those for a well-formed call
			// consuming the same nonce.
			if txs[i].Contract == "nope" {
				txs[i].Contract, txs[i].Method = "pa", "bump"
			}
			// Skip malformed transactions: a sealed block only contains
			// processed ones.
			if _, err := producer.Submit(txs[i]); err != nil {
				continue
			}
		}
		b := producer.SealBlock()
		body, ok := producer.BlockBody(b.Number)
		if !ok {
			t.Fatalf("round %d: missing body", round)
		}
		if _, err := importer.ImportBlock(b, body); err != nil {
			t.Fatalf("round %d: import: %v", round, err)
		}
		if importer.HeadHash() != producer.HeadHash() {
			t.Fatalf("round %d: head hash diverged", round)
		}
	}

	// A block whose state root lies must be rejected and rolled back even
	// when replayed in parallel.
	txs := []Transaction{{From: senders[0], Contract: "pa", Method: "bump", Nonce: producer.NonceOf(senders[0])}}
	if _, err := producer.Submit(txs[0]); err != nil {
		t.Fatal(err)
	}
	b := producer.SealBlock()
	body, _ := producer.BlockBody(b.Number)
	bad := b
	bad.StateRoot[0] ^= 1
	preNonce := importer.NonceOf(senders[0])
	if _, err := importer.ImportBlock(bad, body); !errors.Is(err, ErrStateMismatch) {
		t.Fatalf("corrupted block: err %v, want ErrStateMismatch", err)
	}
	if got := importer.NonceOf(senders[0]); got != preNonce {
		t.Fatalf("rollback failed: nonce %d, want %d", got, preNonce)
	}
	if _, err := importer.ImportBlock(b, body); err != nil {
		t.Fatalf("honest block after rollback: %v", err)
	}
	if importer.HeadHash() != producer.HeadHash() {
		t.Fatal("head hash diverged after recovery")
	}
}

// TestStateRootDigestCacheMatchesFullWalk pins the cached per-contract
// digest to the uncached full walk across mutation paths: writes, deletes,
// reverts, and batch commits.
func TestStateRootDigestCacheMatchesFullWalk(t *testing.T) {
	c, senders := batchFixture(t, 4)
	check := func(stage string) {
		t.Helper()
		c.mu.Lock()
		for name, st := range c.storages {
			if got, want := st.digest(), st.digestFull(); got != want {
				c.mu.Unlock()
				t.Fatalf("%s: %s digest cache diverged from full walk", stage, name)
			}
		}
		c.mu.Unlock()
	}
	check("empty")

	mustSubmit := func(tx Transaction) {
		t.Helper()
		if _, err := c.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	mustSubmit(Transaction{From: senders[0], Contract: "pa", Method: "bump", Nonce: 0})
	check("after write")
	mustSubmit(Transaction{From: senders[0], Contract: "pa", Method: "fail", Nonce: 1})
	check("after revert")

	txs := make([]Transaction, len(senders))
	for i, s := range senders {
		n := uint64(0)
		if i == 0 {
			n = 2
		}
		txs[i] = Transaction{From: s, Contract: "pa", Method: "bump", Nonce: n}
	}
	c.SubmitBatch(txs, 4)
	check("after parallel batch")

	b := c.SealBlock()
	c.mu.Lock()
	root := c.stateRootLocked()
	c.mu.Unlock()
	if root != b.StateRoot {
		t.Fatal("state root changed without a mutation")
	}
}
