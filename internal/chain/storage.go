package chain

import (
	"crypto/sha256"
	"sort"
)

// Storage is a contract's persistent key-value store. Reads and writes go
// through a gas-metered view; values are opaque byte strings and an absent
// or empty value is the "zero" slot of the EVM cost model.
type Storage struct {
	data map[string][]byte
	gas  *GasMeter // nil on the root store; set on metered views
	jrnl *journal  // write journal for transaction rollback (metered views)
}

// journal records pre-images of mutated slots so a reverted transaction can
// undo exactly what it touched (instead of snapshotting the whole state).
type journal struct {
	entries []journalEntry
}

type journalEntry struct {
	store   *Storage
	key     string
	old     []byte
	existed bool
}

func (j *journal) record(s *Storage, key string) {
	old, existed := s.data[key]
	var cp []byte
	if existed {
		cp = make([]byte, len(old))
		copy(cp, old)
	}
	j.entries = append(j.entries, journalEntry{store: s, key: key, old: cp, existed: existed})
}

// revert undoes every write, newest first.
func (j *journal) revert() {
	for i := len(j.entries) - 1; i >= 0; i-- {
		e := j.entries[i]
		if e.existed {
			e.store.data[e.key] = e.old
		} else {
			delete(e.store.data, e.key)
		}
	}
	j.entries = nil
}

// NewStorage returns an empty store.
func NewStorage() *Storage {
	return &Storage{data: make(map[string][]byte)}
}

// metered returns a view that charges the given meter and journals writes.
// The view shares the underlying data.
func (s *Storage) metered(gas *GasMeter, j *journal) *Storage {
	return &Storage{data: s.data, gas: gas, jrnl: j}
}

// Get reads a slot, charging SLOAD gas on metered views.
func (s *Storage) Get(key string) ([]byte, error) {
	if s.gas != nil {
		if err := s.gas.Charge(GasSLoad); err != nil {
			return nil, err
		}
	}
	v, ok := s.data[key]
	if !ok {
		return nil, nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Set writes a slot, charging SSTORE gas: 20k for zero→non-zero, 5k
// otherwise. Multi-word values charge per 32-byte word, like Solidity
// dynamic storage.
func (s *Storage) Set(key string, value []byte) error {
	if s.gas != nil {
		words := uint64((len(value) + 31) / 32)
		if words == 0 {
			words = 1
		}
		_, existed := s.data[key]
		var cost uint64
		if !existed {
			cost = GasSStoreSet * words
		} else {
			cost = GasSStoreReset * words
		}
		if err := s.gas.Charge(cost); err != nil {
			return err
		}
	}
	if s.jrnl != nil {
		s.jrnl.record(s, key)
	}
	out := make([]byte, len(value))
	copy(out, value)
	s.data[key] = out
	return nil
}

// Delete clears a slot.
func (s *Storage) Delete(key string) error {
	if s.gas != nil {
		if err := s.gas.Charge(GasSStoreClear); err != nil {
			return err
		}
	}
	if s.jrnl != nil {
		s.jrnl.record(s, key)
	}
	delete(s.data, key)
	return nil
}

// Has reports whether a slot is non-empty (charges a read).
func (s *Storage) Has(key string) (bool, error) {
	v, err := s.Get(key)
	return len(v) > 0, err
}

// digest hashes the store contents deterministically.
func (s *Storage) digest() [32]byte {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
		h.Write(s.data[k])
		h.Write([]byte{1})
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
