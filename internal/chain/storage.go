package chain

import (
	"crypto/sha256"
	"sort"
)

// Storage is a contract's persistent key-value store. Reads and writes go
// through a gas-metered view; values are opaque byte strings and an absent
// or empty value is the "zero" slot of the EVM cost model.
//
// A Storage is one of three shapes:
//
//   - the root store (held in Chain.storages): owns the data map and the
//     cached digest,
//   - a metered view (metered): shares the root's data, charges a gas
//     meter, journals writes, and invalidates the root's digest cache, or
//   - an overlay view (ov != nil): used by the parallel executor; reads
//     and writes are redirected to a speculative overlay (see execview.go)
//     and never touch the root data until the engine commits them.
type Storage struct {
	data map[string][]byte
	gas  *GasMeter // nil on the root store; set on metered views
	jrnl *journal  // write journal for transaction rollback (metered views)
	ov   *storeOverlay // speculative overlay; nil outside parallel execution

	// rootRef points from a metered view back to the root store so writes
	// through the view can invalidate the digest cache; nil on the root.
	rootRef *Storage

	// Cached content digest, maintained on the root store only. Every
	// mutation path (Set, Delete, journal revert, snapshot restore, batch
	// commit) goes through invalidate(), which keeps the state root
	// O(touched contracts) per seal instead of O(total slots).
	dig   [32]byte
	digOK bool
}

// journal records pre-images of mutated slots so a reverted transaction can
// undo exactly what it touched (instead of snapshotting the whole state).
type journal struct {
	entries []journalEntry
}

type journalEntry struct {
	store   *Storage
	key     string
	old     []byte
	existed bool
}

func (j *journal) record(s *Storage, key string) {
	old, existed := s.data[key]
	var cp []byte
	if existed {
		cp = make([]byte, len(old))
		copy(cp, old)
	}
	j.entries = append(j.entries, journalEntry{store: s, key: key, old: cp, existed: existed})
}

// revert undoes every write, newest first.
func (j *journal) revert() {
	for i := len(j.entries) - 1; i >= 0; i-- {
		e := j.entries[i]
		if e.existed {
			e.store.data[e.key] = e.old
		} else {
			delete(e.store.data, e.key)
		}
		e.store.invalidate()
	}
	j.entries = nil
}

// NewStorage returns an empty store.
func NewStorage() *Storage {
	return &Storage{data: make(map[string][]byte)}
}

// metered returns a view that charges the given meter and journals writes.
// The view shares the underlying data (or, on an overlay view, the overlay).
func (s *Storage) metered(gas *GasMeter, j *journal) *Storage {
	return &Storage{data: s.data, gas: gas, jrnl: j, ov: s.ov, rootRef: s.root()}
}

// root resolves the digest-cache owner of this view.
func (s *Storage) root() *Storage {
	if s.rootRef != nil {
		return s.rootRef
	}
	return s
}

// invalidate drops the root store's cached digest; called on every path
// that mutates the underlying data.
func (s *Storage) invalidate() {
	s.root().digOK = false
}

// Get reads a slot, charging SLOAD gas on metered views.
func (s *Storage) Get(key string) ([]byte, error) {
	if s.gas != nil {
		if err := s.gas.Charge(GasSLoad); err != nil {
			return nil, err
		}
	}
	var (
		v  []byte
		ok bool
	)
	if s.ov != nil {
		v, ok = s.ov.get(key)
	} else {
		v, ok = s.data[key]
	}
	if !ok {
		return nil, nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Set writes a slot, charging SSTORE gas: 20k for zero→non-zero, 5k
// otherwise. Multi-word values charge per 32-byte word, like Solidity
// dynamic storage.
func (s *Storage) Set(key string, value []byte) error {
	if s.gas != nil {
		words := uint64((len(value) + 31) / 32)
		if words == 0 {
			words = 1
		}
		// The charge depends on whether the slot exists, so on an overlay
		// this is an observation the conflict detector must validate: a
		// racing creator of the same slot changes this transaction's gas.
		var existed bool
		if s.ov != nil {
			existed = s.ov.exists(key)
		} else {
			_, existed = s.data[key]
		}
		var cost uint64
		if !existed {
			cost = GasSStoreSet * words
		} else {
			cost = GasSStoreReset * words
		}
		if err := s.gas.Charge(cost); err != nil {
			return err
		}
	}
	if s.ov != nil {
		s.ov.set(key, value)
		return nil
	}
	if s.jrnl != nil {
		s.jrnl.record(s, key)
	}
	out := make([]byte, len(value))
	copy(out, value)
	s.data[key] = out
	s.invalidate()
	return nil
}

// Delete clears a slot.
func (s *Storage) Delete(key string) error {
	if s.gas != nil {
		if err := s.gas.Charge(GasSStoreClear); err != nil {
			return err
		}
	}
	if s.ov != nil {
		s.ov.del(key)
		return nil
	}
	if s.jrnl != nil {
		s.jrnl.record(s, key)
	}
	delete(s.data, key)
	s.invalidate()
	return nil
}

// Has reports whether a slot is non-empty (charges a read).
func (s *Storage) Has(key string) (bool, error) {
	v, err := s.Get(key)
	return len(v) > 0, err
}

// digest hashes the store contents deterministically, serving from the
// cache when no slot changed since the last call.
func (s *Storage) digest() [32]byte {
	r := s.root()
	if r.digOK {
		return r.dig
	}
	d := r.digestFull()
	r.dig, r.digOK = d, true
	return d
}

// digestFull is the uncached full walk; the digest-cache test pins
// digest() to it.
func (s *Storage) digestFull() [32]byte {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
		h.Write(s.data[k])
		h.Write([]byte{1})
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}
