package chain

import (
	"encoding/binary"
	"errors"
	"testing"
)

// counter is a toy contract: "inc" adds 1 to a stored counter, "get" reads
// it, "fail" always reverts after writing (to test rollback), "pay" sends
// escrowed funds to a hard-coded beneficiary.
type counter struct {
	beneficiary Address
}

func (c *counter) Call(ctx *CallContext, method string, args []byte) ([]byte, error) {
	switch method {
	case "inc":
		raw, err := ctx.Store.Get("count")
		if err != nil {
			return nil, err
		}
		var n uint64
		if len(raw) == 8 {
			n = binary.BigEndian.Uint64(raw)
		}
		n++
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, n)
		if err := ctx.Store.Set("count", buf); err != nil {
			return nil, err
		}
		if err := ctx.Emit("Incremented", buf); err != nil {
			return nil, err
		}
		return buf, nil
	case "get":
		return ctx.Store.Get("count")
	case "fail":
		if err := ctx.Store.Set("junk", []byte("should be rolled back")); err != nil {
			return nil, err
		}
		return nil, errors.New("deliberate failure")
	case "pay":
		return nil, ctx.Transfer(c.beneficiary, ctx.Value)
	default:
		return nil, errors.New("unknown method")
	}
}

func newTestChain(t *testing.T) (*Chain, Address) {
	t.Helper()
	c := New()
	alice := AddressFromString("alice")
	c.Faucet(alice, 1_000_000)
	return c, alice
}

func deployCounter(t *testing.T, c *Chain, beneficiary Address) {
	t.Helper()
	if _, err := c.Deploy("counter", &counter{beneficiary: beneficiary}, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestDeployAndCall(t *testing.T) {
	c, alice := newTestChain(t)
	deployCounter(t, c, alice)

	gas, err := c.Deploy("counter2", &counter{}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(GasTxBase + GasCreateBase + 2000*GasCodeDepositByte); gas != want {
		t.Fatalf("deploy gas %d, want %d", gas, want)
	}
	if _, err := c.Deploy("counter", &counter{}, 10); !errors.Is(err, ErrDuplicateName) {
		t.Fatal("duplicate deploy accepted")
	}

	r, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Err != nil {
		t.Fatalf("call reverted: %v", r.Err)
	}
	if n := binary.BigEndian.Uint64(r.Return); n != 1 {
		t.Fatalf("count = %d, want 1", n)
	}
	if len(r.Logs) != 1 || r.Logs[0].Name != "Incremented" {
		t.Fatalf("logs = %+v", r.Logs)
	}
	if r.GasUsed <= GasTxBase {
		t.Fatal("no gas charged beyond intrinsic")
	}
}

func TestNonceEnforcement(t *testing.T) {
	c, alice := newTestChain(t)
	deployCounter(t, c, alice)
	if _, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: 5}); !errors.Is(err, ErrBadNonce) {
		t.Fatal("wrong nonce accepted")
	}
	if _, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	if got := c.NonceOf(alice); got != 2 {
		t.Fatalf("nonce = %d, want 2", got)
	}
}

func TestRevertRollsBackState(t *testing.T) {
	c, alice := newTestChain(t)
	deployCounter(t, c, alice)
	r, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "fail", Nonce: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Err == nil {
		t.Fatal("failing call did not revert")
	}
	// The junk write must have been rolled back.
	r2, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "get", Nonce: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Return) != 0 {
		t.Fatal("state from reverted call persisted")
	}
}

func TestValueTransferAndRevertRefund(t *testing.T) {
	c, alice := newTestChain(t)
	bob := AddressFromString("bob")
	deployCounter(t, c, bob)

	// Successful payment routes value to the beneficiary.
	if _, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "pay", Value: 500, Nonce: 0}); err != nil {
		t.Fatal(err)
	}
	if got := c.BalanceOf(bob); got != 500 {
		t.Fatalf("bob balance %d, want 500", got)
	}
	if got := c.BalanceOf(alice); got != 999_500 {
		t.Fatalf("alice balance %d", got)
	}

	// Value sent to a reverting call is refunded.
	r, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "fail", Value: 100, Nonce: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Err == nil {
		t.Fatal("expected revert")
	}
	if got := c.BalanceOf(alice); got != 999_500 {
		t.Fatalf("alice balance after revert %d, want 999500", got)
	}

	// Overdraft rejected outright.
	if _, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "pay", Value: 10_000_000, Nonce: 2}); !errors.Is(err, ErrInsufficientFund) {
		t.Fatal("overdraft accepted")
	}
}

func TestUnknownContract(t *testing.T) {
	c, alice := newTestChain(t)
	if _, err := c.Submit(Transaction{From: alice, Contract: "nope", Method: "x", Nonce: 0}); !errors.Is(err, ErrUnknownContract) {
		t.Fatal("unknown contract accepted")
	}
}

func TestOutOfGas(t *testing.T) {
	c, alice := newTestChain(t)
	deployCounter(t, c, alice)
	r, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: 0, GasLimit: 22000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Err == nil || !errors.Is(r.Err, ErrOutOfGas) {
		t.Fatalf("expected out of gas, got %v", r.Err)
	}
}

func TestBlockSealingAndIntegrity(t *testing.T) {
	c, alice := newTestChain(t)
	deployCounter(t, c, alice)
	r1, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: 0})
	if err != nil {
		t.Fatal(err)
	}
	b1 := c.SealBlock()
	if b1.Number != 1 || len(b1.TxHashes) != 1 || b1.TxHashes[0] != r1.TxHash {
		t.Fatalf("block 1 malformed: %+v", b1)
	}
	if _, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	b2 := c.SealBlock()
	if b2.Parent == (Hash{}) {
		t.Fatal("block 2 has empty parent")
	}
	if err := c.VerifyIntegrity(); err != nil {
		t.Fatalf("honest chain fails integrity: %v", err)
	}
	if got := c.Height(); got != 2 {
		t.Fatalf("height = %d", got)
	}
	// Tamper with a sealed block.
	c.blocks[1].TxHashes = nil
	if err := c.VerifyIntegrity(); err == nil {
		t.Fatal("tampered chain passes integrity")
	}
}

func TestReceiptLookup(t *testing.T) {
	c, alice := newTestChain(t)
	deployCounter(t, c, alice)
	r, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: 0})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Receipt(r.TxHash)
	if !ok || got.GasUsed != r.GasUsed {
		t.Fatal("receipt lookup failed")
	}
	if _, ok := c.Receipt(Hash{1}); ok {
		t.Fatal("phantom receipt")
	}
}

func TestStorageGasCosts(t *testing.T) {
	gas := NewGasMeter(1_000_000)
	s := NewStorage().metered(gas, &journal{})
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	afterSet := gas.Used()
	if afterSet != GasSStoreSet {
		t.Fatalf("first set cost %d, want %d", afterSet, GasSStoreSet)
	}
	if err := s.Set("k", []byte("w")); err != nil {
		t.Fatal(err)
	}
	if got := gas.Used() - afterSet; got != GasSStoreReset {
		t.Fatalf("reset cost %d, want %d", got, GasSStoreReset)
	}
	before := gas.Used()
	if _, err := s.Get("k"); err != nil {
		t.Fatal(err)
	}
	if got := gas.Used() - before; got != GasSLoad {
		t.Fatalf("load cost %d, want %d", got, GasSLoad)
	}
	// Multi-word values charge per word.
	before = gas.Used()
	big := make([]byte, 100) // 4 words
	if err := s.Set("big", big); err != nil {
		t.Fatal(err)
	}
	if got := gas.Used() - before; got != 4*GasSStoreSet {
		t.Fatalf("multi-word set cost %d, want %d", got, 4*GasSStoreSet)
	}
}

func TestGasMeterExhaustion(t *testing.T) {
	g := NewGasMeter(100)
	if err := g.Charge(60); err != nil {
		t.Fatal(err)
	}
	if err := g.Charge(50); !errors.Is(err, ErrOutOfGas) {
		t.Fatal("over-limit charge accepted")
	}
	if g.Remaining() != 0 {
		t.Fatalf("remaining = %d after exhaustion", g.Remaining())
	}
}

func TestStorageIsolationBetweenContracts(t *testing.T) {
	c, alice := newTestChain(t)
	deployCounter(t, c, alice)
	if _, err := c.Deploy("other", &counter{}, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: 0}); err != nil {
		t.Fatal(err)
	}
	r, err := c.Submit(Transaction{From: alice, Contract: "other", Method: "get", Nonce: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Return) != 0 {
		t.Fatal("storage leaked across contracts")
	}
}

func TestEventsByName(t *testing.T) {
	c, alice := newTestChain(t)
	deployCounter(t, c, alice)
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(Transaction{From: alice, Contract: "counter", Method: "inc", Nonce: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			c.SealBlock() // events must be found across sealed and pending txs
		}
	}
	evs := c.EventsByName("counter", "Incremented")
	if len(evs) != 3 {
		t.Fatalf("found %d events, want 3", len(evs))
	}
	// Order: the data payload encodes the counter value 1, 2, 3.
	for i, ev := range evs {
		if got := binary.BigEndian.Uint64(ev.Data); got != uint64(i+1) {
			t.Fatalf("event %d has value %d", i, got)
		}
	}
	if evs := c.EventsByName("counter", "Nope"); len(evs) != 0 {
		t.Fatal("phantom events")
	}
	if evs := c.EventsByName("nope", "Incremented"); len(evs) != 0 {
		t.Fatal("phantom contract events")
	}
}
