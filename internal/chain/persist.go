package chain

// State export/restore — the chain half of the durable state engine. The
// snapshot layer (internal/snapshot) serializes a StateExport to disk with
// a checkpoint of the head block's state root; RestoreState re-verifies
// that root against freshly recomputed storage digests, so a snapshot that
// was corrupted, truncated, or tampered with can never be loaded as state.
//
// Contracts themselves are NOT exported: genesis deployment is
// deterministic (same contract suite, same verifying keys, same order), so
// a restoring node first re-runs its genesis function and then restores
// the exported state on top. That keeps Go contract objects out of the
// serialization surface entirely.

import (
	"errors"
	"fmt"
	"sort"
)

// Errors returned by the persistence API.
var (
	ErrStatePending  = errors.New("chain: cannot export state with unsealed pending transactions")
	ErrRestoreTarget = errors.New("chain: restore target must be a freshly deployed genesis chain")
	ErrStateRoot     = errors.New("chain: restored state root does not match the checkpointed header")
	ErrBadExport     = errors.New("chain: state export is internally inconsistent")
)

// AccountState is one account's exported balance and nonce.
type AccountState struct {
	Balance uint64
	Nonce   uint64
}

// BlockData pairs a sealed block's body with its receipts, aligned by
// transaction index.
type BlockData struct {
	Txs      []Transaction
	Receipts []*Receipt
}

// StateExport is a self-contained copy of everything a chain needs to come
// back after a restart: every header, the bodies and receipts of retained
// blocks (full-role nodes prune old ones), and the materialized state.
// The event index is not exported — it is rebuilt from the retained
// receipts in block order, which keeps the two structurally consistent by
// construction.
type StateExport struct {
	Blocks   []Block              // all headers, genesis through head
	Bodies   map[uint64]BlockData // block number → body + receipts (may be partial on pruned nodes)
	Accounts map[Address]AccountState
	Storages map[string]map[string][]byte // contract name → slots
}

// Height returns the exported head height.
func (e *StateExport) Height() uint64 { return e.Blocks[len(e.Blocks)-1].Number }

// StateRoot returns the exported head's checkpointed state root.
func (e *StateExport) StateRoot() Hash { return e.Blocks[len(e.Blocks)-1].StateRoot }

// ExportState deep-copies the chain's durable state at the current head.
// It refuses while executed-but-unsealed transactions are pending: their
// effects are in the state but not under any header's state root, so a
// snapshot taken now would not be self-verifying. The checkpoint scheduler
// calls this from an OnSeal hook, where the pending set has just been
// drained.
func (c *Chain) ExportState() (*StateExport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pending) != 0 {
		return nil, fmt.Errorf("%w: %d", ErrStatePending, len(c.pending))
	}
	exp := &StateExport{
		Blocks:   make([]Block, len(c.blocks)),
		Bodies:   make(map[uint64]BlockData, len(c.blocks)),
		Accounts: make(map[Address]AccountState, len(c.accounts)),
		Storages: make(map[string]map[string][]byte, len(c.storages)),
	}
	copy(exp.Blocks, c.blocks) // headers are immutable once sealed
	for _, b := range c.blocks {
		if len(b.TxHashes) == 0 {
			continue
		}
		bd := BlockData{
			Txs:      make([]Transaction, len(b.TxHashes)),
			Receipts: make([]*Receipt, len(b.TxHashes)),
		}
		complete := true
		for i, h := range b.TxHashes {
			tx, ok := c.txs[h]
			if !ok {
				complete = false // pruned body; snapshot omits the block
				break
			}
			bd.Txs[i] = tx
			bd.Receipts[i] = c.receipts[h] // receipts are immutable post-commit
		}
		if complete {
			exp.Bodies[b.Number] = bd
		}
	}
	for a, acc := range c.accounts {
		exp.Accounts[a] = AccountState{Balance: acc.balance, Nonce: acc.nonce}
	}
	for name, st := range c.storages {
		cp := make(map[string][]byte, len(st.data))
		for k, v := range st.data {
			vc := make([]byte, len(v))
			copy(vc, v)
			cp[k] = vc
		}
		exp.Storages[name] = cp
	}
	return exp, nil
}

// RestoreState installs an exported state onto a freshly deployed genesis
// chain (contracts deployed, no blocks sealed, no transactions processed).
// The restore is self-verifying and atomic: headers must hash-link, bodies
// must match their headers' transaction hashes, and the recomputed state
// root must equal the export's checkpointed head root — any failure rolls
// the chain back to its pre-restore genesis and returns an error, so
// corrupt state is never half-loaded.
//
// Like SealBlock, every restored block is dispatched to the OnSeal hooks
// in height order (with its receipts where retained), so indexers attached
// before the restore rebuild their indexes consistently.
func (c *Chain) RestoreState(exp *StateExport) error {
	if err := validateExport(exp); err != nil {
		return err
	}
	c.sealMu.Lock()
	defer c.sealMu.Unlock()

	c.mu.Lock()
	if len(c.blocks) != 1 || len(c.pending) != 0 || len(c.txs) != 0 {
		height, pending, txs := len(c.blocks)-1, len(c.pending), len(c.txs)
		c.mu.Unlock()
		return fmt.Errorf("%w: height %d, %d pending, %d txs",
			ErrRestoreTarget, height, pending, txs)
	}
	// Iterate sorted so the reported offender is deterministic (detreplay:
	// an error that depends on map order diverges across replays).
	names := make([]string, 0, len(exp.Storages))
	for name := range exp.Storages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := c.storages[name]; !ok {
			c.mu.Unlock()
			return fmt.Errorf("%w: storage for undeployed contract %q", ErrBadExport, name)
		}
	}

	// Install state under the protection of the chain's own rollback
	// snapshot, then verify the root before committing to the headers.
	snap := c.snapshotLocked()
	for name, st := range c.storages {
		data, ok := exp.Storages[name]
		if !ok {
			data = map[string][]byte{}
		}
		cp := make(map[string][]byte, len(data))
		for k, v := range data {
			vc := make([]byte, len(v))
			copy(vc, v)
			cp[k] = vc
		}
		st.data = cp
		st.invalidate()
	}
	for a := range c.accounts {
		delete(c.accounts, a)
	}
	for a, st := range exp.Accounts {
		c.accounts[a] = &account{balance: st.Balance, nonce: st.Nonce}
	}
	if got, want := c.stateRootLocked(), exp.StateRoot(); got != want {
		c.restoreLocked(snap)
		c.mu.Unlock()
		return fmt.Errorf("%w: recomputed %s, checkpoint %s", ErrStateRoot, got, want)
	}

	// Root verified: commit headers, bodies, receipts, and rebuild the
	// event index from receipts in block order.
	c.blocks = make([]Block, len(exp.Blocks))
	copy(c.blocks, exp.Blocks)
	type dispatch struct {
		b        Block
		receipts []*Receipt
	}
	dispatches := make([]dispatch, 0, len(exp.Blocks)-1)
	for _, b := range exp.Blocks[1:] {
		bd, ok := exp.Bodies[b.Number]
		if !ok {
			dispatches = append(dispatches, dispatch{b: b}) // pruned body
			continue
		}
		for i, h := range b.TxHashes {
			c.txs[h] = bd.Txs[i]
			if r := bd.Receipts[i]; r != nil {
				c.receipts[h] = r
				for _, ev := range r.Logs {
					k := eventKey(ev.Contract, ev.Name)
					c.eventIdx[k] = append(c.eventIdx[k], ev)
				}
			}
		}
		dispatches = append(dispatches, dispatch{b: b, receipts: bd.Receipts})
	}
	hooks := c.sealHooks
	c.mu.Unlock()

	for _, d := range dispatches {
		for _, fn := range hooks {
			fn(d.b, d.receipts)
		}
	}
	return nil
}

// validateExport checks the export's internal structure without touching
// the chain: header links and body/header transaction-hash agreement.
func validateExport(exp *StateExport) error {
	if exp == nil || len(exp.Blocks) == 0 {
		return fmt.Errorf("%w: no blocks", ErrBadExport)
	}
	if exp.Blocks[0].Number != 0 {
		return fmt.Errorf("%w: first block is %d, not genesis", ErrBadExport, exp.Blocks[0].Number)
	}
	for i := 1; i < len(exp.Blocks); i++ {
		b := exp.Blocks[i]
		if b.Number != uint64(i) {
			return fmt.Errorf("%w: block %d carries number %d", ErrBadExport, i, b.Number)
		}
		if b.Parent != exp.Blocks[i-1].hash() {
			return fmt.Errorf("%w: block %d parent hash mismatch", ErrBadExport, i)
		}
	}
	// Validate bodies in ascending block order so the first error reported
	// is deterministic (detreplay: map-order-dependent errors diverge
	// across replays).
	nums := make([]uint64, 0, len(exp.Bodies))
	for n := range exp.Bodies {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	for _, n := range nums {
		bd := exp.Bodies[n]
		if n == 0 || n >= uint64(len(exp.Blocks)) {
			return fmt.Errorf("%w: body for unknown block %d", ErrBadExport, n)
		}
		b := exp.Blocks[n]
		if len(bd.Txs) != len(b.TxHashes) || len(bd.Receipts) != len(b.TxHashes) {
			return fmt.Errorf("%w: block %d body/receipt count mismatch", ErrBadExport, n)
		}
		for i := range bd.Txs {
			if bd.Txs[i].hash() != b.TxHashes[i] {
				return fmt.Errorf("%w: block %d tx %d hash mismatch", ErrBadExport, n, i)
			}
			if bd.Receipts[i] != nil && bd.Receipts[i].TxHash != b.TxHashes[i] {
				return fmt.Errorf("%w: block %d receipt %d tx-hash mismatch", ErrBadExport, n, i)
			}
		}
	}
	return nil
}

// PruneBodies drops the bodies and receipts of every block strictly below
// the given height — the full-role storage policy: once a checkpoint
// covers a prefix of the chain, its bodies and receipts are redundant for
// recovery and are only kept by archive nodes. Headers are always
// retained (they are the hash-link spine sync and integrity checks walk).
// Returns the number of transactions whose bodies were dropped.
func (c *Chain) PruneBodies(below uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if below > uint64(len(c.blocks)) {
		below = uint64(len(c.blocks))
	}
	dropped := 0
	for _, b := range c.blocks[:below] {
		for _, h := range b.TxHashes {
			if _, ok := c.txs[h]; ok {
				delete(c.txs, h)
				delete(c.receipts, h)
				dropped++
			}
		}
	}
	return dropped
}
