package chain

import "errors"

// EVM-calibrated gas schedule (post-Berlin costs, simplified to the
// operations our contracts perform). Table II of the paper reports gas on
// the Rinkeby testnet; charging the same schedule for the same storage and
// precompile work reproduces its magnitudes.
const (
	// GasTxBase is the intrinsic cost of any transaction.
	GasTxBase = 21000
	// GasSStoreSet is charged when a storage slot goes zero → non-zero.
	GasSStoreSet = 20000
	// GasSStoreReset is charged when a non-zero slot is rewritten.
	GasSStoreReset = 5000
	// GasSStoreClear is charged when a slot is deleted (refunds ignored).
	GasSStoreClear = 5000
	// GasSLoad is the (cold) storage read cost.
	GasSLoad = 2100
	// GasLogBase, GasLogTopic, GasLogDataByte meter event emission.
	GasLogBase     = 375
	GasLogTopic    = 375
	GasLogDataByte = 8
	// GasCalldataByte approximates the average calldata byte cost.
	GasCalldataByte = 12
	// GasCreateBase and GasCodeDepositByte meter contract deployment.
	GasCreateBase      = 32000
	GasCodeDepositByte = 200
	// Precompile costs for on-chain proof verification (EIP-1108).
	GasPairingBase    = 45000
	GasPairingPerPair = 34000
	GasEcMul          = 6000
	GasEcAdd          = 150
	// GasHashPerWord meters hashing (keccak-equivalent).
	GasHashBase    = 30
	GasHashPerWord = 6
	// GasValueTransfer is the stipend-free cost of moving native value.
	GasValueTransfer = 9000
)

// ErrOutOfGas is returned when a call exceeds its gas limit.
var ErrOutOfGas = errors.New("chain: out of gas")

// DefaultGasLimit is the per-transaction gas limit used when a transaction
// does not specify one.
const DefaultGasLimit = 30_000_000

// GasMeter tracks gas consumption of one call.
type GasMeter struct {
	limit uint64
	used  uint64
}

// NewGasMeter returns a meter with the given limit.
func NewGasMeter(limit uint64) *GasMeter { return &GasMeter{limit: limit} }

// Charge consumes amount gas, returning ErrOutOfGas when the limit is hit.
func (g *GasMeter) Charge(amount uint64) error {
	if g.used+amount > g.limit {
		g.used = g.limit
		return ErrOutOfGas
	}
	g.used += amount
	return nil
}

// Used returns the gas consumed so far.
func (g *GasMeter) Used() uint64 { return g.used }

// Remaining returns the gas left.
func (g *GasMeter) Remaining() uint64 { return g.limit - g.used }
