// Package ff implements arithmetic in prime fields whose modulus fits in
// four 64-bit limbs (i.e. p < 2^256), using Montgomery representation with
// CIOS multiplication.
//
// The package is generic over the modulus: a Field value carries all derived
// constants (Montgomery R, R^2, and the inverse used by REDC), and Element
// values are meaningless without the Field that produced them. Concrete
// fields (the BN254 base and scalar fields) wrap this package with typed
// APIs in their own packages.
package ff

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
)

// Limbs is the number of 64-bit words in an element.
const Limbs = 4

// Element is a field element in Montgomery form, little-endian limbs.
// The zero value is the field's zero element.
type Element [Limbs]uint64

// Field holds a modulus and its derived Montgomery constants. A Field is
// immutable after construction and safe for concurrent use.type
type Field struct {
	modulus   [Limbs]uint64
	r         Element // 2^256 mod p == Montgomery form of 1
	r2        Element // 2^512 mod p, used to convert into Montgomery form
	inv       uint64  // -p^{-1} mod 2^64
	modBig    *big.Int
	pMinusTwo *big.Int
	bitLen    int
	byteLen   int
	modMinus1 [Limbs]uint64 // p-1 in plain form, used for Neg bound checks in tests
	unrolled  bool          // use the no-carry unrolled CIOS multiplication
}

// ErrNotInField reports a value that is not a canonical field element.
var ErrNotInField = errors.New("ff: value out of field range")

// NewField constructs a Field for the given odd prime modulus. The modulus
// must be odd, greater than 1, and strictly less than 2^256. Primality is
// the caller's responsibility (a composite modulus yields a ring, and
// Inverse/Exp-based routines silently misbehave).
func NewField(modulus *big.Int) (*Field, error) {
	if modulus.Sign() <= 0 || modulus.Bit(0) == 0 {
		return nil, fmt.Errorf("ff: modulus must be an odd positive integer, got %s", modulus)
	}
	if modulus.BitLen() > 256 {
		return nil, fmt.Errorf("ff: modulus must fit in 256 bits, got %d bits", modulus.BitLen())
	}
	f := &Field{
		modBig: new(big.Int).Set(modulus),
		bitLen: modulus.BitLen(),
	}
	f.byteLen = (f.bitLen + 7) / 8
	f.pMinusTwo = new(big.Int).Sub(modulus, big.NewInt(2))
	bigToLimbs(modulus, &f.modulus)
	bigToLimbs(new(big.Int).Sub(modulus, big.NewInt(1)), &f.modMinus1)

	two256 := new(big.Int).Lsh(big.NewInt(1), 256)
	rBig := new(big.Int).Mod(two256, modulus)
	bigToLimbs(rBig, (*[Limbs]uint64)(&f.r))
	r2Big := new(big.Int).Mul(rBig, rBig)
	r2Big.Mod(r2Big, modulus)
	bigToLimbs(r2Big, (*[Limbs]uint64)(&f.r2))

	// inv = -p^{-1} mod 2^64, via Newton iteration on the low limb.
	p0 := f.modulus[0]
	inv := p0 // 3 bits correct
	for i := 0; i < 5; i++ {
		inv *= 2 - p0*inv
	}
	f.inv = -inv
	f.unrolled = canUseUnrolled(f.bitLen)
	return f, nil
}

// MustNewField is NewField for compile-time-known moduli; it panics on error.
func MustNewField(decimal string) *Field {
	m, ok := new(big.Int).SetString(decimal, 10)
	if !ok {
		panic("ff: invalid modulus literal " + decimal)
	}
	f, err := NewField(m)
	if err != nil {
		panic(err)
	}
	return f
}

// Modulus returns a copy of the field modulus.
func (f *Field) Modulus() *big.Int { return new(big.Int).Set(f.modBig) }

// BitLen returns the bit length of the modulus.
func (f *Field) BitLen() int { return f.bitLen }

// ByteLen returns the minimal byte length that holds a canonical element.
func (f *Field) ByteLen() int { return f.byteLen }

// One returns the multiplicative identity.
func (f *Field) One() Element { return f.r }

// Zero returns the additive identity.
func (f *Field) Zero() Element { return Element{} }

// IsZero reports whether x is the additive identity.
func (f *Field) IsZero(x *Element) bool {
	return x[0]|x[1]|x[2]|x[3] == 0
}

// IsOne reports whether x is the multiplicative identity.
func (f *Field) IsOne(x *Element) bool {
	return *x == f.r
}

// Equal reports whether x == y.
func (f *Field) Equal(x, y *Element) bool { return *x == *y }

// Set copies x into z.
func (f *Field) Set(z, x *Element) { *z = *x }

// Add sets z = x + y mod p.
func (f *Field) Add(z, x, y *Element) {
	var c uint64
	var t Element
	t[0], c = bits.Add64(x[0], y[0], 0)
	t[1], c = bits.Add64(x[1], y[1], c)
	t[2], c = bits.Add64(x[2], y[2], c)
	t[3], c = bits.Add64(x[3], y[3], c)
	f.reduceWithCarry(z, &t, c)
}

// Double sets z = 2x mod p.
func (f *Field) Double(z, x *Element) {
	f.Add(z, x, x)
}

// Sub sets z = x - y mod p.
func (f *Field) Sub(z, x, y *Element) {
	var b uint64
	var t Element
	t[0], b = bits.Sub64(x[0], y[0], 0)
	t[1], b = bits.Sub64(x[1], y[1], b)
	t[2], b = bits.Sub64(x[2], y[2], b)
	t[3], b = bits.Sub64(x[3], y[3], b)
	if b != 0 {
		var c uint64
		t[0], c = bits.Add64(t[0], f.modulus[0], 0)
		t[1], c = bits.Add64(t[1], f.modulus[1], c)
		t[2], c = bits.Add64(t[2], f.modulus[2], c)
		t[3], _ = bits.Add64(t[3], f.modulus[3], c)
	}
	*z = t
}

// Neg sets z = -x mod p.
func (f *Field) Neg(z, x *Element) {
	if f.IsZero(x) {
		*z = Element{}
		return
	}
	var b uint64
	var t Element
	t[0], b = bits.Sub64(f.modulus[0], x[0], 0)
	t[1], b = bits.Sub64(f.modulus[1], x[1], b)
	t[2], b = bits.Sub64(f.modulus[2], x[2], b)
	t[3], _ = bits.Sub64(f.modulus[3], x[3], b)
	*z = t
}

// Mul sets z = x * y mod p using CIOS Montgomery multiplication (the
// unrolled no-carry path for ≤254-bit moduli, the generic loop otherwise).
func (f *Field) Mul(z, x, y *Element) {
	if f.unrolled {
		f.mulUnrolled(z, x, y)
		return
	}
	f.mulGeneric(z, x, y)
}

func (f *Field) mulGeneric(z, x, y *Element) {
	var t [Limbs + 2]uint64
	for i := 0; i < Limbs; i++ {
		// t += x * y[i]
		var c uint64
		for j := 0; j < Limbs; j++ {
			hi, lo := bits.Mul64(x[j], y[i])
			var cc uint64
			lo, cc = bits.Add64(lo, t[j], 0)
			hi, _ = bits.Add64(hi, 0, cc)
			lo, cc = bits.Add64(lo, c, 0)
			hi, _ = bits.Add64(hi, 0, cc)
			t[j] = lo
			c = hi
		}
		var cc uint64
		t[Limbs], cc = bits.Add64(t[Limbs], c, 0)
		t[Limbs+1] = cc

		// Montgomery reduction step: t = (t + m*p) / 2^64.
		m := t[0] * f.inv
		hi, lo := bits.Mul64(m, f.modulus[0])
		_, cc = bits.Add64(lo, t[0], 0)
		c, _ = bits.Add64(hi, 0, cc)
		for j := 1; j < Limbs; j++ {
			hi, lo = bits.Mul64(m, f.modulus[j])
			lo, cc = bits.Add64(lo, t[j], 0)
			hi, _ = bits.Add64(hi, 0, cc)
			lo, cc = bits.Add64(lo, c, 0)
			hi, _ = bits.Add64(hi, 0, cc)
			t[j-1] = lo
			c = hi
		}
		t[Limbs-1], cc = bits.Add64(t[Limbs], c, 0)
		t[Limbs] = t[Limbs+1] + cc
		t[Limbs+1] = 0
	}
	res := Element{t[0], t[1], t[2], t[3]}
	f.reduceWithCarry(z, &res, t[Limbs])
}

// Square sets z = x^2 mod p.
func (f *Field) Square(z, x *Element) { f.Mul(z, x, x) }

// reduceWithCarry reduces t (with an extra carry word) below p into z.
func (f *Field) reduceWithCarry(z, t *Element, carry uint64) {
	var b uint64
	var s Element
	s[0], b = bits.Sub64(t[0], f.modulus[0], 0)
	s[1], b = bits.Sub64(t[1], f.modulus[1], b)
	s[2], b = bits.Sub64(t[2], f.modulus[2], b)
	s[3], b = bits.Sub64(t[3], f.modulus[3], b)
	if carry != 0 || b == 0 {
		*z = s
		return
	}
	*z = *t
}

// Exp sets z = x^e mod p for a non-negative big integer exponent.
func (f *Field) Exp(z, x *Element, e *big.Int) {
	if e.Sign() < 0 {
		//lint:ignore panicfree a negative exponent is a programmer error, never attacker input: every exponent in this repo is a compile-time constant or a field-element bit pattern, and the chainable API has no error slot
		panic("ff: negative exponent")
	}
	res := f.One()
	base := *x
	for i := e.BitLen() - 1; i >= 0; i-- {
		f.Square(&res, &res)
		if e.Bit(i) == 1 {
			f.Mul(&res, &res, &base)
		}
	}
	*z = res
}

// Inverse sets z = x^{-1} mod p via Fermat's little theorem. Inverting zero
// sets z to zero (callers that care must check IsZero first).
func (f *Field) Inverse(z, x *Element) {
	if f.IsZero(x) {
		*z = Element{}
		return
	}
	f.Exp(z, x, f.pMinusTwo)
}

// BatchInverse inverts every non-zero element of xs in place using
// Montgomery's trick (a single field inversion plus 3(n-1) multiplications).
// Zero entries are left as zero.
func (f *Field) BatchInverse(xs []Element) {
	n := len(xs)
	if n == 0 {
		return
	}
	prefix := make([]Element, n)
	acc := f.One()
	for i := range xs {
		prefix[i] = acc
		if !f.IsZero(&xs[i]) {
			f.Mul(&acc, &acc, &xs[i])
		}
	}
	var accInv Element
	f.Inverse(&accInv, &acc)
	for i := n - 1; i >= 0; i-- {
		if f.IsZero(&xs[i]) {
			continue
		}
		var inv Element
		f.Mul(&inv, &accInv, &prefix[i])
		f.Mul(&accInv, &accInv, &xs[i])
		xs[i] = inv
	}
}

// FromUint64 returns the Montgomery form of v.
func (f *Field) FromUint64(v uint64) Element {
	var z, t Element
	t[0] = v
	f.Mul(&z, &t, &f.r2)
	return z
}

// FromBig returns the Montgomery form of b mod p.
func (f *Field) FromBig(b *big.Int) Element {
	v := new(big.Int).Mod(b, f.modBig)
	var t Element
	bigToLimbs(v, (*[Limbs]uint64)(&t))
	var z Element
	f.Mul(&z, &t, &f.r2)
	return z
}

// ToBig returns the canonical (non-Montgomery) integer value of x.
func (f *Field) ToBig(x *Element) *big.Int {
	var one Element
	one[0] = 1
	var t Element
	f.Mul(&t, x, &one) // Montgomery reduce: x * R^{-1}
	return limbsToBig((*[Limbs]uint64)(&t))
}

// Bytes returns the canonical big-endian encoding of x, ByteLen bytes long.
func (f *Field) Bytes(x *Element) []byte {
	b := f.ToBig(x)
	out := make([]byte, f.byteLen)
	b.FillBytes(out)
	return out
}

// FromBytes interprets b as a big-endian integer and reduces it mod p.
func (f *Field) FromBytes(b []byte) Element {
	return f.FromBig(new(big.Int).SetBytes(b))
}

// FromBytesCanonical interprets b as a big-endian integer and rejects values
// that are not already reduced (>= p) or of the wrong length.
func (f *Field) FromBytesCanonical(b []byte) (Element, error) {
	if len(b) != f.byteLen {
		return Element{}, fmt.Errorf("ff: want %d bytes, got %d: %w", f.byteLen, len(b), ErrNotInField)
	}
	v := new(big.Int).SetBytes(b)
	if v.Cmp(f.modBig) >= 0 {
		return Element{}, ErrNotInField
	}
	return f.FromBig(v), nil
}

func bigToLimbs(b *big.Int, limbs *[Limbs]uint64) {
	var buf [32]byte
	b.FillBytes(buf[:])
	for i := 0; i < Limbs; i++ {
		limbs[i] = beUint64(buf[32-8*(i+1):])
	}
}

func limbsToBig(limbs *[Limbs]uint64) *big.Int {
	var buf [32]byte
	for i := 0; i < Limbs; i++ {
		putBEUint64(buf[32-8*(i+1):], limbs[i])
	}
	return new(big.Int).SetBytes(buf[:])
}

func beUint64(b []byte) uint64 {
	return uint64(b[7]) | uint64(b[6])<<8 | uint64(b[5])<<16 | uint64(b[4])<<24 |
		uint64(b[3])<<32 | uint64(b[2])<<40 | uint64(b[1])<<48 | uint64(b[0])<<56
}

func putBEUint64(b []byte, v uint64) {
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}
