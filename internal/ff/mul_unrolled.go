package ff

import "math/bits"

// Unrolled CIOS ("no-carry" variant) Montgomery multiplication for moduli
// of at most 254 bits: with the top modulus word below 2^62 the
// intermediate accumulator never overflows its fifth word, so the carry
// word and its bookkeeping disappear. Both BN254 fields qualify; NewField
// falls back to the generic loop for wider moduli.

// canUseUnrolled reports whether the no-carry optimization is sound for
// this modulus.
func canUseUnrolled(bitLen int) bool { return bitLen <= 254 }

func madd0(a, b, c uint64) (hi uint64) {
	hi, lo := bits.Mul64(a, b)
	_, carry := bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

func madd1(a, b, c uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(a, b)
	var carry uint64
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

func madd2(a, b, c, d uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(a, b)
	var carry uint64
	c, carry = bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

func madd3(a, b, c, d, e uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(a, b)
	var carry uint64
	c, carry = bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, e, carry)
	return
}

// mulUnrolled sets z = x·y in Montgomery form.
func (f *Field) mulUnrolled(z, x, y *Element) {
	var t0, t1, t2, t3 uint64
	var c0, c1, c2 uint64
	q0, q1, q2, q3 := f.modulus[0], f.modulus[1], f.modulus[2], f.modulus[3]
	inv := f.inv

	{
		// round 0
		v := x[0]
		c1, c0 = bits.Mul64(v, y[0])
		m := c0 * inv
		c2 = madd0(m, q0, c0)
		c1, c0 = madd1(v, y[1], c1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd1(v, y[2], c1)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd1(v, y[3], c1)
		t3, t2 = madd3(m, q3, c0, c2, c1)
	}
	{
		// round 1
		v := x[1]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * inv
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		t3, t2 = madd3(m, q3, c0, c2, c1)
	}
	{
		// round 2
		v := x[2]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * inv
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		t3, t2 = madd3(m, q3, c0, c2, c1)
	}
	{
		// round 3
		v := x[3]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * inv
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		t3, t2 = madd3(m, q3, c0, c2, c1)
	}

	// Final conditional subtraction.
	var b uint64
	var s0, s1, s2, s3 uint64
	s0, b = bits.Sub64(t0, q0, 0)
	s1, b = bits.Sub64(t1, q1, b)
	s2, b = bits.Sub64(t2, q2, b)
	s3, b = bits.Sub64(t3, q3, b)
	if b == 0 {
		z[0], z[1], z[2], z[3] = s0, s1, s2, s3
	} else {
		z[0], z[1], z[2], z[3] = t0, t1, t2, t3
	}
}
