package ff

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// The two fields exercised throughout the repo: BN254 base and scalar fields.
var (
	testFp = MustNewField("21888242871839275222246405745257275088696311157297823662689037894645226208583")
	testFr = MustNewField("21888242871839275222246405745257275088548364400416034343698204186575808495617")
	// A tiny field to exercise edge cases exhaustively.
	testF97 = MustNewField("97")
)

func testFields() map[string]*Field {
	return map[string]*Field{"fp": testFp, "fr": testFr, "f97": testF97}
}

func randomBig(t *testing.T, f *Field) *big.Int {
	t.Helper()
	v, err := rand.Int(rand.Reader, f.Modulus())
	if err != nil {
		t.Fatalf("rand.Int: %v", err)
	}
	return v
}

func TestNewFieldRejectsBadModuli(t *testing.T) {
	cases := []struct {
		name string
		mod  *big.Int
	}{
		{"zero", big.NewInt(0)},
		{"negative", big.NewInt(-7)},
		{"even", big.NewInt(10)},
		{"too large", new(big.Int).Lsh(big.NewInt(1), 257)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewField(tc.mod); err == nil {
				t.Fatalf("NewField(%s) succeeded, want error", tc.mod)
			}
		})
	}
}

func TestRoundTripBig(t *testing.T) {
	for name, f := range testFields() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 200; i++ {
				v := randomBig(t, f)
				e := f.FromBig(v)
				got := f.ToBig(&e)
				if got.Cmp(v) != 0 {
					t.Fatalf("round trip: got %s want %s", got, v)
				}
			}
		})
	}
}

func TestAddSubMulAgainstBig(t *testing.T) {
	for name, f := range testFields() {
		t.Run(name, func(t *testing.T) {
			mod := f.Modulus()
			for i := 0; i < 300; i++ {
				a, b := randomBig(t, f), randomBig(t, f)
				ea, eb := f.FromBig(a), f.FromBig(b)

				var sum, diff, prod Element
				f.Add(&sum, &ea, &eb)
				f.Sub(&diff, &ea, &eb)
				f.Mul(&prod, &ea, &eb)

				wantSum := new(big.Int).Add(a, b)
				wantSum.Mod(wantSum, mod)
				wantDiff := new(big.Int).Sub(a, b)
				wantDiff.Mod(wantDiff, mod)
				wantProd := new(big.Int).Mul(a, b)
				wantProd.Mod(wantProd, mod)

				if got := f.ToBig(&sum); got.Cmp(wantSum) != 0 {
					t.Fatalf("add: got %s want %s", got, wantSum)
				}
				if got := f.ToBig(&diff); got.Cmp(wantDiff) != 0 {
					t.Fatalf("sub: got %s want %s", got, wantDiff)
				}
				if got := f.ToBig(&prod); got.Cmp(wantProd) != 0 {
					t.Fatalf("mul: got %s want %s", got, wantProd)
				}
			}
		})
	}
}

func TestEdgeValues(t *testing.T) {
	for name, f := range testFields() {
		t.Run(name, func(t *testing.T) {
			mod := f.Modulus()
			pm1 := new(big.Int).Sub(mod, big.NewInt(1))
			edge := []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(2), pm1}
			for _, a := range edge {
				for _, b := range edge {
					ea, eb := f.FromBig(a), f.FromBig(b)
					var sum, prod Element
					f.Add(&sum, &ea, &eb)
					f.Mul(&prod, &ea, &eb)
					wantSum := new(big.Int).Add(a, b)
					wantSum.Mod(wantSum, mod)
					wantProd := new(big.Int).Mul(a, b)
					wantProd.Mod(wantProd, mod)
					if got := f.ToBig(&sum); got.Cmp(wantSum) != 0 {
						t.Fatalf("add(%s,%s): got %s want %s", a, b, got, wantSum)
					}
					if got := f.ToBig(&prod); got.Cmp(wantProd) != 0 {
						t.Fatalf("mul(%s,%s): got %s want %s", a, b, got, wantProd)
					}
				}
			}
		})
	}
}

func TestNeg(t *testing.T) {
	for name, f := range testFields() {
		t.Run(name, func(t *testing.T) {
			zero := f.Zero()
			var negZero Element
			f.Neg(&negZero, &zero)
			if !f.IsZero(&negZero) {
				t.Fatal("neg(0) != 0")
			}
			for i := 0; i < 100; i++ {
				a := randomBig(t, f)
				ea := f.FromBig(a)
				var neg, sum Element
				f.Neg(&neg, &ea)
				f.Add(&sum, &ea, &neg)
				if !f.IsZero(&sum) {
					t.Fatalf("a + (-a) != 0 for a=%s", a)
				}
			}
		})
	}
}

func TestInverse(t *testing.T) {
	for name, f := range testFields() {
		t.Run(name, func(t *testing.T) {
			zero := f.Zero()
			var invZero Element
			f.Inverse(&invZero, &zero)
			if !f.IsZero(&invZero) {
				t.Fatal("inverse(0) should stay 0 by convention")
			}
			for i := 0; i < 50; i++ {
				a := randomBig(t, f)
				if a.Sign() == 0 {
					continue
				}
				ea := f.FromBig(a)
				var inv, prod Element
				f.Inverse(&inv, &ea)
				f.Mul(&prod, &ea, &inv)
				if !f.IsOne(&prod) {
					t.Fatalf("a * a^-1 != 1 for a=%s", a)
				}
			}
		})
	}
}

func TestExp(t *testing.T) {
	f := testFr
	mod := f.Modulus()
	for i := 0; i < 30; i++ {
		a := randomBig(t, f)
		e, err := rand.Int(rand.Reader, big.NewInt(1<<30))
		if err != nil {
			t.Fatal(err)
		}
		ea := f.FromBig(a)
		var res Element
		f.Exp(&res, &ea, e)
		want := new(big.Int).Exp(a, e, mod)
		if got := f.ToBig(&res); got.Cmp(want) != 0 {
			t.Fatalf("exp: got %s want %s", got, want)
		}
	}
	// x^0 == 1, including 0^0 == 1 by the square-and-multiply convention.
	one := f.One()
	var res Element
	zero := f.Zero()
	f.Exp(&res, &zero, big.NewInt(0))
	if !f.Equal(&res, &one) {
		t.Fatal("0^0 != 1")
	}
}

func TestFermat(t *testing.T) {
	// a^(p-1) == 1 for a != 0: a strong check on Exp and Mul together.
	for name, f := range testFields() {
		t.Run(name, func(t *testing.T) {
			pm1 := new(big.Int).Sub(f.Modulus(), big.NewInt(1))
			for i := 0; i < 20; i++ {
				a := randomBig(t, f)
				if a.Sign() == 0 {
					continue
				}
				ea := f.FromBig(a)
				var res Element
				f.Exp(&res, &ea, pm1)
				if !f.IsOne(&res) {
					t.Fatalf("a^(p-1) != 1 for a=%s", a)
				}
			}
		})
	}
}

func TestBatchInverse(t *testing.T) {
	f := testFr
	xs := make([]Element, 64)
	want := make([]Element, 64)
	for i := range xs {
		if i%7 == 3 {
			xs[i] = f.Zero() // sprinkle zeros
		} else {
			xs[i] = f.FromUint64(uint64(i + 1))
		}
		f.Inverse(&want[i], &xs[i])
	}
	f.BatchInverse(xs)
	for i := range xs {
		if !f.Equal(&xs[i], &want[i]) {
			t.Fatalf("batch inverse mismatch at %d", i)
		}
	}
	f.BatchInverse(nil) // must not panic
}

func TestBytesRoundTrip(t *testing.T) {
	f := testFp
	for i := 0; i < 50; i++ {
		v := randomBig(t, f)
		e := f.FromBig(v)
		b := f.Bytes(&e)
		if len(b) != f.ByteLen() {
			t.Fatalf("bytes length %d want %d", len(b), f.ByteLen())
		}
		back, err := f.FromBytesCanonical(b)
		if err != nil {
			t.Fatalf("FromBytesCanonical: %v", err)
		}
		if !f.Equal(&back, &e) {
			t.Fatal("bytes round trip mismatch")
		}
	}
	// Non-canonical: the modulus itself must be rejected.
	modBytes := make([]byte, f.ByteLen())
	f.Modulus().FillBytes(modBytes)
	if _, err := f.FromBytesCanonical(modBytes); err == nil {
		t.Fatal("FromBytesCanonical accepted the modulus")
	}
	if _, err := f.FromBytesCanonical([]byte{1, 2, 3}); err == nil {
		t.Fatal("FromBytesCanonical accepted wrong length")
	}
}

// Property-based tests over the scalar field.

func frFromQuick(a uint64, b uint64, c uint64, d uint64) Element {
	v := limbsToBig(&[Limbs]uint64{a, b, c, d})
	return testFr.FromBig(v)
}

func TestQuickCommutativity(t *testing.T) {
	f := testFr
	prop := func(a1, a2, a3, a4, b1, b2, b3, b4 uint64) bool {
		x := frFromQuick(a1, a2, a3, a4)
		y := frFromQuick(b1, b2, b3, b4)
		var s1, s2, p1, p2 Element
		f.Add(&s1, &x, &y)
		f.Add(&s2, &y, &x)
		f.Mul(&p1, &x, &y)
		f.Mul(&p2, &y, &x)
		return f.Equal(&s1, &s2) && f.Equal(&p1, &p2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistributivity(t *testing.T) {
	f := testFr
	prop := func(a1, a2, b1, b2, c1, c2 uint64) bool {
		x := frFromQuick(a1, a2, 0, 0)
		y := frFromQuick(b1, b2, 0, 0)
		z := frFromQuick(c1, c2, 0, 0)
		// x*(y+z) == x*y + x*z
		var l, r, t1, t2 Element
		f.Add(&l, &y, &z)
		f.Mul(&l, &x, &l)
		f.Mul(&t1, &x, &y)
		f.Mul(&t2, &x, &z)
		f.Add(&r, &t1, &t2)
		return f.Equal(&l, &r)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAssociativity(t *testing.T) {
	f := testFr
	prop := func(a1, a2, a3, a4, b1, b2, b3, b4, c1, c2, c3, c4 uint64) bool {
		x := frFromQuick(a1, a2, a3, a4)
		y := frFromQuick(b1, b2, b3, b4)
		z := frFromQuick(c1, c2, c3, c4)
		var l, r Element
		f.Mul(&l, &x, &y)
		f.Mul(&l, &l, &z)
		f.Mul(&r, &y, &z)
		f.Mul(&r, &x, &r)
		return f.Equal(&l, &r)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSquareMatchesMul(t *testing.T) {
	f := testFp
	prop := func(a1, a2, a3, a4 uint64) bool {
		x := frFromQuickField(f, a1, a2, a3, a4)
		var sq, mul Element
		f.Square(&sq, &x)
		f.Mul(&mul, &x, &x)
		return f.Equal(&sq, &mul)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func frFromQuickField(f *Field, a, b, c, d uint64) Element {
	return f.FromBig(limbsToBig(&[Limbs]uint64{a, b, c, d}))
}

func BenchmarkMul(b *testing.B) {
	f := testFr
	x := f.FromUint64(0xdeadbeefcafebabe)
	y := f.FromUint64(0x123456789abcdef0)
	var z Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Mul(&z, &x, &y)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := testFr
	x := f.FromUint64(0xdeadbeefcafebabe)
	y := f.FromUint64(0x123456789abcdef0)
	var z Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(&z, &x, &y)
	}
}

func BenchmarkInverse(b *testing.B) {
	f := testFr
	x := f.FromUint64(0xdeadbeefcafebabe)
	var z Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Inverse(&z, &x)
	}
}

// TestUnrolledMatchesGeneric cross-checks the two multiplication paths on
// random inputs for every test field.
func TestUnrolledMatchesGeneric(t *testing.T) {
	for name, f := range testFields() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 500; i++ {
				a, b := randomBig(t, f), randomBig(t, f)
				ea, eb := f.FromBig(a), f.FromBig(b)
				var viaUnrolled, viaGeneric Element
				f.mulUnrolled(&viaUnrolled, &ea, &eb)
				f.mulGeneric(&viaGeneric, &ea, &eb)
				if !f.Equal(&viaUnrolled, &viaGeneric) {
					t.Fatalf("paths disagree for %s * %s", a, b)
				}
			}
			// Edge values.
			pm1 := new(big.Int).Sub(f.Modulus(), big.NewInt(1))
			for _, a := range []*big.Int{big.NewInt(0), big.NewInt(1), pm1} {
				for _, b := range []*big.Int{big.NewInt(0), big.NewInt(1), pm1} {
					ea, eb := f.FromBig(a), f.FromBig(b)
					var u, g Element
					f.mulUnrolled(&u, &ea, &eb)
					f.mulGeneric(&g, &ea, &eb)
					if !f.Equal(&u, &g) {
						t.Fatalf("paths disagree for %s * %s", a, b)
					}
				}
			}
		})
	}
}
