package core

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/mimc"
	"github.com/zkdet/zkdet/internal/plonk"
	"github.com/zkdet/zkdet/internal/poseidon"
)

// This file implements the key-secure two-phase data exchange protocol of
// §IV-F. Unlike ZKCP (zkcp.go), the key k is never published: the seller
// discloses only k_c = k + k_v, where k_v is the buyer's fresh secret, and
// proves with π_k that k_c was formed from the committed k and the hashed
// k_v. A third party observing the public chain and storage learns nothing
// that decrypts D̂.

// Exchange errors.
var (
	ErrPredicateFailed = errors.New("core: dataset violates the predicate")
	ErrKeyMismatch     = errors.New("core: recovered key does not decrypt")
	ErrChallengeHash   = errors.New("core: buyer challenge hash mismatch")
)

// --- π_p: data validation (phase 1) ---

// ValidationStatement is the public statement of π_p:
// φ(D)=1 ∧ D̂=Enc(k,D) ∧ Open(D, c_d, o_d)=1.
type ValidationStatement struct {
	Nonce          fr.Element
	DataCommitment fr.Element
	Ciphertext     []fr.Element
	// PredicateName pins φ (part of the circuit, not an input wire).
	PredicateName string
}

func (st *ValidationStatement) publics() []fr.Element {
	out := make([]fr.Element, 0, len(st.Ciphertext)+2)
	out = append(out, st.Nonce, st.DataCommitment)
	out = append(out, st.Ciphertext...)
	return out
}

func buildValidationCircuit(pred Predicate, st *ValidationStatement, w *EncryptionWitness) *circuit.Builder {
	b := circuit.NewBuilder()
	nonce := b.Public(st.Nonce)
	cd := b.Public(st.DataCommitment)
	cts := make([]circuit.Variable, len(st.Ciphertext))
	for i := range st.Ciphertext {
		cts[i] = b.Public(st.Ciphertext[i])
	}
	key := b.Secret(w.Key)
	od := b.Secret(w.DataBlinder)
	data := make([]circuit.Variable, len(w.Data))
	for i := range w.Data {
		data[i] = b.Secret(w.Data[i])
	}
	enc := mimc.GadgetEncryptCTR(b, key, nonce, data)
	for i := range enc {
		b.AssertEqual(enc[i], cts[i])
	}
	b.AssertEqual(poseidon.GadgetCommit(b, data, od), cd)
	pred.Gadget(b, data)
	return b
}

func validationKey(pred Predicate, n int) string {
	return fmt.Sprintf("pi_p/%s/%d", pred.Name(), n)
}

// --- π_k: key negotiation (phase 2) ---

// KeyStatement is the public statement of π_k:
// Open(k, c_k, o_k)=1 ∧ h_v=H(k_v) ∧ k_c = k + k_v.
type KeyStatement struct {
	KC            fr.Element // k_c, the blinded key
	KeyCommitment fr.Element // c_k, registered with the arbiter
	HV            fr.Element // h_v = H(k_v), the buyer's challenge hash
}

func (st *KeyStatement) publics() []fr.Element {
	return []fr.Element{st.KC, st.KeyCommitment, st.HV}
}

// KeyWitness is the private side of π_k.
type KeyWitness struct {
	K          fr.Element // the data key
	KV         fr.Element // the buyer's challenge
	KeyBlinder fr.Element // o_k
}

func buildKeyCircuit(st *KeyStatement, w *KeyWitness) *circuit.Builder {
	b := circuit.NewBuilder()
	kc := b.Public(st.KC)
	ck := b.Public(st.KeyCommitment)
	hv := b.Public(st.HV)
	k := b.Secret(w.K)
	kv := b.Secret(w.KV)
	ok := b.Secret(w.KeyBlinder)
	b.AssertEqual(poseidon.GadgetCommit(b, []circuit.Variable{k}, ok), ck)
	b.AssertEqual(poseidon.GadgetHash(b, []circuit.Variable{kv}), hv)
	b.AssertEqual(b.Add(k, kv), kc)
	return b
}

const keyCircuitShape = "pi_k"

// KeyCircuitVK returns the verifying key of the π_k circuit (used to deploy
// the on-chain verifier the escrow arbiter consults).
func (s *System) KeyCircuitVK() (*plonk.VerifyingKey, error) {
	return s.vkFor(keyCircuitShape, func() *circuit.Builder {
		return buildKeyCircuit(&KeyStatement{}, &KeyWitness{})
	})
}

// HashChallenge computes h_v = H(k_v) with the circuit-friendly hash.
func HashChallenge(kv fr.Element) fr.Element {
	return poseidon.Hash([]fr.Element{kv})
}

// --- Protocol roles ---

// Listing is the public face of a dataset offered for sale: everything the
// buyer and arbiter see before any payment.
type Listing struct {
	Statement ValidationStatement
	// KeyCommitment is c_k: the commitment to k the arbiter is initialized
	// with.
	KeyCommitment fr.Element
	Price         uint64
}

// Seller holds the private state of the data seller S.
type Seller struct {
	sys  *System
	pred Predicate

	data Dataset
	key  fr.Element
	ct   Ciphertext

	cd, od fr.Element
	ck, ok fr.Element
}

// NewSeller initializes S with (D, k, D̂, φ): encrypts the dataset and
// commits to it and to the key.
func NewSeller(sys *System, data Dataset, key fr.Element, pred Predicate) (*Seller, error) {
	if len(data) == 0 {
		return nil, ErrDatasetEmpty
	}
	if !pred.Check(data) {
		return nil, fmt.Errorf("%w: cannot honestly list", ErrPredicateFailed)
	}
	s := &Seller{sys: sys, pred: pred, data: data.Clone(), key: key}
	s.ct = data.Encrypt(key)
	s.cd, s.od = data.Commit()
	s.ck, s.ok = KeyCommit(key)
	return s, nil
}

// Listing returns the public listing.
func (s *Seller) Listing(price uint64) Listing {
	return Listing{
		Statement: ValidationStatement{
			Nonce:          s.ct.Nonce,
			DataCommitment: s.cd,
			Ciphertext:     append([]fr.Element{}, s.ct.Blocks...),
			PredicateName:  s.pred.Name(),
		},
		KeyCommitment: s.ck,
		Price:         price,
	}
}

// Ciphertext returns D̂ for publication to the storage network.
func (s *Seller) Ciphertext() Ciphertext { return s.ct }

// ProveData produces π_p (data validation phase).
func (s *Seller) ProveData() (*plonk.Proof, error) {
	st := s.Listing(0).Statement
	w := &EncryptionWitness{Data: s.data, Key: s.key, DataBlinder: s.od}
	proof, _, err := s.sys.prove(validationKey(s.pred, len(s.data)), buildValidationCircuit(s.pred, &st, w))
	return proof, err
}

// NegotiateKey runs the seller's half of the key negotiation phase: given
// the buyer's challenge k_v (received off-chain) and its on-chain hash h_v,
// it derives k_c = k + k_v and proves π_k. The seller checks h_v = H(k_v)
// first and aborts otherwise (Theorem 5.2's honest-seller behaviour).
func (s *Seller) NegotiateKey(kv, hv fr.Element) (KeyStatement, *plonk.Proof, error) {
	if got := HashChallenge(kv); !got.Equal(&hv) {
		return KeyStatement{}, nil, ErrChallengeHash
	}
	var kc fr.Element
	kc.Add(&s.key, &kv)
	st := KeyStatement{KC: kc, KeyCommitment: s.ck, HV: hv}
	w := &KeyWitness{K: s.key, KV: kv, KeyBlinder: s.ok}
	proof, _, err := s.sys.prove(keyCircuitShape, buildKeyCircuit(&st, w))
	if err != nil {
		return KeyStatement{}, nil, err
	}
	return st, proof, nil
}

// Buyer holds the private state of the data buyer B.
type Buyer struct {
	sys     *System
	listing Listing
	pred    Predicate
	kv      fr.Element
}

// NewBuyer initializes B with the public listing and the predicate it
// expects the data to satisfy.
func NewBuyer(sys *System, listing Listing, pred Predicate) *Buyer {
	return &Buyer{sys: sys, listing: listing, pred: pred}
}

// VerifyData checks π_p against the listing (data validation phase).
func (b *Buyer) VerifyData(proof *plonk.Proof) error {
	st := b.listing.Statement
	n := len(st.Ciphertext)
	vk, err := b.sys.vkFor(validationKey(b.pred, n), func() *circuit.Builder {
		dummy := &ValidationStatement{Ciphertext: make([]fr.Element, n)}
		return buildValidationCircuit(b.pred, dummy, &EncryptionWitness{Data: make(Dataset, n)})
	})
	if err != nil {
		return err
	}
	if err := plonk.Verify(vk, proof, st.publics()); err != nil {
		return fmt.Errorf("core: π_p: %w", err)
	}
	return nil
}

// Challenge draws a fresh secret k_v and returns it with h_v = H(k_v);
// k_v goes to the seller off-chain, h_v to the arbiter with the payment.
func (b *Buyer) Challenge() (kv, hv fr.Element) {
	b.kv = fr.MustRandom()
	return b.kv, HashChallenge(b.kv)
}

// RecoverKey derives k = k_c - k_v once the arbiter publishes k_c.
func (b *Buyer) RecoverKey(kc fr.Element) fr.Element {
	var k fr.Element
	k.Sub(&kc, &b.kv)
	return k
}

// Decrypt recovers and validates the purchased dataset from k_c.
func (b *Buyer) Decrypt(kc fr.Element) (Dataset, error) {
	k := b.RecoverKey(kc)
	ct := Ciphertext{Nonce: b.listing.Statement.Nonce, Blocks: b.listing.Statement.Ciphertext}
	data := ct.Decrypt(k)
	// The commitment in the listing binds the plaintext: recompute it?
	// The buyer cannot (no blinder) — instead the predicate plus π_p
	// soundness guarantee correctness; check φ locally as a sanity net.
	if !b.pred.Check(data) {
		return nil, ErrKeyMismatch
	}
	return data, nil
}

// Arbiter is the off-chain reference implementation of 𝒥 (the on-chain
// version is contracts.Escrow): initialized with c_k, it accepts a payment
// lock (h_v) and settles against a valid π_k.
type Arbiter struct {
	sys *System
	ck  fr.Element

	hv      fr.Element
	locked  uint64
	settled bool
	kc      fr.Element
}

// NewArbiter initializes 𝒥 with the key commitment from the listing.
func NewArbiter(sys *System, ck fr.Element) *Arbiter {
	return &Arbiter{sys: sys, ck: ck}
}

// Lock records the buyer's payment and challenge hash.
func (a *Arbiter) Lock(amount uint64, hv fr.Element) {
	a.locked = amount
	a.hv = hv
}

// Settle verifies π_k; on success the payment is released to the seller
// (returned amount) and k_c is published.
func (a *Arbiter) Settle(st KeyStatement, proof *plonk.Proof) (uint64, error) {
	if a.settled {
		return 0, errors.New("core: arbiter already settled")
	}
	if !st.KeyCommitment.Equal(&a.ck) || !st.HV.Equal(&a.hv) {
		return 0, errors.New("core: π_k statement does not match arbiter state")
	}
	vk, err := a.sys.KeyCircuitVK()
	if err != nil {
		return 0, err
	}
	if err := plonk.Verify(vk, proof, st.publics()); err != nil {
		return 0, fmt.Errorf("core: π_k: %w", err)
	}
	a.settled = true
	a.kc = st.KC
	amount := a.locked
	a.locked = 0
	return amount, nil
}

// PublishedKC returns k_c after settlement.
func (a *Arbiter) PublishedKC() (fr.Element, bool) { return a.kc, a.settled }

// Refund returns the locked payment to the buyer if not settled.
func (a *Arbiter) Refund() uint64 {
	if a.settled {
		return 0
	}
	amount := a.locked
	a.locked = 0
	return amount
}
