package core

import (
	"errors"
	"testing"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/storage"
)

func TestAuditLineageHonest(t *testing.T) {
	m, _ := newTestMarketplace(t)
	alice := chain.AddressFromString("alice")
	reg := NewProofRegistry()

	a1, err := m.MintAsset(alice, "alice", smallData(2), fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}
	reg.PublishAsset(a1)
	a2, err := m.MintAsset(alice, "alice", smallData(3), fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}
	reg.PublishAsset(a2)

	agg, err := m.Aggregate(alice, "alice", []*Asset{a1, a2})
	if err != nil {
		t.Fatal(err)
	}
	reg.PublishTransform(agg, nil)

	proc, err := m.Process(alice, "alice", agg.Assets[0], doubler{})
	if err != nil {
		t.Fatal(err)
	}
	reg.PublishTransform(proc, doubler{})

	report, err := m.AuditLineage(reg, proc.Assets[0].TokenID)
	if err != nil {
		t.Fatalf("honest lineage failed audit: %v", err)
	}
	if len(report.Tokens) != 4 {
		t.Fatalf("audited %d tokens, want 4", len(report.Tokens))
	}
	if report.EncryptionProofs != 4 || report.TransformProofs != 2 {
		t.Fatalf("report: %+v", report)
	}
}

func TestAuditDetectsMissingProofs(t *testing.T) {
	m, _ := newTestMarketplace(t)
	alice := chain.AddressFromString("alice")
	reg := NewProofRegistry()
	asset, err := m.MintAsset(alice, "alice", smallData(2), fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}
	// Nothing published.
	if _, err := m.AuditLineage(reg, asset.TokenID); !errors.Is(err, ErrAuditMissingProofs) {
		t.Fatalf("missing proofs not reported: %v", err)
	}
}

func TestAuditDetectsTamperedStorage(t *testing.T) {
	m, _ := newTestMarketplace(t)
	alice := chain.AddressFromString("alice")
	reg := NewProofRegistry()
	asset, err := m.MintAsset(alice, "alice", smallData(2), fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}
	reg.PublishAsset(asset)
	// Corrupt the stored ciphertext: the storage layer itself detects the
	// digest mismatch.
	if !m.Store.(*storage.Network).Corrupt(asset.URI) {
		t.Fatal("corrupt hook missed")
	}
	if _, err := m.AuditLineage(reg, asset.TokenID); err == nil {
		t.Fatal("tampered ciphertext passed audit")
	}
}

func TestAuditDetectsSwappedProofs(t *testing.T) {
	m, _ := newTestMarketplace(t)
	alice := chain.AddressFromString("alice")
	reg := NewProofRegistry()

	a1, err := m.MintAsset(alice, "alice", smallData(2), fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.MintAsset(alice, "alice", smallData(2), fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}
	// Publish a2's proofs under a1's token id: statements no longer match
	// the on-chain record.
	reg.Publish(a1.TokenID, &TokenProofs{
		Encryption:      a2.Statement,
		EncryptionProof: a2.EncProof,
	})
	if _, err := m.AuditLineage(reg, a1.TokenID); !errors.Is(err, ErrAuditMismatch) {
		t.Fatalf("swapped proofs not caught: %v", err)
	}
}

func TestAuditDetectsForgedLineage(t *testing.T) {
	// A transformation published with a π_t whose sources do not match the
	// claimed parents must fail the audit.
	m, _ := newTestMarketplace(t)
	alice := chain.AddressFromString("alice")
	reg := NewProofRegistry()

	a1, err := m.MintAsset(alice, "alice", smallData(2), fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}
	reg.PublishAsset(a1)
	dup, err := m.Duplicate(alice, "alice", a1)
	if err != nil {
		t.Fatal(err)
	}
	// Forge: publish the duplicate with a π_t derived from an unrelated
	// dataset's commitment.
	other := smallData(2)
	other[0] = fr.NewElement(424242)
	co, oo := other.Commit()
	forged, _, err := m.Sys.ProveDuplication(other, co, oo)
	if err != nil {
		t.Fatal(err)
	}
	reg.Publish(dup.Assets[0].TokenID, &TokenProofs{
		Encryption:      dup.Assets[0].Statement,
		EncryptionProof: dup.Assets[0].EncProof,
		Transform:       forged,
	})
	if _, err := m.AuditLineage(reg, dup.Assets[0].TokenID); !errors.Is(err, ErrAuditMismatch) {
		t.Fatalf("forged lineage not caught: %v", err)
	}
}
