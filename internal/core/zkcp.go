package core

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
	"github.com/zkdet/zkdet/internal/poseidon"
)

// This file implements the Zero-Knowledge Contingent Payment baseline of
// §III-C, against which ZKDET is compared (Figure 7). ZKCP is fair but
// key-leaking: its Open phase publishes the encryption key k to the
// arbiter, so once a trade settles, anyone holding the public ciphertext
// can decrypt it. ZKCPLeak demonstrates the flaw executably.

// ZKCPStatement is the public statement of the ZKCP proof π:
// φ(D)=1 ∧ D̂=Enc(k,D) ∧ h=H(k).
type ZKCPStatement struct {
	Nonce         fr.Element
	KeyHash       fr.Element // h = H(k): published, and k is revealed at Open
	Ciphertext    []fr.Element
	PredicateName string
}

func (st *ZKCPStatement) publics() []fr.Element {
	out := make([]fr.Element, 0, len(st.Ciphertext)+2)
	out = append(out, st.Nonce, st.KeyHash)
	out = append(out, st.Ciphertext...)
	return out
}

func buildZKCPCircuit(pred Predicate, st *ZKCPStatement, w *EncryptionWitness) *circuit.Builder {
	b := circuit.NewBuilder()
	nonce := b.Public(st.Nonce)
	h := b.Public(st.KeyHash)
	cts := make([]circuit.Variable, len(st.Ciphertext))
	for i := range st.Ciphertext {
		cts[i] = b.Public(st.Ciphertext[i])
	}
	key := b.Secret(w.Key)
	data := make([]circuit.Variable, len(w.Data))
	for i := range w.Data {
		data[i] = b.Secret(w.Data[i])
	}
	enc := gadgetEncryptCTR(b, key, nonce, data)
	for i := range enc {
		b.AssertEqual(enc[i], cts[i])
	}
	b.AssertEqual(poseidon.GadgetHash(b, []circuit.Variable{key}), h)
	pred.Gadget(b, data)
	return b
}

func zkcpKeyFor(pred Predicate, n int) string {
	return fmt.Sprintf("zkcp/%s/%d", pred.Name(), n)
}

// ZKCPSeller is the baseline seller.
type ZKCPSeller struct {
	sys  *System
	pred Predicate
	data Dataset
	key  fr.Element
	ct   Ciphertext
}

// NewZKCPSeller encrypts the dataset for a ZKCP sale.
func NewZKCPSeller(sys *System, data Dataset, key fr.Element, pred Predicate) (*ZKCPSeller, error) {
	if len(data) == 0 {
		return nil, ErrDatasetEmpty
	}
	if !pred.Check(data) {
		return nil, ErrPredicateFailed
	}
	return &ZKCPSeller{sys: sys, pred: pred, data: data.Clone(), key: key, ct: data.Encrypt(key)}, nil
}

// Deliver produces the (h, π_p) message of the Deliver step.
func (s *ZKCPSeller) Deliver() (ZKCPStatement, *plonk.Proof, error) {
	st := ZKCPStatement{
		Nonce:         s.ct.Nonce,
		KeyHash:       poseidon.Hash([]fr.Element{s.key}),
		Ciphertext:    append([]fr.Element{}, s.ct.Blocks...),
		PredicateName: s.pred.Name(),
	}
	w := &EncryptionWitness{Data: s.data, Key: s.key}
	proof, _, err := s.sys.prove(zkcpKeyFor(s.pred, len(s.data)), buildZKCPCircuit(s.pred, &st, w))
	if err != nil {
		return ZKCPStatement{}, nil, err
	}
	return st, proof, nil
}

// Open discloses the key — THE flaw: k is now public (§IV-F's motivation).
func (s *ZKCPSeller) Open() fr.Element { return s.key }

// ZKCPVerify is the buyer's verification of the Deliver message.
func ZKCPVerify(sys *System, pred Predicate, st ZKCPStatement, proof *plonk.Proof) error {
	n := len(st.Ciphertext)
	vk, err := sys.vkFor(zkcpKeyFor(pred, n), func() *circuit.Builder {
		dummy := &ZKCPStatement{Ciphertext: make([]fr.Element, n)}
		return buildZKCPCircuit(pred, dummy, &EncryptionWitness{Data: make(Dataset, n)})
	})
	if err != nil {
		return err
	}
	if err := plonk.Verify(vk, proof, st.publics()); err != nil {
		return fmt.Errorf("core: zkcp π: %w", err)
	}
	return nil
}

// ZKCPFinalize is the judge's check of the Open step: h == H(k).
func ZKCPFinalize(st ZKCPStatement, k fr.Element) error {
	if got := poseidon.Hash([]fr.Element{k}); !got.Equal(&st.KeyHash) {
		return errors.New("core: zkcp finalize: H(k) != h")
	}
	return nil
}

// ZKCPLeak demonstrates the key-disclosure flaw: any third party who saw
// the public (D̂, k) after Open can decrypt the dataset.
func ZKCPLeak(st ZKCPStatement, publishedKey fr.Element) Dataset {
	ct := Ciphertext{Nonce: st.Nonce, Blocks: st.Ciphertext}
	return ct.Decrypt(publishedKey)
}

// ZKCPVerifierCost models the paper's Figure 7 ZKCP verifier: the original
// protocol uses a Groth16-style verifier whose work grows with the number
// of public inputs ℓ — 3 pairings plus ℓ exponentiations in G1 (§VI-B3).
// It executes that group arithmetic for real so measured times are honest,
// returning a nonsense-but-unoptimizable accumulator.
func ZKCPVerifierCost(ell int) bn254.G1Affine {
	g1 := bn254.G1Generator()
	g2 := bn254.G2Generator()
	// ℓ exponentiations in G1.
	var acc bn254.G1Jac
	acc.SetInfinity()
	for i := 0; i < ell; i++ {
		s := fr.NewElement(uint64(i)*0x9e3779b97f4a7c15 + 1)
		var t bn254.G1Jac
		t.ScalarMul(&g1, &s)
		acc.AddAssign(&t)
	}
	// 3 pairings.
	for i := 0; i < 3; i++ {
		bn254.Pair(&g1, &g2)
	}
	var out bn254.G1Affine
	out.FromJacobian(&acc)
	return out
}
