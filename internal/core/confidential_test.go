package core

import (
	"errors"
	"testing"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/ct"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/indexer"
)

// newConfidentialMarketplace enables the confidential subsystem on a fresh
// marketplace with a deterministic auditor key.
func newConfidentialMarketplace(t *testing.T) (*Marketplace, *ct.AuditorKey, chain.Address) {
	t.Helper()
	m, _ := newTestMarketplace(t)
	issuer := chain.AddressFromString("issuer")
	for _, who := range []string{"issuer", "alice", "bob"} {
		m.Chain.Faucet(chain.AddressFromString(who), 100_000_000)
	}
	ak := ct.AuditorKeyFromSecret(fr.NewElement(0xa0d1703))
	pub := ak.PublicKey()
	if _, err := m.EnableConfidential(issuer, pub); err != nil {
		t.Fatal(err)
	}
	return m, ak, issuer
}

func TestConfidentialDisabledByDefault(t *testing.T) {
	m, _ := newTestMarketplace(t)
	if m.Confidential() != nil {
		t.Fatal("confidential deployment present without EnableConfidential")
	}
	if _, err := m.ConfidentialMint(nil); !errors.Is(err, ErrConfidentialDisabled) {
		t.Fatalf("mint on disabled marketplace: %v", err)
	}
	alice := chain.AddressFromString("alice")
	if _, err := m.ConfidentialTransfer(alice, nil, nil); !errors.Is(err, ErrConfidentialDisabled) {
		t.Fatalf("transfer on disabled marketplace: %v", err)
	}
}

func TestEnableConfidentialIdempotent(t *testing.T) {
	m, ak, issuer := newConfidentialMarketplace(t)
	pub := ak.PublicKey()
	d1 := m.Confidential()
	d2, err := m.EnableConfidential(issuer, pub)
	if err != nil || d1 != d2 {
		t.Fatalf("second EnableConfidential: %p vs %p, %v", d1, d2, err)
	}
}

func TestConfidentialMintTransferThroughMarketplace(t *testing.T) {
	m, ak, _ := newConfidentialMarketplace(t)
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")

	notes, err := m.ConfidentialMint([]ConfPayment{{Value: 1000, To: alice}})
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 || notes[0].Owner != alice || notes[0].Opening.V != 1000 {
		t.Fatalf("mint notes %+v", notes)
	}

	out, err := m.ConfidentialTransfer(alice, notes,
		[]ConfPayment{{Value: 600, To: bob}, {Value: 400, To: alice}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Owner != bob || out[1].Owner != alice {
		t.Fatalf("transfer notes %+v", out)
	}

	// On-chain, only commitments are visible; the auditor opens them.
	for i, want := range []uint64{600, 400} {
		rec, err := contracts.ReadCTNote(m.Chain, contracts.ConfidentialTokenName, out[i].ID)
		if err != nil {
			t.Fatal(err)
		}
		op, err := ak.Open(m.Confidential().params, rec.Comm, &rec.Audit)
		if err != nil || op.V != want {
			t.Fatalf("auditor open note %d: v=%d err=%v", out[i].ID, op.V, err)
		}
	}

	// Unbalanced transfers are refused by the prover before they ever hit
	// the chain.
	if _, err := m.ConfidentialTransfer(bob, out[:1],
		[]ConfPayment{{Value: 700, To: bob}}); !errors.Is(err, ct.ErrUnbalanced) {
		t.Fatalf("unbalanced transfer: %v", err)
	}
}

func TestSellConfidentialAndAuditorLineage(t *testing.T) {
	m, ak, _ := newConfidentialMarketplace(t)
	alice := chain.AddressFromString("alice") // seller
	bob := chain.AddressFromString("bob")     // buyer
	reg := NewProofRegistry()

	data := smallData(4)
	asset, err := m.MintAsset(alice, "alice", data, fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}
	reg.PublishAsset(asset)

	// Bob pays with a confidential note worth 5000 — the amount never
	// appears on-chain.
	notes, err := m.ConfidentialMint([]ConfPayment{{Value: 5000, To: bob}})
	if err != nil {
		t.Fatal(err)
	}

	got, err := m.SellConfidential(1, alice, bob, asset, RangePredicate{Bits: 16}, notes[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !got[i].Equal(&data[i]) {
			t.Fatal("buyer received wrong data")
		}
	}
	// The payment note now belongs to the seller.
	rec, err := contracts.ReadCTNote(m.Chain, contracts.ConfidentialTokenName, notes[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Owner != alice {
		t.Fatal("payment note did not move to the seller")
	}
	// Ownership of the NFT moved to the buyer.
	tok, err := contracts.ReadToken(m.Chain, asset.TokenID)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Owner != bob {
		t.Fatal("NFT did not move to the buyer")
	}

	// A plain audit sees no amounts; auditor mode without the key is a
	// typed error; with the key the hidden payment is opened and matches
	// ground truth.
	report, err := m.AuditLineage(reg, asset.TokenID)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.ConfidentialPayments) != 0 {
		t.Fatal("non-auditor audit exposed payments")
	}
	if _, err := m.AuditLineage(reg, asset.TokenID, WithAuditorMode()); !errors.Is(err, ErrAuditorKeyRequired) {
		t.Fatalf("auditor mode without key: %v", err)
	}
	report, err = m.AuditLineage(reg, asset.TokenID, WithAuditorKey(ak))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.ConfidentialPayments) != 1 {
		t.Fatalf("auditor saw %d payments, want 1", len(report.ConfidentialPayments))
	}
	p := report.ConfidentialPayments[0]
	if p.Value != 5000 || p.TokenID != asset.TokenID || p.ExchangeID != 1 || p.NoteID != notes[0].ID {
		t.Fatalf("opened payment %+v", p)
	}
}

// TestIndexerConfidentialFold runs a confidential sale with the event
// indexer attached and checks the folded CT views: note records by ID and
// by commitment digest, statuses tracking the note lifecycle, and the
// confidential exchange record — all carrying only public data.
func TestIndexerConfidentialFold(t *testing.T) {
	m, _, _ := newConfidentialMarketplace(t)
	ix := m.AttachIndexer()
	alice := chain.AddressFromString("alice") // seller
	bob := chain.AddressFromString("bob")     // buyer

	asset, err := m.MintAsset(alice, "alice", smallData(3), fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}
	notes, err := m.ConfidentialMint([]ConfPayment{{Value: 5000, To: bob}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SellConfidential(1, alice, bob, asset, RangePredicate{Bits: 16}, notes[0]); err != nil {
		t.Fatal(err)
	}
	m.Chain.SealBlock()

	// Note record: settled payment note now belongs to the seller, unspent
	// again, with its full lock→settle history and the commitment digest.
	rec, err := ix.CTNote(notes[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Owner != alice || rec.Status != indexer.CTNoteUnspent {
		t.Fatalf("settled note record %+v", rec)
	}
	var names []string
	for _, h := range rec.History {
		names = append(names, h.Name)
	}
	if len(names) != 3 || names[0] != "CTNote" || names[1] != "CTOpened" || names[2] != "CTSettled" {
		t.Fatalf("note history %v", names)
	}

	// Digest lookup pivots from the on-chain commitment to the same record.
	onchain, err := contracts.ReadCTNote(m.Chain, contracts.ConfidentialTokenName, notes[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	digest := onchain.Comm.Digest()
	byDigest, err := ix.CTNoteByDigest(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	if byDigest.ID != notes[0].ID {
		t.Fatalf("digest lookup returned note %d, want %d", byDigest.ID, notes[0].ID)
	}
	if _, err := ix.CTNoteByDigest(make([]byte, 32)); !errors.Is(err, indexer.ErrUnknownNote) {
		t.Fatalf("unknown digest: %v", err)
	}

	// Exchange record: settled, pinned to the token and note, commitment
	// present but no amount anywhere.
	ex, err := ix.CTExchange(1)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Status != indexer.ExchangeSettled || ex.TokenID != asset.TokenID ||
		ex.NoteID != notes[0].ID || ex.Seller != alice || len(ex.Comm) != 64 || len(ex.KC) == 0 {
		t.Fatalf("confidential exchange record %+v", ex)
	}

	if s := ix.Stats(); s.CTNotes != 1 {
		t.Fatalf("stats CTNotes = %d, want 1", s.CTNotes)
	}
}

// TestConfidentialProofCheckerIntegration confirms ProofChecker covers the
// confidential family once enabled: a forged transfer is rejected at the
// gossip screen while a valid one passes.
func TestConfidentialProofCheckerIntegration(t *testing.T) {
	m, _, issuer := newConfidentialMarketplace(t)
	alice := chain.AddressFromString("alice")
	d := m.Confidential()

	// Build a valid mint transaction by hand (not submitted).
	secrets := []ct.OutputSecret{{V: 77, R: fr.MustRandom(), Rho: fr.MustRandom()}}
	outs := []ct.Output{d.params.NewOutput(&d.AuditorPub, 77, &secrets[0].R, &secrets[0].Rho)}
	recipients := []chain.Address{alice}
	st := &ct.Statement{Mint: true, Outputs: outs, Context: contracts.CTContext(issuer, nil, recipients)}
	proof, err := ct.Prove(d.params, d.prover, &d.AuditorPub, st, nil, secrets, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := &chain.Transaction{From: issuer, Contract: contracts.ConfidentialTokenName,
		Method: "mint", Args: contracts.CTTransferArgs(nil, nil, outs, recipients, proof)}

	var one fr.Element
	one.SetOne()
	proof.Outputs[0].ZRho.Add(&proof.Outputs[0].ZRho, &one)
	forged := &chain.Transaction{From: issuer, Contract: contracts.ConfidentialTokenName,
		Method: "mint", Args: contracts.CTTransferArgs(nil, nil, outs, recipients, proof)}

	bc := m.ProofChecker()
	n, errs := bc.GossipCheck([]*chain.Transaction{good, forged})
	if n != 1 || errs[0] != nil || errs[1] == nil {
		t.Fatalf("gossip: n=%d errs=%v", n, errs)
	}
	if !errors.Is(errs[1], contracts.ErrCTProofRejected) {
		t.Fatalf("forged error %v", errs[1])
	}
}
