package core

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/indexer"
	"github.com/zkdet/zkdet/internal/plonk"
	"github.com/zkdet/zkdet/internal/storage"
)

// Marketplace wires the full ZKDET deployment together (Figure 1): the
// blockchain with the DataNFT / auction / escrow / verifier contracts, the
// decentralized storage network holding encrypted datasets, and the proof
// system. It is the component a data owner or demander actually talks to.
type Marketplace struct {
	Sys   *System
	Chain *chain.Chain
	// Store is the deployment's content-addressed storage: the simulated
	// DHT by default (NewMarketplace), or any storage.BlobStore — a single
	// cluster node's local store, a p2p transport-backed store — when
	// deployed with NewMarketplaceWith.
	Store storage.BlobStore

	// Submitter, when set, routes marketplace transactions through an
	// external admission path — a cluster node's mempool + gossip — instead
	// of executing directly on the local chain. It must block until the
	// transaction is included and return its receipt. The transaction's
	// Nonce is advisory (taken from the local chain); cluster submitters
	// typically reassign it atomically at admission.
	Submitter func(tx chain.Transaction) (*chain.Receipt, error)

	// ix is the optional event indexer; when attached, provenance queries
	// walk the index instead of contract storage.
	ix *indexer.Indexer

	// verifier and escrow are the deployed contract instances, retained so
	// ProofChecker can wire seal-time batch verification.
	verifier *contracts.Verifier
	escrow   *contracts.Escrow

	// ctd is the optional confidential-token deployment (EnableConfidential).
	ctd *ConfidentialDeployment
}

// PiKVerifierName is the deployment name of the π_k verifier used by the
// escrow.
const PiKVerifierName = "zkdet-pik-verifier"

// DeployGas reports what contract deployments cost (Table II rows 1–2).
type DeployGas struct {
	DataNFT  uint64
	Auction  uint64
	Escrow   uint64
	Verifier uint64
}

// NewMarketplace deploys the contract suite on a fresh chain and spins up a
// storage network.
func NewMarketplace(sys *System, storageNodes int) (*Marketplace, DeployGas, error) {
	store, err := storage.NewNetwork(storageNodes)
	if err != nil {
		return nil, DeployGas{}, err
	}
	return NewMarketplaceWith(sys, chain.New(), store)
}

// NewMarketplaceWith deploys the contract suite onto a caller-provided
// chain and blob store. Cluster deployments use this as the genesis
// function: every node deploys the identical suite (same verifying key,
// same deployment order) onto its own chain, so all replicas start from
// the same state root and replayed blocks hash identically.
func NewMarketplaceWith(sys *System, c *chain.Chain, store storage.BlobStore) (*Marketplace, DeployGas, error) {
	var gas DeployGas
	var err error
	if gas.DataNFT, err = c.Deploy(contracts.DataNFTName, &contracts.DataNFT{}, contracts.DataNFTCodeSize); err != nil {
		return nil, gas, err
	}
	if gas.Auction, err = c.Deploy(contracts.AuctionName, contracts.NewClockAuction(contracts.DataNFTName), contracts.AuctionCodeSize); err != nil {
		return nil, gas, err
	}
	vk, err := sys.KeyCircuitVK()
	if err != nil {
		return nil, gas, fmt.Errorf("core: preparing π_k verifier: %w", err)
	}
	verifier := contracts.NewVerifier(vk)
	if gas.Verifier, err = c.Deploy(PiKVerifierName, verifier, contracts.VerifierCodeSize); err != nil {
		return nil, gas, err
	}
	escrow := contracts.NewEscrow(PiKVerifierName, 100)
	if gas.Escrow, err = c.Deploy(contracts.EscrowName, escrow, contracts.EscrowCodeSize); err != nil {
		return nil, gas, err
	}
	return &Marketplace{Sys: sys, Chain: c, Store: store, verifier: verifier, escrow: escrow}, gas, nil
}

// ProofChecker returns a seal-time batch verifier covering this
// deployment's proof-carrying transactions: direct π_k verifications and
// escrow settlements. Plug it into node.Config.SealVerifier so the block
// producer folds every block's proofs into one pairing check.
func (m *Marketplace) ProofChecker() *contracts.BlockProofChecker {
	bc := contracts.NewBlockProofChecker()
	bc.AddVerifier(PiKVerifierName, m.verifier)
	bc.AddEscrow(contracts.EscrowName, m.escrow)
	if m.ctd != nil {
		bc.AddVerifier(PiCTVerifierName, m.ctd.verifier)
		bc.AddConfidential(contracts.ConfidentialTokenName, m.ctd.Token)
	}
	return bc
}

// Asset is an owner's handle to a minted data asset: the on-chain token,
// the storage URI, and the private material needed to transform or sell it.
type Asset struct {
	TokenID uint64
	URI     storage.URI

	// Public statement of the asset's π_e.
	Statement *EncryptionStatement
	// EncProof is the reusable proof of encryption π_e.
	EncProof *plonk.Proof

	// Private: plaintext, key and blinders (held by the owner only).
	Data        Dataset
	Key         fr.Element
	DataBlinder fr.Element
	KeyBlinder  fr.Element
}

// ErrNotAssetOwner reports a marketplace call by a non-owner.
var ErrNotAssetOwner = errors.New("core: caller does not own the asset")

func (m *Marketplace) submit(from chain.Address, contract, method string, value uint64, args []byte) (*chain.Receipt, error) {
	tx := chain.Transaction{
		From: from, Contract: contract, Method: method,
		Args: args, Value: value, Nonce: m.Chain.NonceOf(from),
	}
	submit := m.Chain.Submit
	if m.Submitter != nil {
		submit = m.Submitter
	}
	r, err := submit(tx)
	if err != nil {
		return nil, err
	}
	if r.Err != nil {
		return nil, r.Err
	}
	return r, nil
}

// MintAsset runs §III-A end to end: encrypt the dataset, prove π_e, publish
// the ciphertext to storage (URI = digest), and mint the NFT whose
// commitment field binds (c_d ‖ c_k).
func (m *Marketplace) MintAsset(owner chain.Address, ownerLabel string, data Dataset, key fr.Element) (*Asset, error) {
	st, w, ct, proof, err := m.Sys.EncryptAndProve(data, key)
	if err != nil {
		return nil, err
	}
	uri, err := m.Store.Put(ownerLabel, ct.Bytes())
	if err != nil {
		return nil, err
	}
	cdB := st.DataCommitment.Bytes()
	ckB := st.KeyCommitment.Bytes()
	commitment := append(cdB[:], ckB[:]...)
	r, err := m.submit(owner, contracts.DataNFTName, "mint", 0, contracts.EncodeArgs(uri[:], commitment))
	if err != nil {
		return nil, err
	}
	id, err := contracts.DecU64(r.Return)
	if err != nil {
		return nil, err
	}
	return &Asset{
		TokenID:     id,
		URI:         uri,
		Statement:   st,
		EncProof:    proof,
		Data:        data.Clone(),
		Key:         key,
		DataBlinder: w.DataBlinder,
		KeyBlinder:  w.KeyBlinder,
	}, nil
}

// finishDerived encrypts a derived dataset under a fresh key, proves its
// π_e, stores the ciphertext and returns the pieces shared by all
// transformation endpoints.
func (m *Marketplace) finishDerived(ownerLabel string, derived Dataset) (*EncryptionStatement, *EncryptionWitness, *plonk.Proof, storage.URI, fr.Element, error) {
	key := fr.MustRandom()
	st, w, ct, proof, err := m.Sys.EncryptAndProve(derived, key)
	if err != nil {
		return nil, nil, nil, storage.URI{}, fr.Element{}, err
	}
	uri, err := m.Store.Put(ownerLabel, ct.Bytes())
	if err != nil {
		return nil, nil, nil, storage.URI{}, fr.Element{}, err
	}
	return st, w, proof, uri, key, nil
}

// TransformResult packages a transformation's outcome: the new asset(s)
// plus the π_t that links them to their sources.
type TransformResult struct {
	Assets []*Asset
	Proof  *TransformProof
}

// Duplicate mints a replica token (§IV-D1): new commitment, new key, new
// ciphertext, same plaintext, provably identical content.
func (m *Marketplace) Duplicate(owner chain.Address, ownerLabel string, src *Asset) (*TransformResult, error) {
	// π_t relates the source's data commitment to a fresh one. The fresh
	// derived commitment must be the one the new asset's π_e uses, so the
	// duplication proof is built against the new statement's commitment.
	st, w, encProof, uri, key, err := m.finishDerived(ownerLabel, src.Data)
	if err != nil {
		return nil, err
	}
	tp, err := m.Sys.proveDuplicationWith(src.Data, src.Statement.DataCommitment, src.DataBlinder, st.DataCommitment, w.DataBlinder)
	if err != nil {
		return nil, err
	}
	cdB := st.DataCommitment.Bytes()
	ckB := st.KeyCommitment.Bytes()
	r, err := m.submit(owner, contracts.DataNFTName, "duplicate", 0,
		contracts.EncodeArgs(contracts.U64(src.TokenID), uri[:], append(cdB[:], ckB[:]...)))
	if err != nil {
		return nil, err
	}
	id, err := contracts.DecU64(r.Return)
	if err != nil {
		return nil, err
	}
	asset := &Asset{
		TokenID: id, URI: uri, Statement: st, EncProof: encProof,
		Data: src.Data.Clone(), Key: key,
		DataBlinder: w.DataBlinder, KeyBlinder: w.KeyBlinder,
	}
	return &TransformResult{Assets: []*Asset{asset}, Proof: tp}, nil
}

// Aggregate merges assets into one (§IV-D2).
func (m *Marketplace) Aggregate(owner chain.Address, ownerLabel string, srcs []*Asset) (*TransformResult, error) {
	if len(srcs) < 2 {
		return nil, fmt.Errorf("%w: aggregation needs ≥2 sources", ErrBadShape)
	}
	datasets := make([]Dataset, len(srcs))
	csList := make([]fr.Element, len(srcs))
	osList := make([]fr.Element, len(srcs))
	prevIDs := make([]uint64, len(srcs))
	var derived Dataset
	for i, src := range srcs {
		datasets[i] = src.Data
		csList[i] = src.Statement.DataCommitment
		osList[i] = src.DataBlinder
		prevIDs[i] = src.TokenID
		derived = append(derived, src.Data...)
	}
	st, w, encProof, uri, key, err := m.finishDerived(ownerLabel, derived)
	if err != nil {
		return nil, err
	}
	tp, err := m.Sys.proveAggregationWith(datasets, csList, osList, st.DataCommitment, w.DataBlinder)
	if err != nil {
		return nil, err
	}
	cdB := st.DataCommitment.Bytes()
	ckB := st.KeyCommitment.Bytes()
	r, err := m.submit(owner, contracts.DataNFTName, "aggregate", 0,
		contracts.EncodeArgs(contracts.U64List(prevIDs), uri[:], append(cdB[:], ckB[:]...)))
	if err != nil {
		return nil, err
	}
	id, err := contracts.DecU64(r.Return)
	if err != nil {
		return nil, err
	}
	asset := &Asset{
		TokenID: id, URI: uri, Statement: st, EncProof: encProof,
		Data: derived, Key: key,
		DataBlinder: w.DataBlinder, KeyBlinder: w.KeyBlinder,
	}
	return &TransformResult{Assets: []*Asset{asset}, Proof: tp}, nil
}

// Partition splits an asset into consecutive pieces (§IV-D3).
func (m *Marketplace) Partition(owner chain.Address, ownerLabel string, src *Asset, sizes []int) (*TransformResult, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("%w: partition needs ≥2 pieces", ErrBadShape)
	}
	total := 0
	for _, n := range sizes {
		if n <= 0 {
			return nil, fmt.Errorf("%w: empty piece", ErrBadShape)
		}
		total += n
	}
	if total != len(src.Data) {
		return nil, fmt.Errorf("%w: pieces cover %d of %d", ErrBadShape, total, len(src.Data))
	}
	pieces := make([]Dataset, len(sizes))
	sts := make([]*EncryptionStatement, len(sizes))
	ws := make([]*EncryptionWitness, len(sizes))
	encProofs := make([]*plonk.Proof, len(sizes))
	uris := make([]storage.URI, len(sizes))
	keys := make([]fr.Element, len(sizes))
	cdList := make([]fr.Element, len(sizes))
	odList := make([]fr.Element, len(sizes))
	off := 0
	var err error
	for i, n := range sizes {
		pieces[i] = src.Data[off : off+n].Clone()
		sts[i], ws[i], encProofs[i], uris[i], keys[i], err = m.finishDerived(ownerLabel, pieces[i])
		if err != nil {
			return nil, err
		}
		cdList[i] = sts[i].DataCommitment
		odList[i] = ws[i].DataBlinder
		off += n
	}
	tp, err := m.Sys.provePartitionWith(src.Data, src.Statement.DataCommitment, src.DataBlinder, sizes, cdList, odList)
	if err != nil {
		return nil, err
	}
	args := [][]byte{contracts.U64(src.TokenID)}
	for i := range sizes {
		cdB := sts[i].DataCommitment.Bytes()
		ckB := sts[i].KeyCommitment.Bytes()
		args = append(args, uris[i][:], append(cdB[:], ckB[:]...))
	}
	r, err := m.submit(owner, contracts.DataNFTName, "partition", 0, contracts.EncodeArgs(args...))
	if err != nil {
		return nil, err
	}
	ids, err := contracts.DecU64List(r.Return)
	if err != nil {
		return nil, err
	}
	assets := make([]*Asset, len(sizes))
	for i := range sizes {
		assets[i] = &Asset{
			TokenID: ids[i], URI: uris[i], Statement: sts[i], EncProof: encProofs[i],
			Data: pieces[i], Key: keys[i],
			DataBlinder: ws[i].DataBlinder, KeyBlinder: ws[i].KeyBlinder,
		}
	}
	return &TransformResult{Assets: assets, Proof: tp}, nil
}

// Process applies a Processor and mints the result (§IV-D4/§IV-E: model
// training, computational delegation).
func (m *Marketplace) Process(owner chain.Address, ownerLabel string, src *Asset, proc Processor) (*TransformResult, error) {
	derived, err := proc.Apply(src.Data)
	if err != nil {
		return nil, err
	}
	st, w, encProof, uri, key, err := m.finishDerived(ownerLabel, derived)
	if err != nil {
		return nil, err
	}
	tp, err := m.Sys.proveProcessingWith(proc, src.Data, src.Statement.DataCommitment, src.DataBlinder, st.DataCommitment, w.DataBlinder)
	if err != nil {
		return nil, err
	}
	cdB := st.DataCommitment.Bytes()
	ckB := st.KeyCommitment.Bytes()
	r, err := m.submit(owner, contracts.DataNFTName, "process", 0,
		contracts.EncodeArgs(contracts.U64List([]uint64{src.TokenID}), uri[:], append(cdB[:], ckB[:]...)))
	if err != nil {
		return nil, err
	}
	id, err := contracts.DecU64(r.Return)
	if err != nil {
		return nil, err
	}
	asset := &Asset{
		TokenID: id, URI: uri, Statement: st, EncProof: encProof,
		Data: derived, Key: key,
		DataBlinder: w.DataBlinder, KeyBlinder: w.KeyBlinder,
	}
	return &TransformResult{Assets: []*Asset{asset}, Proof: tp}, nil
}

// SellViaEscrow runs the complete key-secure exchange (§IV-F) between a
// seller's asset and a buyer address, using the on-chain escrow as 𝒥.
// It returns the decrypted dataset as received by the buyer.
func (m *Marketplace) SellViaEscrow(exchangeID uint64, sellerAddr, buyerAddr chain.Address, asset *Asset, pred Predicate, price uint64) (Dataset, error) {
	seller, err := NewSeller(m.Sys, asset.Data, asset.Key, pred)
	if err != nil {
		return nil, err
	}
	listing := seller.Listing(price)

	// Phase 1 — data validation: seller proves π_p, buyer verifies.
	piP, err := seller.ProveData()
	if err != nil {
		return nil, err
	}
	buyer := NewBuyer(m.Sys, listing, pred)
	if err := buyer.VerifyData(piP); err != nil {
		return nil, err
	}

	// Buyer locks payment with h_v; k_v goes to the seller off-chain.
	kv, hv := buyer.Challenge()
	hvB := hv.Bytes()
	ckB := listing.KeyCommitment.Bytes()
	if _, err := m.submit(buyerAddr, contracts.EscrowName, "open", price,
		contracts.EncodeArgs(contracts.U64(exchangeID), sellerAddr[:], hvB[:], ckB[:])); err != nil {
		return nil, err
	}

	// Phase 2 — key negotiation: seller derives k_c and proves π_k;
	// the escrow verifies on-chain and releases the payment.
	st, piK, err := seller.NegotiateKey(kv, hv)
	if err != nil {
		return nil, err
	}
	kcB := st.KC.Bytes()
	if _, err := m.submit(sellerAddr, contracts.EscrowName, "settle", 0,
		contracts.EncodeArgs(contracts.U64(exchangeID), kcB[:],
			piK.Bytes(), kcB[:], ckB[:], hvB[:])); err != nil {
		return nil, err
	}

	// Buyer reads k_c from chain state and decrypts.
	kcPub, err := contracts.ReadSettledKc(m.Chain, contracts.EscrowName, exchangeID)
	if err != nil {
		return nil, err
	}
	kcEl, err := fr.FromBytesCanonical(kcPub)
	if err != nil {
		return nil, err
	}
	// Transfer the NFT to the buyer to record the ownership change.
	if _, err := m.submit(sellerAddr, contracts.DataNFTName, "transfer", 0,
		contracts.EncodeArgs(contracts.U64(asset.TokenID), buyerAddr[:])); err != nil {
		return nil, err
	}
	return buyer.Decrypt(kcEl)
}

// FetchCiphertext retrieves and decodes an asset's ciphertext from storage.
func (m *Marketplace) FetchCiphertext(uri storage.URI) (Ciphertext, error) {
	raw, err := m.Store.Get(uri)
	if err != nil {
		return Ciphertext{}, err
	}
	return CiphertextFromBytes(raw)
}

// AttachIndexer wires an event indexer configured for the deployed contract
// suite onto the chain's seal hook and routes subsequent Trace calls through
// it. Idempotent: a second call returns the already-attached indexer.
func (m *Marketplace) AttachIndexer() *indexer.Indexer {
	if m.ix == nil {
		m.ix = indexer.New(indexer.Config{
			NFTContract:    contracts.DataNFTName,
			EscrowContract: contracts.EscrowName,
			CTContract:     contracts.ConfidentialTokenName,
		})
		m.ix.Attach(m.Chain)
	}
	return m.ix
}

// Indexer returns the attached event indexer, or nil.
func (m *Marketplace) Indexer() *indexer.Indexer { return m.ix }

// Trace returns the provenance of a token (Figure 2's lineage walk). With an
// indexer attached the ancestor set comes from the event index — O(lineage)
// instead of a storage walk per token lookup chain — and only the returned
// tokens' records are read from storage. Tokens the indexer has not seen
// yet (minted but not sealed into a block) fall back to the storage walk.
func (m *Marketplace) Trace(tokenID uint64) ([]*contracts.Token, error) {
	if m.ix != nil {
		ids, err := m.ix.AncestorIDs(tokenID)
		if err == nil {
			out := make([]*contracts.Token, 0, len(ids))
			for _, id := range ids {
				tok, err := contracts.ReadToken(m.Chain, id)
				if err != nil {
					return nil, fmt.Errorf("core: tracing %d: %w", id, err)
				}
				out = append(out, tok)
			}
			return out, nil
		}
		if !errors.Is(err, indexer.ErrUnknownToken) {
			return nil, err
		}
	}
	return contracts.Trace(m.Chain, tokenID)
}
