package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/ct"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
	"github.com/zkdet/zkdet/internal/storage"
)

// ProofRegistry is the public off-chain proof store of a ZKDET deployment.
// The chain keeps only metadata (URIs, commitments, lineage); the proofs
// themselves — like the ciphertexts — live in public storage, indexed by
// token. This mirrors the paper's setting where "all statements required
// for proof validation are publicly available".
type ProofRegistry struct {
	mu      sync.Mutex
	byToken map[uint64]*TokenProofs // guarded by mu
}

// TokenProofs bundles the published proofs of one token.
type TokenProofs struct {
	// Encryption is the token's π_e statement (its ciphertext and
	// commitments) and proof.
	Encryption      *EncryptionStatement
	EncryptionProof *plonk.Proof
	// Transform is the π_t that derived this token (nil for mints).
	Transform *TransformProof
	// Processor names the processing relation when Transform is a
	// processing proof (the verifier must rebuild the same circuit).
	Processor Processor
}

// NewProofRegistry returns an empty registry.
func NewProofRegistry() *ProofRegistry {
	return &ProofRegistry{byToken: make(map[uint64]*TokenProofs)}
}

// Publish records a token's proofs.
func (r *ProofRegistry) Publish(tokenID uint64, p *TokenProofs) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byToken[tokenID] = p
}

// Lookup fetches a token's proofs.
func (r *ProofRegistry) Lookup(tokenID uint64) (*TokenProofs, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.byToken[tokenID]
	return p, ok
}

// Audit errors.
var (
	ErrAuditMissingProofs = errors.New("core: no published proofs for token")
	ErrAuditMismatch      = errors.New("core: on-chain record contradicts published proofs")
	// ErrAuditorKeyRequired reports an auditor-mode audit attempted
	// without the designated auditor's secret key: confidential payment
	// amounts are Pedersen-committed on-chain and can only be opened by
	// the auditor's decryption key.
	ErrAuditorKeyRequired = errors.New("core: auditor mode requires the designated auditor key")
)

// ConfidentialPayment is one opened confidential settlement in a token's
// lineage: visible only to an auditor-mode audit holding the auditor key.
type ConfidentialPayment struct {
	TokenID    uint64
	ExchangeID uint64
	NoteID     uint64
	Value      uint64
}

// AuditReport summarizes a lineage audit.
type AuditReport struct {
	// Tokens lists every audited token (the target first).
	Tokens []uint64
	// EncryptionProofs and TransformProofs count what was verified.
	EncryptionProofs int
	TransformProofs  int
	// ConfidentialPayments lists the opened confidential settlements
	// touching the lineage (auditor mode only; empty otherwise).
	ConfidentialPayments []ConfidentialPayment
}

// AuditOption tunes an AuditLineage run.
type AuditOption func(*auditConfig)

type auditConfig struct {
	auditorMode bool
	auditorKey  *ct.AuditorKey
}

// WithAuditorMode asks the audit to additionally open every confidential
// payment in the token's lineage. It requires WithAuditorKey; without it
// AuditLineage returns ErrAuditorKeyRequired — the amounts are not
// recoverable from public state.
func WithAuditorMode() AuditOption {
	return func(c *auditConfig) { c.auditorMode = true }
}

// WithAuditorKey supplies the designated auditor's decryption key and
// implies auditor mode.
func WithAuditorKey(key *ct.AuditorKey) AuditOption {
	return func(c *auditConfig) {
		c.auditorMode = true
		c.auditorKey = key
	}
}

// AuditLineage performs the full due-diligence a buyer runs before trusting
// a derived data asset (the §IV-B "evaluate datasets throughout their
// lifecycle" flow):
//
//  1. walk the token's prevIds[] lineage on-chain;
//  2. for every token: fetch the ciphertext by URI from storage, check it
//     matches the published π_e statement, and verify π_e;
//  3. check the on-chain commitment field binds the same commitments;
//  4. for every derived token: verify its π_t and that the proof's source
//     commitments are exactly its parents' on-chain data commitments.
//
// With WithAuditorKey, the audit additionally opens every confidential
// settlement whose exchange references a lineage token, reporting the
// hidden payment amounts (designated-auditor traceability). Auditor mode
// without the key fails with ErrAuditorKeyRequired.
func (m *Marketplace) AuditLineage(reg *ProofRegistry, tokenID uint64, opts ...AuditOption) (*AuditReport, error) {
	var cfg auditConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.auditorMode && cfg.auditorKey == nil {
		return nil, ErrAuditorKeyRequired
	}
	lineage, err := m.Trace(tokenID)
	if err != nil {
		return nil, err
	}
	report := &AuditReport{}
	byID := make(map[uint64]*contracts.Token, len(lineage))
	for _, tok := range lineage {
		byID[tok.ID] = tok
		report.Tokens = append(report.Tokens, tok.ID)
	}

	for _, tok := range lineage {
		proofs, ok := reg.Lookup(tok.ID)
		if !ok {
			return nil, fmt.Errorf("%w: #%d", ErrAuditMissingProofs, tok.ID)
		}

		// (2) The stored ciphertext is the proven one.
		uri := storage.URI{}
		if len(tok.URI) != len(uri) {
			return nil, fmt.Errorf("%w: token #%d has malformed URI", ErrAuditMismatch, tok.ID)
		}
		copy(uri[:], tok.URI)
		raw, err := m.Store.Get(uri)
		if err != nil {
			return nil, fmt.Errorf("core: token #%d ciphertext: %w", tok.ID, err)
		}
		ct, err := CiphertextFromBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("core: token #%d ciphertext: %w", tok.ID, err)
		}
		if !ct.Nonce.Equal(&proofs.Encryption.Nonce) || len(ct.Blocks) != len(proofs.Encryption.Ciphertext) {
			return nil, fmt.Errorf("%w: token #%d ciphertext differs from π_e statement", ErrAuditMismatch, tok.ID)
		}
		for i := range ct.Blocks {
			if !ct.Blocks[i].Equal(&proofs.Encryption.Ciphertext[i]) {
				return nil, fmt.Errorf("%w: token #%d ciphertext block %d", ErrAuditMismatch, tok.ID, i)
			}
		}

		// (3) The on-chain commitment field is (c_d ‖ c_k).
		cdB := proofs.Encryption.DataCommitment.Bytes()
		ckB := proofs.Encryption.KeyCommitment.Bytes()
		want := append(cdB[:], ckB[:]...)
		if !bytes.Equal(tok.Commitment, want) {
			return nil, fmt.Errorf("%w: token #%d commitment field", ErrAuditMismatch, tok.ID)
		}

		// (2 cont.) π_e verifies.
		if err := m.Sys.VerifyEncryption(proofs.Encryption, proofs.EncryptionProof); err != nil {
			return nil, fmt.Errorf("core: token #%d: %w", tok.ID, err)
		}
		report.EncryptionProofs++

		// (4) Derived tokens carry a valid π_t linked to their parents.
		if tok.Kind == contracts.KindMint {
			continue
		}
		if proofs.Transform == nil {
			return nil, fmt.Errorf("%w: derived token #%d has no π_t", ErrAuditMissingProofs, tok.ID)
		}
		if err := m.Sys.VerifyTransform(proofs.Transform, proofs.Processor); err != nil {
			return nil, fmt.Errorf("core: token #%d: %w", tok.ID, err)
		}
		// The π_t's derived side must include this token's commitment...
		if !containsCommitment(proofs.Transform.Derived, proofs.Encryption.DataCommitment) {
			return nil, fmt.Errorf("%w: token #%d π_t does not derive its commitment", ErrAuditMismatch, tok.ID)
		}
		// ...and its sources must be exactly the parents' commitments.
		if len(tok.PrevIDs) != len(proofs.Transform.Sources) {
			return nil, fmt.Errorf("%w: token #%d has %d parents but π_t has %d sources",
				ErrAuditMismatch, tok.ID, len(tok.PrevIDs), len(proofs.Transform.Sources))
		}
		for i, pid := range tok.PrevIDs {
			parentProofs, ok := reg.Lookup(pid)
			if !ok {
				return nil, fmt.Errorf("%w: parent #%d", ErrAuditMissingProofs, pid)
			}
			if !proofs.Transform.Sources[i].Equal(&parentProofs.Encryption.DataCommitment) {
				return nil, fmt.Errorf("%w: token #%d π_t source %d != parent #%d commitment",
					ErrAuditMismatch, tok.ID, i, pid)
			}
		}
		report.TransformProofs++
	}

	// Auditor mode: open the confidential settlements touching this
	// lineage. Exchanges are enumerated from the contract's own index, so
	// this works without an event indexer attached.
	if cfg.auditorMode && m.ctd != nil {
		settlements, err := contracts.ReadCTSettlements(m.Chain, contracts.ConfidentialTokenName)
		if err != nil {
			return nil, err
		}
		for _, s := range settlements {
			if !s.Settled {
				continue
			}
			if _, inLineage := byID[s.TokenID]; !inLineage {
				continue
			}
			note, err := contracts.ReadCTNote(m.Chain, contracts.ConfidentialTokenName, s.NoteID)
			if err != nil {
				return nil, fmt.Errorf("core: auditing exchange %d: %w", s.ExchangeID, err)
			}
			opening, err := cfg.auditorKey.Open(m.ctd.params, note.Comm, &note.Audit)
			if err != nil {
				return nil, fmt.Errorf("core: opening note %d: %w", s.NoteID, err)
			}
			report.ConfidentialPayments = append(report.ConfidentialPayments, ConfidentialPayment{
				TokenID:    s.TokenID,
				ExchangeID: s.ExchangeID,
				NoteID:     s.NoteID,
				Value:      opening.V,
			})
		}
	}
	return report, nil
}

func containsCommitment(list []fr.Element, c fr.Element) bool {
	for i := range list {
		if list[i].Equal(&c) {
			return true
		}
	}
	return false
}

// PublishAsset records a freshly minted asset's proofs in the registry.
func (r *ProofRegistry) PublishAsset(a *Asset) {
	r.Publish(a.TokenID, &TokenProofs{
		Encryption:      a.Statement,
		EncryptionProof: a.EncProof,
	})
}

// PublishTransform records a transformation result: every derived asset
// shares the π_t; processing results carry their Processor for
// re-verification.
func (r *ProofRegistry) PublishTransform(res *TransformResult, proc Processor) {
	for _, a := range res.Assets {
		r.Publish(a.TokenID, &TokenProofs{
			Encryption:      a.Statement,
			EncryptionProof: a.EncProof,
			Transform:       res.Proof,
			Processor:       proc,
		})
	}
}
