package core

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
)

// Predicate is a public property φ of a plaintext dataset that a seller
// proves without revealing the data (§III-C, §IV-F). Implementations must
// emit a witness-independent gate structure for a fixed dataset size.
type Predicate interface {
	// Name identifies the predicate (part of the circuit shape key).
	Name() string
	// Check evaluates φ natively.
	Check(d Dataset) bool
	// Gadget emits constraints enforcing φ(D) = 1.
	Gadget(b *circuit.Builder, data []circuit.Variable)
}

// TruePredicate is the trivial φ accepting every dataset (ownership-only
// exchanges).
type TruePredicate struct{}

// Name implements Predicate.
func (TruePredicate) Name() string { return "true" }

// Check implements Predicate.
func (TruePredicate) Check(Dataset) bool { return true }

// Gadget implements Predicate.
func (TruePredicate) Gadget(*circuit.Builder, []circuit.Variable) {}

// RangePredicate asserts every entry is below 2^Bits — e.g. "all readings
// are valid 16-bit sensor values".
type RangePredicate struct {
	Bits int
}

// Name implements Predicate.
func (p RangePredicate) Name() string { return fmt.Sprintf("range%d", p.Bits) }

// Check implements Predicate.
func (p RangePredicate) Check(d Dataset) bool {
	for i := range d {
		if d[i].BigInt().BitLen() > p.Bits {
			return false
		}
	}
	return true
}

// Gadget implements Predicate.
func (p RangePredicate) Gadget(b *circuit.Builder, data []circuit.Variable) {
	for _, v := range data {
		b.AssertRange(v, p.Bits)
	}
}

// SumPredicate asserts the entries sum to Total — e.g. a declared column
// checksum.
type SumPredicate struct {
	Total fr.Element
}

// Name implements Predicate.
func (p SumPredicate) Name() string { return "sum/" + p.Total.String() }

// Check implements Predicate.
func (p SumPredicate) Check(d Dataset) bool {
	var acc fr.Element
	for i := range d {
		acc.Add(&acc, &d[i])
	}
	return acc.Equal(&p.Total)
}

// Gadget implements Predicate.
func (p SumPredicate) Gadget(b *circuit.Builder, data []circuit.Variable) {
	sum := b.Sum(data)
	b.AssertConst(sum, p.Total)
}

// NonZeroPredicate asserts every entry is non-zero (no missing values).
type NonZeroPredicate struct{}

// Name implements Predicate.
func (NonZeroPredicate) Name() string { return "nonzero" }

// Check implements Predicate.
func (NonZeroPredicate) Check(d Dataset) bool {
	for i := range d {
		if d[i].IsZero() {
			return false
		}
	}
	return true
}

// Gadget implements Predicate.
func (NonZeroPredicate) Gadget(b *circuit.Builder, data []circuit.Variable) {
	for _, v := range data {
		b.AssertNonZero(v)
	}
}
