package core

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
)

// This file exports small, fully-witnessed instantiations of the π-family
// circuits for the soundness auditor (internal/circuit/audit). The
// builders are the same unexported constructors the prover uses — the
// auditor must see the production constraint structure, not a test
// double — instantiated with consistent statements so the eager witness
// satisfies every gate.

// AuditCircuit is a named circuit constructor for the auditor registry.
type AuditCircuit struct {
	Name  string
	Build func() (*circuit.Builder, error)
}

// auditDataset returns a deterministic n-element dataset of small values
// (they double as fixed-point inputs for predicate circuits).
func auditDataset(n int) Dataset {
	d := make(Dataset, n)
	for i := range d {
		d[i] = fr.NewElement(uint64(i + 3))
	}
	return d
}

// AuditCircuits returns the core π-family circuits (encryption,
// duplication, aggregation, partition, validation, key negotiation),
// each instantiated small with a consistent witness.
func AuditCircuits() []AuditCircuit {
	return []AuditCircuit{
		{Name: "core/pi_e", Build: func() (*circuit.Builder, error) {
			data := auditDataset(4)
			key := fr.NewElement(77)
			ct := data.Encrypt(key)
			cd, od := data.Commit()
			ck, ok := KeyCommit(key)
			st := &EncryptionStatement{Nonce: ct.Nonce, DataCommitment: cd, KeyCommitment: ck, Ciphertext: ct.Blocks}
			w := &EncryptionWitness{Data: data, Key: key, DataBlinder: od, KeyBlinder: ok}
			return buildEncryptionCircuit(st, w), nil
		}},
		{Name: "core/pi_t/dup", Build: func() (*circuit.Builder, error) {
			data := auditDataset(3)
			cs, os := data.Commit()
			cd, od := data.Commit()
			return buildDuplicationCircuit(len(data), data, cs, cd, os, od), nil
		}},
		{Name: "core/pi_t/agg", Build: func() (*circuit.Builder, error) {
			srcs := []Dataset{auditDataset(2), auditDataset(3)}
			var derived Dataset
			csList := make([]fr.Element, len(srcs))
			osList := make([]fr.Element, len(srcs))
			sizes := make([]int, len(srcs))
			for i, s := range srcs {
				csList[i], osList[i] = s.Commit()
				sizes[i] = len(s)
				derived = append(derived, s...)
			}
			cd, od := derived.Commit()
			return buildAggregationCircuit(sizes, srcs, csList, cd, osList, od), nil
		}},
		{Name: "core/pi_t/part", Build: func() (*circuit.Builder, error) {
			src := auditDataset(5)
			cs, os := src.Commit()
			sizes := []int{2, 3}
			cdList := make([]fr.Element, len(sizes))
			odList := make([]fr.Element, len(sizes))
			off := 0
			for k, n := range sizes {
				piece := src[off : off+n].Clone()
				cdList[k], odList[k] = piece.Commit()
				off += n
			}
			return buildPartitionCircuit(sizes, src, cs, cdList, os, odList), nil
		}},
		{Name: "core/pi_p/range", Build: func() (*circuit.Builder, error) {
			data := auditDataset(4)
			key := fr.NewElement(99)
			ct := data.Encrypt(key)
			cd, od := data.Commit()
			st := &ValidationStatement{Nonce: ct.Nonce, DataCommitment: cd, Ciphertext: ct.Blocks}
			w := &EncryptionWitness{Data: data, Key: key, DataBlinder: od}
			return buildValidationCircuit(RangePredicate{Bits: 8}, st, w), nil
		}},
		{Name: "core/pi_k", Build: func() (*circuit.Builder, error) {
			k := fr.NewElement(1234)
			kv := fr.NewElement(5678)
			ck, ok := KeyCommit(k)
			var kc fr.Element
			kc.Add(&k, &kv)
			st := &KeyStatement{KC: kc, KeyCommitment: ck, HV: HashChallenge(kv)}
			return buildKeyCircuit(st, &KeyWitness{K: k, KV: kv, KeyBlinder: ok}), nil
		}},
	}
}

// AuditProcessingCircuit builds the production π_t processing circuit for
// a Processor over src (with the lookup/custom-gate lowering if the
// processor opts in), witnessed consistently end-to-end.
func AuditProcessingCircuit(p Processor, src Dataset) (*circuit.Builder, error) {
	derived, err := p.Apply(src)
	if err != nil {
		return nil, fmt.Errorf("core: audit processing %s: %w", p.Name(), err)
	}
	cs, os := src.Commit()
	cd, od := derived.Commit()
	return buildProcessingCircuit(p, len(src), src, cs, cd, os, od), nil
}
