package core

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/mimc"
	"github.com/zkdet/zkdet/internal/plonk"
	"github.com/zkdet/zkdet/internal/poseidon"
)

// This file implements the generic data transformation protocol of §IV-B
// with the predicates of §IV-D. Transformation proofs π_t relate Poseidon
// commitments of the source and derived datasets; they compose with the
// decoupled proofs of encryption π_e through the shared commitments
// (the commit-and-prove composition of the paper's CP-NIZK).

// TransformKindName labels the §III-B formulae.
type TransformKindName string

// Transformation kinds.
const (
	TransformDuplication TransformKindName = "duplication"
	TransformAggregation TransformKindName = "aggregation"
	TransformPartition   TransformKindName = "partition"
	TransformProcessing  TransformKindName = "processing"
)

// TransformProof is a proof of transformation π_t: the statement relates
// source commitment(s) to derived commitment(s); Kind and Shape pin the
// circuit that was used.
type TransformProof struct {
	Kind    TransformKindName
	Shape   []int // size parameters of the circuit (see per-kind docs)
	Sources []fr.Element
	Derived []fr.Element
	Proof   *plonk.Proof
}

// ErrBadShape reports inconsistent transformation size parameters.
var ErrBadShape = errors.New("core: invalid transformation shape")

// --- Duplication (§IV-D1): D == S, fresh commitment ---

func buildDuplicationCircuit(n int, s Dataset, cs, cd, os, od fr.Element) *circuit.Builder {
	b := circuit.NewBuilder()
	csPub := b.Public(cs)
	cdPub := b.Public(cd)
	osv := b.Secret(os)
	odv := b.Secret(od)
	vals := make([]circuit.Variable, n)
	for i := 0; i < n; i++ {
		var v fr.Element
		if i < len(s) {
			v = s[i]
		}
		vals[i] = b.Secret(v)
	}
	b.AssertEqual(poseidon.GadgetCommit(b, vals, osv), csPub)
	b.AssertEqual(poseidon.GadgetCommit(b, vals, odv), cdPub)
	return b
}

// ProveDuplication produces π_t for a duplication: the same plaintext under
// two independent commitments (c_s with blinder o_s, c_d with fresh o_d).
func (s *System) ProveDuplication(data Dataset, cs, os fr.Element) (*TransformProof, fr.Element, error) {
	if len(data) == 0 {
		return nil, fr.Element{}, ErrDatasetEmpty
	}
	cd, od := data.Commit()
	tp, err := s.proveDuplicationWith(data, cs, os, cd, od)
	if err != nil {
		return nil, fr.Element{}, err
	}
	return tp, od, nil
}

// proveDuplicationWith is ProveDuplication against a caller-supplied
// derived commitment (shared with the derived asset's π_e).
func (s *System) proveDuplicationWith(data Dataset, cs, os, cd, od fr.Element) (*TransformProof, error) {
	key := fmt.Sprintf("pi_t/dup/%d", len(data))
	proof, _, err := s.prove(key, buildDuplicationCircuit(len(data), data, cs, cd, os, od))
	if err != nil {
		return nil, err
	}
	return &TransformProof{
		Kind:    TransformDuplication,
		Shape:   []int{len(data)},
		Sources: []fr.Element{cs},
		Derived: []fr.Element{cd},
		Proof:   proof,
	}, nil
}

// --- Aggregation (§IV-D2): D = S_1 ‖ … ‖ S_x in order ---

func buildAggregationCircuit(sizes []int, srcs []Dataset, csList []fr.Element, cd fr.Element, osList []fr.Element, od fr.Element) *circuit.Builder {
	b := circuit.NewBuilder()
	csPubs := make([]circuit.Variable, len(sizes))
	for i := range sizes {
		csPubs[i] = b.Public(csList[i])
	}
	cdPub := b.Public(cd)
	odv := b.Secret(od)
	var all []circuit.Variable
	for k, n := range sizes {
		osv := b.Secret(osList[k])
		vals := make([]circuit.Variable, n)
		for i := 0; i < n; i++ {
			var v fr.Element
			if k < len(srcs) && i < len(srcs[k]) {
				v = srcs[k][i]
			}
			vals[i] = b.Secret(v)
		}
		b.AssertEqual(poseidon.GadgetCommit(b, vals, osv), csPubs[k])
		all = append(all, vals...)
	}
	b.AssertEqual(poseidon.GadgetCommit(b, all, odv), cdPub)
	return b
}

// ProveAggregation produces π_t for merging sources (in order) into their
// concatenation, returning the proof, the derived dataset, its commitment
// blinder o_d. Each source arrives with its existing commitment/blinder.
func (s *System) ProveAggregation(srcs []Dataset, csList, osList []fr.Element) (*TransformProof, Dataset, fr.Element, error) {
	if len(srcs) < 2 {
		return nil, nil, fr.Element{}, fmt.Errorf("%w: aggregation needs ≥2 sources", ErrBadShape)
	}
	if len(csList) != len(srcs) || len(osList) != len(srcs) {
		return nil, nil, fr.Element{}, fmt.Errorf("%w: commitment count mismatch", ErrBadShape)
	}
	sizes := make([]int, len(srcs))
	var derived Dataset
	for i, src := range srcs {
		if len(src) == 0 {
			return nil, nil, fr.Element{}, ErrDatasetEmpty
		}
		sizes[i] = len(src)
		derived = append(derived, src...)
	}
	cd, od := derived.Commit()
	tp, err := s.proveAggregationWith(srcs, csList, osList, cd, od)
	if err != nil {
		return nil, nil, fr.Element{}, err
	}
	return tp, derived, od, nil
}

// proveAggregationWith is ProveAggregation against a caller-supplied
// derived commitment.
func (s *System) proveAggregationWith(srcs []Dataset, csList, osList []fr.Element, cd, od fr.Element) (*TransformProof, error) {
	sizes := make([]int, len(srcs))
	for i := range srcs {
		sizes[i] = len(srcs[i])
	}
	key := fmt.Sprintf("pi_t/agg/%v", sizes)
	proof, _, err := s.prove(key, buildAggregationCircuit(sizes, srcs, csList, cd, osList, od))
	if err != nil {
		return nil, err
	}
	return &TransformProof{
		Kind:    TransformAggregation,
		Shape:   sizes,
		Sources: append([]fr.Element{}, csList...),
		Derived: []fr.Element{cd},
		Proof:   proof,
	}, nil
}

// --- Partition (§IV-D3): S = D_1 ∪ … ∪ D_y, exhaustive and disjoint ---
//
// The circuit realizes the paper's predicate by construction: the derived
// pieces are consecutive, non-empty sub-vectors whose concatenation is
// exactly S — which is both exhaustive (every element appears) and
// mutually exclusive (positions do not overlap).

func buildPartitionCircuit(sizes []int, src Dataset, cs fr.Element, cdList []fr.Element, os fr.Element, odList []fr.Element) *circuit.Builder {
	b := circuit.NewBuilder()
	csPub := b.Public(cs)
	cdPubs := make([]circuit.Variable, len(sizes))
	for i := range sizes {
		cdPubs[i] = b.Public(cdList[i])
	}
	osv := b.Secret(os)
	total := 0
	for _, n := range sizes {
		total += n
	}
	vals := make([]circuit.Variable, total)
	for i := 0; i < total; i++ {
		var v fr.Element
		if i < len(src) {
			v = src[i]
		}
		vals[i] = b.Secret(v)
	}
	b.AssertEqual(poseidon.GadgetCommit(b, vals, osv), csPub)
	off := 0
	for k, n := range sizes {
		odv := b.Secret(odList[k])
		b.AssertEqual(poseidon.GadgetCommit(b, vals[off:off+n], odv), cdPubs[k])
		off += n
	}
	return b
}

// ProvePartition produces π_t for splitting the source into consecutive
// pieces of the given sizes, returning the proof, the pieces and their
// blinders.
func (s *System) ProvePartition(src Dataset, cs, os fr.Element, sizes []int) (*TransformProof, []Dataset, []fr.Element, error) {
	if len(sizes) < 2 {
		return nil, nil, nil, fmt.Errorf("%w: partition needs ≥2 pieces", ErrBadShape)
	}
	total := 0
	for _, n := range sizes {
		if n <= 0 {
			return nil, nil, nil, fmt.Errorf("%w: empty piece", ErrBadShape)
		}
		total += n
	}
	if total != len(src) {
		return nil, nil, nil, fmt.Errorf("%w: pieces cover %d of %d elements", ErrBadShape, total, len(src))
	}
	pieces := make([]Dataset, len(sizes))
	cdList := make([]fr.Element, len(sizes))
	odList := make([]fr.Element, len(sizes))
	off := 0
	for k, n := range sizes {
		pieces[k] = src[off : off+n].Clone()
		cdList[k], odList[k] = pieces[k].Commit()
		off += n
	}
	tp, err := s.provePartitionWith(src, cs, os, sizes, cdList, odList)
	if err != nil {
		return nil, nil, nil, err
	}
	return tp, pieces, odList, nil
}

// provePartitionWith is ProvePartition against caller-supplied derived
// commitments.
func (s *System) provePartitionWith(src Dataset, cs, os fr.Element, sizes []int, cdList, odList []fr.Element) (*TransformProof, error) {
	key := fmt.Sprintf("pi_t/part/%v", sizes)
	proof, _, err := s.prove(key, buildPartitionCircuit(sizes, src, cs, cdList, os, odList))
	if err != nil {
		return nil, err
	}
	return &TransformProof{
		Kind:    TransformPartition,
		Shape:   append([]int{}, sizes...),
		Sources: []fr.Element{cs},
		Derived: append([]fr.Element{}, cdList...),
		Proof:   proof,
	}, nil
}

// --- Processing (§IV-D4): D = f(S) for a pluggable f ---

// Processor is a data-processing transformation f with both a native
// implementation and a circuit gadget; the applications of §IV-E (logistic
// regression, transformer) implement it.
type Processor interface {
	// Name identifies the circuit shape (must change when parameters do).
	Name() string
	// Apply computes D = f(S) natively.
	Apply(src Dataset) (Dataset, error)
	// Gadget emits f as constraints and returns the output wires.
	Gadget(b *circuit.Builder, src []circuit.Variable) []circuit.Variable
}

// LookupProcessor is an optional Processor extension: a processor whose
// WantsLookupCircuit returns true has its π_t circuit compiled with the
// range-table lookup lowering and custom hash gates (DESIGN.md §15),
// cutting the constraint count of range-check-heavy gadgets by multiples.
// Prover and verifier rebuild the circuit from the same Processor, so the
// flag is part of the circuit shape and needs no extra statement data.
type LookupProcessor interface {
	WantsLookupCircuit() bool
}

func buildProcessingCircuit(p Processor, n int, src Dataset, cs, cd, os, od fr.Element) *circuit.Builder {
	b := circuit.NewBuilder()
	if lp, ok := p.(LookupProcessor); ok && lp.WantsLookupCircuit() {
		b.EnableLookups(circuit.DefaultRangeTableBits)
		b.EnableCustomGates()
	}
	csPub := b.Public(cs)
	cdPub := b.Public(cd)
	osv := b.Secret(os)
	odv := b.Secret(od)
	vals := make([]circuit.Variable, n)
	for i := 0; i < n; i++ {
		var v fr.Element
		if i < len(src) {
			v = src[i]
		}
		vals[i] = b.Secret(v)
	}
	b.AssertEqual(poseidon.GadgetCommit(b, vals, osv), csPub)
	out := p.Gadget(b, vals)
	b.AssertEqual(poseidon.GadgetCommit(b, out, odv), cdPub)
	return b
}

// ProveProcessing produces π_t for D = f(S), returning the proof, derived
// dataset and its blinder.
func (s *System) ProveProcessing(p Processor, src Dataset, cs, os fr.Element) (*TransformProof, Dataset, fr.Element, error) {
	if len(src) == 0 {
		return nil, nil, fr.Element{}, ErrDatasetEmpty
	}
	derived, err := p.Apply(src)
	if err != nil {
		return nil, nil, fr.Element{}, fmt.Errorf("core: processing %s: %w", p.Name(), err)
	}
	cd, od := derived.Commit()
	tp, err := s.proveProcessingWith(p, src, cs, os, cd, od)
	if err != nil {
		return nil, nil, fr.Element{}, err
	}
	return tp, derived, od, nil
}

// proveProcessingWith is ProveProcessing against a caller-supplied derived
// commitment.
func (s *System) proveProcessingWith(p Processor, src Dataset, cs, os, cd, od fr.Element) (*TransformProof, error) {
	derived, err := p.Apply(src)
	if err != nil {
		return nil, fmt.Errorf("core: processing %s: %w", p.Name(), err)
	}
	key := fmt.Sprintf("pi_t/proc/%s/%d", p.Name(), len(src))
	proof, _, err := s.prove(key, buildProcessingCircuit(p, len(src), src, cs, cd, os, od))
	if err != nil {
		return nil, err
	}
	return &TransformProof{
		Kind:    TransformProcessing,
		Shape:   []int{len(src), len(derived)},
		Sources: []fr.Element{cs},
		Derived: []fr.Element{cd},
		Proof:   proof,
	}, nil
}

// --- Verification ---

// VerifyTransform checks any π_t against its statement. For processing
// proofs the verifier supplies the Processor to rebuild the circuit.
func (s *System) VerifyTransform(tp *TransformProof, proc Processor) error {
	var (
		vk  *plonk.VerifyingKey
		err error
	)
	switch tp.Kind {
	case TransformDuplication:
		if len(tp.Shape) != 1 || len(tp.Sources) != 1 || len(tp.Derived) != 1 {
			return ErrBadShape
		}
		n := tp.Shape[0]
		vk, err = s.vkFor(fmt.Sprintf("pi_t/dup/%d", n), func() *circuit.Builder {
			return buildDuplicationCircuit(n, nil, fr.Element{}, fr.Element{}, fr.Element{}, fr.Element{})
		})
	case TransformAggregation:
		if len(tp.Sources) != len(tp.Shape) || len(tp.Derived) != 1 {
			return ErrBadShape
		}
		sizes := tp.Shape
		vk, err = s.vkFor(fmt.Sprintf("pi_t/agg/%v", sizes), func() *circuit.Builder {
			return buildAggregationCircuit(sizes, nil, make([]fr.Element, len(sizes)), fr.Element{}, make([]fr.Element, len(sizes)), fr.Element{})
		})
	case TransformPartition:
		if len(tp.Sources) != 1 || len(tp.Derived) != len(tp.Shape) {
			return ErrBadShape
		}
		sizes := tp.Shape
		vk, err = s.vkFor(fmt.Sprintf("pi_t/part/%v", sizes), func() *circuit.Builder {
			return buildPartitionCircuit(sizes, nil, fr.Element{}, make([]fr.Element, len(sizes)), fr.Element{}, make([]fr.Element, len(sizes)))
		})
	case TransformProcessing:
		if proc == nil {
			return fmt.Errorf("core: verifying a processing proof needs its Processor")
		}
		if len(tp.Shape) != 2 || len(tp.Sources) != 1 || len(tp.Derived) != 1 {
			return ErrBadShape
		}
		n := tp.Shape[0]
		vk, err = s.vkFor(fmt.Sprintf("pi_t/proc/%s/%d", proc.Name(), n), func() *circuit.Builder {
			return buildProcessingCircuit(proc, n, nil, fr.Element{}, fr.Element{}, fr.Element{}, fr.Element{})
		})
	default:
		return fmt.Errorf("core: unknown transformation kind %q", tp.Kind)
	}
	if err != nil {
		return err
	}
	publics := append(append([]fr.Element{}, tp.Sources...), tp.Derived...)
	if err := plonk.Verify(vk, tp.Proof, publics); err != nil {
		return fmt.Errorf("core: π_t (%s): %w", tp.Kind, err)
	}
	return nil
}

// ProofChain is a sequence of transformation proofs from a source dataset
// to a final derived one (Figure 3): consecutive links must share
// commitments.
type ProofChain []*TransformProof

// ErrBrokenChain reports a proof chain whose links do not connect.
var ErrBrokenChain = errors.New("core: proof chain links do not connect")

// VerifyChain verifies every link and that each link's derived commitment
// feeds the next link's sources. Processing links take their Processor from
// procs keyed by position (nil entries for non-processing links).
func (s *System) VerifyChain(chain ProofChain, procs map[int]Processor) error {
	if len(chain) == 0 {
		return errors.New("core: empty proof chain")
	}
	for i, tp := range chain {
		if err := s.VerifyTransform(tp, procs[i]); err != nil {
			return fmt.Errorf("core: chain link %d: %w", i, err)
		}
		if i == 0 {
			continue
		}
		// Some derived commitment of link i-1 must appear in link i's
		// sources.
		connected := false
		for _, d := range chain[i-1].Derived {
			for _, src := range tp.Sources {
				if d.Equal(&src) {
					connected = true
				}
			}
		}
		if !connected {
			return fmt.Errorf("%w: link %d", ErrBrokenChain, i)
		}
	}
	return nil
}

// MonolithicStatement is the public statement of the §III-B strawman π_f
// for a duplication: both ciphertexts at once.
type MonolithicStatement struct {
	NonceS, NonceD fr.Element
	CtS, CtD       []fr.Element
}

// ProveMonolithicDuplication implements the strawman transformation proof
// the paper improves on: a single circuit proving Ŝ = Enc(k_S, S),
// D̂ = Enc(k_D, D) and D = S together. It exists for the §IV-B ablation
// (decoupled proofs reuse each π_e; the monolithic strategy re-proves
// encryptions on every transformation).
func (s *System) ProveMonolithicDuplication(data Dataset, kS, kD fr.Element) (*plonk.Proof, error) {
	if len(data) == 0 {
		return nil, ErrDatasetEmpty
	}
	ctS := data.Encrypt(kS)
	ctD := data.Encrypt(kD)
	st := &MonolithicStatement{NonceS: ctS.Nonce, NonceD: ctD.Nonce, CtS: ctS.Blocks, CtD: ctD.Blocks}
	key := fmt.Sprintf("pi_f/dup/%d", len(data))
	proof, _, err := s.prove(key, buildMonolithicDuplication(st, data, kS, kD))
	return proof, err
}

func buildMonolithicDuplication(st *MonolithicStatement, data Dataset, kS, kD fr.Element) *circuit.Builder {
	b := circuit.NewBuilder()
	nS := b.Public(st.NonceS)
	nD := b.Public(st.NonceD)
	n := len(st.CtS)
	ctS := make([]circuit.Variable, n)
	ctD := make([]circuit.Variable, n)
	for i := 0; i < n; i++ {
		ctS[i] = b.Public(st.CtS[i])
		ctD[i] = b.Public(st.CtD[i])
	}
	keyS := b.Secret(kS)
	keyD := b.Secret(kD)
	vals := make([]circuit.Variable, n)
	for i := 0; i < n; i++ {
		var v fr.Element
		if i < len(data) {
			v = data[i]
		}
		vals[i] = b.Secret(v)
	}
	encS := gadgetEncryptCTR(b, keyS, nS, vals)
	encD := gadgetEncryptCTR(b, keyD, nD, vals) // same vals: D == S by wiring
	for i := 0; i < n; i++ {
		b.AssertEqual(encS[i], ctS[i])
		b.AssertEqual(encD[i], ctD[i])
	}
	return b
}

// gadgetEncryptCTR keeps transform.go self-contained.
func gadgetEncryptCTR(b *circuit.Builder, k, nonce circuit.Variable, pt []circuit.Variable) []circuit.Variable {
	return mimc.GadgetEncryptCTR(b, k, nonce, pt)
}
