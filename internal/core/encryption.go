package core

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/mimc"
	"github.com/zkdet/zkdet/internal/plonk"
	"github.com/zkdet/zkdet/internal/poseidon"
)

// EncryptionStatement is the public statement of a proof of encryption π_e
// (§IV-B step 1): the published ciphertext plus commitments to the
// plaintext dataset (c_d, reused by transformation and exchange proofs)
// and to the key (c_k, the arbiter's c in §IV-F).
type EncryptionStatement struct {
	Nonce          fr.Element
	DataCommitment fr.Element
	KeyCommitment  fr.Element
	Ciphertext     []fr.Element
}

// EncryptionWitness is the private side of π_e.
type EncryptionWitness struct {
	Data        Dataset
	Key         fr.Element
	DataBlinder fr.Element
	KeyBlinder  fr.Element
}

// publics returns the statement as the circuit's public input vector.
func (st *EncryptionStatement) publics() []fr.Element {
	out := make([]fr.Element, 0, len(st.Ciphertext)+3)
	out = append(out, st.Nonce, st.DataCommitment, st.KeyCommitment)
	out = append(out, st.Ciphertext...)
	return out
}

// buildEncryptionCircuit emits the π_e relation:
//
//	ĉ_i = d_i + MiMC(k, nonce+i)  for all i
//	c_d = PoseidonCommit(D, o_d)
//	c_k = PoseidonCommit(k, o_k)
func buildEncryptionCircuit(st *EncryptionStatement, w *EncryptionWitness) *circuit.Builder {
	b := circuit.NewBuilder()
	nonce := b.Public(st.Nonce)
	cd := b.Public(st.DataCommitment)
	ck := b.Public(st.KeyCommitment)
	cts := make([]circuit.Variable, len(st.Ciphertext))
	for i := range st.Ciphertext {
		cts[i] = b.Public(st.Ciphertext[i])
	}

	key := b.Secret(w.Key)
	od := b.Secret(w.DataBlinder)
	ok := b.Secret(w.KeyBlinder)
	data := make([]circuit.Variable, len(w.Data))
	for i := range w.Data {
		data[i] = b.Secret(w.Data[i])
	}

	enc := mimc.GadgetEncryptCTR(b, key, nonce, data)
	for i := range enc {
		b.AssertEqual(enc[i], cts[i])
	}
	cdGot := poseidon.GadgetCommit(b, data, od)
	b.AssertEqual(cdGot, cd)
	ckGot := poseidon.GadgetCommit(b, []circuit.Variable{key}, ok)
	b.AssertEqual(ckGot, ck)
	return b
}

func encryptionKey(n int) string { return fmt.Sprintf("pi_e/%d", n) }

// EncryptAndProve encrypts the dataset, commits to data and key, and
// produces π_e. It returns the full statement (including fresh commitments
// and blinders) alongside the proof — the decoupled π_e of §IV-B that is
// computed once per dataset and reused by later transformations.
func (s *System) EncryptAndProve(data Dataset, key fr.Element) (*EncryptionStatement, *EncryptionWitness, Ciphertext, *plonk.Proof, error) {
	if len(data) == 0 {
		return nil, nil, Ciphertext{}, nil, ErrDatasetEmpty
	}
	ct := data.Encrypt(key)
	cd, od := data.Commit()
	ck, ok := KeyCommit(key)
	st := &EncryptionStatement{
		Nonce:          ct.Nonce,
		DataCommitment: cd,
		KeyCommitment:  ck,
		Ciphertext:     ct.Blocks,
	}
	w := &EncryptionWitness{Data: data, Key: key, DataBlinder: od, KeyBlinder: ok}
	proof, _, err := s.prove(encryptionKey(len(data)), buildEncryptionCircuit(st, w))
	if err != nil {
		return nil, nil, Ciphertext{}, nil, err
	}
	return st, w, ct, proof, nil
}

// ProveEncryption produces π_e for an existing statement/witness pair
// (e.g. re-proving after the statement was reconstructed from chain data).
func (s *System) ProveEncryption(st *EncryptionStatement, w *EncryptionWitness) (*plonk.Proof, error) {
	proof, _, err := s.prove(encryptionKey(len(w.Data)), buildEncryptionCircuit(st, w))
	return proof, err
}

// VerifyEncryption checks π_e against a public statement.
func (s *System) VerifyEncryption(st *EncryptionStatement, proof *plonk.Proof) error {
	n := len(st.Ciphertext)
	vk, err := s.vkFor(encryptionKey(n), func() *circuit.Builder {
		dummy := &EncryptionStatement{Ciphertext: make([]fr.Element, n)}
		return buildEncryptionCircuit(dummy, &EncryptionWitness{Data: make(Dataset, n)})
	})
	if err != nil {
		return err
	}
	if err := plonk.Verify(vk, proof, st.publics()); err != nil {
		return fmt.Errorf("core: π_e: %w", err)
	}
	return nil
}
