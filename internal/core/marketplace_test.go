package core

import (
	"testing"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/fr"
)

func newTestMarketplace(t *testing.T) (*Marketplace, DeployGas) {
	t.Helper()
	m, gas, err := NewMarketplace(testSys(), 8)
	if err != nil {
		t.Fatal(err)
	}
	return m, gas
}

func TestMarketplaceDeployGas(t *testing.T) {
	_, gas := newTestMarketplace(t)
	// Table II magnitudes: contract ~1.02M, verifier ~1.64M.
	if gas.DataNFT < 900_000 || gas.DataNFT > 1_150_000 {
		t.Fatalf("nft deploy gas %d", gas.DataNFT)
	}
	if gas.Verifier < 1_500_000 || gas.Verifier > 1_800_000 {
		t.Fatalf("verifier deploy gas %d", gas.Verifier)
	}
}

func TestMarketplaceMintAndFetch(t *testing.T) {
	m, _ := newTestMarketplace(t)
	alice := chain.AddressFromString("alice")
	data := smallData(4)
	key := fr.MustRandom()

	asset, err := m.MintAsset(alice, "alice", data, key)
	if err != nil {
		t.Fatal(err)
	}
	if asset.TokenID == 0 {
		t.Fatal("no token id")
	}
	// π_e verifies.
	if err := m.Sys.VerifyEncryption(asset.Statement, asset.EncProof); err != nil {
		t.Fatalf("minted asset's π_e rejected: %v", err)
	}
	// The on-chain token binds the URI and commitments.
	tok, err := contracts.ReadToken(m.Chain, asset.TokenID)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Owner != alice {
		t.Fatal("wrong owner")
	}
	if string(tok.URI) != string(asset.URI[:]) {
		t.Fatal("URI mismatch")
	}
	// Anyone can fetch the ciphertext by URI, and the owner's key decrypts.
	ct, err := m.FetchCiphertext(asset.URI)
	if err != nil {
		t.Fatal(err)
	}
	back := ct.Decrypt(key)
	if !back[0].Equal(&data[0]) {
		t.Fatal("fetched ciphertext does not decrypt")
	}
}

func TestMarketplaceTransformationsAndTrace(t *testing.T) {
	m, _ := newTestMarketplace(t)
	alice := chain.AddressFromString("alice")

	a1, err := m.MintAsset(alice, "alice", smallData(2), fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.MintAsset(alice, "alice", smallData(3), fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}

	// Aggregate, then partition the aggregate, then duplicate a piece,
	// then process the other — Figure 2's lifecycle.
	agg, err := m.Aggregate(alice, "alice", []*Asset{a1, a2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Sys.VerifyTransform(agg.Proof, nil); err != nil {
		t.Fatalf("aggregation proof: %v", err)
	}
	part, err := m.Partition(alice, "alice", agg.Assets[0], []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Sys.VerifyTransform(part.Proof, nil); err != nil {
		t.Fatalf("partition proof: %v", err)
	}
	dup, err := m.Duplicate(alice, "alice", part.Assets[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Sys.VerifyTransform(dup.Proof, nil); err != nil {
		t.Fatalf("duplication proof: %v", err)
	}
	proc, err := m.Process(alice, "alice", part.Assets[1], doubler{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Sys.VerifyTransform(proc.Proof, doubler{}); err != nil {
		t.Fatalf("processing proof: %v", err)
	}

	// Provenance: the processed token traces back to both mints.
	lineage, err := m.Trace(proc.Assets[0].TokenID)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[contracts.TransformKind]int{}
	for _, tok := range lineage {
		kinds[tok.Kind]++
	}
	if kinds[contracts.KindMint] != 2 || kinds[contracts.KindAggregation] != 1 ||
		kinds[contracts.KindPartition] != 1 || kinds[contracts.KindProcessing] != 1 {
		t.Fatalf("lineage kinds: %v", kinds)
	}

	// π_e / π_t commitments line up: the transformation's derived
	// commitment is exactly the derived asset's encryption commitment
	// (the commit-and-prove composition).
	if !proc.Proof.Derived[0].Equal(&proc.Assets[0].Statement.DataCommitment) {
		t.Fatal("π_t and π_e do not share the derived commitment")
	}

	// The chain's hash links stay intact through all of it.
	m.Chain.SealBlock()
	if err := m.Chain.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestMarketplaceSellViaEscrow(t *testing.T) {
	m, _ := newTestMarketplace(t)
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")
	m.Chain.Faucet(alice, 1_000_000)
	m.Chain.Faucet(bob, 1_000_000)

	data := smallData(4)
	asset, err := m.MintAsset(alice, "alice", data, fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}
	aliceBefore := m.Chain.BalanceOf(alice)
	bobBefore := m.Chain.BalanceOf(bob)

	got, err := m.SellViaEscrow(1, alice, bob, asset, RangePredicate{Bits: 16}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !got[i].Equal(&data[i]) {
			t.Fatal("buyer received wrong data")
		}
	}
	// Payment moved buyer → seller.
	if m.Chain.BalanceOf(alice)-aliceBefore != 5000 {
		t.Fatalf("seller earned %d", m.Chain.BalanceOf(alice)-aliceBefore)
	}
	if bobBefore-m.Chain.BalanceOf(bob) != 5000 {
		t.Fatalf("buyer paid %d", bobBefore-m.Chain.BalanceOf(bob))
	}
	// Ownership moved on-chain.
	tok, err := contracts.ReadToken(m.Chain, asset.TokenID)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Owner != bob {
		t.Fatal("NFT did not move to the buyer")
	}
	// The raw key never hit the chain: the settled kc is not the key.
	kcB, err := contracts.ReadSettledKc(m.Chain, contracts.EscrowName, 1)
	if err != nil {
		t.Fatal(err)
	}
	keyB := asset.Key.Bytes()
	if string(kcB) == string(keyB[:]) {
		t.Fatal("raw key published on-chain")
	}
}
