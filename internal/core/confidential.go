package core

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/ct"
	"github.com/zkdet/zkdet/internal/fr"
)

// PiCTVerifierName is the deployment name of the π_ct range-proof verifier
// used by the confidential-token contract.
const PiCTVerifierName = "zkdet-pict-verifier"

// ErrConfidentialDisabled reports a confidential operation on a
// marketplace that never called EnableConfidential.
var ErrConfidentialDisabled = errors.New("core: confidential tokens not enabled on this marketplace")

// ConfidentialDeployment is the confidential-token extension of a
// marketplace: the deployed contract pair plus the off-chain prover.
type ConfidentialDeployment struct {
	Issuer     chain.Address
	AuditorPub bn254.G1Affine
	Token      *contracts.ConfidentialToken
	// VerifierGas and TokenGas record the two deployments' costs.
	VerifierGas uint64
	TokenGas    uint64

	verifier *contracts.Verifier
	prover   *ct.RangeProver
	params   *ct.Params
}

// EnableConfidential deploys the confidential-token subsystem onto the
// marketplace's chain: the π_ct range verifier and the token contract
// bound to the given issuer and auditor public key. It is opt-in and
// idempotent — deployments that never call it are bit-identical to
// pre-confidential ones, and a second call returns the existing
// deployment. Cluster replicas must call it at genesis with identical
// parameters, like the rest of the suite.
func (m *Marketplace) EnableConfidential(issuer chain.Address, auditorPub bn254.G1Affine) (*ConfidentialDeployment, error) {
	if m.ctd != nil {
		return m.ctd, nil
	}
	prover := ct.NewRangeProver(m.Sys.SRS())
	vk, err := prover.VK()
	if err != nil {
		return nil, fmt.Errorf("core: preparing π_ct verifier: %w", err)
	}
	d := &ConfidentialDeployment{
		Issuer:     issuer,
		AuditorPub: auditorPub,
		prover:     prover,
		params:     ct.DefaultParams(),
	}
	d.verifier = contracts.NewVerifier(vk)
	if d.VerifierGas, err = m.Chain.Deploy(PiCTVerifierName, d.verifier, contracts.VerifierCodeSize); err != nil {
		return nil, err
	}
	d.Token = contracts.NewConfidentialToken(issuer, auditorPub, PiCTVerifierName, PiKVerifierName, 100)
	if d.TokenGas, err = m.Chain.Deploy(contracts.ConfidentialTokenName, d.Token, contracts.ConfidentialTokenCodeSize); err != nil {
		return nil, err
	}
	m.ctd = d
	return d, nil
}

// Confidential returns the confidential deployment, or nil when disabled.
func (m *Marketplace) Confidential() *ConfidentialDeployment { return m.ctd }

// ConfNote is a wallet's view of a confidential note it can spend: the
// on-chain ID plus the private opening (amount and blinder).
type ConfNote struct {
	ID      uint64
	Owner   chain.Address
	Comm    ct.Commitment
	Opening ct.Opening
}

// ConfPayment directs one output of a confidential transfer.
type ConfPayment struct {
	Value uint64
	To    chain.Address
}

// buildOutputs samples fresh blinders for each payment and assembles the
// statement outputs plus their secrets.
func (d *ConfidentialDeployment) buildOutputs(pays []ConfPayment) ([]ct.Output, []ct.OutputSecret, []chain.Address) {
	outs := make([]ct.Output, len(pays))
	secrets := make([]ct.OutputSecret, len(pays))
	recipients := make([]chain.Address, len(pays))
	for i, pay := range pays {
		secrets[i] = ct.OutputSecret{V: pay.Value, R: fr.MustRandom(), Rho: fr.MustRandom()}
		outs[i] = d.params.NewOutput(&d.AuditorPub, pay.Value, &secrets[i].R, &secrets[i].Rho)
		recipients[i] = pay.To
	}
	return outs, secrets, recipients
}

// notesFrom turns a successful mint/transfer receipt into wallet notes.
func notesFrom(ret []byte, outs []ct.Output, secrets []ct.OutputSecret, recipients []chain.Address) ([]*ConfNote, error) {
	ids, err := contracts.DecU64List(ret)
	if err != nil || len(ids) != len(outs) {
		return nil, fmt.Errorf("core: confidential transfer returned %d ids: %w", len(ids), err)
	}
	notes := make([]*ConfNote, len(ids))
	for i, id := range ids {
		notes[i] = &ConfNote{
			ID:      id,
			Owner:   recipients[i],
			Comm:    outs[i].C,
			Opening: ct.Opening{V: secrets[i].V, R: secrets[i].R},
		}
	}
	return notes, nil
}

// ConfidentialMint mints fresh notes (issuer only). The amounts are
// hidden on-chain; the returned notes carry the openings for the
// recipients' wallets.
func (m *Marketplace) ConfidentialMint(pays []ConfPayment) ([]*ConfNote, error) {
	d := m.ctd
	if d == nil {
		return nil, ErrConfidentialDisabled
	}
	outs, secrets, recipients := d.buildOutputs(pays)
	st := &ct.Statement{
		Mint:    true,
		Outputs: outs,
		Context: contracts.CTContext(d.Issuer, nil, recipients),
	}
	proof, err := ct.Prove(d.params, d.prover, &d.AuditorPub, st, nil, secrets, nil)
	if err != nil {
		return nil, err
	}
	r, err := m.submit(d.Issuer, contracts.ConfidentialTokenName, "mint", 0,
		contracts.CTTransferArgs(nil, nil, outs, recipients, proof))
	if err != nil {
		return nil, err
	}
	return notesFrom(r.Return, outs, secrets, recipients)
}

// ConfidentialTransfer spends the sender's notes into new outputs. Input
// values must equal output values (the prover refuses otherwise; the
// chain rejects forgeries).
func (m *Marketplace) ConfidentialTransfer(sender chain.Address, ins []*ConfNote, pays []ConfPayment) ([]*ConfNote, error) {
	d := m.ctd
	if d == nil {
		return nil, ErrConfidentialDisabled
	}
	inIDs := make([]uint64, len(ins))
	inComms := make([]ct.Commitment, len(ins))
	openings := make([]ct.Opening, len(ins))
	for i, n := range ins {
		inIDs[i] = n.ID
		inComms[i] = n.Comm
		openings[i] = n.Opening
	}
	outs, secrets, recipients := d.buildOutputs(pays)
	st := &ct.Statement{
		Inputs:  inComms,
		Outputs: outs,
		Context: contracts.CTContext(sender, inIDs, recipients),
	}
	proof, err := ct.Prove(d.params, d.prover, &d.AuditorPub, st, openings, secrets, nil)
	if err != nil {
		return nil, err
	}
	r, err := m.submit(sender, contracts.ConfidentialTokenName, "transfer", 0,
		contracts.CTTransferArgs(inIDs, inComms, outs, recipients, proof))
	if err != nil {
		return nil, err
	}
	return notesFrom(r.Return, outs, secrets, recipients)
}

// SellConfidential runs the key-secure exchange of §IV-F with a
// confidential note as payment instead of native value: the buyer locks a
// note whose amount only the auditor (and the two parties) can learn, the
// seller settles with π_k, and the NFT changes hands. It returns the
// decrypted dataset as received by the buyer.
func (m *Marketplace) SellConfidential(exchangeID uint64, sellerAddr, buyerAddr chain.Address, asset *Asset, pred Predicate, payNote *ConfNote) (Dataset, error) {
	d := m.ctd
	if d == nil {
		return nil, ErrConfidentialDisabled
	}
	seller, err := NewSeller(m.Sys, asset.Data, asset.Key, pred)
	if err != nil {
		return nil, err
	}
	listing := seller.Listing(0) // the price is private: carried by the note

	// Phase 1 — data validation: seller proves π_p, buyer verifies.
	piP, err := seller.ProveData()
	if err != nil {
		return nil, err
	}
	buyer := NewBuyer(m.Sys, listing, pred)
	if err := buyer.VerifyData(piP); err != nil {
		return nil, err
	}

	// Buyer locks the payment note with h_v; k_v goes to the seller
	// off-chain.
	kv, hv := buyer.Challenge()
	hvB := hv.Bytes()
	ckB := listing.KeyCommitment.Bytes()
	if _, err := m.submit(buyerAddr, contracts.ConfidentialTokenName, "lock", 0,
		contracts.EncodeArgs(contracts.U64(exchangeID), contracts.U64(payNote.ID),
			sellerAddr[:], hvB[:], ckB[:], contracts.U64(asset.TokenID))); err != nil {
		return nil, err
	}

	// Phase 2 — key negotiation: seller derives k_c and proves π_k; the
	// token contract verifies on-chain and hands the note to the seller.
	st, piK, err := seller.NegotiateKey(kv, hv)
	if err != nil {
		return nil, err
	}
	kcB := st.KC.Bytes()
	if _, err := m.submit(sellerAddr, contracts.ConfidentialTokenName, "settle", 0,
		contracts.EncodeArgs(contracts.U64(exchangeID), kcB[:],
			piK.Bytes(), kcB[:], ckB[:], hvB[:])); err != nil {
		return nil, err
	}

	// Buyer reads k_c from chain state and decrypts.
	kcPub, err := contracts.ReadCTSettledKc(m.Chain, contracts.ConfidentialTokenName, exchangeID)
	if err != nil {
		return nil, err
	}
	kcEl, err := fr.FromBytesCanonical(kcPub)
	if err != nil {
		return nil, err
	}
	// Transfer the NFT to the buyer to record the ownership change.
	if _, err := m.submit(sellerAddr, contracts.DataNFTName, "transfer", 0,
		contracts.EncodeArgs(contracts.U64(asset.TokenID), buyerAddr[:])); err != nil {
		return nil, err
	}
	return buyer.Decrypt(kcEl)
}
