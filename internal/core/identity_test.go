package core

import (
	"testing"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/ct"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/storage"
)

// newIdentityMarketplace builds a marketplace over a caller-supplied fresh
// chain with deterministic funding, optionally enabling the confidential
// subsystem with a fixed auditor key.
func newIdentityMarketplace(t *testing.T, confidential bool) *Marketplace {
	t.Helper()
	store, err := storage.NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := NewMarketplaceWith(testSys(), chain.New(), store)
	if err != nil {
		t.Fatal(err)
	}
	for _, who := range []string{"issuer", "alice", "bob"} {
		m.Chain.Faucet(chain.AddressFromString(who), 100_000_000)
	}
	if confidential {
		ak := ct.AuditorKeyFromSecret(fr.NewElement(0x1de27))
		pub := ak.PublicKey()
		if _, err := m.EnableConfidential(chain.AddressFromString("issuer"), pub); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestPublicPathIdenticalWithConfidentialEnabled asserts the opt-in
// property: enabling the confidential subsystem must not change the
// public token path at all — same receipts, same gas, same storage
// records for an identical workload.
func TestPublicPathIdenticalWithConfidentialEnabled(t *testing.T) {
	plain := newIdentityMarketplace(t, false)
	withCT := newIdentityMarketplace(t, true)
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")

	run := func(m *Marketplace) []*chain.Receipt {
		var rs []*chain.Receipt
		sub := func(from chain.Address, contract, method string, args []byte) {
			r, err := m.Chain.Submit(chain.Transaction{
				From: from, Contract: contract, Method: method,
				Args: args, Nonce: m.Chain.NonceOf(from),
			})
			if err != nil {
				t.Fatal(err)
			}
			rs = append(rs, r)
		}
		uri := make([]byte, 32)
		commit := make([]byte, 32)
		sub(alice, contracts.DataNFTName, "mint", contracts.EncodeArgs(uri, commit))
		sub(alice, contracts.DataNFTName, "transfer", contracts.EncodeArgs(contracts.U64(1), bob[:]))
		sub(bob, contracts.DataNFTName, "duplicate", contracts.EncodeArgs(contracts.U64(1), uri, commit))
		sub(bob, contracts.DataNFTName, "burn", contracts.EncodeArgs(contracts.U64(2)))
		return rs
	}

	rsPlain := run(plain)
	rsCT := run(withCT)
	for i := range rsPlain {
		if rsPlain[i].GasUsed != rsCT[i].GasUsed {
			t.Fatalf("tx %d gas diverged: %d (plain) vs %d (confidential-enabled)",
				i, rsPlain[i].GasUsed, rsCT[i].GasUsed)
		}
		if (rsPlain[i].Err == nil) != (rsCT[i].Err == nil) {
			t.Fatalf("tx %d outcome diverged: %v vs %v", i, rsPlain[i].Err, rsCT[i].Err)
		}
	}
	// Public token records are byte-identical.
	for _, id := range []uint64{1, 2} {
		a, errA := contracts.ReadToken(plain.Chain, id)
		b, errB := contracts.ReadToken(withCT.Chain, id)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("token %d readability diverged: %v vs %v", id, errA, errB)
		}
		if errA == nil && (a.Owner != b.Owner || a.Kind != b.Kind || a.Burned != b.Burned) {
			t.Fatalf("token %d record diverged: %+v vs %+v", id, a, b)
		}
	}
}

// TestConfidentialReplayImportBitIdentity seals a block full of
// confidential activity — mint, split transfer, escrow lock + settle — on
// one replica and replays it on a second via ImportBlock: head hash and
// state root must match bit-for-bit. This is the cluster-correctness
// property for the new transaction family: proof verification inside the
// contract is deterministic, so replicas converge.
func TestConfidentialReplayImportBitIdentity(t *testing.T) {
	a := newIdentityMarketplace(t, true)
	b := newIdentityMarketplace(t, true)
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")

	// Confidential activity on replica A.
	notes, err := a.ConfidentialMint([]ConfPayment{{Value: 900, To: bob}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ConfidentialTransfer(bob, notes,
		[]ConfPayment{{Value: 650, To: bob}, {Value: 250, To: alice}}); err != nil {
		t.Fatal(err)
	}
	// A full confidential sale (NFT + key-secure settle) in the same block.
	asset, err := a.MintAsset(alice, "alice", smallData(3), fr.MustRandom())
	if err != nil {
		t.Fatal(err)
	}
	payNotes, err := a.ConfidentialMint([]ConfPayment{{Value: 4200, To: bob}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SellConfidential(1, alice, bob, asset, RangePredicate{Bits: 16}, payNotes[0]); err != nil {
		t.Fatal(err)
	}

	blk := a.Chain.SealBlock()
	txs, ok := a.Chain.BlockBody(blk.Number)
	if !ok {
		t.Fatal("sealed block has no body")
	}
	if _, err := b.Chain.ImportBlock(blk, txs); err != nil {
		t.Fatalf("replay import: %v", err)
	}
	if b.Chain.HeadHash() != a.Chain.HeadHash() {
		t.Fatal("head hash diverged after confidential replay")
	}
	if b.Chain.Head().StateRoot != a.Chain.Head().StateRoot {
		t.Fatal("state root diverged after confidential replay")
	}
	// The replica sees the same notes without ever holding an opening.
	recA, err := contracts.ReadCTNote(a.Chain, contracts.ConfidentialTokenName, notes[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	recB, err := contracts.ReadCTNote(b.Chain, contracts.ConfidentialTokenName, notes[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !recA.Comm.Equal(recB.Comm) || recA.Status != recB.Status {
		t.Fatal("replicated note record diverged")
	}
}
