package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
)

// Shared test system: SRS large enough for every core test circuit.
var testSys = sync.OnceValue(func() *System {
	s, err := NewTestSystem(1 << 13)
	if err != nil {
		panic(err)
	}
	return s
})

func smallData(n int) Dataset {
	d := make(Dataset, n)
	for i := range d {
		d[i] = fr.NewElement(uint64(100 + i))
	}
	return d
}

func TestEncodeDecodeBytes(t *testing.T) {
	cases := [][]byte{
		[]byte("hello"),
		bytes.Repeat([]byte{0xab}, 100),
		{},
		{0},
		bytes.Repeat([]byte{0}, 31),
		bytes.Repeat([]byte{0xff}, 62),
	}
	for _, in := range cases {
		d := EncodeBytes(in)
		out, err := DecodeBytes(d)
		if err != nil {
			t.Fatalf("decode %d bytes: %v", len(in), err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("round trip mismatch for %d bytes", len(in))
		}
	}
	if _, err := DecodeBytes(nil); !errors.Is(err, ErrDatasetEmpty) {
		t.Fatal("empty dataset decoded")
	}
}

func TestCiphertextRoundTrip(t *testing.T) {
	d := smallData(5)
	k := fr.MustRandom()
	ct := d.Encrypt(k)
	back := ct.Decrypt(k)
	for i := range d {
		if !back[i].Equal(&d[i]) {
			t.Fatal("decrypt mismatch")
		}
	}
	// Serialization.
	raw := ct.Bytes()
	ct2, err := CiphertextFromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !ct2.Nonce.Equal(&ct.Nonce) || len(ct2.Blocks) != len(ct.Blocks) {
		t.Fatal("ciphertext serialization mismatch")
	}
	if _, err := CiphertextFromBytes(raw[:33]); err == nil {
		t.Fatal("ragged ciphertext accepted")
	}
}

func TestEncryptionProofRoundTrip(t *testing.T) {
	sys := testSys()
	data := smallData(4)
	key := fr.MustRandom()
	st, _, ct, proof, err := sys.EncryptAndProve(data, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.VerifyEncryption(st, proof); err != nil {
		t.Fatalf("honest π_e rejected: %v", err)
	}
	// The ciphertext in the statement is the real one.
	back := ct.Decrypt(key)
	if !back[0].Equal(&data[0]) {
		t.Fatal("ciphertext does not decrypt")
	}
	// Tampered ciphertext must not verify (Theorem 5.1 integrity).
	bad := *st
	bad.Ciphertext = append([]fr.Element{}, st.Ciphertext...)
	bad.Ciphertext[2] = fr.NewElement(12345)
	if err := sys.VerifyEncryption(&bad, proof); err == nil {
		t.Fatal("tampered ciphertext verified")
	}
	// Tampered data commitment must not verify.
	bad2 := *st
	bad2.DataCommitment = fr.NewElement(1)
	if err := sys.VerifyEncryption(&bad2, proof); err == nil {
		t.Fatal("tampered commitment verified")
	}
	// Empty dataset rejected.
	if _, _, _, _, err := sys.EncryptAndProve(nil, key); !errors.Is(err, ErrDatasetEmpty) {
		t.Fatal("empty dataset proved")
	}
}

func TestDuplicationProof(t *testing.T) {
	sys := testSys()
	data := smallData(4)
	cs, os := data.Commit()
	tp, _, err := sys.ProveDuplication(data, cs, os)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.VerifyTransform(tp, nil); err != nil {
		t.Fatalf("honest duplication rejected: %v", err)
	}
	// The derived commitment differs from the source (fresh blinder) yet
	// commits the same content.
	if tp.Sources[0].Equal(&tp.Derived[0]) {
		t.Fatal("derived commitment identical to source")
	}
	// Tampering with the derived commitment must fail.
	bad := *tp
	bad.Derived = []fr.Element{fr.NewElement(42)}
	if err := sys.VerifyTransform(&bad, nil); err == nil {
		t.Fatal("tampered duplication verified")
	}
}

func TestAggregationProof(t *testing.T) {
	sys := testSys()
	s1, s2 := smallData(3), smallData(2)
	c1, o1 := s1.Commit()
	c2, o2 := s2.Commit()
	tp, derived, _, err := sys.ProveAggregation([]Dataset{s1, s2}, []fr.Element{c1, c2}, []fr.Element{o1, o2})
	if err != nil {
		t.Fatal(err)
	}
	if len(derived) != 5 {
		t.Fatalf("derived size %d", len(derived))
	}
	// Order matters: D = S1 ‖ S2.
	if !derived[0].Equal(&s1[0]) || !derived[3].Equal(&s2[0]) {
		t.Fatal("aggregation order broken")
	}
	if err := sys.VerifyTransform(tp, nil); err != nil {
		t.Fatalf("honest aggregation rejected: %v", err)
	}
	// Swapped source commitments must fail (wrong order).
	bad := *tp
	bad.Sources = []fr.Element{c2, c1}
	if err := sys.VerifyTransform(&bad, nil); err == nil {
		t.Fatal("swapped aggregation verified")
	}
	// Single source rejected.
	if _, _, _, err := sys.ProveAggregation([]Dataset{s1}, []fr.Element{c1}, []fr.Element{o1}); !errors.Is(err, ErrBadShape) {
		t.Fatal("single-source aggregation allowed")
	}
}

func TestPartitionProof(t *testing.T) {
	sys := testSys()
	src := smallData(5)
	cs, os := src.Commit()
	tp, pieces, _, err := sys.ProvePartition(src, cs, os, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 2 || len(pieces[0]) != 2 || len(pieces[1]) != 3 {
		t.Fatalf("piece sizes wrong: %d/%d", len(pieces[0]), len(pieces[1]))
	}
	// Exhaustive & exclusive: concatenation reproduces the source.
	recon := append(pieces[0].Clone(), pieces[1]...)
	for i := range src {
		if !recon[i].Equal(&src[i]) {
			t.Fatal("partition lost or duplicated content")
		}
	}
	if err := sys.VerifyTransform(tp, nil); err != nil {
		t.Fatalf("honest partition rejected: %v", err)
	}
	// Invalid shapes.
	if _, _, _, err := sys.ProvePartition(src, cs, os, []int{5}); !errors.Is(err, ErrBadShape) {
		t.Fatal("1-piece partition allowed")
	}
	if _, _, _, err := sys.ProvePartition(src, cs, os, []int{2, 2}); !errors.Is(err, ErrBadShape) {
		t.Fatal("non-exhaustive partition allowed")
	}
	if _, _, _, err := sys.ProvePartition(src, cs, os, []int{0, 5}); !errors.Is(err, ErrBadShape) {
		t.Fatal("empty piece allowed")
	}
}

// doubler is a toy Processor: d_i = 2·s_i.
type doubler struct{}

func (doubler) Name() string { return "doubler" }
func (doubler) Apply(src Dataset) (Dataset, error) {
	out := make(Dataset, len(src))
	for i := range src {
		out[i].Double(&src[i])
	}
	return out, nil
}
func (doubler) Gadget(b *circuit.Builder, src []circuit.Variable) []circuit.Variable {
	out := make([]circuit.Variable, len(src))
	for i := range src {
		out[i] = b.Add(src[i], src[i])
	}
	return out
}

func TestProcessingProof(t *testing.T) {
	sys := testSys()
	src := smallData(4)
	cs, os := src.Commit()
	tp, derived, _, err := sys.ProveProcessing(doubler{}, src, cs, os)
	if err != nil {
		t.Fatal(err)
	}
	var want fr.Element
	want.Double(&src[0])
	if !derived[0].Equal(&want) {
		t.Fatal("processing result wrong")
	}
	if err := sys.VerifyTransform(tp, doubler{}); err != nil {
		t.Fatalf("honest processing rejected: %v", err)
	}
	if err := sys.VerifyTransform(tp, nil); err == nil {
		t.Fatal("processing verified without its Processor")
	}
}

func TestProofChain(t *testing.T) {
	sys := testSys()
	// S --dup--> D1 --process--> D2: links share commitments.
	src := smallData(4)
	cs, os := src.Commit()
	dup, od, err := sys.ProveDuplication(src, cs, os)
	if err != nil {
		t.Fatal(err)
	}
	proc, _, _, err := sys.ProveProcessing(doubler{}, src, dup.Derived[0], od)
	if err != nil {
		t.Fatal(err)
	}
	chain := ProofChain{dup, proc}
	if err := sys.VerifyChain(chain, map[int]Processor{1: doubler{}}); err != nil {
		t.Fatalf("honest chain rejected: %v", err)
	}
	// A chain whose links do not connect must fail.
	other := smallData(4)
	co, oo := other.Commit()
	stray, _, err := sys.ProveDuplication(other, co, oo)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.VerifyChain(ProofChain{dup, stray}, nil); !errors.Is(err, ErrBrokenChain) {
		t.Fatalf("disconnected chain accepted: %v", err)
	}
	if err := sys.VerifyChain(nil, nil); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestKeySecureExchangeHonestFlow(t *testing.T) {
	sys := testSys()
	data := smallData(4)
	key := fr.MustRandom()
	pred := RangePredicate{Bits: 16}

	seller, err := NewSeller(sys, data, key, pred)
	if err != nil {
		t.Fatal(err)
	}
	listing := seller.Listing(1000)

	// Phase 1: buyer validates the data.
	piP, err := seller.ProveData()
	if err != nil {
		t.Fatal(err)
	}
	buyer := NewBuyer(sys, listing, pred)
	if err := buyer.VerifyData(piP); err != nil {
		t.Fatalf("π_p rejected: %v", err)
	}

	// Buyer locks payment with the arbiter.
	arb := NewArbiter(sys, listing.KeyCommitment)
	kv, hv := buyer.Challenge()
	arb.Lock(1000, hv)

	// Phase 2: key negotiation.
	st, piK, err := seller.NegotiateKey(kv, hv)
	if err != nil {
		t.Fatal(err)
	}
	paid, err := arb.Settle(st, piK)
	if err != nil {
		t.Fatalf("π_k rejected: %v", err)
	}
	if paid != 1000 {
		t.Fatalf("seller paid %d", paid)
	}

	// Buyer recovers k and decrypts.
	kc, ok := arb.PublishedKC()
	if !ok {
		t.Fatal("kc not published")
	}
	got, err := buyer.Decrypt(kc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !got[i].Equal(&data[i]) {
			t.Fatal("buyer recovered wrong data")
		}
	}

	// Key secrecy: kc alone does not reveal k — a third party decrypting
	// with kc gets garbage.
	ct := Ciphertext{Nonce: listing.Statement.Nonce, Blocks: listing.Statement.Ciphertext}
	eavesdrop := ct.Decrypt(kc)
	if eavesdrop[0].Equal(&data[0]) {
		t.Fatal("kc decrypts the ciphertext: key leaked")
	}
}

func TestExchangeSellerFairness(t *testing.T) {
	sys := testSys()
	data := smallData(4)
	key := fr.MustRandom()
	pred := TruePredicate{}
	seller, err := NewSeller(sys, data, key, pred)
	if err != nil {
		t.Fatal(err)
	}
	// Malicious buyer sends k_v that does not match h_v: honest seller
	// aborts (Theorem 5.2 seller fairness).
	kv := fr.MustRandom()
	wrongHv := fr.NewElement(1)
	if _, _, err := seller.NegotiateKey(kv, wrongHv); !errors.Is(err, ErrChallengeHash) {
		t.Fatalf("seller did not abort on bad challenge: %v", err)
	}
}

func TestExchangeBuyerFairness(t *testing.T) {
	sys := testSys()
	data := smallData(4)
	key := fr.MustRandom()
	pred := TruePredicate{}
	seller, err := NewSeller(sys, data, key, pred)
	if err != nil {
		t.Fatal(err)
	}
	listing := seller.Listing(500)
	buyer := NewBuyer(sys, listing, pred)
	arb := NewArbiter(sys, listing.KeyCommitment)
	kv, hv := buyer.Challenge()
	arb.Lock(500, hv)

	st, piK, err := seller.NegotiateKey(kv, hv)
	if err != nil {
		t.Fatal(err)
	}
	// Malicious seller submits a k_c different from the proven one: the
	// arbiter must not pay (Theorem 5.2 buyer fairness).
	badSt := st
	badSt.KC = fr.NewElement(999)
	if _, err := arb.Settle(badSt, piK); err == nil {
		t.Fatal("arbiter paid for a forged kc")
	}
	// Mismatched hv in the statement is rejected before verification.
	badSt2 := st
	badSt2.HV = fr.NewElement(1)
	if _, err := arb.Settle(badSt2, piK); err == nil {
		t.Fatal("arbiter accepted mismatched hv")
	}
	// Honest settle still works afterwards, then refund is zero.
	if _, err := arb.Settle(st, piK); err != nil {
		t.Fatal(err)
	}
	if arb.Refund() != 0 {
		t.Fatal("refund after settle")
	}
}

func TestExchangeRefundPath(t *testing.T) {
	sys := testSys()
	arb := NewArbiter(sys, fr.NewElement(7))
	arb.Lock(250, fr.NewElement(9))
	if got := arb.Refund(); got != 250 {
		t.Fatalf("refund %d", got)
	}
	if got := arb.Refund(); got != 0 {
		t.Fatal("double refund")
	}
}

func TestSellerRejectsBadData(t *testing.T) {
	sys := testSys()
	// Data violating the predicate cannot be listed honestly...
	data := Dataset{fr.NewFromInt64(-1)} // huge value, fails range check
	if _, err := NewSeller(sys, data, fr.MustRandom(), RangePredicate{Bits: 16}); !errors.Is(err, ErrPredicateFailed) {
		t.Fatal("predicate-violating listing accepted")
	}
	// ...and a forced proof attempt fails inside the SNARK.
	s := &Seller{sys: sys, pred: RangePredicate{Bits: 16}, data: data, key: fr.MustRandom()}
	s.ct = data.Encrypt(s.key)
	s.cd, s.od = data.Commit()
	s.ck, s.ok = KeyCommit(s.key)
	if _, err := s.ProveData(); err == nil {
		t.Fatal("π_p produced for predicate-violating data")
	}
}

func TestPredicates(t *testing.T) {
	good := Dataset{fr.NewElement(10), fr.NewElement(20)}
	withZero := Dataset{fr.NewElement(10), fr.Zero()}
	big := Dataset{fr.NewFromInt64(-5)}

	if !(TruePredicate{}).Check(big) {
		t.Fatal("true predicate rejected")
	}
	if !(RangePredicate{Bits: 8}).Check(good) || (RangePredicate{Bits: 8}).Check(big) {
		t.Fatal("range predicate wrong")
	}
	sum := SumPredicate{Total: fr.NewElement(30)}
	if !sum.Check(good) || sum.Check(withZero) {
		t.Fatal("sum predicate wrong")
	}
	if !(NonZeroPredicate{}).Check(good) || (NonZeroPredicate{}).Check(withZero) {
		t.Fatal("nonzero predicate wrong")
	}
	names := map[string]bool{}
	for _, p := range []Predicate{TruePredicate{}, RangePredicate{Bits: 8}, sum, NonZeroPredicate{}} {
		if names[p.Name()] {
			t.Fatal("predicate names collide")
		}
		names[p.Name()] = true
	}
}

func TestZKCPFlowAndLeak(t *testing.T) {
	sys := testSys()
	data := smallData(4)
	key := fr.MustRandom()
	pred := TruePredicate{}

	seller, err := NewZKCPSeller(sys, data, key, pred)
	if err != nil {
		t.Fatal(err)
	}
	st, proof, err := seller.Deliver()
	if err != nil {
		t.Fatal(err)
	}
	if err := ZKCPVerify(sys, pred, st, proof); err != nil {
		t.Fatalf("zkcp proof rejected: %v", err)
	}
	// Open phase: key goes public; judge accepts.
	k := seller.Open()
	if err := ZKCPFinalize(st, k); err != nil {
		t.Fatal(err)
	}
	// Wrong key rejected by the judge.
	if err := ZKCPFinalize(st, fr.NewElement(1)); err == nil {
		t.Fatal("judge accepted wrong key")
	}
	// THE FLAW: any third party now decrypts the public ciphertext.
	leaked := ZKCPLeak(st, k)
	for i := range data {
		if !leaked[i].Equal(&data[i]) {
			t.Fatal("leak demo failed — zkcp flaw not reproduced")
		}
	}
}

func TestZKCPVerifierCost(t *testing.T) {
	p := ZKCPVerifierCost(4)
	if p.IsInfinity() {
		t.Fatal("cost model returned infinity")
	}
}

func TestKeyCircuitVK(t *testing.T) {
	sys := testSys()
	vk1, err := sys.KeyCircuitVK()
	if err != nil {
		t.Fatal(err)
	}
	vk2, err := sys.KeyCircuitVK()
	if err != nil {
		t.Fatal(err)
	}
	if vk1 != vk2 {
		t.Fatal("π_k setup not cached")
	}
	if vk1.NbPublic != 3 {
		t.Fatalf("π_k has %d public inputs, want 3", vk1.NbPublic)
	}
}
