// Package core implements ZKDET itself: the generic data transformation
// protocol (§IV-B) with its decoupled proofs of encryption π_e and
// transformation π_t, the transformation predicates of §IV-D, the
// key-secure two-phase exchange protocol of §IV-F, and the ZKCP baseline
// (§III-C) it is evaluated against — all over the Plonk/KZG/MiMC/Poseidon
// stack in the sibling packages.
package core

import (
	"fmt"
	"sync"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/plonk"
)

// System holds the universal SRS and a cache of circuit-specific
// preprocessing (Plonk's circuit setup is per-shape, one-time; the SRS is
// universal and reused, which is the point of the Plonk construction the
// paper selects).
type System struct {
	srs *kzg.SRS

	mu    sync.Mutex
	cache map[string]*circuitKeys // guarded by mu
}

type circuitKeys struct {
	pk *plonk.ProvingKey
	vk *plonk.VerifyingKey
}

// NewSystem creates a proving system over an SRS (from kzg.Setup or a
// ceremony). The SRS bounds the largest provable circuit.
func NewSystem(srs *kzg.SRS) *System {
	return &System{srs: srs, cache: make(map[string]*circuitKeys)}
}

// NewTestSystem builds a System with a deterministic (insecure) SRS big
// enough for circuits of maxConstraints gates; for tests and benchmarks.
func NewTestSystem(maxConstraints int) (*System, error) {
	n := 64
	for n < maxConstraints {
		n <<= 1
	}
	tau := fr.NewElement(0x5eed2025)
	srs, err := kzg.NewSRSFromSecret(4*n+16, &tau)
	if err != nil {
		return nil, err
	}
	return NewSystem(srs), nil
}

// SRS exposes the system's reference string.
func (s *System) SRS() *kzg.SRS { return s.srs }

// keysFor compiles the builder and returns (possibly cached) Plonk keys for
// the circuit shape identified by key. Builders passed here must produce a
// witness-independent gate structure for a fixed shape key, which all
// circuits in this package do.
func (s *System) keysFor(key string, b *circuit.Builder) (*circuitKeys, *plonk.ConstraintSystem, []fr.Element, error) {
	cs, witness, err := b.Compile()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: compiling %s: %w", key, err)
	}
	s.mu.Lock()
	ck, ok := s.cache[key]
	s.mu.Unlock()
	if ok {
		return ck, cs, witness, nil
	}
	pk, vk, err := plonk.Setup(cs, s.srs)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: setup %s: %w", key, err)
	}
	ck = &circuitKeys{pk: pk, vk: vk}
	s.mu.Lock()
	s.cache[key] = ck
	s.mu.Unlock()
	return ck, cs, witness, nil
}

// vkFor returns the verifying key for a circuit shape, building it (with a
// zero witness) if the shape has not been set up yet.
func (s *System) vkFor(key string, build func() *circuit.Builder) (*plonk.VerifyingKey, error) {
	s.mu.Lock()
	ck, ok := s.cache[key]
	s.mu.Unlock()
	if ok {
		return ck.vk, nil
	}
	ck2, _, _, err := s.keysFor(key, build())
	if err != nil {
		return nil, err
	}
	return ck2.vk, nil
}

// prove runs the standard compile→setup→check→prove pipeline.
func (s *System) prove(key string, b *circuit.Builder) (*plonk.Proof, []fr.Element, error) {
	ck, cs, witness, err := s.keysFor(key, b)
	if err != nil {
		return nil, nil, err
	}
	if err := cs.IsSatisfied(witness); err != nil {
		return nil, nil, fmt.Errorf("core: %s witness: %w", key, err)
	}
	proof, err := plonk.Prove(ck.pk, witness)
	if err != nil {
		return nil, nil, fmt.Errorf("core: proving %s: %w", key, err)
	}
	return proof, b.PublicValues(), nil
}
