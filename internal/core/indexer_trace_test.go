package core

import (
	"reflect"
	"testing"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
)

// TestTraceViaIndexer drives the DataNFT contract with raw transactions (no
// proving, so it stays fast) and checks that the indexer-backed Trace
// returns exactly what the storage walk does — and that tokens minted after
// the last sealed block fall back to the walk instead of erroring.
func TestTraceViaIndexer(t *testing.T) {
	m, _ := newTestMarketplace(t)
	ix := m.AttachIndexer()
	if again := m.AttachIndexer(); again != ix {
		t.Fatal("AttachIndexer not idempotent")
	}
	alice := chain.AddressFromString("alice")
	m.Chain.Faucet(alice, 1<<40)

	call := func(method string, args []byte) []byte {
		t.Helper()
		r, err := m.submit(alice, contracts.DataNFTName, method, 0, args)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		return r.Return
	}
	mustID := func(raw []byte) uint64 {
		t.Helper()
		id, err := contracts.DecU64(raw)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := mustID(call("mint", contracts.EncodeArgs([]byte("u1"), []byte("c1"))))
	b := mustID(call("mint", contracts.EncodeArgs([]byte("u2"), []byte("c2"))))
	agg := mustID(call("aggregate", contracts.EncodeArgs(contracts.U64List([]uint64{a, b}), []byte("u3"), []byte("c3"))))
	m.Chain.SealBlock()

	want, err := contracts.Trace(m.Chain, agg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Trace(agg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("indexed trace differs:\n got %+v\nwant %+v", got, want)
	}

	// A token minted after the last seal is invisible to the indexer; Trace
	// must still answer via the storage walk.
	fresh := mustID(call("duplicate", contracts.EncodeArgs(contracts.U64(agg), []byte("u4"), []byte("c4"))))
	lineage, err := m.Trace(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(lineage) != 4 || lineage[0].ID != fresh {
		t.Fatalf("fallback trace: %+v", lineage)
	}
}
