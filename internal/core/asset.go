package core

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/mimc"
	"github.com/zkdet/zkdet/internal/poseidon"
)

// Dataset is a data asset's plaintext: a vector of field elements
// D = (d_i), the paper's canonical representation. Arbitrary bytes are
// packed via EncodeBytes (31 bytes per element, length-terminated).
type Dataset []fr.Element

// ErrDatasetEmpty reports an empty dataset where content is required.
var ErrDatasetEmpty = errors.New("core: empty dataset")

// EncodeBytes packs raw bytes into a Dataset (31 bytes per element so every
// element is canonical), appending a length element so decoding is exact.
func EncodeBytes(data []byte) Dataset {
	const chunk = 31
	out := make(Dataset, 0, len(data)/chunk+2)
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		var buf [chunk]byte
		copy(buf[:], data[off:end])
		out = append(out, fr.FromBytes(buf[:]))
	}
	out = append(out, fr.NewElement(uint64(len(data))))
	return out
}

// DecodeBytes reverses EncodeBytes.
func DecodeBytes(d Dataset) ([]byte, error) {
	if len(d) == 0 {
		return nil, ErrDatasetEmpty
	}
	n64, ok := d[len(d)-1].Uint64()
	if !ok {
		return nil, fmt.Errorf("core: corrupt dataset length element")
	}
	n := int(n64)
	const chunk = 31
	if want := (n+chunk-1)/chunk + 1; want != len(d) && !(n == 0 && len(d) == 1) {
		return nil, fmt.Errorf("core: dataset has %d elements, length %d wants %d", len(d), n, want)
	}
	out := make([]byte, 0, n)
	for i := 0; i < len(d)-1; i++ {
		b := d[i].Bytes()
		out = append(out, b[32-chunk:]...)
	}
	if len(out) < n {
		return nil, fmt.Errorf("core: dataset truncated")
	}
	return out[:n], nil
}

// Clone returns a deep copy.
func (d Dataset) Clone() Dataset {
	out := make(Dataset, len(d))
	copy(out, d)
	return out
}

// Commit returns a Poseidon commitment to the dataset with a fresh blinder.
func (d Dataset) Commit() (c, o fr.Element) {
	return poseidon.Commit(d)
}

// Ciphertext is an encrypted dataset together with its CTR nonce; this is
// what gets published to the storage network.
type Ciphertext struct {
	Nonce  fr.Element
	Blocks []fr.Element
}

// Encrypt encrypts the dataset under key k with a fresh random nonce
// (MiMC-CTR, §IV-C1).
func (d Dataset) Encrypt(k fr.Element) Ciphertext {
	nonce := fr.MustRandom()
	return Ciphertext{Nonce: nonce, Blocks: mimc.EncryptCTR(k, nonce, d)}
}

// Decrypt recovers the dataset from a ciphertext.
func (ct *Ciphertext) Decrypt(k fr.Element) Dataset {
	return mimc.DecryptCTR(k, ct.Nonce, ct.Blocks)
}

// Bytes serializes the ciphertext (nonce ‖ blocks) for storage.
func (ct *Ciphertext) Bytes() []byte {
	out := make([]byte, 0, 32*(len(ct.Blocks)+1))
	n := ct.Nonce.Bytes()
	out = append(out, n[:]...)
	for i := range ct.Blocks {
		b := ct.Blocks[i].Bytes()
		out = append(out, b[:]...)
	}
	return out
}

// CiphertextFromBytes reverses Ciphertext.Bytes.
func CiphertextFromBytes(data []byte) (Ciphertext, error) {
	if len(data) < 32 || len(data)%32 != 0 {
		return Ciphertext{}, fmt.Errorf("core: ciphertext length %d not a multiple of 32", len(data))
	}
	nonce, err := fr.FromBytesCanonical(data[:32])
	if err != nil {
		return Ciphertext{}, fmt.Errorf("core: ciphertext nonce: %w", err)
	}
	ct := Ciphertext{Nonce: nonce}
	for off := 32; off < len(data); off += 32 {
		e, err := fr.FromBytesCanonical(data[off : off+32])
		if err != nil {
			return Ciphertext{}, fmt.Errorf("core: ciphertext block %d: %w", off/32-1, err)
		}
		ct.Blocks = append(ct.Blocks, e)
	}
	return ct, nil
}

// KeyCommit commits to an encryption key (the c that initializes the
// arbiter in §IV-F).
func KeyCommit(k fr.Element) (c, o fr.Element) {
	return poseidon.Commit([]fr.Element{k})
}

// KeyCommitWith is the deterministic form used inside circuits.
func KeyCommitWith(k, o fr.Element) fr.Element {
	return poseidon.CommitWith([]fr.Element{k}, o)
}
