package transcript

import (
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
)

// FuzzTranscriptChallenge checks the Fiat–Shamir core invariants for
// arbitrary protocol labels and message bytes: determinism (identical
// absorptions yield identical challenges), state advancement (a second
// squeeze differs from the first), message sensitivity (absorbing one
// extra byte changes the challenge), and well-formedness (challenges are
// canonical field elements).
func FuzzTranscriptChallenge(f *testing.F) {
	f.Add("zkdet/plonk", "beta", []byte{1, 2, 3})
	f.Add("", "", []byte{})
	f.Add("p", "challenge", []byte("challenge"))
	f.Fuzz(func(t *testing.T, proto, label string, msg []byte) {
		t1 := New(proto)
		t1.AppendBytes(label, msg)
		c1 := t1.ChallengeScalar(label)

		t2 := New(proto)
		t2.AppendBytes(label, msg)
		c2 := t2.ChallengeScalar(label)
		if !c1.Equal(&c2) {
			t.Fatal("identical transcripts derived different challenges")
		}

		// The challenge is absorbed back: a second squeeze with the same
		// label must differ.
		if c3 := t1.ChallengeScalar(label); c1.Equal(&c3) {
			t.Fatal("transcript state did not advance after a challenge")
		}

		// One extra absorbed byte must change the challenge (length
		// framing in absorb prevents boundary ambiguities).
		t3 := New(proto)
		t3.AppendBytes(label, append(append([]byte{}, msg...), 0x00))
		if c4 := t3.ChallengeScalar(label); c1.Equal(&c4) {
			t.Fatal("challenge insensitive to the absorbed message")
		}

		b := c1.Bytes()
		if _, err := fr.FromBytesCanonical(b[:]); err != nil {
			t.Fatalf("challenge is not a canonical field element: %v", err)
		}
	})
}
