package transcript

import (
	"testing"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
)

func TestDeterminism(t *testing.T) {
	build := func() fr.Element {
		tr := New("test")
		tr.AppendBytes("msg", []byte("hello"))
		s := fr.NewElement(42)
		tr.AppendScalar("scalar", &s)
		g := bn254.G1Generator()
		tr.AppendPoint("point", &g)
		return tr.ChallengeScalar("c")
	}
	c1, c2 := build(), build()
	if !c1.Equal(&c2) {
		t.Fatal("same transcript, different challenges")
	}
}

func TestDomainSeparation(t *testing.T) {
	t1 := New("protocol-a")
	t2 := New("protocol-b")
	c1 := t1.ChallengeScalar("c")
	c2 := t2.ChallengeScalar("c")
	if c1.Equal(&c2) {
		t.Fatal("different protocols, same challenge")
	}
}

func TestMessageBinding(t *testing.T) {
	t1 := New("p")
	t1.AppendBytes("m", []byte("one"))
	t2 := New("p")
	t2.AppendBytes("m", []byte("two"))
	c1 := t1.ChallengeScalar("c")
	c2 := t2.ChallengeScalar("c")
	if c1.Equal(&c2) {
		t.Fatal("different messages, same challenge")
	}
}

func TestLabelBinding(t *testing.T) {
	t1 := New("p")
	t1.AppendBytes("label-a", []byte("x"))
	t2 := New("p")
	t2.AppendBytes("label-b", []byte("x"))
	c1 := t1.ChallengeScalar("c")
	c2 := t2.ChallengeScalar("c")
	if c1.Equal(&c2) {
		t.Fatal("different labels, same challenge")
	}
}

func TestChallengeChaining(t *testing.T) {
	// A challenge must feed back into the transcript: two consecutive
	// challenges differ, and inserting a message between them changes the
	// second.
	tr := New("p")
	c1 := tr.ChallengeScalar("c")
	c2 := tr.ChallengeScalar("c")
	if c1.Equal(&c2) {
		t.Fatal("consecutive challenges repeat")
	}

	ta := New("p")
	ta.ChallengeScalar("c")
	ta.AppendBytes("extra", []byte("x"))
	ca := ta.ChallengeScalar("c")
	if ca.Equal(&c2) {
		t.Fatal("inserted message did not affect later challenge")
	}
}

func TestAppendScalars(t *testing.T) {
	mk := func(vals ...uint64) fr.Element {
		tr := New("p")
		ss := make([]fr.Element, len(vals))
		for i, v := range vals {
			ss[i] = fr.NewElement(v)
		}
		tr.AppendScalars("batch", ss)
		return tr.ChallengeScalar("c")
	}
	if c1, c2 := mk(1, 2), mk(2, 1); c1.Equal(&c2) {
		t.Fatal("order-insensitive scalar absorption")
	}
	// Boundary shifting must not collide: [12, 3] vs [1, 23].
	if c1, c2 := mk(12, 3), mk(1, 23); c1.Equal(&c2) {
		t.Fatal("scalar boundaries ambiguous")
	}
}

func TestChallengeDistribution(t *testing.T) {
	// Challenges across distinct transcripts should not collide.
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tr := New("p")
		s := fr.NewElement(uint64(i))
		tr.AppendScalar("i", &s)
		c := tr.ChallengeScalar("c")
		key := c.String()
		if seen[key] {
			t.Fatal("challenge collision")
		}
		seen[key] = true
	}
}
