// Package transcript implements a Fiat–Shamir transcript: a domain-separated
// SHA-256 sponge that absorbs protocol messages and squeezes verifier
// challenges, turning the interactive Plonk protocol into a NIZK.
package transcript

import (
	"crypto/sha256"
	"encoding/binary"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
)

// Transcript accumulates protocol messages and derives challenges. It is
// deterministic: prover and verifier reconstruct identical challenges by
// absorbing identical messages. Not safe for concurrent use.
type Transcript struct {
	state [32]byte
}

// New returns a transcript seeded with a protocol label, which provides
// domain separation between protocols sharing the same primitives.
func New(label string) *Transcript {
	t := &Transcript{}
	t.absorb([]byte("zkdet/transcript/v1"))
	t.absorb([]byte(label))
	return t
}

func (t *Transcript) absorb(data []byte) {
	h := sha256.New()
	h.Write(t.state[:])
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(data)))
	h.Write(lenBuf[:])
	h.Write(data)
	copy(t.state[:], h.Sum(nil))
}

// AppendBytes absorbs a labelled byte string.
func (t *Transcript) AppendBytes(label string, data []byte) {
	t.absorb([]byte(label))
	t.absorb(data)
}

// AppendScalar absorbs a labelled field element.
func (t *Transcript) AppendScalar(label string, s *fr.Element) {
	b := s.Bytes()
	t.AppendBytes(label, b[:])
}

// AppendScalars absorbs a labelled list of field elements.
func (t *Transcript) AppendScalars(label string, ss []fr.Element) {
	t.absorb([]byte(label))
	for i := range ss {
		b := ss[i].Bytes()
		t.absorb(b[:])
	}
}

// AppendPoint absorbs a labelled G1 point.
func (t *Transcript) AppendPoint(label string, p *bn254.G1Affine) {
	b := p.Bytes()
	t.AppendBytes(label, b[:])
}

// ChallengeScalar derives a labelled challenge in the scalar field and
// absorbs it back into the transcript so later challenges depend on it.
func (t *Transcript) ChallengeScalar(label string) fr.Element {
	t.absorb([]byte(label))
	t.absorb([]byte("challenge"))
	// Two squeezes widen the sample to 512 bits so the mod-r bias is
	// negligible (< 2^-256).
	h1 := sha256.Sum256(append(t.state[:], 0x01))
	h2 := sha256.Sum256(append(t.state[:], 0x02))
	var wide [64]byte
	copy(wide[:32], h1[:])
	copy(wide[32:], h2[:])
	c := fr.FromBytes(wide[:])
	b := c.Bytes()
	t.absorb(b[:])
	return c
}
