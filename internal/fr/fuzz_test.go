package fr

import (
	"bytes"
	"testing"
)

// FuzzFromBytesRoundTrip feeds FromBytes arbitrary byte strings: whatever
// it decodes must be a reduced element whose encoding is a fixed point
// under decode∘encode. This is the byte-level surface every deserialized
// scalar (calldata, stored commitments, transcript output) passes through.
func FuzzFromBytesRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, in []byte) {
		x := FromBytes(in)
		enc := x.Bytes()
		y, err := FromBytesCanonical(enc[:])
		if err != nil {
			t.Fatalf("Bytes() produced a non-canonical encoding: %v", err)
		}
		if !x.Equal(&y) {
			t.Fatal("decode(encode(x)) != x")
		}
		if enc2 := y.Bytes(); enc2 != enc {
			t.Fatal("encoding is not a fixed point")
		}
	})
}

// FuzzSetBytesCanonical checks the strict decoder: it accepts exactly the
// reduced 32-byte big-endian encodings, round-trips them bit-exactly, and
// agrees with the permissive FromBytes on everything it accepts.
func FuzzSetBytesCanonical(f *testing.F) {
	f.Add(make([]byte, 32))
	f.Add(bytes.Repeat([]byte{0x11}, 32))
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	f.Fuzz(func(t *testing.T, in []byte) {
		x, err := FromBytesCanonical(in)
		if err != nil {
			return // non-canonical input, correctly rejected
		}
		if len(in) != Bytes {
			t.Fatalf("accepted a %d-byte input", len(in))
		}
		enc := x.Bytes()
		if !bytes.Equal(enc[:], in) {
			t.Fatal("canonical decode does not round-trip bit-exactly")
		}
		lax := FromBytes(in)
		if !x.Equal(&lax) {
			t.Fatal("FromBytesCanonical disagrees with FromBytes on a canonical input")
		}
	})
}
