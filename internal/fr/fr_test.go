package fr

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestBasicIdentities(t *testing.T) {
	one, zero := One(), Zero()
	var sum Element
	sum.Add(&one, &zero)
	if !sum.IsOne() {
		t.Fatal("1 + 0 != 1")
	}
	var prod Element
	prod.Mul(&one, &one)
	if !prod.IsOne() {
		t.Fatal("1 * 1 != 1")
	}
	if !zero.IsZero() || one.IsZero() {
		t.Fatal("IsZero misbehaves")
	}
}

func TestNewFromInt64(t *testing.T) {
	cases := []struct {
		in   int64
		want *big.Int
	}{
		{0, big.NewInt(0)},
		{42, big.NewInt(42)},
		{-1, new(big.Int).Sub(Modulus(), big.NewInt(1))},
		{-100, new(big.Int).Sub(Modulus(), big.NewInt(100))},
	}
	for _, tc := range cases {
		e := NewFromInt64(tc.in)
		if got := e.BigInt(); got.Cmp(tc.want) != 0 {
			t.Errorf("NewFromInt64(%d) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		e := MustRandom()
		b := e.Bytes()
		back, err := FromBytesCanonical(b[:])
		if err != nil {
			t.Fatalf("FromBytesCanonical: %v", err)
		}
		if !back.Equal(&e) {
			t.Fatal("round trip mismatch")
		}
	}
	var modBytes [Bytes]byte
	Modulus().FillBytes(modBytes[:])
	if _, err := FromBytesCanonical(modBytes[:]); err == nil {
		t.Fatal("accepted non-canonical bytes")
	}
}

func TestRootOfUnity(t *testing.T) {
	for _, logN := range []int{0, 1, 4, 10, TwoAdicity} {
		w, err := RootOfUnity(logN)
		if err != nil {
			t.Fatalf("RootOfUnity(%d): %v", logN, err)
		}
		// w^(2^logN) == 1 and w^(2^(logN-1)) == -1 (primitivity).
		var x Element
		x.Set(&w)
		for i := 0; i < logN; i++ {
			x.Square(&x)
		}
		if !x.IsOne() {
			t.Fatalf("w^(2^%d) != 1", logN)
		}
		if logN > 0 {
			x.Set(&w)
			for i := 0; i < logN-1; i++ {
				x.Square(&x)
			}
			minusOne := NewFromInt64(-1)
			if !x.Equal(&minusOne) {
				t.Fatalf("root of unity for logN=%d is not primitive", logN)
			}
		}
	}
	if _, err := RootOfUnity(TwoAdicity + 1); err == nil {
		t.Fatal("RootOfUnity beyond two-adicity should fail")
	}
	if _, err := RootOfUnity(-1); err == nil {
		t.Fatal("RootOfUnity(-1) should fail")
	}
}

func TestBatchInvert(t *testing.T) {
	xs := make([]Element, 33)
	want := make([]Element, 33)
	for i := range xs {
		if i%5 == 2 {
			xs[i] = Zero()
		} else {
			xs[i] = NewElement(uint64(3*i + 7))
		}
		want[i].Inverse(&xs[i])
	}
	BatchInvert(xs)
	for i := range xs {
		if !xs[i].Equal(&want[i]) {
			t.Fatalf("batch invert mismatch at %d", i)
		}
	}
}

func TestQuickAddMulAgainstBig(t *testing.T) {
	mod := Modulus()
	prop := func(a, b uint64) bool {
		x, y := NewElement(a), NewElement(b)
		var s, p Element
		s.Add(&x, &y)
		p.Mul(&x, &y)
		wantS := new(big.Int).Add(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		wantS.Mod(wantS, mod)
		wantP := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		wantP.Mod(wantP, mod)
		return s.BigInt().Cmp(wantS) == 0 && p.BigInt().Cmp(wantP) == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInverse(t *testing.T) {
	prop := func(a uint64) bool {
		if a == 0 {
			return true
		}
		x := NewElement(a)
		var inv, prod Element
		inv.Inverse(&x)
		prod.Mul(&x, &inv)
		return prod.IsOne()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	e := NewElement(12345)
	if got := e.String(); got != "12345" {
		t.Fatalf("String() = %q, want 12345", got)
	}
}

func TestUint64(t *testing.T) {
	e := NewElement(777)
	v, ok := e.Uint64()
	if !ok || v != 777 {
		t.Fatalf("Uint64() = %d,%v", v, ok)
	}
	big := NewFromInt64(-1)
	if _, ok := big.Uint64(); ok {
		t.Fatal("r-1 should not fit in uint64")
	}
}
