// Package fr implements the BN254 scalar field
// (r = 21888242871839275222246405745257275088548364400416034343698204186575808495617),
// the field over which all ZKDET circuits, polynomials and proofs are defined.
//
// Element uses Montgomery form internally (backed by internal/ff) and offers
// a chainable pointer API: z.Add(&x, &y) sets z = x+y and returns z.
package fr

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"github.com/zkdet/zkdet/internal/ff"
	"github.com/zkdet/zkdet/internal/parallel"
)

// ModulusDecimal is the BN254 scalar field modulus in base 10.
const ModulusDecimal = "21888242871839275222246405745257275088548364400416034343698204186575808495617"

// Bytes is the canonical encoded size of an element.
const Bytes = 32

// TwoAdicity is the largest s with 2^s | r-1; FFT domains of size up to
// 2^TwoAdicity exist in the field.
const TwoAdicity = 28

// MultiplicativeGenerator generates the multiplicative group of the field.
const MultiplicativeGenerator = 5

// field is the shared immutable backing field; it is effectively a constant.
var field = ff.MustNewField(ModulusDecimal)

// Element is an element of the BN254 scalar field in Montgomery form.
// The zero value is 0.
type Element struct {
	v ff.Element
}

// Modulus returns a copy of the field modulus r.
func Modulus() *big.Int { return field.Modulus() }

// Zero returns 0.
func Zero() Element { return Element{} }

// One returns 1.
func One() Element { return Element{v: field.One()} }

// NewElement returns the element representing v.
func NewElement(v uint64) Element { return Element{v: field.FromUint64(v)} }

// NewFromInt64 returns the element representing v, mapping negatives to
// their additive inverses mod r.
func NewFromInt64(v int64) Element {
	if v >= 0 {
		return NewElement(uint64(v))
	}
	e := NewElement(uint64(-v))
	var z Element
	z.Neg(&e)
	return z
}

// FromBig returns b mod r.
func FromBig(b *big.Int) Element { return Element{v: field.FromBig(b)} }

// MustFromDecimal parses a base-10 literal; it panics on malformed input and
// is intended for compile-time constants.
func MustFromDecimal(s string) Element {
	b, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic("fr: invalid decimal literal " + s)
	}
	return FromBig(b)
}

// FromBytes interprets b as a big-endian integer and reduces it mod r.
func FromBytes(b []byte) Element { return Element{v: field.FromBytes(b)} }

// FromBytesCanonical decodes a canonical 32-byte big-endian encoding,
// rejecting non-reduced values.
func FromBytesCanonical(b []byte) (Element, error) {
	v, err := field.FromBytesCanonical(b)
	if err != nil {
		return Element{}, fmt.Errorf("fr: %w", err)
	}
	return Element{v: v}, nil
}

// Random returns a uniformly random element read from r (use crypto/rand.Reader).
func Random(r io.Reader) (Element, error) {
	b, err := rand.Int(r, field.Modulus())
	if err != nil {
		return Element{}, fmt.Errorf("fr: sampling randomness: %w", err)
	}
	return FromBig(b), nil
}

// MustRandom returns a uniformly random element from crypto/rand, panicking
// if the system randomness source fails.
func MustRandom() Element {
	e, err := Random(rand.Reader)
	if err != nil {
		panic(err)
	}
	return e
}

// BigInt returns the canonical integer value of z.
func (z *Element) BigInt() *big.Int { return field.ToBig(&z.v) }

// Bytes returns the canonical 32-byte big-endian encoding.
func (z *Element) Bytes() [Bytes]byte {
	var out [Bytes]byte
	copy(out[:], field.Bytes(&z.v))
	return out
}

// String returns the canonical decimal representation.
func (z Element) String() string { return field.ToBig(&z.v).String() }

// Uint64 returns the low 64 bits of the canonical value and whether the
// value fits in a uint64.
func (z *Element) Uint64() (uint64, bool) {
	b := z.BigInt()
	return b.Uint64(), b.IsUint64()
}

// IsZero reports whether z == 0.
func (z *Element) IsZero() bool { return field.IsZero(&z.v) }

// IsOne reports whether z == 1.
func (z *Element) IsOne() bool { return field.IsOne(&z.v) }

// Equal reports whether z == x.
func (z *Element) Equal(x *Element) bool { return z.v == x.v }

// Set sets z = x and returns z.
func (z *Element) Set(x *Element) *Element { z.v = x.v; return z }

// SetZero sets z = 0 and returns z.
func (z *Element) SetZero() *Element { z.v = ff.Element{}; return z }

// SetOne sets z = 1 and returns z.
func (z *Element) SetOne() *Element { z.v = field.One(); return z }

// SetUint64 sets z to the element representing v and returns z.
func (z *Element) SetUint64(v uint64) *Element { z.v = field.FromUint64(v); return z }

// Add sets z = x + y and returns z.
func (z *Element) Add(x, y *Element) *Element { field.Add(&z.v, &x.v, &y.v); return z }

// Sub sets z = x - y and returns z.
func (z *Element) Sub(x, y *Element) *Element { field.Sub(&z.v, &x.v, &y.v); return z }

// Mul sets z = x * y and returns z.
func (z *Element) Mul(x, y *Element) *Element { field.Mul(&z.v, &x.v, &y.v); return z }

// Square sets z = x^2 and returns z.
func (z *Element) Square(x *Element) *Element { field.Square(&z.v, &x.v); return z }

// Double sets z = 2x and returns z.
func (z *Element) Double(x *Element) *Element { field.Double(&z.v, &x.v); return z }

// Neg sets z = -x and returns z.
func (z *Element) Neg(x *Element) *Element { field.Neg(&z.v, &x.v); return z }

// Inverse sets z = x^{-1} (or 0 when x == 0) and returns z.
func (z *Element) Inverse(x *Element) *Element { field.Inverse(&z.v, &x.v); return z }

// Exp sets z = x^e for a non-negative exponent and returns z.
func (z *Element) Exp(x *Element, e *big.Int) *Element { field.Exp(&z.v, &x.v, e); return z }

// ExpUint64 sets z = x^e and returns z.
func (z *Element) ExpUint64(x *Element, e uint64) *Element {
	return z.Exp(x, new(big.Int).SetUint64(e))
}

// Butterfly sets (a, b) = (a+b, a-b), the radix-2 FFT butterfly core.
func Butterfly(a, b *Element) {
	var t Element
	t.Set(a)
	a.Add(&t, b)
	b.Sub(&t, b)
}

// batchInvertParallelThreshold is the size above which BatchInvert splits
// the input across workers. Each chunk pays one extra field inversion
// (hundreds of multiplications), so chunks must be large enough that the
// saved 3·n multiplications per worker dominate.
const batchInvertParallelThreshold = 1 << 12

// BatchInvert inverts every non-zero element of xs in place with one field
// inversion per worker chunk (Montgomery's trick). Zero entries stay zero.
// Results are exact inverses, so the output is independent of worker count.
func BatchInvert(xs []Element) {
	if len(xs) >= batchInvertParallelThreshold && parallel.Workers() > 1 {
		parallel.Execute(len(xs), func(start, end int) {
			batchInvertSerial(xs[start:end])
		})
		return
	}
	batchInvertSerial(xs)
}

func batchInvertSerial(xs []Element) {
	raw := make([]ff.Element, len(xs))
	for i := range xs {
		raw[i] = xs[i].v
	}
	field.BatchInverse(raw)
	for i := range xs {
		xs[i].v = raw[i]
	}
}

// Powers returns [1, base, base², …, base^(n-1)]. Large requests are split
// across workers, each seeding its chunk with a single exponentiation; the
// values are exact powers either way, so the result is independent of
// worker count.
func Powers(base *Element, n int) []Element {
	out := make([]Element, n)
	if n == 0 {
		return out
	}
	const minChunk = 1 << 11
	workers := parallel.Workers()
	if n < 2*minChunk || workers <= 1 {
		out[0] = One()
		for i := 1; i < n; i++ {
			out[i].Mul(&out[i-1], base)
		}
		return out
	}
	if workers > n/minChunk {
		workers = n / minChunk
	}
	parallel.ExecuteWorkers(n, workers, func(start, end int) {
		out[start].ExpUint64(base, uint64(start))
		for i := start + 1; i < end; i++ {
			out[i].Mul(&out[i-1], base)
		}
	})
	return out
}

// RootOfUnity returns a primitive 2^logN-th root of unity. It returns an
// error when logN exceeds the field's two-adicity.
func RootOfUnity(logN int) (Element, error) {
	if logN < 0 || logN > TwoAdicity {
		return Element{}, fmt.Errorf("fr: no 2^%d-th root of unity (two-adicity is %d)", logN, TwoAdicity)
	}
	// g^((r-1)/2^logN) for the multiplicative generator g.
	exp := new(big.Int).Sub(field.Modulus(), big.NewInt(1))
	exp.Rsh(exp, uint(logN))
	g := NewElement(MultiplicativeGenerator)
	var w Element
	w.Exp(&g, exp)
	return w, nil
}
