package contracts

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/ct"
)

// ConfidentialTokenName is the canonical deployment name of the
// confidential-token contract.
const ConfidentialTokenName = "zkdet-ct"

// ConfidentialTokenCodeSize approximates the flattened contract size for
// deployment gas (a zkat-style UTXO transfer contract plus an escrow).
const ConfidentialTokenCodeSize = 9240

// Confidential-token errors.
var (
	ErrCTNotIssuer     = errors.New("contracts: confidential mint restricted to the issuer")
	ErrUnknownNote     = errors.New("contracts: unknown confidential note")
	ErrNotNoteOwner    = errors.New("contracts: caller does not own note")
	ErrNoteUnavailable = errors.New("contracts: note is spent or locked")
	ErrDuplicateInput  = errors.New("contracts: duplicate input note")
	ErrCTProofRejected = errors.New("contracts: confidential transfer proof rejected")
)

// note status values.
const (
	noteUnspent byte = 1
	noteSpent   byte = 2
	noteLocked  byte = 3
)

// CTNote is the public on-chain record of one confidential note: who owns
// it and the commitment hiding its amount. Everything a non-auditor sees.
type CTNote struct {
	ID     uint64
	Owner  chain.Address
	Status byte
	Comm   ct.Commitment
	Audit  ct.AuditCipher
}

// ConfidentialToken is a UTXO-style token contract whose amounts are
// Pedersen commitments (internal/ct). Methods:
//
//	mint(transferArgs)               (issuer; no inputs, creates notes)
//	transfer(transferArgs)           (spend owned notes, create new ones)
//	lock(exId, noteId, seller, hv, c, tokenId)  (buyer; locks a note as escrow payment)
//	settle(exId, kc, verifyArgs…)    (seller; π_k verified, note changes owner)
//	refund(exId)                     (buyer; after the deadline)
//	noteOf(noteId)                   (view)
//
// Every mint/transfer carries a ct.Proof: the sigma part (balance +
// auditor-ciphertext consistency) is verified in-contract, and each
// output's π_ct range proof is verified through the deployed Plonk
// verifier contract — which is exactly what the seal-time
// BlockProofChecker pre-verifies and amortizes.
type ConfidentialToken struct {
	issuer  chain.Address
	auditor bn254.G1Affine
	params  *ct.Params
	// rangeVerifierName is the deployed π_ct verifier; pikVerifierName the
	// π_k verifier the escrow settle path reuses.
	rangeVerifierName string
	pikVerifierName   string
	timeoutBlocks     uint64
}

var _ chain.Contract = (*ConfidentialToken)(nil)

// NewConfidentialToken configures the contract. issuer and auditorPub are
// genesis parameters every replica shares.
func NewConfidentialToken(issuer chain.Address, auditorPub bn254.G1Affine, rangeVerifierName, pikVerifierName string, timeoutBlocks uint64) *ConfidentialToken {
	return &ConfidentialToken{
		issuer:            issuer,
		auditor:           auditorPub,
		params:            ct.DefaultParams(),
		rangeVerifierName: rangeVerifierName,
		pikVerifierName:   pikVerifierName,
		timeoutBlocks:     timeoutBlocks,
	}
}

func noteKey(id uint64, field string) string { return fmt.Sprintf("note/%d/%s", id, field) }
func ctExKey(id uint64, field string) string { return fmt.Sprintf("ctex/%d/%s", id, field) }

// CTSigmaGas prices the in-contract sigma verification of a confidential
// transfer on the EIP-1108 schedule: 8 scalar muls + 6 additions per
// output, 2 muls for the balance equation, and one addition per
// commitment folded into it.
func CTSigmaGas(nIn, nOut int) uint64 {
	muls := uint64(8*nOut + 2)
	adds := uint64(6*nOut + nIn + nOut + 4)
	return muls*chain.GasEcMul + adds*chain.GasEcAdd
}

// CTTransferDecoded is the parsed calldata of a mint or transfer.
type CTTransferDecoded struct {
	InIDs      []uint64
	InComms    []ct.Commitment
	Outputs    []ct.Output
	Recipients []chain.Address
	Proof      *ct.Proof
}

// CTContext builds the Fiat–Shamir context binding a transfer proof to
// its chain position: sender ‖ spent note ids ‖ recipients. Both the
// stateless gossip screen and the executing contract rebuild it from the
// same transaction fields.
func CTContext(sender chain.Address, inIDs []uint64, recipients []chain.Address) []byte {
	out := append([]byte("zkdet/ct/ctx"), sender[:]...)
	out = append(out, U64List(inIDs)...)
	for _, r := range recipients {
		out = append(out, r[:]...)
	}
	return out
}

// CTTransferArgs builds mint/transfer calldata:
// EncodeArgs(inIDs, inComms, outputs, recipients, proof).
func CTTransferArgs(inIDs []uint64, inComms []ct.Commitment, outputs []ct.Output, recipients []chain.Address, proof *ct.Proof) []byte {
	comms := make([]byte, 0, 64*len(inComms))
	for i := range inComms {
		b := inComms[i].Bytes()
		comms = append(comms, b[:]...)
	}
	outs := make([]byte, 0, 224*len(outputs))
	for i := range outputs {
		b := outputs[i].Bytes()
		outs = append(outs, b[:]...)
	}
	recips := make([]byte, 0, 20*len(recipients))
	for _, r := range recipients {
		recips = append(recips, r[:]...)
	}
	return EncodeArgs(U64List(inIDs), comms, outs, recips, proof.Bytes())
}

// DecodeCTTransfer parses mint/transfer calldata. It is stateless (input
// commitments ride in the calldata; the contract checks them against
// storage), so the gossip screen can verify the sigma proof without chain
// state.
func DecodeCTTransfer(args []byte) (*CTTransferDecoded, error) {
	p, err := DecodeArgs(args, 5)
	if err != nil {
		return nil, err
	}
	d := &CTTransferDecoded{}
	if d.InIDs, err = DecU64List(p[0]); err != nil {
		return nil, err
	}
	if len(p[1]) != 64*len(d.InIDs) {
		return nil, fmt.Errorf("%w: %d input ids, %d commitment bytes", ErrBadArgs, len(d.InIDs), len(p[1]))
	}
	d.InComms = make([]ct.Commitment, len(d.InIDs))
	for i := range d.InComms {
		if d.InComms[i], err = ct.CommitmentFromBytes(p[1][64*i : 64*(i+1)]); err != nil {
			return nil, fmt.Errorf("contracts: input %d: %w", i, err)
		}
	}
	if len(p[2]) == 0 || len(p[2])%224 != 0 {
		return nil, fmt.Errorf("%w: output blob of %d bytes", ErrBadArgs, len(p[2]))
	}
	nOut := len(p[2]) / 224
	if nOut > ct.MaxParties || len(d.InIDs) > ct.MaxParties {
		return nil, fmt.Errorf("%w: more than %d parties", ErrBadArgs, ct.MaxParties)
	}
	d.Outputs = make([]ct.Output, nOut)
	for i := range d.Outputs {
		if d.Outputs[i], err = ct.OutputFromBytes(p[2][224*i : 224*(i+1)]); err != nil {
			return nil, fmt.Errorf("contracts: output %d: %w", i, err)
		}
	}
	if len(p[3]) != 20*nOut {
		return nil, fmt.Errorf("%w: %d outputs, %d recipient bytes", ErrBadArgs, nOut, len(p[3]))
	}
	d.Recipients = make([]chain.Address, nOut)
	for i := range d.Recipients {
		copy(d.Recipients[i][:], p[3][20*i:20*(i+1)])
	}
	if d.Proof, err = ct.ProofFromBytes(p[4]); err != nil {
		return nil, fmt.Errorf("contracts: %w", err)
	}
	if len(d.Proof.Outputs) != nOut {
		return nil, fmt.Errorf("%w: proof covers %d outputs, statement has %d", ErrBadArgs, len(d.Proof.Outputs), nOut)
	}
	return d, nil
}

// Statement assembles the ct.Statement a decoded transfer proves.
func (d *CTTransferDecoded) Statement(sender chain.Address, mint bool) *ct.Statement {
	return &ct.Statement{
		Mint:    mint,
		Inputs:  d.InComms,
		Outputs: d.Outputs,
		Context: CTContext(sender, d.InIDs, d.Recipients),
	}
}

// Call dispatches a method invocation.
func (c *ConfidentialToken) Call(ctx *chain.CallContext, method string, args []byte) ([]byte, error) {
	switch method {
	case "mint":
		return c.mintOrTransfer(ctx, args, true)
	case "transfer":
		return c.mintOrTransfer(ctx, args, false)
	case "lock":
		p, err := DecodeArgs(args, 6)
		if err != nil {
			return nil, err
		}
		exID, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		noteID, err := DecU64(p[1])
		if err != nil {
			return nil, err
		}
		tokenID, err := DecU64(p[5])
		if err != nil {
			return nil, err
		}
		return nil, c.lock(ctx, exID, noteID, p[2], p[3], p[4], tokenID)
	case "settle":
		p, err := DecodeArgsVariadic(args)
		if err != nil {
			return nil, err
		}
		if len(p) < 3 {
			return nil, fmt.Errorf("%w: settle wants id, kc, proof…", ErrBadArgs)
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		return nil, c.settle(ctx, id, p[1], p[2:])
	case "refund":
		p, err := DecodeArgs(args, 1)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		return nil, c.refund(ctx, id)
	case "noteOf":
		p, err := DecodeArgs(args, 1)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		owner, status, err := c.loadNote(ctx, id)
		if err != nil {
			return nil, err
		}
		return append(owner[:], status), nil
	default:
		return nil, fmt.Errorf("contracts: confidential token has no method %q", method)
	}
}

func (c *ConfidentialToken) nextNote(ctx *chain.CallContext) (uint64, error) {
	raw, err := ctx.Store.Get("nextNote")
	if err != nil {
		return 0, err
	}
	var id uint64 = 1
	if len(raw) == 8 {
		id, _ = DecU64(raw)
	}
	if err := ctx.Store.Set("nextNote", U64(id+1)); err != nil {
		return 0, err
	}
	return id, nil
}

func (c *ConfidentialToken) loadNote(ctx *chain.CallContext, id uint64) (chain.Address, byte, error) {
	raw, err := ctx.Store.Get(noteKey(id, "owner"))
	if err != nil {
		return chain.Address{}, 0, err
	}
	if len(raw) != 21 {
		return chain.Address{}, 0, fmt.Errorf("%w: %d", ErrUnknownNote, id)
	}
	var owner chain.Address
	copy(owner[:], raw[:20])
	return owner, raw[20], nil
}

func (c *ConfidentialToken) setNoteOwner(ctx *chain.CallContext, id uint64, owner chain.Address, status byte) error {
	return ctx.Store.Set(noteKey(id, "owner"), append(append([]byte{}, owner[:]...), status))
}

// mintOrTransfer is the shared proof-carrying path. mint requires the
// issuer and no inputs; transfer requires the sender to own every input
// note unspent.
func (c *ConfidentialToken) mintOrTransfer(ctx *chain.CallContext, args []byte, mint bool) ([]byte, error) {
	d, err := DecodeCTTransfer(args)
	if err != nil {
		return nil, err
	}
	if mint {
		if ctx.Sender != c.issuer {
			return nil, ErrCTNotIssuer
		}
		if len(d.InIDs) != 0 {
			return nil, fmt.Errorf("%w: mint with inputs", ErrBadArgs)
		}
	} else if len(d.InIDs) == 0 {
		return nil, fmt.Errorf("%w: transfer without inputs", ErrBadArgs)
	}

	// Inputs: owned by the sender, unspent, and the calldata commitments
	// (which the proof was verified against) match storage.
	seen := make(map[uint64]bool, len(d.InIDs))
	for i, id := range d.InIDs {
		if seen[id] {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateInput, id)
		}
		seen[id] = true
		owner, status, err := c.loadNote(ctx, id)
		if err != nil {
			return nil, err
		}
		if owner != ctx.Sender {
			return nil, fmt.Errorf("%w: note %d", ErrNotNoteOwner, id)
		}
		if status != noteUnspent {
			return nil, fmt.Errorf("%w: note %d", ErrNoteUnavailable, id)
		}
		stored, err := ctx.Store.Get(noteKey(id, "comm"))
		if err != nil {
			return nil, err
		}
		cb := d.InComms[i].Bytes()
		if !bytes.Equal(stored, cb[:]) {
			return nil, fmt.Errorf("%w: note %d commitment mismatch", ErrBadArgs, id)
		}
	}

	// Sigma verification: balance + auditor-ciphertext consistency.
	if err := ctx.Gas.Charge(CTSigmaGas(len(d.InIDs), len(d.Outputs))); err != nil {
		return nil, err
	}
	st := d.Statement(ctx.Sender, mint)
	if err := ct.VerifySigma(c.params, &c.auditor, st, d.Proof); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCTProofRejected, err)
	}

	// Range proofs: one π_ct per output through the verifier contract —
	// amortized gas when the seal-time batch pre-verified the calldata.
	e := ct.Challenge(c.params, &c.auditor, st, d.Proof)
	for i := range d.Proof.Outputs {
		op := &d.Proof.Outputs[i]
		if op.Range == nil {
			return nil, fmt.Errorf("%w: output %d missing range proof", ErrCTProofRejected, i)
		}
		vargs := VerifyArgs(op.Range, ct.RangePublics(e, op.ZV, op.PT))
		if _, err := ctx.CallContract(c.rangeVerifierName, "verify", vargs); err != nil {
			return nil, fmt.Errorf("%w: output %d range: %w", ErrCTProofRejected, i, err)
		}
	}

	// Spend inputs, create outputs.
	for _, id := range d.InIDs {
		if err := c.setNoteOwner(ctx, id, ctx.Sender, noteSpent); err != nil {
			return nil, err
		}
	}
	outIDs := make([]uint64, len(d.Outputs))
	for i := range d.Outputs {
		id, err := c.nextNote(ctx)
		if err != nil {
			return nil, err
		}
		outIDs[i] = id
		if err := c.setNoteOwner(ctx, id, d.Recipients[i], noteUnspent); err != nil {
			return nil, err
		}
		cb := d.Outputs[i].C.Bytes()
		if err := ctx.Store.Set(noteKey(id, "comm"), cb[:]); err != nil {
			return nil, err
		}
		ab := d.Outputs[i].Audit.Bytes()
		if err := ctx.Store.Set(noteKey(id, "audit"), ab[:]); err != nil {
			return nil, err
		}
		// Lineage events carry the commitment digest, never an amount.
		digest := d.Outputs[i].C.Digest()
		if err := ctx.EmitIndexed("CTNote", U64(id), EncodeArgs(U64(id), d.Recipients[i][:], digest[:])); err != nil {
			return nil, err
		}
	}
	event := "CTTransfer"
	if mint {
		event = "CTMint"
	}
	if err := ctx.EmitIndexed(event, U64(outIDs[0]), EncodeArgs(U64List(d.InIDs), U64List(outIDs))); err != nil {
		return nil, err
	}
	return U64List(outIDs), nil
}

// lock opens a confidential escrow: the buyer's note becomes the locked
// payment for tokenId's key-secure exchange (same two-phase protocol as
// the public escrow, but the price is a commitment).
func (c *ConfidentialToken) lock(ctx *chain.CallContext, exID, noteID uint64, seller, hv, kc []byte, tokenID uint64) error {
	if exists, err := ctx.Store.Has(ctExKey(exID, "status")); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %d", ErrExchangeExists, exID)
	}
	if len(seller) != 20 {
		return fmt.Errorf("%w: bad seller address", ErrBadArgs)
	}
	owner, status, err := c.loadNote(ctx, noteID)
	if err != nil {
		return err
	}
	if owner != ctx.Sender {
		return fmt.Errorf("%w: note %d", ErrNotNoteOwner, noteID)
	}
	if status != noteUnspent {
		return fmt.Errorf("%w: note %d", ErrNoteUnavailable, noteID)
	}
	if err := c.setNoteOwner(ctx, noteID, owner, noteLocked); err != nil {
		return err
	}
	if err := ctx.Store.Set(ctExKey(exID, "status"), []byte{statusOpen}); err != nil {
		return err
	}
	if err := ctx.Store.Set(ctExKey(exID, "buyer"), ctx.Sender[:]); err != nil {
		return err
	}
	if err := ctx.Store.Set(ctExKey(exID, "seller"), seller); err != nil {
		return err
	}
	if err := ctx.Store.Set(ctExKey(exID, "note"), U64(noteID)); err != nil {
		return err
	}
	if err := ctx.Store.Set(ctExKey(exID, "token"), U64(tokenID)); err != nil {
		return err
	}
	if err := ctx.Store.Set(ctExKey(exID, "hv"), hv); err != nil {
		return err
	}
	if err := ctx.Store.Set(ctExKey(exID, "c"), kc); err != nil {
		return err
	}
	if err := ctx.Store.Set(ctExKey(exID, "deadline"), U64(ctx.BlockNumber()+c.timeoutBlocks)); err != nil {
		return err
	}
	// The exchange index makes confidential settlements enumerable for
	// the auditor without an event indexer.
	idxRaw, err := ctx.Store.Get("ctex/index")
	if err != nil {
		return err
	}
	ids, _ := DecU64List(idxRaw)
	if err := ctx.Store.Set("ctex/index", U64List(append(ids, exID))); err != nil {
		return err
	}
	comm, err := ctx.Store.Get(noteKey(noteID, "comm"))
	if err != nil {
		return err
	}
	return ctx.EmitIndexed("CTOpened", U64(exID),
		EncodeArgs(U64(exID), U64(tokenID), U64(noteID), seller, comm))
}

// settle completes a confidential escrow: the seller proves π_k exactly
// as in the public escrow, and the locked note changes hands instead of a
// native-value payout.
func (c *ConfidentialToken) settle(ctx *chain.CallContext, exID uint64, kc []byte, verifyParts [][]byte) error {
	status, err := ctx.Store.Get(ctExKey(exID, "status"))
	if err != nil {
		return err
	}
	if len(status) == 0 {
		return fmt.Errorf("%w: %d", ErrUnknownExchange, exID)
	}
	if status[0] != statusOpen {
		return fmt.Errorf("%w: %d", ErrExchangeSettled, exID)
	}
	seller, err := ctx.Store.Get(ctExKey(exID, "seller"))
	if err != nil {
		return err
	}
	if ctx.Sender != chain.Address([20]byte(seller)) {
		return fmt.Errorf("%w: %d", ErrNotSeller, exID)
	}
	deadlineRaw, err := ctx.Store.Get(ctExKey(exID, "deadline"))
	if err != nil {
		return err
	}
	deadline, _ := DecU64(deadlineRaw)
	if ctx.BlockNumber() > deadline {
		return fmt.Errorf("%w: %d", ErrDeadlinePassed, exID)
	}
	hv, err := ctx.Store.Get(ctExKey(exID, "hv"))
	if err != nil {
		return err
	}
	ckc, err := ctx.Store.Get(ctExKey(exID, "c"))
	if err != nil {
		return err
	}
	if len(verifyParts) != 4 { // proof, kc, c, hv
		return fmt.Errorf("%w: settle proof wants (proof, kc, c, hv)", ErrBadArgs)
	}
	if !bytes.Equal(verifyParts[1], kc) || !bytes.Equal(verifyParts[2], ckc) || !bytes.Equal(verifyParts[3], hv) {
		return fmt.Errorf("%w: public inputs do not match exchange state", ErrBadArgs)
	}
	if _, err := ctx.CallContract(c.pikVerifierName, "verify", EncodeArgs(verifyParts...)); err != nil {
		return fmt.Errorf("contracts: π_k verification: %w", err)
	}
	noteRaw, err := ctx.Store.Get(ctExKey(exID, "note"))
	if err != nil {
		return err
	}
	noteID, _ := DecU64(noteRaw)
	if err := c.setNoteOwner(ctx, noteID, chain.Address([20]byte(seller)), noteUnspent); err != nil {
		return err
	}
	if err := ctx.Store.Set(ctExKey(exID, "status"), []byte{statusSettled}); err != nil {
		return err
	}
	if err := ctx.Store.Set(ctExKey(exID, "kc"), kc); err != nil {
		return err
	}
	tokenRaw, err := ctx.Store.Get(ctExKey(exID, "token"))
	if err != nil {
		return err
	}
	tokenID, _ := DecU64(tokenRaw)
	return ctx.EmitIndexed("CTSettled", U64(exID),
		EncodeArgs(U64(exID), U64(tokenID), U64(noteID), kc))
}

// refund returns a locked note to the buyer after the deadline.
func (c *ConfidentialToken) refund(ctx *chain.CallContext, exID uint64) error {
	status, err := ctx.Store.Get(ctExKey(exID, "status"))
	if err != nil {
		return err
	}
	if len(status) == 0 {
		return fmt.Errorf("%w: %d", ErrUnknownExchange, exID)
	}
	if status[0] != statusOpen {
		return fmt.Errorf("%w: %d", ErrExchangeSettled, exID)
	}
	buyer, err := ctx.Store.Get(ctExKey(exID, "buyer"))
	if err != nil {
		return err
	}
	if ctx.Sender != chain.Address([20]byte(buyer)) {
		return fmt.Errorf("%w: %d", ErrNotBuyer, exID)
	}
	deadlineRaw, err := ctx.Store.Get(ctExKey(exID, "deadline"))
	if err != nil {
		return err
	}
	deadline, _ := DecU64(deadlineRaw)
	if ctx.BlockNumber() <= deadline {
		return fmt.Errorf("%w: %d", ErrDeadlineNotReached, exID)
	}
	noteRaw, err := ctx.Store.Get(ctExKey(exID, "note"))
	if err != nil {
		return err
	}
	noteID, _ := DecU64(noteRaw)
	if err := c.setNoteOwner(ctx, noteID, chain.Address([20]byte(buyer)), noteUnspent); err != nil {
		return err
	}
	if err := ctx.Store.Set(ctExKey(exID, "status"), []byte{statusRefunded}); err != nil {
		return err
	}
	return ctx.EmitIndexed("CTRefunded", U64(exID), EncodeArgs(U64(exID), U64(noteID)))
}

var _ chain.RWDeclarer = (*ConfidentialToken)(nil)

// DeclareRW implements chain.RWDeclarer: always serial-only. mint and
// transfer consume the range verifier's seal-time pre-verification marks
// through a sub-call (the same spend-once side effect that pins the
// Verifier contract serial), and the escrow methods resolve their
// participants from storage at run time.
func (c *ConfidentialToken) DeclareRW(sender chain.Address, method string, args []byte, value uint64) (chain.RWDecl, bool) {
	return chain.RWDecl{}, false
}

// ReadCTNote decodes a note's public record from chain storage without
// gas (off-chain view).
func ReadCTNote(c *chain.Chain, contractName string, id uint64) (*CTNote, error) {
	raw := c.ReadStorage(contractName, noteKey(id, "owner"))
	if len(raw) != 21 {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNote, id)
	}
	n := &CTNote{ID: id, Status: raw[20]}
	copy(n.Owner[:], raw[:20])
	var err error
	if n.Comm, err = ct.CommitmentFromBytes(c.ReadStorage(contractName, noteKey(id, "comm"))); err != nil {
		return nil, fmt.Errorf("contracts: note %d: %w", id, err)
	}
	if n.Audit, err = ct.AuditCipherFromBytes(c.ReadStorage(contractName, noteKey(id, "audit"))); err != nil {
		return nil, fmt.Errorf("contracts: note %d: %w", id, err)
	}
	return n, nil
}

// ReadCTSettledKc returns the committed key published by a settled
// confidential exchange (off-chain view for the buyer).
func ReadCTSettledKc(c *chain.Chain, contractName string, exID uint64) ([]byte, error) {
	status := c.ReadStorage(contractName, ctExKey(exID, "status"))
	if len(status) == 0 {
		return nil, fmt.Errorf("%w: %d", ErrUnknownExchange, exID)
	}
	if status[0] != statusSettled {
		return nil, fmt.Errorf("%w: exchange %d not settled", ErrBadArgs, exID)
	}
	return c.ReadStorage(contractName, ctExKey(exID, "kc")), nil
}

// CTSettlement is one settled (or still open) confidential exchange, as
// enumerated for the auditor.
type CTSettlement struct {
	ExchangeID uint64
	TokenID    uint64
	NoteID     uint64
	Settled    bool
}

// ReadCTSettlements enumerates every confidential exchange recorded by
// the contract, in lock order (off-chain view; the auditor joins these
// against a token's lineage).
func ReadCTSettlements(c *chain.Chain, contractName string) ([]CTSettlement, error) {
	ids, err := DecU64List(c.ReadStorage(contractName, "ctex/index"))
	if err != nil {
		return nil, fmt.Errorf("contracts: exchange index: %w", err)
	}
	out := make([]CTSettlement, 0, len(ids))
	for _, exID := range ids {
		status := c.ReadStorage(contractName, ctExKey(exID, "status"))
		if len(status) == 0 {
			continue
		}
		tokenID, _ := DecU64(c.ReadStorage(contractName, ctExKey(exID, "token")))
		noteID, _ := DecU64(c.ReadStorage(contractName, ctExKey(exID, "note")))
		out = append(out, CTSettlement{
			ExchangeID: exID,
			TokenID:    tokenID,
			NoteID:     noteID,
			Settled:    status[0] == statusSettled,
		})
	}
	return out, nil
}
