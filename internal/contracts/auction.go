package contracts

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/chain"
)

// AuctionName is the canonical deployment name of the auction contract.
const AuctionName = "zkdet-auction"

// AuctionCodeSize approximates the contract's code size for deployment gas.
const AuctionCodeSize = 1800

// Auction errors.
var (
	ErrListingExists  = errors.New("contracts: token already listed")
	ErrUnknownListing = errors.New("contracts: unknown listing")
	ErrBidTooLow      = errors.New("contracts: bid below current price")
	ErrNotLister      = errors.New("contracts: caller did not create listing")
)

// ClockAuction is the descending-price ("clock") auction of §III-C: a
// seller locks a token for sale, the price declines linearly from start to
// end price over a block window, and the first sufficient bid wins. The
// seller must approve the auction contract as the token's operator first.
//
// Methods:
//
//	create(tokenId, startPrice, endPrice, durationBlocks)
//	bid(tokenId)                       (payable)
//	cancel(tokenId)
//	price(tokenId) → u64               (view)
type ClockAuction struct {
	nftName string
}

var _ chain.Contract = (*ClockAuction)(nil)

// NewClockAuction creates an auction bound to an NFT deployment.
func NewClockAuction(nftName string) *ClockAuction {
	return &ClockAuction{nftName: nftName}
}

func listKey(id uint64, field string) string { return fmt.Sprintf("listing/%d/%s", id, field) }

// Call dispatches a method invocation.
func (a *ClockAuction) Call(ctx *chain.CallContext, method string, args []byte) ([]byte, error) {
	switch method {
	case "create":
		p, err := DecodeArgs(args, 4)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		start, err := DecU64(p[1])
		if err != nil {
			return nil, err
		}
		end, err := DecU64(p[2])
		if err != nil {
			return nil, err
		}
		dur, err := DecU64(p[3])
		if err != nil {
			return nil, err
		}
		return nil, a.create(ctx, id, start, end, dur)
	case "bid":
		p, err := DecodeArgs(args, 1)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		return nil, a.bid(ctx, id)
	case "cancel":
		p, err := DecodeArgs(args, 1)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		return nil, a.cancel(ctx, id)
	case "price":
		p, err := DecodeArgs(args, 1)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		price, err := a.currentPrice(ctx, id)
		if err != nil {
			return nil, err
		}
		return U64(price), nil
	default:
		return nil, fmt.Errorf("contracts: auction has no method %q", method)
	}
}

func (a *ClockAuction) create(ctx *chain.CallContext, id, start, end, dur uint64) error {
	if exists, err := ctx.Store.Has(listKey(id, "seller")); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %d", ErrListingExists, id)
	}
	if end > start {
		return fmt.Errorf("%w: end price above start price", ErrBadArgs)
	}
	if dur == 0 {
		return fmt.Errorf("%w: zero duration", ErrBadArgs)
	}
	if err := ctx.Store.Set(listKey(id, "seller"), ctx.Sender[:]); err != nil {
		return err
	}
	if err := ctx.Store.Set(listKey(id, "terms"), EncodeArgs(U64(start), U64(end), U64(dur), U64(ctx.BlockNumber()))); err != nil {
		return err
	}
	return ctx.EmitIndexed("Listed", U64(id), EncodeArgs(U64(id), U64(start), U64(end), U64(dur)))
}

func (a *ClockAuction) terms(ctx *chain.CallContext, id uint64) (seller chain.Address, start, end, dur, createdAt uint64, err error) {
	sellerRaw, err := ctx.Store.Get(listKey(id, "seller"))
	if err != nil {
		return
	}
	if len(sellerRaw) != 20 {
		err = fmt.Errorf("%w: %d", ErrUnknownListing, id)
		return
	}
	copy(seller[:], sellerRaw)
	termsRaw, err := ctx.Store.Get(listKey(id, "terms"))
	if err != nil {
		return
	}
	parts, err := DecodeArgs(termsRaw, 4)
	if err != nil {
		return
	}
	start, _ = DecU64(parts[0])
	end, _ = DecU64(parts[1])
	dur, _ = DecU64(parts[2])
	createdAt, _ = DecU64(parts[3])
	return
}

func (a *ClockAuction) currentPrice(ctx *chain.CallContext, id uint64) (uint64, error) {
	_, start, end, dur, createdAt, err := a.terms(ctx, id)
	if err != nil {
		return 0, err
	}
	elapsed := ctx.BlockNumber() - createdAt
	if elapsed >= dur {
		return end, nil
	}
	// Linear decay from start to end over dur blocks.
	return start - (start-end)*elapsed/dur, nil
}

func (a *ClockAuction) bid(ctx *chain.CallContext, id uint64) error {
	seller, _, _, _, _, err := a.terms(ctx, id)
	if err != nil {
		return err
	}
	price, err := a.currentPrice(ctx, id)
	if err != nil {
		return err
	}
	if ctx.Value < price {
		return fmt.Errorf("%w: offered %d, need %d", ErrBidTooLow, ctx.Value, price)
	}
	// Move the token: the auction must have been approved as operator.
	if _, err := ctx.CallContract(a.nftName, "transferFrom",
		EncodeArgs(U64(id), seller[:], ctx.Sender[:])); err != nil {
		return err
	}
	// Pay the seller the clearing price; refund any excess to the bidder.
	if err := ctx.Transfer(seller, price); err != nil {
		return err
	}
	if ctx.Value > price {
		if err := ctx.Transfer(ctx.Sender, ctx.Value-price); err != nil {
			return err
		}
	}
	if err := ctx.Store.Delete(listKey(id, "seller")); err != nil {
		return err
	}
	if err := ctx.Store.Delete(listKey(id, "terms")); err != nil {
		return err
	}
	return ctx.EmitIndexed("Sold", U64(id), EncodeArgs(U64(id), ctx.Sender[:], U64(price)))
}

func (a *ClockAuction) cancel(ctx *chain.CallContext, id uint64) error {
	seller, _, _, _, _, err := a.terms(ctx, id)
	if err != nil {
		return err
	}
	if seller != ctx.Sender {
		return fmt.Errorf("%w: %d", ErrNotLister, id)
	}
	if err := ctx.Store.Delete(listKey(id, "seller")); err != nil {
		return err
	}
	if err := ctx.Store.Delete(listKey(id, "terms")); err != nil {
		return err
	}
	return ctx.EmitIndexed("Cancelled", U64(id), EncodeArgs(U64(id)))
}
