package contracts

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/ct"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/plonk"
)

// ctSystem builds the expensive pieces once: the range-table SRS, the
// π_ct prover, and the auditor key pair.
var ctSystem = sync.OnceValue(func() (out struct {
	params *ct.Params
	prover *ct.RangeProver
	vk     *plonk.VerifyingKey
	ak     *ct.AuditorKey
	pub    bn254.G1Affine
}) {
	tau := fr.NewElement(0x5eed2025)
	srs, err := kzg.NewSRSFromSecret(4*4096+16, &tau)
	if err != nil {
		panic(err)
	}
	out.params = ct.DefaultParams()
	out.prover = ct.NewRangeProver(srs)
	if out.vk, err = out.prover.VK(); err != nil {
		panic(err)
	}
	out.ak = ct.AuditorKeyFromSecret(fr.NewElement(0xc0ffee))
	out.pub = out.ak.PublicKey()
	return out
})

const testPiCTVerifier = "pict-verifier"

// ctEnv deploys the π_ct verifier, a toy π_k verifier (kc = c + hv, as in
// the escrow tests), and the confidential-token contract.
func ctEnv(t *testing.T) (*chain.Chain, chain.Address, chain.Address, chain.Address) {
	t.Helper()
	cs := ctSystem()
	c := chain.New()
	if _, err := c.Deploy(testPiCTVerifier, NewVerifier(cs.vk), VerifierCodeSize); err != nil {
		t.Fatal(err)
	}
	issuer := chain.AddressFromString("issuer")
	if _, err := c.Deploy(ConfidentialTokenName,
		NewConfidentialToken(issuer, cs.pub, testPiCTVerifier, "pik-verifier", 10),
		ConfidentialTokenCodeSize); err != nil {
		t.Fatal(err)
	}
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")
	for _, a := range []chain.Address{issuer, alice, bob} {
		c.Faucet(a, 100_000_000)
	}
	return c, issuer, alice, bob
}

// ctProve builds a proof for the statement (sender, inIDs, inComms) →
// outputs to recipients and returns the transfer calldata.
func ctProve(t *testing.T, sender chain.Address, mint bool, inIDs []uint64,
	ins []ct.Opening, outs []ct.OutputSecret, recipients []chain.Address) []byte {
	t.Helper()
	cs := ctSystem()
	st := &ct.Statement{Mint: mint, Context: CTContext(sender, inIDs, recipients)}
	inComms := make([]ct.Commitment, len(ins))
	for i := range ins {
		inComms[i] = cs.params.Commit(ins[i].V, &ins[i].R)
	}
	st.Inputs = inComms
	for i := range outs {
		st.Outputs = append(st.Outputs, cs.params.NewOutput(&cs.pub, outs[i].V, &outs[i].R, &outs[i].Rho))
	}
	proof, err := ct.Prove(cs.params, cs.prover, &cs.pub, st, ins, outs, nil)
	if err != nil {
		t.Fatalf("ct prove: %v", err)
	}
	return CTTransferArgs(inIDs, inComms, st.Outputs, recipients, proof)
}

func TestConfidentialMintTransferLifecycle(t *testing.T) {
	c, issuer, alice, bob := ctEnv(t)
	cs := ctSystem()

	// Issuer mints a 100-unit note to alice.
	mintSecret := []ct.OutputSecret{{V: 100, R: fr.NewElement(11), Rho: fr.NewElement(12)}}
	args := ctProve(t, issuer, true, nil, nil, mintSecret, []chain.Address{alice})
	r := mustSucceed(t, call(t, c, issuer, ConfidentialTokenName, "mint", 0, args))
	ids, err := DecU64List(r.Return)
	if err != nil || len(ids) != 1 {
		t.Fatalf("mint returned %v, %v", ids, err)
	}

	// Non-issuer mint is rejected.
	badMint := ctProve(t, alice, true, nil, nil,
		[]ct.OutputSecret{{V: 5, R: fr.NewElement(1), Rho: fr.NewElement(2)}}, []chain.Address{alice})
	if r := call(t, c, alice, ConfidentialTokenName, "mint", 0, badMint); r.Err == nil {
		t.Fatal("non-issuer mint succeeded")
	}

	// The note's public record hides the amount: commitment + cipher only.
	note, err := ReadCTNote(c, ConfidentialTokenName, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if note.Owner != alice {
		t.Fatalf("note owner %x", note.Owner)
	}
	if !note.Comm.Equal(cs.params.Commit(100, &mintSecret[0].R)) {
		t.Fatal("stored commitment mismatch")
	}

	// The auditor — and only the auditor — opens the amount.
	op, err := cs.ak.Open(cs.params, note.Comm, &note.Audit)
	if err != nil || op.V != 100 {
		t.Fatalf("auditor open: v=%d err=%v", op.V, err)
	}

	// Alice splits her note: 75 to bob, 25 back to herself.
	inOpening := []ct.Opening{{V: 100, R: mintSecret[0].R}}
	outSecrets := []ct.OutputSecret{
		{V: 75, R: fr.NewElement(21), Rho: fr.NewElement(22)},
		{V: 25, R: fr.NewElement(23), Rho: fr.NewElement(24)},
	}
	recips := []chain.Address{bob, alice}
	targs := ctProve(t, alice, false, ids, inOpening, outSecrets, recips)
	r = mustSucceed(t, call(t, c, alice, ConfidentialTokenName, "transfer", 0, targs))
	outIDs, err := DecU64List(r.Return)
	if err != nil || len(outIDs) != 2 {
		t.Fatalf("transfer returned %v, %v", outIDs, err)
	}

	// Non-auditors see only commitments; the auditor opens both outputs
	// and the values conserve the input.
	n1, err := ReadCTNote(c, ConfidentialTokenName, outIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	n2, err := ReadCTNote(c, ConfidentialTokenName, outIDs[1])
	if err != nil {
		t.Fatal(err)
	}
	if n1.Owner != bob || n2.Owner != alice {
		t.Fatal("transfer recipients wrong")
	}
	o1, err := cs.ak.Open(cs.params, n1.Comm, &n1.Audit)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := cs.ak.Open(cs.params, n2.Comm, &n2.Audit)
	if err != nil {
		t.Fatal(err)
	}
	if o1.V != 75 || o2.V != 25 {
		t.Fatalf("auditor opened %d + %d, want 75 + 25", o1.V, o2.V)
	}

	// The spent input cannot be spent again.
	replay := ctProve(t, alice, false, ids, inOpening, outSecrets, recips)
	if r := call(t, c, alice, ConfidentialTokenName, "transfer", 0, replay); r.Err == nil {
		t.Fatal("double spend succeeded")
	} else if !errors.Is(r.Err, chain.ErrReverted) {
		t.Fatalf("double spend error %v", r.Err)
	}

	// Bob cannot spend a note he does not own.
	steal := ctProve(t, bob, false, []uint64{outIDs[1]},
		[]ct.Opening{{V: 25, R: outSecrets[1].R}},
		[]ct.OutputSecret{{V: 25, R: fr.NewElement(31), Rho: fr.NewElement(32)}},
		[]chain.Address{bob})
	if r := call(t, c, bob, ConfidentialTokenName, "transfer", 0, steal); r.Err == nil {
		t.Fatal("theft succeeded")
	}
}

func TestConfidentialTransferRejectsForgery(t *testing.T) {
	c, issuer, alice, bob := ctEnv(t)

	mintSecret := []ct.OutputSecret{{V: 50, R: fr.NewElement(41), Rho: fr.NewElement(42)}}
	args := ctProve(t, issuer, true, nil, nil, mintSecret, []chain.Address{alice})
	r := mustSucceed(t, call(t, c, issuer, ConfidentialTokenName, "mint", 0, args))
	ids, _ := DecU64List(r.Return)

	inOpening := []ct.Opening{{V: 50, R: mintSecret[0].R}}
	outSecrets := []ct.OutputSecret{{V: 50, R: fr.NewElement(43), Rho: fr.NewElement(44)}}
	good := ctProve(t, alice, false, ids, inOpening, outSecrets, []chain.Address{bob})

	// Redirecting the payment to a different recipient breaks the
	// Fiat–Shamir context: same proof bytes, different statement.
	d, err := DecodeCTTransfer(good)
	if err != nil {
		t.Fatal(err)
	}
	redirected := CTTransferArgs(d.InIDs, d.InComms, d.Outputs, []chain.Address{alice}, d.Proof)
	if r := call(t, c, alice, ConfidentialTokenName, "transfer", 0, redirected); r.Err == nil {
		t.Fatal("recipient redirect accepted")
	}

	// Corrupting a sigma response is caught by the in-contract check.
	var one fr.Element
	one.SetOne()
	d.Proof.Outputs[0].ZR.Add(&d.Proof.Outputs[0].ZR, &one)
	tampered := CTTransferArgs(d.InIDs, d.InComms, d.Outputs, []chain.Address{bob}, d.Proof)
	if r := call(t, c, alice, ConfidentialTokenName, "transfer", 0, tampered); r.Err == nil {
		t.Fatal("tampered sigma accepted")
	}

	// Lying about the input commitment (claiming a richer note) fails the
	// storage cross-check even though the sigma proof self-verifies.
	cs := ctSystem()
	fatIn := []ct.Opening{{V: 90, R: fr.NewElement(45)}}
	fatOut := []ct.OutputSecret{{V: 90, R: fr.NewElement(46), Rho: fr.NewElement(47)}}
	forged := ctProve(t, alice, false, ids, fatIn, fatOut, []chain.Address{bob})
	if r := call(t, c, alice, ConfidentialTokenName, "transfer", 0, forged); r.Err == nil {
		t.Fatal("input commitment substitution accepted")
	}
	_ = cs

	// The honest transfer still goes through afterwards.
	mustSucceed(t, call(t, c, alice, ConfidentialTokenName, "transfer", 0, good))
}

// deployToyPiK deploys the 3-public toy π_k verifier (kc = c + hv) and
// returns matching (proof, kc, c, hv) verify parts.
func deployToyPiK(t *testing.T, c *chain.Chain) [][]byte {
	t.Helper()
	tau := fr.NewElement(0xdef)
	srs, err := kzg.NewSRSFromSecret(64, &tau)
	if err != nil {
		t.Fatal(err)
	}
	sys := plonk.NewConstraintSystem(3)
	minusOne := fr.NewFromInt64(-1)
	sys.MustAddGate(plonk.Gate{QL: fr.One(), QR: fr.One(), QO: minusOne, A: 1, B: 2, C: 0})
	kcv, cv, hvv := fr.NewElement(30), fr.NewElement(10), fr.NewElement(20)
	pk, vk, err := plonk.Setup(sys, srs)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := plonk.Prove(pk, []fr.Element{kcv, cv, hvv})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("pik-verifier", NewVerifier(vk), VerifierCodeSize); err != nil {
		t.Fatal(err)
	}
	kcB, cB, hvB := kcv.Bytes(), cv.Bytes(), hvv.Bytes()
	return [][]byte{proof.Bytes(), kcB[:], cB[:], hvB[:]}
}

func TestConfidentialEscrowSettle(t *testing.T) {
	c, issuer, alice, seller := ctEnv(t)
	parts := deployToyPiK(t, c)

	// Alice holds a confidential note worth 500.
	mintSecret := []ct.OutputSecret{{V: 500, R: fr.NewElement(51), Rho: fr.NewElement(52)}}
	args := ctProve(t, issuer, true, nil, nil, mintSecret, []chain.Address{alice})
	r := mustSucceed(t, call(t, c, issuer, ConfidentialTokenName, "mint", 0, args))
	ids, _ := DecU64List(r.Return)

	// She locks it as payment for token 7's key-secure exchange.
	mustSucceed(t, call(t, c, alice, ConfidentialTokenName, "lock", 0,
		EncodeArgs(U64(1), U64(ids[0]), seller[:], parts[3], parts[2], U64(7))))

	// Locked notes cannot be spent.
	spend := ctProve(t, alice, false, ids,
		[]ct.Opening{{V: 500, R: mintSecret[0].R}},
		[]ct.OutputSecret{{V: 500, R: fr.NewElement(53), Rho: fr.NewElement(54)}},
		[]chain.Address{alice})
	if r := call(t, c, alice, ConfidentialTokenName, "transfer", 0, spend); r.Err == nil {
		t.Fatal("locked note spent")
	}
	// Double lock of the same exchange id is rejected.
	if r := call(t, c, alice, ConfidentialTokenName, "lock", 0,
		EncodeArgs(U64(1), U64(ids[0]), seller[:], parts[3], parts[2], U64(7))); r.Err == nil {
		t.Fatal("duplicate exchange opened")
	}

	// A stranger cannot settle; the seller can, with a valid π_k.
	settleArgs := EncodeArgs(U64(1), parts[1], parts[0], parts[1], parts[2], parts[3])
	if r := call(t, c, alice, ConfidentialTokenName, "settle", 0, settleArgs); r.Err == nil {
		t.Fatal("buyer settled own exchange")
	}
	badParts := EncodeArgs(U64(1), parts[1], parts[0], parts[1], parts[2], parts[1])
	if r := call(t, c, seller, ConfidentialTokenName, "settle", 0, badParts); r.Err == nil {
		t.Fatal("settle with mismatched publics succeeded")
	}
	mustSucceed(t, call(t, c, seller, ConfidentialTokenName, "settle", 0, settleArgs))

	// The note now belongs to the seller, spendable again.
	note, err := ReadCTNote(c, ConfidentialTokenName, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if note.Owner != seller || note.Status != 1 {
		t.Fatalf("settled note owner=%x status=%d", note.Owner, note.Status)
	}

	// Settlement is enumerable for the auditor.
	settlements, err := ReadCTSettlements(c, ConfidentialTokenName)
	if err != nil {
		t.Fatal(err)
	}
	if len(settlements) != 1 || !settlements[0].Settled ||
		settlements[0].TokenID != 7 || settlements[0].NoteID != ids[0] {
		t.Fatalf("settlements %+v", settlements)
	}

	// Double settle rejected.
	if r := call(t, c, seller, ConfidentialTokenName, "settle", 0, settleArgs); r.Err == nil {
		t.Fatal("double settle succeeded")
	}
}

func TestConfidentialEscrowRefund(t *testing.T) {
	c, issuer, alice, seller := ctEnv(t)
	parts := deployToyPiK(t, c)

	mintSecret := []ct.OutputSecret{{V: 5, R: fr.NewElement(61), Rho: fr.NewElement(62)}}
	args := ctProve(t, issuer, true, nil, nil, mintSecret, []chain.Address{alice})
	r := mustSucceed(t, call(t, c, issuer, ConfidentialTokenName, "mint", 0, args))
	ids, _ := DecU64List(r.Return)

	mustSucceed(t, call(t, c, alice, ConfidentialTokenName, "lock", 0,
		EncodeArgs(U64(2), U64(ids[0]), seller[:], parts[3], parts[2], U64(9))))

	// Early refund and stranger refund rejected.
	if r := call(t, c, alice, ConfidentialTokenName, "refund", 0, EncodeArgs(U64(2))); r.Err == nil {
		t.Fatal("early refund succeeded")
	}
	for i := 0; i < 12; i++ {
		c.SealBlock()
	}
	if r := call(t, c, seller, ConfidentialTokenName, "refund", 0, EncodeArgs(U64(2))); r.Err == nil {
		t.Fatal("seller refunded buyer's note")
	}
	mustSucceed(t, call(t, c, alice, ConfidentialTokenName, "refund", 0, EncodeArgs(U64(2))))

	// Note back to alice and unspent; settle after refund rejected.
	note, err := ReadCTNote(c, ConfidentialTokenName, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if note.Owner != alice || note.Status != 1 {
		t.Fatalf("refunded note owner=%x status=%d", note.Owner, note.Status)
	}
	settleArgs := EncodeArgs(U64(2), parts[1], parts[0], parts[1], parts[2], parts[3])
	if r := call(t, c, seller, ConfidentialTokenName, "settle", 0, settleArgs); r.Err == nil {
		t.Fatal("settle after refund succeeded")
	}
}

func TestCTTransferCalldataValidation(t *testing.T) {
	c, issuer, alice, _ := ctEnv(t)
	cases := []struct {
		name string
		args []byte
	}{
		{"empty", nil},
		{"wrong arity", EncodeArgs([]byte{1})},
		{"garbage proof", EncodeArgs(U64List(nil), nil, bytes.Repeat([]byte{0}, 224), make([]byte, 20), []byte("nope"))},
	}
	for _, tc := range cases {
		if r := call(t, c, issuer, ConfidentialTokenName, "mint", 0, tc.args); r.Err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
	}
	// Unknown method and unknown note views.
	if r := call(t, c, alice, ConfidentialTokenName, "nope", 0, nil); r.Err == nil {
		t.Fatal("unknown method accepted")
	}
	if r := call(t, c, alice, ConfidentialTokenName, "noteOf", 0, EncodeArgs(U64(404))); r.Err == nil {
		t.Fatal("unknown note read succeeded")
	}
	if _, err := ReadCTNote(c, ConfidentialTokenName, 404); !errors.Is(err, ErrUnknownNote) {
		t.Fatalf("ReadCTNote(404) = %v", err)
	}
}

// TestBlockProofCheckerConfidential covers the confidential path through
// the seal-time checker: sigma forgeries die at the stateless pre-check,
// valid transfers get every π_ct marked pre-verified (amortised gas), and
// π_ct proofs fold together with proofs from other verifiers on the same
// SRS via AddFor.
func TestBlockProofCheckerConfidential(t *testing.T) {
	cs := ctSystem()
	issuer := chain.AddressFromString("issuer")
	alice := chain.AddressFromString("alice")
	tok := NewConfidentialToken(issuer, cs.pub, testPiCTVerifier, "pik-verifier", 10)
	rangeVerifier := NewVerifier(cs.vk)
	bc := NewBlockProofChecker()
	bc.AddVerifier(testPiCTVerifier, rangeVerifier)
	bc.AddConfidential(ConfidentialTokenName, tok)

	mintArgs := ctProve(t, issuer, true, nil, nil,
		[]ct.OutputSecret{
			{V: 60, R: fr.NewElement(71), Rho: fr.NewElement(72)},
			{V: 40, R: fr.NewElement(73), Rho: fr.NewElement(74)},
		},
		[]chain.Address{alice, alice})
	good := &chain.Transaction{From: issuer, Contract: ConfidentialTokenName, Method: "mint", Args: mintArgs}

	// Forge: flip one sigma response byte.
	d, err := DecodeCTTransfer(mintArgs)
	if err != nil {
		t.Fatal(err)
	}
	var one fr.Element
	one.SetOne()
	d.Proof.Outputs[0].ZV.Add(&d.Proof.Outputs[0].ZV, &one)
	forged := &chain.Transaction{From: issuer, Contract: ConfidentialTokenName, Method: "mint",
		Args: CTTransferArgs(d.InIDs, d.InComms, d.Outputs, []chain.Address{alice, alice}, d.Proof)}

	// Garbage calldata is rejected too (not silently skipped).
	garbage := &chain.Transaction{From: issuer, Contract: ConfidentialTokenName, Method: "mint", Args: []byte("junk")}

	// Unrelated transaction passes through untouched.
	plain := &chain.Transaction{From: alice, Contract: "other", Method: "poke"}

	n, errs := bc.GossipCheck([]*chain.Transaction{good, forged, garbage, plain})
	if n != 1 {
		t.Fatalf("gossip verified %d txs, want 1", n)
	}
	if errs[0] != nil || errs[1] == nil || errs[2] == nil || errs[3] != nil {
		t.Fatalf("gossip errs %v", errs)
	}
	if !errors.Is(errs[1], ErrCTProofRejected) {
		t.Fatalf("forged sigma error %v", errs[1])
	}

	// VerifyBatch marks both outputs' range proofs pre-verified.
	n, errs = bc.VerifyBatch([]*chain.Transaction{good})
	if n != 1 || errs[0] != nil {
		t.Fatalf("seal verified %d, errs %v", n, errs)
	}
	gd, _ := DecodeCTTransfer(mintArgs)
	st := gd.Statement(issuer, true)
	e := ct.Challenge(cs.params, &cs.pub, st, gd.Proof)
	for i := range gd.Proof.Outputs {
		op := &gd.Proof.Outputs[i]
		digest := verifyDigest(VerifyArgs(op.Range, ct.RangePublics(e, op.ZV, op.PT)))
		if _, ok := rangeVerifier.consumePreverified(digest); !ok {
			t.Fatalf("output %d not marked pre-verified", i)
		}
	}
}

// TestCheckerFoldsAcrossVerifiersOnSharedSRS registers two distinct
// verifier contracts whose keys come from the same SRS and confirms one
// batch validates proofs against both (the AddFor path), while a verifier
// on a different SRS still verifies in its own group.
func TestCheckerFoldsAcrossVerifiersOnSharedSRS(t *testing.T) {
	tau := fr.NewElement(0xfeed)
	srs, err := kzg.NewSRSFromSecret(64, &tau)
	if err != nil {
		t.Fatal(err)
	}
	build := func(pub uint64) (*plonk.VerifyingKey, *plonk.Proof, []fr.Element) {
		sys := plonk.NewConstraintSystem(1)
		x := sys.NewVariable()
		y := sys.NewVariable()
		minusOne := fr.NewFromInt64(-1)
		sys.MustAddGate(plonk.Gate{QM: fr.One(), QO: minusOne, A: x, B: y, C: 0})
		w := []fr.Element{fr.NewElement(pub), fr.NewElement(pub), fr.NewElement(1)}
		pk, vk, err := plonk.Setup(sys, srs)
		if err != nil {
			t.Fatal(err)
		}
		proof, err := plonk.Prove(pk, w)
		if err != nil {
			t.Fatal(err)
		}
		return vk, proof, w[:1]
	}
	vkA, proofA, pubA := build(17)
	vkB, proofB, pubB := build(23)

	bc := NewBlockProofChecker()
	bc.AddVerifier("va", NewVerifier(vkA))
	bc.AddVerifier("vb", NewVerifier(vkB))
	// A third verifier on a different SRS.
	tau2 := fr.NewElement(0xf00d)
	srs2, err := kzg.NewSRSFromSecret(64, &tau2)
	if err != nil {
		t.Fatal(err)
	}
	_ = srs2
	txs := []*chain.Transaction{
		{Contract: "va", Method: "verify", Args: VerifyArgs(proofA, pubA)},
		{Contract: "vb", Method: "verify", Args: VerifyArgs(proofB, pubB)},
		{Contract: "vb", Method: "verify", Args: VerifyArgs(breakProof(proofB), pubB)},
	}
	n, errs := bc.GossipCheck(txs)
	if n != 2 {
		t.Fatalf("verified %d txs, want 2", n)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("valid cross-verifier proofs rejected: %v", errs)
	}
	if errs[2] == nil {
		t.Fatal("broken proof survived the shared fold")
	}
}
