package contracts

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/chain"
)

// EscrowName is the canonical deployment name of the arbiter contract.
const EscrowName = "zkdet-escrow"

// EscrowCodeSize approximates the contract's code size for deployment gas.
const EscrowCodeSize = 2200

// Escrow errors.
var (
	ErrExchangeExists     = errors.New("contracts: exchange id already open")
	ErrUnknownExchange    = errors.New("contracts: unknown exchange")
	ErrExchangeSettled    = errors.New("contracts: exchange already settled")
	ErrNotBuyer           = errors.New("contracts: caller is not the buyer")
	ErrNotSeller          = errors.New("contracts: caller is not the seller")
	ErrDeadlineNotReached = errors.New("contracts: refund before deadline")
	ErrDeadlinePassed     = errors.New("contracts: exchange expired")
)

// exchange status values.
const (
	statusOpen     byte = 1
	statusSettled  byte = 2
	statusRefunded byte = 3
)

// Escrow is the arbiter 𝒥 of the key-secure exchange protocol (§IV-F).
// In the key negotiation phase it verifies π_k on-chain — the statement
//
//	Open(k, c, o) = 1 ∧ h_v = H(k_v) ∧ k_c = k + k_v
//
// via the verifier contract — and forwards the locked payment to the seller
// if and only if the proof holds. The key k itself never reaches the chain:
// only the blinded k_c = k + k_v is published, which is useless without the
// buyer's secret k_v (this is the paper's fix to ZKCP's key-disclosure flaw).
//
// Methods:
//
//	open(exchangeId, seller, hv, c)      (buyer; locks msg.value)
//	settle(exchangeId, kc, verifyArgs…)  (seller; pays out on valid π_k)
//	refund(exchangeId)                   (buyer; after the deadline)
type Escrow struct {
	// verifierName is the deployed name of the π_k verifier contract.
	verifierName string
	// timeoutBlocks is the refund deadline in blocks.
	timeoutBlocks uint64
}

var _ chain.Contract = (*Escrow)(nil)

// NewEscrow creates the arbiter bound to a verifier deployment.
func NewEscrow(verifierName string, timeoutBlocks uint64) *Escrow {
	return &Escrow{verifierName: verifierName, timeoutBlocks: timeoutBlocks}
}

func exKey(id uint64, field string) string { return fmt.Sprintf("ex/%d/%s", id, field) }

// Call dispatches a method invocation.
func (e *Escrow) Call(ctx *chain.CallContext, method string, args []byte) ([]byte, error) {
	switch method {
	case "open":
		p, err := DecodeArgs(args, 4)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		return nil, e.open(ctx, id, p[1], p[2], p[3])
	case "settle":
		p, err := DecodeArgsVariadic(args)
		if err != nil {
			return nil, err
		}
		if len(p) < 3 {
			return nil, fmt.Errorf("%w: settle wants id, kc, proof…", ErrBadArgs)
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		return nil, e.settle(ctx, id, p[1], p[2:])
	case "refund":
		p, err := DecodeArgs(args, 1)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		return nil, e.refund(ctx, id)
	default:
		return nil, fmt.Errorf("contracts: escrow has no method %q", method)
	}
}

func (e *Escrow) open(ctx *chain.CallContext, id uint64, seller, hv, c []byte) error {
	if exists, err := ctx.Store.Has(exKey(id, "status")); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %d", ErrExchangeExists, id)
	}
	if len(seller) != 20 {
		return fmt.Errorf("%w: bad seller address", ErrBadArgs)
	}
	if err := ctx.Store.Set(exKey(id, "status"), []byte{statusOpen}); err != nil {
		return err
	}
	if err := ctx.Store.Set(exKey(id, "buyer"), ctx.Sender[:]); err != nil {
		return err
	}
	if err := ctx.Store.Set(exKey(id, "seller"), seller); err != nil {
		return err
	}
	if err := ctx.Store.Set(exKey(id, "hv"), hv); err != nil {
		return err
	}
	if err := ctx.Store.Set(exKey(id, "c"), c); err != nil {
		return err
	}
	if err := ctx.Store.Set(exKey(id, "amount"), U64(ctx.Value)); err != nil {
		return err
	}
	if err := ctx.Store.Set(exKey(id, "deadline"), U64(ctx.BlockNumber()+e.timeoutBlocks)); err != nil {
		return err
	}
	return ctx.EmitIndexed("Opened", U64(id), EncodeArgs(U64(id), seller, hv, c, U64(ctx.Value)))
}

func (e *Escrow) settle(ctx *chain.CallContext, id uint64, kc []byte, verifyParts [][]byte) error {
	status, err := ctx.Store.Get(exKey(id, "status"))
	if err != nil {
		return err
	}
	if len(status) == 0 {
		return fmt.Errorf("%w: %d", ErrUnknownExchange, id)
	}
	if status[0] != statusOpen {
		return fmt.Errorf("%w: %d", ErrExchangeSettled, id)
	}
	seller, err := ctx.Store.Get(exKey(id, "seller"))
	if err != nil {
		return err
	}
	if ctx.Sender != chain.Address([20]byte(seller)) {
		return fmt.Errorf("%w: %d", ErrNotSeller, id)
	}
	deadlineRaw, err := ctx.Store.Get(exKey(id, "deadline"))
	if err != nil {
		return err
	}
	deadline, _ := DecU64(deadlineRaw)
	if ctx.BlockNumber() > deadline {
		return fmt.Errorf("%w: %d", ErrDeadlinePassed, id)
	}

	// The π_k statement binds (k_c, c, h_v): recheck that the public
	// inputs the seller supplied are the stored ones — on Ethereum the
	// contract would assemble calldata itself; here we compare.
	hv, err := ctx.Store.Get(exKey(id, "hv"))
	if err != nil {
		return err
	}
	c, err := ctx.Store.Get(exKey(id, "c"))
	if err != nil {
		return err
	}
	if len(verifyParts) != 4 { // proof, kc, c, hv as public inputs
		return fmt.Errorf("%w: settle proof wants (proof, kc, c, hv)", ErrBadArgs)
	}
	if string(verifyParts[1]) != string(kc) ||
		string(verifyParts[2]) != string(c) ||
		string(verifyParts[3]) != string(hv) {
		return fmt.Errorf("%w: public inputs do not match exchange state", ErrBadArgs)
	}
	if _, err := ctx.CallContract(e.verifierName, "verify", EncodeArgs(verifyParts...)); err != nil {
		return fmt.Errorf("contracts: π_k verification: %w", err)
	}

	amountRaw, err := ctx.Store.Get(exKey(id, "amount"))
	if err != nil {
		return err
	}
	amount, _ := DecU64(amountRaw)
	if err := ctx.Store.Set(exKey(id, "status"), []byte{statusSettled}); err != nil {
		return err
	}
	if err := ctx.Store.Set(exKey(id, "kc"), kc); err != nil {
		return err
	}
	if err := ctx.Transfer(ctx.Sender, amount); err != nil {
		return err
	}
	// The buyer reads k_c from this event and derives k = k_c - k_v.
	return ctx.EmitIndexed("Settled", U64(id), EncodeArgs(U64(id), kc))
}

func (e *Escrow) refund(ctx *chain.CallContext, id uint64) error {
	status, err := ctx.Store.Get(exKey(id, "status"))
	if err != nil {
		return err
	}
	if len(status) == 0 {
		return fmt.Errorf("%w: %d", ErrUnknownExchange, id)
	}
	if status[0] != statusOpen {
		return fmt.Errorf("%w: %d", ErrExchangeSettled, id)
	}
	buyer, err := ctx.Store.Get(exKey(id, "buyer"))
	if err != nil {
		return err
	}
	if ctx.Sender != chain.Address([20]byte(buyer)) {
		return fmt.Errorf("%w: %d", ErrNotBuyer, id)
	}
	deadlineRaw, err := ctx.Store.Get(exKey(id, "deadline"))
	if err != nil {
		return err
	}
	deadline, _ := DecU64(deadlineRaw)
	if ctx.BlockNumber() <= deadline {
		return fmt.Errorf("%w: %d", ErrDeadlineNotReached, id)
	}
	amountRaw, err := ctx.Store.Get(exKey(id, "amount"))
	if err != nil {
		return err
	}
	amount, _ := DecU64(amountRaw)
	if err := ctx.Store.Set(exKey(id, "status"), []byte{statusRefunded}); err != nil {
		return err
	}
	if err := ctx.Transfer(ctx.Sender, amount); err != nil {
		return err
	}
	return ctx.EmitIndexed("Refunded", U64(id), EncodeArgs(U64(id), U64(amount)))
}

// ReadSettledKc returns the blinded key k_c of a settled exchange
// (off-chain view used by the buyer).
func ReadSettledKc(c *chain.Chain, escrowName string, id uint64) ([]byte, error) {
	status := c.ReadStorage(escrowName, exKey(id, "status"))
	if len(status) == 0 {
		return nil, fmt.Errorf("%w: %d", ErrUnknownExchange, id)
	}
	if status[0] != statusSettled {
		return nil, fmt.Errorf("contracts: exchange %d not settled", id)
	}
	return c.ReadStorage(escrowName, exKey(id, "kc")), nil
}
