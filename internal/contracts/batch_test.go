package contracts

import (
	"errors"
	"sync"
	"testing"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/plonk"
)

// batchProofSystem is like testProofSystem but keeps the proving key so
// tests can mint many distinct proofs of the same statement.
var batchProofSystem = sync.OnceValue(func() (out struct {
	pk      *plonk.ProvingKey
	vk      *plonk.VerifyingKey
	witness []fr.Element
}) {
	tau := fr.NewElement(0xbeef)
	srs, err := kzg.NewSRSFromSecret(64, &tau)
	if err != nil {
		panic(err)
	}
	cs := plonk.NewConstraintSystem(1)
	x := cs.NewVariable()
	y := cs.NewVariable()
	minusOne := fr.NewFromInt64(-1)
	cs.MustAddGate(plonk.Gate{QM: fr.One(), QO: minusOne, A: x, B: y, C: 0})
	out.witness = []fr.Element{fr.NewElement(391), fr.NewElement(17), fr.NewElement(23)}
	out.pk, out.vk, err = plonk.Setup(cs, srs)
	if err != nil {
		panic(err)
	}
	return out
})

func mintProofs(t testing.TB, n int) ([]*plonk.Proof, [][]fr.Element) {
	t.Helper()
	ps := batchProofSystem()
	proofs := make([]*plonk.Proof, n)
	publics := make([][]fr.Element, n)
	for i := range proofs {
		p, err := plonk.Prove(ps.pk, ps.witness)
		if err != nil {
			t.Fatal(err)
		}
		proofs[i] = p
		publics[i] = ps.witness[:1]
	}
	return proofs, publics
}

// breakProof swaps the ζ-opening commitment for an unrelated point: the
// proof still deserialises and passes the transcript/quotient checks, but
// its pairing check fails — the exact shape batch folding must catch.
func breakProof(p *plonk.Proof) *plonk.Proof {
	bad := *p
	s := fr.NewElement(0xbad)
	g := bn254.G1Generator()
	bad.WZeta = bn254.G1ScalarMul(&g, &s)
	return &bad
}

// TestVerifyBatchOnChain covers the verifyBatch entrypoint: N proofs in
// one call cost far less than N standalone calls, and a single bad proof
// reverts the whole call.
func TestVerifyBatchOnChain(t *testing.T) {
	ps := batchProofSystem()
	proofs, publics := mintProofs(t, 4)

	c := chain.New()
	if _, err := c.Deploy("verifier", NewVerifier(ps.vk), VerifierCodeSize); err != nil {
		t.Fatal(err)
	}
	alice := chain.AddressFromString("alice")

	r := call(t, c, alice, "verifier", "verifyBatch", 0, VerifyBatchArgs(proofs, publics))
	mustSucceed(t, r)
	if len(r.Return) != 1 || r.Return[0] != 1 {
		t.Fatal("verifyBatch did not return success")
	}
	single := VerificationGas(1)
	if r.GasUsed >= 4*single {
		t.Fatalf("batched gas %d not amortised vs 4×%d standalone", r.GasUsed, single)
	}

	// One corrupted proof poisons the batch.
	badProofs := append([]*plonk.Proof{}, proofs...)
	badProofs[2] = breakProof(proofs[2])
	r = call(t, c, alice, "verifier", "verifyBatch", 0, VerifyBatchArgs(badProofs, publics))
	if !errors.Is(r.Err, ErrProofRejected) {
		t.Fatalf("corrupted batch: %v", r.Err)
	}
	// Empty batch is malformed, and classified as ErrBadArgs (not a proof
	// rejection): there is nothing to fold, so "success" would be vacuous
	// and indistinguishable from verifying zero statements.
	r = call(t, c, alice, "verifier", "verifyBatch", 0, EncodeArgs())
	if !errors.Is(r.Err, ErrBadArgs) {
		t.Fatalf("empty verifyBatch: got %v, want ErrBadArgs", r.Err)
	}
	// An explicitly encoded empty batch is byte-identical calldata and must
	// fail the same way.
	r = call(t, c, alice, "verifier", "verifyBatch", 0, VerifyBatchArgs(nil, nil))
	if !errors.Is(r.Err, ErrBadArgs) {
		t.Fatalf("VerifyBatchArgs(nil, nil): got %v, want ErrBadArgs", r.Err)
	}
}

// TestBatchVerifiedGasSchedule pins the amortised schedule: the pairing
// term is split across the batch and vanishes as n grows, while the
// per-proof folding work stays.
func TestBatchVerifiedGasSchedule(t *testing.T) {
	if BatchVerifiedGas(1, 1) <= BatchVerifiedGas(16, 1) {
		// n=1 carries the whole pairing; n=16 a sixteenth of it.
		t.Fatal("amortised gas not decreasing in batch size")
	}
	floor := uint64(18+1+2)*chain.GasEcMul + 24*chain.GasEcAdd
	if g := BatchVerifiedGas(1_000_000, 1); g < floor || g > floor+1 {
		t.Fatalf("asymptotic amortised gas %d, want folding floor %d", g, floor)
	}
	if BatchVerifiedGas(0, 1) != BatchVerifiedGas(1, 1) {
		t.Fatal("batch size below 1 must clamp")
	}
}

// TestBlockProofCheckerMarksAndEvicts drives the seal-time flow: a mix of
// valid proofs, an invalid proof, and a non-proof transaction. The checker
// must flag exactly the invalid one, and the marked transactions must then
// execute on-chain at the amortised gas cost — consuming the mark, so a
// replay pays full price.
func TestBlockProofCheckerMarksAndEvicts(t *testing.T) {
	ps := batchProofSystem()
	proofs, publics := mintProofs(t, 3)

	c := chain.New()
	verifier := NewVerifier(ps.vk)
	if _, err := c.Deploy("verifier", verifier, VerifierCodeSize); err != nil {
		t.Fatal(err)
	}
	alice := chain.AddressFromString("alice")

	bc := NewBlockProofChecker()
	bc.AddVerifier("verifier", verifier)

	txs := []*chain.Transaction{
		{From: alice, Contract: "verifier", Method: "verify", Args: VerifyArgs(proofs[0], publics[0])},
		{From: alice, Contract: "other", Method: "noop"},
		{From: alice, Contract: "verifier", Method: "verify", Args: VerifyArgs(breakProof(proofs[1]), publics[1])},
		{From: alice, Contract: "verifier", Method: "verify", Args: VerifyArgs(proofs[2], publics[2])},
	}
	verified, errs := bc.VerifyBatch(txs)
	if verified != 2 {
		t.Fatalf("verified = %d, want 2", verified)
	}
	if errs[0] != nil || errs[1] != nil || errs[3] != nil {
		t.Fatalf("valid/non-proof txs flagged: %v", errs)
	}
	if !errors.Is(errs[2], ErrProofRejected) {
		t.Fatalf("invalid proof not flagged: %v", errs[2])
	}

	// Marked transactions execute at the amortised cost (receipts also
	// carry the intrinsic base + calldata gas).
	intrinsic := uint64(chain.GasTxBase) + uint64(len(txs[0].Args))*chain.GasCalldataByte
	r := call(t, c, alice, "verifier", "verify", 0, txs[0].Args)
	mustSucceed(t, r)
	if want := intrinsic + BatchVerifiedGas(2, 1); r.GasUsed != want {
		t.Fatalf("pre-verified gas %d, want %d", r.GasUsed, want)
	}
	// The mark is consume-once: replaying the same calldata re-verifies at
	// the standalone price.
	r = call(t, c, alice, "verifier", "verify", 0, txs[0].Args)
	mustSucceed(t, r)
	if want := intrinsic + VerificationGas(1); r.GasUsed != want {
		t.Fatalf("replay gas %d, want standalone %d", r.GasUsed, want)
	}
}

// TestBlockProofCheckerEscrowSettle checks that escrow settlements join the
// seal-time batch: the checker recognises the embedded verify calldata,
// and the settled exchange's inner verification runs at amortised gas.
func TestBlockProofCheckerEscrowSettle(t *testing.T) {
	// 3-public circuit matching the escrow's (kc, c, hv) statement.
	tau := fr.NewElement(0xfade)
	srs, err := kzg.NewSRSFromSecret(64, &tau)
	if err != nil {
		t.Fatal(err)
	}
	cs := plonk.NewConstraintSystem(3)
	minusOne := fr.NewFromInt64(-1)
	cs.MustAddGate(plonk.Gate{QL: fr.One(), QR: fr.One(), QO: minusOne, A: 1, B: 2, C: 0})
	witness := []fr.Element{fr.NewElement(30), fr.NewElement(10), fr.NewElement(20)}
	pk, vk, err := plonk.Setup(cs, srs)
	if err != nil {
		t.Fatal(err)
	}
	c := chain.New()
	verifier := NewVerifier(vk)
	escrow := NewEscrow("pik-verifier", 10)
	if _, err := c.Deploy("pik-verifier", verifier, VerifierCodeSize); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy(EscrowName, escrow, EscrowCodeSize); err != nil {
		t.Fatal(err)
	}
	buyer := chain.AddressFromString("buyer")
	seller := chain.AddressFromString("seller")
	c.Faucet(buyer, 1_000_000)
	c.Faucet(seller, 1_000_000)

	kcB := witness[0].Bytes()
	cB := witness[1].Bytes()
	hvB := witness[2].Bytes()

	// Three exchanges with three distinct proofs of the same statement.
	// Settles 1 and 2 go through the seal-time batch (n=2, so the pairing
	// gas is halved); settle 3 executes unmarked as the full-price control.
	settles := make([]*chain.Transaction, 3)
	for i := range settles {
		id := uint64(i + 1)
		proof, err := plonk.Prove(pk, witness)
		if err != nil {
			t.Fatal(err)
		}
		mustSucceed(t, call(t, c, buyer, EscrowName, "open", 5000,
			EncodeArgs(U64(id), seller[:], hvB[:], cB[:])))
		settles[i] = &chain.Transaction{
			From: seller, Contract: EscrowName, Method: "settle",
			Args: EncodeArgs(U64(id), kcB[:], proof.Bytes(), kcB[:], cB[:], hvB[:]),
		}
	}

	bc := NewBlockProofChecker()
	bc.AddVerifier("pik-verifier", verifier)
	bc.AddEscrow(EscrowName, escrow)

	verified, errs := bc.VerifyBatch(settles[:2])
	if verified != 2 {
		t.Fatalf("verified = %d, want 2", verified)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("valid settles flagged: %v", errs)
	}

	// The marked settles execute with the inner verify hitting the
	// pre-verified mark; their gas must undercut the unmarked control by
	// the non-amortised share of the pairing.
	r0 := call(t, c, seller, EscrowName, "settle", 0, settles[0].Args)
	mustSucceed(t, r0)
	r1 := call(t, c, seller, EscrowName, "settle", 0, settles[1].Args)
	mustSucceed(t, r1)
	r2 := call(t, c, seller, EscrowName, "settle", 0, settles[2].Args)
	mustSucceed(t, r2)
	if r0.GasUsed >= r2.GasUsed || r1.GasUsed >= r2.GasUsed {
		t.Fatalf("marked settles (%d, %d) not cheaper than unmarked (%d)",
			r0.GasUsed, r1.GasUsed, r2.GasUsed)
	}
}
