package contracts

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/chain"
)

// DataNFTName is the canonical deployment name of the token contract.
const DataNFTName = "zkdet-nft"

// DataNFTCodeSize approximates the flattened-Solidity byte size of the
// paper's ERC-721 contract, calibrated so deployment gas matches Table II
// (≈1,020,954).
const DataNFTCodeSize = 4840

// TransformKind labels how a token came to exist (§III-B operations 1–7).
type TransformKind byte

// Transformation kinds. Minting starts at 1 per Go enum convention.
const (
	KindMint TransformKind = iota + 1
	KindAggregation
	KindPartition
	KindDuplication
	KindProcessing
)

// String returns the kind's display name.
func (k TransformKind) String() string {
	switch k {
	case KindMint:
		return "mint"
	case KindAggregation:
		return "aggregation"
	case KindPartition:
		return "partition"
	case KindDuplication:
		return "duplication"
	case KindProcessing:
		return "processing"
	default:
		return fmt.Sprintf("unknown(%d)", byte(k))
	}
}

// Token is the decoded on-chain record of a data NFT.
type Token struct {
	ID         uint64
	Owner      chain.Address
	Kind       TransformKind
	URI        []byte // content address of the encrypted dataset
	Commitment []byte // Poseidon commitment to the encryption key
	PrevIDs    []uint64
	Burned     bool
}

// DataNFT errors.
var (
	ErrUnknownToken  = errors.New("contracts: unknown token")
	ErrNotTokenOwner = errors.New("contracts: caller does not own token")
	ErrTokenBurned   = errors.New("contracts: token is burned")
	ErrNoParents     = errors.New("contracts: transformation needs parent tokens")
)

// DataNFT is the ERC-721-style token contract with the prevIds[] lineage
// extension. Methods:
//
//	mint(uri, commitment)                       → id
//	transfer(id, to)
//	burn(id)
//	approve(id, operator)
//	transferFrom(id, from, to)                  (operator only)
//	aggregate(prevIds, uri, commitment)         → id
//	partition(prevId, uris, commitments)        → ids
//	duplicate(prevId, uri, commitment)          → id
//	process(prevIds, uri, commitment)           → id
//	ownerOf(id) / tokenMeta(id)                 (views)
//
// Transformation proofs are not stored in token slots; their digests are
// logged in events and verified by the verifier contract, which keeps
// invocation gas near the paper's Table II numbers.
type DataNFT struct{}

var _ chain.Contract = (*DataNFT)(nil)

// Call dispatches a method invocation.
func (d *DataNFT) Call(ctx *chain.CallContext, method string, args []byte) ([]byte, error) {
	switch method {
	case "mint":
		p, err := DecodeArgs(args, 2)
		if err != nil {
			return nil, err
		}
		id, err := d.mintToken(ctx, ctx.Sender, KindMint, p[0], p[1], nil)
		if err != nil {
			return nil, err
		}
		return U64(id), nil
	case "transfer":
		p, err := DecodeArgs(args, 2)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		var to chain.Address
		if len(p[1]) != len(to) {
			return nil, fmt.Errorf("%w: bad address", ErrBadArgs)
		}
		copy(to[:], p[1])
		return nil, d.transfer(ctx, id, ctx.Sender, to)
	case "transferFrom":
		p, err := DecodeArgs(args, 3)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		var from, to chain.Address
		if len(p[1]) != len(from) || len(p[2]) != len(to) {
			return nil, fmt.Errorf("%w: bad address", ErrBadArgs)
		}
		copy(from[:], p[1])
		copy(to[:], p[2])
		return nil, d.transferFrom(ctx, id, from, to)
	case "approve":
		p, err := DecodeArgs(args, 2)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		return nil, d.approve(ctx, id, p[1])
	case "burn":
		p, err := DecodeArgs(args, 1)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		return nil, d.burn(ctx, id)
	case "aggregate":
		p, err := DecodeArgs(args, 3)
		if err != nil {
			return nil, err
		}
		prev, err := DecU64List(p[0])
		if err != nil {
			return nil, err
		}
		if len(prev) < 2 {
			return nil, fmt.Errorf("%w: aggregation needs at least 2 parents", ErrNoParents)
		}
		id, err := d.transformToken(ctx, KindAggregation, prev, p[1], p[2])
		if err != nil {
			return nil, err
		}
		return U64(id), nil
	case "duplicate":
		p, err := DecodeArgs(args, 3)
		if err != nil {
			return nil, err
		}
		prev, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		id, err := d.transformToken(ctx, KindDuplication, []uint64{prev}, p[1], p[2])
		if err != nil {
			return nil, err
		}
		return U64(id), nil
	case "process":
		p, err := DecodeArgs(args, 3)
		if err != nil {
			return nil, err
		}
		prev, err := DecU64List(p[0])
		if err != nil {
			return nil, err
		}
		if len(prev) == 0 {
			return nil, ErrNoParents
		}
		id, err := d.transformToken(ctx, KindProcessing, prev, p[1], p[2])
		if err != nil {
			return nil, err
		}
		return U64(id), nil
	case "partition":
		p, err := DecodeArgsVariadic(args)
		if err != nil {
			return nil, err
		}
		// Layout: prevId, then pairs of (uri, commitment).
		if len(p) < 3 || (len(p)-1)%2 != 0 {
			return nil, fmt.Errorf("%w: partition wants prevId + k·(uri, commitment)", ErrBadArgs)
		}
		prev, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		k := (len(p) - 1) / 2
		if k < 2 {
			return nil, fmt.Errorf("%w: partition must yield at least 2 tokens", ErrBadArgs)
		}
		ids := make([]uint64, k)
		for i := 0; i < k; i++ {
			id, err := d.transformToken(ctx, KindPartition, []uint64{prev}, p[1+2*i], p[2+2*i])
			if err != nil {
				return nil, err
			}
			ids[i] = id
		}
		return U64List(ids), nil
	case "ownerOf":
		p, err := DecodeArgs(args, 1)
		if err != nil {
			return nil, err
		}
		id, err := DecU64(p[0])
		if err != nil {
			return nil, err
		}
		tok, err := d.load(ctx, id)
		if err != nil {
			return nil, err
		}
		return tok.Owner[:], nil
	default:
		return nil, fmt.Errorf("contracts: datanft has no method %q", method)
	}
}

func tokenKey(id uint64, field string) string {
	return fmt.Sprintf("token/%d/%s", id, field)
}

func (d *DataNFT) nextID(ctx *chain.CallContext) (uint64, error) {
	raw, err := ctx.Store.Get("nextId")
	if err != nil {
		return 0, err
	}
	var id uint64 = 1
	if len(raw) == 8 {
		id, _ = DecU64(raw)
	}
	if err := ctx.Store.Set("nextId", U64(id+1)); err != nil {
		return 0, err
	}
	return id, nil
}

func (d *DataNFT) mintToken(ctx *chain.CallContext, owner chain.Address, kind TransformKind, uri, commitment []byte, prev []uint64) (uint64, error) {
	id, err := d.nextID(ctx)
	if err != nil {
		return 0, err
	}
	// owner ‖ kind packs into one slot.
	ownerKind := append(append([]byte{}, owner[:]...), byte(kind))
	if err := ctx.Store.Set(tokenKey(id, "owner"), ownerKind); err != nil {
		return 0, err
	}
	if err := ctx.Store.Set(tokenKey(id, "uri"), uri); err != nil {
		return 0, err
	}
	if err := ctx.Store.Set(tokenKey(id, "commit"), commitment); err != nil {
		return 0, err
	}
	if len(prev) > 0 {
		if err := ctx.Store.Set(tokenKey(id, "prev"), U64List(prev)); err != nil {
			return 0, err
		}
	}
	if err := d.adjustBalance(ctx, owner, 1); err != nil {
		return 0, err
	}
	if err := ctx.EmitIndexed("Transfer", U64(id), EncodeArgs(U64(id), nil, owner[:])); err != nil {
		return 0, err
	}
	return id, nil
}

// transformToken mints a derived token; the caller must own every parent.
func (d *DataNFT) transformToken(ctx *chain.CallContext, kind TransformKind, prev []uint64, uri, commitment []byte) (uint64, error) {
	for _, pid := range prev {
		tok, err := d.load(ctx, pid)
		if err != nil {
			return 0, err
		}
		if tok.Owner != ctx.Sender {
			return 0, fmt.Errorf("%w: parent %d", ErrNotTokenOwner, pid)
		}
	}
	id, err := d.mintToken(ctx, ctx.Sender, kind, uri, commitment, prev)
	if err != nil {
		return 0, err
	}
	if err := ctx.EmitIndexed("Transform", U64(id), EncodeArgs(U64(id), []byte{byte(kind)}, U64List(prev))); err != nil {
		return 0, err
	}
	return id, nil
}

func (d *DataNFT) load(ctx *chain.CallContext, id uint64) (*Token, error) {
	raw, err := ctx.Store.Get(tokenKey(id, "owner"))
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("%w: %d", ErrUnknownToken, id)
	}
	if len(raw) != 21 {
		return nil, fmt.Errorf("contracts: corrupt owner record for token %d", id)
	}
	tok := &Token{ID: id, Kind: TransformKind(raw[20])}
	copy(tok.Owner[:], raw[:20])
	if tok.Kind == 0 {
		return nil, fmt.Errorf("%w: %d", ErrTokenBurned, id)
	}
	return tok, nil
}

func (d *DataNFT) adjustBalance(ctx *chain.CallContext, a chain.Address, delta int64) error {
	key := "balance/" + string(a[:])
	raw, err := ctx.Store.Get(key)
	if err != nil {
		return err
	}
	var n uint64
	if len(raw) == 8 {
		n, _ = DecU64(raw)
	}
	n = uint64(int64(n) + delta)
	return ctx.Store.Set(key, U64(n))
}

func (d *DataNFT) transfer(ctx *chain.CallContext, id uint64, from, to chain.Address) error {
	tok, err := d.load(ctx, id)
	if err != nil {
		return err
	}
	if tok.Owner != from {
		return fmt.Errorf("%w: token %d", ErrNotTokenOwner, id)
	}
	ownerKind := append(append([]byte{}, to[:]...), byte(tok.Kind))
	if err := ctx.Store.Set(tokenKey(id, "owner"), ownerKind); err != nil {
		return err
	}
	if err := d.adjustBalance(ctx, from, -1); err != nil {
		return err
	}
	if err := d.adjustBalance(ctx, to, 1); err != nil {
		return err
	}
	return ctx.EmitIndexed("Transfer", U64(id), EncodeArgs(U64(id), from[:], to[:]))
}

func (d *DataNFT) approve(ctx *chain.CallContext, id uint64, operator []byte) error {
	tok, err := d.load(ctx, id)
	if err != nil {
		return err
	}
	if tok.Owner != ctx.Sender {
		return fmt.Errorf("%w: token %d", ErrNotTokenOwner, id)
	}
	return ctx.Store.Set(tokenKey(id, "operator"), operator)
}

func (d *DataNFT) transferFrom(ctx *chain.CallContext, id uint64, from, to chain.Address) error {
	op, err := ctx.Store.Get(tokenKey(id, "operator"))
	if err != nil {
		return err
	}
	if len(op) != 20 || chain.Address([20]byte(op)) != ctx.Sender {
		return fmt.Errorf("%w: caller not approved for token %d", ErrNotTokenOwner, id)
	}
	if err := ctx.Store.Delete(tokenKey(id, "operator")); err != nil {
		return err
	}
	return d.transfer(ctx, id, from, to)
}

func (d *DataNFT) burn(ctx *chain.CallContext, id uint64) error {
	tok, err := d.load(ctx, id)
	if err != nil {
		return err
	}
	if tok.Owner != ctx.Sender {
		return fmt.Errorf("%w: token %d", ErrNotTokenOwner, id)
	}
	// Zero the kind byte (burn marker) but keep lineage slots: burned
	// tokens stay traceable, as §III-B requires.
	ownerKind := append(append([]byte{}, tok.Owner[:]...), 0)
	if err := ctx.Store.Set(tokenKey(id, "owner"), ownerKind); err != nil {
		return err
	}
	if err := ctx.Store.Delete(tokenKey(id, "commit")); err != nil {
		return err
	}
	if err := d.adjustBalance(ctx, tok.Owner, -1); err != nil {
		return err
	}
	return ctx.EmitIndexed("Burn", U64(id), EncodeArgs(U64(id), tok.Owner[:]))
}

// ReadToken decodes a token's full record from chain storage without gas
// (off-chain view, e.g. for building provenance graphs).
func ReadToken(c *chain.Chain, id uint64) (*Token, error) {
	raw := c.ReadStorage(DataNFTName, tokenKey(id, "owner"))
	if len(raw) != 21 {
		return nil, fmt.Errorf("%w: %d", ErrUnknownToken, id)
	}
	tok := &Token{ID: id, Kind: TransformKind(raw[20])}
	copy(tok.Owner[:], raw[:20])
	if raw[20] == 0 {
		tok.Burned = true
	}
	tok.URI = c.ReadStorage(DataNFTName, tokenKey(id, "uri"))
	tok.Commitment = c.ReadStorage(DataNFTName, tokenKey(id, "commit"))
	if prev := c.ReadStorage(DataNFTName, tokenKey(id, "prev")); len(prev) > 0 {
		ids, err := DecU64List(prev)
		if err != nil {
			return nil, err
		}
		tok.PrevIDs = ids
	}
	return tok, nil
}

// Trace walks prevIds[] transitively from a token back to its sources,
// returning the ancestor tokens in breadth-first order (the token itself
// first) — the provenance query of Figure 2.
func Trace(c *chain.Chain, id uint64) ([]*Token, error) {
	seen := map[uint64]bool{}
	queue := []uint64{id}
	var out []*Token
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		tok, err := ReadToken(c, cur)
		if err != nil {
			return nil, fmt.Errorf("contracts: tracing %d: %w", cur, err)
		}
		out = append(out, tok)
		queue = append(queue, tok.PrevIDs...)
	}
	return out, nil
}
