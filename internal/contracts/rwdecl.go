package contracts

import (
	"github.com/zkdet/zkdet/internal/chain"
)

// This file declares the static read/write footprints the parallel batch
// executor (chain.SubmitBatch) schedules on. Declarations are hints: an
// under-declared access is caught by commit-time validation and merely
// costs a serial re-execution, so each DeclareRW lists the slots the
// common path touches and keeps the parsing as forgiving as the method
// itself — a call that will revert before reaching storage may declare
// nothing.
//
// Methods with side effects that must happen exactly once, in block order,
// return ok == false (serial-only): everything touching the verifier's
// consume-once pre-verification marks (verify, verifyBatch, escrow settle)
// and everything whose value-transfer targets are only known at run time
// (escrow refund, auction bid).

// balanceKey mirrors DataNFT.adjustBalance's slot naming.
func balanceKey(a chain.Address) string { return "balance/" + string(a[:]) }

func declAddr(raw []byte) (chain.Address, bool) {
	var a chain.Address
	if len(raw) != len(a) {
		return a, false
	}
	copy(a[:], raw)
	return a, true
}

var _ chain.RWDeclarer = (*DataNFT)(nil)

// DeclareRW implements chain.RWDeclarer. Token ids parse straight out of
// the calldata; the one undeclarable footprint is the token/<id>/* slots
// of a mint, whose id comes from the nextId counter — but every minting
// method declares nextId read+write, so concurrent mints schedule into one
// group and their dynamic slots stay ordered anyway.
func (d *DataNFT) DeclareRW(sender chain.Address, method string, args []byte, value uint64) (chain.RWDecl, bool) {
	var decl chain.RWDecl
	rw := func(keys ...string) {
		decl.Reads = append(decl.Reads, keys...)
		decl.Writes = append(decl.Writes, keys...)
	}
	switch method {
	case "mint":
		rw("nextId", balanceKey(sender))
	case "transfer":
		p, err := DecodeArgs(args, 2)
		if err != nil {
			return chain.RWDecl{}, true
		}
		id, err := DecU64(p[0])
		if err != nil {
			return chain.RWDecl{}, true
		}
		rw(tokenKey(id, "owner"), balanceKey(sender))
		if to, ok := declAddr(p[1]); ok {
			rw(balanceKey(to))
		}
	case "transferFrom":
		p, err := DecodeArgs(args, 3)
		if err != nil {
			return chain.RWDecl{}, true
		}
		id, err := DecU64(p[0])
		if err != nil {
			return chain.RWDecl{}, true
		}
		rw(tokenKey(id, "operator"), tokenKey(id, "owner"))
		if from, ok := declAddr(p[1]); ok {
			rw(balanceKey(from))
		}
		if to, ok := declAddr(p[2]); ok {
			rw(balanceKey(to))
		}
	case "approve":
		p, err := DecodeArgs(args, 2)
		if err != nil {
			return chain.RWDecl{}, true
		}
		id, err := DecU64(p[0])
		if err != nil {
			return chain.RWDecl{}, true
		}
		decl.Reads = append(decl.Reads, tokenKey(id, "owner"))
		decl.Writes = append(decl.Writes, tokenKey(id, "operator"))
	case "burn":
		p, err := DecodeArgs(args, 1)
		if err != nil {
			return chain.RWDecl{}, true
		}
		id, err := DecU64(p[0])
		if err != nil {
			return chain.RWDecl{}, true
		}
		rw(tokenKey(id, "owner"), balanceKey(sender))
		decl.Writes = append(decl.Writes, tokenKey(id, "commit"))
	case "aggregate", "process":
		p, err := DecodeArgs(args, 3)
		if err != nil {
			return chain.RWDecl{}, true
		}
		prev, err := DecU64List(p[0])
		if err != nil {
			return chain.RWDecl{}, true
		}
		for _, pid := range prev {
			decl.Reads = append(decl.Reads, tokenKey(pid, "owner"))
		}
		rw("nextId", balanceKey(sender))
	case "duplicate":
		p, err := DecodeArgs(args, 3)
		if err != nil {
			return chain.RWDecl{}, true
		}
		prev, err := DecU64(p[0])
		if err != nil {
			return chain.RWDecl{}, true
		}
		decl.Reads = append(decl.Reads, tokenKey(prev, "owner"))
		rw("nextId", balanceKey(sender))
	case "partition":
		p, err := DecodeArgsVariadic(args)
		if err != nil || len(p) < 1 {
			return chain.RWDecl{}, true
		}
		prev, err := DecU64(p[0])
		if err != nil {
			return chain.RWDecl{}, true
		}
		decl.Reads = append(decl.Reads, tokenKey(prev, "owner"))
		rw("nextId", balanceKey(sender))
	case "ownerOf":
		p, err := DecodeArgs(args, 1)
		if err != nil {
			return chain.RWDecl{}, true
		}
		id, err := DecU64(p[0])
		if err != nil {
			return chain.RWDecl{}, true
		}
		decl.Reads = append(decl.Reads, tokenKey(id, "owner"))
	}
	return decl, true
}

var _ chain.RWDeclarer = (*Escrow)(nil)

// DeclareRW implements chain.RWDeclarer. open is fully declarable; settle
// consumes the verifier's pre-verification marks through a sub-call and
// refund transfers to a stored buyer address, so both are serial-only.
func (e *Escrow) DeclareRW(sender chain.Address, method string, args []byte, value uint64) (chain.RWDecl, bool) {
	switch method {
	case "open":
		p, err := DecodeArgs(args, 4)
		if err != nil {
			return chain.RWDecl{}, true
		}
		id, err := DecU64(p[0])
		if err != nil {
			return chain.RWDecl{}, true
		}
		return chain.RWDecl{
			Reads: []string{exKey(id, "status")},
			Writes: []string{
				exKey(id, "status"), exKey(id, "buyer"), exKey(id, "seller"),
				exKey(id, "hv"), exKey(id, "c"), exKey(id, "amount"), exKey(id, "deadline"),
			},
		}, true
	default: // settle, refund, unknown
		return chain.RWDecl{}, false
	}
}

var _ chain.RWDeclarer = (*ClockAuction)(nil)

// DeclareRW implements chain.RWDeclarer. create, cancel and price touch
// only the listing's own slots; bid moves the token and pays out through
// run-time-resolved transfers, so it is serial-only.
func (a *ClockAuction) DeclareRW(sender chain.Address, method string, args []byte, value uint64) (chain.RWDecl, bool) {
	listingSlots := func() (chain.RWDecl, bool) {
		p, err := DecodeArgsVariadic(args)
		if err != nil || len(p) < 1 {
			return chain.RWDecl{}, true
		}
		id, err := DecU64(p[0])
		if err != nil {
			return chain.RWDecl{}, true
		}
		return chain.RWDecl{
			Reads:  []string{listKey(id, "seller"), listKey(id, "terms")},
			Writes: []string{listKey(id, "seller"), listKey(id, "terms")},
		}, true
	}
	switch method {
	case "create", "cancel":
		return listingSlots()
	case "price":
		d, ok := listingSlots()
		d.Writes = nil
		return d, ok
	default: // bid, unknown
		return chain.RWDecl{}, false
	}
}

var _ chain.RWDeclarer = (*Verifier)(nil)

// DeclareRW implements chain.RWDeclarer: always serial-only. Verification
// consumes seal-time pre-verification marks (consumePreverified), a
// spend-once side effect outside chain state — a discarded speculative
// execution would still eat the mark and the commit-time re-execution
// would then pay full verification gas, diverging from serial receipts.
func (v *Verifier) DeclareRW(sender chain.Address, method string, args []byte, value uint64) (chain.RWDecl, bool) {
	return chain.RWDecl{}, false
}
