package contracts

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
)

// VerifierCodeSize approximates the flattened-Solidity byte size of a Plonk
// verifier contract with hardcoded group elements, calibrated so deployment
// gas matches Table II (≈1,644,969).
const VerifierCodeSize = 7960

// ErrProofRejected is returned when on-chain verification fails.
var ErrProofRejected = errors.New("contracts: proof rejected")

// Verifier is the on-chain Plonk verifier of §VI-C2: a contract with the
// verification key hardcoded at deployment, supporting unlimited
// verifications. Gas per call follows the EIP-1108 precompile schedule for
// the verifier's actual group-operation count (2 pairings plus the
// MSM-folding scalar multiplications), so verification is O(1) on-chain.
type Verifier struct {
	vk *plonk.VerifyingKey
}

var _ chain.Contract = (*Verifier)(nil)

// NewVerifier creates a verifier for one circuit's verification key.
func NewVerifier(vk *plonk.VerifyingKey) *Verifier { return &Verifier{vk: vk} }

// VerificationGas is the gas charged for one proof verification:
// 2 pairings + ~18+ℓ G1 scalar multiplications + folding additions.
func VerificationGas(nbPublic int) uint64 {
	return chain.GasPairingBase +
		2*chain.GasPairingPerPair +
		uint64(18+nbPublic)*chain.GasEcMul +
		24*chain.GasEcAdd
}

// Call dispatches; the single method is
//
//	verify(proofBytes, publicInput₁, …, publicInput_ℓ) → 0x01
//
// which reverts when the proof does not verify.
func (v *Verifier) Call(ctx *chain.CallContext, method string, args []byte) ([]byte, error) {
	if method != "verify" {
		return nil, fmt.Errorf("contracts: verifier has no method %q", method)
	}
	parts, err := DecodeArgsVariadic(args)
	if err != nil {
		return nil, err
	}
	if len(parts) < 1 {
		return nil, fmt.Errorf("%w: missing proof", ErrBadArgs)
	}
	proof, err := plonk.ProofFromBytes(parts[0])
	if err != nil {
		return nil, fmt.Errorf("contracts: %w", err)
	}
	public := make([]fr.Element, len(parts)-1)
	for i, p := range parts[1:] {
		e, err := fr.FromBytesCanonical(p)
		if err != nil {
			return nil, fmt.Errorf("contracts: public input %d: %w", i, err)
		}
		public[i] = e
	}
	if err := ctx.Gas.Charge(VerificationGas(len(public))); err != nil {
		return nil, err
	}
	if err := plonk.Verify(v.vk, proof, public); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrProofRejected, err)
	}
	return []byte{1}, nil
}

// VerifyArgs builds the calldata for a verify call.
func VerifyArgs(proof *plonk.Proof, public []fr.Element) []byte {
	parts := make([][]byte, 0, 1+len(public))
	parts = append(parts, proof.Bytes())
	for i := range public {
		b := public[i].Bytes()
		parts = append(parts, b[:])
	}
	return EncodeArgs(parts...)
}
