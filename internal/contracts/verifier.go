package contracts

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
)

// VerifierCodeSize approximates the flattened-Solidity byte size of a Plonk
// verifier contract with hardcoded group elements, calibrated so deployment
// gas matches Table II (≈1,644,969).
const VerifierCodeSize = 7960

// ErrProofRejected is returned when on-chain verification fails.
var ErrProofRejected = errors.New("contracts: proof rejected")

// Verifier is the on-chain Plonk verifier of §VI-C2: a contract with the
// verification key hardcoded at deployment, supporting unlimited
// verifications. Gas per call follows the EIP-1108 precompile schedule for
// the verifier's actual group-operation count (2 pairings plus the
// MSM-folding scalar multiplications), so verification is O(1) on-chain.
//
// Two batching paths cut the amortised cost further:
//
//   - verifyBatch checks N proofs in one call, folding the N pairing
//     statements into a single pairing (plonk.BatchVerify) and charging
//     the pairing gas once.
//   - The block producer can batch-verify proof-carrying transactions at
//     seal time (BlockProofChecker) and mark their digests pre-verified;
//     a subsequent verify call with a marked digest consumes the mark and
//     charges the amortised schedule instead of re-running the pairing.
type Verifier struct {
	vk *plonk.VerifyingKey

	// preverified maps a digest of the verify calldata to the size of the
	// seal-time batch that validated it plus a use count (several
	// transactions in one block may carry identical calldata — e.g. one
	// proof settling many exchanges). Marks are consumed per use, so a
	// replay beyond the batched count pays (and runs) full verification.
	mu          sync.Mutex
	preverified map[[32]byte]preMark // guarded by mu
}

// preMark is one pre-verified calldata record: the batch size that set the
// amortised gas and how many uses remain.
type preMark struct {
	batch int
	uses  int
}

var _ chain.Contract = (*Verifier)(nil)

// NewVerifier creates a verifier for one circuit's verification key.
func NewVerifier(vk *plonk.VerifyingKey) *Verifier { return &Verifier{vk: vk} }

// VerificationGas is the gas charged for one standalone proof verification:
// 2 pairings + ~18+ℓ G1 scalar multiplications + folding additions.
func VerificationGas(nbPublic int) uint64 {
	return chain.GasPairingBase +
		2*chain.GasPairingPerPair +
		uint64(18+nbPublic)*chain.GasEcMul +
		24*chain.GasEcAdd
}

// BatchVerifiedGas is the amortised per-proof gas when a proof is checked
// as part of a batch of n: the single pairing check is split across the
// batch, while each proof still pays its own transcript/MSM folding (the
// 18+ℓ scalar muls of a standalone verification plus 2 for its share of
// the random-linear-combination fold).
func BatchVerifiedGas(n, nbPublic int) uint64 {
	if n < 1 {
		n = 1
	}
	pairing := (chain.GasPairingBase + 2*chain.GasPairingPerPair) / uint64(n)
	return pairing + uint64(18+nbPublic+2)*chain.GasEcMul + 24*chain.GasEcAdd
}

// verifyDigest is the key under which a verify call is marked pre-verified:
// a hash of the exact calldata the verifier will see.
func verifyDigest(args []byte) [32]byte { return sha256.Sum256(args) }

// markPreverified records that the given verify calldata was validated in a
// seal-time batch of the given size. Package-private: only the
// BlockProofChecker, which actually ran the pairing, may call it.
func (v *Verifier) markPreverified(digest [32]byte, batchSize int) {
	v.mu.Lock()
	if v.preverified == nil {
		v.preverified = make(map[[32]byte]preMark)
	}
	m := v.preverified[digest]
	m.batch = batchSize
	m.uses++
	v.preverified[digest] = m
	v.mu.Unlock()
}

// consumePreverified spends one use of the digest's mark and returns its
// batch size; ok is false when the digest was never marked (or all its
// uses are spent).
func (v *Verifier) consumePreverified(digest [32]byte) (int, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, ok := v.preverified[digest]
	if !ok {
		return 0, false
	}
	m.uses--
	if m.uses <= 0 {
		delete(v.preverified, digest)
	} else {
		v.preverified[digest] = m
	}
	return m.batch, true
}

// Call dispatches. Methods:
//
//	verify(proofBytes, publicInput₁, …, publicInput_ℓ) → 0x01
//	verifyBatch(batch₁, …, batch_N) → 0x01
//
// where each batchᵢ is itself EncodeArgs(proofBytes, publicInput₁, …).
// Both revert when any proof does not verify.
func (v *Verifier) Call(ctx *chain.CallContext, method string, args []byte) ([]byte, error) {
	switch method {
	case "verify":
		return v.verify(ctx, args)
	case "verifyBatch":
		return v.verifyBatch(ctx, args)
	default:
		return nil, fmt.Errorf("contracts: verifier has no method %q", method)
	}
}

// decodeVerifyArgs splits verify calldata into the proof and its public
// inputs.
func decodeVerifyArgs(args []byte) (*plonk.Proof, []fr.Element, error) {
	parts, err := DecodeArgsVariadic(args)
	if err != nil {
		return nil, nil, err
	}
	if len(parts) < 1 {
		return nil, nil, fmt.Errorf("%w: missing proof", ErrBadArgs)
	}
	proof, err := plonk.ProofFromBytes(parts[0])
	if err != nil {
		return nil, nil, fmt.Errorf("contracts: %w", err)
	}
	public := make([]fr.Element, len(parts)-1)
	for i, p := range parts[1:] {
		e, err := fr.FromBytesCanonical(p)
		if err != nil {
			return nil, nil, fmt.Errorf("contracts: public input %d: %w", i, err)
		}
		public[i] = e
	}
	return proof, public, nil
}

func (v *Verifier) verify(ctx *chain.CallContext, args []byte) ([]byte, error) {
	proof, public, err := decodeVerifyArgs(args)
	if err != nil {
		return nil, err
	}
	if n, ok := v.consumePreverified(verifyDigest(args)); ok {
		// The block producer already ran this proof through a batched
		// pairing check; charge the amortised schedule and skip the
		// pairing entirely.
		if err := ctx.Gas.Charge(BatchVerifiedGas(n, len(public))); err != nil {
			return nil, err
		}
		return []byte{1}, nil
	}
	if err := ctx.Gas.Charge(VerificationGas(len(public))); err != nil {
		return nil, err
	}
	if err := plonk.Verify(v.vk, proof, public); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrProofRejected, err)
	}
	return []byte{1}, nil
}

func (v *Verifier) verifyBatch(ctx *chain.CallContext, args []byte) ([]byte, error) {
	batches, err := DecodeArgsVariadic(args)
	if err != nil {
		return nil, err
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadArgs)
	}
	n := len(batches)
	proofs := make([]*plonk.Proof, n)
	publics := make([][]fr.Element, n)
	for i, b := range batches {
		proofs[i], publics[i], err = decodeVerifyArgs(b)
		if err != nil {
			return nil, fmt.Errorf("contracts: batch entry %d: %w", i, err)
		}
	}
	// One pairing for the whole call plus each proof's own folding work.
	gas := uint64(chain.GasPairingBase + 2*chain.GasPairingPerPair)
	for i := range publics {
		gas += uint64(18+len(publics[i])+2)*chain.GasEcMul + 24*chain.GasEcAdd
	}
	if err := ctx.Gas.Charge(gas); err != nil {
		return nil, err
	}
	if err := plonk.BatchVerify(v.vk, proofs, publics); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrProofRejected, err)
	}
	return []byte{1}, nil
}

// VerifyArgs builds the calldata for a verify call.
func VerifyArgs(proof *plonk.Proof, public []fr.Element) []byte {
	parts := make([][]byte, 0, 1+len(public))
	parts = append(parts, proof.Bytes())
	for i := range public {
		b := public[i].Bytes()
		parts = append(parts, b[:])
	}
	return EncodeArgs(parts...)
}

// VerifyBatchArgs builds the calldata for a verifyBatch call: one nested
// VerifyArgs blob per proof.
func VerifyBatchArgs(proofs []*plonk.Proof, publics [][]fr.Element) []byte {
	entries := make([][]byte, len(proofs))
	for i := range proofs {
		entries[i] = VerifyArgs(proofs[i], publics[i])
	}
	return EncodeArgs(entries...)
}
