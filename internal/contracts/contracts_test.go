package contracts

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/plonk"
)

func TestABIRoundTrip(t *testing.T) {
	parts := [][]byte{[]byte("hello"), nil, []byte{1, 2, 3}}
	enc := EncodeArgs(parts...)
	dec, err := DecodeArgs(enc, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parts {
		if !bytes.Equal(dec[i], parts[i]) {
			t.Fatalf("part %d mismatch", i)
		}
	}
	if _, err := DecodeArgs(enc, 2); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := DecodeArgsVariadic([]byte{0, 0}); err == nil {
		t.Fatal("truncated prefix accepted")
	}
	if _, err := DecodeArgsVariadic([]byte{0, 0, 0, 9, 1}); err == nil {
		t.Fatal("truncated payload accepted")
	}
	ids := []uint64{3, 1, 4, 1, 5}
	got, err := DecU64List(U64List(ids))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatal("id list mismatch")
		}
	}
	if _, err := DecU64List([]byte{1, 2, 3}); err == nil {
		t.Fatal("ragged id list accepted")
	}
	if _, err := DecU64([]byte{1}); err == nil {
		t.Fatal("short u64 accepted")
	}
}

// marketplace spins up a chain with the NFT and auction contracts deployed
// and two funded accounts.
func marketplace(t *testing.T) (*chain.Chain, chain.Address, chain.Address) {
	t.Helper()
	c := chain.New()
	if _, err := c.Deploy(DataNFTName, &DataNFT{}, DataNFTCodeSize); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy(AuctionName, NewClockAuction(DataNFTName), AuctionCodeSize); err != nil {
		t.Fatal(err)
	}
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")
	c.Faucet(alice, 10_000_000)
	c.Faucet(bob, 10_000_000)
	return c, alice, bob
}

func call(t *testing.T, c *chain.Chain, from chain.Address, contract, method string, value uint64, args []byte) *chain.Receipt {
	t.Helper()
	r, err := c.Submit(chain.Transaction{
		From: from, Contract: contract, Method: method,
		Args: args, Value: value, Nonce: c.NonceOf(from),
	})
	if err != nil {
		t.Fatalf("%s.%s: %v", contract, method, err)
	}
	return r
}

func mustSucceed(t *testing.T, r *chain.Receipt) *chain.Receipt {
	t.Helper()
	if r.Err != nil {
		t.Fatalf("call reverted: %v", r.Err)
	}
	return r
}

func TestMintTransferBurnLifecycle(t *testing.T) {
	c, alice, bob := marketplace(t)
	uri := bytes.Repeat([]byte{0xaa}, 32)
	commit := bytes.Repeat([]byte{0xbb}, 32)

	r := mustSucceed(t, call(t, c, alice, DataNFTName, "mint", 0, EncodeArgs(uri, commit)))
	id, err := DecU64(r.Return)
	if err != nil || id != 1 {
		t.Fatalf("minted id %d, err %v", id, err)
	}
	tok, err := ReadToken(c, id)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Owner != alice || tok.Kind != KindMint || !bytes.Equal(tok.URI, uri) {
		t.Fatalf("token record %+v", tok)
	}

	// Transfer to bob.
	mustSucceed(t, call(t, c, alice, DataNFTName, "transfer", 0, EncodeArgs(U64(id), bob[:])))
	tok, err = ReadToken(c, id)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Owner != bob {
		t.Fatal("transfer did not change owner")
	}

	// Alice can no longer transfer or burn.
	r = call(t, c, alice, DataNFTName, "transfer", 0, EncodeArgs(U64(id), alice[:]))
	if r.Err == nil {
		t.Fatal("non-owner transfer succeeded")
	}
	r = call(t, c, alice, DataNFTName, "burn", 0, EncodeArgs(U64(id)))
	if r.Err == nil {
		t.Fatal("non-owner burn succeeded")
	}

	// Bob burns; the token stays readable but marked burned.
	mustSucceed(t, call(t, c, bob, DataNFTName, "burn", 0, EncodeArgs(U64(id))))
	tok, err = ReadToken(c, id)
	if err != nil {
		t.Fatal(err)
	}
	if !tok.Burned {
		t.Fatal("burned token not marked")
	}
	// Burned tokens cannot move.
	r = call(t, c, bob, DataNFTName, "transfer", 0, EncodeArgs(U64(id), alice[:]))
	if r.Err == nil {
		t.Fatal("burned token transferred")
	}
}

func TestTransformationsAndTrace(t *testing.T) {
	c, alice, bob := marketplace(t)
	mkToken := func(tag byte) uint64 {
		r := mustSucceed(t, call(t, c, alice, DataNFTName, "mint", 0,
			EncodeArgs(bytes.Repeat([]byte{tag}, 32), bytes.Repeat([]byte{tag ^ 0xff}, 32))))
		id, _ := DecU64(r.Return)
		return id
	}
	a := mkToken(1)
	b := mkToken(2)

	// Aggregation of a and b.
	r := mustSucceed(t, call(t, c, alice, DataNFTName, "aggregate", 0,
		EncodeArgs(U64List([]uint64{a, b}), bytes.Repeat([]byte{3}, 32), bytes.Repeat([]byte{4}, 32))))
	agg, _ := DecU64(r.Return)

	// Partition of the aggregate into two children.
	r = mustSucceed(t, call(t, c, alice, DataNFTName, "partition", 0,
		EncodeArgs(U64(agg),
			bytes.Repeat([]byte{5}, 32), bytes.Repeat([]byte{6}, 32),
			bytes.Repeat([]byte{7}, 32), bytes.Repeat([]byte{8}, 32))))
	kids, err := DecU64List(r.Return)
	if err != nil || len(kids) != 2 {
		t.Fatalf("partition returned %v, %v", kids, err)
	}

	// Duplicate one child, process the other.
	r = mustSucceed(t, call(t, c, alice, DataNFTName, "duplicate", 0,
		EncodeArgs(U64(kids[0]), bytes.Repeat([]byte{9}, 32), bytes.Repeat([]byte{10}, 32))))
	dup, _ := DecU64(r.Return)
	r = mustSucceed(t, call(t, c, alice, DataNFTName, "process", 0,
		EncodeArgs(U64List([]uint64{kids[1]}), bytes.Repeat([]byte{11}, 32), bytes.Repeat([]byte{12}, 32))))
	proc, _ := DecU64(r.Return)

	// Trace the processed token back to its sources: proc → kid1 → agg → {a, b}.
	lineage, err := Trace(c, proc)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := map[uint64]TransformKind{
		proc: KindProcessing, kids[1]: KindPartition, agg: KindAggregation,
		a: KindMint, b: KindMint,
	}
	if len(lineage) != len(wantIDs) {
		t.Fatalf("lineage has %d tokens, want %d", len(lineage), len(wantIDs))
	}
	for _, tok := range lineage {
		if wantIDs[tok.ID] != tok.Kind {
			t.Fatalf("token %d kind %v", tok.ID, tok.Kind)
		}
	}
	_ = dup

	// Transformations of tokens you do not own must fail.
	r = call(t, c, bob, DataNFTName, "duplicate", 0,
		EncodeArgs(U64(a), bytes.Repeat([]byte{13}, 32), bytes.Repeat([]byte{14}, 32)))
	if r.Err == nil {
		t.Fatal("non-owner transformation succeeded")
	}
	// Aggregation with fewer than two parents fails.
	r = call(t, c, alice, DataNFTName, "aggregate", 0,
		EncodeArgs(U64List([]uint64{a}), bytes.Repeat([]byte{15}, 32), bytes.Repeat([]byte{16}, 32)))
	if r.Err == nil {
		t.Fatal("single-parent aggregation succeeded")
	}
}

func TestClockAuction(t *testing.T) {
	c, alice, bob := marketplace(t)
	r := mustSucceed(t, call(t, c, alice, DataNFTName, "mint", 0,
		EncodeArgs(bytes.Repeat([]byte{1}, 32), bytes.Repeat([]byte{2}, 32))))
	id, _ := DecU64(r.Return)

	// Approve the auction as operator, then list.
	auctionAddr := chain.ContractAddress(AuctionName)
	mustSucceed(t, call(t, c, alice, DataNFTName, "approve", 0, EncodeArgs(U64(id), auctionAddr[:])))
	mustSucceed(t, call(t, c, alice, AuctionName, "create", 0,
		EncodeArgs(U64(id), U64(1000), U64(100), U64(10))))

	// Listing price declines over blocks.
	r = mustSucceed(t, call(t, c, bob, AuctionName, "price", 0, EncodeArgs(U64(id))))
	p0, _ := DecU64(r.Return)
	c.SealBlock()
	c.SealBlock()
	r = mustSucceed(t, call(t, c, bob, AuctionName, "price", 0, EncodeArgs(U64(id))))
	p1, _ := DecU64(r.Return)
	if p1 >= p0 {
		t.Fatalf("price did not decay: %d → %d", p0, p1)
	}

	// Low bid rejected.
	r = call(t, c, bob, AuctionName, "bid", 10, EncodeArgs(U64(id)))
	if r.Err == nil {
		t.Fatal("low bid accepted")
	}

	// Sufficient bid: token moves, seller is paid, excess refunded.
	aliceBefore := c.BalanceOf(alice)
	bobBefore := c.BalanceOf(bob)
	mustSucceed(t, call(t, c, bob, AuctionName, "bid", 2000, EncodeArgs(U64(id))))
	tok, err := ReadToken(c, id)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Owner != bob {
		t.Fatal("auction did not transfer token")
	}
	paid := bobBefore - c.BalanceOf(bob)
	earned := c.BalanceOf(alice) - aliceBefore
	if paid != earned || paid == 0 || paid > 1000 {
		t.Fatalf("paid %d, earned %d", paid, earned)
	}

	// Listing is gone.
	r = call(t, c, bob, AuctionName, "price", 0, EncodeArgs(U64(id)))
	if r.Err == nil {
		t.Fatal("listing survived sale")
	}
}

func TestAuctionCancel(t *testing.T) {
	c, alice, bob := marketplace(t)
	r := mustSucceed(t, call(t, c, alice, DataNFTName, "mint", 0,
		EncodeArgs(bytes.Repeat([]byte{1}, 32), bytes.Repeat([]byte{2}, 32))))
	id, _ := DecU64(r.Return)
	auctionAddr := chain.ContractAddress(AuctionName)
	mustSucceed(t, call(t, c, alice, DataNFTName, "approve", 0, EncodeArgs(U64(id), auctionAddr[:])))
	mustSucceed(t, call(t, c, alice, AuctionName, "create", 0,
		EncodeArgs(U64(id), U64(500), U64(500), U64(5))))
	// Only the lister can cancel.
	r = call(t, c, bob, AuctionName, "cancel", 0, EncodeArgs(U64(id)))
	if r.Err == nil {
		t.Fatal("stranger cancelled listing")
	}
	mustSucceed(t, call(t, c, alice, AuctionName, "cancel", 0, EncodeArgs(U64(id))))
	r = call(t, c, bob, AuctionName, "bid", 500, EncodeArgs(U64(id)))
	if r.Err == nil {
		t.Fatal("bid on cancelled listing succeeded")
	}
}

// testProofSystem builds a tiny circuit (x·y = pub) and returns everything
// needed to exercise the on-chain verifier and escrow.
var testProofSystem = sync.OnceValue(func() (out struct {
	vk     *plonk.VerifyingKey
	proof  *plonk.Proof
	public []fr.Element
}) {
	tau := fr.NewElement(0xabc)
	srs, err := kzg.NewSRSFromSecret(64, &tau)
	if err != nil {
		panic(err)
	}
	cs := plonk.NewConstraintSystem(1)
	x := cs.NewVariable()
	y := cs.NewVariable()
	minusOne := fr.NewFromInt64(-1)
	cs.MustAddGate(plonk.Gate{QM: fr.One(), QO: minusOne, A: x, B: y, C: 0})
	witness := []fr.Element{fr.NewElement(391), fr.NewElement(17), fr.NewElement(23)}
	pk, vk, err := plonk.Setup(cs, srs)
	if err != nil {
		panic(err)
	}
	proof, err := plonk.Prove(pk, witness)
	if err != nil {
		panic(err)
	}
	out.vk = vk
	out.proof = proof
	out.public = witness[:1]
	return out
})

func TestOnChainVerifier(t *testing.T) {
	ps := testProofSystem()
	c := chain.New()
	gas, err := c.Deploy("verifier", NewVerifier(ps.vk), VerifierCodeSize)
	if err != nil {
		t.Fatal(err)
	}
	// Table II: verifier deployment ≈ 1,644,969.
	if gas < 1_500_000 || gas > 1_800_000 {
		t.Fatalf("verifier deployment gas %d out of Table II range", gas)
	}
	alice := chain.AddressFromString("alice")

	r := call(t, c, alice, "verifier", "verify", 0, VerifyArgs(ps.proof, ps.public))
	mustSucceed(t, r)
	if len(r.Return) != 1 || r.Return[0] != 1 {
		t.Fatal("verifier did not return success")
	}
	// Verification gas is the precompile schedule, independent of circuit.
	if r.GasUsed < chain.GasPairingBase {
		t.Fatalf("verification gas %d too low", r.GasUsed)
	}

	// Wrong public input must revert.
	bad := []fr.Element{fr.NewElement(392)}
	r = call(t, c, alice, "verifier", "verify", 0, VerifyArgs(ps.proof, bad))
	if r.Err == nil {
		t.Fatal("wrong public input verified on-chain")
	}
	// Corrupted proof bytes must revert.
	blob := VerifyArgs(ps.proof, ps.public)
	blob[10] ^= 0xff
	r = call(t, c, alice, "verifier", "verify", 0, blob)
	if r.Err == nil {
		t.Fatal("corrupted proof verified on-chain")
	}
}

// escrowEnv deploys escrow + a verifier for the tiny test circuit. The
// "π_k" here is the test circuit's proof; the real key-negotiation circuit
// is exercised in internal/core.
func escrowEnv(t *testing.T) (*chain.Chain, chain.Address, chain.Address, [][]byte) {
	t.Helper()
	ps := testProofSystem()
	c := chain.New()
	if _, err := c.Deploy("pik-verifier", NewVerifier(ps.vk), VerifierCodeSize); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy(EscrowName, NewEscrow("pik-verifier", 10), EscrowCodeSize); err != nil {
		t.Fatal(err)
	}
	buyer := chain.AddressFromString("buyer")
	seller := chain.AddressFromString("seller")
	c.Faucet(buyer, 1_000_000)
	c.Faucet(seller, 1_000_000)

	// For escrow mechanics tests, treat the single public input as kc and
	// use fixed c/hv values bound at open time. We pack the verify args as
	// (proof, kc, c, hv) — but the tiny circuit has one public input, so
	// bind c and hv to kc's value too via a 3-public circuit below in core
	// tests; here they are opaque byte strings compared by the contract.
	pub := ps.public[0].Bytes()
	parts := [][]byte{ps.proof.Bytes(), pub[:], pub[:], pub[:]}
	return c, buyer, seller, parts
}

func TestEscrowLifecycle(t *testing.T) {
	// The tiny circuit has 1 public input but the escrow passes 3 — the
	// verifier will reject arity. Build a 3-public circuit instead.
	tau := fr.NewElement(0xdef)
	srs, err := kzg.NewSRSFromSecret(64, &tau)
	if err != nil {
		t.Fatal(err)
	}
	cs := plonk.NewConstraintSystem(3)
	// kc = c + hv (a toy stand-in for the real π_k relation).
	minusOne := fr.NewFromInt64(-1)
	cs.MustAddGate(plonk.Gate{QL: fr.One(), QR: fr.One(), QO: minusOne, A: 1, B: 2, C: 0})
	kcv := fr.NewElement(30)
	cv := fr.NewElement(10)
	hvv := fr.NewElement(20)
	witness := []fr.Element{kcv, cv, hvv}
	pk, vk, err := plonk.Setup(cs, srs)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := plonk.Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}

	c := chain.New()
	if _, err := c.Deploy("pik-verifier", NewVerifier(vk), VerifierCodeSize); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy(EscrowName, NewEscrow("pik-verifier", 10), EscrowCodeSize); err != nil {
		t.Fatal(err)
	}
	buyer := chain.AddressFromString("buyer")
	seller := chain.AddressFromString("seller")
	c.Faucet(buyer, 1_000_000)
	c.Faucet(seller, 1_000_000)

	kcB := kcv.Bytes()
	cB := cv.Bytes()
	hvB := hvv.Bytes()

	// Buyer opens with payment locked.
	mustSucceed(t, call(t, c, buyer, EscrowName, "open", 5000,
		EncodeArgs(U64(1), seller[:], hvB[:], cB[:])))
	if got := c.BalanceOf(buyer); got != 995_000 {
		t.Fatalf("buyer balance %d", got)
	}
	// Duplicate open rejected.
	r := call(t, c, buyer, EscrowName, "open", 1, EncodeArgs(U64(1), seller[:], hvB[:], cB[:]))
	if r.Err == nil {
		t.Fatal("duplicate exchange opened")
	}

	// Stranger cannot settle.
	settleArgs := EncodeArgs(U64(1), kcB[:], proof.Bytes(), kcB[:], cB[:], hvB[:])
	r = call(t, c, buyer, EscrowName, "settle", 0, settleArgs)
	if r.Err == nil {
		t.Fatal("buyer settled own exchange")
	}

	// Seller settles with a valid proof: payment moves, kc published.
	sellerBefore := c.BalanceOf(seller)
	mustSucceed(t, call(t, c, seller, EscrowName, "settle", 0, settleArgs))
	if got := c.BalanceOf(seller) - sellerBefore; got != 5000 {
		t.Fatalf("seller earned %d, want 5000", got)
	}
	gotKc, err := ReadSettledKc(c, EscrowName, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotKc, kcB[:]) {
		t.Fatal("published kc mismatch")
	}
	// Double settle rejected.
	r = call(t, c, seller, EscrowName, "settle", 0, settleArgs)
	if r.Err == nil {
		t.Fatal("double settle succeeded")
	}

	// A second exchange with mismatched public inputs must fail.
	mustSucceed(t, call(t, c, buyer, EscrowName, "open", 100,
		EncodeArgs(U64(2), seller[:], hvB[:], cB[:])))
	wrongHvEl := fr.NewElement(21)
	wrongHv := wrongHvEl.Bytes()
	badArgs := EncodeArgs(U64(2), kcB[:], proof.Bytes(), kcB[:], cB[:], wrongHv[:])
	r = call(t, c, seller, EscrowName, "settle", 0, badArgs)
	if r.Err == nil {
		t.Fatal("settle with mismatched publics succeeded")
	}
}

func TestEscrowRefund(t *testing.T) {
	c, buyer, seller, parts := escrowEnv(t)
	hv := parts[3]
	cc := parts[2]
	mustSucceed(t, call(t, c, buyer, EscrowName, "open", 777, EncodeArgs(U64(9), seller[:], hv, cc)))

	// Refund before deadline rejected.
	r := call(t, c, buyer, EscrowName, "refund", 0, EncodeArgs(U64(9)))
	if r.Err == nil {
		t.Fatal("early refund succeeded")
	}
	for i := 0; i < 12; i++ {
		c.SealBlock()
	}
	// Stranger cannot refund.
	r = call(t, c, seller, EscrowName, "refund", 0, EncodeArgs(U64(9)))
	if r.Err == nil {
		t.Fatal("seller refunded buyer's escrow")
	}
	before := c.BalanceOf(buyer)
	mustSucceed(t, call(t, c, buyer, EscrowName, "refund", 0, EncodeArgs(U64(9))))
	if got := c.BalanceOf(buyer) - before; got != 777 {
		t.Fatalf("refund %d, want 777", got)
	}
	// Double refund rejected.
	r = call(t, c, buyer, EscrowName, "refund", 0, EncodeArgs(U64(9)))
	if r.Err == nil {
		t.Fatal("double refund succeeded")
	}
	// Unknown exchange.
	r = call(t, c, buyer, EscrowName, "refund", 0, EncodeArgs(U64(404)))
	if r.Err == nil || !errors.Is(r.Err, chain.ErrReverted) {
		t.Fatal("unknown exchange refund succeeded")
	}
}

func TestTableIIGasShape(t *testing.T) {
	// The headline Table II comparison: deployment ~1M, verifier ~1.6M,
	// minting ~100k, transfer cheapest, transformations under minting.
	c, alice, bob := marketplace(t)
	uri := bytes.Repeat([]byte{0xaa}, 32)
	cm := bytes.Repeat([]byte{0xbb}, 32)

	mint1 := mustSucceed(t, call(t, c, alice, DataNFTName, "mint", 0, EncodeArgs(uri, cm))).GasUsed
	r := mustSucceed(t, call(t, c, alice, DataNFTName, "mint", 0, EncodeArgs(uri, cm)))
	id2, _ := DecU64(r.Return)
	// Warm up bob's balance slot so the transfer measurement matches the
	// steady-state (existing-holder) case the paper reports.
	r = mustSucceed(t, call(t, c, bob, DataNFTName, "mint", 0, EncodeArgs(uri, cm)))
	transfer := mustSucceed(t, call(t, c, alice, DataNFTName, "transfer", 0, EncodeArgs(U64(id2), bob[:]))).GasUsed
	burn := mustSucceed(t, call(t, c, bob, DataNFTName, "burn", 0, EncodeArgs(U64(id2)))).GasUsed

	if transfer >= mint1 || burn >= mint1 {
		t.Fatalf("transfer (%d) and burn (%d) should be cheaper than mint (%d)", transfer, burn, mint1)
	}
	// Magnitudes: within a factor ~2 of Table II (the exact split between
	// slots differs from the authors' Solidity layout; EXPERIMENTS.md
	// records the side-by-side numbers).
	within := func(got, want uint64) bool {
		lo, hi := want/2, want*2
		return got >= lo && got <= hi
	}
	if !within(mint1, 106048) {
		t.Fatalf("mint gas %d vs paper 106048", mint1)
	}
	if !within(transfer, 36574) {
		t.Fatalf("transfer gas %d vs paper 36574", transfer)
	}
	if !within(burn, 50084) {
		t.Fatalf("burn gas %d vs paper 50084", burn)
	}
}

func TestAuctionPriceFloorAfterExpiry(t *testing.T) {
	c, alice, bob := marketplace(t)
	r := mustSucceed(t, call(t, c, alice, DataNFTName, "mint", 0,
		EncodeArgs(bytes.Repeat([]byte{1}, 32), bytes.Repeat([]byte{2}, 32))))
	id, _ := DecU64(r.Return)
	auctionAddr := chain.ContractAddress(AuctionName)
	mustSucceed(t, call(t, c, alice, DataNFTName, "approve", 0, EncodeArgs(U64(id), auctionAddr[:])))
	mustSucceed(t, call(t, c, alice, AuctionName, "create", 0,
		EncodeArgs(U64(id), U64(1000), U64(100), U64(3))))
	for i := 0; i < 10; i++ {
		c.SealBlock()
	}
	r = mustSucceed(t, call(t, c, bob, AuctionName, "price", 0, EncodeArgs(U64(id))))
	price, _ := DecU64(r.Return)
	if price != 100 {
		t.Fatalf("price after expiry %d, want end price 100", price)
	}
	// Bid at the floor still works.
	mustSucceed(t, call(t, c, bob, AuctionName, "bid", 100, EncodeArgs(U64(id))))
}

func TestAuctionCreateValidation(t *testing.T) {
	c, alice, _ := marketplace(t)
	r := mustSucceed(t, call(t, c, alice, DataNFTName, "mint", 0,
		EncodeArgs(bytes.Repeat([]byte{1}, 32), bytes.Repeat([]byte{2}, 32))))
	id, _ := DecU64(r.Return)
	// End price above start price.
	r = call(t, c, alice, AuctionName, "create", 0, EncodeArgs(U64(id), U64(100), U64(200), U64(5)))
	if r.Err == nil {
		t.Fatal("inverted price range accepted")
	}
	// Zero duration.
	r = call(t, c, alice, AuctionName, "create", 0, EncodeArgs(U64(id), U64(200), U64(100), U64(0)))
	if r.Err == nil {
		t.Fatal("zero duration accepted")
	}
	// Listing twice.
	mustSucceed(t, call(t, c, alice, AuctionName, "create", 0, EncodeArgs(U64(id), U64(200), U64(100), U64(5))))
	r = call(t, c, alice, AuctionName, "create", 0, EncodeArgs(U64(id), U64(200), U64(100), U64(5)))
	if r.Err == nil {
		t.Fatal("double listing accepted")
	}
	// Unknown method.
	r = call(t, c, alice, AuctionName, "nope", 0, EncodeArgs(U64(id)))
	if r.Err == nil {
		t.Fatal("unknown auction method accepted")
	}
}

func TestAuctionBidWithoutApproval(t *testing.T) {
	c, alice, bob := marketplace(t)
	r := mustSucceed(t, call(t, c, alice, DataNFTName, "mint", 0,
		EncodeArgs(bytes.Repeat([]byte{1}, 32), bytes.Repeat([]byte{2}, 32))))
	id, _ := DecU64(r.Return)
	// Listed, but the auction was never approved as operator: the bid must
	// revert inside transferFrom, refunding the bidder.
	mustSucceed(t, call(t, c, alice, AuctionName, "create", 0,
		EncodeArgs(U64(id), U64(100), U64(100), U64(5))))
	before := c.BalanceOf(bob)
	r = call(t, c, bob, AuctionName, "bid", 100, EncodeArgs(U64(id)))
	if r.Err == nil {
		t.Fatal("bid succeeded without operator approval")
	}
	if c.BalanceOf(bob) != before {
		t.Fatal("failed bid not refunded")
	}
	// Token still belongs to alice.
	tok, err := ReadToken(c, id)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Owner != alice {
		t.Fatal("token moved despite revert")
	}
}

func TestTransferFromRequiresApproval(t *testing.T) {
	c, alice, bob := marketplace(t)
	r := mustSucceed(t, call(t, c, alice, DataNFTName, "mint", 0,
		EncodeArgs(bytes.Repeat([]byte{1}, 32), bytes.Repeat([]byte{2}, 32))))
	id, _ := DecU64(r.Return)
	// Bob (not an operator) cannot transferFrom.
	r = call(t, c, bob, DataNFTName, "transferFrom", 0, EncodeArgs(U64(id), alice[:], bob[:]))
	if r.Err == nil {
		t.Fatal("unapproved transferFrom succeeded")
	}
	// Approval is single-use: approve bob, transfer, then a second
	// transferFrom fails.
	mustSucceed(t, call(t, c, alice, DataNFTName, "approve", 0, EncodeArgs(U64(id), bob[:])))
	mustSucceed(t, call(t, c, bob, DataNFTName, "transferFrom", 0, EncodeArgs(U64(id), alice[:], bob[:])))
	r = call(t, c, bob, DataNFTName, "transferFrom", 0, EncodeArgs(U64(id), bob[:], alice[:]))
	if r.Err == nil {
		t.Fatal("approval survived a transfer")
	}
	// Approving a token you don't own fails.
	r = call(t, c, alice, DataNFTName, "approve", 0, EncodeArgs(U64(id), alice[:]))
	if r.Err == nil {
		t.Fatal("non-owner approval succeeded")
	}
}

func TestDataNFTArgumentValidation(t *testing.T) {
	c, alice, _ := marketplace(t)
	cases := []struct {
		method string
		args   []byte
	}{
		{"mint", EncodeArgs([]byte{1})},                             // wrong arity
		{"transfer", EncodeArgs(U64(1), []byte{1, 2})},              // bad address
		{"transfer", EncodeArgs([]byte{9}, make([]byte, 20))},       // bad id
		{"ownerOf", EncodeArgs(U64(404))},                           // unknown token
		{"burn", EncodeArgs(U64(404))},                              // unknown token
		{"duplicate", EncodeArgs(U64(404), []byte{1}, []byte{2})},   // unknown parent
		{"partition", EncodeArgs(U64(1), []byte{1})},                // bad layout
		{"process", EncodeArgs(U64List(nil), []byte{1}, []byte{2})}, // no parents
		{"nope", nil}, // unknown method
	}
	for _, tc := range cases {
		r := call(t, c, alice, DataNFTName, tc.method, 0, tc.args)
		if r.Err == nil {
			t.Fatalf("%s with bad args succeeded", tc.method)
		}
	}
}

func TestVerifierUnknownMethodAndArity(t *testing.T) {
	ps := testProofSystem()
	c := chain.New()
	if _, err := c.Deploy("verifier", NewVerifier(ps.vk), VerifierCodeSize); err != nil {
		t.Fatal(err)
	}
	alice := chain.AddressFromString("alice")
	r := call(t, c, alice, "verifier", "nope", 0, nil)
	if r.Err == nil {
		t.Fatal("unknown verifier method accepted")
	}
	r = call(t, c, alice, "verifier", "verify", 0, EncodeArgs())
	if r.Err == nil {
		t.Fatal("verify without proof accepted")
	}
	// Wrong public-input arity (vk expects 1).
	pub := ps.public[0].Bytes()
	r = call(t, c, alice, "verifier", "verify", 0, EncodeArgs(ps.proof.Bytes(), pub[:], pub[:]))
	if r.Err == nil {
		t.Fatal("wrong arity verified")
	}
	// Non-canonical public input.
	bad := bytes.Repeat([]byte{0xff}, 32)
	r = call(t, c, alice, "verifier", "verify", 0, EncodeArgs(ps.proof.Bytes(), bad))
	if r.Err == nil {
		t.Fatal("non-canonical public input accepted")
	}
}

func TestEscrowSettleAfterDeadline(t *testing.T) {
	c, buyer, seller, parts := escrowEnv(t)
	hv, cc := parts[3], parts[2]
	mustSucceed(t, call(t, c, buyer, EscrowName, "open", 100, EncodeArgs(U64(3), seller[:], hv, cc)))
	for i := 0; i < 12; i++ {
		c.SealBlock()
	}
	kc := parts[1]
	args := EncodeArgs(U64(3), kc, parts[0], kc, cc, hv)
	r := call(t, c, seller, EscrowName, "settle", 0, args)
	if r.Err == nil {
		t.Fatal("settle after deadline succeeded")
	}
	// The buyer can still refund.
	mustSucceed(t, call(t, c, buyer, EscrowName, "refund", 0, EncodeArgs(U64(3))))
}

func TestEscrowArgumentValidation(t *testing.T) {
	c, buyer, _, parts := escrowEnv(t)
	// Bad seller address length.
	r := call(t, c, buyer, EscrowName, "open", 10, EncodeArgs(U64(5), []byte{1, 2}, parts[3], parts[2]))
	if r.Err == nil {
		t.Fatal("bad seller address accepted")
	}
	// Unknown method.
	r = call(t, c, buyer, EscrowName, "nope", 0, nil)
	if r.Err == nil {
		t.Fatal("unknown escrow method accepted")
	}
	// Settle on unknown exchange.
	kc := parts[1]
	r = call(t, c, buyer, EscrowName, "settle", 0, EncodeArgs(U64(404), kc, parts[0], kc, parts[2], parts[3]))
	if r.Err == nil {
		t.Fatal("settle on unknown exchange accepted")
	}
	// ReadSettledKc on unknown/unsettled exchanges.
	if _, err := ReadSettledKc(c, EscrowName, 404); err == nil {
		t.Fatal("kc for unknown exchange")
	}
}

func TestTransformKindString(t *testing.T) {
	kinds := map[TransformKind]string{
		KindMint: "mint", KindAggregation: "aggregation", KindPartition: "partition",
		KindDuplication: "duplication", KindProcessing: "processing", TransformKind(99): "unknown(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestVerificationGasFormula(t *testing.T) {
	g0 := VerificationGas(0)
	g10 := VerificationGas(10)
	if g0 < chain.GasPairingBase+2*chain.GasPairingPerPair {
		t.Fatal("verification gas below pairing floor")
	}
	if g10-g0 != 10*chain.GasEcMul {
		t.Fatalf("per-input gas %d, want %d", g10-g0, 10*chain.GasEcMul)
	}
}
