// Package contracts implements ZKDET's on-chain layer as native-Go
// contracts on the internal/chain substrate: the DataNFT token (ERC-721
// semantics plus the prevIds[] lineage field of §III-B), the clock auction
// of §III-C, the escrow arbiter 𝒥 of the key-secure exchange protocol
// (§IV-F), and the on-chain Plonk verifier of §VI-C2.
package contracts

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadArgs reports malformed call arguments.
var ErrBadArgs = errors.New("contracts: malformed arguments")

// EncodeArgs packs byte strings into a length-prefixed blob, the calling
// convention of all contracts in this package.
func EncodeArgs(parts ...[]byte) []byte {
	size := 0
	for _, p := range parts {
		size += 4 + len(p)
	}
	out := make([]byte, 0, size)
	for _, p := range parts {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(p)))
		out = append(out, l[:]...)
		out = append(out, p...)
	}
	return out
}

// DecodeArgs unpacks a length-prefixed blob into exactly n parts.
func DecodeArgs(data []byte, n int) ([][]byte, error) {
	parts, err := DecodeArgsVariadic(data)
	if err != nil {
		return nil, err
	}
	if len(parts) != n {
		return nil, fmt.Errorf("%w: got %d parts, want %d", ErrBadArgs, len(parts), n)
	}
	return parts, nil
}

// DecodeArgsVariadic unpacks a length-prefixed blob into all its parts.
func DecodeArgsVariadic(data []byte) ([][]byte, error) {
	var parts [][]byte
	for len(data) > 0 {
		if len(data) < 4 {
			return nil, fmt.Errorf("%w: truncated length prefix", ErrBadArgs)
		}
		l := binary.BigEndian.Uint32(data[:4])
		data = data[4:]
		if uint32(len(data)) < l {
			return nil, fmt.Errorf("%w: truncated payload", ErrBadArgs)
		}
		parts = append(parts, data[:l])
		data = data[l:]
	}
	return parts, nil
}

// U64 encodes a uint64 big-endian.
func U64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// DecU64 decodes a big-endian uint64.
func DecU64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("%w: uint64 must be 8 bytes, got %d", ErrBadArgs, len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// U64List encodes a slice of token ids.
func U64List(vs []uint64) []byte {
	out := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		out = append(out, U64(v)...)
	}
	return out
}

// DecU64List decodes a packed id list.
func DecU64List(b []byte) ([]uint64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: id list length %d", ErrBadArgs, len(b))
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.BigEndian.Uint64(b[8*i : 8*i+8])
	}
	return out, nil
}
