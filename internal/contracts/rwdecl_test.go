package contracts

import (
	"fmt"
	"testing"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/plonk"
)

// exchangeWorld deploys the full contract suite — NFT, auction, verifier,
// escrow — with n funded traders, and returns a valid settle calldata
// builder (toy π_k relation kc = c + hv, as in TestEscrowLifecycle).
func exchangeWorld(t *testing.T, n int) (*chain.Chain, []chain.Address, func(id uint64) []byte) {
	t.Helper()
	tau := fr.NewElement(0xdef)
	srs, err := kzg.NewSRSFromSecret(64, &tau)
	if err != nil {
		t.Fatal(err)
	}
	cs := plonk.NewConstraintSystem(3)
	minusOne := fr.NewFromInt64(-1)
	cs.MustAddGate(plonk.Gate{QL: fr.One(), QR: fr.One(), QO: minusOne, A: 1, B: 2, C: 0})
	kcv, cv, hvv := fr.NewElement(30), fr.NewElement(10), fr.NewElement(20)
	pk, vk, err := plonk.Setup(cs, srs)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := plonk.Prove(pk, []fr.Element{kcv, cv, hvv})
	if err != nil {
		t.Fatal(err)
	}

	c := chain.New()
	if _, err := c.Deploy(DataNFTName, &DataNFT{}, DataNFTCodeSize); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy(AuctionName, NewClockAuction(DataNFTName), AuctionCodeSize); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("pik-verifier", NewVerifier(vk), VerifierCodeSize); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy(EscrowName, NewEscrow("pik-verifier", 10), EscrowCodeSize); err != nil {
		t.Fatal(err)
	}
	traders := make([]chain.Address, n)
	for i := range traders {
		traders[i] = chain.AddressFromString(fmt.Sprintf("trader-%d", i))
		c.Faucet(traders[i], 10_000_000)
	}
	kcB, cB, hvB := kcv.Bytes(), cv.Bytes(), hvv.Bytes()
	settleArgs := func(id uint64) []byte {
		return EncodeArgs(U64(id), kcB[:], proof.Bytes(), kcB[:], cB[:], hvB[:])
	}
	return c, traders, settleArgs
}

// TestParallelBatchExchangeIdentity runs the paper's exchange workload —
// mints, transfers, approvals, escrow opens and settles, auction listings
// and bids — through SubmitBatch on one chain and the serial path on
// another, and requires identical receipts, blocks and state. This is the
// real-contract counterpart of the chain package's randomized property
// test, exercising the DeclareRW implementations above.
func TestParallelBatchExchangeIdentity(t *testing.T) {
	const nTraders = 6
	serialC, traders, settleArgs := exchangeWorld(t, nTraders)
	parC, _, _ := exchangeWorld(t, nTraders) // same τ/SRS: both chains accept the same proof bytes

	nonces := make(map[chain.Address]uint64)
	mkTx := func(from chain.Address, contract, method string, value uint64, args []byte) chain.Transaction {
		tx := chain.Transaction{
			From: from, Contract: contract, Method: method,
			Args: args, Value: value, Nonce: nonces[from],
		}
		nonces[from]++
		return tx
	}
	openArgs := func(id uint64, seller chain.Address) []byte {
		cv, hvv := fr.NewElement(10), fr.NewElement(20)
		cB, hvB := cv.Bytes(), hvv.Bytes()
		return EncodeArgs(U64(id), seller[:], hvB[:], cB[:])
	}

	runRound := func(round int, txs []chain.Transaction) {
		t.Helper()
		serialOut := serialC.SubmitBatch(txs, 1)
		parOut := parC.SubmitBatch(txs, 8)
		for i := range txs {
			s, p := serialOut[i], parOut[i]
			if (s.Err == nil) != (p.Err == nil) ||
				(s.Err != nil && s.Err.Error() != p.Err.Error()) {
				t.Fatalf("round %d tx %d: err %v, serial %v", round, i, p.Err, s.Err)
			}
			if s.Receipt == nil {
				continue
			}
			if p.Receipt.GasUsed != s.Receipt.GasUsed ||
				string(p.Receipt.Return) != string(s.Receipt.Return) ||
				len(p.Receipt.Logs) != len(s.Receipt.Logs) {
				t.Fatalf("round %d tx %d: receipt diverged (%s.%s)", round, i, txs[i].Contract, txs[i].Method)
			}
			if (s.Receipt.Err == nil) != (p.Receipt.Err == nil) ||
				(s.Receipt.Err != nil && s.Receipt.Err.Error() != p.Receipt.Err.Error()) {
				t.Fatalf("round %d tx %d: receipt err %v, serial %v", round, i, p.Receipt.Err, s.Receipt.Err)
			}
		}
		sb, pb := serialC.SealBlock(), parC.SealBlock()
		if sb.Hash() != pb.Hash() {
			t.Fatalf("round %d: sealed hash diverged (state roots %s vs %s)", round, pb.StateRoot, sb.StateRoot)
		}
		for _, a := range traders {
			if serialC.BalanceOf(a) != parC.BalanceOf(a) || serialC.NonceOf(a) != parC.NonceOf(a) {
				t.Fatalf("round %d: account %s diverged", round, a)
			}
		}
	}

	// Round 1: every trader mints (ids 1..n, all grouped on nextId);
	// half open escrows toward their neighbor; two list auctions.
	var txs []chain.Transaction
	for i, tr := range traders {
		txs = append(txs, mkTx(tr, DataNFTName, "mint", 0,
			EncodeArgs([]byte(fmt.Sprintf("uri-%d", i)), []byte(fmt.Sprintf("commit-%d", i)))))
	}
	for i := 0; i < nTraders/2; i++ {
		seller := traders[(i+1)%nTraders]
		txs = append(txs, mkTx(traders[i], EscrowName, "open", uint64(1000+i), openArgs(uint64(i+1), seller)))
	}
	txs = append(txs,
		mkTx(traders[4], AuctionName, "create", 0, EncodeArgs(U64(5), U64(5000), U64(1000), U64(100))),
		mkTx(traders[5], AuctionName, "create", 0, EncodeArgs(U64(6), U64(4000), U64(2000), U64(50))),
	)
	runRound(1, txs)

	// Round 2: cross transfers, operator approvals for the auction, a
	// settle per open escrow (serial-only path), one premature refund
	// (reverts), one auction cancel.
	txs = nil
	auctionOp := chain.ContractAddress(AuctionName)
	for i := 0; i < 2; i++ {
		txs = append(txs, mkTx(traders[i], DataNFTName, "transfer",
			0, EncodeArgs(U64(uint64(i+1)), traders[(i+3)%nTraders][:])))
	}
	txs = append(txs,
		mkTx(traders[4], DataNFTName, "approve", 0, EncodeArgs(U64(5), auctionOp[:])),
		mkTx(traders[5], DataNFTName, "approve", 0, EncodeArgs(U64(6), auctionOp[:])),
	)
	for i := 0; i < nTraders/2; i++ {
		seller := traders[(i+1)%nTraders]
		txs = append(txs, mkTx(seller, EscrowName, "settle", 0, settleArgs(uint64(i+1))))
	}
	txs = append(txs,
		mkTx(traders[0], EscrowName, "refund", 0, EncodeArgs(U64(1))), // settled → reverts
		mkTx(traders[5], AuctionName, "cancel", 0, EncodeArgs(U64(6))),
	)
	runRound(2, txs)

	// Round 3: a bid (serial-only, cross-contract transferFrom), burns,
	// and a transform mixing declared parent reads with dynamic mints.
	txs = nil
	txs = append(txs,
		mkTx(traders[2], AuctionName, "bid", 6000, EncodeArgs(U64(5))),
		mkTx(traders[3], DataNFTName, "burn", 0, EncodeArgs(U64(4))),
		mkTx(traders[2], DataNFTName, "duplicate", 0,
			EncodeArgs(U64(3), []byte("uri-dup"), []byte("commit-dup"))),
	)
	runRound(3, txs)

	// The parallel chain must actually have speculated and committed work.
	speculated, committed, _, _ := parC.ExecStats()
	if speculated == 0 || committed == 0 {
		t.Fatalf("engine never speculated (speculated %d, committed %d)", speculated, committed)
	}
}

// TestVerifierSerialOnlyPreservesPreverification pins the engine contract
// that makes batch verification safe: pre-verification marks are consumed
// exactly once even when the consuming transactions run through the
// parallel engine, because verifier-reaching calls never speculate.
func TestVerifierSerialOnlyPreservesPreverification(t *testing.T) {
	ps := testProofSystem()
	c := chain.New()
	v := NewVerifier(ps.vk)
	if _, err := c.Deploy("verifier", v, VerifierCodeSize); err != nil {
		t.Fatal(err)
	}
	senders := make([]chain.Address, 4)
	for i := range senders {
		senders[i] = chain.AddressFromString(fmt.Sprintf("v-sender-%d", i))
		c.Faucet(senders[i], 10_000_000)
	}
	pub := ps.public[0].Bytes()
	verifyArgs := EncodeArgs(ps.proof.Bytes(), pub[:])

	// Mark each call's digest once, as the seal-time batch checker would.
	for range senders {
		v.markPreverified(verifyDigest(verifyArgs), len(senders))
	}
	txs := make([]chain.Transaction, len(senders))
	for i, s := range senders {
		txs[i] = chain.Transaction{From: s, Contract: "verifier", Method: "verify", Args: verifyArgs, Nonce: 0}
	}
	out := c.SubmitBatch(txs, 4)
	for i, o := range out {
		if o.Err != nil || o.Receipt.Err != nil {
			t.Fatalf("tx %d: %v %v", i, o.Err, o.Receipt.Err)
		}
	}
	// All four marks consumed: a fifth verify pays the full pairing cost.
	gasPre := out[0].Receipt.GasUsed
	extra := chain.Transaction{From: senders[0], Contract: "verifier", Method: "verify", Args: verifyArgs, Nonce: 1}
	r, err := c.Submit(extra)
	if err != nil {
		t.Fatal(err)
	}
	if r.Err != nil {
		t.Fatalf("unmarked verify failed: %v", r.Err)
	}
	if r.GasUsed <= gasPre {
		t.Fatalf("unmarked verify gas %d not above pre-verified %d — a speculation consumed a mark twice?", r.GasUsed, gasPre)
	}
}
