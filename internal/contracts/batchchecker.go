package contracts

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/ct"
	"github.com/zkdet/zkdet/internal/plonk"
)

// BlockProofChecker batch-verifies the Plonk proofs carried by a block's
// transactions before they execute. The block producer hands it the popped
// transactions; it recognises the proof-carrying ones (direct verifier
// calls, escrow settlements, and confidential-token transfers), folds the
// proofs into as few pairing checks as possible, and marks the valid ones
// pre-verified on their verifier contract — execution then charges the
// amortised gas schedule and skips the pairing. Invalid proofs are
// reported by index so the producer can evict them without wasting block
// space; plonk.Batch's bisection isolates offenders in O(k·log n) pairing
// checks.
//
// A transaction can carry several proofs (a confidential transfer has one
// π_ct per output); proofs under verifying keys that share an SRS (equal
// G2 tail) fold into a single pairing via plonk.Batch.AddFor, so π_k
// settlements and π_ct range proofs in the same block cost one pairing
// check total when their keys came from the same ceremony.
//
// It implements the node package's SealVerifier interface structurally,
// keeping the dependency pointing from the application layer down to the
// node rather than the reverse.
type BlockProofChecker struct {
	verifiers map[string]*Verifier
	escrows   map[string]*Escrow
	cts       map[string]*ConfidentialToken
}

// NewBlockProofChecker returns an empty checker; register the deployed
// contracts with AddVerifier/AddEscrow/AddConfidential.
func NewBlockProofChecker() *BlockProofChecker {
	return &BlockProofChecker{
		verifiers: make(map[string]*Verifier),
		escrows:   make(map[string]*Escrow),
		cts:       make(map[string]*ConfidentialToken),
	}
}

// AddVerifier registers a deployed verifier contract under its deployment
// name, enabling seal-time batching for direct verify transactions.
func (bc *BlockProofChecker) AddVerifier(name string, v *Verifier) {
	bc.verifiers[name] = v
}

// AddEscrow registers a deployed escrow so its settle transactions — which
// call the escrow's verifier internally — join the seal-time batch too.
func (bc *BlockProofChecker) AddEscrow(name string, e *Escrow) {
	bc.escrows[name] = e
}

// AddConfidential registers a deployed confidential-token contract: its
// mint/transfer transactions get a stateless sigma pre-check (balance and
// auditor-ciphertext consistency, no chain state needed) and their π_ct
// range proofs join the seal-time fold against the registered range
// verifier.
func (bc *BlockProofChecker) AddConfidential(name string, tok *ConfidentialToken) {
	bc.cts[name] = tok
}

// proofItem is one Plonk proof riding in a transaction, targeted at a
// registered verifier contract.
type proofItem struct {
	v    *Verifier
	args []byte // verify calldata; digest(args) is the pre-verification key
}

// extractAll recognises a proof-carrying transaction and returns every
// Plonk proof it carries. A non-nil error means the transaction fails a
// stateless pre-check (malformed or forged confidential transfer) and
// should be dropped without wasting a pairing on it. ok is false for
// transactions that carry no recognisable proof.
func (bc *BlockProofChecker) extractAll(tx *chain.Transaction) ([]proofItem, bool, error) {
	if v, found := bc.verifiers[tx.Contract]; found && tx.Method == "verify" {
		return []proofItem{{v: v, args: tx.Args}}, true, nil
	}
	if e, found := bc.escrows[tx.Contract]; found && tx.Method == "settle" {
		parts, err := DecodeArgsVariadic(tx.Args)
		if err != nil || len(parts) < 3 {
			return nil, false, nil // malformed; let it revert on-chain
		}
		v, found := bc.verifiers[e.verifierName]
		if !found {
			return nil, false, nil
		}
		// settle(id, kc, verifyParts…): the escrow forwards
		// EncodeArgs(verifyParts…) to its verifier, so that is the
		// calldata to batch and to mark pre-verified.
		return []proofItem{{v: v, args: EncodeArgs(parts[2:]...)}}, true, nil
	}
	if tok, found := bc.cts[tx.Contract]; found && (tx.Method == "mint" || tx.Method == "transfer") {
		v, vfound := bc.verifiers[tok.rangeVerifierName]
		if !vfound {
			return nil, false, nil
		}
		d, err := DecodeCTTransfer(tx.Args)
		if err != nil {
			return nil, true, fmt.Errorf("%w: %w", ErrCTProofRejected, err)
		}
		// The sigma layer is stateless — input commitments ride in the
		// calldata (execution cross-checks them against storage), so the
		// network boundary can reject forged balances and inconsistent
		// auditor ciphertexts without any chain state.
		st := d.Statement(tx.From, tx.Method == "mint")
		if err := ct.VerifySigma(tok.params, &tok.auditor, st, d.Proof); err != nil {
			return nil, true, fmt.Errorf("%w: %w", ErrCTProofRejected, err)
		}
		e := ct.Challenge(tok.params, &tok.auditor, st, d.Proof)
		items := make([]proofItem, 0, len(d.Proof.Outputs))
		for i := range d.Proof.Outputs {
			op := &d.Proof.Outputs[i]
			if op.Range == nil {
				return nil, true, fmt.Errorf("%w: output %d missing range proof", ErrCTProofRejected, i)
			}
			items = append(items, proofItem{v: v, args: VerifyArgs(op.Range, ct.RangePublics(e, op.ZV, op.PT))})
		}
		return items, true, nil
	}
	return nil, false, nil
}

// VerifyBatch batch-verifies the proofs carried by txs. It returns the
// number of transactions whose proofs were all validated (and marked
// pre-verified on their contracts) and a per-transaction error slice:
// errs[i] != nil means transaction i carries a proof that fails
// verification and should be dropped from the block. Transactions that
// carry no recognisable proof are left untouched (nil error, not counted).
func (bc *BlockProofChecker) VerifyBatch(txs []*chain.Transaction) (int, []error) {
	return bc.checkBatch(txs, true)
}

// GossipCheck batch-verifies like VerifyBatch but never marks proofs
// pre-verified. It is the network-boundary validator: a gossip layer
// rejecting invalid payloads before re-propagation (and an importer
// screening a remote block) must not alter execution-time gas charging,
// which would make replicas charge different gas for the same transaction
// and diverge at the out-of-gas boundary.
func (bc *BlockProofChecker) GossipCheck(txs []*chain.Transaction) (int, []error) {
	return bc.checkBatch(txs, false)
}

// checkBatch is the shared verification core; mark selects whether valid
// proofs are recorded pre-verified on their contracts.
func (bc *BlockProofChecker) checkBatch(txs []*chain.Transaction, mark bool) (int, []error) {
	errs := make([]error, len(txs))

	// Collect every proof item in transaction order.
	type taggedItem struct {
		txIndex int
		proofItem
	}
	var items []taggedItem
	proofTx := make(map[int]int, len(txs)) // txIndex → item count
	for i, tx := range txs {
		txItems, ok, err := bc.extractAll(tx)
		if err != nil {
			errs[i] = err
			continue
		}
		if !ok {
			continue
		}
		proofTx[i] = len(txItems)
		for _, it := range txItems {
			items = append(items, taggedItem{txIndex: i, proofItem: it})
		}
	}

	// Fold items into batches grouped by SRS: verifying keys with an equal
	// G2 tail share one pairing check via AddFor, so π_k and π_ct proofs
	// from the same ceremony cost one fold. Groups form in item order, so
	// the construction is deterministic across replicas.
	type g2group struct {
		base    *Verifier
		batch   *plonk.Batch
		members []int // item indices, in batch position order
	}
	var groups []*g2group
	sameSRS := func(a, b *plonk.VerifyingKey) bool {
		return a.G2[0].Equal(&b.G2[0]) && a.G2[1].Equal(&b.G2[1])
	}
	for idx := range items {
		it := &items[idx]
		if errs[it.txIndex] != nil {
			continue // sibling item already failed this tx
		}
		proof, public, err := decodeVerifyArgs(it.args)
		if err != nil {
			errs[it.txIndex] = fmt.Errorf("%w: %w", ErrProofRejected, err)
			continue
		}
		var g *g2group
		for _, cand := range groups {
			if sameSRS(cand.base.vk, it.v.vk) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &g2group{base: it.v, batch: plonk.NewBatch(it.v.vk)}
			groups = append(groups, g)
		}
		if it.v == g.base {
			err = g.batch.Add(proof, public)
		} else {
			err = g.batch.AddFor(it.v.vk, proof, public)
		}
		if err != nil {
			errs[it.txIndex] = fmt.Errorf("%w: %w", ErrProofRejected, err)
			continue
		}
		g.members = append(g.members, idx)
	}

	// Check each fold; bisect to isolate offenders on failure.
	unbatched := make(map[int]bool) // item idx → fold failed for non-proof reasons
	for _, g := range groups {
		if g.batch.Len() == 0 {
			continue
		}
		if err := g.batch.Check(); err != nil {
			offenders, berr := g.batch.Bisect()
			if berr != nil {
				// Folding itself failed (not a proof problem): leave the
				// group un-batched; execution will verify each proof.
				for _, idx := range g.members {
					unbatched[idx] = true
				}
				continue
			}
			for _, pos := range offenders {
				idx := g.members[pos]
				errs[items[idx].txIndex] = fmt.Errorf("%w: seal-time batch check", ErrProofRejected)
			}
		}
	}

	// Second pass: mark surviving items, amortised over their own fold's
	// survivor count. Marking is withheld from any transaction with a
	// failed sibling item, so a half-valid confidential transfer never
	// leaves partial amortised marks behind after eviction.
	txUnbatched := make(map[int]bool)
	for idx := range unbatched {
		txUnbatched[items[idx].txIndex] = true
	}
	for _, g := range groups {
		survivors := 0
		for _, idx := range g.members {
			if errs[items[idx].txIndex] == nil && !unbatched[idx] {
				survivors++
			}
		}
		if !mark || survivors == 0 {
			continue
		}
		for _, idx := range g.members {
			it := &items[idx]
			if errs[it.txIndex] == nil && !unbatched[idx] && !txUnbatched[it.txIndex] {
				it.v.markPreverified(verifyDigest(it.args), survivors)
			}
		}
	}
	verified := 0
	for i, n := range proofTx {
		if n > 0 && errs[i] == nil && !txUnbatched[i] {
			verified++
		}
	}
	return verified, errs
}
