package contracts

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/plonk"
)

// BlockProofChecker batch-verifies the Plonk proofs carried by a block's
// transactions before they execute. The block producer hands it the popped
// transactions; it recognises the proof-carrying ones (direct verifier
// calls and escrow settlements), folds all proofs against the same
// verifying key into one pairing check, and marks the valid ones
// pre-verified on their verifier contract — execution then charges the
// amortised gas schedule and skips the pairing. Invalid proofs are
// reported by index so the producer can evict them without wasting block
// space; plonk.Batch's bisection isolates offenders in O(k·log n) pairing
// checks.
//
// It implements the node package's SealVerifier interface structurally,
// keeping the dependency pointing from the application layer down to the
// node rather than the reverse.
type BlockProofChecker struct {
	verifiers map[string]*Verifier
	escrows   map[string]*Escrow
}

// NewBlockProofChecker returns an empty checker; register the deployed
// contracts with AddVerifier/AddEscrow.
func NewBlockProofChecker() *BlockProofChecker {
	return &BlockProofChecker{
		verifiers: make(map[string]*Verifier),
		escrows:   make(map[string]*Escrow),
	}
}

// AddVerifier registers a deployed verifier contract under its deployment
// name, enabling seal-time batching for direct verify transactions.
func (bc *BlockProofChecker) AddVerifier(name string, v *Verifier) {
	bc.verifiers[name] = v
}

// AddEscrow registers a deployed escrow so its settle transactions — which
// call the escrow's verifier internally — join the seal-time batch too.
func (bc *BlockProofChecker) AddEscrow(name string, e *Escrow) {
	bc.escrows[name] = e
}

// extract recognises a proof-carrying transaction and returns its target
// verifier plus the verify calldata; ok is false for everything else
// (transfers, mints, opens, refunds, unknown contracts).
func (bc *BlockProofChecker) extract(tx *chain.Transaction) (*Verifier, []byte, bool) {
	if v, found := bc.verifiers[tx.Contract]; found && tx.Method == "verify" {
		return v, tx.Args, true
	}
	if e, found := bc.escrows[tx.Contract]; found && tx.Method == "settle" {
		parts, err := DecodeArgsVariadic(tx.Args)
		if err != nil || len(parts) < 3 {
			return nil, nil, false // malformed; let it revert on-chain
		}
		v, found := bc.verifiers[e.verifierName]
		if !found {
			return nil, nil, false
		}
		// settle(id, kc, verifyParts…): the escrow forwards
		// EncodeArgs(verifyParts…) to its verifier, so that is the
		// calldata to batch and to mark pre-verified.
		return v, EncodeArgs(parts[2:]...), true
	}
	return nil, nil, false
}

// VerifyBatch batch-verifies the proofs carried by txs. It returns the
// number of transactions whose proofs were validated (and marked
// pre-verified on their contracts) and a per-transaction error slice:
// errs[i] != nil means transaction i carries a proof that fails
// verification and should be dropped from the block. Transactions that
// carry no recognisable proof are left untouched (nil error, not counted).
func (bc *BlockProofChecker) VerifyBatch(txs []*chain.Transaction) (int, []error) {
	return bc.checkBatch(txs, true)
}

// GossipCheck batch-verifies like VerifyBatch but never marks proofs
// pre-verified. It is the network-boundary validator: a gossip layer
// rejecting invalid payloads before re-propagation (and an importer
// screening a remote block) must not alter execution-time gas charging,
// which would make replicas charge different gas for the same transaction
// and diverge at the out-of-gas boundary.
func (bc *BlockProofChecker) GossipCheck(txs []*chain.Transaction) (int, []error) {
	return bc.checkBatch(txs, false)
}

// checkBatch is the shared verification core; mark selects whether valid
// proofs are recorded pre-verified on their contracts.
func (bc *BlockProofChecker) checkBatch(txs []*chain.Transaction, mark bool) (int, []error) {
	errs := make([]error, len(txs))

	// Group recognised proofs by target verifier: proofs under different
	// verifying keys cannot share a fold.
	type entry struct {
		txIndex int
		digest  [32]byte
		args    []byte
	}
	groups := make(map[*Verifier][]entry)
	for i, tx := range txs {
		if v, args, ok := bc.extract(tx); ok {
			groups[v] = append(groups[v], entry{txIndex: i, digest: verifyDigest(args), args: args})
		}
	}

	verified := 0
	for v, entries := range groups {
		b := plonk.NewBatch(v.vk)
		// members maps position-in-batch back to position-in-entries:
		// proofs rejected at Add time never enter the batch.
		var members []int
		for j, en := range entries {
			proof, public, err := decodeVerifyArgs(en.args)
			if err != nil {
				errs[en.txIndex] = fmt.Errorf("%w: %w", ErrProofRejected, err)
				continue
			}
			if err := b.Add(proof, public); err != nil {
				errs[en.txIndex] = fmt.Errorf("%w: %w", ErrProofRejected, err)
				continue
			}
			members = append(members, j)
		}
		if b.Len() == 0 {
			continue
		}
		bad := map[int]bool{}
		if err := b.Check(); err != nil {
			offenders, berr := b.Bisect()
			if berr != nil {
				// Folding itself failed (not a proof problem): leave the
				// group un-batched; execution will verify each proof.
				continue
			}
			for _, o := range offenders {
				bad[o] = true
			}
		}
		survivors := b.Len() - len(bad)
		for pos, j := range members {
			en := entries[j]
			if bad[pos] {
				errs[en.txIndex] = fmt.Errorf("%w: seal-time batch check", ErrProofRejected)
				continue
			}
			if mark {
				v.markPreverified(en.digest, survivors)
			}
			verified++
		}
	}
	return verified, errs
}
