// Package node is ZKDET's serving layer on top of the chain substrate: a
// nonce-ordered mempool with admission control, a block-producer goroutine
// that drains the pool and seals blocks on a size/interval trigger, and a
// subscription bus so clients wait on inclusion instead of polling. It is
// the transaction-admission half of the node daemon (cmd/zkdet-node); the
// query half lives in internal/indexer.
package node

import (
	"context"
	"sort"
	"sync"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/parallel"
)

// SealVerifier batch-verifies the proofs carried by the transactions of a
// block being sealed. Implementations fold all proofs into one pairing
// check and mark the valid ones pre-verified so execution skips the
// expensive per-proof pairing (see contracts.BlockProofChecker, which
// implements this structurally — the dependency points from the
// application layer down to the node, never the reverse). The returned
// error slice, when non-nil, has one entry per transaction; a non-nil
// entry flags a transaction whose proof fails verification, which the
// producer evicts instead of executing.
type SealVerifier interface {
	VerifyBatch(txs []*chain.Transaction) (verified int, errs []error)
}

// Config tunes the mempool and block producer.
type Config struct {
	// MaxPoolTxs caps pending+executing transactions; beyond it the pool
	// evicts the furthest-future transaction or rejects the newcomer.
	MaxPoolTxs int
	// MaxBlockTxs seals a block as soon as this many transactions have
	// executed since the last seal.
	MaxBlockTxs int
	// BlockInterval seals any executed-but-unsealed transactions on a
	// timer, bounding inclusion latency under light traffic.
	BlockInterval time.Duration
	// MaxGasLimit rejects transactions asking for more gas at admission.
	MaxGasLimit uint64
	// MaxNonceGap bounds how far ahead of the account nonce an explicit
	// transaction nonce may run.
	MaxNonceGap uint64
	// SealVerifier, when set, batch-verifies proof-carrying transactions
	// at seal time: valid proofs execute with their pairing check already
	// done (amortised over the block), invalid ones are evicted before
	// they waste block space.
	SealVerifier SealVerifier
	// ExecWorkers sets the chain's parallel execution width for block
	// batches (chain.SubmitBatch) — both locally produced and imported
	// blocks. 0 sizes it to the machine (parallel.Workers); 1 forces the
	// serial reference path.
	ExecWorkers int
}

// DefaultConfig returns the tuning used by the daemon.
func DefaultConfig() Config {
	return Config{
		MaxPoolTxs:    8192,
		MaxBlockTxs:   256,
		BlockInterval: 25 * time.Millisecond,
		MaxGasLimit:   chain.DefaultGasLimit,
		MaxNonceGap:   64,
	}
}

func (c *Config) sanitize() {
	d := DefaultConfig()
	if c.MaxPoolTxs <= 0 {
		c.MaxPoolTxs = d.MaxPoolTxs
	}
	if c.MaxBlockTxs <= 0 {
		c.MaxBlockTxs = d.MaxBlockTxs
	}
	if c.BlockInterval <= 0 {
		c.BlockInterval = d.BlockInterval
	}
	if c.MaxGasLimit == 0 {
		c.MaxGasLimit = d.MaxGasLimit
	}
	if c.MaxNonceGap == 0 {
		c.MaxNonceGap = d.MaxNonceGap
	}
	if c.ExecWorkers <= 0 {
		c.ExecWorkers = parallel.Workers()
	}
}

// executedTx pairs a pooled transaction with its execution outcome, parked
// until the next seal.
type executedTx struct {
	ptx     *poolTx
	receipt *chain.Receipt
	err     error
}

// Stats is a point-in-time snapshot of node counters.
type Stats struct {
	PoolSize     int
	Admitted     uint64
	Rejected     uint64
	Evicted      uint64
	BlocksSealed uint64
	// BlocksImported counts remotely sealed blocks replayed through
	// ImportBlock (zero outside cluster deployments).
	BlocksImported uint64
	TxsIncluded    uint64
	// Seal-time proof batching counters (zero unless a SealVerifier is
	// configured): transactions whose proofs were validated in a block
	// batch, and transactions evicted for carrying invalid proofs.
	ProofsPreverified uint64
	ProofsEvicted     uint64
	// Inclusion latency (admission → sealed block) percentiles over the
	// most recent window of included transactions.
	LatencyP50 time.Duration
	LatencyP99 time.Duration
}

// Node runs the mempool + block producer over a chain and publishes sealed
// blocks on its Bus.
type Node struct {
	cfg   Config
	chain *chain.Chain
	pool  *mempool
	bus   *Bus

	kick chan struct{}
	quit chan struct{}
	wg   sync.WaitGroup

	mu                sync.Mutex
	running           bool   // guarded by mu
	blocksSealed      uint64 // guarded by mu
	blocksImported    uint64 // guarded by mu
	txsIncluded       uint64 // guarded by mu
	proofsPreverified uint64 // guarded by mu
	proofsEvicted     uint64 // guarded by mu
	latencies []time.Duration // guarded by mu; ring buffer of recent inclusion latencies
	latPos    int             // guarded by mu
}

const latencyWindow = 4096

// New creates a node over the chain. Call Start to begin producing blocks.
func New(c *chain.Chain, cfg Config) *Node {
	cfg.sanitize()
	n := &Node{
		cfg:   cfg,
		chain: c,
		pool:  newMempool(cfg, c),
		bus:   NewBus(),
		kick:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
	// The bus republishes every sealed block — whether this node's
	// producer sealed it or someone called chain.SealBlock directly.
	c.OnSeal(n.bus.publish)
	// The chain-level worker count also drives ImportBlock replay, so
	// follower nodes re-execute remote blocks at the same width.
	c.SetExecWorkers(cfg.ExecWorkers)
	return n
}

// Bus returns the node's subscription bus.
func (n *Node) Bus() *Bus { return n.bus }

// Chain returns the underlying chain.
func (n *Node) Chain() *chain.Chain { return n.chain }

// Start launches the block producer.
func (n *Node) Start() {
	n.mu.Lock()
	if n.running {
		n.mu.Unlock()
		return
	}
	n.running = true
	n.mu.Unlock()
	n.wg.Add(1)
	go n.run()
}

// Stop drains the pool into a final block and stops the producer.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.running {
		n.mu.Unlock()
		return
	}
	n.running = false
	n.mu.Unlock()
	close(n.quit)
	n.wg.Wait()
}

// Submit admits a transaction fire-and-forget; the result is observable via
// the bus or chain receipts.
func (n *Node) Submit(tx chain.Transaction) (chain.Hash, error) {
	ptx, err := n.pool.add(tx, false, false)
	if err != nil {
		return chain.Hash{}, err
	}
	n.wake()
	return ptx.hash, nil
}

// SubmitForResult admits a transaction (assigning the next account nonce
// when autoNonce) without blocking, returning the transaction exactly as
// pooled — nonce assigned, gas default applied — and a 1-buffered channel
// that will receive its terminal result. The p2p layer uses it to gossip
// the precise pooled bytes (so remote hashes match) while awaiting
// inclusion.
func (n *Node) SubmitForResult(tx chain.Transaction, autoNonce bool) (chain.Transaction, <-chan TxResult, error) {
	ptx, err := n.pool.add(tx, autoNonce, true)
	if err != nil {
		return chain.Transaction{}, nil, err
	}
	n.wake()
	return ptx.tx, ptx.done, nil
}

// SubmitAndWait admits a transaction (assigning the next account nonce when
// autoNonce) and blocks until it is sealed into a block, evicted, or the
// context ends.
func (n *Node) SubmitAndWait(ctx context.Context, tx chain.Transaction, autoNonce bool) (TxResult, error) {
	ptx, err := n.pool.add(tx, autoNonce, true)
	if err != nil {
		return TxResult{}, err
	}
	n.wake()
	select {
	case res := <-ptx.done:
		return res, res.Err
	case <-ctx.Done():
		// The transaction stays pooled; its result is dropped.
		return TxResult{TxHash: ptx.hash, Err: ErrWaitCanceled}, ErrWaitCanceled
	}
}

// NextNonce returns the nonce the pool would assign the sender next.
func (n *Node) NextNonce(a chain.Address) uint64 { return n.pool.NextNonce(a) }

// PendingSample returns up to max pooled transactions for gossip
// rebroadcast — the executable run of each sender's queue.
func (n *Node) PendingSample(max int) []chain.Transaction {
	return n.pool.pendingSample(max)
}

func (n *Node) wake() {
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// executeBatch runs seal-time proof verification (when configured) and
// execution over one popped batch, returning the executed transactions and
// releasing the batch's pool reservations.
func (n *Node) executeBatch(batch []*poolTx) []executedTx {
	execBatch := batch
	if sv := n.cfg.SealVerifier; sv != nil {
		// Batch-verify the block's proofs in one pairing check.
		// Valid proofs execute pre-verified (the contract charges
		// the amortised schedule and skips its own pairing);
		// transactions with invalid proofs are evicted here, so
		// they neither waste block space nor run an on-chain
		// verification doomed to revert.
		txs := make([]*chain.Transaction, len(batch))
		for i, ptx := range batch {
			txs[i] = &ptx.tx
		}
		verified, errs := sv.VerifyBatch(txs)
		var evicted int
		if len(errs) == len(batch) {
			kept := make([]*poolTx, 0, len(batch))
			for i, ptx := range batch {
				if errs[i] != nil {
					ptx.finish(TxResult{Err: errs[i]})
					evicted++
					continue
				}
				kept = append(kept, ptx)
			}
			execBatch = kept
		}
		n.mu.Lock()
		n.proofsPreverified += uint64(verified)
		n.proofsEvicted += uint64(evicted)
		n.mu.Unlock()
	}
	// Execute the whole batch through the parallel engine (serial for
	// small batches or ExecWorkers == 1); outcomes are bit-identical to a
	// per-transaction Submit loop by the engine's identity contract.
	txs := make([]chain.Transaction, len(execBatch))
	for i, ptx := range execBatch {
		txs[i] = ptx.tx
	}
	outcomes := n.chain.SubmitBatch(txs, n.cfg.ExecWorkers)
	executed := make([]executedTx, 0, len(execBatch))
	for i, ptx := range execBatch {
		executed = append(executed, executedTx{ptx: ptx, receipt: outcomes[i].Receipt, err: outcomes[i].Err})
	}
	n.pool.markDone(batch)
	return executed
}

// sealExecuted seals the executed transactions into a block, records
// latency and counters, and delivers waiter results.
func (n *Node) sealExecuted(executed []executedTx) chain.Block {
	b := n.chain.SealBlock() // dispatches OnSeal hooks (bus, indexer)
	now := time.Now()
	n.mu.Lock()
	n.blocksSealed++
	n.txsIncluded += uint64(len(executed))
	for _, e := range executed {
		if e.err == nil {
			n.recordLatencyLocked(now.Sub(e.ptx.added))
		}
	}
	n.mu.Unlock()
	for _, e := range executed {
		if e.err != nil {
			e.ptx.finish(TxResult{Err: e.err})
			continue
		}
		e.ptx.finish(TxResult{Receipt: e.receipt, BlockNumber: b.Number})
	}
	return b
}

// run is the block producer: it drains executable transactions from the
// pool, executes them against the chain, and seals when MaxBlockTxs have
// accumulated or the interval expires with work pending.
func (n *Node) run() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.BlockInterval)
	defer ticker.Stop()
	var executed []executedTx

	seal := func() {
		if len(executed) == 0 {
			return
		}
		n.sealExecuted(executed)
		executed = executed[:0]
	}

	drain := func() {
		for {
			batch := n.pool.pop(n.cfg.MaxBlockTxs - len(executed))
			if len(batch) == 0 {
				return
			}
			executed = append(executed, n.executeBatch(batch)...)
			if len(executed) >= n.cfg.MaxBlockTxs {
				seal()
			}
		}
	}

	for {
		select {
		case <-n.kick:
			drain()
		case <-ticker.C:
			drain()
			seal()
		case <-n.quit:
			drain()
			seal()
			n.pool.drainAll(ErrNodeStopped)
			return
		}
	}
}

// SealNow synchronously drains up to one block's worth of executable
// transactions, executes them, and seals them into a block — the
// entry point for external block producers (a p2p cluster's leader
// rotation drives this instead of Start's free-running loop). ok is false
// when no transactions were executable, in which case no block is sealed.
// Do not mix with Start: a node is either self-sealing or externally
// driven.
func (n *Node) SealNow() (chain.Block, bool) {
	var executed []executedTx
	for len(executed) < n.cfg.MaxBlockTxs {
		batch := n.pool.pop(n.cfg.MaxBlockTxs - len(executed))
		if len(batch) == 0 {
			break
		}
		executed = append(executed, n.executeBatch(batch)...)
	}
	if len(executed) == 0 {
		return chain.Block{}, false
	}
	return n.sealExecuted(executed), true
}

// ImportBlock replays a remotely sealed block into the local chain and
// reconciles the mempool: transactions included by the remote sealer are
// purged from the pool (delivering their receipts to any local waiters),
// and transactions made unexecutable by the imported nonces are evicted.
// The chain's OnSeal hooks (bus, indexer) run exactly as for a locally
// sealed block, so every node indexes imported blocks identically.
func (n *Node) ImportBlock(b chain.Block, txs []chain.Transaction) ([]*chain.Receipt, error) {
	receipts, err := n.chain.ImportBlock(b, txs)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.blocksImported++
	n.mu.Unlock()
	n.pool.removeIncluded(txs, receipts, b.Number)
	return receipts, nil
}

func (n *Node) recordLatencyLocked(d time.Duration) {
	if len(n.latencies) < latencyWindow {
		n.latencies = append(n.latencies, d)
		return
	}
	n.latencies[n.latPos] = d
	n.latPos = (n.latPos + 1) % latencyWindow
}

// Stats snapshots the node counters.
func (n *Node) Stats() Stats {
	pool := n.pool
	pool.mu.Lock()
	s := Stats{
		PoolSize: pool.size,
		Admitted: pool.admitted,
		Rejected: pool.rejected,
		Evicted:  pool.evictions,
	}
	pool.mu.Unlock()

	n.mu.Lock()
	s.BlocksSealed = n.blocksSealed
	s.BlocksImported = n.blocksImported
	s.TxsIncluded = n.txsIncluded
	s.ProofsPreverified = n.proofsPreverified
	s.ProofsEvicted = n.proofsEvicted
	lats := append([]time.Duration(nil), n.latencies...)
	n.mu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		s.LatencyP50 = lats[len(lats)/2]
		s.LatencyP99 = lats[len(lats)*99/100]
	}
	return s
}
