package node

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
)

var errStubProof = errors.New("stub: invalid proof")

// stubSealVerifier flags any transaction whose method is "bad" and counts
// the rest as verified, standing in for contracts.BlockProofChecker (whose
// real pairing path is covered in internal/contracts).
type stubSealVerifier struct{}

func (stubSealVerifier) VerifyBatch(txs []*chain.Transaction) (int, []error) {
	errs := make([]error, len(txs))
	verified := 0
	for i, tx := range txs {
		if tx.Method == "bad" {
			errs[i] = errStubProof
		} else {
			verified++
		}
	}
	return verified, errs
}

// TestSealVerifierEvictsFlaggedTxs pins the producer-side contract: flagged
// transactions never execute or enter a block, their waiters get the
// verifier's error, and the remaining transactions seal normally.
func TestSealVerifierEvictsFlaggedTxs(t *testing.T) {
	n, c := testNode(t, Config{
		MaxBlockTxs:   8,
		BlockInterval: 5 * time.Millisecond,
		SealVerifier:  stubSealVerifier{},
	})
	// Distinct senders: evicting a transaction skips its execution, so a
	// same-sender follow-up would hit the resulting nonce gap — that cost
	// lands on whoever submitted the invalid proof, not on these senders.
	senders := []chain.Address{
		fund(c, "alice", 1_000_000),
		fund(c, "bob", 1_000_000),
		fund(c, "carol", 1_000_000),
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	type result struct {
		res TxResult
		err error
	}
	results := make([]result, 3)
	methods := []string{"put", "bad", "put"}
	done := make(chan int, 3)
	for i, m := range methods {
		go func(i int, m string) {
			res, err := n.SubmitAndWait(ctx, chain.Transaction{
				From: senders[i], Contract: "logbox", Method: m,
			}, true)
			results[i] = result{res, err}
			done <- i
		}(i, m)
	}
	for range methods {
		<-done
	}

	if !errors.Is(results[1].err, errStubProof) {
		t.Fatalf("flagged tx result: %v", results[1].err)
	}
	for _, i := range []int{0, 2} {
		if results[i].err != nil {
			t.Fatalf("valid tx %d failed: %v", i, results[i].err)
		}
		if results[i].res.Receipt == nil || results[i].res.BlockNumber == 0 {
			t.Fatalf("valid tx %d missing receipt/block", i)
		}
	}

	// The evicted transaction is in no sealed block.
	for num := uint64(1); ; num++ {
		b, ok := c.BlockByNumber(num)
		if !ok {
			break
		}
		for _, h := range b.TxHashes {
			if h == results[1].res.TxHash {
				t.Fatal("evicted tx found in a sealed block")
			}
		}
	}

	s := n.Stats()
	if s.ProofsPreverified < 2 {
		t.Fatalf("ProofsPreverified = %d, want >= 2", s.ProofsPreverified)
	}
	if s.ProofsEvicted != 1 {
		t.Fatalf("ProofsEvicted = %d, want 1", s.ProofsEvicted)
	}
	if s.TxsIncluded != 2 {
		t.Fatalf("TxsIncluded = %d, want 2", s.TxsIncluded)
	}
}
