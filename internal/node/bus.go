package node

import (
	"sync"

	"github.com/zkdet/zkdet/internal/chain"
)

// BlockNotification announces a sealed block with its receipts, in height
// order.
type BlockNotification struct {
	Block    chain.Block
	Receipts []*chain.Receipt
}

// EventNotification announces one contract event from a sealed block.
type EventNotification struct {
	Block   uint64
	TxHash  chain.Hash
	TxIndex int
	Event   chain.Event
}

// Subscription delivers notifications of type T in publish order on C. The
// internal queue is unbounded so slow consumers never block the sealer;
// call Unsubscribe to release it.
type Subscription[T any] struct {
	C <-chan T

	mu     sync.Mutex
	cond   *sync.Cond // set once in the constructor
	queue  []T        // guarded by mu
	closed bool       // guarded by mu
	done   chan struct{}
	once   sync.Once
}

func newSubscription[T any]() *Subscription[T] {
	s := &Subscription[T]{done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	ch := make(chan T)
	s.C = ch
	go s.pump(ch)
	return s
}

func (s *Subscription[T]) push(v T) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, v)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *Subscription[T]) pump(ch chan T) {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			close(ch)
			return
		}
		v := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		select {
		case ch <- v:
		case <-s.done:
			close(ch)
			return
		}
	}
}

// Unsubscribe stops delivery, drops queued items, and closes C even if the
// consumer has stopped reading.
func (s *Subscription[T]) Unsubscribe() {
	s.mu.Lock()
	s.closed = true
	s.queue = nil
	s.cond.Signal()
	s.mu.Unlock()
	s.once.Do(func() { close(s.done) })
}

// eventFilter matches events by contract and name; empty fields match all.
type eventFilter struct {
	contract string
	name     string
}

func (f eventFilter) matches(ev chain.Event) bool {
	if f.contract != "" && f.contract != ev.Contract {
		return false
	}
	if f.name != "" && f.name != ev.Name {
		return false
	}
	return true
}

type eventSub struct {
	filter eventFilter
	sub    *Subscription[EventNotification]
}

// Bus fans sealed-block and event notifications out to subscribers. Clients
// wait on inclusion through subscriptions instead of polling the chain.
type Bus struct {
	mu        sync.Mutex
	blockSubs map[*Subscription[BlockNotification]]struct{} // guarded by mu
	eventSubs map[*Subscription[EventNotification]]eventFilter // guarded by mu
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{
		blockSubs: make(map[*Subscription[BlockNotification]]struct{}),
		eventSubs: make(map[*Subscription[EventNotification]]eventFilter),
	}
}

// SubscribeBlocks delivers every sealed block in height order.
func (b *Bus) SubscribeBlocks() *Subscription[BlockNotification] {
	s := newSubscription[BlockNotification]()
	b.mu.Lock()
	b.blockSubs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// SubscribeEvents delivers events from sealed blocks matching the contract
// and name filters (empty string matches all), in chain order.
func (b *Bus) SubscribeEvents(contract, name string) *Subscription[EventNotification] {
	s := newSubscription[EventNotification]()
	b.mu.Lock()
	b.eventSubs[s] = eventFilter{contract: contract, name: name}
	b.mu.Unlock()
	return s
}

// Unsubscribe removes a block subscription.
func (b *Bus) UnsubscribeBlocks(s *Subscription[BlockNotification]) {
	b.mu.Lock()
	delete(b.blockSubs, s)
	b.mu.Unlock()
	s.Unsubscribe()
}

// UnsubscribeEvents removes an event subscription.
func (b *Bus) UnsubscribeEvents(s *Subscription[EventNotification]) {
	b.mu.Lock()
	delete(b.eventSubs, s)
	b.mu.Unlock()
	s.Unsubscribe()
}

// publish fans one sealed block out to all subscribers. Called from the
// chain's seal hook, so ordering follows block height.
func (b *Bus) publish(blk chain.Block, receipts []*chain.Receipt) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := BlockNotification{Block: blk, Receipts: receipts}
	for s := range b.blockSubs {
		s.push(n)
	}
	if len(b.eventSubs) == 0 {
		return
	}
	for i, r := range receipts {
		for _, ev := range r.Logs {
			for s, f := range b.eventSubs {
				if f.matches(ev) {
					s.push(EventNotification{Block: blk.Number, TxHash: r.TxHash, TxIndex: i, Event: ev})
				}
			}
		}
	}
}
