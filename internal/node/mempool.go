package node

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
)

// Mempool admission errors.
var (
	ErrPoolFull     = errors.New("node: mempool full")
	ErrNonceTooLow  = errors.New("node: nonce below account nonce")
	ErrKnownTx      = errors.New("node: nonce already pending")
	ErrNonceGap     = errors.New("node: nonce gap exceeds limit")
	ErrUnderfunded  = errors.New("node: sender cannot fund pending value")
	ErrGasTooHigh   = errors.New("node: gas limit above node maximum")
	ErrEvicted      = errors.New("node: transaction evicted from mempool")
	ErrNodeStopped  = errors.New("node: node stopped")
	ErrWaitCanceled = errors.New("node: wait canceled")
	// ErrReplaced reports a pooled transaction whose nonce was consumed by
	// a different transaction in an imported block — it can never execute.
	ErrReplaced = errors.New("node: nonce consumed by an imported block")
)

// TxResult is the terminal outcome of a pooled transaction: either a
// receipt with the block that included it, or the error that ended it
// (eviction, execution-time rejection, node shutdown).
type TxResult struct {
	TxHash      chain.Hash
	Receipt     *chain.Receipt
	BlockNumber uint64
	Err         error
}

// poolTx is a queued transaction plus its delivery channel.
type poolTx struct {
	tx    chain.Transaction
	hash  chain.Hash
	added time.Time
	// done receives the terminal TxResult (capacity 1; nil when the
	// submitter did not ask to wait).
	done chan TxResult
}

func (p *poolTx) finish(res TxResult) {
	res.TxHash = p.hash
	if p.done != nil {
		p.done <- res
	}
}

// senderQueue holds one account's pooled transactions keyed by nonce.
// pending are admitted but not yet picked up by a producer; inflight are
// being executed (their nonces stay reserved until the chain advances).
type senderQueue struct {
	pending  map[uint64]*poolTx
	inflight map[uint64]*poolTx
	// reservedValue is the total native value of pending+inflight
	// transactions, counted against the sender's balance at admission.
	reservedValue uint64
}

func (q *senderQueue) empty() bool { return len(q.pending) == 0 && len(q.inflight) == 0 }

// nextFree returns the lowest nonce ≥ chainNonce not already reserved.
func (q *senderQueue) nextFree(chainNonce uint64) uint64 {
	n := chainNonce
	for {
		if _, ok := q.pending[n]; ok {
			n++
			continue
		}
		if _, ok := q.inflight[n]; ok {
			n++
			continue
		}
		return n
	}
}

// mempool is the nonce-ordered transaction pool. All admission decisions
// happen under one lock; the lock order is pool → chain (the chain is never
// holding its lock when it calls into the pool).
type mempool struct {
	mu      sync.Mutex
	cfg     Config       // immutable after construction
	chain   *chain.Chain // immutable after construction
	senders map[chain.Address]*senderQueue // guarded by mu
	size    int                            // guarded by mu; pending + inflight

	admitted  uint64 // guarded by mu
	rejected  uint64 // guarded by mu
	evictions uint64 // guarded by mu
}

func newMempool(cfg Config, c *chain.Chain) *mempool {
	return &mempool{cfg: cfg, chain: c, senders: make(map[chain.Address]*senderQueue)}
}

// queue returns (creating if needed) the sender's queue; caller holds p.mu.
func (p *mempool) queue(a chain.Address) *senderQueue {
	q, ok := p.senders[a]
	if !ok {
		q = &senderQueue{pending: make(map[uint64]*poolTx), inflight: make(map[uint64]*poolTx)}
		p.senders[a] = q
	}
	return q
}

// add admits a transaction. With autoNonce the pool assigns the next free
// nonce for the sender atomically (the gateway's path); otherwise the
// caller-supplied nonce is validated against the account and the queue.
func (p *mempool) add(tx chain.Transaction, autoNonce bool, wait bool) (*poolTx, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	// Normalize before hashing so the pool's tx hash matches the one the
	// chain assigns at execution (which applies the same default); the node
	// additionally clamps the default to its own ceiling.
	if tx.GasLimit == 0 {
		tx.GasLimit = min(chain.DefaultGasLimit, p.cfg.MaxGasLimit)
	}
	if tx.GasLimit > p.cfg.MaxGasLimit {
		p.rejected++
		return nil, fmt.Errorf("%w: %d > %d", ErrGasTooHigh, tx.GasLimit, p.cfg.MaxGasLimit)
	}
	q := p.queue(tx.From)
	chainNonce := p.chain.NonceOf(tx.From)
	next := q.nextFree(chainNonce)
	if autoNonce {
		tx.Nonce = next
	} else {
		if tx.Nonce < chainNonce {
			p.rejected++
			return nil, fmt.Errorf("%w: got %d, account at %d", ErrNonceTooLow, tx.Nonce, chainNonce)
		}
		if _, ok := q.pending[tx.Nonce]; ok {
			p.rejected++
			return nil, fmt.Errorf("%w: nonce %d", ErrKnownTx, tx.Nonce)
		}
		if _, ok := q.inflight[tx.Nonce]; ok {
			p.rejected++
			return nil, fmt.Errorf("%w: nonce %d executing", ErrKnownTx, tx.Nonce)
		}
		if tx.Nonce > next+p.cfg.MaxNonceGap {
			p.rejected++
			return nil, fmt.Errorf("%w: nonce %d, next executable %d, gap limit %d",
				ErrNonceGap, tx.Nonce, next, p.cfg.MaxNonceGap)
		}
	}
	if tx.Value > 0 {
		if bal := p.chain.BalanceOf(tx.From); q.reservedValue+tx.Value > bal {
			p.rejected++
			return nil, fmt.Errorf("%w: balance %d, pending value %d + %d",
				ErrUnderfunded, bal, q.reservedValue, tx.Value)
		}
	}
	if p.size >= p.cfg.MaxPoolTxs {
		if !p.evictForLocked(tx.From, tx.Nonce) {
			p.rejected++
			return nil, fmt.Errorf("%w: %d transactions", ErrPoolFull, p.size)
		}
	}

	ptx := &poolTx{tx: tx, hash: tx.Hash(), added: time.Now()}
	if wait {
		ptx.done = make(chan TxResult, 1)
	}
	q.pending[tx.Nonce] = ptx
	q.reservedValue += tx.Value
	p.size++
	p.admitted++
	return ptx, nil
}

// evictForLocked frees one slot for an incoming transaction by dropping the
// pending transaction whose nonce is furthest ahead of its account — the
// one least likely to execute soon. The incoming transaction must be
// strictly closer to executable than the victim, otherwise it is the least
// useful one and admission fails.
func (p *mempool) evictForLocked(from chain.Address, nonce uint64) bool {
	incomingDist := nonce - p.queue(from).nextFree(p.chain.NonceOf(from))
	var victim *poolTx
	var victimQ *senderQueue
	var victimDist uint64
	for addr, q := range p.senders {
		if len(q.pending) == 0 {
			continue
		}
		base := p.chain.NonceOf(addr)
		for n, ptx := range q.pending {
			d := n - base
			if victim == nil || d > victimDist {
				victim, victimQ, victimDist = ptx, q, d
			}
		}
	}
	if victim == nil || victimDist <= incomingDist {
		return false
	}
	delete(victimQ.pending, victim.tx.Nonce)
	victimQ.reservedValue -= victim.tx.Value
	p.size--
	p.evictions++
	victim.finish(TxResult{Err: ErrEvicted})
	return true
}

// sortedSendersLocked returns the pool's sender addresses in byte order, so
// batch composition and gossip samples are deterministic functions of pool
// content rather than of Go's randomized map iteration; caller holds p.mu.
func (p *mempool) sortedSendersLocked() []chain.Address {
	addrs := make([]chain.Address, 0, len(p.senders))
	for addr := range p.senders {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return string(addrs[i][:]) < string(addrs[j][:])
	})
	return addrs
}

// pop reserves up to max executable transactions: for each sender in address
// order, the contiguous nonce run starting at the account's current nonce.
// Reserved transactions are marked inflight; the caller must markDone them
// after execution. Safe for multiple concurrent producers.
func (p *mempool) pop(max int) []*poolTx {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*poolTx
	for _, addr := range p.sortedSendersLocked() {
		q := p.senders[addr]
		if len(q.pending) == 0 {
			continue
		}
		n := p.chain.NonceOf(addr)
		// Skip senders mid-execution: their chain nonce is stale until the
		// inflight run completes.
		if len(q.inflight) > 0 {
			continue
		}
		for {
			ptx, ok := q.pending[n]
			if !ok || len(out) >= max {
				break
			}
			delete(q.pending, n)
			q.inflight[n] = ptx
			out = append(out, ptx)
			n++
		}
		if len(out) >= max {
			break
		}
	}
	return out
}

// markDone releases executed transactions' reservations.
func (p *mempool) markDone(txs []*poolTx) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ptx := range txs {
		q := p.queue(ptx.tx.From)
		if _, ok := q.inflight[ptx.tx.Nonce]; !ok {
			continue
		}
		delete(q.inflight, ptx.tx.Nonce)
		q.reservedValue -= ptx.tx.Value
		p.size--
		if q.empty() {
			delete(p.senders, ptx.tx.From)
		}
	}
}

// removeIncluded reconciles the pool with an imported block: a pooled
// transaction included by the remote sealer is removed and its waiter gets
// the receipt, and any pooled transaction left behind the advanced account
// nonce — its slot consumed by someone else's transaction — is evicted with
// ErrReplaced. Without this, gossip-delivered blocks would leave the pool
// full of transactions that can never execute (the pool only purged what
// the local producer sealed).
func (p *mempool) removeIncluded(txs []chain.Transaction, receipts []*chain.Receipt, blockNumber uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	touched := make(map[chain.Address]bool, len(txs))
	for i := range txs {
		tx := &txs[i]
		touched[tx.From] = true
		q, ok := p.senders[tx.From]
		if !ok {
			continue
		}
		var r *chain.Receipt
		if i < len(receipts) {
			r = receipts[i]
		}
		if ptx, ok := q.pending[tx.Nonce]; ok && ptx.hash == tx.Hash() {
			delete(q.pending, tx.Nonce)
			q.reservedValue -= ptx.tx.Value
			p.size--
			ptx.finish(TxResult{Receipt: r, BlockNumber: blockNumber})
		}
		if ptx, ok := q.inflight[tx.Nonce]; ok && ptx.hash == tx.Hash() {
			delete(q.inflight, tx.Nonce)
			q.reservedValue -= ptx.tx.Value
			p.size--
			ptx.finish(TxResult{Receipt: r, BlockNumber: blockNumber})
		}
	}
	// Evict transactions stranded behind the imported nonces.
	for addr := range touched {
		q, ok := p.senders[addr]
		if !ok {
			continue
		}
		chainNonce := p.chain.NonceOf(addr)
		for nonce, ptx := range q.pending {
			if nonce < chainNonce {
				delete(q.pending, nonce)
				q.reservedValue -= ptx.tx.Value
				p.size--
				p.evictions++
				ptx.finish(TxResult{Err: ErrReplaced})
			}
		}
		if q.empty() {
			delete(p.senders, addr)
		}
	}
}

// pendingSample returns up to max pending transactions, the contiguous
// executable run of each sender first, senders in address order — the set
// worth re-gossiping to peers after a partition heals, identical for every
// caller observing the same pool. Inflight transactions are excluded (a
// producer already has them).
func (p *mempool) pendingSample(max int) []chain.Transaction {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []chain.Transaction
	for _, addr := range p.sortedSendersLocked() {
		q := p.senders[addr]
		if len(out) >= max {
			break
		}
		n := p.chain.NonceOf(addr)
		for len(out) < max {
			ptx, ok := q.pending[n]
			if !ok {
				break
			}
			out = append(out, ptx.tx)
			n++
		}
	}
	return out
}

// drainAll empties the pool, delivering err to every waiter (shutdown).
func (p *mempool) drainAll(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for addr, q := range p.senders {
		for n, ptx := range q.pending {
			delete(q.pending, n)
			p.size--
			ptx.finish(TxResult{Err: err})
		}
		if q.empty() {
			delete(p.senders, addr)
		}
	}
}

// Len reports pending + inflight transactions.
func (p *mempool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size
}

// NextNonce returns the next unreserved nonce the pool would assign to the
// sender.
func (p *mempool) NextNonce(a chain.Address) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	q, ok := p.senders[a]
	chainNonce := p.chain.NonceOf(a)
	if !ok {
		return chainNonce
	}
	return q.nextFree(chainNonce)
}
