package node

import (
	"errors"
	"testing"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
)

// sealerAndFollower builds two externally driven nodes over identically
// funded chains.
func sealerAndFollower(t *testing.T) (*Node, *Node, chain.Address, chain.Address) {
	t.Helper()
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")
	mk := func() *Node {
		c := chain.New()
		c.Faucet(alice, 1_000_000)
		c.Faucet(bob, 1_000_000)
		return New(c, Config{})
	}
	return mk(), mk(), alice, bob
}

func TestImportPurgesIncludedFromPool(t *testing.T) {
	sealer, follower, alice, bob := sealerAndFollower(t)

	// The same transaction is pooled on both nodes (as gossip would do),
	// with a waiter on the follower.
	tx := chain.Transaction{From: alice, To: bob, Value: 5, Nonce: 0}
	pooled, done, err := follower.SubmitForResult(tx, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sealer.Submit(pooled); err != nil {
		t.Fatal(err)
	}

	blk, ok := sealer.SealNow()
	if !ok {
		t.Fatal("sealer had nothing to seal")
	}
	txs, _ := sealer.Chain().BlockBody(blk.Number)
	if _, err := follower.ImportBlock(blk, txs); err != nil {
		t.Fatalf("import: %v", err)
	}

	// The follower's waiter got the remote inclusion, and the pool is
	// empty — the tx must not be sealed a second time.
	select {
	case res := <-done:
		if res.Err != nil || res.BlockNumber != blk.Number {
			t.Fatalf("waiter result: %+v", res)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not released by import")
	}
	if got := follower.Stats().PoolSize; got != 0 {
		t.Fatalf("pool size after import: %d", got)
	}
	if _, ok := follower.SealNow(); ok {
		t.Fatal("imported transaction re-sealed")
	}
	if got := follower.Stats().BlocksImported; got != 1 {
		t.Fatalf("BlocksImported = %d", got)
	}
}

func TestImportEvictsReplacedNonces(t *testing.T) {
	sealer, follower, alice, bob := sealerAndFollower(t)

	// The follower pools alice's nonce 0, but the sealer includes a
	// *different* nonce-0 transaction — the pooled one can never execute.
	stale := chain.Transaction{From: alice, To: bob, Value: 1, Nonce: 0}
	_, done, err := follower.SubmitForResult(stale, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sealer.Submit(chain.Transaction{From: alice, To: bob, Value: 99, Nonce: 0}); err != nil {
		t.Fatal(err)
	}
	blk, _ := sealer.SealNow()
	txs, _ := sealer.Chain().BlockBody(blk.Number)
	if _, err := follower.ImportBlock(blk, txs); err != nil {
		t.Fatalf("import: %v", err)
	}
	select {
	case res := <-done:
		if !errors.Is(res.Err, ErrReplaced) {
			t.Fatalf("stale tx result: %v, want ErrReplaced", res.Err)
		}
	case <-time.After(time.Second):
		t.Fatal("stale tx waiter not released")
	}
	if got := follower.Stats().PoolSize; got != 0 {
		t.Fatalf("pool size after eviction: %d", got)
	}
}

func TestPendingSample(t *testing.T) {
	c := chain.New()
	alice := fund(c, "alice", 1000)
	n := New(c, Config{})
	for i := 0; i < 5; i++ {
		if _, err := n.Submit(chain.Transaction{From: alice, Nonce: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := n.PendingSample(3)
	if len(got) != 3 {
		t.Fatalf("sample size %d, want 3", len(got))
	}
	for i, tx := range got {
		if tx.Nonce != uint64(i) {
			t.Fatalf("sample[%d] nonce %d — not the executable run", i, tx.Nonce)
		}
		if tx.GasLimit == 0 {
			t.Fatal("sample returned un-normalized transaction")
		}
	}
	if got := n.PendingSample(100); len(got) != 5 {
		t.Fatalf("full sample size %d, want 5", len(got))
	}
}
