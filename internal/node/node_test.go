package node

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
)

// logbox is a toy contract that logs its calldata.
type logbox struct{}

func (logbox) Call(ctx *chain.CallContext, method string, args []byte) ([]byte, error) {
	if err := ctx.EmitIndexed("Logged", args, args); err != nil {
		return nil, err
	}
	return args, nil
}

func testNode(t *testing.T, cfg Config) (*Node, *chain.Chain) {
	t.Helper()
	c := chain.New()
	if _, err := c.Deploy("logbox", logbox{}, 100); err != nil {
		t.Fatal(err)
	}
	n := New(c, cfg)
	n.Start()
	t.Cleanup(n.Stop)
	return n, c
}

func TestSubmitAndWaitInclusion(t *testing.T) {
	n, c := testNode(t, Config{MaxBlockTxs: 4, BlockInterval: 5 * time.Millisecond})
	alice := fund(c, "alice", 1_000_000)
	bob := chain.AddressFromString("bob")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	res, err := n.SubmitAndWait(ctx, chain.Transaction{From: alice, To: bob, Value: 77}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receipt == nil || res.BlockNumber == 0 {
		t.Fatalf("no receipt/block: %+v", res)
	}
	if got := c.BalanceOf(bob); got != 77 {
		t.Fatalf("bob balance %d", got)
	}
	// The sealed block really contains the tx.
	b, ok := c.BlockByNumber(res.BlockNumber)
	if !ok {
		t.Fatalf("block %d missing", res.BlockNumber)
	}
	found := false
	for _, h := range b.TxHashes {
		if h == res.TxHash {
			found = true
		}
	}
	if !found {
		t.Fatalf("tx %s not in block %d", res.TxHash, res.BlockNumber)
	}
}

func TestConcurrentClientsAllIncluded(t *testing.T) {
	n, c := testNode(t, Config{MaxBlockTxs: 8, BlockInterval: 2 * time.Millisecond})
	const clients = 32
	const perClient = 5

	addrs := make([]chain.Address, clients)
	for i := range addrs {
		addrs[i] = fund(c, "client-"+string(rune('A'+i%26))+string(rune('0'+i/26)), 1<<30)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for _, a := range addrs {
		wg.Add(1)
		go func(a chain.Address) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				res, err := n.SubmitAndWait(ctx, chain.Transaction{From: a, Contract: "logbox", Method: "put", Args: []byte{byte(j)}}, true)
				if err != nil {
					t.Errorf("client %s tx %d: %v", a, j, err)
					return
				}
				if res.Receipt.Err != nil {
					t.Errorf("client %s tx %d reverted: %v", a, j, res.Receipt.Err)
					return
				}
			}
		}(a)
	}
	wg.Wait()

	s := n.Stats()
	if s.TxsIncluded != clients*perClient {
		t.Fatalf("included %d, want %d", s.TxsIncluded, clients*perClient)
	}
	if s.PoolSize != 0 {
		t.Fatalf("pool size %d after drain", s.PoolSize)
	}
	if s.LatencyP50 == 0 || s.LatencyP99 < s.LatencyP50 {
		t.Fatalf("latency stats p50=%v p99=%v", s.LatencyP50, s.LatencyP99)
	}
}

func TestSubscriptionDeliveryOrdering(t *testing.T) {
	n, c := testNode(t, Config{MaxBlockTxs: 4, BlockInterval: 2 * time.Millisecond})
	alice := fund(c, "alice", 1<<30)

	blockSub := n.Bus().SubscribeBlocks()
	defer n.Bus().UnsubscribeBlocks(blockSub)
	evSub := n.Bus().SubscribeEvents("logbox", "Logged")
	defer n.Bus().UnsubscribeEvents(evSub)

	const total = 25
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < total; i++ {
		if _, err := n.SubmitAndWait(ctx, chain.Transaction{From: alice, Contract: "logbox", Method: "put", Args: []byte{byte(i)}}, true); err != nil {
			t.Fatal(err)
		}
	}

	// Events arrive in submission order, tagged with increasing blocks.
	lastBlock := uint64(0)
	for i := 0; i < total; i++ {
		select {
		case ev := <-evSub.C:
			if len(ev.Event.Data) != 1 || ev.Event.Data[0] != byte(i) {
				t.Fatalf("event %d out of order: %v", i, ev.Event.Data)
			}
			if ev.Block < lastBlock {
				t.Fatalf("event block went backwards: %d < %d", ev.Block, lastBlock)
			}
			lastBlock = ev.Block
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for event %d", i)
		}
	}

	// Blocks arrive in strict height order with receipts attached.
	seen := uint64(0)
	received := 0
	for received < total {
		select {
		case bn := <-blockSub.C:
			if bn.Block.Number != seen+1 {
				t.Fatalf("block %d after %d", bn.Block.Number, seen)
			}
			seen = bn.Block.Number
			if len(bn.Receipts) != len(bn.Block.TxHashes) {
				t.Fatalf("block %d: %d receipts for %d txs", bn.Block.Number, len(bn.Receipts), len(bn.Block.TxHashes))
			}
			received += len(bn.Receipts)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at %d/%d receipts", received, total)
		}
	}
}

func TestStopDrainsPool(t *testing.T) {
	c := chain.New()
	alice := fund(c, "alice", 1<<30)
	bob := chain.AddressFromString("bob")
	// Huge interval: only Stop can seal.
	n := New(c, Config{BlockInterval: time.Hour})
	n.Start()

	done := make([]chan TxResult, 0, 10)
	for i := 0; i < 10; i++ {
		ptx, err := n.pool.add(chain.Transaction{From: alice, To: bob, Value: 1}, true, true)
		if err != nil {
			t.Fatal(err)
		}
		done = append(done, ptx.done)
	}
	n.Stop()
	for i, ch := range done {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("tx %d: %v", i, res.Err)
			}
		default:
			t.Fatalf("tx %d has no result after Stop", i)
		}
	}
	if got := c.BalanceOf(bob); got != 10 {
		t.Fatalf("bob balance %d, want 10", got)
	}
	if c.Height() == 0 {
		t.Fatal("no block sealed on shutdown")
	}
}

func TestSubmitAndWaitContextCancel(t *testing.T) {
	c := chain.New()
	alice := fund(c, "alice", 1000)
	n := New(c, Config{BlockInterval: time.Hour})
	// Producer intentionally not started: the wait must end via context.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := n.SubmitAndWait(ctx, chain.Transaction{From: alice, To: alice, Value: 1}, true)
	if !errors.Is(err, ErrWaitCanceled) {
		t.Fatalf("got %v, want ErrWaitCanceled", err)
	}
}
