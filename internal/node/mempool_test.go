package node

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
)

func testPool(t *testing.T, cfg Config) (*mempool, *chain.Chain) {
	t.Helper()
	cfg.sanitize()
	c := chain.New()
	return newMempool(cfg, c), c
}

func fund(c *chain.Chain, label string, amount uint64) chain.Address {
	a := chain.AddressFromString(label)
	c.Faucet(a, amount)
	return a
}

func TestAdmissionNonceChecks(t *testing.T) {
	p, c := testPool(t, Config{MaxNonceGap: 4})
	alice := fund(c, "alice", 1000)

	// Consume nonce 0 on chain directly.
	bob := fund(c, "bob", 1000)
	if _, err := c.Submit(chain.Transaction{From: alice, To: bob, Value: 1, Nonce: 0}); err != nil {
		t.Fatal(err)
	}

	if _, err := p.add(chain.Transaction{From: alice, Nonce: 0}, false, false); !errors.Is(err, ErrNonceTooLow) {
		t.Fatalf("nonce 0: %v, want ErrNonceTooLow", err)
	}
	if _, err := p.add(chain.Transaction{From: alice, Nonce: 1}, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.add(chain.Transaction{From: alice, Nonce: 1}, false, false); !errors.Is(err, ErrKnownTx) {
		t.Fatalf("duplicate nonce: %v, want ErrKnownTx", err)
	}
	// Next executable is 2; gap limit 4 allows up to 6.
	if _, err := p.add(chain.Transaction{From: alice, Nonce: 6}, false, false); err != nil {
		t.Fatalf("nonce 6 within gap: %v", err)
	}
	if _, err := p.add(chain.Transaction{From: alice, Nonce: 8}, false, false); !errors.Is(err, ErrNonceGap) {
		t.Fatalf("nonce 8: %v, want ErrNonceGap", err)
	}
}

func TestAdmissionBalanceAndGas(t *testing.T) {
	p, c := testPool(t, Config{MaxGasLimit: 100_000})
	alice := fund(c, "alice", 500)
	bob := chain.AddressFromString("bob")

	if _, err := p.add(chain.Transaction{From: alice, To: bob, Value: 300, Nonce: 0}, false, false); err != nil {
		t.Fatal(err)
	}
	// Second transfer would overdraw counting the reserved 300.
	if _, err := p.add(chain.Transaction{From: alice, To: bob, Value: 300, Nonce: 1}, false, false); !errors.Is(err, ErrUnderfunded) {
		t.Fatalf("overdraw: %v, want ErrUnderfunded", err)
	}
	if _, err := p.add(chain.Transaction{From: alice, To: bob, Value: 100, Nonce: 1}, false, false); err != nil {
		t.Fatalf("affordable second transfer: %v", err)
	}
	if _, err := p.add(chain.Transaction{From: alice, GasLimit: 200_000, Nonce: 2}, false, false); !errors.Is(err, ErrGasTooHigh) {
		t.Fatalf("gas cap: %v, want ErrGasTooHigh", err)
	}
}

func TestAutoNonceAssignment(t *testing.T) {
	p, c := testPool(t, Config{})
	alice := fund(c, "alice", 1000)
	for i := 0; i < 5; i++ {
		if _, err := p.add(chain.Transaction{From: alice}, true, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.NextNonce(alice); got != 5 {
		t.Fatalf("next nonce %d, want 5", got)
	}
	batch := p.pop(10)
	if len(batch) != 5 {
		t.Fatalf("popped %d, want 5", len(batch))
	}
	for i, ptx := range batch {
		if ptx.tx.Nonce != uint64(i) {
			t.Fatalf("pop order: batch[%d].Nonce = %d", i, ptx.tx.Nonce)
		}
	}
}

func TestCapacityEviction(t *testing.T) {
	p, c := testPool(t, Config{MaxPoolTxs: 4, MaxNonceGap: 16})
	alice := fund(c, "alice", 1000)
	bob := fund(c, "bob", 1000)

	// Fill the pool with alice's txs, the last far in the future.
	var farDone chan TxResult
	for _, nonce := range []uint64{0, 1, 2} {
		if _, err := p.add(chain.Transaction{From: alice, Nonce: nonce}, false, false); err != nil {
			t.Fatal(err)
		}
	}
	farPtx, err := p.add(chain.Transaction{From: alice, Nonce: 10}, false, true)
	if err != nil {
		t.Fatal(err)
	}
	farDone = farPtx.done

	// Bob's executable tx evicts alice's nonce-10 straggler.
	if _, err := p.add(chain.Transaction{From: bob, Nonce: 0}, false, false); err != nil {
		t.Fatalf("executable tx not admitted at capacity: %v", err)
	}
	select {
	case res := <-farDone:
		if !errors.Is(res.Err, ErrEvicted) {
			t.Fatalf("victim result %v, want ErrEvicted", res.Err)
		}
	case <-time.After(time.Second):
		t.Fatal("evicted tx result not delivered")
	}

	// Another far-future tx cannot displace closer ones.
	if _, err := p.add(chain.Transaction{From: bob, Nonce: 12}, false, false); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("far-future tx at capacity: %v, want ErrPoolFull", err)
	}
	if got := p.Len(); got != 4 {
		t.Fatalf("pool size %d, want 4", got)
	}
}

// TestParallelProducersAndSubmitters hammers the pool from concurrent
// client goroutines while several producer goroutines pop/execute/markDone
// — the contended admission/eviction path `make race` guards. The pool is
// deliberately smaller than the offered load so capacity eviction fires;
// clients behave like real ones: they wait on results and resubmit evicted
// transactions (auto-nonce heals the gap an eviction leaves).
func TestParallelProducersAndSubmitters(t *testing.T) {
	const senders = 8
	const txPerSender = 50
	const producers = 4

	p, c := testPool(t, Config{MaxPoolTxs: 128})
	addrs := make([]chain.Address, senders)
	for i := range addrs {
		addrs[i] = fund(c, "sender-"+string(rune('a'+i)), 1<<30)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var mu sync.Mutex
	executed := 0

	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				batch := p.pop(16)
				if len(batch) == 0 {
					select {
					case <-stop:
						// Final drain so admitted stragglers execute.
						if batch = p.pop(16); len(batch) == 0 {
							return
						}
					case <-time.After(time.Millisecond):
						continue
					}
				}
				for _, ptx := range batch {
					r, err := c.Submit(ptx.tx)
					if err != nil {
						t.Errorf("submit: %v", err)
					}
					ptx.finish(TxResult{Receipt: r, Err: err})
				}
				p.markDone(batch)
				mu.Lock()
				executed += len(batch)
				mu.Unlock()
			}
		}()
	}

	var subWg sync.WaitGroup
	for _, addr := range addrs {
		subWg.Add(1)
		go func(a chain.Address) {
			defer subWg.Done()
			var results []chan TxResult
			submit := func() bool {
				for {
					ptx, err := p.add(chain.Transaction{From: a, To: a, Value: 1}, true, true)
					switch {
					case err == nil:
						results = append(results, ptx.done)
						return true
					case errors.Is(err, ErrPoolFull):
						time.Sleep(100 * time.Microsecond)
					default:
						t.Errorf("add: %v", err)
						return false
					}
				}
			}
			for i := 0; i < txPerSender; i++ {
				if !submit() {
					return
				}
			}
			completed := 0
			for completed < txPerSender && len(results) > 0 {
				res := <-results[0]
				results = results[1:]
				switch {
				case errors.Is(res.Err, ErrEvicted):
					if !submit() {
						return
					}
				case res.Err != nil:
					t.Errorf("tx result: %v", res.Err)
					return
				default:
					completed++
				}
			}
		}(addr)
	}
	subWg.Wait()
	close(stop)
	wg.Wait()

	if executed != senders*txPerSender {
		t.Fatalf("executed %d, want %d", executed, senders*txPerSender)
	}
	for _, a := range addrs {
		if got := c.NonceOf(a); got != txPerSender {
			t.Fatalf("sender %s nonce %d, want %d", a, got, txPerSender)
		}
	}
	if got := p.Len(); got != 0 {
		t.Fatalf("pool not drained: %d left", got)
	}
}

// TestNonceGapRefill pins the refill behavior around nonce gaps: a gapped
// transaction parks in the pool without executing, pop serves only the
// contiguous run, and the moment the missing nonce arrives the whole run —
// parked tail included — becomes executable in one pop.
func TestNonceGapRefill(t *testing.T) {
	p, c := testPool(t, Config{MaxNonceGap: 8})
	alice := fund(c, "alice", 1000)

	// Nonces 0, 1, then a hole at 2, then 3 and 4 parked behind it.
	for _, nonce := range []uint64{0, 1, 3, 4} {
		if _, err := p.add(chain.Transaction{From: alice, Nonce: nonce}, false, false); err != nil {
			t.Fatalf("nonce %d: %v", nonce, err)
		}
	}
	batch := p.pop(16)
	if len(batch) != 2 || batch[0].tx.Nonce != 0 || batch[1].tx.Nonce != 1 {
		t.Fatalf("pop across gap returned %d txs, want the [0 1] run", len(batch))
	}
	for _, ptx := range batch {
		if _, err := c.Submit(ptx.tx); err != nil {
			t.Fatal(err)
		}
	}
	p.markDone(batch)

	// Still gapped: nothing executable, and the pool still holds 3 and 4.
	if got := p.pop(16); len(got) != 0 {
		t.Fatalf("pop with gap unhealed returned %d txs, want 0", len(got))
	}
	if got := p.Len(); got != 2 {
		t.Fatalf("pool size %d, want 2 parked", got)
	}

	// Filling the hole makes the full tail executable at once, in order.
	if _, err := p.add(chain.Transaction{From: alice, Nonce: 2}, false, false); err != nil {
		t.Fatalf("refill nonce 2: %v", err)
	}
	batch = p.pop(16)
	if len(batch) != 3 {
		t.Fatalf("pop after refill returned %d txs, want 3", len(batch))
	}
	for i, ptx := range batch {
		if want := uint64(2 + i); ptx.tx.Nonce != want {
			t.Fatalf("refilled run position %d has nonce %d, want %d", i, ptx.tx.Nonce, want)
		}
		if _, err := c.Submit(ptx.tx); err != nil {
			t.Fatal(err)
		}
	}
	p.markDone(batch)
	if got := p.Len(); got != 0 {
		t.Fatalf("pool not empty after refill drain: %d", got)
	}
	if got := c.NonceOf(alice); got != 5 {
		t.Fatalf("account nonce %d, want 5", got)
	}
}

// TestImportedBlockReplacesPooledNonce pins ErrReplaced delivery: when an
// imported block consumes a nonce with a *different* transaction than the
// pooled one, the pooled transaction is evicted with ErrReplaced (it can
// never execute), while a pooled transaction whose exact hash was included
// gets its receipt instead.
func TestImportedBlockReplacesPooledNonce(t *testing.T) {
	producer := chain.New()
	c := chain.New()
	p, _ := testPool(t, Config{})
	p.chain = c
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")
	for _, ch := range []*chain.Chain{producer, c} {
		ch.Faucet(alice, 1000)
		ch.Faucet(bob, 1000)
	}

	// Locally pooled: alice nonce 0 pays bob 7 (will be superseded), alice
	// nonce 1 (stranded behind it), bob nonce 0 paying alice 5 (identical
	// to the remotely sealed copy — gets a receipt).
	supersededPtx, err := p.add(chain.Transaction{From: alice, To: bob, Value: 7, Nonce: 0}, false, true)
	if err != nil {
		t.Fatal(err)
	}
	strandedPtx, err := p.add(chain.Transaction{From: alice, To: bob, Value: 3, Nonce: 1}, false, true)
	if err != nil {
		t.Fatal(err)
	}
	includedTx := chain.Transaction{From: bob, To: alice, Value: 5, Nonce: 0}
	includedPtx, err := p.add(includedTx, false, true)
	if err != nil {
		t.Fatal(err)
	}

	// The remote sealer spends alice nonces 0 AND 1 differently.
	remoteTxs := []chain.Transaction{
		{From: alice, To: bob, Value: 1, Nonce: 0},
		{From: alice, To: bob, Value: 1, Nonce: 1},
		includedTx,
	}
	for _, tx := range remoteTxs {
		if _, err := producer.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}
	block := producer.SealBlock()
	// Import the normalized (gas-default applied) body so tx hashes match
	// the header, exactly as a syncing peer would receive it.
	body, ok := producer.BlockBody(block.Number)
	if !ok {
		t.Fatal("producer block body missing")
	}
	receipts, err := c.ImportBlock(block, body)
	if err != nil {
		t.Fatal(err)
	}
	p.removeIncluded(body, receipts, block.Number)

	for _, tc := range []struct {
		name string
		done chan TxResult
	}{{"superseded", supersededPtx.done}, {"stranded", strandedPtx.done}} {
		select {
		case res := <-tc.done:
			if !errors.Is(res.Err, ErrReplaced) {
				t.Fatalf("%s result %v, want ErrReplaced", tc.name, res.Err)
			}
		case <-time.After(time.Second):
			t.Fatalf("%s result not delivered", tc.name)
		}
	}
	select {
	case res := <-includedPtx.done:
		if res.Err != nil || res.Receipt == nil {
			t.Fatalf("included tx result %+v, want receipt", res)
		}
		if res.BlockNumber != block.Number {
			t.Fatalf("included tx block %d, want %d", res.BlockNumber, block.Number)
		}
	case <-time.After(time.Second):
		t.Fatal("included tx result not delivered")
	}
	if got := p.Len(); got != 0 {
		t.Fatalf("pool size %d after reconcile, want 0", got)
	}
}

// TestPendingSampleDeterministic pins the gossip-sample ordering contract:
// with sender iteration sorted by address, two calls observing the same pool
// return byte-identical samples even while other senders' submitters are
// racing admission (concurrent adds may grow later samples but never reorder
// the common prefix of senders already present). Run under -race this also
// guards the sample path against locking regressions.
func TestPendingSampleDeterministic(t *testing.T) {
	p, c := testPool(t, Config{MaxPoolTxs: 4096})
	const stable = 6
	stableAddrs := make([]chain.Address, stable)
	for i := range stableAddrs {
		stableAddrs[i] = fund(c, fmt.Sprintf("stable-%d", i), 1<<20)
		for nonce := uint64(0); nonce < 4; nonce++ {
			if _, err := p.add(chain.Transaction{From: stableAddrs[i], Nonce: nonce}, false, false); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Racing submitters on disjoint senders.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		addr := fund(c, fmt.Sprintf("racer-%d", i), 1<<20)
		wg.Add(1)
		go func(a chain.Address) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := p.add(chain.Transaction{From: a}, true, false); err != nil {
					return // pool full: stop racing, determinism check continues
				}
			}
		}(addr)
	}

	sameTx := func(a, b chain.Transaction) bool { return a.Hash() == b.Hash() }
	for round := 0; round < 50; round++ {
		s1 := p.pendingSample(stable * 4)
		s2 := p.pendingSample(stable * 4)
		if len(s1) != stable*4 || len(s2) != stable*4 {
			t.Fatalf("round %d: sample sizes %d/%d, want %d", round, len(s1), len(s2), stable*4)
		}
		for i := range s1 {
			if !sameTx(s1[i], s2[i]) {
				t.Fatalf("round %d: samples diverge at %d: %s nonce %d vs %s nonce %d",
					round, i, s1[i].From, s1[i].Nonce, s2[i].From, s2[i].Nonce)
			}
		}
	}
	close(stop)
	wg.Wait()

	// The full-pool sample is sorted by sender address with each sender's
	// run nonce-contiguous.
	full := p.pendingSample(1 << 20)
	for i := 1; i < len(full); i++ {
		prev, cur := full[i-1], full[i]
		if prev.From == cur.From {
			if cur.Nonce != prev.Nonce+1 {
				t.Fatalf("sample position %d: nonce %d after %d", i, cur.Nonce, prev.Nonce)
			}
		} else if string(cur.From[:]) < string(prev.From[:]) {
			t.Fatalf("sample position %d: sender order regressed", i)
		}
	}
}
