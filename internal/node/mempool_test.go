package node

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
)

func testPool(t *testing.T, cfg Config) (*mempool, *chain.Chain) {
	t.Helper()
	cfg.sanitize()
	c := chain.New()
	return newMempool(cfg, c), c
}

func fund(c *chain.Chain, label string, amount uint64) chain.Address {
	a := chain.AddressFromString(label)
	c.Faucet(a, amount)
	return a
}

func TestAdmissionNonceChecks(t *testing.T) {
	p, c := testPool(t, Config{MaxNonceGap: 4})
	alice := fund(c, "alice", 1000)

	// Consume nonce 0 on chain directly.
	bob := fund(c, "bob", 1000)
	if _, err := c.Submit(chain.Transaction{From: alice, To: bob, Value: 1, Nonce: 0}); err != nil {
		t.Fatal(err)
	}

	if _, err := p.add(chain.Transaction{From: alice, Nonce: 0}, false, false); !errors.Is(err, ErrNonceTooLow) {
		t.Fatalf("nonce 0: %v, want ErrNonceTooLow", err)
	}
	if _, err := p.add(chain.Transaction{From: alice, Nonce: 1}, false, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.add(chain.Transaction{From: alice, Nonce: 1}, false, false); !errors.Is(err, ErrKnownTx) {
		t.Fatalf("duplicate nonce: %v, want ErrKnownTx", err)
	}
	// Next executable is 2; gap limit 4 allows up to 6.
	if _, err := p.add(chain.Transaction{From: alice, Nonce: 6}, false, false); err != nil {
		t.Fatalf("nonce 6 within gap: %v", err)
	}
	if _, err := p.add(chain.Transaction{From: alice, Nonce: 8}, false, false); !errors.Is(err, ErrNonceGap) {
		t.Fatalf("nonce 8: %v, want ErrNonceGap", err)
	}
}

func TestAdmissionBalanceAndGas(t *testing.T) {
	p, c := testPool(t, Config{MaxGasLimit: 100_000})
	alice := fund(c, "alice", 500)
	bob := chain.AddressFromString("bob")

	if _, err := p.add(chain.Transaction{From: alice, To: bob, Value: 300, Nonce: 0}, false, false); err != nil {
		t.Fatal(err)
	}
	// Second transfer would overdraw counting the reserved 300.
	if _, err := p.add(chain.Transaction{From: alice, To: bob, Value: 300, Nonce: 1}, false, false); !errors.Is(err, ErrUnderfunded) {
		t.Fatalf("overdraw: %v, want ErrUnderfunded", err)
	}
	if _, err := p.add(chain.Transaction{From: alice, To: bob, Value: 100, Nonce: 1}, false, false); err != nil {
		t.Fatalf("affordable second transfer: %v", err)
	}
	if _, err := p.add(chain.Transaction{From: alice, GasLimit: 200_000, Nonce: 2}, false, false); !errors.Is(err, ErrGasTooHigh) {
		t.Fatalf("gas cap: %v, want ErrGasTooHigh", err)
	}
}

func TestAutoNonceAssignment(t *testing.T) {
	p, c := testPool(t, Config{})
	alice := fund(c, "alice", 1000)
	for i := 0; i < 5; i++ {
		if _, err := p.add(chain.Transaction{From: alice}, true, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.NextNonce(alice); got != 5 {
		t.Fatalf("next nonce %d, want 5", got)
	}
	batch := p.pop(10)
	if len(batch) != 5 {
		t.Fatalf("popped %d, want 5", len(batch))
	}
	for i, ptx := range batch {
		if ptx.tx.Nonce != uint64(i) {
			t.Fatalf("pop order: batch[%d].Nonce = %d", i, ptx.tx.Nonce)
		}
	}
}

func TestCapacityEviction(t *testing.T) {
	p, c := testPool(t, Config{MaxPoolTxs: 4, MaxNonceGap: 16})
	alice := fund(c, "alice", 1000)
	bob := fund(c, "bob", 1000)

	// Fill the pool with alice's txs, the last far in the future.
	var farDone chan TxResult
	for _, nonce := range []uint64{0, 1, 2} {
		if _, err := p.add(chain.Transaction{From: alice, Nonce: nonce}, false, false); err != nil {
			t.Fatal(err)
		}
	}
	farPtx, err := p.add(chain.Transaction{From: alice, Nonce: 10}, false, true)
	if err != nil {
		t.Fatal(err)
	}
	farDone = farPtx.done

	// Bob's executable tx evicts alice's nonce-10 straggler.
	if _, err := p.add(chain.Transaction{From: bob, Nonce: 0}, false, false); err != nil {
		t.Fatalf("executable tx not admitted at capacity: %v", err)
	}
	select {
	case res := <-farDone:
		if !errors.Is(res.Err, ErrEvicted) {
			t.Fatalf("victim result %v, want ErrEvicted", res.Err)
		}
	case <-time.After(time.Second):
		t.Fatal("evicted tx result not delivered")
	}

	// Another far-future tx cannot displace closer ones.
	if _, err := p.add(chain.Transaction{From: bob, Nonce: 12}, false, false); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("far-future tx at capacity: %v, want ErrPoolFull", err)
	}
	if got := p.Len(); got != 4 {
		t.Fatalf("pool size %d, want 4", got)
	}
}

// TestParallelProducersAndSubmitters hammers the pool from concurrent
// client goroutines while several producer goroutines pop/execute/markDone
// — the contended admission/eviction path `make race` guards. The pool is
// deliberately smaller than the offered load so capacity eviction fires;
// clients behave like real ones: they wait on results and resubmit evicted
// transactions (auto-nonce heals the gap an eviction leaves).
func TestParallelProducersAndSubmitters(t *testing.T) {
	const senders = 8
	const txPerSender = 50
	const producers = 4

	p, c := testPool(t, Config{MaxPoolTxs: 128})
	addrs := make([]chain.Address, senders)
	for i := range addrs {
		addrs[i] = fund(c, "sender-"+string(rune('a'+i)), 1<<30)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var mu sync.Mutex
	executed := 0

	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				batch := p.pop(16)
				if len(batch) == 0 {
					select {
					case <-stop:
						// Final drain so admitted stragglers execute.
						if batch = p.pop(16); len(batch) == 0 {
							return
						}
					case <-time.After(time.Millisecond):
						continue
					}
				}
				for _, ptx := range batch {
					r, err := c.Submit(ptx.tx)
					if err != nil {
						t.Errorf("submit: %v", err)
					}
					ptx.finish(TxResult{Receipt: r, Err: err})
				}
				p.markDone(batch)
				mu.Lock()
				executed += len(batch)
				mu.Unlock()
			}
		}()
	}

	var subWg sync.WaitGroup
	for _, addr := range addrs {
		subWg.Add(1)
		go func(a chain.Address) {
			defer subWg.Done()
			var results []chan TxResult
			submit := func() bool {
				for {
					ptx, err := p.add(chain.Transaction{From: a, To: a, Value: 1}, true, true)
					switch {
					case err == nil:
						results = append(results, ptx.done)
						return true
					case errors.Is(err, ErrPoolFull):
						time.Sleep(100 * time.Microsecond)
					default:
						t.Errorf("add: %v", err)
						return false
					}
				}
			}
			for i := 0; i < txPerSender; i++ {
				if !submit() {
					return
				}
			}
			completed := 0
			for completed < txPerSender && len(results) > 0 {
				res := <-results[0]
				results = results[1:]
				switch {
				case errors.Is(res.Err, ErrEvicted):
					if !submit() {
						return
					}
				case res.Err != nil:
					t.Errorf("tx result: %v", res.Err)
					return
				default:
					completed++
				}
			}
		}(addr)
	}
	subWg.Wait()
	close(stop)
	wg.Wait()

	if executed != senders*txPerSender {
		t.Fatalf("executed %d, want %d", executed, senders*txPerSender)
	}
	for _, a := range addrs {
		if got := c.NonceOf(a); got != txPerSender {
			t.Fatalf("sender %s nonce %d, want %d", a, got, txPerSender)
		}
	}
	if got := p.Len(); got != 0 {
		t.Fatalf("pool not drained: %d left", got)
	}
}
