package p2p

import (
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/storage"
)

// NetStore is the cluster's blob store: a node's local storage.Store
// fronted by peer fetch over the transport. Put stores locally and
// replicates to Config.Replicate peers; Get serves local hits immediately
// and resolves misses from peers, verifying the content address before
// caching — a peer returning bytes that do not hash to the URI is demoted
// and the next peer is tried. It implements storage.BlobStore, so a
// core.Marketplace wired to it resolves URIs minted anywhere in the
// cluster (the paper's IPFS role, DHT-free: membership is static, so
// asking peers directly replaces routing).
type NetStore struct {
	node  *Node
	local storage.LocalStore
}

// NetStore returns the node's cluster-wide blob store. It requires
// Config.Store (the local half) to be set.
func (n *Node) NetStore() *NetStore {
	return &NetStore{node: n, local: n.cfg.Store}
}

var _ storage.BlobStore = (*NetStore)(nil)

// Put stores data locally and replicates it to a few peers so the blob
// survives this node's failure and nearby reads stay local.
func (s *NetStore) Put(owner string, data []byte) (storage.URI, error) {
	uri, err := s.local.Put(owner, data)
	if err != nil {
		return storage.URI{}, err
	}
	msg := Message{Kind: MsgBlobPush, URI: uri, Owner: owner, Blob: data}
	targets := s.node.gossipTargets("")
	if len(targets) > s.node.cfg.Replicate {
		targets = targets[:s.node.cfg.Replicate]
	}
	for _, id := range targets {
		s.node.net.Send(s.node.cfg.ID, id, msg) //nolint:errcheck // unreliable by contract
	}
	return uri, nil
}

// Get retrieves a blob, falling through to peers on a local miss. Fetched
// content is digest-checked against the URI and cached locally under the
// owner the peer reports. Every reachable peer missing the blob yields
// ErrNotFound; local tamper evidence (ErrTampered) is returned as-is.
func (s *NetStore) Get(uri storage.URI) ([]byte, error) {
	data, err := s.local.Get(uri)
	if err == nil || errors.Is(err, storage.ErrTampered) {
		return data, err
	}
	for _, id := range s.node.fetchCandidates() {
		resp, err := s.node.request(id, Message{Kind: MsgGetBlob, URI: uri})
		if err != nil || !resp.OK {
			continue
		}
		if storage.URIOf(resp.Blob) != uri {
			// Served bytes that do not match the content address: the
			// peer is lying or corrupt either way.
			s.node.demote(id, scoreInvalidBlock)
			continue
		}
		s.local.Put(resp.Owner, resp.Blob) //nolint:errcheck // local put cannot fail
		return resp.Blob, nil
	}
	return nil, fmt.Errorf("%w: %s (cluster-wide)", storage.ErrNotFound, uri)
}

// Remove deletes the blob locally and asks peers to drop their replicas;
// each peer re-checks ownership itself.
func (s *NetStore) Remove(owner string, uri storage.URI) error {
	if err := s.local.Remove(owner, uri); err != nil {
		return err
	}
	msg := Message{Kind: MsgBlobRemove, URI: uri, Owner: owner}
	for _, id := range s.node.others {
		s.node.net.Send(s.node.cfg.ID, id, msg) //nolint:errcheck // unreliable by contract
	}
	return nil
}

// Local exposes the node-local half (for tests and direct inspection).
func (s *NetStore) Local() storage.LocalStore { return s.local }

// fetchCandidates lists non-demoted peers in deterministic order.
func (n *Node) fetchCandidates() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeID, 0, len(n.others))
	for _, id := range n.others {
		if ps := n.peers[id]; ps != nil && ps.score <= n.cfg.DemoteBelow {
			continue
		}
		out = append(out, id)
	}
	return out
}
