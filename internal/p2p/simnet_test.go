package p2p

import (
	"sync"
	"testing"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
)

// collector is a test endpoint that records deliveries.
type collector struct {
	mu   sync.Mutex
	got  []Message
	from []NodeID
}

func (c *collector) handle(from NodeID, msg Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, msg)
	c.from = append(c.from, from)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached before timeout")
}

func TestSimNetDeliversInOrder(t *testing.T) {
	net := NewSimNet(nil, 1)
	defer net.Close()
	var c collector
	if err := net.Attach("a", func(NodeID, Message) {}); err != nil {
		t.Fatal(err)
	}
	if err := net.Attach("b", c.handle); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := net.Send("a", "b", Message{Kind: MsgStatus, Height: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, time.Second, func() bool { return c.count() == 10 })
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, m := range c.got {
		if m.Height != uint64(i) {
			t.Fatalf("delivery %d has height %d — reordered on a zero-latency link", i, m.Height)
		}
	}
}

func TestSimNetPartitionAndHeal(t *testing.T) {
	plan := NewFaultPlan(LinkProfile{})
	net := NewSimNet(plan, 1)
	defer net.Close()
	var c collector
	net.Attach("a", func(NodeID, Message) {})
	net.Attach("b", c.handle)

	plan.Partition([]NodeID{"a"}, []NodeID{"b"})
	net.Send("a", "b", Message{Kind: MsgStatus})
	time.Sleep(20 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("message crossed a partition")
	}
	_, _, dropped, _ := net.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}

	plan.Heal()
	net.Send("a", "b", Message{Kind: MsgStatus})
	waitFor(t, time.Second, func() bool { return c.count() == 1 })
}

func TestSimNetDeterministicDrops(t *testing.T) {
	run := func(seed int64) uint64 {
		plan := NewFaultPlan(LinkProfile{DropRate: 0.5})
		net := NewSimNet(plan, seed)
		defer net.Close()
		net.Attach("a", func(NodeID, Message) {})
		net.Attach("b", func(NodeID, Message) {})
		for i := 0; i < 200; i++ {
			net.Send("a", "b", Message{Kind: MsgStatus})
		}
		_, _, dropped, _ := net.Stats()
		return dropped
	}
	d1, d2 := run(42), run(42)
	if d1 != d2 {
		t.Fatalf("same seed, different drops: %d vs %d", d1, d2)
	}
	if d1 == 0 || d1 == 200 {
		t.Fatalf("drop rate 0.5 dropped %d of 200", d1)
	}
	if d3 := run(43); d3 == d1 {
		t.Logf("different seeds coincided (%d) — unlikely but legal", d3)
	}
}

func TestSimNetCrashedNode(t *testing.T) {
	plan := NewFaultPlan(LinkProfile{})
	net := NewSimNet(plan, 1)
	defer net.Close()
	var c collector
	net.Attach("a", func(NodeID, Message) {})
	net.Attach("b", c.handle)
	plan.SetDown("b", true)
	net.Send("a", "b", Message{Kind: MsgStatus})
	time.Sleep(20 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("down node received a message")
	}
	plan.SetDown("b", false)
	net.Send("a", "b", Message{Kind: MsgStatus})
	waitFor(t, time.Second, func() bool { return c.count() == 1 })
}

func TestFaultPlanLinkOverride(t *testing.T) {
	plan := NewFaultPlan(LinkProfile{Latency: time.Millisecond})
	plan.SetLink("a", "b", LinkProfile{DropRate: 1})
	if _, ok := plan.admit("a", "b"); !ok {
		t.Fatal("override should still admit (drop happens in transport)")
	}
	if prof, _ := plan.admit("a", "b"); prof.DropRate != 1 {
		t.Fatal("override not applied")
	}
	if prof, _ := plan.admit("b", "a"); prof.Latency != time.Millisecond {
		t.Fatal("reverse direction should use default")
	}
}

func TestSeenCacheEviction(t *testing.T) {
	s := newSeenCache(3)
	h := func(b byte) chain.Hash { return chain.Hash{b} }
	for b := byte(1); b <= 3; b++ {
		if !s.add(h(b)) {
			t.Fatalf("fresh hash %d reported seen", b)
		}
	}
	if s.add(h(1)) {
		t.Fatal("cached hash reported fresh")
	}
	// Capacity 3: adding a 4th evicts the oldest (1).
	if !s.add(h(4)) {
		t.Fatal("fresh hash 4 reported seen")
	}
	if !s.add(h(1)) {
		t.Fatal("evicted hash not re-addable")
	}
	if s.add(h(3)) {
		t.Fatal("hash 3 should still be cached")
	}
}
