package p2p

import (
	"context"
	"fmt"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/node"
	"github.com/zkdet/zkdet/internal/storage"
)

// NodeSetup is one member's application stack, built by the caller so the
// cluster harness stays agnostic of contracts: the inner node over its own
// chain replica, an optional proof validator, and an optional local blob
// store.
type NodeSetup struct {
	Inner     *node.Node
	Validator TxValidator
	Store     storage.LocalStore
}

// ClusterSpec describes a simulated cluster.
type ClusterSpec struct {
	// Size is the member count.
	Size int
	// Seed drives the transport's randomness (drops, jitter).
	Seed int64
	// Link is the default link profile; mutate Cluster.Net.Plan() mid-run
	// for faults.
	Link LinkProfile
	// Build constructs member i's stack. Nil means a bare chain and node
	// with default tuning — enough for transfer-only traffic. Every
	// member's genesis state must be identical.
	Build func(i int, id NodeID) (NodeSetup, error)
	// Tune, when set, adjusts member i's p2p config (fanout, timeouts)
	// after defaults are applied.
	Tune func(i int, cfg *Config)
}

// Cluster is a set of p2p nodes wired to one simulated transport —
// the harness the tests, benchmarks, and the zkdet-cluster demo share.
type Cluster struct {
	Net   *SimNet
	Nodes []*Node
}

// MemberIDs returns the canonical IDs of an n-member cluster.
func MemberIDs(n int) []NodeID {
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(fmt.Sprintf("node-%02d", i))
	}
	return ids
}

// NewCluster builds (but does not start) a cluster.
func NewCluster(spec ClusterSpec) (*Cluster, error) {
	if spec.Size < 2 {
		return nil, fmt.Errorf("p2p: cluster needs at least 2 members, got %d", spec.Size)
	}
	build := spec.Build
	if build == nil {
		build = func(int, NodeID) (NodeSetup, error) {
			return NodeSetup{
				Inner: node.New(chain.New(), node.Config{}),
				Store: storage.NewStore(),
			}, nil
		}
	}
	members := MemberIDs(spec.Size)
	net := NewSimNet(NewFaultPlan(spec.Link), spec.Seed)
	c := &Cluster{Net: net, Nodes: make([]*Node, spec.Size)}
	for i, id := range members {
		setup, err := build(i, id)
		if err != nil {
			return nil, fmt.Errorf("p2p: build member %d: %w", i, err)
		}
		cfg := Config{
			ID:        id,
			Members:   members,
			Validator: setup.Validator,
			Store:     setup.Store,
		}
		if spec.Tune != nil {
			spec.Tune(i, &cfg)
		}
		n, err := NewNode(cfg, setup.Inner, net)
		if err != nil {
			return nil, err
		}
		c.Nodes[i] = n
	}
	return c, nil
}

// Start launches every member.
func (c *Cluster) Start() error {
	for _, n := range c.Nodes {
		if err := n.Start(); err != nil {
			return err
		}
	}
	return nil
}

// Stop halts every member and closes the transport.
func (c *Cluster) Stop() {
	for _, n := range c.Nodes {
		n.Stop()
	}
	c.Net.Close()
}

// Converged reports whether all members share one head, and that head's
// hash and height.
func (c *Cluster) Converged() (chain.Hash, uint64, bool) {
	head := c.Nodes[0].Head()
	want := head.Hash()
	for _, n := range c.Nodes[1:] {
		h := n.Head()
		if h.Hash() != want {
			return chain.Hash{}, 0, false
		}
	}
	return want, head.Number, true
}

// WaitConverged polls until every member reports the same head at or above
// minHeight, returning that head hash.
func (c *Cluster) WaitConverged(ctx context.Context, minHeight uint64) (chain.Hash, error) {
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		if h, height, ok := c.Converged(); ok && height >= minHeight {
			return h, nil
		}
		select {
		case <-ctx.Done():
			h, height, ok := c.Converged()
			if ok && height >= minHeight {
				return h, nil
			}
			return chain.Hash{}, fmt.Errorf("p2p: convergence timeout (converged=%v height=%d min=%d): %w",
				ok, height, minHeight, ctx.Err())
		case <-ticker.C:
		}
	}
}
