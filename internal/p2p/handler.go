package p2p

import (
	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/storage"
)

// handle is the transport delivery callback. The dispatcher invokes it
// serially, so it must never wait for a network response: it records peer
// state, admits and forwards gossip, serves data requests, and routes
// responses to the goroutines awaiting them. Response-awaiting protocols
// (sync, blob fetch) live on their own goroutines.
func (n *Node) handle(from NodeID, msg Message) {
	switch msg.Kind {
	case MsgStatus:
		n.recordPeerHead(from, msg.Height, msg.Head)
	case MsgBlockAnnounce:
		n.handleAnnounce(from, msg)
	case MsgTxPush:
		n.handleTxPush(from, msg)
	case MsgGetHeaders:
		n.serveHeaders(from, msg)
	case MsgGetBody:
		n.serveBody(from, msg)
	case MsgGetBlob:
		n.serveBlob(from, msg)
	case MsgBlobPush:
		n.acceptBlob(from, msg)
	case MsgBlobRemove:
		if n.cfg.Store != nil {
			n.cfg.Store.Remove(msg.Owner, msg.URI) //nolint:errcheck // owner check is the point
		}
	case MsgHeaders, MsgBody, MsgBlob:
		n.routeResponse(msg)
	}
}

// recordPeerHead updates a peer's advertised head and wakes the sync loop
// when the peer is ahead of us.
func (n *Node) recordPeerHead(from NodeID, height uint64, head chain.Hash) {
	n.mu.Lock()
	ps, ok := n.peers[from]
	if ok {
		ps.height = height
		ps.head = head
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	if height > n.inner.Chain().Head().Number {
		n.wakeSync()
	}
}

// handleAnnounce treats a block announcement as a status update plus a
// propagation hint: the header itself still arrives through sync (which
// fetches and validates the body), but a fresh announcement is re-gossiped
// so propagation does not rely on the original sealer reaching everyone.
func (n *Node) handleAnnounce(from NodeID, msg Message) {
	if n.isDemoted(from) || len(msg.Headers) != 1 {
		return
	}
	h := msg.Headers[0]
	n.recordPeerHead(from, msg.Height, msg.Head)
	if !n.markBlockSeen(h.Hash()) {
		return
	}
	if h.Number > n.inner.Chain().Head().Number {
		for _, id := range n.gossipTargets(from) {
			n.net.Send(n.cfg.ID, id, msg) //nolint:errcheck // unreliable by contract
		}
	}
}

// handleTxPush admits gossiped transactions: unseen ones are screened by
// the validator (an invalid proof demotes the pusher and drops the
// transaction), admitted to the local pool, and re-pushed to a fanout of
// other peers. Admission rejections (duplicate nonce, underfunded sender)
// are not the pusher's fault and are ignored; the seen-cache already
// stops the echo.
func (n *Node) handleTxPush(from NodeID, msg Message) {
	if n.isDemoted(from) {
		return
	}
	fresh := make([]chain.Transaction, 0, len(msg.Txs))
	for _, tx := range msg.Txs {
		if n.markTxSeen(tx.Hash()) {
			fresh = append(fresh, tx)
		}
	}
	if len(fresh) == 0 {
		return
	}
	if v := n.cfg.Validator; v != nil {
		ptrs := make([]*chain.Transaction, len(fresh))
		for i := range fresh {
			ptrs[i] = &fresh[i]
		}
		_, errs := v.GossipCheck(ptrs)
		valid := make([]chain.Transaction, 0, len(fresh))
		invalid := 0
		for i := range fresh {
			if errs[i] != nil {
				invalid++
				continue
			}
			valid = append(valid, fresh[i])
		}
		if invalid > 0 {
			n.demote(from, scoreInvalidTx*invalid)
			n.mu.Lock()
			n.stats.TxsInvalid += uint64(invalid)
			n.mu.Unlock()
		}
		fresh = valid
	}
	if len(fresh) == 0 {
		return
	}
	admitted := 0
	for i := range fresh {
		if _, err := n.inner.Submit(fresh[i]); err == nil {
			admitted++
		}
	}
	n.mu.Lock()
	n.stats.TxsAccepted += uint64(admitted)
	n.mu.Unlock()
	n.pushTxs(fresh, from)
}

// serveHeaders answers a headers-range request from the local chain.
func (n *Node) serveHeaders(from NodeID, msg Message) {
	headers := n.inner.Chain().HeadersRange(msg.From, min(msg.Count, n.cfg.HeadersBatch))
	n.reply(from, Message{
		Kind:    MsgHeaders,
		ReqID:   msg.ReqID,
		Headers: headers,
		OK:      len(headers) > 0,
	})
}

// serveBody answers a block-body request from the local chain.
func (n *Node) serveBody(from NodeID, msg Message) {
	txs, ok := n.inner.Chain().BlockBody(msg.From)
	resp := Message{Kind: MsgBody, ReqID: msg.ReqID, Txs: txs, OK: ok}
	if !ok {
		resp.Err = "no such block"
	}
	n.reply(from, resp)
}

// serveBlob answers a blob request from the local store. A miss is an
// honest refusal (OK=false); only tampered content is a fault, and the
// store itself reports that distinctly.
func (n *Node) serveBlob(from NodeID, msg Message) {
	resp := Message{Kind: MsgBlob, ReqID: msg.ReqID, URI: msg.URI}
	if n.cfg.Store == nil {
		resp.Err = "no store"
	} else if data, err := n.cfg.Store.Get(msg.URI); err != nil {
		resp.Err = err.Error()
	} else {
		owner, _ := n.cfg.Store.Owner(msg.URI)
		resp.Blob = data
		resp.Owner = owner
		resp.OK = true
	}
	n.reply(from, resp)
}

// acceptBlob stores a replicated blob after checking that the content
// matches its claimed address; a mismatch demotes the pusher.
func (n *Node) acceptBlob(from NodeID, msg Message) {
	if n.cfg.Store == nil || n.isDemoted(from) {
		return
	}
	if storage.URIOf(msg.Blob) != msg.URI {
		n.demote(from, scoreInvalidTx)
		return
	}
	n.cfg.Store.Put(msg.Owner, msg.Blob) //nolint:errcheck // local put cannot fail
}

// reply sends a response, piggybacking the local head so every exchange
// doubles as a status update.
func (n *Node) reply(to NodeID, msg Message) {
	head := n.inner.Chain().Head()
	msg.Height = head.Number
	msg.Head = head.Hash()
	n.net.Send(n.cfg.ID, to, msg) //nolint:errcheck // unreliable by contract
}

// routeResponse hands a response to the goroutine awaiting its ReqID; late
// or duplicate responses are dropped. The response's piggybacked head also
// refreshes peer tracking via the caller (request records it).
func (n *Node) routeResponse(msg Message) {
	n.mu.Lock()
	ch, ok := n.reqs[msg.ReqID]
	if ok {
		delete(n.reqs, msg.ReqID)
	}
	n.mu.Unlock()
	if ok {
		select {
		case ch <- msg:
		default:
		}
	}
}

// errAny returns the first non-nil error in errs.
func errAny(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
