package p2p

import (
	"sync"
	"time"
)

// LinkProfile describes the quality of one directed link: base propagation
// latency, uniform jitter added on top, independent per-message drop
// probability, and a bandwidth cap that serializes large messages.
// Zero values mean instant, lossless, unbounded.
type LinkProfile struct {
	Latency     time.Duration
	Jitter      time.Duration
	DropRate    float64
	BytesPerSec int // 0 = unlimited
}

// FaultPlan decides, per message, whether and how a directed link delivers.
// It is mutable mid-run: tests and demos inject partitions, degrade links,
// and heal them while traffic is flowing. Safe for concurrent use.
type FaultPlan struct {
	mu    sync.Mutex
	def   LinkProfile             // guarded by mu
	links map[linkKey]LinkProfile // guarded by mu; per-link overrides
	group map[NodeID]int          // guarded by mu; partition group per node
	downs map[NodeID]bool         // guarded by mu; crashed nodes
}

type linkKey struct{ from, to NodeID }

// NewFaultPlan returns a plan where every link uses def and nothing is
// partitioned or down.
func NewFaultPlan(def LinkProfile) *FaultPlan {
	return &FaultPlan{
		def:   def,
		links: make(map[linkKey]LinkProfile),
		group: make(map[NodeID]int),
		downs: make(map[NodeID]bool),
	}
}

// SetDefault replaces the profile used by links without an override.
func (p *FaultPlan) SetDefault(def LinkProfile) {
	p.mu.Lock()
	p.def = def
	p.mu.Unlock()
}

// SetLink overrides the profile of one directed link.
func (p *FaultPlan) SetLink(from, to NodeID, prof LinkProfile) {
	p.mu.Lock()
	p.links[linkKey{from, to}] = prof
	p.mu.Unlock()
}

// SetBoth overrides both directions of a link with the same profile.
func (p *FaultPlan) SetBoth(a, b NodeID, prof LinkProfile) {
	p.mu.Lock()
	p.links[linkKey{a, b}] = prof
	p.links[linkKey{b, a}] = prof
	p.mu.Unlock()
}

// Partition splits the cluster: messages cross group boundaries only as
// drops. Nodes not listed in any group form an implicit extra group
// together. Calling Partition replaces any previous partition.
func (p *FaultPlan) Partition(groups ...[]NodeID) {
	p.mu.Lock()
	p.group = make(map[NodeID]int)
	for i, g := range groups {
		for _, id := range g {
			p.group[id] = i + 1
		}
	}
	p.mu.Unlock()
}

// Heal removes all partitions (link profiles and down nodes are kept).
func (p *FaultPlan) Heal() {
	p.mu.Lock()
	p.group = make(map[NodeID]int)
	p.mu.Unlock()
}

// SetDown marks a node crashed (true) or recovered (false); a down node
// neither sends nor receives.
func (p *FaultPlan) SetDown(id NodeID, down bool) {
	p.mu.Lock()
	if down {
		p.downs[id] = true
	} else {
		delete(p.downs, id)
	}
	p.mu.Unlock()
}

// KillAndRestart crash-faults a node: the returned restart function brings
// it back up (idempotently). Between the two calls the node neither sends
// nor receives — exactly a SIGKILL'd process from the cluster's point of
// view. The caller is responsible for actually crashing the member's stack
// (e.g. DurableStore.Crash) and rebuilding it from its data dir before
// restarting; the plan only controls the network's view.
func (p *FaultPlan) KillAndRestart(id NodeID) (restart func()) {
	p.SetDown(id, true)
	var once sync.Once
	return func() {
		once.Do(func() { p.SetDown(id, false) })
	}
}

// admit returns the effective profile for a directed link and whether the
// message may traverse it at all (partition and crash checks).
func (p *FaultPlan) admit(from, to NodeID) (LinkProfile, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.downs[from] || p.downs[to] {
		return LinkProfile{}, false
	}
	// group 0 is the implicit "everyone unlisted" group.
	if p.group[from] != p.group[to] {
		return LinkProfile{}, false
	}
	if prof, ok := p.links[linkKey{from, to}]; ok {
		return prof, true
	}
	return p.def, true
}
