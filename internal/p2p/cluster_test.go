package p2p

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/node"
	"github.com/zkdet/zkdet/internal/storage"
)

// tuneFast shrinks every interval so cluster tests settle in milliseconds.
func tuneFast(_ int, cfg *Config) {
	cfg.SealInterval = 2 * time.Millisecond
	cfg.StatusInterval = 10 * time.Millisecond
	cfg.RebroadcastInterval = 25 * time.Millisecond
	cfg.RequestTimeout = 100 * time.Millisecond
	cfg.RetryBackoff = 10 * time.Millisecond
}

// transferCluster builds a cluster whose members share a genesis funding
// one sender account per member plus a common sink.
func transferCluster(t *testing.T, size int, seed int64, link LinkProfile) (*Cluster, []chain.Address, chain.Address) {
	t.Helper()
	senders := make([]chain.Address, size)
	for i := range senders {
		senders[i] = chain.AddressFromString(fmt.Sprintf("sender-%02d", i))
	}
	sink := chain.AddressFromString("sink")
	cl, err := NewCluster(ClusterSpec{
		Size: size,
		Seed: seed,
		Link: link,
		Build: func(i int, id NodeID) (NodeSetup, error) {
			c := chain.New()
			for _, s := range senders {
				c.Faucet(s, 1_000_000)
			}
			return NodeSetup{Inner: node.New(c, node.Config{}), Store: storage.NewStore()}, nil
		},
		Tune: tuneFast,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, senders, sink
}

// waitSettled polls until every member converged on one head whose state
// credits the sink with want transfers.
func waitSettled(t *testing.T, cl *Cluster, sink chain.Address, want uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if _, _, ok := cl.Converged(); ok {
			all := true
			for _, n := range cl.Nodes {
				if n.Inner().Chain().BalanceOf(sink) != want {
					all = false
					break
				}
			}
			if all {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, n := range cl.Nodes {
		h := n.Head()
		t.Logf("node %d: height=%d head=%s sink=%d pool=%d", i, h.Number, h.Hash(),
			n.Inner().Chain().BalanceOf(sink), n.Inner().Stats().PoolSize)
	}
	t.Fatal("cluster did not settle")
}

// assertIdenticalState checks heads and state roots match across members.
func assertIdenticalState(t *testing.T, cl *Cluster) {
	t.Helper()
	h0 := cl.Nodes[0].Head()
	for i, n := range cl.Nodes[1:] {
		h := n.Head()
		if h.Hash() != h0.Hash() {
			t.Fatalf("node %d head %s != node 0 head %s", i+1, h.Hash(), h0.Hash())
		}
		if h.StateRoot != h0.StateRoot {
			t.Fatalf("node %d state root diverged", i+1)
		}
	}
}

// TestClusterConvergence drives seeded lossy clusters of 3, 5, and 7
// members and requires every member to converge on one head and state.
func TestClusterConvergence(t *testing.T) {
	for _, size := range []int{3, 5, 7} {
		size := size
		t.Run(fmt.Sprintf("%d-nodes", size), func(t *testing.T) {
			t.Parallel()
			link := LinkProfile{
				Latency:  200 * time.Microsecond,
				Jitter:   500 * time.Microsecond,
				DropRate: 0.10, // every protocol must survive 10% loss
			}
			cl, senders, sink := transferCluster(t, size, int64(1000+size), link)
			if err := cl.Start(); err != nil {
				t.Fatal(err)
			}
			defer cl.Stop()

			const perNode = 5
			for i, n := range cl.Nodes {
				for k := 0; k < perNode; k++ {
					if _, err := n.Submit(chain.Transaction{From: senders[i], To: sink, Value: 1}, true); err != nil {
						t.Fatal(err)
					}
				}
			}
			waitSettled(t, cl, sink, uint64(size*perNode), 30*time.Second)
			assertIdenticalState(t, cl)
			for i, n := range cl.Nodes {
				if got := n.Inner().Stats().PoolSize; got != 0 {
					t.Fatalf("node %d pool not drained: %d", i, got)
				}
			}
		})
	}
}

// TestSubmitAndWaitAcrossCluster submits through a follower and requires
// the inclusion wait to resolve even though another member seals the block.
func TestSubmitAndWaitAcrossCluster(t *testing.T) {
	cl, senders, sink := transferCluster(t, 3, 7, LinkProfile{Latency: 200 * time.Microsecond})
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := cl.Nodes[2].SubmitAndWait(ctx, chain.Transaction{From: senders[2], To: sink, Value: 3}, true)
	if err != nil {
		t.Fatalf("SubmitAndWait: %v", err)
	}
	if res.Receipt == nil || res.Receipt.Err != nil {
		t.Fatalf("receipt: %+v", res.Receipt)
	}
	if res.BlockNumber == 0 {
		t.Fatal("no block number reported")
	}
}

// TestPartitionHeal splits a 7-member cluster 3/4 under load, lets both
// sides pool traffic, heals, and requires full convergence — the issue's
// acceptance scenario.
func TestPartitionHeal(t *testing.T) {
	link := LinkProfile{Latency: 200 * time.Microsecond, Jitter: 300 * time.Microsecond, DropRate: 0.05}
	cl, senders, sink := transferCluster(t, 7, 4242, link)
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	members := MemberIDs(7)
	submit := func(i int, k int) {
		t.Helper()
		for j := 0; j < k; j++ {
			if _, err := cl.Nodes[i].Submit(chain.Transaction{From: senders[i], To: sink, Value: 1}, true); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Pre-partition traffic establishes a common prefix.
	for i := 0; i < 7; i++ {
		submit(i, 2)
	}
	waitSettled(t, cl, sink, 14, 30*time.Second)

	// Partition 3 vs 4 and submit into both sides. With round-robin
	// leadership the chain stalls within a few heights (safety over
	// liveness) and both sides' pools hold the traffic.
	cl.Net.Plan().Partition(members[:3], members[3:])
	for i := 0; i < 7; i++ {
		submit(i, 2)
	}
	time.Sleep(150 * time.Millisecond)

	// Heal: rebroadcast and status ticks carry everything across, sync
	// reconciles the sides, and rotation resumes.
	cl.Net.Plan().Heal()
	waitSettled(t, cl, sink, 28, 60*time.Second)
	assertIdenticalState(t, cl)
}

// stubValidator flags transactions whose Args spell BAD — a stand-in for
// the contracts package's batch proof check in transport-level tests.
type stubValidator struct{}

func (stubValidator) GossipCheck(txs []*chain.Transaction) (int, []error) {
	errs := make([]error, len(txs))
	ok := 0
	for i, tx := range txs {
		if bytes.Equal(tx.Args, []byte("BAD")) {
			errs[i] = errors.New("stub: invalid proof")
		} else {
			ok++
		}
	}
	return ok, errs
}

// evilMember joins the membership but speaks raw messages instead of
// running the protocol.
func evilMember(t *testing.T, net *SimNet, id NodeID) {
	t.Helper()
	if err := net.Attach(id, func(NodeID, Message) {}); err != nil {
		t.Fatal(err)
	}
}

// honestNode builds and starts one protocol-following member with the stub
// validator and a tight demotion threshold.
func honestNode(t *testing.T, net *SimNet, id NodeID, members []NodeID) *Node {
	t.Helper()
	c := chain.New()
	c.Faucet(chain.AddressFromString("victim"), 1000)
	cfg := Config{ID: id, Members: members, Validator: stubValidator{}, DemoteBelow: -40}
	tuneFast(0, &cfg)
	n, err := NewNode(cfg, node.New(c, node.Config{}), net)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Stop)
	return n
}

// TestDemotionOnInvalidTxPush: a member pushing proof-invalid transactions
// loses score until it is demoted, its payloads never enter the pool, and
// it stops receiving gossip.
func TestDemotionOnInvalidTxPush(t *testing.T) {
	members := MemberIDs(3)
	net := NewSimNet(nil, 9)
	defer net.Close()
	n0 := honestNode(t, net, members[0], members)
	honestNode(t, net, members[1], members)
	evil := members[2]
	evilMember(t, net, evil)

	victim := chain.AddressFromString("victim")
	// Two pushes of 1 invalid tx each: 2 × -25 crosses the -40 threshold.
	for i := 0; i < 2; i++ {
		net.Send(evil, members[0], Message{Kind: MsgTxPush, Txs: []chain.Transaction{
			{From: victim, Nonce: uint64(i), Args: []byte("BAD"), GasLimit: chain.DefaultGasLimit},
		}})
	}
	waitFor(t, 5*time.Second, func() bool { return n0.Demoted(evil) })
	if got := n0.Inner().Stats().PoolSize; got != 0 {
		t.Fatalf("invalid transactions entered the pool: %d", got)
	}
	if got := n0.Stats().TxsInvalid; got != 2 {
		t.Fatalf("TxsInvalid = %d, want 2", got)
	}
	for _, target := range n0.gossipTargets("") {
		if target == evil {
			t.Fatal("demoted peer still a gossip target")
		}
	}
	// Further pushes from the demoted peer are ignored outright.
	net.Send(evil, members[0], Message{Kind: MsgTxPush, Txs: []chain.Transaction{
		{From: victim, Nonce: 9, GasLimit: chain.DefaultGasLimit},
	}})
	time.Sleep(50 * time.Millisecond)
	if got := n0.Inner().Stats().PoolSize; got != 0 {
		t.Fatalf("demoted peer's push admitted: %d", got)
	}
}

// TestDemotionOnBogusSync: a member advertising a height it backs with
// non-linking headers is demoted and never corrupts the local chain.
func TestDemotionOnBogusSync(t *testing.T) {
	members := MemberIDs(2)
	net := NewSimNet(nil, 11)
	defer net.Close()
	n0 := honestNode(t, net, members[0], members)
	evil := members[1]
	if err := net.Attach(evil, func(from NodeID, msg Message) {
		if msg.Kind != MsgGetHeaders {
			return
		}
		// Serve headers that do not link to anything.
		junk := chain.Block{Number: msg.From, Parent: chain.Hash{0xde, 0xad}}
		net.Send(evil, from, Message{Kind: MsgHeaders, ReqID: msg.ReqID, OK: true,
			Headers: []chain.Block{junk}, Height: 100})
	}); err != nil {
		t.Fatal(err)
	}
	// Advertise a fake height to trigger sync.
	net.Send(evil, members[0], Message{Kind: MsgStatus, Height: 100, Head: chain.Hash{1}})
	waitFor(t, 5*time.Second, func() bool { return n0.PeerScore(evil) <= -40 })
	if n0.Head().Number != 0 {
		t.Fatal("bogus sync advanced the chain")
	}
}

// TestNetStoreCrossNodeFetch: a blob stored on one member resolves from
// another over the transport, lands in the local cache, and honest peers
// with tampered copies are skipped.
func TestNetStoreCrossNodeFetch(t *testing.T) {
	cl, _, _ := transferCluster(t, 3, 21, LinkProfile{Latency: 100 * time.Microsecond})
	// Replicate nothing: force every read on other members to go remote.
	for i := range cl.Nodes {
		cl.Nodes[i].cfg.Replicate = 1
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	data := []byte("ciphertext-of-a-dataset")
	ns0 := cl.Nodes[0].NetStore()
	uri, err := ns0.Put("alice", data)
	if err != nil {
		t.Fatal(err)
	}

	ns2 := cl.Nodes[2].NetStore()
	got, err := ns2.Get(uri)
	if err != nil {
		t.Fatalf("cross-node fetch: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetched bytes differ")
	}
	if !ns2.Local().Has(uri) {
		t.Fatal("fetched blob not cached locally")
	}
	if owner, _ := ns2.Local().Owner(uri); owner != "alice" {
		t.Fatalf("cached owner %q, want alice", owner)
	}

	// Tamper node 1's replica (if any) and node 0's original: node 2 can
	// still serve from its own cache, and a fresh member's fetch falls
	// through tampered peers to the good copy on node 2.
	cl.Nodes[0].cfg.Store.(*storage.Store).Corrupt(uri)
	ns1 := cl.Nodes[1].NetStore()
	got, err = ns1.Get(uri)
	if err != nil {
		t.Fatalf("fetch around tampered copy: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fetch around tampered copy returned wrong bytes")
	}

	// Unknown URIs miss cluster-wide with a typed error.
	if _, err := ns1.Get(storage.URIOf([]byte("never stored"))); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("cluster-wide miss: %v, want ErrNotFound", err)
	}

	// Removal propagates; only the owner may remove.
	if err := ns2.Remove("mallory", uri); !errors.Is(err, storage.ErrNotOwner) {
		t.Fatalf("non-owner remove: %v, want ErrNotOwner", err)
	}
	if err := ns2.Remove("alice", uri); err != nil {
		t.Fatalf("owner remove: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return !cl.Nodes[1].cfg.Store.Has(uri) })
}

// TestLeaderRotation seals enough blocks that multiple members must have
// taken the leader slot, and checks no height was sealed twice.
func TestLeaderRotation(t *testing.T) {
	cl, senders, sink := transferCluster(t, 3, 31, LinkProfile{Latency: 100 * time.Microsecond})
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	// Trickle transactions so seals spread across many heights.
	for k := 0; k < 9; k++ {
		if _, err := cl.Nodes[k%3].Submit(chain.Transaction{From: senders[k%3], To: sink, Value: 1}, true); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitSettled(t, cl, sink, 9, 30*time.Second)

	sealers := 0
	var total uint64
	for _, n := range cl.Nodes {
		s := n.Stats()
		if s.BlocksSealed > 0 {
			sealers++
		}
		total += s.BlocksSealed
	}
	if sealers < 2 {
		t.Fatalf("only %d member(s) ever sealed — rotation not happening", sealers)
	}
	if total != cl.Nodes[0].Head().Number {
		t.Fatalf("%d blocks sealed across members for height %d — a height was sealed twice",
			total, cl.Nodes[0].Head().Number)
	}
}
