package p2p

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// SimNet is the in-memory Transport: a simulated network whose behaviour is
// governed by a FaultPlan. Deliveries are delayed by latency + seeded
// jitter + bandwidth serialization, dropped with the link's probability,
// and blocked across partitions. Every endpoint has a dispatcher goroutine
// that invokes its Handler sequentially in delivery order, so handlers
// need no internal serialization against themselves.
//
// Determinism: all randomness (drops, jitter) comes from one seeded
// source, so two runs with the same seed, plan mutations, and traffic
// interleaving make the same drop decisions. Goroutine scheduling still
// varies timing, so tests assert convergence, not exact traces.
type SimNet struct {
	plan *FaultPlan

	mu     sync.Mutex
	rng    *rand.Rand              // guarded by mu
	eps    map[NodeID]*endpoint    // guarded by mu
	busy   map[linkKey]time.Time   // guarded by mu; per-link bandwidth horizon
	closed bool                    // guarded by mu

	// Traffic counters, guarded by mu.
	sent      uint64 // guarded by mu
	delivered uint64 // guarded by mu
	dropped   uint64 // guarded by mu
	bytesSent uint64 // guarded by mu
}

type endpoint struct {
	id      NodeID
	handler Handler

	mu     sync.Mutex
	queue  []delivery    // guarded by mu
	wake   chan struct{} // 1-buffered dispatcher doorbell
	closed bool          // guarded by mu
}

type delivery struct {
	from NodeID
	msg  Message
}

// NewSimNet builds a simulated network with the given fault plan and
// deterministic seed. A nil plan means a perfect network.
func NewSimNet(plan *FaultPlan, seed int64) *SimNet {
	if plan == nil {
		plan = NewFaultPlan(LinkProfile{})
	}
	return &SimNet{
		plan: plan,
		rng:  rand.New(rand.NewSource(seed)),
		eps:  make(map[NodeID]*endpoint),
		busy: make(map[linkKey]time.Time),
	}
}

// Plan exposes the fault plan for mid-run mutation.
func (n *SimNet) Plan() *FaultPlan { return n.plan }

// Attach registers an endpoint and starts its dispatcher.
func (n *SimNet) Attach(id NodeID, h Handler) error {
	ep := &endpoint{id: id, handler: h, wake: make(chan struct{}, 1)}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("p2p: simnet closed")
	}
	if _, dup := n.eps[id]; dup {
		n.mu.Unlock()
		return fmt.Errorf("p2p: endpoint %s already attached", id)
	}
	n.eps[id] = ep
	n.mu.Unlock()
	go ep.dispatch()
	return nil
}

// Detach removes an endpoint; its queued deliveries are discarded and its
// dispatcher exits.
func (n *SimNet) Detach(id NodeID) {
	n.mu.Lock()
	ep := n.eps[id]
	delete(n.eps, id)
	n.mu.Unlock()
	if ep != nil {
		ep.close()
	}
}

// Send schedules a delivery according to the fault plan. It never blocks:
// the message is dropped, or handed to time.AfterFunc with the computed
// delay. Sending from/to an unknown endpoint is an error; a drop is not.
func (n *SimNet) Send(from, to NodeID, msg Message) error {
	size := msg.wireSize()

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("p2p: simnet closed")
	}
	if _, ok := n.eps[from]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("p2p: unknown sender %s", from)
	}
	if _, ok := n.eps[to]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("p2p: unknown receiver %s", to)
	}
	n.sent++
	n.bytesSent += uint64(size)

	prof, allowed := n.plan.admit(from, to)
	if !allowed || (prof.DropRate > 0 && n.rng.Float64() < prof.DropRate) {
		n.dropped++
		n.mu.Unlock()
		return nil
	}

	delay := prof.Latency
	if prof.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(prof.Jitter)))
	}
	if prof.BytesPerSec > 0 {
		// Serialize through the link: transmission cannot start before the
		// previous message finished draining.
		xmit := time.Duration(float64(size) / float64(prof.BytesPerSec) * float64(time.Second))
		now := time.Now()
		start := now
		if horizon, ok := n.busy[linkKey{from, to}]; ok && horizon.After(start) {
			start = horizon
		}
		done := start.Add(xmit)
		n.busy[linkKey{from, to}] = done
		delay += done.Sub(now)
	}
	n.mu.Unlock()

	deliver := func() {
		n.mu.Lock()
		ep, ok := n.eps[to]
		if ok {
			n.delivered++
		}
		n.mu.Unlock()
		if ok {
			ep.enqueue(from, msg)
		}
	}
	if delay <= 0 {
		// Still asynchronous: go through the queue, never the caller's stack.
		deliver()
	} else {
		time.AfterFunc(delay, deliver)
	}
	return nil
}

// Stats returns cumulative traffic counters: messages sent, delivered,
// dropped, and bytes offered to the network.
func (n *SimNet) Stats() (sent, delivered, dropped, bytes uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sent, n.delivered, n.dropped, n.bytesSent
}

// Close detaches every endpoint and rejects further sends. Deliveries
// already scheduled are discarded when they fire.
func (n *SimNet) Close() {
	n.mu.Lock()
	n.closed = true
	eps := make([]*endpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.eps = make(map[NodeID]*endpoint)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.close()
	}
}

var _ Transport = (*SimNet)(nil)

func (ep *endpoint) enqueue(from NodeID, msg Message) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.queue = append(ep.queue, delivery{from: from, msg: msg})
	ep.mu.Unlock()
	select {
	case ep.wake <- struct{}{}:
	default:
	}
}

func (ep *endpoint) close() {
	ep.mu.Lock()
	ep.closed = true
	ep.queue = nil
	ep.mu.Unlock()
	select {
	case ep.wake <- struct{}{}:
	default:
	}
}

// dispatch drains the queue, invoking the handler outside ep.mu so the
// handler may send (and thus re-enter enqueue) freely. Handlers must not
// block waiting for responses — response-awaiting protocols run in their
// own goroutines and receive via channels the handler feeds.
func (ep *endpoint) dispatch() {
	for {
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			return
		}
		batch := ep.queue
		ep.queue = nil
		ep.mu.Unlock()
		if len(batch) == 0 {
			<-ep.wake
			continue
		}
		for _, d := range batch {
			ep.handler(d.from, d.msg)
		}
	}
}
