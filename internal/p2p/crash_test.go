package p2p

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/node"
	"github.com/zkdet/zkdet/internal/snapshot"
	"github.com/zkdet/zkdet/internal/storage"
)

// auditString canonicalizes an AuditLineage report for cross-node
// comparison (same encoding the zkdet-cluster demo uses).
func auditString(m *core.Marketplace, reg *core.ProofRegistry, tokenID uint64) (string, error) {
	rep, err := m.AuditLineage(reg, tokenID)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%v/e%d/t%d", rep.Tokens, rep.EncryptionProofs, rep.TransformProofs), nil
}

// TestClusterKillAndRestartConverges is the crash-fault harness of the
// durable engine: a three-member cluster with every node persisting to its
// own data dir; one non-driver member is SIGKILL'd (network down +
// DurableStore.Crash, no clean shutdown) while a mint is in flight, its
// entire stack is rebuilt from the data dir alone, and after the restart
// every member — including the reborn one — serves the identical
// AuditLineage report and the pre-crash receipts.
func TestClusterKillAndRestartConverges(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	sys, err := core.NewTestSystem(1 << 13)
	if err != nil {
		t.Fatal(err)
	}
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")

	const size = 3
	dirs := make([]string, size)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	mkts := make([]*core.Marketplace, size)
	durables := make([]*snapshot.DurableStore, size)

	// buildStack opens (or reopens) member i's full durable deployment from
	// its data dir: engine, blob store, chain with the deterministic
	// genesis, recovery, then the durability hook. The same function serves
	// the initial build and the post-crash restart — that is the point.
	buildStack := func(i int) (NodeSetup, *snapshot.RecoveryReport, error) {
		opts := snapshot.Options{Dir: dirs[i], CheckpointEvery: 2}
		opts.WAL.GroupCommit = -1 // immediate fsync: no ack-loss window in the test
		d, err := snapshot.Open(opts)
		if err != nil {
			return NodeSetup{}, nil, err
		}
		bs := d.Blobs(storage.NewStore())
		c := chain.New()
		c.Faucet(alice, 1_000_000)
		c.Faucet(bob, 1_000_000)
		m, _, err := core.NewMarketplaceWith(sys, c, bs)
		if err != nil {
			return NodeSetup{}, nil, err
		}
		m.AttachIndexer() // before Recover: the indexer re-sees restored blocks
		rep, err := d.Recover(c)
		if err != nil {
			return NodeSetup{}, nil, err
		}
		if err := d.Attach(c); err != nil {
			return NodeSetup{}, nil, err
		}
		mkts[i] = m
		durables[i] = d
		return NodeSetup{
			Inner:     node.New(c, node.Config{}),
			Validator: m.ProofChecker(),
			Store:     bs,
		}, rep, nil
	}

	cl, err := NewCluster(ClusterSpec{
		Size: size,
		Seed: 42,
		Link: LinkProfile{Latency: 100 * time.Microsecond},
		Build: func(i int, id NodeID) (NodeSetup, error) {
			setup, rep, err := buildStack(i)
			if err == nil && rep.Head != 0 {
				err = fmt.Errorf("fresh dir recovered to height %d", rep.Head)
			}
			return setup, err
		},
		Tune: tuneFast,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range mkts {
		m.Store = cl.Nodes[i].NetStore()
	}
	driver := mkts[0]
	driver.Submitter = func(tx chain.Transaction) (*chain.Receipt, error) {
		res, err := cl.Nodes[0].SubmitAndWait(ctx, tx, true)
		if err != nil {
			return nil, err
		}
		return res.Receipt, nil
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	reg := core.NewProofRegistry()
	data := core.Dataset{fr.NewElement(7), fr.NewElement(11)}

	a1, err := driver.MintAsset(alice, "alice", data, fr.MustRandom())
	if err != nil {
		t.Fatalf("mint before crash: %v", err)
	}
	reg.PublishAsset(a1)
	if _, err := cl.WaitConverged(ctx, 0); err != nil {
		t.Fatal(err)
	}
	preCrashHead := cl.Nodes[0].Head()
	if preCrashHead.Number == 0 {
		t.Fatal("no blocks sealed before crash")
	}

	// SIGKILL a non-driver member: drop it off the network, halt its
	// protocol loops, and abandon its durable engine mid-state (buffered
	// frames lost, in-flight checkpoints not awaited).
	const victim = 2
	victimID := cl.Nodes[victim].ID()
	restart := cl.Net.Plan().KillAndRestart(victimID)
	cl.Nodes[victim].Stop()
	durables[victim].Crash()

	// A mint submitted now stalls: with three members, leader rotation
	// reaches the dead node's slot within two blocks and production halts
	// (safety over liveness) until the victim comes back.
	mintDone := make(chan error, 1)
	var a2 *core.Asset
	go func() {
		var err error
		a2, err = driver.MintAsset(alice, "alice", core.Dataset{fr.NewElement(13)}, fr.MustRandom())
		mintDone <- err
	}()
	time.Sleep(50 * time.Millisecond)

	// Restart from the data dir alone: same member ID, fresh in-memory
	// everything, state recovered from snapshot + WAL tail.
	setup, rep, err := buildStack(victim)
	if err != nil {
		t.Fatalf("rebuild victim stack: %v", err)
	}
	if rep.Head == 0 {
		t.Fatalf("victim recovered nothing from %s: %+v", dirs[victim], rep)
	}
	if rep.Head < preCrashHead.Number {
		t.Fatalf("victim recovered to %d, pre-crash head was %d", rep.Head, preCrashHead.Number)
	}
	cfg := Config{ID: victimID, Members: MemberIDs(size), Validator: setup.Validator, Store: setup.Store}
	tuneFast(victim, &cfg)
	reborn, err := NewNode(cfg, setup.Inner, cl.Net)
	if err != nil {
		t.Fatal(err)
	}
	cl.Nodes[victim] = reborn
	mkts[victim].Store = reborn.NetStore()
	restart()
	restart() // idempotent by contract
	if err := reborn.Start(); err != nil {
		t.Fatal(err)
	}

	// The reborn member rejoined from checkpoint height, not genesis: it
	// starts at its recovered head and syncs only the missed suffix.
	if got := reborn.Head().Number; got < rep.Head {
		t.Fatalf("reborn node started at height %d, below its recovered %d", got, rep.Head)
	}

	if err := <-mintDone; err != nil {
		t.Fatalf("mint across crash: %v", err)
	}
	reg.PublishAsset(a2)
	if _, err := cl.WaitConverged(ctx, cl.Nodes[0].Head().Number); err != nil {
		t.Fatal(err)
	}

	// Every pre-crash transaction is served by the reborn node.
	victimChain := reborn.Inner().Chain()
	for n := uint64(1); n <= preCrashHead.Number; n++ {
		b, ok := victimChain.BlockByNumber(n)
		if !ok {
			t.Fatalf("reborn node lost block %d", n)
		}
		for _, h := range b.TxHashes {
			if _, ok := victimChain.Receipt(h); !ok {
				t.Fatalf("reborn node lost receipt %s (block %d)", h, n)
			}
		}
	}

	// Identical AuditLineage output on all members, reborn included.
	for _, tok := range []uint64{a1.TokenID, a2.TokenID} {
		want, err := auditString(mkts[0], reg, tok)
		if err != nil {
			t.Fatalf("driver audit of token %d: %v", tok, err)
		}
		for i := 1; i < size; i++ {
			got, err := auditString(mkts[i], reg, tok)
			if err != nil {
				t.Fatalf("node %d audit of token %d: %v", i, tok, err)
			}
			if got != want {
				t.Fatalf("token %d: node %d audit %q != driver %q", tok, i, got, want)
			}
		}
	}
}
