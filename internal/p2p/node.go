package p2p

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/node"
	"github.com/zkdet/zkdet/internal/storage"
)

// ErrStopped reports an operation cut short by Node.Stop.
var ErrStopped = errors.New("p2p: node stopped")

// TxValidator screens proof-carrying transactions at the network boundary
// without mutating verifier state. contracts.BlockProofChecker.GossipCheck
// implements it structurally — like node.SealVerifier, the dependency
// points from the application layer down, never the reverse. The no-mark
// property is load-bearing: marking proofs pre-verified at gossip time
// would change execution-time gas on the nodes that happened to gossip a
// transaction, and replicas would diverge at the out-of-gas boundary.
type TxValidator interface {
	GossipCheck(txs []*chain.Transaction) (verified int, errs []error)
}

// Peer-scoring deltas. A peer whose score falls to or below
// Config.DemoteBelow is demoted: its pushes are ignored, it receives no
// gossip, and sync never selects it.
const (
	scoreInvalidTx    = -25 // pushed a transaction with an invalid proof
	scoreInvalidBlock = -50 // served a block that fails validation or replay
	scoreTimeout      = -2  // request went unanswered
	scoreGood         = 1   // served a block we imported
)

// Config tunes one cluster member.
type Config struct {
	// ID is this node's transport identity; it must appear in Members.
	ID NodeID
	// Members is the static cluster membership. All nodes must agree on it
	// (it determines leader rotation); order is irrelevant, the node sorts.
	Members []NodeID
	// Fanout bounds how many peers receive each gossip push or block
	// announcement. Default 3.
	Fanout int
	// SealInterval is how often the node checks whether it is the due
	// leader with executable transactions. Default 5ms.
	SealInterval time.Duration
	// StatusInterval paces head advertisements to all peers — the
	// catch-all that lets stragglers and healed partitions discover they
	// are behind. Default 50ms.
	StatusInterval time.Duration
	// RebroadcastInterval paces re-gossip of pooled transactions, covering
	// pushes lost to drops or partitions. Default 100ms.
	RebroadcastInterval time.Duration
	// RequestTimeout bounds one request attempt; RequestRetries more
	// attempts follow with RetryBackoff doubling between them.
	// Defaults 150ms / 4 / 25ms.
	RequestTimeout time.Duration
	RequestRetries int
	RetryBackoff   time.Duration
	// HeadersBatch caps headers per sync request. Default 64.
	HeadersBatch int
	// SeenCap bounds the tx/block seen-caches. Default 65536.
	SeenCap int
	// DemoteBelow is the score at or below which a peer is demoted.
	// Default -100.
	DemoteBelow int
	// Validator, when set, screens proof-carrying transactions at gossip
	// ingress, block import, and local submission.
	Validator TxValidator
	// Store, when set, is this node's local blob store: the node serves
	// MsgGetBlob from it and accepts MsgBlobPush replicas into it. Any
	// storage.LocalStore works — a plain *storage.Store, or the durable
	// engine's write-ahead-logged wrapper.
	Store storage.LocalStore
	// Replicate is how many peers receive a copy of each locally stored
	// blob (see NetStore). Default 2.
	Replicate int
}

func (c *Config) sanitize() error {
	found := false
	for _, m := range c.Members {
		if m == c.ID {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("p2p: node %s not in members", c.ID)
	}
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.SealInterval <= 0 {
		c.SealInterval = 5 * time.Millisecond
	}
	if c.StatusInterval <= 0 {
		c.StatusInterval = 50 * time.Millisecond
	}
	if c.RebroadcastInterval <= 0 {
		c.RebroadcastInterval = 100 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 150 * time.Millisecond
	}
	if c.RequestRetries <= 0 {
		c.RequestRetries = 4
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.HeadersBatch <= 0 {
		c.HeadersBatch = 64
	}
	if c.SeenCap <= 0 {
		c.SeenCap = 1 << 16
	}
	if c.DemoteBelow == 0 {
		c.DemoteBelow = -100
	}
	if c.Replicate <= 0 {
		c.Replicate = 2
	}
	return nil
}

// peerState is what a node tracks about one peer.
type peerState struct {
	score  int        // gossip/serve reputation
	height uint64     // last advertised chain height
	head   chain.Hash // last advertised head hash
}

// NetStats is a snapshot of a node's networking counters.
type NetStats struct {
	TxsAccepted  uint64 // fresh gossip transactions admitted
	TxsForwarded uint64 // transactions re-pushed to peers
	TxsInvalid   uint64 // gossip transactions dropped by proof screening
	BlocksSealed uint64 // blocks sealed as leader
	SyncImports  uint64 // blocks imported through sync
	Timeouts     uint64 // request attempts that timed out
	Demotions    uint64 // peers crossing the demotion threshold
}

// Node is one cluster member: it ties a node.Node (mempool + chain) to a
// Transport and runs the gossip, sync, and leader-rotation protocols.
//
// Block production uses strict round-robin rotation: the leader for height
// h is members[h mod n], and a node seals only when it is the leader for
// its own head+1. Because every sealed block's height named exactly one
// possible sealer, two honest nodes can never seal competing blocks at the
// same height — the chain cannot fork, and sync reduces to prefix
// catch-up. The cost is liveness, not safety: while the due leader is
// unreachable the chain stalls, and production resumes when the partition
// heals (crash-fault tolerance; Byzantine sealers are detected by replay
// and demoted, but can stall their own slots).
//
// Concurrency layout: the transport dispatcher invokes handle serially;
// handle never blocks on a response (it only records state, admits
// transactions, serves data, and routes responses to waiting channels).
// Anything that awaits a response — sync, NetStore fetches — runs on its
// own goroutine. chainMu serializes this node's seal and import paths so
// the chain's pending-transaction invariant holds.
type Node struct {
	cfg     Config
	inner   *node.Node
	net     Transport
	members []NodeID // sorted; immutable
	others  []NodeID // members minus self; immutable

	chainMu sync.Mutex // serializes SealNow vs ImportBlock on the local chain

	mu         sync.Mutex
	peers      map[NodeID]*peerState   // guarded by mu
	seenTxs    *seenCache              // guarded by mu
	seenBlocks *seenCache              // guarded by mu
	reqSeq     uint64                  // guarded by mu
	reqs       map[uint64]chan Message // guarded by mu
	rrOffset   int                     // guarded by mu; rotates gossip target selection
	started    bool                    // guarded by mu
	stats      NetStats                // guarded by mu

	syncWake chan struct{}
	quit     chan struct{}
	wg       sync.WaitGroup
}

// NewNode wraps a node.Node as a cluster member. The inner node must be
// externally driven — never call its Start; the p2p layer seals via SealNow
// when leader rotation says so.
func NewNode(cfg Config, inner *node.Node, t Transport) (*Node, error) {
	if err := cfg.sanitize(); err != nil {
		return nil, err
	}
	members := append([]NodeID(nil), cfg.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	n := &Node{
		cfg:        cfg,
		inner:      inner,
		net:        t,
		members:    members,
		peers:      make(map[NodeID]*peerState),
		seenTxs:    newSeenCache(cfg.SeenCap),
		seenBlocks: newSeenCache(cfg.SeenCap),
		reqs:       make(map[uint64]chan Message),
		syncWake:   make(chan struct{}, 1),
		quit:       make(chan struct{}),
	}
	for _, m := range members {
		if m != cfg.ID {
			n.others = append(n.others, m)
			n.peers[m] = &peerState{}
		}
	}
	return n, nil
}

// Inner returns the wrapped node.
func (n *Node) Inner() *node.Node { return n.inner }

// ID returns this node's transport identity.
func (n *Node) ID() NodeID { return n.cfg.ID }

// Start attaches to the transport and launches the protocol loops.
func (n *Node) Start() error {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return nil
	}
	n.started = true
	n.mu.Unlock()
	if err := n.net.Attach(n.cfg.ID, n.handle); err != nil {
		return err
	}
	n.wg.Add(2)
	go n.tickLoop()
	go n.syncLoop()
	return nil
}

// Stop halts the loops and detaches from the transport.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return
	}
	n.started = false
	n.mu.Unlock()
	close(n.quit)
	n.wg.Wait()
	n.net.Detach(n.cfg.ID)
}

// Head returns the local chain head.
func (n *Node) Head() chain.Block { return n.inner.Chain().Head() }

// Stats snapshots the networking counters.
func (n *Node) Stats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// PeerScore returns the tracked score of a peer.
func (n *Node) PeerScore(id NodeID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ps, ok := n.peers[id]; ok {
		return ps.score
	}
	return 0
}

// Demoted reports whether a peer has crossed the demotion threshold.
func (n *Node) Demoted(id NodeID) bool {
	return n.PeerScore(id) <= n.cfg.DemoteBelow
}

// SubmitAndWait admits a transaction locally (screening its proof when a
// validator is configured, assigning the next account nonce when
// autoNonce), gossips the exact pooled bytes to the cluster, and blocks
// until the transaction lands in a block — sealed here or imported from
// the leader that included it.
func (n *Node) SubmitAndWait(ctx context.Context, tx chain.Transaction, autoNonce bool) (node.TxResult, error) {
	if v := n.cfg.Validator; v != nil {
		if _, errs := v.GossipCheck([]*chain.Transaction{&tx}); errs[0] != nil {
			return node.TxResult{}, errs[0]
		}
	}
	pooled, done, err := n.inner.SubmitForResult(tx, autoNonce)
	if err != nil {
		return node.TxResult{}, err
	}
	n.markTxSeen(pooled.Hash())
	n.pushTxs([]chain.Transaction{pooled}, "")
	select {
	case res := <-done:
		return res, res.Err
	case <-ctx.Done():
		return node.TxResult{Err: node.ErrWaitCanceled}, node.ErrWaitCanceled
	}
}

// Submit admits and gossips a transaction fire-and-forget.
func (n *Node) Submit(tx chain.Transaction, autoNonce bool) (chain.Hash, error) {
	if v := n.cfg.Validator; v != nil {
		if _, errs := v.GossipCheck([]*chain.Transaction{&tx}); errs[0] != nil {
			return chain.Hash{}, errs[0]
		}
	}
	pooled, _, err := n.inner.SubmitForResult(tx, autoNonce)
	if err != nil {
		return chain.Hash{}, err
	}
	h := pooled.Hash()
	n.markTxSeen(h)
	n.pushTxs([]chain.Transaction{pooled}, "")
	return h, nil
}

// leaderFor returns the member allowed to seal the given height.
func (n *Node) leaderFor(height uint64) NodeID {
	return n.members[int(height%uint64(len(n.members)))]
}

// tickLoop drives leader sealing, status broadcast, and tx rebroadcast.
func (n *Node) tickLoop() {
	defer n.wg.Done()
	seal := time.NewTicker(n.cfg.SealInterval)
	status := time.NewTicker(n.cfg.StatusInterval)
	rebroadcast := time.NewTicker(n.cfg.RebroadcastInterval)
	defer seal.Stop()
	defer status.Stop()
	defer rebroadcast.Stop()
	for {
		select {
		case <-n.quit:
			return
		case <-seal.C:
			n.maybeSeal()
		case <-status.C:
			n.broadcastStatus()
		case <-rebroadcast.C:
			if txs := n.inner.PendingSample(16); len(txs) > 0 {
				n.pushTxs(txs, "")
			}
		}
	}
}

// maybeSeal seals one block if this node is the due leader and has
// executable transactions, then announces it.
func (n *Node) maybeSeal() {
	n.chainMu.Lock()
	head := n.inner.Chain().Head()
	if n.leaderFor(head.Number+1) != n.cfg.ID {
		n.chainMu.Unlock()
		return
	}
	blk, ok := n.inner.SealNow()
	n.chainMu.Unlock()
	if !ok {
		return
	}
	n.markBlockSeen(blk.Hash())
	n.mu.Lock()
	n.stats.BlocksSealed++
	n.mu.Unlock()
	n.announce(blk, "")
	n.broadcastStatus()
}

// announce pushes a freshly extended head header to a fanout of peers.
func (n *Node) announce(b chain.Block, exclude NodeID) {
	msg := Message{
		Kind:    MsgBlockAnnounce,
		Height:  b.Number,
		Head:    b.Hash(),
		Headers: []chain.Block{b},
	}
	for _, id := range n.gossipTargets(exclude) {
		n.net.Send(n.cfg.ID, id, msg) //nolint:errcheck // unreliable by contract
	}
}

// broadcastStatus advertises the local head to every peer.
func (n *Node) broadcastStatus() {
	head := n.inner.Chain().Head()
	msg := Message{Kind: MsgStatus, Height: head.Number, Head: head.Hash()}
	for _, id := range n.others {
		n.net.Send(n.cfg.ID, id, msg) //nolint:errcheck // unreliable by contract
	}
}

// pushTxs gossips transactions to a fanout of peers, excluding the one
// they came from.
func (n *Node) pushTxs(txs []chain.Transaction, exclude NodeID) {
	targets := n.gossipTargets(exclude)
	if len(targets) == 0 {
		return
	}
	msg := Message{Kind: MsgTxPush, Txs: txs}
	for _, id := range targets {
		n.net.Send(n.cfg.ID, id, msg) //nolint:errcheck // unreliable by contract
	}
	n.mu.Lock()
	n.stats.TxsForwarded += uint64(len(txs) * len(targets))
	n.mu.Unlock()
}

// gossipTargets picks up to Fanout non-demoted peers, rotating the start
// point so successive pushes spread across the membership.
func (n *Node) gossipTargets(exclude NodeID) []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	cands := make([]NodeID, 0, len(n.others))
	for _, id := range n.others {
		if id == exclude {
			continue
		}
		if ps := n.peers[id]; ps != nil && ps.score <= n.cfg.DemoteBelow {
			continue
		}
		cands = append(cands, id)
	}
	if len(cands) <= n.cfg.Fanout {
		return cands
	}
	start := n.rrOffset % len(cands)
	n.rrOffset++
	out := make([]NodeID, 0, n.cfg.Fanout)
	for i := 0; i < n.cfg.Fanout; i++ {
		out = append(out, cands[(start+i)%len(cands)])
	}
	return out
}

// demote lowers a peer's score, counting a demotion when it crosses the
// threshold.
func (n *Node) demote(id NodeID, delta int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ps, ok := n.peers[id]
	if !ok {
		return
	}
	was := ps.score
	ps.score += delta
	if was > n.cfg.DemoteBelow && ps.score <= n.cfg.DemoteBelow {
		n.stats.Demotions++
	}
}

// credit raises a peer's score for useful service, capped at zero so a
// long good run cannot bank immunity against later misbehaviour.
func (n *Node) credit(id NodeID, delta int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ps, ok := n.peers[id]; ok && ps.score < 0 {
		ps.score += delta
		if ps.score > 0 {
			ps.score = 0
		}
	}
}

func (n *Node) isDemoted(id NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	ps, ok := n.peers[id]
	return ok && ps.score <= n.cfg.DemoteBelow
}

// markTxSeen records a tx hash; true means it was fresh.
func (n *Node) markTxSeen(h chain.Hash) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seenTxs.add(h)
}

// markBlockSeen records a block hash; true means it was fresh.
func (n *Node) markBlockSeen(h chain.Hash) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seenBlocks.add(h)
}

// wakeSync nudges the sync loop without blocking.
func (n *Node) wakeSync() {
	select {
	case n.syncWake <- struct{}{}:
	default:
	}
}

// seenCache is a fixed-capacity set with FIFO eviction — enough to
// suppress gossip echo without unbounded growth.
type seenCache struct {
	cap  int
	set  map[chain.Hash]struct{}
	ring []chain.Hash
	pos  int
}

func newSeenCache(capacity int) *seenCache {
	return &seenCache{cap: capacity, set: make(map[chain.Hash]struct{}, capacity)}
}

// add inserts h, evicting the oldest entry at capacity; false means h was
// already present.
func (s *seenCache) add(h chain.Hash) bool {
	if _, ok := s.set[h]; ok {
		return false
	}
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, h)
	} else {
		delete(s.set, s.ring[s.pos])
		s.ring[s.pos] = h
		s.pos = (s.pos + 1) % s.cap
	}
	s.set[h] = struct{}{}
	return true
}
