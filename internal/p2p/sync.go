package p2p

import (
	"errors"
	"fmt"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
)

// request sends a request and waits for its response, retrying with
// exponential backoff. Each timed-out attempt demotes the target slightly;
// a response with OK=false is a definitive refusal (the peer does not have
// the data) and is returned without retrying. The successful response's
// piggybacked head refreshes peer tracking.
func (n *Node) request(to NodeID, msg Message) (Message, error) {
	backoff := n.cfg.RetryBackoff
	for attempt := 0; attempt <= n.cfg.RequestRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
				backoff *= 2
			case <-n.quit:
				return Message{}, ErrStopped
			}
		}
		n.mu.Lock()
		n.reqSeq++
		id := n.reqSeq
		ch := make(chan Message, 1)
		n.reqs[id] = ch
		n.mu.Unlock()
		msg.ReqID = id

		if err := n.net.Send(n.cfg.ID, to, msg); err != nil {
			n.dropReq(id)
			return Message{}, err
		}
		timer := time.NewTimer(n.cfg.RequestTimeout)
		select {
		case resp := <-ch:
			timer.Stop()
			n.recordPeerHead(to, resp.Height, resp.Head)
			return resp, nil
		case <-timer.C:
			n.dropReq(id)
			n.demote(to, scoreTimeout)
			n.mu.Lock()
			n.stats.Timeouts++
			n.mu.Unlock()
		case <-n.quit:
			timer.Stop()
			n.dropReq(id)
			return Message{}, ErrStopped
		}
	}
	return Message{}, fmt.Errorf("p2p: %s: no response from %s after %d attempts",
		msg.Kind, to, n.cfg.RequestRetries+1)
}

func (n *Node) dropReq(id uint64) {
	n.mu.Lock()
	delete(n.reqs, id)
	n.mu.Unlock()
}

// syncLoop runs headers-first catch-up whenever a peer advertises a higher
// head (wake) and on a timer (catch-all for lost wakes).
func (n *Node) syncLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.StatusInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.quit:
			return
		case <-n.syncWake:
		case <-ticker.C:
		}
		n.syncOnce()
	}
}

// syncOnce pulls from the best peer until nobody is ahead or progress
// stops (the next round's wake or tick retries).
func (n *Node) syncOnce() {
	for {
		select {
		case <-n.quit:
			return
		default:
		}
		local := n.inner.Chain().Head()
		peer, target := n.bestPeer(local.Number)
		if peer == "" {
			return
		}
		if !n.syncFrom(peer, target) {
			return
		}
	}
}

// bestPeer returns the non-demoted peer advertising the greatest height
// above ours; iteration over the sorted membership keeps ties
// deterministic.
func (n *Node) bestPeer(above uint64) (NodeID, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var best NodeID
	var bestHeight uint64
	for _, id := range n.others {
		ps := n.peers[id]
		if ps == nil || ps.score <= n.cfg.DemoteBelow {
			continue
		}
		if ps.height > above && ps.height > bestHeight {
			best, bestHeight = id, ps.height
		}
	}
	return best, bestHeight
}

// syncFrom performs one headers-first round against a peer: fetch a batch
// of headers extending the local head, check their linkage, then fetch,
// screen, and import each body. Returns true when at least one block was
// imported (the caller loops for more). A peer serving headers that do not
// link, bodies that do not match, proof-invalid transactions, or blocks
// whose replay diverges is demoted hard; timeouts merely end the round.
func (n *Node) syncFrom(peer NodeID, target uint64) bool {
	local := n.inner.Chain().Head()
	if target <= local.Number {
		return false
	}
	count := int(target - local.Number)
	if count > n.cfg.HeadersBatch {
		count = n.cfg.HeadersBatch
	}
	resp, err := n.request(peer, Message{Kind: MsgGetHeaders, From: local.Number + 1, Count: count})
	if err != nil || !resp.OK || len(resp.Headers) == 0 {
		return false
	}
	// Headers must chain directly off our head: number-sequential and
	// parent-linked. With round-robin leadership there are no forks to
	// choose between — any valid headers extend our prefix.
	prevNum, prevHash := local.Number, local.Hash()
	for i := range resp.Headers {
		if resp.Headers[i].Number != prevNum+1 || resp.Headers[i].Parent != prevHash {
			n.demote(peer, scoreInvalidBlock)
			return false
		}
		prevNum = resp.Headers[i].Number
		prevHash = resp.Headers[i].Hash()
	}

	advanced := false
	for _, h := range resp.Headers {
		body, err := n.request(peer, Message{Kind: MsgGetBody, From: h.Number})
		if err != nil || !body.OK {
			break
		}
		if !n.importFetched(peer, h, body.Txs) {
			break
		}
		advanced = true
	}
	if advanced {
		// Propagate what we learned: peers behind us hear the new head
		// without waiting for the original sealer to reach them.
		n.announce(n.inner.Chain().Head(), peer)
	}
	return advanced
}

// importFetched validates one fetched block (body matches header, proofs
// verify under the no-mark gossip check) and replays it into the local
// chain. Honest sealers never include proof-invalid transactions — they
// screen at gossip ingress — so a block carrying one is a faulty sealer's,
// not a gas-divergence case.
func (n *Node) importFetched(peer NodeID, h chain.Block, txs []chain.Transaction) bool {
	if len(txs) != len(h.TxHashes) {
		n.demote(peer, scoreInvalidBlock)
		return false
	}
	for i := range txs {
		if txs[i].Hash() != h.TxHashes[i] {
			n.demote(peer, scoreInvalidBlock)
			return false
		}
	}
	if v := n.cfg.Validator; v != nil && len(txs) > 0 {
		ptrs := make([]*chain.Transaction, len(txs))
		for i := range txs {
			ptrs[i] = &txs[i]
		}
		if _, errs := v.GossipCheck(ptrs); errAny(errs) != nil {
			n.demote(peer, scoreInvalidBlock)
			return false
		}
	}
	n.chainMu.Lock()
	_, err := n.inner.ImportBlock(h, txs)
	n.chainMu.Unlock()
	if err != nil {
		// Racing our own seal or a concurrent import is not the peer's
		// fault; everything else (bad replay, state mismatch) is.
		if !errors.Is(err, chain.ErrNotNextBlock) && !errors.Is(err, chain.ErrBadParent) {
			n.demote(peer, scoreInvalidBlock)
		}
		return false
	}
	n.markBlockSeen(h.Hash())
	n.credit(peer, scoreGood)
	n.mu.Lock()
	n.stats.SyncImports++
	n.mu.Unlock()
	return true
}
