// Package p2p is ZKDET's networking subsystem: it connects N node.Node
// instances into a replicated cluster over a pluggable message transport.
//
// The paper deploys on a public testnet and IPFS, both of which presuppose
// a peer network with gossip, synchronization, and failure; internal/node
// alone is a single sealer in one process. This package supplies the
// missing substrate:
//
//   - a Transport abstraction with an in-memory simulator (SimNet) whose
//     FaultPlan injects per-link latency, jitter, drop rate, bandwidth
//     limits, and partitions — mutable mid-run;
//   - push-pull gossip: transactions are pushed to a bounded fanout with
//     seen-caches, block headers are announced and bodies fetched, and
//     peers serving invalid payloads are demoted by a scoring table;
//   - headers-first chain sync with retry/timeout/backoff, so a
//     partitioned or freshly joined node converges to the longest valid
//     chain (with round-robin leader rotation the chain never forks, so
//     the longest chain is the unique extension of a node's own head);
//   - deterministic leader rotation: exactly one member may seal each
//     height, everyone else validates and imports;
//   - a NetStore that resolves content-addressed blobs across the cluster
//     over the same transport, so storage URIs minted on one node resolve
//     on every node.
//
// Proof-carrying transactions are screened with the batch verifier
// (plonk.BatchVerify via contracts.BlockProofChecker.GossipCheck) at both
// gossip ingress and block import, before they are re-propagated.
package p2p

import (
	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/storage"
)

// NodeID names a cluster member on the transport.
type NodeID string

// MsgKind discriminates wire messages.
type MsgKind uint8

// Wire message kinds. *Push/Announce/Status are one-way; Get* are requests
// answered by the matching response kind carrying the same ReqID.
const (
	MsgStatus        MsgKind = iota + 1 // head advertisement
	MsgTxPush                           // gossip transactions
	MsgBlockAnnounce                    // header announcement
	MsgGetHeaders                       // request a headers range
	MsgHeaders                          // headers response
	MsgGetBody                          // request a block body
	MsgBody                             // body response
	MsgGetBlob                          // request a storage blob
	MsgBlob                             // blob response
	MsgBlobPush                         // replicate a storage blob
	MsgBlobRemove                       // owner-requested blob removal
)

func (k MsgKind) String() string {
	switch k {
	case MsgStatus:
		return "status"
	case MsgTxPush:
		return "tx-push"
	case MsgBlockAnnounce:
		return "block-announce"
	case MsgGetHeaders:
		return "get-headers"
	case MsgHeaders:
		return "headers"
	case MsgGetBody:
		return "get-body"
	case MsgBody:
		return "body"
	case MsgGetBlob:
		return "get-blob"
	case MsgBlob:
		return "blob"
	case MsgBlobPush:
		return "blob-push"
	case MsgBlobRemove:
		return "blob-remove"
	default:
		return "unknown"
	}
}

// Message is the single wire envelope: a kind plus the union of payload
// fields the kinds use. The in-memory transport passes it by value;
// receivers must treat slice payloads as read-only.
type Message struct {
	Kind  MsgKind
	ReqID uint64 // request/response correlation; 0 on one-way messages

	// MsgStatus; also set on responses so peers piggyback head tracking.
	Height uint64
	Head   chain.Hash

	// MsgTxPush and MsgBody payloads.
	Txs []chain.Transaction

	// MsgBlockAnnounce (single header) and MsgHeaders (a range).
	Headers []chain.Block

	// MsgGetHeaders (From, Count) and MsgGetBody (From = block number).
	From  uint64
	Count int

	// Blob messages.
	URI   storage.URI
	Owner string
	Blob  []byte

	// Responses: OK reports whether the request was served; Err carries a
	// short reason when not.
	OK  bool
	Err string
}

// wireSize estimates the serialized size of a message in bytes; the
// simulated transport charges it against per-link bandwidth.
func (m *Message) wireSize() int {
	size := 64 // envelope: kind, ids, status fields
	for i := range m.Txs {
		size += 96 + len(m.Txs[i].Args) + len(m.Txs[i].Contract) + len(m.Txs[i].Method)
	}
	for i := range m.Headers {
		size += 112 + 32*len(m.Headers[i].TxHashes)
	}
	size += len(m.Blob) + len(m.Owner) + len(m.Err)
	return size
}

// Handler consumes messages delivered to an attached endpoint. The
// transport invokes it sequentially per endpoint, in delivery order.
type Handler func(from NodeID, msg Message)

// Transport moves messages between cluster members. Send is asynchronous
// and unreliable: implementations may delay, reorder, or drop; an error is
// returned only for local misuse (unknown endpoint, closed transport).
// Protocols built on it must tolerate loss with retry and reconciliation.
type Transport interface {
	// Attach registers an endpoint and its delivery handler.
	Attach(id NodeID, h Handler) error
	// Send queues a message from one endpoint to another.
	Send(from, to NodeID, msg Message) error
	// Detach removes an endpoint; queued deliveries to it are dropped.
	Detach(id NodeID)
}
