// Package wal implements the append-only write-ahead log under ZKDET's
// durable state engine: CRC-framed records in rotating segment files, with
// group-committed fsync batching so many concurrent appenders share one
// disk flush.
//
// Durability contract: a record is durable once AppendSync returns (or once
// Sync returns after a plain Append). The log never acknowledges a record
// before it is framed, flushed, and fsynced — the invariant the chain layer
// relies on to acknowledge sealed blocks and blob puts. A crash can lose
// only unacknowledged tail records; Open detects the torn tail (short or
// CRC-failing frames) and truncates it, while corruption anywhere before
// the tail fails loudly with ErrCorrupt rather than replaying bad state.
package wal

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Errors returned by the log.
var (
	ErrClosed   = errors.New("wal: log is closed")
	ErrCorrupt  = errors.New("wal: corrupt record before the log tail")
	ErrTooLarge = errors.New("wal: record exceeds maximum frame size")
)

const (
	segMagic = "ZKWAL001" // segment file header
	// frame layout: u32 payload length | u8 type | payload | u32 CRC.
	frameOverhead = 4 + 1 + 4
	// maxFrame bounds a single record; a length field above this is treated
	// as corruption, not an allocation request.
	maxFrame = 64 << 20

	defaultSegmentBytes = 4 << 20
	defaultGroupCommit  = 2 * time.Millisecond
	defaultCacheSegs    = 4
)

// crcTable is Castagnoli, the polynomial with hardware support on amd64 and
// arm64 — CRC dominates the non-fsync cost of an append.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a log.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentBytes is the rotation threshold (default 4 MiB). Rotation
	// syncs and seals the active segment; sealed segments are the unit of
	// pruning and of the read cache.
	SegmentBytes int
	// GroupCommit is the maximum time an AppendSync waits for its fsync;
	// every append that lands inside the window shares the same flush
	// (default 2ms). Zero keeps the default; negative syncs every append
	// (no batching window).
	GroupCommit time.Duration
	// NoSync skips fsync entirely — page-cache durability only, for
	// benchmarks isolating the framing cost. Never use it for real state.
	NoSync bool
	// CacheSegments bounds the sealed-segment read cache used by Replay
	// (default 4). The hot tail of the log is re-read on every recovery
	// and by the snapshot engine's receipt cross-check; caching whole
	// sealed segments keeps those reads off the disk.
	CacheSegments int
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.GroupCommit == 0 {
		o.GroupCommit = defaultGroupCommit
	}
	if o.GroupCommit < 0 {
		o.GroupCommit = 0
	}
	if o.CacheSegments <= 0 {
		o.CacheSegments = defaultCacheSegs
	}
}

// segment describes one on-disk segment file.
type segment struct {
	path  string
	first uint64 // seq of the segment's first record
}

// Stats are the log's cumulative counters.
type Stats struct {
	Appends        uint64 // records appended
	Syncs          uint64 // fsync calls issued by the group committer
	Rotations      uint64 // segment files sealed
	PrunedSegments uint64 // segment files deleted by PruneTo
	TornBytes      int64  // bytes truncated from the tail at Open
	CacheHits      uint64 // sealed-segment cache hits during reads
	CacheMisses    uint64
	Segments       int    // current segment file count
	NextSeq        uint64 // seq the next append will get
}

// Log is an append-only segmented record log. Safe for concurrent use.
type Log struct {
	opts Options

	mu       sync.Mutex
	f        *os.File      // guarded by mu; active segment
	w        *bufio.Writer // guarded by mu
	segSize  int           // guarded by mu; bytes framed into the active segment
	segments []segment     // guarded by mu; ascending by first seq, last is active
	nextSeq  uint64        // guarded by mu; seq assigned to the next append
	written  uint64        // guarded by mu; highest seq framed into the buffer
	durable  uint64        // guarded by mu; highest seq covered by an fsync
	err      error         // guarded by mu; sticky I/O error
	closed   bool          // guarded by mu
	crashed  bool          // guarded by mu; Crash() dropped the buffers

	wake   *sync.Cond // signals the group committer that work is pending
	synced *sync.Cond // broadcast when durable advances

	syncerWG sync.WaitGroup
	pruneWG  sync.WaitGroup

	stats Stats

	cache *segCache
}

// Open creates or reopens a log in opts.Dir. Reopening scans every
// segment: a short or CRC-failing frame at the very tail is truncated (a
// torn write from a crash — those records were never acknowledged), while
// a bad frame anywhere earlier returns ErrCorrupt. The truncated byte
// count is reported in Stats().TornBytes.
func Open(opts Options) (*Log, error) {
	opts.fill()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{opts: opts, nextSeq: 1, cache: newSegCache(opts.CacheSegments)}
	l.wake = sync.NewCond(&l.mu)
	l.synced = sync.NewCond(&l.mu)

	if err := l.scanExisting(); err != nil {
		return nil, err
	}
	if l.f == nil {
		if err := l.openSegmentLocked(l.nextSeq); err != nil {
			return nil, err
		}
	}
	l.written = l.nextSeq - 1
	l.durable = l.written

	l.syncerWG.Add(1)
	go l.syncLoop()
	return l, nil
}

// scanExisting loads the segment list, verifies frames, truncates a torn
// tail, and opens the last segment for append. Called before the syncer
// starts; the lock is held for the duration anyway so the guarded-field
// discipline stays uniform.
func (l *Log) scanExisting() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.opts.Dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		n, keep, bad, err := verifySegment(seg.path)
		if err != nil {
			return err
		}
		if bad > 0 {
			if !last {
				return fmt.Errorf("%w: %s has %d unreadable bytes mid-log", ErrCorrupt, filepath.Base(seg.path), bad)
			}
			l.stats.TornBytes += bad
			if keep < int64(len(segMagic)) {
				// The tail segment's own header is unreadable — it holds no
				// recoverable record. Drop the file; Open starts a fresh
				// segment at the same seq.
				if err := os.Remove(seg.path); err != nil {
					return fmt.Errorf("wal: dropping headerless tail: %w", err)
				}
				l.nextSeq = seg.first
				continue
			}
			// Torn tail: truncate to the last whole frame.
			if err := os.Truncate(seg.path, keep); err != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", err)
			}
		}
		l.segments = append(l.segments, seg)
		l.nextSeq = seg.first + uint64(n)
	}
	if len(l.segments) == 0 {
		return nil
	}
	// Reopen the last segment for append.
	active := l.segments[len(l.segments)-1]
	f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.segSize = int(st.Size())
	return nil
}

func segName(first uint64) string { return fmt.Sprintf("wal-%016x.seg", first) }

// listSegments returns the directory's segments ascending by first seq.
func listSegments(dir string) ([]segment, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	for _, p := range names {
		var first uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "wal-%x.seg", &first); err != nil {
			continue // not ours
		}
		segs = append(segs, segment{path: p, first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// openSegmentLocked creates a fresh segment whose first record will be seq;
// caller holds l.mu (or runs before the syncer exists).
func (l *Log) openSegmentLocked(seq uint64) error {
	path := filepath.Join(l.opts.Dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.segSize = len(segMagic)
	l.segments = append(l.segments, segment{path: path, first: seq})
	return nil
}

// rotateLocked seals the active segment (flush + fsync + close) and opens
// the next one; caller holds l.mu. Everything framed so far becomes
// durable, which keeps the group committer's single-file bookkeeping
// correct across the boundary.
func (l *Log) rotateLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.stats.Syncs++
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.durable = l.written
	l.synced.Broadcast()
	l.stats.Rotations++
	return l.openSegmentLocked(l.nextSeq)
}

// Append frames a record into the log and returns its sequence number. The
// record is NOT durable yet — it becomes durable at the next group commit
// (or Sync call). Use AppendSync when the caller must not acknowledge
// anything before the record is on disk.
func (l *Log) Append(typ byte, payload []byte) (uint64, error) {
	if len(payload)+frameOverhead > maxFrame {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.err = fmt.Errorf("wal: rotate: %w", err)
			return 0, l.err
		}
	}
	seq := l.nextSeq
	if err := writeFrame(l.w, typ, payload); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return 0, l.err
	}
	l.nextSeq++
	l.written = seq
	l.segSize += frameOverhead + len(payload)
	l.stats.Appends++
	l.wake.Signal()
	return seq, nil
}

// AppendSync appends a record and blocks until the group commit covering
// it has fsynced — the durable-before-acknowledge primitive.
func (l *Log) AppendSync(typ byte, payload []byte) (uint64, error) {
	seq, err := l.Append(typ, payload)
	if err != nil {
		return 0, err
	}
	return seq, l.WaitDurable(seq)
}

// WaitDurable blocks until the record with the given seq is fsynced.
func (l *Log) WaitDurable(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable < seq && l.err == nil && !l.closed {
		l.synced.Wait()
	}
	if l.durable >= seq {
		return nil
	}
	if l.err != nil {
		return l.err
	}
	return ErrClosed
}

// Sync forces an immediate flush + fsync of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.written
	l.mu.Unlock()
	return l.syncTo(target)
}

// syncTo makes all records up to target durable, sharing the work with the
// group committer where possible.
func (l *Log) syncTo(target uint64) error {
	l.mu.Lock()
	if l.durable >= target {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		werr := fmt.Errorf("wal: flush: %w", err)
		l.err = werr
		l.mu.Unlock()
		return werr
	}
	f := l.f
	flushed := l.written
	l.mu.Unlock()

	// fsync outside the lock: appenders keep framing into the buffer while
	// the disk write completes. The fsync covers at least every byte
	// flushed above; rotation fsyncs synchronously under mu, so f cannot
	// have been swapped with unflushed data attributed to it.
	var serr error
	if !l.opts.NoSync {
		serr = f.Sync()
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if serr != nil {
		if f != l.f {
			// Lost the race with rotation: rotation flushed, fsynced and
			// closed this very file under mu and advanced durable past
			// flushed, so the fsync-on-closed-file error is benign.
			return l.err
		}
		if l.err == nil {
			l.err = fmt.Errorf("wal: fsync: %w", serr)
		}
		l.synced.Broadcast()
		return l.err
	}
	if !l.opts.NoSync {
		l.stats.Syncs++ // counts real fsyncs, so NoSync runs report zero
	}
	if flushed > l.durable {
		l.durable = flushed
	}
	l.synced.Broadcast()
	return l.err
}

// syncLoop is the group committer: it wakes when appends are pending,
// sleeps the GroupCommit window so concurrent appenders pile into the same
// flush, then issues one fsync for the whole batch.
func (l *Log) syncLoop() {
	defer l.syncerWG.Done()
	for {
		l.mu.Lock()
		for l.written == l.durable && !l.closed && l.err == nil {
			l.wake.Wait()
		}
		if l.closed || l.err != nil {
			l.synced.Broadcast()
			l.mu.Unlock()
			return
		}
		target := l.written
		l.mu.Unlock()

		if d := l.opts.GroupCommit; d > 0 {
			time.Sleep(d)
		}
		// Sync whatever accumulated during the window, not just target.
		l.mu.Lock()
		if l.closed || l.err != nil {
			l.synced.Broadcast()
			l.mu.Unlock()
			return
		}
		target = l.written
		l.mu.Unlock()
		if err := l.syncTo(target); err != nil {
			return
		}
	}
}

// PruneTo asynchronously deletes sealed segments every record of which has
// seq < keep — background compaction after a snapshot checkpoint makes the
// prefix redundant. The active segment is never deleted. Deletion runs on
// a background goroutine; Close waits for it.
func (l *Log) PruneTo(keep uint64) {
	l.mu.Lock()
	var victims []segment
	// A sealed segment i spans [segments[i].first, segments[i+1].first).
	for len(l.segments) >= 2 && l.segments[1].first <= keep {
		victims = append(victims, l.segments[0])
		l.segments = l.segments[1:]
	}
	l.stats.PrunedSegments += uint64(len(victims))
	l.mu.Unlock()
	if len(victims) == 0 {
		return
	}
	l.pruneWG.Add(1)
	go func() {
		defer l.pruneWG.Done()
		for _, seg := range victims {
			l.cache.drop(seg.path)
			os.Remove(seg.path) //nolint:errcheck // best-effort; re-pruned next checkpoint
		}
	}()
}

// FirstSeq returns the lowest seq still retained by the log.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segments[0].first
}

// Stats returns a copy of the cumulative counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = len(l.segments)
	s.NextSeq = l.nextSeq
	h, m := l.cache.counters()
	s.CacheHits, s.CacheMisses = h, m
	return s
}

// Close flushes and fsyncs the tail, stops the group committer, and waits
// for background pruning.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	target := l.written
	l.mu.Unlock()
	serr := l.syncTo(target)

	l.mu.Lock()
	l.closed = true
	l.wake.Broadcast()
	l.synced.Broadcast()
	f := l.f
	l.mu.Unlock()

	l.syncerWG.Wait()
	l.pruneWG.Wait()
	cerr := f.Close()
	if serr != nil && !errors.Is(serr, ErrClosed) {
		return serr
	}
	return cerr
}

// Crash is the fault-injection hook: it abandons the log as a SIGKILL
// would, dropping any buffered (never-acknowledged) frames without
// flushing and closing the file descriptor mid-state. The directory can
// then be reopened to exercise recovery.
func (l *Log) Crash() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.crashed = true
	l.wake.Broadcast()
	l.synced.Broadcast()
	f := l.f
	l.mu.Unlock()
	l.syncerWG.Wait()
	l.pruneWG.Wait()
	f.Close() //nolint:errcheck // crash semantics: buffered data is deliberately lost
}
