package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// writeFrame frames one record: u32 length | u8 type | payload | u32 CRC.
// The CRC covers the type byte and the payload, so a frame whose length
// field was torn mid-write cannot pass as a shorter valid record.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	crc := crc32.Update(crc32.Checksum(hdr[4:5], crcTable), crcTable, payload)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	_, err := w.Write(tail[:])
	return err
}

// parseFrames walks the frames in a segment's byte contents (after the
// magic header), calling fn for each whole, CRC-valid frame. It returns
// the count of valid frames, the byte offset just past the last valid
// frame, and the number of trailing bytes that do not form a valid frame
// (0 for a clean segment). fn may be nil to just verify.
func parseFrames(data []byte, fn func(typ byte, payload []byte) error) (n int, keep int64, bad int64, err error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return 0, 0, int64(len(data)), nil
	}
	off := len(segMagic)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return n, int64(off), 0, nil
		}
		if len(rest) < frameOverhead {
			return n, int64(off), int64(len(rest)), nil
		}
		plen := int(binary.LittleEndian.Uint32(rest[:4]))
		if plen+frameOverhead > maxFrame || len(rest) < frameOverhead+plen {
			return n, int64(off), int64(len(rest)), nil
		}
		typ := rest[4]
		payload := rest[5 : 5+plen]
		want := binary.LittleEndian.Uint32(rest[5+plen : frameOverhead+plen])
		crc := crc32.Update(crc32.Checksum(rest[4:5], crcTable), crcTable, payload)
		if crc != want {
			return n, int64(off), int64(len(rest)), nil
		}
		if fn != nil {
			if err := fn(typ, payload); err != nil {
				return n, int64(off), 0, err
			}
		}
		n++
		off += frameOverhead + plen
	}
}

// verifySegment scans a segment file from disk, returning its valid frame
// count, the offset to keep on truncation, and the trailing bad bytes.
func verifySegment(path string) (n int, keep int64, bad int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	return parseFrames(data, nil)
}

// Replay streams every retained record in seq order through fn. It is safe
// to call on a live log (the active segment is flushed first so fn sees
// everything appended so far). A CRC-failing frame encountered mid-log —
// which Open would have refused — aborts with ErrCorrupt; fn's own error
// aborts the walk unchanged.
func (l *Log) Replay(fn func(seq uint64, typ byte, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		werr := fmt.Errorf("wal: flush: %w", err)
		l.err = werr
		l.mu.Unlock()
		return werr
	}
	segs := make([]segment, len(l.segments))
	copy(segs, l.segments)
	l.mu.Unlock()

	for i, seg := range segs {
		sealed := i < len(segs)-1
		data, err := l.readSegment(seg.path, sealed)
		if err != nil {
			return err
		}
		seq := seg.first
		n, _, bad, err := parseFrames(data, func(typ byte, payload []byte) error {
			err := fn(seq, typ, payload)
			seq++
			return err
		})
		if err != nil {
			return err
		}
		if bad > 0 && sealed {
			// Open truncated the torn tail, so unreadable bytes in a sealed
			// segment are real corruption. In the active segment they are a
			// concurrent append's half-written frame: stop cleanly before it.
			return fmt.Errorf("%w: %s: %d bad bytes after record %d",
				ErrCorrupt, filepath.Base(seg.path), bad, seg.first+uint64(n)-1)
		}
	}
	return nil
}

// readSegment loads a segment's bytes, serving sealed (immutable) segments
// from the in-memory cache.
func (l *Log) readSegment(path string, sealed bool) ([]byte, error) {
	if sealed {
		if data, ok := l.cache.get(path); ok {
			return data, nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if sealed {
		l.cache.put(path, data)
	}
	return data, nil
}

// segCache is a small LRU over sealed segment contents — the "page cache of
// hot segments". Sealed segments are immutable, so entries never go stale;
// pruning drops them explicitly.
type segCache struct {
	mu     sync.Mutex
	cap    int
	data   map[string][]byte // guarded by mu
	order  []string          // guarded by mu; LRU, most recent last
	hits   uint64            // guarded by mu
	misses uint64            // guarded by mu
}

func newSegCache(capacity int) *segCache {
	return &segCache{cap: capacity, data: make(map[string][]byte)}
}

func (c *segCache) get(path string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.data[path]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.touchLocked(path)
	return data, true
}

func (c *segCache) put(path string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.data[path]; ok {
		c.touchLocked(path)
		return
	}
	c.data[path] = data
	c.order = append(c.order, path)
	for len(c.order) > c.cap {
		delete(c.data, c.order[0])
		c.order = c.order[1:]
	}
}

func (c *segCache) drop(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.data[path]; !ok {
		return
	}
	delete(c.data, path)
	for i, p := range c.order {
		if p == path {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// touchLocked moves path to the most-recent slot; caller holds c.mu.
func (c *segCache) touchLocked(path string) {
	for i, p := range c.order {
		if p == path {
			c.order = append(append(c.order[:i], c.order[i+1:]...), path)
			return
		}
	}
}

// counters returns the cache hit/miss counts.
func (c *segCache) counters() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
